#include "bench/bench_report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace presto {
namespace {

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";  // JSON has no inf/nan; null keeps the row parseable
  }
  char buf[32];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

std::string JsonHex(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(value));
  return buf;
}

void AppendSection(std::string& out, const char* name,
                   const std::vector<BenchReport::Entry>& entries, bool& first) {
  if (entries.empty()) {
    return;
  }
  if (!first) {
    out += ", ";
  }
  first = false;
  out += JsonString(name);
  out += ": {";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += JsonString(entries[i].key);
    out += ": ";
    out += entries[i].rendered;
  }
  out += '}';
}

bool ParsesAsNumber(const std::string& cell, double* value) {
  if (cell.empty()) {
    return false;
  }
  char* end = nullptr;
  *value = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(*value);
}

}  // namespace

BenchReport::Row& BenchReport::Row::Config(const std::string& key, double value) {
  config_.push_back({key, JsonNumber(value)});
  return *this;
}

BenchReport::Row& BenchReport::Row::Config(const std::string& key,
                                           const std::string& value) {
  config_.push_back({key, JsonString(value)});
  return *this;
}

BenchReport::Row& BenchReport::Row::Metric(const std::string& key, double value) {
  metrics_.push_back({key, JsonNumber(value)});
  return *this;
}

BenchReport::Row& BenchReport::Row::LatencyMs(const std::string& key, double value) {
  latency_ms_.push_back({key, JsonNumber(value)});
  return *this;
}

BenchReport::Row& BenchReport::Row::Energy(const std::string& key, double value) {
  energy_.push_back({key, JsonNumber(value)});
  return *this;
}

BenchReport::Row& BenchReport::Row::Fingerprint(const std::string& key,
                                                uint64_t value) {
  fingerprints_.push_back({key, JsonHex(value)});
  return *this;
}

void BenchReport::Config(const std::string& key, double value) {
  config_.push_back({key, JsonNumber(value)});
}

void BenchReport::Config(const std::string& key, const std::string& value) {
  config_.push_back({key, JsonString(value)});
}

BenchReport::Row& BenchReport::AddRow(const std::string& key) {
  rows_.emplace_back(key);
  return rows_.back();
}

void BenchReport::AddTable(const TextTable& table, const std::string& key_prefix) {
  const std::vector<std::string>& header = table.header();
  for (const std::vector<std::string>& cells : table.rows()) {
    Row& row = AddRow(key_prefix + (cells.empty() ? "" : cells[0]));
    for (size_t i = 1; i < cells.size() && i < header.size(); ++i) {
      double value = 0.0;
      if (ParsesAsNumber(cells[i], &value)) {
        row.Metric(header[i], value);
      } else {
        row.metrics_.push_back({header[i], JsonString(cells[i])});
      }
    }
  }
}

std::string BenchReport::ToJson() const {
  std::string out = "{";
  out += "\"schema_version\": " + JsonNumber(kBenchReportSchemaVersion);
  out += ", \"bench\": " + JsonString(bench_);
  out += ", \"grid\": " + JsonString(grid_);
  bool first = false;  // top-level always has the three fields above
  AppendSection(out, "config", config_, first);
  out += ", \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    if (r > 0) {
      out += ", ";
    }
    out += "{\"key\": " + JsonString(row.key_);
    bool row_first = false;
    AppendSection(out, "config", row.config_, row_first);
    AppendSection(out, "metrics", row.metrics_, row_first);
    AppendSection(out, "latency_ms", row.latency_ms_, row_first);
    AppendSection(out, "energy", row.energy_, row_first);
    AppendSection(out, "fingerprints", row.fingerprints_, row_first);
    out += '}';
  }
  out += "]}\n";
  return out;
}

bool BenchReport::WriteJson(const std::string& path) const {
  if (path.empty()) {
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (ok) {
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  } else {
    std::fprintf(stderr, "bench_report: short write to %s\n", path.c_str());
  }
  return ok;
}

std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      path = arg + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return path;
}

}  // namespace presto
