// Federation scale bench: many proxy cells under one global sensor namespace, with
// the open-loop *in-sim* query driver carrying the interactive workload — every
// query is issued as a control-lane event inside the simulation, so a cell grid of
// thousands of sensors runs its whole query stream with zero host round-trips.
//
// Each cell of the sweep (cells × proxies/cell × sensors/cell) runs three phases
// with one driver per gateway cell targeting the whole federation namespace:
//
//   healthy   — every query must answer (zero failures; cross-cell share tracks
//               1 - 1/cells for uniform targeting).
//   cell kill — one whole cell is killed. Queries into its namespace block fail
//               *fast* at the serving store (no replica survives a whole-cell
//               kill); everything else keeps answering. The failed share must stay
//               near the killed block's share of the namespace — and an in-cell
//               single-proxy kill is also probed (replication keeps that at zero).
//   revive    — the cell returns; failures must stop.
//
// Self-checks (non-zero exit on violation):
//   - the acceptance cell (>= 4 cells x 8 proxies x 4096 sensors/cell) sustains
//     >= 100 queries/sim-minute federation-wide,
//   - healthy-phase failures are zero; kill-phase failures stay inside the killed
//     cell's namespace share band; revive-phase failures are zero,
//   - the acceptance cell re-runs at sim_threads in {1, 8}, again with
//     cell-parallel stepping (cell_threads = num_cells), again with the cells
//     forked into presto_cell worker processes (cell_processes > 1, the
//     byte-serialized federation seam), and again over localhost TCP against
//     `presto_cell --listen` workers (cell_endpoints, the multi-machine
//     transport) — all with a bit-identical federation fingerprint and
//     bit-identical driver latency histograms,
//   - cell-parallel stepping clears >= 1.5x events/s over sequential stepping on
//     the 4 x 8 x 16k acceptance cell (checked when the host has >= 8 hardware
//     threads).
//
// Report keys are unchanged from earlier baselines for in-process rows; rows run
// under multi-process stepping append a "/procsN" suffix and rows run over the
// TCP socket transport append "/sockN", so bench_compare lines each up against
// its own kind.
//
// `--smoke` runs a reduced grid with the same checks (the CI entry point).
// `--mega` appends the 16-cell x ~100k-sensor cell (16 x 8 x 6144 = 98304
// sensors, tiny per-sensor flash, cell-parallel stepping) and re-runs it with
// one worker process per cell and with one TCP socket worker per cell — the
// committed BENCH_federation_scale.json baseline rows; too slow for per-PR CI.
// `--csv` writes the summary table to federation_scale.csv (never by default:
// bench dumps do not belong in the tree). `--json <path>` writes the
// machine-readable report (schema: bench/bench_report.h, docs/BENCHMARKS.md).
//
// Checkpoint/restore (docs/ARCHITECTURE.md "Checkpoint format"):
//   - a round-trip determinism self-check always runs: a small federation is
//     checkpointed at a barrier mid-workload, a fresh federation restores from the
//     bytes, and both must finish with bit-identical fingerprints and latency
//     histograms — swept over sim_threads {1, 8} x cell_threads {1, 4}.
//   - `--ckpt-out <path>` saves the first grid run's post-warmup barrier state;
//     `--resume <path>` starts the first grid run from such a file instead of
//     re-running warmup (the warm-start row in docs/BENCHMARKS.md) and then drives
//     the same kill/revive phases from the revived state.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "src/core/cell_worker.h"
#include "src/core/federation.h"
#include "src/util/ckpt.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/query_driver.h"

using namespace presto;

namespace {

constexpr uint64_t kSeed = 20260731;

struct PhaseWindow {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cross_cell = 0;
};

struct FedCellResult {
  double sim_minutes_driven = 0.0;
  double queries_per_min = 0.0;
  uint64_t events = 0;
  double events_per_sec = 0.0;
  double cross_share = 0.0;
  double now_latency_ms_mean = 0.0;
  double now_latency_ms_p95 = 0.0;
  PhaseWindow healthy;
  PhaseWindow killed;
  PhaseWindow revived;
  uint64_t trunk_messages = 0;
  uint64_t trunk_bytes = 0;
  uint64_t fingerprint = 0;
  uint64_t histogram = 0;
  bool spawn_failed = false;  // could not launch the localhost socket workers
  double wall_s = 0.0;
  double fed_epoch_ms = 0.0;  // lookahead-derived federation epoch
  // Per-query energy attribution: sensor radio joules the drivers' queries cost,
  // split by query class and by serving (source) cell.
  double energy_j = 0.0;
  double energy_now_j = 0.0;
  double energy_past_j = 0.0;
  uint64_t energized = 0;
  std::map<int, double> energy_by_cell_j;
  bool ckpt_failed = false;  // --ckpt-out / --resume file operation failed
  bool resumed = false;      // warm-started from a checkpoint (warmup skipped)
};

struct DriverSnapshot {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cross_cell = 0;
};

// Everything below reads drivers through the mode-independent facade (driver
// indices + Federation::DriverStats), so the same bench body runs in-process,
// cell-parallel, and with cells forked into presto_cell worker processes.
DriverSnapshot Snapshot(const Federation& fed, const std::vector<int>& drivers) {
  DriverSnapshot snap;
  for (const int d : drivers) {
    const QueryDriverStats stats = fed.DriverStats(d);
    snap.issued += stats.issued;
    snap.completed += stats.completed;
    snap.failed += stats.failed;
    snap.cross_cell += stats.cross_cell;
  }
  return snap;
}

// Localhost `presto_cell --listen` workers for the /sockN rows — the TCP
// transport measured end to end on one machine. Each federation spawns its own
// set: a worker's listen loop exits after the federation it served shuts down.
// Declared before the Federation so its destructor reaps only after the
// federation's clean kShutdown.
struct BenchSocketWorkers {
  std::vector<SpawnedCellWorker> workers;
  bool ok = true;
  explicit BenchSocketWorkers(int n) {
    for (int i = 0; i < n; ++i) {
      auto spawned = SpawnCellWorkerListening();
      if (!spawned.ok()) {
        std::printf("  VIOLATION: cannot spawn socket worker %d: %s\n", i,
                    spawned.status().message().c_str());
        ok = false;
        return;
      }
      workers.push_back(*spawned);
    }
  }
  BenchSocketWorkers(const BenchSocketWorkers&) = delete;
  BenchSocketWorkers& operator=(const BenchSocketWorkers&) = delete;
  ~BenchSocketWorkers() {
    for (SpawnedCellWorker& worker : workers) {
      StopCellWorker(worker);
    }
  }
  void Fill(FederationConfig& config) const {
    config.num_endpoints = static_cast<int>(workers.size());
    for (size_t i = 0; i < workers.size(); ++i) {
      config.cell_endpoints[i] = MakeFedEndpoint("127.0.0.1", workers[i].port);
    }
  }
};

PhaseWindow Delta(const DriverSnapshot& before, const DriverSnapshot& after) {
  PhaseWindow window;
  window.issued = after.issued - before.issued;
  window.completed = after.completed - before.completed;
  window.failed = after.failed - before.failed;
  window.cross_cell = after.cross_cell - before.cross_cell;
  return window;
}

FedCellResult RunFederationCell(int num_cells, int proxies, int sensors_per_cell,
                                int sim_threads, int cell_threads,
                                int cell_processes, int sockets,
                                double rate_per_cell_per_hour, Duration warmup,
                                Duration phase, bool tiny_flash,
                                const std::string& ckpt_out = "",
                                const std::string& resume_path = "") {
  FederationConfig config;
  config.num_cells = num_cells;
  config.cell.num_proxies = proxies;
  config.cell.sensors_per_proxy = sensors_per_cell / proxies;
  config.cell.enable_replication = true;
  config.cell.replication_factor = 2;
  config.cell.promotion_delay = Seconds(10);
  // Interactive operating point — and the phase accounting depends on it: a pull
  // in flight when its cell is killed fails by timeout, so the timeout must expire
  // inside the kill window, not leak a stale failure into the revived window.
  config.cell.pull_timeout = Seconds(30);
  // 256 KiB archive per sensor keeps the 16k-sensor acceptance cell inside laptop
  // RAM (default 1 MiB x 16384 sensors is 16 GiB) while exercising the flash path
  // on every sample. The ~100k-sensor mega cell drops to 16 KiB (as in
  // scale_sharding's 100k cell).
  config.cell.flash.num_blocks = tiny_flash ? 4 : 64;
  config.cell.lane_engine = true;
  config.cell.sim_threads = sim_threads;
  // Conservative-lookahead operating point: long-haul 250 ms trunks, cells stepping
  // on the same 250 ms grid, and auto_epoch deriving the federation epoch from the
  // fastest trunk (250 ms here, under the 1 s ceiling). The barrier clamp then
  // never binds on trunk mail, so cross-cell latency is trunk latency plus real
  // serialization time instead of being quantized up to 1 s barrier multiples —
  // the p95 self-check below holds the bench to that.
  config.cell.sim_epoch = Millis(250);
  config.link.latency = Millis(250);
  config.epoch = Seconds(1);
  config.auto_epoch = true;
  config.cell_threads = cell_threads;
  config.cell_processes = cell_processes;
  config.seed = kSeed;

  std::unique_ptr<BenchSocketWorkers> socket_workers;
  if (sockets > 0) {
    socket_workers = std::make_unique<BenchSocketWorkers>(sockets);
    if (!socket_workers->ok) {
      FedCellResult failed;
      failed.spawn_failed = true;
      return failed;
    }
    socket_workers->Fill(config);
  }

  Federation fed(config);

  std::vector<int> drivers;
  for (int c = 0; c < num_cells; ++c) {
    QueryDriverParams params;
    params.mix.queries_per_hour = rate_per_cell_per_hour;
    params.mix.num_sensors = 0;  // whole federation namespace
    params.mix.past_fraction = 0.2;
    params.mix.mean_past_age = Minutes(30);
    params.mix.max_past_age = Hours(1);
    params.mix.min_tolerance = 1.5;
    params.mix.max_tolerance = 3.0;
    params.mix.seed = kSeed ^ (0xd1e5 + static_cast<uint64_t>(c));
    drivers.push_back(fed.AttachDriver(c, params));
  }
  fed.Start();

  // Queries routed just before a topology change complete a couple of federation
  // epochs later (trunk hop + barrier clamps), and a pull already in flight at the
  // transition can only fail by timeout expiry up to pull_timeout later: the grace
  // window after each transition must cover both so stragglers are attributed to
  // the phase that issued them.
  const Duration grace = config.cell.pull_timeout + Seconds(15);

  const auto wall_start = std::chrono::steady_clock::now();
  FedCellResult out;
  if (!resume_path.empty()) {
    // Warm start: restore the post-warmup barrier state instead of re-simulating
    // the warmup window. The resumed timeline is bit-identical to the cold one
    // (same fingerprint and histograms at the end) — the restore invariant.
    auto loaded = Checkpoint::ReadFile(resume_path);
    if (!loaded.ok()) {
      std::printf("  CKPT: cannot read %s: %s\n", resume_path.c_str(),
                  loaded.status().message().c_str());
      out.ckpt_failed = true;
      return out;
    }
    const Status restored = fed.LoadCheckpoint(*loaded);
    if (!restored.ok()) {
      std::printf("  CKPT: restore failed: %s\n", restored.message().c_str());
      out.ckpt_failed = true;
      return out;
    }
    out.resumed = true;
    std::printf("  resumed from %s at sim t=%.0f s (warmup skipped)\n",
                resume_path.c_str(), ToSeconds(fed.Now()));
  } else {
    fed.RunUntil(warmup);
    if (!ckpt_out.empty()) {
      Checkpoint ckpt;
      Status saved = fed.SaveCheckpoint(&ckpt);
      if (saved.ok()) {
        saved = ckpt.WriteFile(ckpt_out);
      }
      if (!saved.ok()) {
        std::printf("  CKPT: save failed: %s\n", saved.message().c_str());
        out.ckpt_failed = true;
      } else {
        std::printf("  warmed checkpoint (%zu sections, digest %016llx) -> %s\n",
                    ckpt.sections().size(),
                    static_cast<unsigned long long>(ckpt.Digest()),
                    ckpt_out.c_str());
      }
    }
  }
  for (const int d : drivers) {
    fed.StartDriver(d, 3 * phase + grace);
  }

  // Healthy phase.
  const DriverSnapshot at_start = Snapshot(fed, drivers);
  fed.RunUntil(fed.Now() + phase);
  const DriverSnapshot at_kill = Snapshot(fed, drivers);
  out.healthy = Delta(at_start, at_kill);

  // Kill phase: one whole cell goes dark; a proxy inside a *surviving* cell dies
  // too (in-cell replication must absorb that one without a single failed query —
  // it is accounted inside the same window).
  const int victim_cell = num_cells / 2;
  fed.KillCell(victim_cell);
  // Probed on every row, including the ~100k mega cell: with barrier-time lane
  // re-binding the re-homed 768-sensor shard stops paying the cross-lane radio tax
  // one epoch after each ownership flip, so the promotion + revive hand-back cycle
  // fits the bench window that used to force skipping it here.
  const bool proxy_kill = true;
  if (proxy_kill) {
    fed.KillProxyInCell((victim_cell + 1) % num_cells, 0);
  }
  fed.RunUntil(fed.Now() + phase);

  // Revive, then let kill-window stragglers drain before judging the new window.
  fed.ReviveCell(victim_cell);
  if (proxy_kill) {
    fed.ReviveProxyInCell((victim_cell + 1) % num_cells, 0);
  }
  fed.RunUntil(fed.Now() + grace);
  const DriverSnapshot at_revive = Snapshot(fed, drivers);
  out.killed = Delta(at_kill, at_revive);

  fed.RunUntil(fed.Now() + phase + Minutes(2));  // trailing settle drains in-flight
  const DriverSnapshot at_end = Snapshot(fed, drivers);
  out.revived = Delta(at_revive, at_end);
  const auto wall_end = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(wall_end - wall_start).count();

  out.sim_minutes_driven = ToMinutes(3 * phase + grace);
  out.queries_per_min = static_cast<double>(at_end.issued) / out.sim_minutes_driven;
  out.events = fed.EventsExecuted();
  out.events_per_sec = static_cast<double>(out.events) / std::max(out.wall_s, 1e-9);
  out.cross_share = at_end.issued > 0
                        ? static_cast<double>(at_end.cross_cell) /
                              static_cast<double>(at_end.issued)
                        : 0.0;

  out.fed_epoch_ms = ToMillis(fed.config().epoch);
  SampleSet latency_ms;
  LatencyHistogram merged;
  for (const int d : drivers) {
    const QueryDriverStats stats = fed.DriverStats(d);
    merged.Merge(stats.latency);
    for (double ms : stats.latency_ms.samples()) {
      latency_ms.Add(ms);
    }
    out.energy_j += stats.energy_j;
    out.energy_now_j += stats.energy_now_j;
    out.energy_past_j += stats.energy_past_j;
    out.energized += stats.energized;
    for (const auto& [cell, joules] : stats.energy_by_cell_j) {
      out.energy_by_cell_j[cell] += joules;
    }
  }
  out.now_latency_ms_mean = latency_ms.mean();
  out.now_latency_ms_p95 = latency_ms.Quantile(0.95);
  out.histogram = merged.Hash();
  const FederationTrunkTotals trunks = fed.TrunkTotals();
  out.trunk_messages = trunks.messages;
  out.trunk_bytes = trunks.bytes;
  out.fingerprint = fed.fingerprint();
  return out;
}

// --- checkpoint round-trip determinism self-check -----------------------------
//
// One small federation runs a live workload, checkpoints at a barrier mid-run, and
// keeps going to `end`; a second, freshly constructed federation restores from the
// checkpoint bytes and runs the remaining window. Restore at a barrier must be
// observationally identical to never stopping: both fingerprints and both merged
// driver latency histograms must match bit for bit — at every (sim_threads,
// cell_threads) combination.

FederationConfig RoundTripConfig(int sim_threads, int cell_threads,
                                 int cell_processes) {
  FederationConfig config;
  config.num_cells = 4;
  config.cell.num_proxies = 2;
  config.cell.sensors_per_proxy = 16;
  config.cell.enable_replication = true;
  config.cell.replication_factor = 2;
  config.cell.promotion_delay = Seconds(10);
  config.cell.pull_timeout = Seconds(30);
  config.cell.flash.num_blocks = 4;
  config.cell.lane_engine = true;
  config.cell.sim_threads = sim_threads;
  config.cell.sim_epoch = Millis(250);
  config.link.latency = Millis(250);
  config.epoch = Seconds(1);
  config.auto_epoch = true;
  config.cell_threads = cell_threads;
  config.cell_processes = cell_processes;
  config.seed = kSeed;
  return config;
}

std::vector<int> AttachRoundTripDrivers(Federation& fed) {
  std::vector<int> drivers;
  for (int c = 0; c < fed.num_cells(); ++c) {
    QueryDriverParams params;
    params.mix.queries_per_hour = 2400.0;
    params.mix.num_sensors = 0;  // whole federation namespace
    params.mix.past_fraction = 0.2;
    params.mix.mean_past_age = Minutes(5);
    params.mix.max_past_age = Minutes(10);
    params.mix.min_tolerance = 1.5;
    params.mix.max_tolerance = 3.0;
    params.mix.seed = kSeed ^ (0xd1e5 + static_cast<uint64_t>(c));
    drivers.push_back(fed.AttachDriver(c, params));
  }
  return drivers;
}

uint64_t MergedHistogramHash(const Federation& fed, const std::vector<int>& drivers) {
  LatencyHistogram merged;
  for (const int d : drivers) {
    merged.Merge(fed.DriverStats(d).latency);
  }
  return merged.Hash();
}

int RunRoundTripCheck(int sim_threads, int cell_threads, int cell_processes,
                      int sockets, BenchReport& report) {
  const Duration warm = Minutes(5);
  const Duration ckpt_at = warm + Minutes(2);
  const Duration end = ckpt_at + Minutes(4);
  int violations = 0;
  Checkpoint ckpt;
  uint64_t fp_cont = 0;
  uint64_t hist_cont = 0;
  // Each federation spawns its own socket workers (the listen loop exits with
  // the federation it served), so save-side and restore-side both cross TCP.
  {
    std::unique_ptr<BenchSocketWorkers> socket_workers;
    FederationConfig config =
        RoundTripConfig(sim_threads, cell_threads, cell_processes);
    if (sockets > 0) {
      socket_workers = std::make_unique<BenchSocketWorkers>(sockets);
      if (!socket_workers->ok) {
        return 1;
      }
      socket_workers->Fill(config);
    }
    Federation fed(config);
    std::vector<int> drivers = AttachRoundTripDrivers(fed);
    fed.Start();
    fed.RunUntil(warm);
    for (const int d : drivers) {
      fed.StartDriver(d, 0);
    }
    fed.RunUntil(ckpt_at);
    const Status saved = fed.SaveCheckpoint(&ckpt);
    if (!saved.ok()) {
      std::printf("  VIOLATION: round-trip save failed (sim=%d cell=%d "
                  "procs=%d): %s\n",
                  sim_threads, cell_threads, cell_processes,
                  saved.message().c_str());
      return 1;
    }
    fed.RunUntil(end);
    fp_cont = fed.fingerprint();
    hist_cont = MergedHistogramHash(fed, drivers);
  }
  // Encode/decode through the wire format so section checksums are exercised too.
  auto decoded = Checkpoint::Decode(span<const uint8_t>(ckpt.Encode()));
  if (!decoded.ok()) {
    std::printf("  VIOLATION: round-trip decode failed: %s\n",
                decoded.status().message().c_str());
    return 1;
  }
  uint64_t fp_resumed = 0;
  uint64_t hist_resumed = 0;
  {
    std::unique_ptr<BenchSocketWorkers> socket_workers;
    FederationConfig config =
        RoundTripConfig(sim_threads, cell_threads, cell_processes);
    if (sockets > 0) {
      socket_workers = std::make_unique<BenchSocketWorkers>(sockets);
      if (!socket_workers->ok) {
        return 1;
      }
      socket_workers->Fill(config);
    }
    Federation fed(config);
    std::vector<int> drivers = AttachRoundTripDrivers(fed);
    fed.Start();
    const Status restored = fed.LoadCheckpoint(*decoded);
    if (!restored.ok()) {
      std::printf("  VIOLATION: round-trip restore failed (sim=%d cell=%d "
                  "procs=%d): %s\n",
                  sim_threads, cell_threads, cell_processes,
                  restored.message().c_str());
      return 1;
    }
    fed.RunUntil(end);
    fp_resumed = fed.fingerprint();
    hist_resumed = MergedHistogramHash(fed, drivers);
  }
  if (fp_resumed != fp_cont) {
    std::printf("  VIOLATION: resumed fingerprint %016llx != continuous %016llx "
                "(sim=%d cell=%d procs=%d)\n",
                static_cast<unsigned long long>(fp_resumed),
                static_cast<unsigned long long>(fp_cont), sim_threads,
                cell_threads, cell_processes);
    ++violations;
  }
  if (hist_resumed != hist_cont) {
    std::printf("  VIOLATION: resumed latency histogram %016llx != continuous "
                "%016llx (sim=%d cell=%d procs=%d)\n",
                static_cast<unsigned long long>(hist_resumed),
                static_cast<unsigned long long>(hist_cont), sim_threads,
                cell_threads, cell_processes);
    ++violations;
  }
  char key_buf[80];
  int key_len = std::snprintf(key_buf, sizeof(key_buf), "ckpt_roundtrip/sim%d/cell%d",
                              sim_threads, cell_threads);
  if (cell_processes > 1) {
    key_len += std::snprintf(key_buf + key_len, sizeof(key_buf) - key_len,
                             "/procs%d", cell_processes);
  }
  if (sockets > 0) {
    std::snprintf(key_buf + key_len, sizeof(key_buf) - key_len, "/sock%d",
                  sockets);
  }
  BenchReport::Row& row = report.AddRow(key_buf);
  row.Config("sim_threads", sim_threads)
      .Config("cell_threads", cell_threads)
      .Config("cell_processes", cell_processes)
      .Config("sockets", sockets);
  row.Metric("roundtrip_match", violations == 0 ? 1.0 : 0.0)
      .Metric("ckpt_bytes", static_cast<double>(ckpt.Encode().size()))
      .Metric("ckpt_sections", static_cast<double>(ckpt.sections().size()));
  row.Fingerprint("continuous", fp_cont).Fingerprint("resumed", fp_resumed);
  if (violations == 0) {
    std::printf("  ckpt round-trip ok: sim=%d cell=%d procs=%d socks=%d "
                "fingerprint=%016llx histogram=%016llx (%zu sections)\n",
                sim_threads, cell_threads, cell_processes, sockets,
                static_cast<unsigned long long>(fp_cont),
                static_cast<unsigned long long>(hist_cont),
                ckpt.sections().size());
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  bool smoke = false;
  bool mega = false;
  bool write_csv = false;
  std::string ckpt_out;
  std::string resume_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--mega") {
      mega = true;
    } else if (arg == "--csv") {
      write_csv = true;
    } else if (arg == "--ckpt-out" && i + 1 < argc) {
      ckpt_out = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    }
  }
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("PRESTO federation bench: multi-cell deployments under one global\n");
  std::printf("namespace, queries driven from inside the simulation (open-loop\n");
  std::printf("control-lane arrivals), one whole cell killed and revived mid-run.\n");
  std::printf("Deterministic seed %llu, %u hardware threads.%s%s\n\n",
              static_cast<unsigned long long>(kSeed), hw_threads,
              smoke ? " [--smoke: reduced grid]" : "",
              mega ? " [--mega: 16-cell ~100k row]" : "");

  // (sim_threads, cell_threads, cell_processes, sockets): lane workers inside
  // each cell x host threads stepping the cells concurrently within each
  // federation epoch x presto_cell worker processes the cells are forked into
  // (1 = in-process) x localhost `presto_cell --listen` workers reached over TCP
  // (0 = no socket transport; when set, cell_processes stays 1 and placement
  // follows FederationConfig::cell_endpoints).
  struct Combo {
    int sim_threads;
    int cell_threads;
    int cell_processes = 1;
    int sockets = 0;
  };
  struct Cell {
    int cells;
    int proxies;
    int sensors_per_cell;
    double rate_per_cell_per_hour;
    Duration warmup;
    Duration phase;
    bool acceptance;   // the >= 100 queries/sim-minute + determinism/speedup cell
    bool tiny_flash;   // 16 KiB per-sensor archive (the ~100k mega cell)
  };
  std::vector<Cell> grid;
  std::vector<Combo> acceptance_combos;
  if (smoke) {
    grid.push_back({2, 2, 32, 1200.0, Minutes(30), Minutes(4), false, false});
    grid.push_back({4, 4, 64, 1800.0, Minutes(30), Minutes(4), true, false});
    acceptance_combos.push_back({1, 1});
    acceptance_combos.push_back({2, 1});
    acceptance_combos.push_back({1, 4});
    acceptance_combos.push_back({1, 1, 4});
    acceptance_combos.push_back({1, 1, 1, 4});
  } else {
    grid.push_back({2, 4, 256, 1800.0, Hours(1), Minutes(8), false, false});
    grid.push_back({4, 8, 1024, 1800.0, Hours(1), Minutes(8), false, false});
    // Acceptance: 4 cells x 8 proxies x 4096 sensors/cell = 16384 sensors, four
    // gateways at 30 q/min each -> 120 queries/sim-minute federation-wide.
    grid.push_back({4, 8, 4096, 1800.0, Hours(1), Minutes(8), true, false});
    acceptance_combos.push_back({1, 1});
    acceptance_combos.push_back({8, 1});
    acceptance_combos.push_back({1, 4});
    acceptance_combos.push_back({1, 1, 4});
    acceptance_combos.push_back({1, 1, 1, 4});
  }
  if (mega) {
    // 16 cells x 8 proxies x 6144 sensors/cell = 98304 sensors under one
    // namespace, stepped cell-parallel — the committed baseline's headline row.
    grid.push_back({16, 8, 6144, 1800.0, Minutes(15), Minutes(2), false, true});
  }

  int violations = 0;
  TextTable table;
  table.SetHeader({"cells", "proxies", "sensors", "threads", "cell_thr", "procs",
                   "socks", "q/min",
                   "cross", "lat ms", "p95 ms", "healthy fail", "killed fail",
                   "fail share", "revived fail", "trunk msgs", "Mev/s", "wall s",
                   "fingerprint"});
  BenchReport report("federation_scale");
  report.set_grid(std::string(smoke ? "smoke" : "full") + (mega ? "+mega" : ""));
  report.Config("seed", static_cast<double>(kSeed));
  report.Config("hardware_threads", static_cast<double>(hw_threads));

  // Checkpoint/restore determinism sweep: the full sim_threads x cell_threads
  // grid, always on (small federation — seconds of wall time) — plus one
  // multi-process row and one localhost-TCP row exercising save/restore across
  // both flavors of the worker seam.
  std::printf("checkpoint round-trip determinism sweep:\n");
  for (const int sim_threads : {1, 8}) {
    for (const int cell_threads : {1, 4}) {
      violations += RunRoundTripCheck(sim_threads, cell_threads, 1, 0, report);
    }
  }
  violations += RunRoundTripCheck(1, 1, 4, 0, report);
  violations += RunRoundTripCheck(1, 1, 1, 4, report);
  std::printf("\n");

  bool first_run = true;
  for (const Cell& cell : grid) {
    uint64_t base_fp = 0;
    uint64_t base_hist = 0;
    double sequential_eps = 0.0;
    double parallel_eps = 0.0;
    std::vector<Combo> combos;
    if (cell.acceptance) {
      for (const Combo combo : acceptance_combos) {
        combos.push_back(combo);
      }
    } else if (cell.tiny_flash) {
      // The mega cell runs cell-parallel (the committed baseline row), again
      // with one presto_cell worker process per cell, and again with one TCP
      // socket worker per cell — the ~100k-sensor row must complete under both
      // seams with the same fingerprint.
      combos.push_back({1, 4});
      combos.push_back({1, 1, 16});
      combos.push_back({1, 1, 1, 16});
    } else {
      combos.push_back(acceptance_combos.front());
    }
    for (const Combo combo : combos) {
      // --ckpt-out / --resume apply to the first run of the grid (the warm-start
      // pair must describe the same cell shape on both sides).
      const FedCellResult r = RunFederationCell(
          cell.cells, cell.proxies, cell.sensors_per_cell, combo.sim_threads,
          combo.cell_threads, combo.cell_processes, combo.sockets,
          cell.rate_per_cell_per_hour, cell.warmup, cell.phase, cell.tiny_flash,
          first_run ? ckpt_out : std::string(),
          first_run ? resume_path : std::string());
      first_run = false;
      if (r.ckpt_failed || r.spawn_failed) {
        ++violations;
        continue;
      }
      char fp_buf[32];
      std::snprintf(fp_buf, sizeof(fp_buf), "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      const double fail_share =
          r.killed.completed > 0 ? static_cast<double>(r.killed.failed) /
                                       static_cast<double>(r.killed.completed)
                                 : 0.0;
      table.AddRow({TextTable::Int(cell.cells), TextTable::Int(cell.proxies),
                    TextTable::Int(cell.cells * cell.sensors_per_cell),
                    TextTable::Int(combo.sim_threads),
                    TextTable::Int(combo.cell_threads),
                    TextTable::Int(combo.cell_processes),
                    TextTable::Int(combo.sockets),
                    TextTable::Num(r.queries_per_min, 1),
                    TextTable::Num(r.cross_share, 2),
                    TextTable::Num(r.now_latency_ms_mean, 1),
                    TextTable::Num(r.now_latency_ms_p95, 1),
                    TextTable::Int(static_cast<long long>(r.healthy.failed)),
                    TextTable::Int(static_cast<long long>(r.killed.failed)),
                    TextTable::Num(fail_share, 2),
                    TextTable::Int(static_cast<long long>(r.revived.failed)),
                    TextTable::Int(static_cast<long long>(r.trunk_messages)),
                    TextTable::Num(r.events_per_sec / 1e6, 2),
                    TextTable::Num(r.wall_s, 1), fp_buf});
      std::printf("  done: %d cells x %d proxies x %d sensors, threads=%d "
                  "cell_threads=%d procs=%d socks=%d (%.1f q/min, "
                  "%.2fM events/s, %.1f s wall) fingerprint=%016llx\n",
                  cell.cells, cell.proxies, cell.cells * cell.sensors_per_cell,
                  combo.sim_threads, combo.cell_threads, combo.cell_processes,
                  combo.sockets, r.queries_per_min, r.events_per_sec / 1e6,
                  r.wall_s, static_cast<unsigned long long>(r.fingerprint));

      char key_buf[96];
      int key_len = std::snprintf(key_buf, sizeof(key_buf),
                                  "c%dxp%dxs%d/sim%d/cell%d", cell.cells,
                                  cell.proxies, cell.sensors_per_cell,
                                  combo.sim_threads, combo.cell_threads);
      if (combo.cell_processes > 1) {
        // In-process keys stay byte-identical to earlier baselines; only
        // multi-process and socket rows grow a suffix.
        key_len += std::snprintf(key_buf + key_len, sizeof(key_buf) - key_len,
                                 "/procs%d", combo.cell_processes);
      }
      if (combo.sockets > 0) {
        std::snprintf(key_buf + key_len, sizeof(key_buf) - key_len, "/sock%d",
                      combo.sockets);
      }
      BenchReport::Row& row = report.AddRow(key_buf);
      row.Config("cells", cell.cells)
          .Config("proxies", cell.proxies)
          .Config("sensors_per_cell", cell.sensors_per_cell)
          .Config("sim_threads", combo.sim_threads)
          .Config("cell_threads", combo.cell_threads)
          .Config("cell_processes", combo.cell_processes)
          .Config("sockets", combo.sockets)
          .Config("rate_per_cell_per_hour", cell.rate_per_cell_per_hour)
          .Config("resumed", r.resumed ? 1 : 0);
      row.Metric("queries_per_min", r.queries_per_min)
          .Metric("queries_per_s", r.queries_per_min / 60.0)
          .Metric("events", static_cast<double>(r.events))
          .Metric("events_per_s", r.events_per_sec)
          .Metric("cross_share", r.cross_share)
          .Metric("healthy_failed", static_cast<double>(r.healthy.failed))
          .Metric("killed_failed", static_cast<double>(r.killed.failed))
          .Metric("revived_failed", static_cast<double>(r.revived.failed))
          .Metric("trunk_messages", static_cast<double>(r.trunk_messages))
          .Metric("trunk_bytes", static_cast<double>(r.trunk_bytes))
          .Metric("wall_s", r.wall_s);
      row.Metric("fed_epoch_ms", r.fed_epoch_ms);
      row.LatencyMs("mean", r.now_latency_ms_mean)
          .LatencyMs("p95", r.now_latency_ms_p95);
      // J/query attribution by class and serving cell (queries that never touched
      // a sensor radio — cache hits, extrapolations — cost zero by construction).
      const uint64_t completed_total =
          r.healthy.completed + r.killed.completed + r.revived.completed;
      row.Energy("query_j_total", r.energy_j)
          .Energy("query_j_now", r.energy_now_j)
          .Energy("query_j_past", r.energy_past_j)
          .Energy("j_per_query",
                  completed_total > 0
                      ? r.energy_j / static_cast<double>(completed_total)
                      : 0.0)
          .Energy("energized_queries", static_cast<double>(r.energized));
      for (const auto& [cell_index, joules] : r.energy_by_cell_j) {
        row.Energy("query_j_cell" + std::to_string(cell_index), joules);
      }
      row.Fingerprint("federation", r.fingerprint).Fingerprint("histogram",
                                                               r.histogram);

      if (r.healthy.failed > 0) {
        std::printf("  VIOLATION: %llu failed queries in the healthy phase\n",
                    static_cast<unsigned long long>(r.healthy.failed));
        ++violations;
      }
      if (r.revived.failed > 0) {
        std::printf("  VIOLATION: %llu failed queries after the cell revived\n",
                    static_cast<unsigned long long>(r.revived.failed));
        ++violations;
      }
      // A dead cell's namespace block is 1/cells of a uniform target draw; the
      // kill-phase failed share must stay inside a generous band around it. Too
      // high means healthy cells failed too; zero means the kill never bit.
      const double expected = 1.0 / cell.cells;
      if (r.killed.failed == 0 || fail_share > 1.8 * expected) {
        std::printf("  VIOLATION: kill-phase failed share %.2f outside (0, %.2f]\n",
                    fail_share, 1.8 * expected);
        ++violations;
      }
      if (r.cross_share <= 0.0) {
        std::printf("  VIOLATION: no cross-cell queries in a multi-cell run\n");
        ++violations;
      }
      // The lookahead contract, held end to end: with the federation epoch derived
      // at (or under) trunk latency the DrainMail clamp never binds, so the p95
      // must carry real trunk serialization time — not sit on a barrier multiple
      // the way the fixed 1 s epoch pinned it.
      const double p95_mod_epoch =
          std::fmod(r.now_latency_ms_p95, r.fed_epoch_ms);
      if (r.healthy.completed > 0 &&
          (p95_mod_epoch < 1e-3 || r.fed_epoch_ms - p95_mod_epoch < 1e-3)) {
        std::printf("  VIOLATION: p95 %.3f ms is pinned to the %.0f ms barrier "
                    "grid\n", r.now_latency_ms_p95, r.fed_epoch_ms);
        ++violations;
      }
      if (cell.acceptance && r.queries_per_min < 100.0) {
        std::printf("  VIOLATION: %.1f queries/sim-minute < 100 on the acceptance "
                    "cell\n", r.queries_per_min);
        ++violations;
      }
      if (combo.sim_threads == combos.front().sim_threads &&
          combo.cell_threads == combos.front().cell_threads &&
          combo.cell_processes == combos.front().cell_processes &&
          combo.sockets == combos.front().sockets) {
        base_fp = r.fingerprint;
        base_hist = r.histogram;
      } else {
        if (r.fingerprint != base_fp) {
          std::printf("  VIOLATION: federation fingerprint diverges at threads=%d "
                      "cell_threads=%d procs=%d socks=%d\n",
                      combo.sim_threads, combo.cell_threads,
                      combo.cell_processes, combo.sockets);
          ++violations;
        }
        if (r.histogram != base_hist) {
          std::printf("  VIOLATION: latency histogram diverges at threads=%d "
                      "cell_threads=%d procs=%d socks=%d\n",
                      combo.sim_threads, combo.cell_threads,
                      combo.cell_processes, combo.sockets);
          ++violations;
        }
      }
      if (combo.sim_threads == 1 && combo.cell_threads == 1 &&
          combo.cell_processes == 1 && combo.sockets == 0) {
        sequential_eps = r.events_per_sec;
      }
      if (combo.sim_threads == 1 && combo.cell_threads > 1) {
        parallel_eps = r.events_per_sec;
      }
    }
    // Cell-parallel stepping must actually pay on the 16k acceptance cell: with
    // >= 8 hardware threads, cells-in-parallel clears 1.5x sequential events/s.
    if (cell.acceptance && cell.sensors_per_cell >= 4096 && hw_threads >= 8 &&
        sequential_eps > 0.0 && parallel_eps < 1.5 * sequential_eps) {
      std::printf("  VIOLATION: cell-parallel stepping %.2fx sequential events/s "
                  "(< 1.5x)\n", parallel_eps / sequential_eps);
      ++violations;
    }
  }

  std::printf("\n");
  table.Print();
  if (write_csv) {
    table.WriteCsvFile("federation_scale.csv");
  }
  if (!report.WriteJson(json_path)) {
    ++violations;
  }

  if (violations > 0) {
    std::printf("\n%d violation(s) — see above.\n", violations);
    return 1;
  }
  std::printf("\nAll federation availability, throughput, and determinism "
              "requirements hold.\n");
  return 0;
}
