// Ablation A9 — the §3 claim that "cached data from other nearby sensors ... can be
// used for such extrapolation": when a sensor goes silent, the proxy can answer for it
// by conditioning a multivariate Gaussian on its neighbours (BBQ-style) instead of (or
// better than) its own temporal model.
//
// A 16-sensor correlated field; one sensor is silenced; we compare marginal, temporal,
// and spatial-conditional estimates of the silent sensor against ground truth, as a
// function of the field's spatial correlation.

#include <cmath>
#include <cstdio>

#include "bench/bench_report.h"
#include "src/models/ar.h"
#include "src/models/spatial.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/temperature.h"

using namespace presto;

namespace {

constexpr Duration kPeriod = Seconds(31);
constexpr int kSensors = 16;
constexpr int kTarget = 5;

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A9: spatial extrapolation for a silent sensor\n");
  std::printf("(16-sensor field, sensor %d silenced after day 3, estimates vs truth)\n\n",
              kTarget);

  TextTable table;
  table.SetHeader({"correlation", "marginal_rmse", "temporal_rmse", "spatial_rmse",
                   "spatial_claimed_sigma"});

  for (double rho : {0.95, 0.85, 0.6, 0.3}) {
    TemperatureParams world;
    world.seed = 909;
    world.events_per_day = 0.0;
    TemperatureField field(kSensors, world, rho);

    // Train on days 0-3: snapshots for the joint Gaussian, history for the AR model.
    std::vector<std::vector<double>> snapshots;
    std::vector<Sample> target_history;
    for (SimTime t = 0; t < Days(3); t += Minutes(10)) {
      std::vector<double> row(kSensors);
      for (int s = 0; s < kSensors; ++s) {
        row[static_cast<size_t>(s)] = field.MeasureAt(s, t);
      }
      snapshots.push_back(std::move(row));
    }
    for (SimTime t = 0; t < Days(3); t += kPeriod) {
      target_history.push_back(Sample{t, field.MeasureAt(kTarget, t)});
    }

    SpatialGaussianModel spatial;
    if (!spatial.Fit(snapshots).ok()) {
      continue;
    }
    ModelConfig mc;
    mc.sample_period = kPeriod;
    SeasonalArModel temporal(mc);
    if (!temporal.Fit(target_history).ok()) {
      continue;
    }

    // Evaluate on day 3-5: the target is silent; neighbours report fresh values.
    RunningStats marginal_err;
    RunningStats temporal_err;
    RunningStats spatial_err;
    RunningStats claimed_sigma;
    for (SimTime t = Days(3); t < Days(5); t += Minutes(30)) {
      const double truth = field.TruthAt(kTarget, t);
      std::vector<std::pair<int, double>> observed;
      for (int s = 0; s < kSensors; ++s) {
        if (s != kTarget) {
          observed.emplace_back(s, field.MeasureAt(s, t));
        }
      }
      auto marginal = spatial.Condition(kTarget, {});
      auto conditioned = spatial.Condition(kTarget, observed);
      if (!marginal.ok() || !conditioned.ok()) {
        continue;
      }
      marginal_err.Add(std::abs(marginal->value - truth));
      spatial_err.Add(std::abs(conditioned->value - truth));
      claimed_sigma.Add(conditioned->stddev);
      temporal_err.Add(std::abs(temporal.Predict(t).value - truth));
    }
    auto rms = [](const RunningStats& s) {
      return std::sqrt(s.mean() * s.mean() + s.variance());
    };
    table.AddRow({TextTable::Num(rho, 2), TextTable::Num(rms(marginal_err), 2),
                  TextTable::Num(rms(temporal_err), 2),
                  TextTable::Num(rms(spatial_err), 2),
                  TextTable::Num(claimed_sigma.mean(), 2)});
  }

  std::printf("=== A9: silent-sensor estimation error ===\n");
  table.Print();
  std::printf("\nClaim check: with strong spatial correlation, conditioning on live\n"
              "neighbours beats the sensor's own (aging) temporal forecast; "
              "the advantage\n"
              "fades as correlation drops — and the model's claimed sigma "
              "tracks that.\n");
  BenchReport report("ablation_spatial");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
