// Ablation A2 — the §3 extrapolation claim: "extrapolated data can mask cache misses
// and answer queries so long as the query precision is met."
//
// Sweeps the query error tolerance and reports where answers come from (cache /
// extrapolation / sensor pull) and what they cost in latency and sensor traffic.

#include <cstdio>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A2: query tolerance vs answer source and latency\n");
  std::printf("(2 proxies x 4 sensors, model-driven push at 0.5 C, 2-day warmup)\n\n");

  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 4;
  config.policy = PushPolicy::kModelDriven;
  config.model_tolerance = 0.5;
  config.seed = 777;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  const double tolerances[] = {0.1, 0.25, 0.5, 1.0, 2.0, 4.0};
  TextTable table;
  table.SetHeader({"tolerance_C", "hit", "extrapolated", "pull", "failed", "mean_lat_ms",
                   "p95_lat_ms", "pulls_issued"});

  Pcg32 rng(99);
  for (double tolerance : tolerances) {
    int hit = 0;
    int extrapolated = 0;
    int pull = 0;
    int failed = 0;
    SampleSet latency_ms;
    const uint64_t pulls_before = deployment.proxy(0).stats().pulls +
                                  deployment.proxy(1).stats().pulls;
    for (int i = 0; i < 60; ++i) {
      QuerySpec spec;
      // Mix NOW and short PAST queries across sensors.
      const int p = static_cast<int>(rng.UniformInt(0, 1));
      const int s = static_cast<int>(rng.UniformInt(0, 3));
      spec.sensor_id = Deployment::SensorId(p, s);
      spec.tolerance = tolerance;
      if (rng.Bernoulli(0.4)) {
        spec.type = QueryType::kPast;
        const SimTime start =
            deployment.sim().Now() - Hours(6) -
            static_cast<Duration>(rng.UniformInt(0, Hours(12)));
        spec.range = TimeInterval{start, start + Minutes(20)};
      }
      const UnifiedQueryResult result = deployment.QueryAndWait(spec);
      if (!result.answer.status.ok()) {
        ++failed;
        continue;
      }
      latency_ms.Add(ToMillis(result.Latency()));
      switch (result.answer.source) {
        case AnswerSource::kCacheHit:
          ++hit;
          break;
        case AnswerSource::kExtrapolated:
          ++extrapolated;
          break;
        case AnswerSource::kSensorPull:
          ++pull;
          break;
        case AnswerSource::kFailed:
          break;
      }
      // Space queries out so pulled data ages out of the freshness window.
      deployment.RunUntil(deployment.sim().Now() + Minutes(7));
    }
    const uint64_t pulls_after =
        deployment.proxy(0).stats().pulls + deployment.proxy(1).stats().pulls;
    table.AddRow({TextTable::Num(tolerance, 2), TextTable::Int(hit),
                  TextTable::Int(extrapolated), TextTable::Int(pull),
                  TextTable::Int(failed), TextTable::Num(latency_ms.mean(), 1),
                  TextTable::Num(latency_ms.Quantile(0.95), 1),
                  TextTable::Int(static_cast<long long>(pulls_after - pulls_before))});
  }

  std::printf("=== A2: answer source vs tolerance ===\n");
  table.Print();
  std::printf("\nClaim check: tight tolerances force radio pulls (slow, "
              "costly); once the\n"
              "tolerance clears the push threshold (0.5 C), extrapolation "
              "answers almost\n"
              "everything at millisecond latency.\n");
  BenchReport report("ablation_precision");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
