// Ablation A1 — the §2 claim that "a pure pull-based approach ... will likely fail to
// capture [unexpected events]", and that model-driven push beats value-driven and
// periodic reporting on the energy/fidelity/event-latency frontier.
//
// Identical 7-day temperature world (with injected transient events) under five sensor
// reporting policies; we report sensor energy, proxy-side reconstruction error, and
// rare-event detection.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/util/table.h"

using namespace presto;

namespace {

struct PolicyResult {
  double energy_j_day = 0.0;
  double cache_rmse = 0.0;
  double push_fraction = 0.0;
  double event_detect = 0.0;
  double event_latency_s = 0.0;
};

PolicyResult RunPolicy(PushPolicy policy, ProxyMode mode, bool manage_models) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 4;
  config.policy = policy;
  config.proxy_mode = mode;
  config.manage_models = manage_models;
  config.model_tolerance = 0.5;
  config.value_delta = 0.5;  // same threshold for a fair fight
  config.batch_interval = Hours(1);
  config.field.events_per_day = 1.0;
  config.seed = 1234;  // identical world across policies
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(7));

  PolicyResult result;
  result.energy_j_day = deployment.MeanSensorEnergy() / 7.0;

  // Proxy-side reconstruction: nearest cache entry (or nothing) on a 10-min grid over
  // the post-warmup window, against ground truth.
  double sq = 0.0;
  int64_t points = 0;
  uint64_t pushed = 0;
  uint64_t samples = 0;
  uint64_t events = 0;
  uint64_t detected = 0;
  RunningStats latency;
  for (int s = 0; s < config.sensors_per_proxy; ++s) {
    const NodeId id = Deployment::SensorId(0, s);
    const SummaryCache* cache = deployment.proxy(0).cache(id);
    for (SimTime t = Days(2); t < Days(7); t += Minutes(10)) {
      const double truth = deployment.field().TruthAt(s, t);
      auto near = cache->Nearest(t, Minutes(10));
      double estimate = truth;  // perfect if present
      if (near.has_value()) {
        estimate = near->second.value;
      } else {
        auto latest = cache->Latest();
        estimate = latest.has_value() ? latest->second.value : 20.0;
      }
      sq += (estimate - truth) * (estimate - truth);
      ++points;
    }
    pushed += deployment.sensor(0, s).stats().pushed_samples;
    samples += deployment.sensor(0, s).stats().samples;
    for (const TransientEvent& event :
         deployment.field().EventsIn(s, TimeInterval{Days(2), Days(7) - Hours(1)})) {
      if (std::abs(event.magnitude) < 2.0) {
        continue;
      }
      ++events;
      for (const auto& entry :
           cache->RangeEntries({event.start, event.start + Minutes(10)})) {
        // Judge by arrival time: a late-delivered batch covering the window is not a
        // timely detection.
        if (entry.source != CacheSource::kExtrapolated &&
            entry.inserted_at <= event.start + Minutes(10)) {
          ++detected;
          latency.Add(ToSeconds(entry.inserted_at - event.start));
          break;
        }
      }
    }
  }
  result.cache_rmse = std::sqrt(sq / static_cast<double>(points));
  result.push_fraction = static_cast<double>(pushed) / static_cast<double>(samples);
  result.event_detect = events > 0 ? static_cast<double>(detected) / events : 0.0;
  result.event_latency_s = latency.mean();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A1: reporting policies on an identical 7-day world\n"
              "(4 sensors, 1 C-scale transients ~1/day/sensor, threshold 0.5 C)\n\n");
  TextTable table;
  table.SetHeader({"policy", "J_per_day", "push_frac", "cache_rmse_C", "event_detect",
                   "event_lat_s"});
  struct Row {
    const char* name;
    PushPolicy policy;
    ProxyMode mode;
    bool models;
  };
  const Row rows[] = {
      {"pull-only (no push)", PushPolicy::kNone, ProxyMode::kAlwaysPull, false},
      {"every-sample stream", PushPolicy::kEverySample, ProxyMode::kCacheOnly, false},
      {"batched hourly", PushPolicy::kBatched, ProxyMode::kCacheOnly, false},
      {"value-driven d=0.5", PushPolicy::kValueDriven, ProxyMode::kCacheOnly, false},
      {"model-driven (PRESTO)", PushPolicy::kModelDriven, ProxyMode::kPresto, true},
  };
  for (const Row& row : rows) {
    std::printf("running %s...\n", row.name);
    const PolicyResult r = RunPolicy(row.policy, row.mode, row.models);
    table.AddRow({row.name, TextTable::Num(r.energy_j_day, 1),
                  TextTable::Num(r.push_fraction, 3), TextTable::Num(r.cache_rmse, 2),
                  TextTable::Num(r.event_detect, 2), TextTable::Num(r.event_latency_s,
                                                                    1)});
  }
  std::printf("\n=== A1: push policy frontier ===\n");
  table.Print();
  std::printf("\nClaim check: pull-only detects ~no events; model-driven "
              "detects them at\n"
              "stream-class latency for a small fraction of streaming's "
              "energy, and pushes\n"
              "fewer samples than value-driven at equal threshold.\n");
  BenchReport report("ablation_push_policies");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
