// Ablation A8 — failure injection against the §5 replication claim: "caches and
// prediction models at the wireless proxies may need to be further replicated at the
// wired proxies to enable low-latency query responses" (and availability).
//
// Part 1: packet-loss sweep — query success and latency under increasingly lossy
// sensor links. Part 2: proxy failure — availability with and without replication.

#include <cstdio>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

namespace {

struct QueryStatsOut {
  double success = 0.0;
  double mean_lat_ms = 0.0;
  double extrap_share = 0.0;
};

QueryStatsOut IssueQueries(Deployment& deployment, int count, double tolerance,
                           uint64_t seed) {
  Pcg32 rng(seed);
  int ok = 0;
  int extrapolated = 0;
  SampleSet latency;
  for (int i = 0; i < count; ++i) {
    QuerySpec spec;
    const int p = static_cast<int>(rng.UniformInt(0,
                                                  deployment.config().num_proxies - 1));
    const int s =
        static_cast<int>(rng.UniformInt(0, deployment.config().sensors_per_proxy - 1));
    spec.sensor_id = Deployment::SensorId(p, s);
    spec.tolerance = tolerance;
    if (rng.Bernoulli(0.3)) {
      spec.type = QueryType::kPast;
      const SimTime start = deployment.sim().Now() - Hours(3) -
                            static_cast<Duration>(rng.UniformInt(0, Hours(6)));
      spec.range = TimeInterval{start, start + Minutes(15)};
    }
    const UnifiedQueryResult result = deployment.QueryAndWait(spec);
    if (result.answer.status.ok()) {
      ++ok;
      latency.Add(ToMillis(result.Latency()));
      if (result.answer.source == AnswerSource::kExtrapolated) {
        ++extrapolated;
      }
    }
    deployment.RunUntil(deployment.sim().Now() + Minutes(3));
  }
  QueryStatsOut out;
  out.success = static_cast<double>(ok) / count;
  out.mean_lat_ms = latency.mean();
  out.extrap_share = ok > 0 ? static_cast<double>(extrapolated) / ok : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A8: failure injection\n\n");

  // --- Part 1: frame loss sweep ---
  TextTable loss_table;
  loss_table.SetHeader({"frame_loss", "push_drop_rate", "retries_per_frame",
                        "query_success", "mean_lat_ms", "J_per_day"});
  for (double loss : {0.0, 0.1, 0.25, 0.4, 0.5}) {
    DeploymentConfig config;
    config.num_proxies = 1;
    config.sensors_per_proxy = 4;
    config.net.default_frame_loss = loss;
    config.seed = 600;
    Deployment deployment(config);
    deployment.Start();
    deployment.RunUntil(Days(2));
    const QueryStatsOut q = IssueQueries(deployment, 40, 0.8, 601);

    const NetStats& net = deployment.net().stats();
    const double drop_rate =
        net.messages_sent > 0
            ? static_cast<double>(net.messages_dropped) / net.messages_sent
            : 0.0;
    const double retries =
        net.frames_sent > 0
            ? static_cast<double>(net.frame_retries) / net.frames_sent
            : 0.0;
    loss_table.AddRow({TextTable::Num(loss, 2), TextTable::Num(drop_rate, 3),
                       TextTable::Num(retries, 3), TextTable::Num(q.success, 2),
                       TextTable::Num(q.mean_lat_ms, 1),
                       TextTable::Num(deployment.MeanSensorEnergy() /
                                          ToDays(deployment.sim().Now()), 1)});
  }
  std::printf("=== A8a: packet-loss sweep ===\n");
  loss_table.Print();

  // --- Part 2: proxy failure with/without replication ---
  TextTable failover_table;
  failover_table.SetHeader({"replication", "success_before", "success_after",
                            "failovers", "extrap_share_after"});
  for (bool replication : {false, true}) {
    DeploymentConfig config;
    config.num_proxies = 2;
    config.sensors_per_proxy = 4;
    config.enable_replication = replication;
    config.seed = 700;
    Deployment deployment(config);
    deployment.Start();
    deployment.RunUntil(Days(2));

    const QueryStatsOut before = IssueQueries(deployment, 30, 1.0, 701);
    deployment.net().SetNodeDown(Deployment::ProxyId(0), true);
    const QueryStatsOut after = IssueQueries(deployment, 30, 1.0, 702);

    failover_table.AddRow({replication ? "on" : "off", TextTable::Num(before.success, 2),
                           TextTable::Num(after.success, 2),
                           TextTable::Int(static_cast<long long>(
                               deployment.store().stats().failovers)),
                           TextTable::Num(after.extrap_share, 2)});
  }
  std::printf("\n=== A8b: proxy failure and replica failover ===\n");
  failover_table.Print();
  std::printf("\nClaim check: retries absorb moderate loss (success stays "
              "high, retries and\n"
              "energy climb); without replication a proxy failure takes its sensors'\n"
              "queries down, with replication the peer keeps answering from replicated\n"
              "cache + models.\n");
  BenchReport report("ablation_failures");
  report.AddTable(loss_table, "loss/");
  report.AddTable(failover_table, "failover/");
  return report.WriteJson(json_path) ? 0 : 1;
}
