// Microbench M4 — core data-structure throughput: skip-graph ops, summary-cache ops,
// and the event queue that everything runs on.

#include <benchmark/benchmark.h>

#include "src/index/skip_graph.h"
#include "src/proxy/summary_cache.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace presto {
namespace {

void BM_SkipGraphInsert(benchmark::State& state) {
  SkipGraph graph(1);
  Pcg32 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.Insert(rng.NextU64(), 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipGraphInsert);

void BM_SkipGraphSearch(benchmark::State& state) {
  SkipGraph graph(1);
  Pcg32 rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < state.range(0); ++i) {
    keys.push_back(rng.NextU64());
    graph.Insert(keys.back(), 1);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.Search(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipGraphSearch)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SummaryCacheInsert(benchmark::State& state) {
  SummaryCache cache(1 << 20);
  SimTime t = 0;
  for (auto _ : state) {
    t += Seconds(31);
    cache.Insert(t, 20.0, CacheSource::kPushed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SummaryCacheInsert);

void BM_SummaryCacheNearest(benchmark::State& state) {
  SummaryCache cache(1 << 20);
  for (SimTime t = 0; t < Days(7); t += Seconds(31)) {
    cache.Insert(t, 20.0, CacheSource::kPushed);
  }
  Pcg32 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Nearest(static_cast<SimTime>(rng.UniformInt(0, Days(7))), Minutes(5)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SummaryCacheNearest);

void BM_SummaryCacheCoverage(benchmark::State& state) {
  SummaryCache cache(1 << 20);
  for (SimTime t = 0; t < Days(7); t += Seconds(31)) {
    cache.Insert(t, 20.0, CacheSource::kPushed);
  }
  Pcg32 rng(6);
  for (auto _ : state) {
    const SimTime start = static_cast<SimTime>(rng.UniformInt(0, Days(6)));
    benchmark::DoNotOptimize(
        cache.CoverageFraction(TimeInterval{start, start + Hours(1)}, Seconds(31)));
  }
}
BENCHMARK(BM_SummaryCacheCoverage);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int fired = 0;
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      sim.ScheduleAt(i, [&fired] { ++fired; });
    }
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace
}  // namespace presto
