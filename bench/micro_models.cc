// Microbench M1 — the §3 asymmetry requirement: "models ... can be hard to build at
// the proxy, but they must require little resources to verify at the sensor."
//
// Measures wall-clock cost of proxy-side Fit vs sensor-side Predict (the per-sample
// check) for every model family, plus Deserialize (installation) and OnAnchor.

#include <benchmark/benchmark.h>

#include <cmath>

#include "src/models/registry.h"
#include "src/util/rng.h"

namespace presto {
namespace {

constexpr Duration kPeriod = Seconds(31);

ModelConfig Config() {
  ModelConfig c;
  c.sample_period = kPeriod;
  return c;
}

std::vector<Sample> History(int days) {
  Pcg32 rng(12);
  std::vector<Sample> out;
  double ar = 0.0;
  for (SimTime t = 0; t < Days(days); t += kPeriod) {
    ar = 0.97 * ar + rng.Gaussian(0, 0.08);
    out.push_back(Sample{t, 20.0 + 5.0 * std::sin(2.0 * M_PI *
                                                  static_cast<double>(t % kDay) /
                                                  static_cast<double>(kDay)) +
                                ar});
  }
  return out;
}

ModelType TypeFromIndex(int64_t i) {
  static const ModelType kTypes[] = {ModelType::kLastValue, ModelType::kSeasonal,
                                     ModelType::kAr, ModelType::kSeasonalAr,
                                     ModelType::kMarkov};
  return kTypes[i];
}

void BM_ProxyFit(benchmark::State& state) {
  const ModelType type = TypeFromIndex(state.range(0));
  const std::vector<Sample> history = History(3);
  for (auto _ : state) {
    auto model = CreateModel(type, Config());
    benchmark::DoNotOptimize(model->Fit(history));
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ProxyFit)->DenseRange(0, 4);

void BM_SensorCheck(benchmark::State& state) {
  const ModelType type = TypeFromIndex(state.range(0));
  auto model = CreateModel(type, Config());
  const std::vector<Sample> history = History(3);
  if (!model->Fit(history).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  SimTime t = history.back().t;
  for (auto _ : state) {
    t += kPeriod;  // the sensor checks the next sample, one step ahead
    benchmark::DoNotOptimize(model->Predict(t));
    model->OnAnchor(Sample{t, 20.0});  // worst case: every check anchors
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_SensorCheck)->DenseRange(0, 4);

void BM_SensorInstall(benchmark::State& state) {
  const ModelType type = TypeFromIndex(state.range(0));
  auto model = CreateModel(type, Config());
  if (!model->Fit(History(3)).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  const std::vector<uint8_t> wire = model->Serialize();
  for (auto _ : state) {
    auto installed = DeserializeModel(wire, Config());
    benchmark::DoNotOptimize(installed);
  }
  state.SetLabel(std::string(ModelTypeName(type)) + "/" + std::to_string(wire.size()) +
                 "B");
}
BENCHMARK(BM_SensorInstall)->DenseRange(0, 4);

// Long-horizon forecast (proxy-side extrapolation of a day-long gap).
void BM_ProxyExtrapolateDayGap(benchmark::State& state) {
  auto model = CreateModel(ModelType::kSeasonalAr, Config());
  const std::vector<Sample> history = History(3);
  if (!model->Fit(history).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  const SimTime t = history.back().t + Days(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(t));
  }
}
BENCHMARK(BM_ProxyExtrapolateDayGap);

}  // namespace
}  // namespace presto
