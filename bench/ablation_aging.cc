// Ablation A5 — the §4 claim: "If storage is constrained on each sensor, graceful
// aging of archived data can be enabled using wavelet-based multi-resolution
// techniques [10]."
//
// Archives a 28-day trace into flash devices of shrinking capacity and reports, per
// data age, whether queries still succeed and at what resolution/error — versus a
// no-aging store that simply fills up and rejects.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_report.h"
#include "src/flash/archive_store.h"
#include "src/util/table.h"
#include "src/wavelet/aging.h"
#include "src/workload/temperature.h"

using namespace presto;

namespace {

constexpr Duration kPeriod = Seconds(31);
constexpr int kDays = 28;

FlashParams FlashOfSize(int kib) {
  FlashParams p;
  p.page_size_bytes = 256;
  p.pages_per_block = 16;
  p.num_blocks = kib * 1024 / (256 * 16);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A5: multi-resolution aging under storage pressure\n");
  std::printf("(28-day temperature trace, 31 s sampling = %d records ~ %.0f KiB raw)\n\n",
              kDays * 2786, kDays * 2786 * 7.2 / 1024.0);

  TemperatureParams world;
  world.seed = 808;
  TemperatureSignal signal(world);

  TextTable table;
  table.SetHeader({"flash_KiB", "aging", "appends_ok", "aging_passes", "oldest_day_kept",
                   "res_day1", "rmse_day1_C", "res_day27", "rmse_day27_C"});

  for (int kib : {768, 384, 192, 96}) {
    for (bool aging : {true, false}) {
      FlashDevice dev(FlashOfSize(kib), nullptr);
      ArchiveParams params;
      params.nominal_sample_period = kPeriod;
      params.aging_enabled = aging;
      ArchiveStore store(&dev, params);
      store.SetSummarizer(WaveletAgingSummarize);

      uint64_t appended = 0;
      for (SimTime t = 0; t < Days(kDays); t += kPeriod) {
        if (store.Append(Sample{t, signal.ValueAt(t)}).ok()) {
          ++appended;
        }
      }
      (void)store.Flush();

      auto evaluate_day = [&store, &signal](int day, std::string* res, double* rmse) {
        const TimeInterval range{Days(day), Days(day) + Hours(6)};
        auto data = store.Query(range);
        if (!data.ok() || data->empty()) {
          *res = "-";
          *rmse = -1.0;
          return;
        }
        auto resolution = store.ResolutionAt(range.start + Hours(1));
        *res = resolution.ok() ? FormatDuration(*resolution) : "?";
        // Step-upsample the (possibly coarse) archive back to the sampling grid.
        const size_t n = static_cast<size_t>(range.Length() / kPeriod);
        const auto grid = UpsampleToGrid(*data, kPeriod, range.start, n);
        double sq = 0.0;
        for (const Sample& s : grid) {
          const double diff = s.value - signal.ValueAt(s.t);
          sq += diff * diff;
        }
        *rmse = std::sqrt(sq / static_cast<double>(n));
      };

      std::string res1;
      std::string res27;
      double rmse1 = 0.0;
      double rmse27 = 0.0;
      evaluate_day(1, &res1, &rmse1);
      evaluate_day(kDays - 1, &res27, &rmse27);
      auto retained = store.RetainedRange();
      const double oldest =
          retained.ok() ? ToDays(retained->start) : -1.0;

      table.AddRow({TextTable::Int(kib), aging ? "on" : "off",
                    TextTable::Num(
                        100.0 * static_cast<double>(appended) / (Days(kDays) / kPeriod),
                        1),
                    TextTable::Int(static_cast<long long>(store.stats().aging_passes)),
                    TextTable::Num(oldest, 1), res1,
                    rmse1 < 0 ? "-" : TextTable::Num(rmse1, 2), res27,
                    rmse27 < 0 ? "-" : TextTable::Num(rmse27, 2)});
    }
  }

  std::printf("=== A5: storage budget sweep (appends_ok in %%) ===\n");
  table.Print();
  std::printf("\nClaim check: with aging on, every append succeeds and day-1 data stays\n"
              "queryable at coarser resolution/higher error as flash shrinks; "
              "with aging\n"
              "off the store fills and rejects new data (or day-1 data would "
              "be gone).\n");
  BenchReport report("ablation_aging");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
