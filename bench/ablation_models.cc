// Ablation A4 — the §3 requirement that "models should effectively capture the
// statistics of the underlying physical process": compares model families on the same
// model-driven-push deployment. A better model means fewer deviations pushed (energy)
// at equal proxy-side accuracy.

#include <cmath>
#include <cstdio>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/util/table.h"

using namespace presto;

namespace {

struct ModelResult {
  double pushes_per_day = 0.0;
  double suppression = 0.0;
  double energy_j_day = 0.0;
  double extrap_rmse = 0.0;
  size_t params_bytes = 0;
};

ModelResult RunModel(ModelType type) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 2;
  config.policy = PushPolicy::kModelDriven;
  config.model_tolerance = 0.5;
  config.engine.model_type = type;
  config.field.events_per_day = 0.2;
  config.seed = 31337;  // identical world for every model family
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(14));

  ModelResult result;
  uint64_t pushes = 0;
  uint64_t samples = 0;
  uint64_t suppressed = 0;
  double sq = 0.0;
  int64_t points = 0;
  for (int s = 0; s < config.sensors_per_proxy; ++s) {
    const SensorNode& sensor = deployment.sensor(0, s);
    pushes += sensor.stats().pushes;
    samples += sensor.stats().samples;
    suppressed += sensor.stats().suppressed;
    // Extrapolation accuracy on a grid over the final week (post model install).
    const PredictionEngine* engine =
        deployment.proxy(0).engine(Deployment::SensorId(0, s));
    for (SimTime t = Days(7); t < Days(14); t += Minutes(15)) {
      auto prediction = engine->Predict(t);
      if (prediction.ok()) {
        const double truth = deployment.field().TruthAt(s, t);
        sq += (prediction->value - truth) * (prediction->value - truth);
        ++points;
      }
    }
    if (sensor.model() != nullptr) {
      result.params_bytes = sensor.model()->Serialize().size();
    }
  }
  result.pushes_per_day = static_cast<double>(pushes) / 14.0 / config.sensors_per_proxy;
  result.suppression = static_cast<double>(suppressed) / static_cast<double>(samples);
  result.energy_j_day = deployment.MeanSensorEnergy() / 14.0;
  result.extrap_rmse = points > 0 ? std::sqrt(sq / static_cast<double>(points)) : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A4: model family vs push rate and extrapolation accuracy\n");
  std::printf(
      "(14 days, model-driven push, tolerance 0.5 C, identical diurnal world)\n\n");

  TextTable table;
  table.SetHeader({"model", "pushes_per_day", "suppression", "J_per_day",
                   "extrap_rmse_C", "params_bytes"});
  for (ModelType type : {ModelType::kLastValue, ModelType::kSeasonal, ModelType::kAr,
                         ModelType::kSeasonalAr}) {
    std::printf("running %s...\n", ModelTypeName(type));
    const ModelResult r = RunModel(type);
    table.AddRow({ModelTypeName(type), TextTable::Num(r.pushes_per_day, 1),
                  TextTable::Num(r.suppression, 3), TextTable::Num(r.energy_j_day, 1),
                  TextTable::Num(r.extrap_rmse, 2),
                  TextTable::Int(static_cast<long long>(r.params_bytes))});
  }
  std::printf("\n=== A4: model comparison ===\n");
  table.Print();
  std::printf("\nClaim check: pure climatology (seasonal) cannot track "
              "weather fronts and\n"
              "floods the channel; AR-anchored models match persistence's "
              "push rate, and\n"
              "adding the seasonal component (seasonal-ar) halves proxy-side "
              "extrapolation\n"
              "error at the lowest push rate. Parameter blobs stay radio-cheap.\n");
  BenchReport report("ablation_models");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
