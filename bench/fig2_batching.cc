// Reproduces Figure 2 of the paper: "Exploiting batching to conserve energy".
//
// One temperature sensor reports to a tethered proxy over an LPL MAC for ~35 simulated
// days (31 s sampling = 98,304 samples, mirroring the Intel Lab trace cadence the paper
// used). Four policies, exactly the figure's series:
//
//   - Batched Push w/ Wavelet Denoising   (batch, compress, denoise)
//   - Batched Push w/o Compression        (batch, raw float32)
//   - Value-Driven Push (Delta = 1 C)     (immediate push on 1 C change)
//   - Value-Driven Push (Delta = 2 C)
//
// X axis: batching interval in {16.5, 33, 66, 132, 264, 529, 1058, 2116} minutes
// (doubling, 32..4096 samples per batch). Y axis: total sensor energy in joules.
// Value-driven series do not batch, so their energy is one horizontal line each.
//
// Expected shape (paper): value-driven lines flat, Delta=1 above Delta=2; batched
// curves fall monotonically with the interval; denoising below raw, gap widening; the
// batched curves start above the value-driven lines and cross below them mid-range.
// Absolute joules depend on the radio calibration (see EXPERIMENTS.md): we model a
// Mica2-class CC1000 radio with a 15 s post-burst feedback window.

// A second phase sweeps the *link-coalescing* epoch (`net.batch_epoch`) on a small
// replicated multi-proxy deployment: same-destination messages enqueued within the
// epoch (replica updates fanning into one wired link, proxy control + pull traffic
// sharing a sensor rendezvous) ride one transaction. The table reports sensor energy,
// interactive NOW latency, and the share of messages that coalesced — the operating
// point picked from it is the DeploymentConfig default (see README).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/net/network.h"
#include "src/sensor/sensor_node.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/temperature.h"

using namespace presto;

namespace {

constexpr Duration kSamplePeriod = Seconds(31);
constexpr int kTotalSamples = 98304;  // 24 batches of 4096 at the largest interval
constexpr Duration kRunTime = kSamplePeriod * kTotalSamples;
constexpr uint64_t kWorldSeed = 20050612;

// The proxy side of the link: powered, always listening; we only need it to absorb
// pushes (energy accounting happens at the sensor).
class Sink : public NetNode {
 public:
  void OnMessage(const Message& message) override {
    ++messages;
    payload_bytes += message.payload.size();
  }
  uint64_t messages = 0;
  uint64_t payload_bytes = 0;
};

struct RunResult {
  double total_j = 0.0;
  double radio_j = 0.0;
  double cpu_j = 0.0;
  uint64_t pushes = 0;
  uint64_t payload_bytes = 0;
  uint64_t frames = 0;
};

RunResult RunPolicy(PushPolicy policy, Duration batch_interval, bool compress,
                    double value_delta) {
  Simulator sim;
  NetworkParams net_params;
  net_params.radio = Cc1000Radio();
  Network net(&sim, net_params, /*seed=*/7);

  Sink proxy;
  NodeRadioConfig proxy_radio;
  proxy_radio.powered = true;
  net.AttachNode(1, &proxy, proxy_radio, nullptr);

  // Identical world for every policy: same seed, same trace.
  TemperatureParams world;
  world.seed = kWorldSeed;
  auto field = std::make_shared<TemperatureField>(1, world, 0.9);

  SensorNodeConfig config;
  config.id = 100;
  config.proxy_id = 1;
  config.sensing_period = kSamplePeriod;
  config.policy = policy;
  config.batch_interval = batch_interval;
  config.compress = compress;
  config.codec.quant_step = 0.05;  // ~0.1 C reconstruction, well under sensor noise
  config.codec.denoise = true;
  config.value_delta = value_delta;
  config.drift_ppm = 10.0;
  // Sensors stay awake 15 s after each burst for proxy feedback (model/config traffic);
  // this per-burst overhead is exactly what batching amortizes.
  config.radio.post_burst_listen = Seconds(15);
  config.radio.lpl_interval = Seconds(2);
  // Enough flash that the 35-day archive does not trigger aging mid-benchmark.
  config.flash.num_blocks = 512;
  config.seed = 3;

  SensorNode sensor(&sim, &net, config, [field](SimTime t) {
    return field->MeasureAt(0, t);
  });
  sensor.Start();
  sim.RunUntil(kRunTime);
  net.SettleIdleEnergy();

  RunResult result;
  result.total_j = sensor.meter().Total();
  result.radio_j = sensor.meter().RadioTotal();
  result.cpu_j = sensor.meter().Component(EnergyComponent::kCpu);
  result.pushes = sensor.stats().pushes;
  result.payload_bytes = proxy.payload_bytes;
  result.frames = net.node_stats(100).frames_sent;
  return result;
}

// ---------- link-coalescing epoch sweep (net.batch_epoch) ----------

struct EpochResult {
  double j_per_sensor_day = 0.0;
  double now_ms_mean = 0.0;
  double now_ms_p95 = 0.0;
  double success = 0.0;
  double batched_share = 0.0;
  uint64_t wired_tx = 0;  // wired transactions actually sent (fan-in coalesces here)
};

EpochResult RunEpochCell(Duration batch_epoch) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 16;
  config.enable_replication = true;
  config.net.batch_epoch = batch_epoch;
  config.seed = kWorldSeed ^ 0xe90c4;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(20));

  Pcg32 rng(kWorldSeed ^ 0x51eeb);
  SampleSet latency_ms;
  int ok = 0;
  const int queries = 96;
  for (int i = 0; i < queries; ++i) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(
        static_cast<int>(rng.UniformInt(0, deployment.total_sensors() - 1)));
    spec.tolerance = 1.5;
    const UnifiedQueryResult result = deployment.QueryAndWait(spec);
    if (result.answer.status.ok()) {
      ++ok;
      latency_ms.Add(ToMillis(result.Latency()));
    }
    deployment.RunUntil(deployment.sim().Now() + Seconds(30));
  }

  EpochResult out;
  const double days = ToSeconds(deployment.sim().Now()) / 86400.0;
  out.j_per_sensor_day = deployment.MeanSensorEnergy() / days;
  out.now_ms_mean = latency_ms.mean();
  out.now_ms_p95 = latency_ms.Quantile(0.95);
  out.success = static_cast<double>(ok) / queries;
  const NetStats& net = deployment.net().stats();
  const uint64_t app_messages =
      net.messages_sent - net.batch_flushes + net.batched_messages;
  out.batched_share =
      app_messages > 0 ? static_cast<double>(net.batched_messages) / app_messages : 0.0;
  out.wired_tx = net.wired_messages;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("PRESTO Figure 2 reproduction: total energy vs batching interval\n");
  std::printf("trace: %d samples at 31 s (%.1f days), Mica2-class radio\n\n",
              kTotalSamples,
              ToDays(kRunTime));

  // Value-driven push ignores the batching interval: one run per delta.
  std::printf("running value-driven baselines...\n");
  const RunResult value1 = RunPolicy(PushPolicy::kValueDriven, Minutes(16.5), false, 1.0);
  const RunResult value2 = RunPolicy(PushPolicy::kValueDriven, Minutes(16.5), false, 2.0);

  const double intervals_min[] = {16.5, 33, 66, 132, 264, 529, 1058, 2116};
  TextTable table;
  table.SetHeader({"batch_interval_min", "batched_denoised_J", "batched_raw_J",
                   "value_driven_d1_J", "value_driven_d2_J"});
  TextTable detail;
  detail.SetHeader({"batch_interval_min", "series", "total_J", "radio_J", "cpu_J",
                    "pushes", "payload_KB", "frames"});

  auto detail_row = [&detail](double interval, const char* name, const RunResult& r) {
    detail.AddRow({TextTable::Num(interval, 1), name, TextTable::Num(r.total_j, 1),
                   TextTable::Num(r.radio_j, 1), TextTable::Num(r.cpu_j, 3),
                   TextTable::Int(static_cast<long long>(r.pushes)),
                   TextTable::Num(static_cast<double>(r.payload_bytes) / 1024.0, 1),
                   TextTable::Int(static_cast<long long>(r.frames))});
  };
  detail_row(0, "value-driven d=1", value1);
  detail_row(0, "value-driven d=2", value2);

  for (double interval_min : intervals_min) {
    std::printf("running batched policies at %.1f min...\n", interval_min);
    const Duration interval = Minutes(interval_min);
    const RunResult denoised = RunPolicy(PushPolicy::kBatched, interval, true, 0.0);
    const RunResult raw = RunPolicy(PushPolicy::kBatched, interval, false, 0.0);
    table.AddRow({TextTable::Num(interval_min, 1), TextTable::Num(denoised.total_j, 1),
                  TextTable::Num(raw.total_j, 1), TextTable::Num(value1.total_j, 1),
                  TextTable::Num(value2.total_j, 1)});
    detail_row(interval_min, "batched denoised", denoised);
    detail_row(interval_min, "batched raw", raw);
  }

  std::printf("\n=== Figure 2: Total Energy Cost (J) vs Batching Interval (min) ===\n");
  table.Print();
  std::printf("\n=== detail ===\n");
  detail.Print();
  std::printf("\nPaper shape check: batched curves fall with the interval; "
              "denoised <= raw;\n"
              "value-driven lines flat with d=1 above d=2; crossover mid-range.\n");

  // --- link-coalescing epoch (net.batch_epoch) on a replicated deployment ---
  std::printf("\n=== net.batch_epoch sweep: 4 proxies x 64 sensors, K=2 ===\n");
  const double epochs_s[] = {0.0, 0.25, 1.0, 2.0, 5.0, 15.0};
  TextTable epoch_table;
  epoch_table.SetHeader({"batch_epoch_s", "J/sensor/day", "now_ms", "now_p95_ms", "ok",
                         "batched_share", "wired_tx"});
  for (double epoch_s : epochs_s) {
    std::printf("running net.batch_epoch = %.2f s...\n", epoch_s);
    const EpochResult r =
        RunEpochCell(static_cast<Duration>(epoch_s * static_cast<double>(kSecond)));
    epoch_table.AddRow({TextTable::Num(epoch_s, 2), TextTable::Num(r.j_per_sensor_day, 2),
                        TextTable::Num(r.now_ms_mean, 1), TextTable::Num(r.now_ms_p95, 1),
                        TextTable::Num(r.success, 2), TextTable::Num(r.batched_share, 3),
                        TextTable::Int(static_cast<long long>(r.wired_tx))});
  }
  std::printf("\n");
  epoch_table.Print();
  std::printf("\nOperating point: pulls and archive replies bypass the window, so "
              "interactive\nlatency stays at the epoch-0 level for any epoch; replica "
              "fan-in coalesces on\nthe wired tier from 0.25 s up. The DeploymentConfig "
              "default is 1 s (recorded in\nREADME): comfortably inside the flat "
              "latency region, with the wired transaction\nsavings already saturated.\n");
  BenchReport report("fig2_batching");
  report.AddTable(table, "batch/");
  report.AddTable(detail, "detail/");
  report.AddTable(epoch_table, "epoch/");
  return report.WriteJson(json_path) ? 0 : 1;
}
