// Microbench M2 — wavelet codec: transform/denoise/codec throughput and the
// bytes-per-sample the energy model ultimately charges, across batch sizes (the
// Figure 2 mechanism at micro scale).

#include <benchmark/benchmark.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/wavelet/codec.h"
#include "src/wavelet/denoise.h"
#include "src/wavelet/transform.h"

namespace presto {
namespace {

std::vector<double> Signal(size_t n) {
  Pcg32 rng(7);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = 20.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 2786.0) +
             rng.Gaussian(0, 0.12);
  }
  return out;
}

void BM_ForwardDwt(benchmark::State& state) {
  const auto signal = Signal(static_cast<size_t>(state.range(0)));
  const WaveletKind kind = state.range(1) == 0 ? WaveletKind::kHaar
                                               : WaveletKind::kDaubechies4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ForwardDwt(signal, kind, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(kind == WaveletKind::kHaar ? "haar" : "d4");
}
BENCHMARK(BM_ForwardDwt)->ArgsProduct({{256, 4096}, {0, 1}});

void BM_CompressBatch(benchmark::State& state) {
  const auto signal = Signal(static_cast<size_t>(state.range(0)));
  CodecParams params;
  params.quant_step = 0.05;
  size_t bytes = 0;
  for (auto _ : state) {
    auto out = EncodeWaveletBatch(0, Seconds(31), signal, params);
    bytes = out.ok() ? out->size() : 0;
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::to_string(8.0 * static_cast<double>(bytes) /
                                static_cast<double>(state.range(0))) +
                 " bits/sample");
}
BENCHMARK(BM_CompressBatch)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)->Arg(4096);

void BM_DecompressBatch(benchmark::State& state) {
  const auto signal = Signal(static_cast<size_t>(state.range(0)));
  CodecParams params;
  params.quant_step = 0.05;
  const auto encoded = EncodeWaveletBatch(0, Seconds(31), signal, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeBatch(*encoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecompressBatch)->Arg(512)->Arg(4096);

void BM_Denoise(benchmark::State& state) {
  const auto signal = Signal(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Denoise(signal, WaveletKind::kHaar, 0, ThresholdMode::kHard));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Denoise);

void BM_EncodeIrregular(benchmark::State& state) {
  Pcg32 rng(9);
  std::vector<Sample> samples;
  SimTime t = 0;
  for (int i = 0; i < 1024; ++i) {
    t += rng.UniformInt(1, 90) * kSecond;
    samples.push_back(Sample{t, rng.Gaussian(20, 3)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeIrregularBatch(samples));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EncodeIrregular);

}  // namespace
}  // namespace presto
