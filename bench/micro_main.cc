// Shared main for the Google-Benchmark micro benches (micro_*). Replaces
// benchmark_main so the binaries honor the repo-wide `--json <path>` contract:
// the flag is stripped before benchmark::Initialize (which aborts on flags it
// does not recognize), every timed run is mirrored into a BenchReport row, and
// the usual console output is preserved untouched.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_report.h"

namespace {

// Console output passes through to the base class; each non-errored iteration
// run also lands in `rows` as (name, per-iteration times, user counters).
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  struct RowData {
    std::string name;
    double real_ns_per_iter = 0.0;
    double cpu_ns_per_iter = 0.0;
    double iterations = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      RowData row;
      row.name = run.benchmark_name();
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1;
      row.real_ns_per_iter = run.real_accumulated_time / iters * 1e9;
      row.cpu_ns_per_iter = run.cpu_accumulated_time / iters * 1e9;
      row.iterations = static_cast<double>(run.iterations);
      for (const auto& counter : run.counters) {
        row.counters.emplace_back(counter.first, counter.second.value);
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<RowData>& rows() const { return rows_; }

 private:
  std::vector<RowData> rows_;
};

std::string BenchNameFromArgv0(const char* argv0) {
  std::string name = argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (name.rfind("bench_", 0) == 0) {
    name = name.substr(6);
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = presto::ConsumeJsonFlag(&argc, argv);
  const std::string bench_name = BenchNameFromArgv0(argv[0]);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonMirrorReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  presto::BenchReport report(bench_name);
  report.set_grid("full");  // micro benches have a single grid
  for (const JsonMirrorReporter::RowData& data : reporter.rows()) {
    presto::BenchReport::Row& row = report.AddRow(data.name);
    row.Metric("real_ns_per_iter", data.real_ns_per_iter)
        .Metric("cpu_ns_per_iter", data.cpu_ns_per_iter)
        .Metric("iterations", data.iterations);
    for (const auto& counter : data.counters) {
      row.Metric(counter.first, counter.second);
    }
  }
  if (!report.WriteJson(json_path)) {
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
