// Reproduces Table 1 of the paper — the comparison of sensor-data architectures —
// as a *measured* table: the same simulated world and query stream run under each
// architecture row, with each qualitative column replaced by the metric it implies.
//
//   Diffusion/Cougar row  -> direct-query  (queries travel to sensors; no prediction)
//   TinyDB-BBQ/Aurora row -> streaming     (push everything to the proxy tier)
//   PRESTO row            -> proxy querying + sensor querying on miss, caching +
//                            archival, prediction, hierarchical & energy-aware
//
// Columns map as: "NOW queries" -> latency/success; "PAST queries" -> success/fidelity;
// "Prediction" -> extrapolated share; "Energy-aware" -> J per sensor-day and
// messages/day; the rare-event columns quantify the push-based advantage of §2.

#include <cstdio>

#include "bench/bench_report.h"
#include "src/core/architectures.h"
#include "src/util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  ArchitectureBenchConfig config;
  config.warmup = Days(2);
  config.query_window = Days(2);
  config.num_proxies = 2;
  config.sensors_per_proxy = 8;
  config.queries_per_hour = 24.0;
  config.past_fraction = 0.3;
  config.events_per_day = 1.0;
  config.seed = 42;

  std::printf("PRESTO Table 1 reproduction: identical world (%d sensors, %.0f days,\n"
              "%.0f queries/h, %.0f%% PAST) under three architectures\n\n",
              config.num_proxies * config.sensors_per_proxy,
              ToDays(config.warmup + config.query_window), config.queries_per_hour,
              100.0 * config.past_fraction);

  TextTable table;
  table.SetHeader({"architecture", "now_lat_ms", "now_p95_ms", "now_ok", "past_ok",
                   "past_rmse_C", "extrap_share", "hit_share", "pull_share",
                   "J_per_day", "msgs_per_day", "event_detect", "event_lat_s"});

  for (ArchitectureKind kind :
       {ArchitectureKind::kDirectQuery, ArchitectureKind::kStreaming,
        ArchitectureKind::kPresto}) {
    std::printf("running %s...\n", ArchitectureName(kind));
    const ArchitectureMetrics m = RunArchitectureBench(kind, config);
    table.AddRow({m.name, TextTable::Num(m.now_latency_ms_mean, 1),
                  TextTable::Num(m.now_latency_ms_p95, 1),
                  TextTable::Num(m.now_success, 2),
                  TextTable::Num(m.past_success, 2), TextTable::Num(m.past_rmse, 2),
                  TextTable::Num(m.extrapolated_share, 2),
                  TextTable::Num(m.cache_hit_share, 2), TextTable::Num(m.pull_share, 2),
                  TextTable::Num(m.energy_j_per_sensor_day, 1),
                  TextTable::Num(m.messages_per_sensor_day, 1),
                  TextTable::Num(m.event_detection_rate, 2),
                  TextTable::Num(m.event_latency_s, 1)});
  }

  std::printf("\n=== Table 1 (measured analogue) ===\n");
  table.Print();
  std::printf(
      "\nPaper's qualitative claims, quantified:\n"
      "  direct-query: lowest energy but second-scale NOW latency (not interactive)\n"
      "  streaming:    interactive but burns energy pushing every sample\n"
      "  presto:       streaming-class latency at near-direct energy, only row with\n"
      "                prediction (extrapolated answers) and sensor-archival PAST\n");
  BenchReport report("tab1_architectures");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
