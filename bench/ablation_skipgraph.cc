// Ablation A6 — the §5 distributed index: skip-graph cost scaling. Each hop is a
// proxy-to-proxy message in a deployment, so search/insert hop counts are the
// latency/traffic cost of the unified view. Expected: O(log n).

#include <cmath>
#include <cstdio>

#include "bench/bench_report.h"
#include "src/index/skip_graph.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A6: skip-graph scaling (hops per operation vs index size)\n\n");

  TextTable table;
  table.SetHeader({"nodes", "levels", "search_hops_mean", "search_hops_p95",
                   "insert_hops_mean", "range16_hops_mean", "hops_per_log2n"});

  for (int n : {16, 64, 256, 1024, 4096, 16384}) {
    SkipGraph graph(99);
    Pcg32 rng(1000 + n);
    RunningStats insert_hops;
    std::vector<uint64_t> keys;
    keys.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const uint64_t key = rng.NextU64() >> 20;
      keys.push_back(key);
      insert_hops.Add(graph.Insert(key, static_cast<uint64_t>(i)));
    }
    SampleSet search_hops;
    RunningStats range_hops;
    for (int i = 0; i < 400; ++i) {
      const uint64_t probe = keys[static_cast<size_t>(rng.UniformInt(0, n - 1))];
      search_hops.Add(graph.SearchFloor(probe).hops);
      int hops = 0;
      // A 16-element range scan from a random floor.
      auto floor = graph.SearchFloor(probe);
      (void)graph.RangeQuery(floor.key, floor.key + (1u << 18), &hops);
      range_hops.Add(hops);
    }
    const double log2n = std::log2(static_cast<double>(n));
    table.AddRow({TextTable::Int(n), TextTable::Int(graph.MaxLevel()),
                  TextTable::Num(search_hops.mean(), 1),
                  TextTable::Num(search_hops.Quantile(0.95), 1),
                  TextTable::Num(insert_hops.mean(), 1),
                  TextTable::Num(range_hops.mean(), 1),
                  TextTable::Num(search_hops.mean() / log2n, 2)});
  }

  std::printf("=== A6: skip-graph hop scaling ===\n");
  table.Print();
  std::printf("\nClaim check: hops grow ~logarithmically (hops / log2 n "
              "roughly flat), so\n"
              "the unified store's routing stays cheap at hundreds of proxies.\n");
  BenchReport report("ablation_skipgraph");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
