// Scale bench for the sharded multi-proxy deployment engine: sweeps proxy count ×
// sensor population × shard policy, reporting query latency, energy (J/sensor/day),
// shard balance, batching efficiency, and failover behaviour. Mid-run, proxy 0 is
// killed: with replication its shard must stay answerable (degraded, via the ring
// replica) while every other shard is untouched; without replication the shard goes
// dark. The whole sweep is deterministic — same seed, bit-identical output.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/shard_map.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

namespace {

constexpr uint64_t kSeed = 20260731;

struct CellResult {
  double now_latency_ms_mean = 0.0;
  double now_latency_ms_p95 = 0.0;
  double success = 0.0;
  double energy_j_per_sensor_day = 0.0;
  double batched_share = 0.0;       // app messages that rode a coalesced flush
  // Failover phase (proxy 0 killed).
  double killed_shard_success = 0.0;
  double other_shard_success = 0.0;
  double degraded_share = 0.0;      // killed-shard answers served from replicated state
  double recovery_ms = -1.0;        // kill -> first successful killed-shard answer
  uint64_t fingerprint = 0;
};

QuerySpec NowQuery(const Deployment& deployment, int global, double tolerance) {
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = deployment.GlobalSensorId(global);
  spec.tolerance = tolerance;
  return spec;
}

CellResult RunCell(int num_proxies, int total_sensors, ShardPolicy policy,
                   bool replication, Duration batch_epoch) {
  DeploymentConfig config;
  config.num_proxies = num_proxies;
  config.sensors_per_proxy = total_sensors / num_proxies;
  config.shard_policy = policy;
  config.enable_replication = replication;
  config.net.batch_epoch = batch_epoch;
  config.seed = kSeed;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(20));

  Pcg32 rng(kSeed ^ 0xbe4c);
  CellResult out;

  // Healthy phase: a spread of NOW queries across the whole population.
  SampleSet latency_ms;
  const int healthy_queries = std::min(total_sensors, 192);
  int ok = 0;
  for (int i = 0; i < healthy_queries; ++i) {
    const int g = static_cast<int>(rng.UniformInt(0, total_sensors - 1));
    UnifiedQueryResult result = deployment.QueryAndWait(NowQuery(deployment, g, 1.5));
    if (result.answer.status.ok()) {
      ++ok;
      latency_ms.Add(ToMillis(result.Latency()));
    }
    deployment.RunUntil(deployment.sim().Now() + Seconds(20));
  }
  out.now_latency_ms_mean = latency_ms.mean();
  out.now_latency_ms_p95 = latency_ms.Quantile(0.95);
  out.success = static_cast<double>(ok) / healthy_queries;

  // Failover phase: kill proxy 0 mid-run and probe every shard.
  const SimTime killed_at = deployment.sim().Now();
  deployment.KillProxy(0);
  const std::vector<int>& killed_shard = deployment.shard().SensorsOf(0);
  int killed_ok = 0;
  int killed_degraded = 0;
  for (size_t i = 0; i < killed_shard.size() && i < 32; ++i) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowQuery(deployment, killed_shard[i], 3.0));
    if (result.answer.status.ok()) {
      ++killed_ok;
      if (result.used_replica) {
        ++killed_degraded;
      }
      if (out.recovery_ms < 0.0) {
        out.recovery_ms = ToMillis(result.completed_at - killed_at);
      }
    }
    deployment.RunUntil(deployment.sim().Now() + Seconds(5));
  }
  const size_t killed_probes = std::min<size_t>(killed_shard.size(), 32);
  out.killed_shard_success =
      killed_probes > 0 ? static_cast<double>(killed_ok) / killed_probes : 0.0;
  out.degraded_share =
      killed_ok > 0 ? static_cast<double>(killed_degraded) / killed_ok : 0.0;

  int other_ok = 0;
  int other_probes = 0;
  for (int p = 1; p < num_proxies && other_probes < 32; ++p) {
    for (int g : deployment.shard().SensorsOf(p)) {
      if (other_probes >= 32) {
        break;
      }
      ++other_probes;
      UnifiedQueryResult result = deployment.QueryAndWait(NowQuery(deployment, g, 3.0));
      if (result.answer.status.ok()) {
        ++other_ok;
      }
    }
  }
  out.other_shard_success =
      other_probes > 0 ? static_cast<double>(other_ok) / other_probes : 1.0;
  deployment.ReviveProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Hours(1));

  const double days = ToSeconds(deployment.sim().Now()) / 86400.0;
  out.energy_j_per_sensor_day = deployment.MeanSensorEnergy() / days;
  const NetStats& net = deployment.net().stats();
  // messages_sent counts radio transactions (each coalesced frame once); the app
  // message total replaces each frame with its batched_messages constituents.
  const uint64_t app_messages = net.messages_sent - net.batch_flushes + net.batched_messages;
  out.batched_share =
      app_messages > 0 ? static_cast<double>(net.batched_messages) / app_messages : 0.0;
  out.fingerprint = deployment.sim().fingerprint();
  return out;
}

std::string FmtRecovery(double ms) {
  if (ms < 0.0) {
    return "never";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

int main() {
  std::printf("PRESTO scale bench: sharded multi-proxy deployments.\n");
  std::printf("Proxy 0 is killed mid-run; 'killed ok' is its shard's availability,\n");
  std::printf("'other ok' every other shard's (isolation check). Deterministic seed %llu.\n\n",
              static_cast<unsigned long long>(kSeed));

  struct Cell {
    int proxies;
    int sensors;
    ShardPolicy policy;
    bool replication;
    Duration batch_epoch;
  };
  std::vector<Cell> cells = {
      {1, 64, ShardPolicy::kGeographic, false, 0},
      {2, 64, ShardPolicy::kGeographic, true, 0},
      {4, 256, ShardPolicy::kGeographic, true, 0},
      {4, 256, ShardPolicy::kHash, true, 0},
      {4, 256, ShardPolicy::kHash, false, 0},
      {8, 512, ShardPolicy::kHash, true, Seconds(2)},
      {16, 1024, ShardPolicy::kGeographic, true, Seconds(2)},
      {16, 1024, ShardPolicy::kHash, true, Seconds(2)},
  };

  TextTable table;
  table.SetHeader({"proxies", "sensors", "policy", "repl", "lat ms", "p95 ms", "ok",
                   "J/sens/day", "batched", "killed ok", "degraded", "other ok",
                   "recovery ms"});
  for (const Cell& cell : cells) {
    const CellResult r = RunCell(cell.proxies, cell.sensors, cell.policy,
                                 cell.replication, cell.batch_epoch);
    table.AddRow({TextTable::Int(cell.proxies), TextTable::Int(cell.sensors),
                  ShardPolicyName(cell.policy), cell.replication ? "yes" : "no",
                  TextTable::Num(r.now_latency_ms_mean, 1),
                  TextTable::Num(r.now_latency_ms_p95, 1), TextTable::Num(r.success, 2),
                  TextTable::Num(r.energy_j_per_sensor_day, 1),
                  TextTable::Num(r.batched_share, 3),
                  TextTable::Num(r.killed_shard_success, 2),
                  TextTable::Num(r.degraded_share, 2),
                  TextTable::Num(r.other_shard_success, 2), FmtRecovery(r.recovery_ms)});
    std::printf("  done: %2d proxies x %4d sensors (%s, repl=%s) fingerprint=%016llx\n",
                cell.proxies, cell.sensors, ShardPolicyName(cell.policy),
                cell.replication ? "yes" : "no",
                static_cast<unsigned long long>(r.fingerprint));
  }
  std::printf("\n");
  table.Print();
  table.WriteCsvFile("scale_sharding.csv");
  return 0;
}
