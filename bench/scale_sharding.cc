// Scale bench for the sharded multi-proxy deployment engine: sweeps proxy count ×
// sensor population × shard policy, reporting query latency, energy (J/sensor/day),
// shard balance, batching efficiency, and failover behaviour.
//
// Failover phase: *two* distinct proxies are killed mid-run (one on small clusters).
// With K-way replication (replication_factor = 2) every affected shard must keep
// answering — degraded through the replica chain immediately, then first-class once
// the replica is promoted to full owner — with zero failed queries; the table reports
// both the first-answer recovery time and the promotion lag.
//
// Double-kill phase: the home proxy dies, its replica is promoted to acting owner,
// then the acting owner dies too. Probes run both *inside* the second promotion
// window (per-sensor chains must fall through to the recruited standby — the PR-2
// known bug left this window unroutable) and after the second promotion; zero failed
// queries are required at K=2.
//
// Rebalance phase: a skewed interactive workload hammers one shard; the load-aware
// rebalancer must migrate hot sensors until the max/min per-proxy load ratio drops
// to <= the configured bound (1.5).
//
// The whole sweep is deterministic — representative cells are run twice and their
// Simulator::fingerprint()s compared. The process exits non-zero if any availability,
// balance, or determinism requirement is violated.
//
// `--smoke` runs a reduced grid (small cells, no 8/16-proxy rows) with the same
// violation checks — the CI bench-smoke job's entry point. `--csv` writes the
// summary table to scale_sharding.csv (never by default: dumps stay out of the tree).
//
// Warm starts (docs/ARCHITECTURE.md "Checkpoint format"): `--ckpt-out <path>`
// saves the first failover cell's 20 h post-warmup state; `--resume <path>`
// starts that cell from such a file instead of re-simulating the warmup and then
// drives the same healthy/failover phases from the revived state.

// Engine phase: the same deployment engine on the parallel shard-lane simulator
// (lane = shard, epoch barriers, typed pooled events). Every engine cell runs at
// several worker counts and the fingerprints must be bit-identical — a divergence is
// a violation (non-zero exit). The 16 x 4096 cell must clear >= 2x events/sec at 8
// workers over 1 (checked when the host has >= 8 hardware threads), and a
// ~100k-sensor cell must finish inside a fixed wall-clock budget.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/core/shard_map.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

namespace {

constexpr uint64_t kSeed = 20260731;

struct CellResult {
  double now_latency_ms_mean = 0.0;
  double now_latency_ms_p95 = 0.0;
  double success = 0.0;
  double energy_j_per_sensor_day = 0.0;
  double batched_share = 0.0;       // app messages that rode a coalesced flush
  // Failover phase.
  int kills = 0;
  int killed_probes = 0;
  int killed_failures = 0;          // must be 0 with replication
  double degraded_share = 0.0;      // pre-promotion answers served from replicas
  double recovery_ms = -1.0;        // kill -> first successful killed-shard answer
  double promotion_ms = -1.0;       // kill -> last replica promoted to full owner
  double other_shard_success = 0.0;
  uint64_t promotions = 0;
  uint64_t fingerprint = 0;
  bool ckpt_failed = false;  // --ckpt-out / --resume file operation failed
  bool resumed = false;      // warm-started from a checkpoint (warmup skipped)
};

QuerySpec NowQuery(const Deployment& deployment, int global, double tolerance) {
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = deployment.GlobalSensorId(global);
  spec.tolerance = tolerance;
  return spec;
}

CellResult RunCell(int num_proxies, int total_sensors, ShardPolicy policy,
                   bool replication, Duration batch_epoch,
                   const std::string& ckpt_out = "",
                   const std::string& resume_path = "") {
  DeploymentConfig config;
  config.num_proxies = num_proxies;
  config.sensors_per_proxy = total_sensors / num_proxies;
  config.shard_policy = policy;
  config.enable_replication = replication;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(10);
  config.net.batch_epoch = batch_epoch;
  config.seed = kSeed;
  Deployment deployment(config);
  deployment.Start();

  Pcg32 rng(kSeed ^ 0xbe4c);
  CellResult out;
  if (!resume_path.empty()) {
    // Warm start: restore the 20 h post-warmup state instead of re-simulating it.
    // The resumed timeline is bit-identical to the cold one (restore invariant).
    auto loaded = Checkpoint::ReadFile(resume_path);
    if (!loaded.ok()) {
      std::printf("  CKPT: cannot read %s: %s\n", resume_path.c_str(),
                  loaded.status().message().c_str());
      out.ckpt_failed = true;
      return out;
    }
    const Status restored = deployment.LoadCheckpoint(*loaded);
    if (!restored.ok()) {
      std::printf("  CKPT: restore failed: %s\n", restored.message().c_str());
      out.ckpt_failed = true;
      return out;
    }
    out.resumed = true;
    std::printf("  resumed from %s at sim t=%.0f s (warmup skipped)\n",
                resume_path.c_str(), ToSeconds(deployment.sim().Now()));
  } else {
    deployment.RunUntil(Hours(20));
    if (!ckpt_out.empty()) {
      Checkpoint ckpt;
      Status saved = deployment.SaveCheckpoint(&ckpt);
      if (saved.ok()) {
        saved = ckpt.WriteFile(ckpt_out);
      }
      if (!saved.ok()) {
        std::printf("  CKPT: save failed: %s\n", saved.message().c_str());
        out.ckpt_failed = true;
      } else {
        std::printf("  warmed checkpoint (%zu sections, digest %016llx) -> %s\n",
                    ckpt.sections().size(),
                    static_cast<unsigned long long>(ckpt.Digest()),
                    ckpt_out.c_str());
      }
    }
  }

  // Healthy phase: a spread of NOW queries across the whole population.
  SampleSet latency_ms;
  const int healthy_queries = std::min(total_sensors, 192);
  int ok = 0;
  for (int i = 0; i < healthy_queries; ++i) {
    const int g = static_cast<int>(rng.UniformInt(0, total_sensors - 1));
    UnifiedQueryResult result = deployment.QueryAndWait(NowQuery(deployment, g, 1.5));
    if (result.answer.status.ok()) {
      ++ok;
      latency_ms.Add(ToMillis(result.Latency()));
    }
    deployment.RunUntil(deployment.sim().Now() + Seconds(20));
  }
  out.now_latency_ms_mean = latency_ms.mean();
  out.now_latency_ms_p95 = latency_ms.Quantile(0.95);
  out.success = static_cast<double>(ok) / healthy_queries;

  // Failover phase: kill two distinct proxies (their shards fail over to disjoint
  // ring successors when the cluster is big enough; one kill on 2-proxy cells).
  std::vector<int> kills = {0};
  if (num_proxies >= 4) {
    kills.push_back(num_proxies / 2);
  }
  const SimTime killed_at = deployment.sim().Now();
  for (int k : kills) {
    deployment.KillProxy(k);
  }
  out.kills = static_cast<int>(kills.size());

  // Degraded window: probe each killed shard before the promotion fires.
  int killed_ok = 0;
  int killed_degraded = 0;
  for (int k : kills) {
    const std::vector<int>& shard = deployment.shard().SensorsOf(k);
    for (size_t i = 0; i < shard.size() && i < 8; ++i) {
      ++out.killed_probes;
      UnifiedQueryResult result =
          deployment.QueryAndWait(NowQuery(deployment, shard[i], 3.0));
      if (result.answer.status.ok()) {
        ++killed_ok;
        if (result.used_replica) {
          ++killed_degraded;
        }
        if (out.recovery_ms < 0.0) {
          out.recovery_ms = ToMillis(result.completed_at - killed_at);
        }
      } else {
        ++out.killed_failures;
      }
    }
  }
  out.degraded_share =
      killed_ok > 0 ? static_cast<double>(killed_degraded) / killed_ok : 0.0;

  // Promoted window: past the promotion delay every affected shard must be back to
  // first-class service (the promoted owner pulls, manages models, owns the index).
  deployment.RunUntil(killed_at + Seconds(30));
  if (replication && deployment.shard_stats().last_promotion_at >= 0) {
    out.promotion_ms = ToMillis(deployment.shard_stats().last_promotion_at - killed_at);
  }
  out.promotions = deployment.shard_stats().promotions;
  for (int k : kills) {
    const std::vector<int>& shard = deployment.shard().SensorsOf(k);
    for (size_t i = 0; i < shard.size() && i < 24; ++i) {
      ++out.killed_probes;
      UnifiedQueryResult result =
          deployment.QueryAndWait(NowQuery(deployment, shard[i], 3.0));
      if (result.answer.status.ok()) {
        if (out.recovery_ms < 0.0) {
          out.recovery_ms = ToMillis(result.completed_at - killed_at);
        }
      } else {
        ++out.killed_failures;
      }
      deployment.RunUntil(deployment.sim().Now() + Seconds(5));
    }
  }

  // Isolation: every untouched shard keeps answering as if nothing happened.
  int other_ok = 0;
  int other_probes = 0;
  for (int p = 0; p < num_proxies && other_probes < 32; ++p) {
    if (std::find(kills.begin(), kills.end(), p) != kills.end()) {
      continue;
    }
    for (int g : deployment.shard().SensorsOf(p)) {
      if (other_probes >= 32) {
        break;
      }
      ++other_probes;
      UnifiedQueryResult result = deployment.QueryAndWait(NowQuery(deployment, g, 3.0));
      if (result.answer.status.ok()) {
        ++other_ok;
      }
    }
  }
  out.other_shard_success =
      other_probes > 0 ? static_cast<double>(other_ok) / other_probes : 1.0;
  for (int k : kills) {
    deployment.ReviveProxy(k);
  }
  deployment.RunUntil(deployment.sim().Now() + Hours(1));

  const double days = ToSeconds(deployment.sim().Now()) / 86400.0;
  out.energy_j_per_sensor_day = deployment.MeanSensorEnergy() / days;
  const NetStats& net = deployment.net().stats();
  // messages_sent counts radio transactions (each coalesced frame once); the app
  // message total replaces each frame with its batched_messages constituents.
  const uint64_t app_messages =
      net.messages_sent - net.batch_flushes + net.batched_messages;
  out.batched_share =
      app_messages > 0 ? static_cast<double>(net.batched_messages) / app_messages : 0.0;
  out.fingerprint = deployment.sim().fingerprint();
  return out;
}

struct RebalanceResult {
  double ratio_before = 0.0;   // max/min per-proxy load under the skew, no rebalancer
  double ratio_after = 0.0;    // same workload after the rebalancer has swept
  uint64_t migrations = 0;
  uint64_t sweeps = 0;
  int hot_shard_size_before = 0;
  int hot_shard_size_after = 0;
  double success = 0.0;
  uint64_t fingerprint = 0;
};

double LoadRatio(const Deployment& deployment) {
  uint64_t max_load = 0;
  uint64_t min_load = ~0ull;
  for (int p = 0; p < deployment.config().num_proxies; ++p) {
    const uint64_t load = deployment.ProxyWindowLoad(p);
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  return static_cast<double>(max_load) /
         static_cast<double>(std::max<uint64_t>(min_load, 1));
}

// Skewed interactive workload: 80% of queries hit the (initially co-located) hot
// sensor set, the rest spread uniformly. The rebalancer must pull the per-proxy load
// ratio under the bound by migrating hot sensors off the overloaded proxy.
RebalanceResult RunRebalanceCell(int num_proxies, int total_sensors) {
  DeploymentConfig config;
  config.num_proxies = num_proxies;
  config.sensors_per_proxy = total_sensors / num_proxies;
  config.shard_policy = ShardPolicy::kGeographic;
  config.enable_replication = true;
  config.enable_rebalancing = true;
  config.rebalance_period = Minutes(10);
  config.rebalance_max_moves = 4;
  config.seed = kSeed;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(20));

  RebalanceResult out;
  const std::vector<int> hot = deployment.shard().SensorsOf(0);  // snapshot: moves later
  out.hot_shard_size_before = static_cast<int>(hot.size());

  Pcg32 rng(kSeed ^ 0x5eb5);
  int ok = 0;
  int total_queries = 0;
  const int queries_per_round = 160;
  const int rounds = 8;
  for (int round = 0; round <= rounds; ++round) {
    for (int q = 0; q < queries_per_round; ++q) {
      int g;
      if (rng.NextDouble() < 0.8) {
        g = hot[static_cast<size_t>(rng.UniformInt(0, static_cast<int>(hot.size()) - 1))];
      } else {
        g = static_cast<int>(rng.UniformInt(0, total_sensors - 1));
      }
      UnifiedQueryResult result = deployment.QueryAndWait(NowQuery(deployment, g, 3.0));
      ++total_queries;
      if (result.answer.status.ok()) {
        ++ok;
      }
    }
    if (round == 0) {
      out.ratio_before = LoadRatio(deployment);  // before any sweep saw this skew
    }
    if (round < rounds) {
      // Let one rebalance period elapse (the sweep closes the load window).
      deployment.RunUntil(deployment.sim().Now() + Minutes(11));
    }
  }
  // The final round's window has not been swept yet: measure the steady-state skew.
  out.ratio_after = LoadRatio(deployment);
  out.migrations = deployment.shard_stats().migrations;
  out.sweeps = deployment.shard_stats().rebalance_sweeps;
  out.hot_shard_size_after = static_cast<int>(deployment.shard().SensorsOf(0).size());
  out.success = static_cast<double>(ok) / total_queries;
  out.fingerprint = deployment.sim().fingerprint();
  return out;
}

// ---------- double-kill: home proxy, then the acting owner ----------

struct DoubleKillResult {
  int probes = 0;
  int failures_inside = 0;   // probes while the acting owner's promotion is pending
  int failures_outside = 0;  // probes after the second promotion completed
  int chain_answers = 0;     // inside-window answers served via the sensor chain
  uint64_t promotions = 0;
  uint64_t fingerprint = 0;
};

// Kills the home proxy, waits past its promotion, then kills the acting owner and
// probes the orphaned shards inside *and* outside the second promotion window. With
// per-sensor failover chains (and promotion-time standby recruiting) every probe
// must answer at K=2.
DoubleKillResult RunDoubleKillCell(int num_proxies, int total_sensors) {
  DeploymentConfig config;
  config.num_proxies = num_proxies;
  config.sensors_per_proxy = total_sensors / num_proxies;
  config.shard_policy = ShardPolicy::kGeographic;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(10);
  config.seed = kSeed;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(20));

  DoubleKillResult out;
  deployment.KillProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Seconds(30));  // first promotion done
  const int acting = deployment.ActingOwner(deployment.shard().SensorsOf(0).front());
  deployment.KillProxy(acting);
  const SimTime second_kill = deployment.sim().Now();

  // Inside the acting owner's promotion window: shard 0 (twice orphaned) and the
  // acting owner's own home shard must both ride their per-sensor chains.
  for (int killed : {0, acting}) {
    const std::vector<int>& shard = deployment.shard().SensorsOf(killed);
    for (size_t i = 0; i < shard.size() && i < 8; ++i) {
      ++out.probes;
      UnifiedQueryResult result =
          deployment.QueryAndWait(NowQuery(deployment, shard[i], 3.0));
      if (!result.answer.status.ok()) {
        ++out.failures_inside;
      } else if (result.used_replica) {
        ++out.chain_answers;
      }
    }
  }

  // Past the second promotion: first-class service from the re-promoted owner.
  deployment.RunUntil(second_kill + Seconds(30));
  for (int killed : {0, acting}) {
    const std::vector<int>& shard = deployment.shard().SensorsOf(killed);
    for (size_t i = 0; i < shard.size() && i < 16; ++i) {
      ++out.probes;
      UnifiedQueryResult result =
          deployment.QueryAndWait(NowQuery(deployment, shard[i], 3.0));
      if (!result.answer.status.ok()) {
        ++out.failures_outside;
      }
      deployment.RunUntil(deployment.sim().Now() + Seconds(2));
    }
  }
  out.promotions = deployment.shard_stats().promotions;
  deployment.ReviveProxy(0);
  deployment.ReviveProxy(acting);
  deployment.RunUntil(deployment.sim().Now() + Minutes(30));
  out.fingerprint = deployment.sim().fingerprint();
  return out;
}

// ---------- parallel shard-lane engine ----------

struct EngineResult {
  uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  uint64_t fingerprint = 0;
  int failed_queries = 0;
};

// One lane-engine run: warm shard-local traffic, a mid-run kill and revive (barrier
// mutations + cross-lane failover traffic), then a routability probe. Wall clock
// covers the simulation only; the probe runs untimed.
EngineResult RunEngineCell(int num_proxies, int total_sensors, int threads,
                           Duration span, Duration sim_epoch, bool tiny_flash) {
  DeploymentConfig config;
  config.num_proxies = num_proxies;
  config.sensors_per_proxy = total_sensors / num_proxies;
  config.shard_policy = ShardPolicy::kGeographic;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(10);
  config.lane_engine = true;
  config.sim_threads = threads;
  config.sim_epoch = sim_epoch;
  config.seed = kSeed;
  if (tiny_flash) {
    // ~100k sensors: a 16 KiB archive per sensor keeps the cell inside laptop RAM
    // while still exercising the flash path on every sample.
    config.flash.num_blocks = 4;
  }
  Deployment deployment(config);
  deployment.Start();

  const auto wall_start = std::chrono::steady_clock::now();
  deployment.RunUntil(span / 3);
  deployment.KillProxy(num_proxies / 2);
  deployment.RunUntil(2 * span / 3);
  deployment.ReviveProxy(num_proxies / 2);
  deployment.RunUntil(span);
  const auto wall_end = std::chrono::steady_clock::now();

  EngineResult out;
  out.events = deployment.sim().events_executed();
  out.wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
  out.events_per_sec = static_cast<double>(out.events) / std::max(out.wall_s, 1e-9);
  for (int i = 0; i < 8; ++i) {
    const int g = (i * total_sensors) / 8;
    UnifiedQueryResult result = deployment.QueryAndWait(NowQuery(deployment, g, 3.0));
    if (!result.answer.status.ok()) {
      ++out.failed_queries;
    }
  }
  out.fingerprint = deployment.sim().fingerprint();
  return out;
}

std::string FmtMs(double ms) {
  if (ms < 0.0) {
    return "never";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  bool smoke = false;
  bool write_csv = false;
  std::string ckpt_out;
  std::string resume_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--csv") {
      write_csv = true;
    } else if (arg == "--ckpt-out" && i + 1 < argc) {
      ckpt_out = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    }
  }
  BenchReport report("scale_sharding");
  report.set_grid(smoke ? "smoke" : "full");
  report.Config("seed", static_cast<double>(kSeed));
  std::printf("PRESTO scale bench: sharded multi-proxy deployments with dynamic\n");
  std::printf("shard management (K-way replication, promotion, rebalancing).\n");
  std::printf("Two proxies are killed mid-run (one on 2-proxy cells); 'killed fail'\n");
  std::printf("must be 0 with replication. Deterministic seed %llu.%s\n\n",
              static_cast<unsigned long long>(kSeed),
              smoke ? " [--smoke: reduced grid]" : "");

  struct Cell {
    int proxies;
    int sensors;
    ShardPolicy policy;
    bool replication;
    Duration batch_epoch;
  };
  // The {4, 256, geographic, replicated} cell must stay at index 2 in both grids:
  // the determinism check re-runs it by position.
  std::vector<Cell> cells = {
      {1, 64, ShardPolicy::kGeographic, false, 0},
      {2, 64, ShardPolicy::kGeographic, true, 0},
      {4, 256, ShardPolicy::kGeographic, true, 0},
  };
  if (!smoke) {
    cells.push_back({4, 256, ShardPolicy::kHash, true, 0});
    cells.push_back({4, 256, ShardPolicy::kHash, false, 0});
    cells.push_back({8, 512, ShardPolicy::kHash, true, Seconds(2)});
    cells.push_back({16, 1024, ShardPolicy::kGeographic, true, Seconds(2)});
    cells.push_back({16, 1024, ShardPolicy::kHash, true, Seconds(2)});
    // Promotion cost is O(shard) via the served-by index: a 16 x 4096 cell (256
    // sensors per shard) runs its kill/promotion cycle without any full-population
    // rescan on the kill path.
    cells.push_back({16, 4096, ShardPolicy::kHash, true, Seconds(2)});
  }

  int violations = 0;

  TextTable table;
  table.SetHeader({"proxies", "sensors", "policy", "repl", "lat ms", "p95 ms", "ok",
                   "J/sens/day", "batched", "kills", "killed fail", "degraded",
                   "other ok", "recovery ms", "promo ms"});
  std::vector<CellResult> results;
  bool first_run = true;
  for (const Cell& cell : cells) {
    // --ckpt-out / --resume apply to the first failover cell only (the warm-start
    // pair must describe the same cell shape on both sides).
    const CellResult r = RunCell(cell.proxies, cell.sensors, cell.policy,
                                 cell.replication, cell.batch_epoch,
                                 first_run ? ckpt_out : std::string(),
                                 first_run ? resume_path : std::string());
    first_run = false;
    if (r.ckpt_failed) {
      ++violations;
      results.push_back(r);
      continue;
    }
    results.push_back(r);
    table.AddRow({TextTable::Int(cell.proxies), TextTable::Int(cell.sensors),
                  ShardPolicyName(cell.policy), cell.replication ? "yes" : "no",
                  TextTable::Num(r.now_latency_ms_mean, 1),
                  TextTable::Num(r.now_latency_ms_p95, 1), TextTable::Num(r.success, 2),
                  TextTable::Num(r.energy_j_per_sensor_day, 1),
                  TextTable::Num(r.batched_share, 3), TextTable::Int(r.kills),
                  TextTable::Int(r.killed_failures), TextTable::Num(r.degraded_share, 2),
                  TextTable::Num(r.other_shard_success, 2), FmtMs(r.recovery_ms),
                  FmtMs(r.promotion_ms)});
    std::printf("  done: %2d proxies x %4d sensors (%s, repl=%s) fingerprint=%016llx\n",
                cell.proxies, cell.sensors, ShardPolicyName(cell.policy),
                cell.replication ? "yes" : "no",
                static_cast<unsigned long long>(r.fingerprint));
    char key_buf[96];
    std::snprintf(key_buf, sizeof(key_buf), "failover/p%dxs%d/%s/repl%d",
                  cell.proxies, cell.sensors, ShardPolicyName(cell.policy),
                  cell.replication ? 1 : 0);
    BenchReport::Row& row = report.AddRow(key_buf);
    row.Config("proxies", cell.proxies)
        .Config("sensors", cell.sensors)
        .Config("policy", ShardPolicyName(cell.policy))
        .Config("replication", cell.replication ? 1 : 0)
        .Config("batch_epoch_s", ToSeconds(cell.batch_epoch))
        .Config("resumed", r.resumed ? 1 : 0);
    row.Metric("success", r.success)
        .Metric("batched_share", r.batched_share)
        .Metric("kills", r.kills)
        .Metric("killed_failures", r.killed_failures)
        .Metric("degraded_share", r.degraded_share)
        .Metric("other_shard_success", r.other_shard_success)
        .Metric("recovery_ms", r.recovery_ms)
        .Metric("promotion_ms", r.promotion_ms)
        .Metric("promotions", static_cast<double>(r.promotions));
    row.LatencyMs("mean", r.now_latency_ms_mean).LatencyMs("p95", r.now_latency_ms_p95);
    row.Energy("j_per_sensor_day", r.energy_j_per_sensor_day);
    row.Fingerprint("simulator", r.fingerprint);
    if (cell.replication && r.killed_failures > 0) {
      std::printf("  VIOLATION: %d failed queries on killed shards with replication\n",
                  r.killed_failures);
      ++violations;
    }
    if (cell.replication && r.promotions == 0) {
      std::printf("  VIOLATION: no replica promotions recorded\n");
      ++violations;
    }
  }
  std::printf("\n");
  table.Print();
  if (write_csv) {
    // Opt-in only: bench dumps do not belong in the tree (and .gitignore backstops
    // the ones a local run leaves behind).
    table.WriteCsvFile("scale_sharding.csv");
  }

  // --- double kill: home proxy, then its promoted acting owner ---
  const int dk_proxies = smoke ? 4 : 8;
  const int dk_sensors = smoke ? 64 : 256;
  std::printf("\nDouble kill (%d proxies x %d sensors, K=2): home proxy, then the\n",
              dk_proxies, dk_sensors);
  std::printf("acting owner; probes inside and outside the promotion window:\n");
  const DoubleKillResult dk = RunDoubleKillCell(dk_proxies, dk_sensors);
  std::printf("  probes %d | failed inside window %d | failed after promotion %d |"
              " chain answers %d | promotions %llu | fingerprint=%016llx\n",
              dk.probes, dk.failures_inside, dk.failures_outside, dk.chain_answers,
              static_cast<unsigned long long>(dk.promotions),
              static_cast<unsigned long long>(dk.fingerprint));
  if (dk.failures_inside > 0) {
    std::printf("  VIOLATION: %d queries failed inside the acting owner's promotion"
                " window (per-sensor chain did not fall through)\n",
                dk.failures_inside);
    ++violations;
  }
  if (dk.failures_outside > 0) {
    std::printf("  VIOLATION: %d queries failed after the second promotion\n",
                dk.failures_outside);
    ++violations;
  }
  if (dk.chain_answers == 0) {
    std::printf("  VIOLATION: no inside-window answer rode the failover chain\n");
    ++violations;
  }
  report.AddRow("double_kill")
      .Config("proxies", dk_proxies)
      .Config("sensors", dk_sensors)
      .Metric("probes", dk.probes)
      .Metric("failures_inside", dk.failures_inside)
      .Metric("failures_outside", dk.failures_outside)
      .Metric("chain_answers", dk.chain_answers)
      .Metric("promotions", static_cast<double>(dk.promotions))
      .Fingerprint("simulator", dk.fingerprint);

  // --- rebalancing under a skewed workload ---
  std::printf("\nRebalancing sweep (4 proxies, skewed 80/20 workload, bound 1.5):\n");
  const RebalanceResult reb = RunRebalanceCell(4, 64);
  std::printf("  load ratio before %.2f -> after %.2f | migrations %llu | sweeps %llu |"
              " hot shard %d -> %d sensors | ok %.2f\n",
              reb.ratio_before, reb.ratio_after,
              static_cast<unsigned long long>(reb.migrations),
              static_cast<unsigned long long>(reb.sweeps), reb.hot_shard_size_before,
              reb.hot_shard_size_after, reb.success);
  if (reb.ratio_after > 1.5) {
    std::printf("  VIOLATION: rebalanced load ratio %.2f > 1.5\n", reb.ratio_after);
    ++violations;
  }
  if (reb.migrations == 0) {
    std::printf("  VIOLATION: rebalancer never migrated a sensor\n");
    ++violations;
  }
  report.AddRow("rebalance")
      .Config("proxies", 4)
      .Config("sensors", 64)
      .Metric("ratio_before", reb.ratio_before)
      .Metric("ratio_after", reb.ratio_after)
      .Metric("migrations", static_cast<double>(reb.migrations))
      .Metric("sweeps", static_cast<double>(reb.sweeps))
      .Metric("success", reb.success)
      .Fingerprint("simulator", reb.fingerprint);

  // --- parallel shard-lane engine: threads sweep + scale cells ---
  {
    struct EngineCell {
      int proxies;
      int sensors;
      Duration span;
      Duration sim_epoch;
    };
    std::vector<EngineCell> engine_cells;
    std::vector<int> thread_counts;
    if (smoke) {
      engine_cells.push_back({4, 256, Hours(1), Seconds(1)});
      thread_counts = {1, 2};
    } else {
      engine_cells.push_back({4, 256, Hours(1), Seconds(1)});
      engine_cells.push_back({16, 1024, Hours(1), Seconds(1)});
      engine_cells.push_back({16, 4096, Hours(2), Seconds(1)});
      thread_counts = {1, 2, 8};
    }
    const unsigned hw_threads = std::thread::hardware_concurrency();
    std::printf("\nShard-lane engine (lane = shard, epoch barriers; %u hardware "
                "threads):\n", hw_threads);
    TextTable engine_table;
    engine_table.SetHeader({"proxies", "sensors", "threads", "events", "wall s",
                            "events/s", "vs 1thr", "fingerprint"});
    for (const EngineCell& cell : engine_cells) {
      double base_eps = 0.0;
      double best_speedup = 0.0;
      uint64_t base_fp = 0;
      for (int threads : thread_counts) {
        const EngineResult r = RunEngineCell(cell.proxies, cell.sensors, threads,
                                             cell.span, cell.sim_epoch,
                                             /*tiny_flash=*/false);
        if (threads == 1) {
          base_eps = r.events_per_sec;
          base_fp = r.fingerprint;
        }
        const double speedup = base_eps > 0.0 ? r.events_per_sec / base_eps : 0.0;
        best_speedup = std::max(best_speedup, speedup);
        char fp_buf[32];
        std::snprintf(fp_buf, sizeof(fp_buf), "%016llx",
                      static_cast<unsigned long long>(r.fingerprint));
        engine_table.AddRow({TextTable::Int(cell.proxies), TextTable::Int(cell.sensors),
                             TextTable::Int(threads),
                             TextTable::Int(static_cast<long long>(r.events)),
                             TextTable::Num(r.wall_s, 2),
                             TextTable::Num(r.events_per_sec / 1e6, 2),
                             TextTable::Num(speedup, 2), fp_buf});
        char key_buf[96];
        std::snprintf(key_buf, sizeof(key_buf), "engine/p%dxs%d/threads%d",
                      cell.proxies, cell.sensors, threads);
        report.AddRow(key_buf)
            .Config("proxies", cell.proxies)
            .Config("sensors", cell.sensors)
            .Config("threads", threads)
            .Metric("events", static_cast<double>(r.events))
            .Metric("events_per_s", r.events_per_sec)
            .Metric("speedup_vs_1thr", speedup)
            .Metric("wall_s", r.wall_s)
            .Fingerprint("simulator", r.fingerprint);
        if (r.fingerprint != base_fp) {
          std::printf("  VIOLATION: %dx%d fingerprint diverges at threads=%d\n",
                      cell.proxies, cell.sensors, threads);
          ++violations;
        }
        if (r.failed_queries > 0) {
          std::printf("  VIOLATION: %d failed probes on the lane engine (%dx%d, "
                      "threads=%d)\n", r.failed_queries, cell.proxies, cell.sensors,
                      threads);
          ++violations;
        }
      }
      const bool speedup_cell = cell.sensors >= 4096;
      if (speedup_cell && hw_threads >= 8 && best_speedup < 2.0) {
        std::printf("  VIOLATION: %dx%d best speedup %.2fx < 2x at 8 threads\n",
                    cell.proxies, cell.sensors, best_speedup);
        ++violations;
      }
    }
    engine_table.Print();

    if (!smoke) {
      // ~100k sensors: the cell the single-queue engine could not touch. Budgeted:
      // blowing the wall clock is a violation, not a shrug.
      constexpr double kWallBudgetS = 300.0;
      const int big_proxies = 128;
      const int big_sensors = 128 * 781;  // 99,968
      std::printf("\n100k-sensor cell (%d proxies x %d sensors, threads=8, 1 h "
                  "simulated):\n", big_proxies, big_sensors);
      const EngineResult big = RunEngineCell(big_proxies, big_sensors, /*threads=*/8,
                                             Hours(1), Seconds(2), /*tiny_flash=*/true);
      std::printf("  %llu events in %.1f s wall (%.2fM events/s) | failed probes %d |"
                  " fingerprint=%016llx\n",
                  static_cast<unsigned long long>(big.events), big.wall_s,
                  big.events_per_sec / 1e6, big.failed_queries,
                  static_cast<unsigned long long>(big.fingerprint));
      if (big.wall_s > kWallBudgetS) {
        std::printf("  VIOLATION: 100k cell took %.1f s (> %.0f s budget)\n",
                    big.wall_s, kWallBudgetS);
        ++violations;
      }
      if (big.failed_queries > 0) {
        std::printf("  VIOLATION: %d failed probes on the 100k cell\n",
                    big.failed_queries);
        ++violations;
      }
      report.AddRow("engine/p128xs99968/threads8")
          .Config("proxies", big_proxies)
          .Config("sensors", big_sensors)
          .Config("threads", 8)
          .Metric("events", static_cast<double>(big.events))
          .Metric("events_per_s", big.events_per_sec)
          .Metric("wall_s", big.wall_s)
          .Fingerprint("simulator", big.fingerprint);
    }
  }

  // --- determinism: same seed, bit-identical replay ---
  std::printf("\nDeterminism check (same seed, re-run):\n");
  const CellResult again = RunCell(4, 256, ShardPolicy::kGeographic, true, 0);
  const bool cell_ok = again.fingerprint == results[2].fingerprint;
  std::printf("  failover cell fingerprint %016llx vs %016llx: %s\n",
              static_cast<unsigned long long>(results[2].fingerprint),
              static_cast<unsigned long long>(again.fingerprint),
              cell_ok ? "MATCH" : "MISMATCH");
  const RebalanceResult reb2 = RunRebalanceCell(4, 64);
  const bool reb_ok = reb2.fingerprint == reb.fingerprint;
  std::printf("  rebalance cell fingerprint %016llx vs %016llx: %s\n",
              static_cast<unsigned long long>(reb.fingerprint),
              static_cast<unsigned long long>(reb2.fingerprint),
              reb_ok ? "MATCH" : "MISMATCH");
  if (!cell_ok || !reb_ok) {
    ++violations;
  }

  if (!report.WriteJson(json_path)) {
    ++violations;
  }
  if (violations > 0) {
    std::printf("\n%d violation(s) — see above.\n", violations);
    return 1;
  }
  std::printf("\nAll availability, balance, and determinism requirements hold.\n");
  return 0;
}
