// Shared machine-readable bench telemetry: every bench binary accepts
// `--json <path>` and writes a versioned BENCH_<name>.json through this helper, so
// the perf trajectory is diffable PR-over-PR instead of eyeballed from stdout.
//
// BENCH_<name>.json, schema version 1:
//
//   {
//     "schema_version": 1,
//     "bench": "<bench name>",
//     "grid": "smoke" | "full",
//     "config": { ...global knobs (threads, seeds, budgets)... },
//     "rows": [
//       {
//         "key": "<row identifier, unique within the bench>",
//         "config": { ...per-row grid point (cells, proxies, sensors)... },
//         "metrics": { ...throughput and counters (events_per_s, queries_per_s)... },
//         "latency_ms": { ...quantiles (mean, p50, p95, p99, max)... },
//         "energy": { ...meters (j_per_sensor_day, msgs_per_sensor_day)... },
//         "fingerprints": { ...determinism hashes, hex strings... }
//       }
//     ]
//   }
//
// Sections a bench has nothing to say about are omitted from its rows.
// tools/docs_check.py parses kBenchReportSchemaKeys below and fails the docs-check
// job if docs/BENCHMARKS.md documents a different key set — the schema doc and this
// header cannot drift apart. tools/bench_compare.py matches rows by "key" against
// the checked-in baselines and warns on throughput regressions.

#ifndef BENCH_BENCH_REPORT_H_
#define BENCH_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/table.h"

namespace presto {

// Schema contract: bump the version on any breaking layout change, and keep this
// key list in lockstep with the layout above and with docs/BENCHMARKS.md.
inline constexpr int kBenchReportSchemaVersion = 1;
inline constexpr const char* kBenchReportSchemaKeys[] = {
    "schema_version", "bench",      "grid",   "config",       "rows",
    "key",            "metrics",    "latency_ms", "energy",   "fingerprints",
};

class BenchReport {
 public:
  // One key/value entry; numbers stay numbers in the JSON, strings are quoted,
  // and 64-bit fingerprints are rendered as "0x%016x" strings (doubles cannot
  // hold them losslessly).
  struct Entry {
    std::string key;
    std::string rendered;  // value pre-rendered as a JSON token
  };

  class Row {
   public:
    explicit Row(std::string key) : key_(std::move(key)) {}

    Row& Config(const std::string& key, double value);
    Row& Config(const std::string& key, const std::string& value);
    Row& Metric(const std::string& key, double value);
    Row& LatencyMs(const std::string& key, double value);
    Row& Energy(const std::string& key, double value);
    Row& Fingerprint(const std::string& key, uint64_t value);

    const std::string& key() const { return key_; }

   private:
    friend class BenchReport;
    std::string key_;
    std::vector<Entry> config_, metrics_, latency_ms_, energy_, fingerprints_;
  };

  explicit BenchReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void set_grid(const std::string& grid) { grid_ = grid; }
  void Config(const std::string& key, double value);
  void Config(const std::string& key, const std::string& value);

  // Appends a row; the reference stays valid until the next AddRow (deque-free
  // simplicity: callers fill a row completely before adding the next).
  Row& AddRow(const std::string& key);

  // Folds an already-built summary table into rows: the first column (with
  // `key_prefix` prepended — use it to keep keys unique across multiple tables)
  // is the row key, every other cell lands under "metrics" (numeric when it
  // parses as a number, quoted otherwise). Lets the table-printing benches emit
  // JSON without restating every column by hand.
  void AddTable(const TextTable& table, const std::string& key_prefix = "");

  // Renders the report. Empty `path` is a no-op returning true (the bench ran
  // without --json). Logs one line on success, returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  std::string ToJson() const;

 private:
  std::string bench_;
  std::string grid_ = "full";
  std::vector<Entry> config_;
  std::vector<Row> rows_;
};

// Removes `--json <path>` / `--json=<path>` from argv (compacting *argc) and
// returns the path, or "" when absent. Benches with their own flag loops call it
// before parsing; the shared micro-bench main must call it before
// benchmark::Initialize, which aborts on flags it does not recognize.
std::string ConsumeJsonFlag(int* argc, char** argv);

}  // namespace presto

#endif  // BENCH_BENCH_REPORT_H_
