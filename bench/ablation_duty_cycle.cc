// Ablation A3 — the §3 query-sensor matching example: "if it is known that the worst
// case notification latency for typical queries is 10 minutes, the proxy can instruct
// remote sensors to set its radio duty-cycling parameters accordingly in order to
// conserve energy."
//
// Sweeps the query latency requirement; the matcher maps it to an LPL check interval;
// we measure achieved pull latency and idle radio energy at each setting.

#include <cstdio>

#include "bench/bench_report.h"
#include "src/core/deployment.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A3: latency requirement -> duty cycle -> energy\n");
  std::printf(
      "(single sensor; every query is a tight-tolerance NOW query forcing a pull)\n\n");

  const Duration bounds[] = {Seconds(2), Seconds(10), Seconds(60), Minutes(5),
                             Minutes(10),
                             Minutes(30)};
  TextTable table;
  table.SetHeader({"latency_bound", "lpl_interval", "pull_lat_mean_s", "pull_lat_p95_s",
                   "met_bound", "idle_J_per_day"});

  for (Duration bound : bounds) {
    DeploymentConfig config;
    config.num_proxies = 1;
    config.sensors_per_proxy = 1;
    config.policy = PushPolicy::kNone;  // isolate the pull path
    config.proxy_mode = ProxyMode::kAlwaysPull;
    config.manage_models = false;
    config.enable_matcher = true;
    config.seed = 4242;
    Deployment deployment(config);
    deployment.Start();
    deployment.RunUntil(Hours(1));

    const NodeId sensor = Deployment::SensorId(0, 0);
    SampleSet latency_s;
    int met = 0;
    int total = 0;
    // First a burst of queries so the matcher learns the requirement, then measure.
    for (int i = 0; i < 40; ++i) {
      QuerySpec spec;
      spec.type = QueryType::kNow;
      spec.sensor_id = sensor;
      spec.tolerance = 0.05;
      spec.latency_bound = bound;
      const UnifiedQueryResult result = deployment.QueryAndWait(spec);
      deployment.RunUntil(deployment.sim().Now() + Minutes(5));
      if (i < 10) {
        continue;  // warmup while the matcher converges
      }
      ++total;
      if (result.answer.status.ok()) {
        latency_s.Add(ToSeconds(result.Latency()));
        if (result.Latency() <= bound) {
          ++met;
        }
      }
    }
    // Idle energy at the matched duty cycle, measured over a quiet day.
    deployment.net().SettleIdleEnergy();
    const double before = deployment.sensor(0, 0).meter().RadioTotal();
    deployment.RunUntil(deployment.sim().Now() + Days(1));
    deployment.net().SettleIdleEnergy();
    const double idle_j = deployment.sensor(0, 0).meter().RadioTotal() - before;

    table.AddRow({FormatDuration(bound),
                  FormatDuration(deployment.net().LplInterval(sensor)),
                  TextTable::Num(latency_s.mean(), 2),
                  TextTable::Num(latency_s.Quantile(0.95), 2),
                  TextTable::Num(static_cast<double>(met) / total, 2),
                  TextTable::Num(idle_j, 2)});
  }

  std::printf("=== A3: duty-cycle matching ===\n");
  table.Print();
  std::printf("\nClaim check: looser latency bounds let the matcher lengthen the LPL\n"
              "interval, cutting idle listening energy while still meeting the bound.\n");
  BenchReport report("ablation_duty_cycle");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
