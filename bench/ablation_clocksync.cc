// Ablation A7 — the §5 temporal-consistency claim: "Drift and skew of clocks at the
// remote sensors can result in erroneous timestamps, which need to be corrected to
// provide an accurate temporal view of data."
//
// Sweeps beacon (resync) intervals against mote-class drift rates and reports residual
// timestamp error plus the effect on cross-sensor event ordering.

#include <cmath>
#include <cstdio>

#include "bench/bench_report.h"
#include "src/index/temporal_merge.h"
#include "src/index/time_sync.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace presto;

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  std::printf("Ablation A7: clock drift correction vs resync interval\n");
  std::printf("(drift +/-80 ppm, 2 s initial offset, 3 ms beacon jitter, 24 h run)\n\n");

  TextTable table;
  table.SetHeader({"beacon_interval", "raw_err_ms_p95", "corrected_err_ms_p95",
                   "order_acc_raw", "order_acc_corrected", "tau_corrected"});

  Pcg32 rng(505);
  for (Duration beacon : {Minutes(1), Minutes(5), Minutes(15), Hours(1), Hours(4)}) {
    RunningStats raw_err;
    SampleSet corrected_err;
    // Two sensors observing interleaved events 10 s apart — ordering is meaningful.
    std::vector<std::vector<Detection>> raw_streams(2);
    std::vector<std::vector<Detection>> fixed_streams(2);
    for (int sensor = 0; sensor < 2; ++sensor) {
      // Deterministically opposed clocks: +40 vs -40 ppm with a 1.5 s offset gap, so
      // raw cross-sensor divergence passes the 3 s event gap mid-run in every row.
      DriftingClock clock(sensor == 0 ? 0 : Seconds(1.5),
                          sensor == 0 ? 40.0 : -40.0, Millis(3),
                          9000 + static_cast<uint64_t>(sensor) +
                              static_cast<uint64_t>(beacon));
      RegressionTimeSync sync;
      for (SimTime t = 0; t < Days(1); t += beacon) {
        sync.AddBeacon(clock.LocalTime(t), t);
      }
      uint64_t seq = static_cast<uint64_t>(sensor);
      // Interleave events 3 s apart across the two sensors: drift-induced stamp error
      // of a few seconds is enough to flip cross-sensor order.
      for (SimTime t = Hours(1) + sensor * Seconds(3); t < Days(1);
           t += Seconds(20)) {
        const SimTime stamped = clock.LocalTime(t);
        raw_err.Add(std::abs(ToMillis(stamped - t)));
        raw_streams[sensor].push_back(Detection{stamped, static_cast<uint32_t>(sensor),
                                                seq});
        auto fixed = sync.Correct(stamped);
        const SimTime ct = fixed.ok() ? *fixed : stamped;
        corrected_err.Add(std::abs(ToMillis(ct - t)));
        fixed_streams[sensor].push_back(Detection{ct, static_cast<uint32_t>(sensor),
                                                  seq});
        seq += 2;  // global ground-truth order: sensor0, sensor1, sensor0, ...
      }
    }
    SampleSet raw_samples;
    for (double v : {raw_err.max()}) {
      raw_samples.Add(v);
    }
    const auto merged_raw = MergeByTime(raw_streams);
    const auto merged_fixed = MergeByTime(fixed_streams);
    table.AddRow({FormatDuration(beacon), TextTable::Num(raw_err.max(), 1),
                  TextTable::Num(corrected_err.Quantile(0.95), 1),
                  TextTable::Num(AdjacentOrderAccuracy(merged_raw), 3),
                  TextTable::Num(AdjacentOrderAccuracy(merged_fixed), 3),
                  TextTable::Num(KendallTau(merged_fixed), 3)});
  }

  std::printf("=== A7: residual timestamp error and event ordering ===\n");
  table.Print();
  std::printf("\nClaim check: uncorrected stamps drift to multi-second error "
              "and scramble\n"
              "cross-sensor order; regression sync holds p95 error to "
              "beacon-jitter scale\n"
              "even at hour-scale resync intervals.\n");
  BenchReport report("ablation_clocksync");
  report.AddTable(table);
  return report.WriteJson(json_path) ? 0 : 1;
}
