// Microbench M3 — the sensor archive: append/query/mount cost and the per-record
// energy the flash model charges (the storage side of the paper's §1 "storage is two
// orders of magnitude cheaper than communication" argument).

#include <benchmark/benchmark.h>

#include "src/flash/archive_store.h"
#include "src/util/rng.h"

namespace presto {
namespace {

constexpr Duration kPeriod = Seconds(31);

FlashParams BenchFlash() {
  FlashParams p;
  p.num_blocks = 1024;  // 4 MiB
  return p;
}

void BM_ArchiveAppend(benchmark::State& state) {
  EnergyMeter meter;
  FlashDevice dev(BenchFlash(), &meter);
  ArchiveParams params;
  params.nominal_sample_period = kPeriod;
  ArchiveStore store(&dev, params);
  Pcg32 rng(3);
  SimTime t = 0;
  int64_t records = 0;
  for (auto _ : state) {
    t += kPeriod;
    benchmark::DoNotOptimize(store.Append(Sample{t, rng.Gaussian(20, 3)}));
    ++records;
  }
  state.SetItemsProcessed(records);
  state.counters["uJ_per_record"] =
      records > 0 ? 1e6 * meter.Total() / static_cast<double>(records) : 0;
}
BENCHMARK(BM_ArchiveAppend);

void BM_ArchiveQueryRange(benchmark::State& state) {
  FlashDevice dev(BenchFlash(), nullptr);
  ArchiveParams params;
  params.nominal_sample_period = kPeriod;
  ArchiveStore store(&dev, params);
  SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    t += kPeriod;
    (void)store.Append(Sample{t, 20.0});
  }
  (void)store.Flush();
  Pcg32 rng(4);
  const Duration window = state.range(0) * kMinute;
  for (auto _ : state) {
    const SimTime start = static_cast<SimTime>(rng.UniformInt(0, t - window));
    benchmark::DoNotOptimize(store.Query(TimeInterval{start, start + window}));
  }
  state.SetLabel(std::to_string(state.range(0)) + "min");
}
BENCHMARK(BM_ArchiveQueryRange)->Arg(10)->Arg(60)->Arg(360);

void BM_ArchiveMount(benchmark::State& state) {
  FlashDevice dev(BenchFlash(), nullptr);
  ArchiveParams params;
  params.nominal_sample_period = kPeriod;
  {
    ArchiveStore store(&dev, params);
    SimTime t = 0;
    for (int i = 0; i < 100000; ++i) {
      t += kPeriod;
      (void)store.Append(Sample{t, 20.0});
    }
    (void)store.Flush();
  }
  for (auto _ : state) {
    ArchiveStore store(&dev, params);
    benchmark::DoNotOptimize(store.Mount());
  }
}
BENCHMARK(BM_ArchiveMount);

void BM_AgingPass(benchmark::State& state) {
  // Keep a small store permanently at the aging threshold and measure pass cost.
  FlashParams small;
  small.num_blocks = 32;
  for (auto _ : state) {
    state.PauseTiming();
    FlashDevice dev(small, nullptr);
    ArchiveParams params;
    params.nominal_sample_period = kPeriod;
    ArchiveStore store(&dev, params);
    SimTime t = 0;
    // Fill to just below the reserve so the next append crosses it.
    while (store.FreeBlocks() > params.reserve_blocks + 1) {
      t += kPeriod;
      (void)store.Append(Sample{t, 20.0});
    }
    state.ResumeTiming();
    // This append opens a new segment and triggers exactly one aging pass.
    while (store.stats().aging_passes == 0) {
      t += kPeriod;
      (void)store.Append(Sample{t, 20.0});
    }
    benchmark::DoNotOptimize(store.stats().aging_passes);
  }
}
BENCHMARK(BM_AgingPass);

}  // namespace
}  // namespace presto
