// Tests for the flash device model, the on-flash page codec, and the archival store
// (time index, mount/recovery, graceful aging).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/flash/archive_store.h"
#include "src/flash/flash_device.h"
#include "src/flash/page_codec.h"
#include "src/util/rng.h"

namespace presto {
namespace {

FlashParams SmallFlash() {
  FlashParams p;
  p.page_size_bytes = 256;
  p.pages_per_block = 4;
  p.num_blocks = 16;  // 16 KiB total
  return p;
}

// ---------- FlashDevice ----------

TEST(FlashDeviceTest, WriteThenRead) {
  FlashDevice dev(SmallFlash(), nullptr);
  std::vector<uint8_t> page(256, 0x5A);
  ASSERT_TRUE(dev.WritePage(3, page).ok());
  std::vector<uint8_t> out(256);
  ASSERT_TRUE(dev.ReadPage(3, out).ok());
  EXPECT_EQ(out, page);
}

TEST(FlashDeviceTest, RewriteWithoutEraseFails) {
  FlashDevice dev(SmallFlash(), nullptr);
  std::vector<uint8_t> page(256, 1);
  ASSERT_TRUE(dev.WritePage(0, page).ok());
  EXPECT_EQ(dev.WritePage(0, page).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(dev.EraseBlock(0).ok());
  EXPECT_TRUE(dev.WritePage(0, page).ok());
}

TEST(FlashDeviceTest, EraseResetsToFf) {
  FlashDevice dev(SmallFlash(), nullptr);
  std::vector<uint8_t> page(256, 0x00);
  ASSERT_TRUE(dev.WritePage(0, page).ok());
  ASSERT_TRUE(dev.EraseBlock(0).ok());
  std::vector<uint8_t> out(256);
  ASSERT_TRUE(dev.ReadPage(0, out).ok());
  EXPECT_TRUE(std::all_of(out.begin(), out.end(), [](uint8_t b) { return b == 0xFF; }));
  EXPECT_FALSE(dev.IsPageWritten(0));
}

TEST(FlashDeviceTest, WearTracksErases) {
  FlashDevice dev(SmallFlash(), nullptr);
  EXPECT_EQ(dev.BlockWear(2), 0u);
  ASSERT_TRUE(dev.EraseBlock(2).ok());
  ASSERT_TRUE(dev.EraseBlock(2).ok());
  EXPECT_EQ(dev.BlockWear(2), 2u);
}

TEST(FlashDeviceTest, BoundsChecked) {
  FlashDevice dev(SmallFlash(), nullptr);
  std::vector<uint8_t> page(256);
  EXPECT_EQ(dev.ReadPage(-1, page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.ReadPage(64, page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.EraseBlock(16).code(), StatusCode::kOutOfRange);
  std::vector<uint8_t> wrong(100);
  EXPECT_EQ(dev.WritePage(0, wrong).code(), StatusCode::kInvalidArgument);
}

TEST(FlashDeviceTest, EnergyCharged) {
  EnergyMeter meter;
  FlashDevice dev(SmallFlash(), &meter);
  std::vector<uint8_t> page(256, 7);
  ASSERT_TRUE(dev.WritePage(0, page).ok());
  ASSERT_TRUE(dev.ReadPage(0, page).ok());
  ASSERT_TRUE(dev.EraseBlock(0).ok());
  EXPECT_GT(meter.Component(EnergyComponent::kFlashWrite), 0.0);
  EXPECT_GT(meter.Component(EnergyComponent::kFlashRead), 0.0);
  EXPECT_GT(meter.Component(EnergyComponent::kFlashErase), 0.0);
  EXPECT_EQ(dev.stats().page_writes, 1u);
}

// ---------- page codec ----------

TEST(PageCodecTest, RoundTrip) {
  PageBuilder builder(256);
  std::vector<Sample> in;
  SimTime t = Hours(5);
  for (int i = 0; i < 20; ++i) {
    in.push_back(Sample{t, 20.0 + i});
    ASSERT_TRUE(builder.Fits(t, in.back().value));
    builder.Add(t, in.back().value);
    t += Seconds(31);
  }
  const std::vector<uint8_t> page = builder.Seal(/*seq=*/9, /*resolution=*/Seconds(31));
  ASSERT_EQ(page.size(), 256u);

  auto decoded = DecodePage(page);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.seq, 9u);
  EXPECT_EQ(decoded->header.resolution, Seconds(31));
  ASSERT_EQ(decoded->samples.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(decoded->samples[i].t, in[i].t) << i;
    EXPECT_NEAR(decoded->samples[i].value, in[i].value, 1e-4) << i;
  }
}

TEST(PageCodecTest, BlankPageIsNotFound) {
  std::vector<uint8_t> blank(256, 0xFF);
  EXPECT_EQ(DecodePage(blank).status().code(), StatusCode::kNotFound);
}

TEST(PageCodecTest, CorruptionDetected) {
  PageBuilder builder(256);
  builder.Add(Seconds(1), 1.0);
  std::vector<uint8_t> page = builder.Seal(1, Seconds(31));
  // Flip bits inside the record area. (0x55, not 0xFF: Fletcher-16 works mod 255, so a
  // 0x00 -> 0xFF flip would alias — a known limitation of the checksum family.)
  page[kPageHeaderBytes + 1] ^= 0x55;
  EXPECT_EQ(DecodePage(page).status().code(), StatusCode::kDataLoss);
}

TEST(PageCodecTest, PaddingCorruptionIsHarmless) {
  // Bit rot in the unused tail does not affect the checksummed record area.
  PageBuilder builder(256);
  builder.Add(Seconds(1), 1.0);
  std::vector<uint8_t> page = builder.Seal(1, Seconds(31));
  page[200] ^= 0xFF;
  EXPECT_TRUE(DecodePage(page).ok());
}

class PageCodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageCodecPropertyTest, RandomBatchesRoundTrip) {
  Pcg32 rng(GetParam());
  PageBuilder builder(512);
  std::vector<Sample> in;
  SimTime t = static_cast<SimTime>(rng.UniformInt(0, Days(300)));
  t = (t / kMillisecond) * kMillisecond;
  while (true) {
    const double v = rng.Gaussian(20, 30);
    if (!builder.Fits(t, v)) {
      break;
    }
    builder.Add(t, v);
    in.push_back(Sample{t, v});
    t += (rng.UniformInt(1, 90) * kSecond / 1) + rng.UniformInt(0, 999) * kMillisecond;
  }
  auto decoded = DecodePage(builder.Seal(1, 0));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->samples.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(decoded->samples[i].t, in[i].t);
    EXPECT_NEAR(decoded->samples[i].value, in[i].value,
                std::abs(in[i].value) * 1e-6 + 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCodecPropertyTest, ::testing::Range<uint64_t>(1, 9));

// ---------- ArchiveStore ----------

ArchiveParams TestArchiveParams() {
  ArchiveParams p;
  p.nominal_sample_period = Seconds(31);
  return p;
}

std::vector<Sample> MakeSeries(int n, SimTime start = 0, Duration step = Seconds(31)) {
  std::vector<Sample> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Sample{start + i * step, 20.0 + 0.01 * i});
  }
  return out;
}

TEST(ArchiveStoreTest, AppendFlushQuery) {
  FlashDevice dev(SmallFlash(), nullptr);
  ArchiveStore store(&dev, TestArchiveParams());
  const std::vector<Sample> series = MakeSeries(100);
  for (const Sample& s : series) {
    ASSERT_TRUE(store.Append(s).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  auto all = store.Query(TimeInterval{0, Days(1)});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ((*all)[i].t, series[i].t);
    EXPECT_NEAR((*all)[i].value, series[i].value, 1e-4);
  }
}

TEST(ArchiveStoreTest, RangeQueriesUseTimeIndex) {
  FlashDevice dev(SmallFlash(), nullptr);
  ArchiveStore store(&dev, TestArchiveParams());
  const std::vector<Sample> series = MakeSeries(200);
  for (const Sample& s : series) {
    ASSERT_TRUE(store.Append(s).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  const uint64_t reads_before = dev.stats().page_reads;
  const TimeInterval range{series[50].t, series[60].t + 1};
  auto out = store.Query(range);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 11u);
  // The index should touch only a couple of pages, not the whole archive.
  EXPECT_LE(dev.stats().page_reads - reads_before, 4u);
}

TEST(ArchiveStoreTest, OutOfOrderAppendRejected) {
  FlashDevice dev(SmallFlash(), nullptr);
  ArchiveStore store(&dev, TestArchiveParams());
  ASSERT_TRUE(store.Append(Sample{Seconds(100), 1.0}).ok());
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(store.Append(Sample{Seconds(50), 2.0}).code(), StatusCode::kInvalidArgument);
}

TEST(ArchiveStoreTest, MountRebuildsState) {
  FlashDevice dev(SmallFlash(), nullptr);
  const std::vector<Sample> series = MakeSeries(150);
  {
    ArchiveStore store(&dev, TestArchiveParams());
    for (const Sample& s : series) {
      ASSERT_TRUE(store.Append(s).ok());
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  // "Reboot": a fresh store over the same device.
  ArchiveStore store(&dev, TestArchiveParams());
  ASSERT_TRUE(store.Mount().ok());
  auto all = store.Query(TimeInterval{0, Days(1)});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), series.size());
  // Appending continues after the last record.
  EXPECT_TRUE(store.Append(Sample{series.back().t + Seconds(31), 9.0}).ok());
}

TEST(ArchiveStoreTest, MountSkipsTornPage) {
  FlashDevice dev(SmallFlash(), nullptr);
  const std::vector<Sample> series = MakeSeries(150);
  {
    ArchiveStore store(&dev, TestArchiveParams());
    for (const Sample& s : series) {
      ASSERT_TRUE(store.Append(s).ok());
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  dev.CorruptPageForTest(2);  // torn write in block 0
  ArchiveStore store(&dev, TestArchiveParams());
  ASSERT_TRUE(store.Mount().ok());
  EXPECT_GE(store.stats().pages_skipped, 1u);
  auto all = store.Query(TimeInterval{0, Days(1)});
  ASSERT_TRUE(all.ok());
  // Some data lost, but the store is consistent and most data survives.
  EXPECT_GT(all->size(), series.size() / 2);
  EXPECT_LT(all->size(), series.size());
}

TEST(ArchiveStoreTest, AgingKeepsOldDataQueryableAtCoarserResolution) {
  FlashDevice dev(SmallFlash(), nullptr);  // 16 KiB: fills quickly
  ArchiveParams params = TestArchiveParams();
  ArchiveStore store(&dev, params);
  // ~28 records/page * 4 pages/block * 16 blocks ~ 1800 records capacity; write 4x.
  const std::vector<Sample> series = MakeSeries(7000);
  for (const Sample& s : series) {
    ASSERT_TRUE(store.Append(s).ok()) << "at " << s.t;
  }
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_GT(store.stats().aging_passes, 0u);

  auto range = store.RetainedRange();
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->start, series.front().t);  // oldest data still represented

  // Old region: present but coarse.
  auto old_res = store.ResolutionAt(series[100].t);
  ASSERT_TRUE(old_res.ok());
  EXPECT_GT(*old_res, params.nominal_sample_period);
  auto old_data = store.Query(TimeInterval{0, series[400].t});
  ASSERT_TRUE(old_data.ok());
  EXPECT_FALSE(old_data->empty());
  EXPECT_LT(old_data->size(), 400u);

  // Recent region: full resolution.
  auto new_res = store.ResolutionAt(series[6900].t);
  ASSERT_TRUE(new_res.ok());
  EXPECT_EQ(*new_res, params.nominal_sample_period);
}

TEST(ArchiveStoreTest, AgedValuesApproximateWindowMeans) {
  FlashDevice dev(SmallFlash(), nullptr);
  ArchiveStore store(&dev, TestArchiveParams());
  const std::vector<Sample> series = MakeSeries(7000);
  for (const Sample& s : series) {
    ASSERT_TRUE(store.Append(s).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  auto old_data = store.Query(TimeInterval{0, series[1000].t});
  ASSERT_TRUE(old_data.ok());
  ASSERT_FALSE(old_data->empty());
  // The series is linear (~20 + 0.01 i), so an aged sample (a window mean, stamped at
  // the window start) sits ~half a window above the line. The window size is the
  // sample's current resolution.
  for (const Sample& s : *old_data) {
    const double i = static_cast<double>(s.t) / Seconds(31);
    auto resolution = store.ResolutionAt(s.t);
    ASSERT_TRUE(resolution.ok());
    const double window = static_cast<double>(*resolution) / Seconds(31);
    EXPECT_NEAR(s.value, 20.0 + 0.01 * (i + (window - 1) / 2.0), 0.02 + 0.005 * window)
        << "t=" << s.t;
  }
}

TEST(ArchiveStoreTest, FullWithoutAgingRejects) {
  FlashDevice dev(SmallFlash(), nullptr);
  ArchiveParams params = TestArchiveParams();
  params.aging_enabled = false;
  ArchiveStore store(&dev, params);
  Status status = OkStatus();
  int appended = 0;
  for (const Sample& s : MakeSeries(7000)) {
    status = store.Append(s);
    if (!status.ok()) {
      break;
    }
    ++appended;
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(appended, 1000);
  EXPECT_GT(store.stats().appends_rejected, 0u);
}

TEST(ArchiveStoreTest, EmptyQueriesAndRanges) {
  FlashDevice dev(SmallFlash(), nullptr);
  ArchiveStore store(&dev, TestArchiveParams());
  EXPECT_EQ(store.RetainedRange().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Query(TimeInterval{10, 5}).status().code(),
            StatusCode::kInvalidArgument);
  auto empty = store.Query(TimeInterval{0, 100});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(store.ResolutionAt(5).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace presto
