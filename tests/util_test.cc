// Unit and property tests for the util foundation: Result, byte/bit serialization,
// RNG, statistics, containers, time formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/bitpack.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/ring_buffer.h"
#include "src/util/rng.h"
#include "src/util/sample.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace presto {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "kNotFound: no such range");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------- ByteWriter / ByteReader ----------

TEST(BytesTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteF32(3.5f);
  w.WriteF64(-2.25);
  w.WriteString("presto");

  ByteReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0xBEEF);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.ReadF32(), 3.5f);
  EXPECT_EQ(*r.ReadF64(), -2.25);
  EXPECT_EQ(*r.ReadString(), "presto");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintBoundaries) {
  const uint64_t cases[] = {0, 1, 127, 128, 16383, 16384, UINT64_MAX};
  ByteWriter w;
  for (uint64_t c : cases) {
    w.WriteVarU64(c);
  }
  ByteReader r(w.buffer());
  for (uint64_t c : cases) {
    EXPECT_EQ(*r.ReadVarU64(), c);
  }
}

TEST(BytesTest, VarintSizes) {
  ByteWriter w;
  w.WriteVarU64(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.WriteVarU64(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(BytesTest, ZigzagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  ByteWriter w;
  for (int64_t c : cases) {
    w.WriteVarI64(c);
  }
  ByteReader r(w.buffer());
  for (int64_t c : cases) {
    EXPECT_EQ(*r.ReadVarI64(), c);
  }
}

TEST(BytesTest, TruncationIsAnErrorNotUb) {
  ByteWriter w;
  w.WriteU32(1234);
  std::vector<uint8_t> short_buf(w.buffer().begin(), w.buffer().begin() + 2);
  ByteReader r(short_buf);
  EXPECT_FALSE(r.ReadU32().ok());
}

TEST(BytesTest, TruncatedVarintFails) {
  std::vector<uint8_t> bad = {0x80, 0x80};  // continuation bits never end
  ByteReader r(bad);
  EXPECT_FALSE(r.ReadVarU64().ok());
}

// Property: random mixed payloads round-trip exactly.
class BytesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesPropertyTest, RandomRoundTrip) {
  Pcg32 rng(GetParam());
  ByteWriter w;
  std::vector<uint64_t> u64s;
  std::vector<int64_t> i64s;
  std::vector<double> doubles;
  for (int i = 0; i < 200; ++i) {
    u64s.push_back(rng.NextU64() >> (rng.NextU32() % 64));
    i64s.push_back(static_cast<int64_t>(rng.NextU64()));
    doubles.push_back(rng.Gaussian(0, 1e6));
  }
  for (int i = 0; i < 200; ++i) {
    w.WriteVarU64(u64s[i]);
    w.WriteVarI64(i64s[i]);
    w.WriteF64(doubles[i]);
  }
  ByteReader r(w.buffer());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(*r.ReadVarU64(), u64s[i]);
    EXPECT_EQ(*r.ReadVarI64(), i64s[i]);
    EXPECT_EQ(*r.ReadF64(), doubles[i]);
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest, ::testing::Values(1, 2, 3, 17, 99));

// ---------- BitWriter / BitReader ----------

TEST(BitpackTest, SingleBits) {
  BitWriter w;
  w.WriteBits(0b1011, 4);
  BitReader r(w.bytes());
  EXPECT_EQ(r.ReadBits(1), 1u);
  EXPECT_EQ(r.ReadBits(1), 1u);
  EXPECT_EQ(r.ReadBits(1), 0u);
  EXPECT_EQ(r.ReadBits(1), 1u);
}

TEST(BitpackTest, UnaryRoundTrip) {
  BitWriter w;
  for (int i = 0; i < 10; ++i) {
    w.WriteUnary(i);
  }
  BitReader r(w.bytes());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.ReadUnary(), i);
  }
}

class BitpackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitpackPropertyTest, RandomWidthsRoundTrip) {
  Pcg32 rng(GetParam());
  std::vector<std::pair<uint64_t, int>> values;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int bits = static_cast<int>(rng.UniformInt(1, 64));
    const uint64_t mask = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
    const uint64_t v = rng.NextU64() & mask;
    values.emplace_back(v, bits);
    w.WriteBits(v, bits);
  }
  BitReader r(w.bytes());
  for (const auto& [v, bits] : values) {
    EXPECT_EQ(r.ReadBits(bits), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitpackPropertyTest, ::testing::Values(4, 5, 6));

// ---------- RingBuffer ----------

TEST(RingBufferTest, FillAndOverwrite) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.Empty());
  rb.Push(1);
  rb.Push(2);
  rb.Push(3);
  EXPECT_TRUE(rb.Full());
  rb.Push(4);  // overwrites 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
  EXPECT_EQ(rb.Back(), 4);
  EXPECT_EQ(rb.ToVector(), (std::vector<int>{2, 3, 4}));
}

TEST(RingBufferTest, Clear) {
  RingBuffer<int> rb(2);
  rb.Push(1);
  rb.Clear();
  EXPECT_TRUE(rb.Empty());
  rb.Push(9);
  EXPECT_EQ(rb[0], 9);
}

// ---------- RNG ----------

TEST(RngTest, Deterministic) {
  Pcg32 a(123, 4);
  Pcg32 b(123, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, StreamsDiffer) {
  Pcg32 a(123, 1);
  Pcg32 b(123, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRangeAndCoversEndpoints) {
  Pcg32 rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Pcg32 rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Gaussian(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Pcg32 rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Exponential(0.5));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Pcg32 rng(17);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.0)));
    large.Add(static_cast<double>(rng.Poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(RngTest, BernoulliEdges) {
  Pcg32 rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

// ---------- Stats ----------

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats stats;
  for (double x : xs) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 5);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  EXPECT_NEAR(stats.variance(), 29.76, 1e-9);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Pcg32 rng(23);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3, 7);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet set;
  for (int i = 100; i >= 1; --i) {
    set.Add(i);
  }
  EXPECT_DOUBLE_EQ(set.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.Quantile(1.0), 100.0);
  EXPECT_NEAR(set.Median(), 50.5, 1e-9);
}

TEST(HistogramTest, ClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  h.Add(5.0);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(4), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.count(), 3);
}

TEST(ErrorMetricsTest, RmseAndFriends) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 4, 3};
  EXPECT_NEAR(Rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(MeanAbsError(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MaxAbsError(a, b), 2.0);
}

// ---------- time formatting ----------

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(Seconds(2), 2 * kSecond);
  EXPECT_EQ(Minutes(1.5), 90 * kSecond);
  EXPECT_DOUBLE_EQ(ToHours(Hours(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToDays(Days(2)), 2.0);
}

TEST(SimTimeTest, FormatTime) {
  EXPECT_EQ(FormatTime(Days(1) + Hours(2) + Minutes(3) + Seconds(4) + Millis(5)),
            "1d 02:03:04.005");
}

TEST(SimTimeTest, FormatDurationUnits) {
  EXPECT_EQ(FormatDuration(Micros(15)), "15us");
  EXPECT_EQ(FormatDuration(Minutes(16.5)), "16.5min");
  EXPECT_EQ(FormatDuration(Days(3)), "3d");
}

// ---------- TimeInterval / Sample ----------

TEST(TimeIntervalTest, ContainsAndOverlaps) {
  TimeInterval a{10, 20};
  EXPECT_TRUE(a.Contains(10));
  EXPECT_FALSE(a.Contains(20));
  EXPECT_TRUE(a.Overlaps(TimeInterval{19, 30}));
  EXPECT_FALSE(a.Overlaps(TimeInterval{20, 30}));
  EXPECT_EQ(a.Length(), 10);
}

// ---------- TextTable ----------

TEST(TextTableTest, AlignedOutputAndCsv) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"a", TextTable::Num(1.5, 1)});
  t.AddRow({"long-name", TextTable::Int(42)});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "name,value\na,1.5\nlong-name,42\n");
}

}  // namespace
}  // namespace presto
