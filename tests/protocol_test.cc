// Wire-protocol round-trip and robustness tests: every proxy<->sensor message type,
// plus malformed-input handling (a lossy radio must never crash a node).

#include <gtest/gtest.h>

#include "src/sensor/protocol.h"
#include "src/util/rng.h"

namespace presto {
namespace {

TEST(ProtocolTest, DataPushRoundTrip) {
  DataPushMsg in;
  in.reason = PushReason::kModelDeviation;
  in.local_send_time = Days(3) + Millis(250);
  in.batch = {1, 2, 3, 4, 5};
  auto out = DataPushMsg::Decode(in.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->reason, in.reason);
  EXPECT_EQ(out->local_send_time, in.local_send_time);
  EXPECT_EQ(out->batch, in.batch);
}

TEST(ProtocolTest, ModelUpdateRoundTrip) {
  ModelUpdateMsg in;
  in.model_seq = 42;
  in.tolerance = 0.75;
  in.model_params = std::vector<uint8_t>(64, 0xAB);
  auto out = ModelUpdateMsg::Decode(in.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->model_seq, 42u);
  EXPECT_NEAR(out->tolerance, 0.75, 1e-6);
  EXPECT_EQ(out->model_params, in.model_params);
}

TEST(ProtocolTest, ConfigUpdatePartialFields) {
  ConfigUpdateMsg in;
  in.fields = kCfgLplInterval | kCfgCompression;
  in.lpl_interval = Seconds(7);
  in.compress = true;
  in.quant_step = 0.125;
  auto out = ConfigUpdateMsg::Decode(in.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->fields, in.fields);
  EXPECT_EQ(out->lpl_interval, Seconds(7));
  EXPECT_TRUE(out->compress);
  EXPECT_NEAR(out->quant_step, 0.125, 1e-6);
}

TEST(ProtocolTest, ConfigUpdateAllFields) {
  ConfigUpdateMsg in;
  in.fields = kCfgSensingPeriod | kCfgBatchInterval | kCfgPolicy | kCfgValueDelta |
              kCfgCompression | kCfgLplInterval;
  in.sensing_period = Minutes(1);
  in.batch_interval = Hours(2);
  in.policy = PushPolicy::kBatched;
  in.value_delta = 1.5;
  in.compress = false;
  in.quant_step = 0.01;
  in.lpl_interval = Millis(500);
  auto out = ConfigUpdateMsg::Decode(in.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->sensing_period, Minutes(1));
  EXPECT_EQ(out->batch_interval, Hours(2));
  EXPECT_EQ(out->policy, PushPolicy::kBatched);
  EXPECT_NEAR(out->value_delta, 1.5, 1e-6);
  EXPECT_EQ(out->lpl_interval, Millis(500));
}

TEST(ProtocolTest, ArchiveQueryRoundTripWithAggregate) {
  ArchiveQueryMsg in;
  in.query_id = 7;
  in.local_start = Hours(1);
  in.local_end = Hours(2);
  in.compress = false;
  in.max_samples = 128;
  in.aggregate = AggregateOp::kMean;
  auto out = ArchiveQueryMsg::Decode(in.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->query_id, 7u);
  EXPECT_EQ(out->local_start, Hours(1));
  EXPECT_EQ(out->local_end, Hours(2));
  EXPECT_FALSE(out->compress);
  EXPECT_EQ(out->max_samples, 128u);
  EXPECT_EQ(out->aggregate, AggregateOp::kMean);
}

TEST(ProtocolTest, ArchiveReplyRoundTrip) {
  ArchiveReplyMsg in;
  in.query_id = 9;
  in.status_code = static_cast<uint8_t>(StatusCode::kNotFound);
  in.local_send_time = Days(1);
  auto out = ArchiveReplyMsg::Decode(in.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->query_id, 9u);
  EXPECT_EQ(out->status_code, static_cast<uint8_t>(StatusCode::kNotFound));
  EXPECT_TRUE(out->batch.empty());
}

TEST(ProtocolTest, ReplicaMessagesRoundTrip) {
  ReplicaUpdateMsg update;
  update.sensor_id = 1001;
  update.batch = {9, 8, 7};
  auto u = ReplicaUpdateMsg::Decode(update.Encode());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->sensor_id, 1001u);
  EXPECT_EQ(u->batch, update.batch);

  ReplicaModelMsg model;
  model.sensor_id = 1002;
  model.tolerance = 0.3;
  model.model_params = {1, 2};
  auto m = ReplicaModelMsg::Decode(model.Encode());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->sensor_id, 1002u);
  EXPECT_NEAR(m->tolerance, 0.3, 1e-6);
}

TEST(ProtocolTest, EmptyPayloadsRejected) {
  const std::vector<uint8_t> empty;
  EXPECT_FALSE(DataPushMsg::Decode(empty).ok());
  EXPECT_FALSE(ModelUpdateMsg::Decode(empty).ok());
  EXPECT_FALSE(ConfigUpdateMsg::Decode(empty).ok());
  EXPECT_FALSE(ArchiveQueryMsg::Decode(empty).ok());
  EXPECT_FALSE(ArchiveReplyMsg::Decode(empty).ok());
  EXPECT_FALSE(ReplicaUpdateMsg::Decode(empty).ok());
  EXPECT_FALSE(ReplicaModelMsg::Decode(empty).ok());
}

TEST(ProtocolTest, TruncatedPayloadsRejectedNotCrash) {
  // Encode each message, then decode every strict prefix: must error, never UB.
  DataPushMsg push;
  push.batch = std::vector<uint8_t>(20, 1);
  const std::vector<uint8_t> encoded = push.Encode();
  for (size_t len = 0; len < encoded.size(); ++len) {
    std::vector<uint8_t> prefix(encoded.begin(),
                                encoded.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DataPushMsg::Decode(prefix).ok()) << "prefix " << len;
  }
}

TEST(ProtocolTest, RandomGarbageNeverCrashes) {
  Pcg32 rng(123);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> junk(static_cast<size_t>(rng.UniformInt(0, 64)));
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.NextU32());
    }
    // Any of these may *succeed* by luck on random bytes; they must not crash.
    (void)DataPushMsg::Decode(junk);
    (void)ModelUpdateMsg::Decode(junk);
    (void)ConfigUpdateMsg::Decode(junk);
    (void)ArchiveQueryMsg::Decode(junk);
    (void)ArchiveReplyMsg::Decode(junk);
  }
}

TEST(ProtocolTest, AggregateOpNames) {
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMean), "mean");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kCount), "count");
  EXPECT_STREQ(PushPolicyName(PushPolicy::kModelDriven), "model-driven");
  EXPECT_STREQ(PushReasonName(PushReason::kModelDeviation), "model-deviation");
}

}  // namespace
}  // namespace presto
