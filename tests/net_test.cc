// Tests for the LPL MAC / network fabric: delivery, rendezvous latency, energy
// accounting, loss and retries, failure injection, duty-cycle adaptation.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/cell_link.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace presto {
namespace {

class Recorder : public NetNode {
 public:
  void OnMessage(const Message& message) override { messages.push_back(message); }
  std::vector<Message> messages;
};

struct Harness {
  Simulator sim;
  NetworkParams params;
  std::unique_ptr<Network> net;
  Recorder proxy;
  Recorder sensor;
  EnergyMeter sensor_meter;

  explicit Harness(double loss = 0.0, Duration lpl = Seconds(1)) {
    params.default_frame_loss = loss;
    net = std::make_unique<Network>(&sim, params, /*seed=*/99);
    NodeRadioConfig powered;
    powered.powered = true;
    net->AttachNode(1, &proxy, powered, nullptr);
    NodeRadioConfig unpowered;
    unpowered.powered = false;
    unpowered.lpl_interval = lpl;
    unpowered.post_burst_listen = Seconds(5);
    net->AttachNode(2, &sensor, unpowered, &sensor_meter);
  }
};

TEST(NetworkTest, DeliversToPoweredReceiver) {
  Harness h;
  h.net->Send(2, 1, 7, {1, 2, 3});
  h.sim.RunAll();
  ASSERT_EQ(h.proxy.messages.size(), 1u);
  EXPECT_EQ(h.proxy.messages[0].src, 2u);
  EXPECT_EQ(h.proxy.messages[0].type, 7u);
  EXPECT_EQ(h.proxy.messages[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(h.net->stats().messages_delivered, 1u);
}

TEST(NetworkTest, UplinkToPoweredProxyIsFast) {
  Harness h;
  h.net->Send(2, 1, 0, std::vector<uint8_t>(10));
  h.sim.RunAll();
  ASSERT_EQ(h.proxy.messages.size(), 1u);
  // Short preamble + one frame + ack at 19.2 kbps: well under 100 ms.
  EXPECT_LT(h.proxy.messages[0].delivered_at, Millis(100));
}

TEST(NetworkTest, DownlinkWaitsForLplRendezvous) {
  Harness h(/*loss=*/0.0, /*lpl=*/Seconds(2));
  h.net->Send(1, 2, 0, std::vector<uint8_t>(10));
  h.sim.RunAll();
  ASSERT_EQ(h.sensor.messages.size(), 1u);
  // The preamble must span the receiver's 2 s check interval.
  EXPECT_GE(h.sensor.messages[0].delivered_at, Seconds(2));
  EXPECT_LT(h.sensor.messages[0].delivered_at, Seconds(3));
}

TEST(NetworkTest, PostBurstListenWindowMakesReplyFast) {
  Harness h(/*loss=*/0.0, /*lpl=*/Seconds(2));
  // Sensor pushes; proxy replies within the sensor's 5 s listen window.
  h.net->Send(2, 1, 0, std::vector<uint8_t>(4));
  h.sim.RunAll();
  const SimTime push_done = h.proxy.messages.at(0).delivered_at;
  h.net->Send(1, 2, 0, std::vector<uint8_t>(4));
  h.sim.RunAll();
  ASSERT_EQ(h.sensor.messages.size(), 1u);
  // No 2 s rendezvous needed: delivered shortly after the push.
  EXPECT_LT(h.sensor.messages[0].delivered_at - push_done, Millis(200));
}

TEST(NetworkTest, SenderEnergyChargedPerBurst) {
  Harness h;
  h.net->Send(2, 1, 0, std::vector<uint8_t>(64));
  h.sim.RunAll();
  const double tx = h.sensor_meter.Component(EnergyComponent::kRadioTx);
  const double listen = h.sensor_meter.Component(EnergyComponent::kRadioListen);
  EXPECT_GT(tx, 0.0);
  // Post-burst listen window (5 s at 45 mW) dominates listen cost.
  EXPECT_NEAR(listen, 0.225, 0.05);
}

TEST(NetworkTest, IdleEnergyAccruesWithDutyCycle) {
  Harness h(/*loss=*/0.0, /*lpl=*/Seconds(1));
  h.sim.RunUntil(Hours(1));
  h.net->SettleIdleEnergy();
  const double listen = h.sensor_meter.Component(EnergyComponent::kRadioListen);
  // 2.5 ms sample per 1 s at 45 mW = 112.5 uW -> ~0.405 J/h.
  EXPECT_NEAR(listen, 0.405, 0.05);
  EXPECT_GT(h.sensor_meter.Component(EnergyComponent::kRadioSleep), 0.0);
}

TEST(NetworkTest, LongerLplIntervalSavesIdleEnergy) {
  Harness fast(/*loss=*/0.0, /*lpl=*/Millis(200));
  Harness slow(/*loss=*/0.0, /*lpl=*/Seconds(4));
  fast.sim.RunUntil(Hours(1));
  slow.sim.RunUntil(Hours(1));
  fast.net->SettleIdleEnergy();
  slow.net->SettleIdleEnergy();
  EXPECT_GT(fast.sensor_meter.Component(EnergyComponent::kRadioListen),
            5.0 * slow.sensor_meter.Component(EnergyComponent::kRadioListen));
}

TEST(NetworkTest, SetLplIntervalSettlesAtOldRate) {
  Harness h(/*loss=*/0.0, /*lpl=*/Seconds(1));
  h.sim.RunUntil(Hours(1));
  h.net->SetLplInterval(2, Seconds(10));
  const double after_first_hour = h.sensor_meter.Component(EnergyComponent::kRadioListen);
  h.sim.RunUntil(Hours(2));
  h.net->SettleIdleEnergy();
  const double second_hour =
      h.sensor_meter.Component(EnergyComponent::kRadioListen) - after_first_hour;
  EXPECT_LT(second_hour, after_first_hour / 5.0);
  EXPECT_EQ(h.net->LplInterval(2), Seconds(10));
}

TEST(NetworkTest, LossCausesRetriesAndEventuallyDrops) {
  Harness h(/*loss=*/0.65);
  for (int i = 0; i < 50; ++i) {
    h.net->Send(2, 1, 0, std::vector<uint8_t>(8));
    h.sim.RunAll();
  }
  const NetStats& stats = h.net->stats();
  EXPECT_GT(stats.frame_retries, 0u);
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.messages_delivered, 0u);
  EXPECT_EQ(stats.messages_delivered + stats.messages_dropped, 50u);
}

TEST(NetworkTest, ZeroLossDeliversEverything) {
  Harness h(/*loss=*/0.0);
  for (int i = 0; i < 50; ++i) {
    h.net->Send(2, 1, 0, std::vector<uint8_t>(8));
  }
  h.sim.RunAll();
  EXPECT_EQ(h.net->stats().messages_delivered, 50u);
  EXPECT_EQ(h.net->stats().frame_retries, 0u);
}

TEST(NetworkTest, LargePayloadFragmentsIntoFrames) {
  Harness h;
  h.net->Send(2, 1, 0, std::vector<uint8_t>(300));  // 64-byte frames -> 5 frames
  h.sim.RunAll();
  EXPECT_EQ(h.net->node_stats(2).frames_sent, 5u);
  ASSERT_EQ(h.proxy.messages.size(), 1u);
  EXPECT_EQ(h.proxy.messages[0].payload.size(), 300u);
}

TEST(NetworkTest, DownNodeNeitherSendsNorReceives) {
  Harness h;
  h.net->SetNodeDown(2, true);
  h.net->Send(1, 2, 0, {1});
  h.net->Send(2, 1, 0, {1});
  h.sim.RunAll();
  EXPECT_TRUE(h.sensor.messages.empty());
  EXPECT_TRUE(h.proxy.messages.empty());
  h.net->SetNodeDown(2, false);
  h.net->Send(1, 2, 0, {1});
  h.sim.RunAll();
  EXPECT_EQ(h.sensor.messages.size(), 1u);
}

TEST(NetworkTest, WiredPathIsFastAndFree) {
  Simulator sim;
  Network net(&sim, NetworkParams{}, 1);
  Recorder a;
  Recorder b;
  NodeRadioConfig powered;
  powered.powered = true;
  net.AttachNode(10, &a, powered, nullptr);
  net.AttachNode(11, &b, powered, nullptr);
  net.ConnectWired(10, 11);
  net.Send(10, 11, 3, std::vector<uint8_t>(1000));
  sim.RunAll();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_LT(b.messages[0].delivered_at, Millis(15));
  EXPECT_EQ(net.stats().wired_messages, 1u);
}

TEST(NetworkTest, BurstsFromOneSenderSerialize) {
  Harness h;
  h.net->Send(2, 1, 0, std::vector<uint8_t>(64));
  h.net->Send(2, 1, 1, std::vector<uint8_t>(64));
  h.sim.RunAll();
  ASSERT_EQ(h.proxy.messages.size(), 2u);
  EXPECT_EQ(h.proxy.messages[0].type, 0u);
  EXPECT_EQ(h.proxy.messages[1].type, 1u);
  EXPECT_GT(h.proxy.messages[1].delivered_at, h.proxy.messages[0].delivered_at);
}

TEST(NetworkTest, NodeDownAbandonsItsPendingBatches) {
  // Regression: queued epoch traffic of a killed node must not fire its flush timer
  // later — that silently inflated messages_dropped and the event fingerprint.
  Harness h;
  h.params.batch_epoch = Seconds(2);
  h.net = std::make_unique<Network>(&h.sim, h.params, /*seed=*/99);
  NodeRadioConfig powered;
  powered.powered = true;
  h.net->AttachNode(1, &h.proxy, powered, nullptr);
  NodeRadioConfig unpowered;
  h.net->AttachNode(2, &h.sensor, unpowered, &h.sensor_meter);

  h.net->SendBatched(2, 1, 7, {1});
  h.net->SendBatched(2, 1, 7, {2});  // same epoch: one pending batch 2 -> 1
  h.net->SetNodeDown(2, true);
  h.sim.RunAll();

  EXPECT_TRUE(h.proxy.messages.empty());
  EXPECT_EQ(h.net->stats().batches_abandoned, 1u);
  EXPECT_EQ(h.net->stats().messages_dropped, 0u)
      << "abandoned batches never reached the radio, so they are not drops";
  EXPECT_EQ(h.net->stats().batch_flushes, 0u);

  // Batches where the dead node is the *destination* are abandoned too.
  h.net->SetNodeDown(2, false);
  h.net->SendBatched(1, 2, 7, {3});
  h.net->SetNodeDown(2, true);
  h.sim.RunAll();
  EXPECT_EQ(h.net->stats().batches_abandoned, 2u);
  EXPECT_TRUE(h.sensor.messages.empty());

  // A revived node's fresh traffic batches normally again.
  h.net->SetNodeDown(2, false);
  h.net->SendBatched(2, 1, 7, {4});
  h.net->SendBatched(2, 1, 7, {5});
  h.sim.RunAll();
  EXPECT_EQ(h.proxy.messages.size(), 2u);
  EXPECT_EQ(h.net->stats().batch_flushes, 1u);
}

TEST(NetworkTest, PerLinkLossOverride) {
  Harness h(/*loss=*/0.0);
  h.net->SetLinkLoss(1, 2, 0.99);
  int delivered = 0;
  for (int i = 0; i < 30; ++i) {
    h.net->Send(2, 1, 0, {1});
    h.sim.RunAll();
    delivered = static_cast<int>(h.net->stats().messages_delivered);
  }
  EXPECT_LT(delivered, 30);
}

// ---------- inter-cell trunk (CellLink) ----------

TEST(CellLinkTest, AddsTransferAndPropagationDelay) {
  CellLinkParams params;
  params.latency = Millis(10);
  params.bandwidth_bps = 8e6;  // 1 byte/us
  CellLink link(params);
  // 1000 bytes at 1 byte/us = 1 ms on the wire, plus 10 ms of propagation.
  EXPECT_EQ(link.TransferTime(1000), Millis(1));
  EXPECT_EQ(link.Deliver(Seconds(1), 1000), Seconds(1) + Millis(11));
  EXPECT_EQ(link.stats().messages, 1u);
  EXPECT_EQ(link.stats().bytes, 1000u);
  EXPECT_EQ(link.stats().queued, 0u);
}

TEST(CellLinkTest, SerializesFifoBehindEarlierTraffic) {
  CellLinkParams params;
  params.latency = 0;
  params.bandwidth_bps = 8e6;  // 1 byte/us
  CellLink link(params);
  // Two back-to-back megabyte transfers: the second queues behind the first.
  const SimTime first = link.Deliver(0, 1000000);
  EXPECT_EQ(first, Seconds(1));
  const SimTime second = link.Deliver(Millis(1), 1000000);
  EXPECT_EQ(second, Seconds(2)) << "second message must depart after the first clears";
  EXPECT_EQ(link.stats().queued, 1u);
  // Once the trunk is idle again, delivery is send time + transfer.
  EXPECT_EQ(link.Deliver(Seconds(10), 1000), Seconds(10) + Millis(1));
}

}  // namespace
}  // namespace presto
