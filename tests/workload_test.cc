// Tests for the synthetic workloads: determinism, the statistical structure PRESTO
// exploits (diurnal shape, spatial correlation, rush hours, daily routines), and the
// rare events it must not miss.

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/stats.h"
#include "src/workload/activity.h"
#include "src/workload/events.h"
#include "src/workload/queries.h"
#include "src/workload/signal.h"
#include "src/workload/temperature.h"
#include "src/workload/traffic.h"

namespace presto {
namespace {

// ---------- hash noise ----------

TEST(HashNoiseTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(HashGaussian(1, 42), HashGaussian(1, 42));
  EXPECT_NE(HashGaussian(1, 42), HashGaussian(1, 43));
  EXPECT_NE(HashGaussian(1, 42), HashGaussian(2, 42));
}

TEST(HashNoiseTest, GaussianMoments) {
  RunningStats stats;
  for (int64_t i = 0; i < 50000; ++i) {
    stats.Add(HashGaussian(7, i));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

// ---------- temperature ----------

TEST(TemperatureTest, DeterministicReplay) {
  TemperatureParams params;
  params.seed = 33;
  TemperatureSignal a(params);
  TemperatureSignal b(params);
  for (SimTime t = 0; t < Days(2); t += Minutes(17)) {
    EXPECT_EQ(a.ValueAt(t), b.ValueAt(t)) << t;
  }
}

TEST(TemperatureTest, DiurnalStructurePresent) {
  TemperatureParams params;
  params.seed = 34;
  params.front_std_c = 0.0;  // isolate the deterministic components
  params.events_per_day = 0.0;
  TemperatureSignal signal(params);
  const double at_peak = signal.ValueAt(Days(10) + params.diurnal_peak);
  const double at_trough = signal.ValueAt(Days(10) + params.diurnal_peak + Hours(12));
  EXPECT_NEAR(at_peak - at_trough, 2.0 * params.diurnal_amplitude_c, 0.2);
}

TEST(TemperatureTest, FrontsHaveHoursOfMemory) {
  TemperatureParams params;
  params.seed = 35;
  params.diurnal_amplitude_c = 0.0;
  params.seasonal_amplitude_c = 0.0;
  params.events_per_day = 0.0;
  TemperatureSignal signal(params);
  // Lag-1h autocorrelation of the front process should be high (timescale 9 h).
  std::vector<double> now;
  std::vector<double> later;
  for (int i = 0; i < 2000; ++i) {
    now.push_back(signal.ValueAt(i * kHour));
    later.push_back(signal.ValueAt(i * kHour + kHour));
  }
  RunningStats sn;
  RunningStats sl;
  for (double v : now) {
    sn.Add(v);
  }
  for (double v : later) {
    sl.Add(v);
  }
  double cov = 0.0;
  for (size_t i = 0; i < now.size(); ++i) {
    cov += (now[i] - sn.mean()) * (later[i] - sl.mean());
  }
  cov /= static_cast<double>(now.size());
  EXPECT_GT(cov / (sn.stddev() * sl.stddev()), 0.7);
}

TEST(TemperatureTest, EventsInjectExcursions) {
  TemperatureParams params;
  params.seed = 36;
  params.events_per_day = 4.0;
  TemperatureSignal signal(params);
  const auto events = signal.EventsIn(TimeInterval{0, Days(10)});
  EXPECT_GT(events.size(), 15u);
  EXPECT_LT(events.size(), 80u);
  // During an event the excursion from base is material.
  const TransientEvent& e = events.front();
  const SimTime peak = e.start + e.rise;
  EXPECT_GT(std::abs(signal.ValueAt(peak) - signal.BaseAt(peak)),
            0.5 * std::abs(e.magnitude));
}

TEST(TemperatureFieldTest, SpatialCorrelationKnob) {
  TemperatureParams params;
  params.seed = 37;
  params.events_per_day = 0.0;
  auto correlation_between_nodes = [&params](double rho) {
    TemperatureField field(2, params, rho);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 1500; ++i) {
      a.push_back(field.TruthAt(0, i * Minutes(30)));
      b.push_back(field.TruthAt(1, i * Minutes(30)));
    }
    RunningStats sa;
    RunningStats sb;
    for (double v : a) {
      sa.Add(v);
    }
    for (double v : b) {
      sb.Add(v);
    }
    double cov = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
    }
    return cov / static_cast<double>(a.size()) / (sa.stddev() * sb.stddev());
  };
  EXPECT_GT(correlation_between_nodes(0.95), 0.85);
  EXPECT_GT(correlation_between_nodes(0.95), correlation_between_nodes(0.3));
}

TEST(TemperatureFieldTest, MeasurementNoiseOnTopOfTruth) {
  TemperatureParams params;
  params.seed = 38;
  params.noise_std_c = 0.2;
  TemperatureField field(1, params, 0.9);
  RunningStats noise;
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = i * Seconds(31);
    noise.Add(field.MeasureAt(0, t) - field.TruthAt(0, t));
  }
  EXPECT_NEAR(noise.stddev(), 0.2, 0.02);
  EXPECT_NEAR(noise.mean(), 0.0, 0.02);
}

// ---------- traffic ----------

TEST(TrafficTest, RushHourRates) {
  TrafficParams params;
  TrafficGenerator gen(params);
  EXPECT_GT(gen.RatePerHour(params.morning_peak), 5.0 * gen.RatePerHour(Hours(3)));
  EXPECT_GT(gen.RatePerHour(params.evening_peak), 5.0 * gen.RatePerHour(Hours(3)));
}

TEST(TrafficTest, VehicleCountsMatchRateScale) {
  TrafficParams params;
  params.seed = 39;
  TrafficGenerator gen(params);
  const auto vehicles = gen.GenerateVehicles(TimeInterval{0, Days(2)});
  // Integral of the rate: 2 days of base 60/h plus 4 rush bumps of ~540*1.2h*sqrt(2pi).
  EXPECT_GT(vehicles.size(), 4000u);
  EXPECT_LT(vehicles.size(), 14000u);
  for (size_t i = 1; i < vehicles.size(); ++i) {
    EXPECT_GT(vehicles[i].entry_time, vehicles[i - 1].entry_time);
  }
}

TEST(TrafficTest, DetectionsOrderedAndComplete) {
  TrafficParams params;
  params.seed = 40;
  TrafficGenerator gen(params);
  const auto vehicles = gen.GenerateVehicles(TimeInterval{0, Hours(2)});
  const auto streams = gen.DetectionsAt(vehicles, 4, 200.0);
  ASSERT_EQ(streams.size(), 4u);
  for (const auto& stream : streams) {
    EXPECT_EQ(stream.size(), vehicles.size());
    for (size_t i = 1; i < stream.size(); ++i) {
      EXPECT_LE(stream[i - 1].t, stream[i].t);
    }
  }
  // A vehicle reaches detector 3 after detector 0.
  EXPECT_LT(streams[0][0].t, streams[3][0].t);
}

TEST(TrafficTest, CountSeriesSumsToVehicles) {
  TrafficParams params;
  params.seed = 41;
  TrafficGenerator gen(params);
  const TimeInterval interval{0, Hours(6)};
  const auto vehicles = gen.GenerateVehicles(interval);
  const auto series = gen.CountSeries(vehicles, interval, Minutes(5));
  double total = 0.0;
  for (const Sample& s : series) {
    total += s.value;
  }
  EXPECT_EQ(static_cast<size_t>(total), vehicles.size());
}

// ---------- activity ----------

TEST(ActivityTest, DailyRoutineIsPredictable) {
  ActivityParams params;
  params.seed = 42;
  params.anomalies_per_week = 0.0;
  ActivitySignal signal(params);
  // At 3am the subject sleeps; at noon there is a meal; levels reflect that.
  int sleep_hits = 0;
  for (int day = 1; day <= 10; ++day) {
    if (signal.StateAt(Days(day) + Hours(3)) == ActivityState::kSleep) {
      ++sleep_hits;
    }
  }
  EXPECT_GE(sleep_hits, 9);
  EXPECT_LT(signal.ValueAt(Days(3) + Hours(3)), 1.5);
}

TEST(ActivityTest, AnomaliesAppearAndDistort) {
  ActivityParams params;
  params.seed = 43;
  params.anomalies_per_week = 14.0;  // frequent, for the test
  ActivitySignal signal(params);
  const auto anomalies = signal.AnomaliesIn(TimeInterval{0, Days(7)});
  ASSERT_GT(anomalies.size(), 5u);
  // A fall: brief spike then stillness.
  for (const auto& a : anomalies) {
    if (a.kind == ActivityAnomaly::Kind::kFall) {
      EXPECT_GT(signal.ValueAt(a.start + Seconds(5)), 7.0);
      EXPECT_LT(signal.ValueAt(a.start + Minutes(5)), 1.0);
      break;
    }
  }
}

// ---------- surveillance ----------

TEST(SurveillanceTest, IntruderTripsSensorsAlongPath) {
  SurveillanceParams params;
  params.seed = 44;
  params.events_per_day = 10.0;
  SurveillanceWorkload workload(params);
  const auto events = workload.EventsIn(TimeInterval{0, Days(2)});
  ASSERT_FALSE(events.empty());
  const IntrusionEvent& e = events.front();
  // At the start of the event, the entry sensor reads high.
  EXPECT_GT(workload.ReadingAt(e.entry_sensor, e.start + Seconds(1)), 5.0);
  // Long before the event, background.
  EXPECT_LT(workload.ReadingAt(e.entry_sensor, e.start - Hours(1)), 1.0);
}

// ---------- queries ----------

TEST(QueryWorkloadTest, RespectsDistributions) {
  QueryWorkloadParams params;
  params.seed = 45;
  params.num_sensors = 8;
  params.queries_per_hour = 60.0;
  const auto queries = GenerateQueries(params, TimeInterval{Days(1), Days(2)});
  ASSERT_GT(queries.size(), 1000u);
  int past = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryRequest& q = queries[i];
    EXPECT_GE(q.issue_at, Days(1));
    EXPECT_LT(q.issue_at, Days(2));
    if (i > 0) {
      EXPECT_GE(q.issue_at, queries[i - 1].issue_at);
    }
    EXPECT_GE(q.sensor, 0);
    EXPECT_LT(q.sensor, 8);
    EXPECT_GE(q.tolerance, params.min_tolerance);
    EXPECT_LE(q.tolerance, params.max_tolerance);
    if (q.past) {
      ++past;
      EXPECT_LE(q.age, q.issue_at);  // never before the epoch
      EXPECT_GE(q.age, q.window);
    }
  }
  EXPECT_NEAR(static_cast<double>(past) / static_cast<double>(queries.size()),
              params.past_fraction, 0.05);
}

}  // namespace
}  // namespace presto
