// Deterministic mutation fuzzing over the fed_wire decode surface.
//
// The process seam's security contract is totality: any byte stream arriving on
// a FrameChannel — bit flips, truncations, length-field lies, type confusion,
// spliced frames, pure garbage — must come back as a typed Status or a valid
// frame, never a crash, abort, hang, or sanitizer finding. These tests drive a
// seeded Pcg32 mutation engine over corpora of *valid* captured encodings and
// assert that invariant across every decoder on the seam: DecodeFedFrame,
// FrameChannel::Recv (over a real socketpair), DecodeFedHello, the FedMail and
// cell-bitmap codecs, and DecodeFedControlReply. Seeds are fixed, so a failure
// reproduces exactly; CI runs this under ASan/UBSan where "never crash" has
// teeth.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/core/federation.h"
#include "src/net/fed_wire.h"
#include "src/util/ckpt.h"

namespace presto {
namespace {

// Deterministic PCG-XSH-RR: fixed seeds must replay bit-for-bit forever, so the
// fuzzer carries its own generator instead of trusting <random> distributions.
struct Pcg32 {
  uint64_t state;
  explicit Pcg32(uint64_t seed)
      : state(seed * 0x9e3779b97f4a7c15ull + 1442695040888963407ull) {}
  uint32_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t xorshifted =
        static_cast<uint32_t>(((state >> 18u) ^ state) >> 27u);
    const uint32_t rot = static_cast<uint32_t>(state >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }
  size_t Below(size_t bound) { return bound == 0 ? 0 : Next() % bound; }
};

std::vector<uint8_t> MustEncode(const FedFrame& frame) {
  auto encoded = EncodeFedFrame(frame);
  EXPECT_TRUE(encoded.ok()) << encoded.status().message();
  return *encoded;
}

// A corpus of valid frames covering every type and the payload shapes the real
// orchestrator/worker pair exchanges — mutations of *almost-valid* inputs probe
// far deeper into the decoders than random bytes ever reach.
std::vector<std::vector<uint8_t>> FrameCorpus() {
  std::vector<std::vector<uint8_t>> corpus;
  for (uint8_t t = 0; t < kFedFrameTypeCount; ++t) {
    FedFrame frame;
    frame.type = static_cast<FedFrameType>(t);
    corpus.push_back(MustEncode(frame));
  }
  {
    FedFrame hello;
    hello.type = FedFrameType::kHello;
    FedHello h;
    h.worker_index = 2;
    h.num_workers = 5;
    hello.payload = EncodeFedHello(h);
    corpus.push_back(MustEncode(hello));
  }
  {
    FedFrame step;
    step.type = FedFrameType::kStep;
    ByteWriter w;
    CkptWrite(w, SimTime{Minutes(90)});
    CkptWrite(w, SimTime{Minutes(90) + Seconds(1)});
    std::vector<FedMail> mail;
    FedMail m;
    m.source_cell = 1;
    m.target_cell = 3;
    m.time = Minutes(90) + Millis(250);
    m.op = kFedOpExecute;
    m.qid = (1ull << 33) + 7;
    m.body = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11};
    mail.push_back(m);
    m.op = kFedOpComplete;
    m.body.assign(64, 0x5a);
    mail.push_back(m);
    CkptWrite(w, mail);
    step.payload = w.TakeBuffer();
    corpus.push_back(MustEncode(step));
  }
  {
    FedFrame err;
    err.type = FedFrameType::kError;
    ByteWriter w;
    CkptWrite(w, UnavailableError("fed_wire fuzz: synthetic failure"));
    err.payload = w.TakeBuffer();
    corpus.push_back(MustEncode(err));
  }
  {
    FedFrame load;
    load.type = FedFrameType::kCkptLoad;
    ByteWriter w;
    const std::vector<uint8_t> blob(257, 0xc3);
    w.WriteBytes(span<const uint8_t>(blob));
    WriteCellBitmap(w, {1, 0, 0, 1, 0, 1});
    load.payload = w.TakeBuffer();
    corpus.push_back(MustEncode(load));
  }
  return corpus;
}

// One seeded mutation of a corpus entry. `max_length_lie_bytes` bounds how many
// length-prefix bytes a lie may scribble: the span decoder rejects any lie
// before allocating, but FrameChannel::Recv legitimately allocates up to the
// claimed (cap-checked) size, so the socket path keeps lies under 16 MiB.
std::vector<uint8_t> Mutate(Pcg32& rng, const std::vector<uint8_t>& seed_bytes,
                            int max_length_lie_bytes) {
  std::vector<uint8_t> bytes = seed_bytes;
  switch (rng.Below(7)) {
    case 0:  // bit flips
      for (size_t n = 1 + rng.Below(8); n > 0 && !bytes.empty(); --n) {
        bytes[rng.Below(bytes.size())] ^= static_cast<uint8_t>(1u << rng.Below(8));
      }
      break;
    case 1:  // truncation
      bytes.resize(rng.Below(bytes.size() + 1));
      break;
    case 2: {  // length-field lie (bytes 6..9 little-endian)
      for (size_t i = 0; i < static_cast<size_t>(max_length_lie_bytes) &&
                         bytes.size() > 6 + i;
           ++i) {
        bytes[6 + i] = static_cast<uint8_t>(rng.Next());
      }
      break;
    }
    case 3:  // type confusion
      if (bytes.size() > 5) {
        bytes[5] = static_cast<uint8_t>(rng.Next());
      }
      break;
    case 4:  // magic / version scribble
      if (!bytes.empty()) {
        bytes[rng.Below(std::min<size_t>(5, bytes.size()))] =
            static_cast<uint8_t>(rng.Next());
      }
      break;
    case 5: {  // splice: random trailing junk (a second, torn frame)
      const size_t extra = 1 + rng.Below(32);
      for (size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng.Next()));
      }
      break;
    }
    default: {  // replace with pure garbage
      bytes.assign(rng.Below(64), 0);
      for (auto& b : bytes) {
        b = static_cast<uint8_t>(rng.Next());
      }
      break;
    }
  }
  return bytes;
}

TEST(FedWireFuzzTest, DecodeFedFrameIsTotalAndRoundTripExact) {
  const auto corpus = FrameCorpus();
  Pcg32 rng(0xfed51de5ull);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const std::vector<uint8_t> bytes =
        Mutate(rng, corpus[rng.Below(corpus.size())], /*max_length_lie_bytes=*/4);
    auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
    if (!decoded.ok()) {
      ++rejected;
      EXPECT_FALSE(decoded.status().message().empty());
      continue;
    }
    ++accepted;
    // Exactness oracle: decode enforces exactly-one-frame, so re-encoding an
    // accepted input must reproduce it byte for byte — any tolerated ambiguity
    // here would let two different byte streams alias the same frame.
    EXPECT_EQ(MustEncode(*decoded), bytes) << "iter=" << iter;
  }
  // The mutation engine must exercise both sides of the accept/reject boundary.
  EXPECT_GT(accepted, 100);
  EXPECT_GT(rejected, 1000);
}

TEST(FedWireFuzzTest, FrameChannelRecvSurvivesMutatedStreams) {
  const auto corpus = FrameCorpus();
  Pcg32 rng(0x50c4e7ull);
  int frames_ok = 0, errors = 0;
  for (int iter = 0; iter < 1500; ++iter) {
    // 1-3 mutated frames back to back: Recv must resynchronize or fail cleanly,
    // and the closed writer guarantees termination (EOF) — never a hang.
    std::vector<uint8_t> stream;
    const size_t burst = 1 + rng.Below(3);
    for (size_t i = 0; i < burst; ++i) {
      const std::vector<uint8_t> part =
          Mutate(rng, corpus[rng.Below(corpus.size())], /*max_length_lie_bytes=*/3);
      stream.insert(stream.end(), part.begin(), part.end());
    }
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameChannel reader(fds[0]);
    // Write on the raw fd, then close: streams here fit comfortably inside the
    // kernel socket buffer, so a single-threaded write cannot deadlock.
    size_t written = 0;
    while (written < stream.size()) {
      const ssize_t n =
          ::write(fds[1], stream.data() + written, stream.size() - written);
      ASSERT_GT(n, 0);
      written += static_cast<size_t>(n);
    }
    ::close(fds[1]);
    while (true) {
      auto received = reader.Recv();
      if (!received.ok()) {
        ++errors;
        EXPECT_FALSE(received.status().message().empty());
        break;  // any error tears the channel, same as the orchestrator does
      }
      ++frames_ok;
    }
  }
  EXPECT_GT(frames_ok, 50);
  EXPECT_GT(errors, 500);
}

// Payload-level decoders: the bytes inside an accepted frame are attacker
// surface too (a compromised worker can put anything in a kAck payload).
TEST(FedWireFuzzTest, PayloadCodecsAreTotal) {
  Pcg32 rng(0xbadc0ffeull);

  ByteWriter hello_writer;
  FedHello h;
  h.worker_index = 1;
  h.num_workers = 4;
  const std::vector<uint8_t> hello_seed = EncodeFedHello(h);

  ByteWriter mail_writer;
  FedMail m;
  m.source_cell = 2;
  m.target_cell = 7;
  m.time = Hours(2);
  m.op = kFedOpComplete;
  m.qid = 99;
  m.body.assign(48, 0xa5);
  CkptWrite(mail_writer, m);
  const std::vector<uint8_t> mail_seed = mail_writer.buffer();

  ByteWriter bitmap_writer;
  WriteCellBitmap(bitmap_writer, {0, 1, 1, 0, 1, 0, 0, 1, 1});
  const std::vector<uint8_t> bitmap_seed = bitmap_writer.buffer();

  const std::vector<uint8_t> control_seed =
      EncodeFedControlReply({m, m}, {});

  for (int iter = 0; iter < 20000; ++iter) {
    switch (rng.Below(4)) {
      case 0: {
        const auto bytes = Mutate(rng, hello_seed, 0);
        FedHello out;
        (void)DecodeFedHello(span<const uint8_t>(bytes), &out);
        break;
      }
      case 1: {
        const auto bytes = Mutate(rng, mail_seed, 0);
        ByteReader r{span<const uint8_t>(bytes)};
        FedMail out;
        (void)CkptRead(r, out);
        break;
      }
      case 2: {
        const auto bytes = Mutate(rng, bitmap_seed, 0);
        ByteReader r{span<const uint8_t>(bytes)};
        std::vector<uint8_t> out;
        (void)ReadCellBitmap(r, 9, &out);
        break;
      }
      default: {
        const auto bytes = Mutate(rng, control_seed, 0);
        std::vector<FedMail> mail;
        std::vector<FedCell::HostDone> done;
        (void)DecodeFedControlReply(span<const uint8_t>(bytes), &mail, &done);
        break;
      }
    }
  }
  // Reaching here without a crash, hang, or sanitizer report IS the assertion.
  SUCCEED();
}

}  // namespace
}  // namespace presto
