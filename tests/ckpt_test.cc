// Deterministic checkpoint/restore tests: the restore invariant (resuming a
// checkpoint taken at a barrier is observationally identical to never stopping —
// same simulator fingerprints, same driver latency histograms, at any worker
// count), checkpoints straddling in-flight failover machinery (pending replica
// promotion, queued paced backfill), barrier-to-barrier diffs (apply == full
// restore), corruption detection naming the bad section, and the latency-histogram
// hash memo.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/federation.h"
#include "src/util/ckpt.h"
#include "src/workload/query_driver.h"

namespace presto {
namespace {

// ---------- latency histogram hash ----------

TEST(LatencyHistogramTest, HashIsOrderIndependentAndMemoInvalidates) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(Millis(3));
  a.Record(Millis(70));
  a.Record(Seconds(2));
  b.Record(Seconds(2));
  b.Record(Millis(70));
  b.Record(Millis(3));
  EXPECT_EQ(a.Hash(), b.Hash()) << "recording order must not matter";

  LatencyHistogram c;
  c.Record(Millis(9));
  LatencyHistogram ac = a;
  ac.Merge(c);
  LatencyHistogram ca = c;
  ca.Merge(a);
  EXPECT_EQ(ac.Hash(), ca.Hash()) << "merge must commute";

  // The memo must invalidate on mutation (Record / Merge / LoadState) and stay
  // stable across repeated reads.
  const uint64_t before = a.Hash();
  EXPECT_EQ(a.Hash(), before);
  a.Record(Hours(1));
  EXPECT_NE(a.Hash(), before) << "Record must invalidate the cached hash";

  ByteWriter w;
  a.SaveState(w);
  LatencyHistogram restored;
  ByteReader r{span<const uint8_t>(w.buffer())};
  ASSERT_TRUE(restored.LoadState(r).ok());
  EXPECT_EQ(restored.Hash(), a.Hash());
  EXPECT_TRUE(restored == a);
}

// ---------- deployment round trip ----------

DeploymentConfig CkptDeploymentConfig(int threads) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(20);
  config.lane_engine = true;
  config.sim_threads = threads;
  config.sim_epoch = Millis(500);
  config.seed = 811;
  return config;
}

QueryDriverParams CkptDriverParams() {
  QueryDriverParams params;
  params.mix.queries_per_hour = 720.0;
  params.mix.num_sensors = 0;  // whole population
  params.mix.past_fraction = 0.25;
  params.mix.mean_past_age = Minutes(15);
  params.mix.max_past_age = Minutes(30);
  params.mix.min_tolerance = 2.0;
  params.mix.max_tolerance = 3.0;
  params.mix.seed = 812;
  return params;
}

TEST(DeploymentCheckpointTest, RoundTripMatchesUninterruptedRunAtAnyThreadCount) {
  for (const int threads : {1, 8}) {
    const SimTime ckpt_at = Hours(1) + Minutes(5);
    const SimTime end = Hours(1) + Minutes(30);
    Checkpoint ckpt;
    uint64_t fp_cont = 0;
    uint64_t hist_cont = 0;
    {
      Deployment deployment(CkptDeploymentConfig(threads));
      deployment.Start();
      deployment.RunUntil(Hours(1));
      QueryDriver& driver = deployment.AttachQueryDriver(CkptDriverParams());
      driver.Start(Minutes(25));
      deployment.RunUntil(ckpt_at);
      ASSERT_TRUE(deployment.SaveCheckpoint(&ckpt).ok());
      deployment.RunUntil(end);
      fp_cont = deployment.sim().fingerprint();
      hist_cont = driver.stats().latency.Hash();
      EXPECT_GT(driver.stats().issued, 100u);
    }
    // Through the wire format, so framing and section checksums are exercised.
    auto decoded = Checkpoint::Decode(span<const uint8_t>(ckpt.Encode()));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    {
      Deployment deployment(CkptDeploymentConfig(threads));
      deployment.Start();
      QueryDriver& driver = deployment.AttachQueryDriver(CkptDriverParams());
      ASSERT_TRUE(deployment.LoadCheckpoint(*decoded).ok());
      EXPECT_EQ(deployment.sim().Now(), ckpt_at);
      deployment.RunUntil(end);
      EXPECT_EQ(deployment.sim().fingerprint(), fp_cont)
          << "restore at a barrier must be observationally identical to never "
             "stopping (threads="
          << threads << ")";
      EXPECT_EQ(driver.stats().latency.Hash(), hist_cont)
          << "restored driver histogram diverged (threads=" << threads << ")";
    }
  }
}

// A checkpoint taken between KillProxy and its promotion event must carry the
// pending promotion (timer in the simulator section, re-captured on restore), and
// one taken mid-backfill must carry the queued paced archive pulls — the restored
// run replays both identically.
TEST(DeploymentCheckpointTest, RestoreStraddlesPendingPromotionAndPacedBackfill) {
  const SimTime kill_at = Minutes(30);
  const SimTime ckpt_promotion = kill_at + Seconds(10);   // promotion fires at +20 s
  const SimTime ckpt_backfill = kill_at + Seconds(26);    // backfill drain underway
  const SimTime revive_at = Minutes(32);
  const SimTime end = Minutes(40);
  const int victim = 1;

  Checkpoint at_promotion;
  Checkpoint at_backfill;
  uint64_t fp_cont = 0;
  uint64_t promotions_cont = 0;
  {
    Deployment deployment(CkptDeploymentConfig(1));
    deployment.Start();
    deployment.RunUntil(kill_at);
    deployment.KillProxy(victim);
    deployment.RunUntil(ckpt_promotion);
    ASSERT_TRUE(deployment.SaveCheckpoint(&at_promotion).ok());
    EXPECT_EQ(deployment.shard_stats().promotions, 0u)
        << "the first checkpoint must straddle the promotion, not follow it";
    deployment.RunUntil(ckpt_backfill);
    // Promotions count per sensor chain, one per shard the dead proxy owned.
    EXPECT_GT(deployment.shard_stats().promotions, 0u);
    ASSERT_TRUE(deployment.SaveCheckpoint(&at_backfill).ok());
    deployment.RunUntil(revive_at);
    deployment.ReviveProxy(victim);
    deployment.RunUntil(end);
    fp_cont = deployment.sim().fingerprint();
    promotions_cont = deployment.shard_stats().promotions;
    uint64_t backfills = 0;
    for (int p = 0; p < 4; ++p) {
      backfills += deployment.proxy(p).stats().backfill_pulls;
    }
    EXPECT_GT(backfills, 0u) << "scenario never exercised promotion backfill";
  }
  for (const Checkpoint* ckpt : {&at_promotion, &at_backfill}) {
    Deployment deployment(CkptDeploymentConfig(1));
    deployment.Start();
    ASSERT_TRUE(deployment.LoadCheckpoint(*ckpt).ok());
    deployment.RunUntil(revive_at);
    deployment.ReviveProxy(victim);
    deployment.RunUntil(end);
    EXPECT_EQ(deployment.sim().fingerprint(), fp_cont);
    EXPECT_EQ(deployment.shard_stats().promotions, promotions_cont)
        << "the restored run must replay the straddled promotion";
  }
}

// ---------- barrier-to-barrier diffs ----------

TEST(DeploymentCheckpointTest, DiffApplyEqualsFullRestore) {
  const SimTime b1 = Hours(1) + Minutes(5);
  const SimTime b2 = Hours(1) + Minutes(10);
  const SimTime end = Hours(1) + Minutes(20);
  Checkpoint ckpt1;
  Checkpoint ckpt2;
  uint64_t fp_cont = 0;
  {
    Deployment deployment(CkptDeploymentConfig(1));
    deployment.Start();
    deployment.RunUntil(Hours(1));
    QueryDriver& driver = deployment.AttachQueryDriver(CkptDriverParams());
    driver.Start(Minutes(15));
    deployment.RunUntil(b1);
    ASSERT_TRUE(deployment.SaveCheckpoint(&ckpt1).ok());
    deployment.RunUntil(b2);
    ASSERT_TRUE(deployment.SaveCheckpoint(&ckpt2).ok());
    deployment.RunUntil(end);
    fp_cont = deployment.sim().fingerprint();
  }
  const std::vector<uint8_t> diff = ckpt2.EncodeDiffFrom(ckpt1);
  EXPECT_LT(diff.size(), ckpt2.Encode().size())
      << "a barrier-to-barrier diff should not exceed the full snapshot";
  auto applied = Checkpoint::ApplyDiff(ckpt1, span<const uint8_t>(diff));
  ASSERT_TRUE(applied.ok()) << applied.status().message();
  EXPECT_EQ(applied->Digest(), ckpt2.Digest());

  Deployment deployment(CkptDeploymentConfig(1));
  deployment.Start();
  deployment.AttachQueryDriver(CkptDriverParams());
  ASSERT_TRUE(deployment.LoadCheckpoint(*applied).ok());
  EXPECT_EQ(deployment.sim().Now(), b2);
  deployment.RunUntil(end);
  EXPECT_EQ(deployment.sim().fingerprint(), fp_cont)
      << "restoring base + diff must equal restoring the full second snapshot";
}

// ---------- corruption and divergence naming ----------

TEST(DeploymentCheckpointTest, CorruptedSectionFailsDecodeNamingTheSection) {
  Checkpoint ckpt;
  {
    Deployment deployment(CkptDeploymentConfig(1));
    deployment.Start();
    deployment.RunUntil(Minutes(30));
    ASSERT_TRUE(deployment.SaveCheckpoint(&ckpt).ok());
  }
  const std::vector<uint8_t>* payload = ckpt.Find("proxy/1");
  ASSERT_NE(payload, nullptr);
  ASSERT_GT(payload->size(), 64u);
  std::vector<uint8_t> encoded = ckpt.Encode();
  // Locate proxy/1's payload inside the framed bytes and flip one bit in the
  // middle (serialized cache state): the section checksum must catch it and the
  // decode must fail naming that section, before any state is handed back.
  auto it = std::search(encoded.begin(), encoded.end(), payload->begin(),
                        payload->end());
  ASSERT_NE(it, encoded.end());
  *(it + static_cast<long>(payload->size() / 2)) ^= 0x40;
  auto corrupted = Checkpoint::Decode(span<const uint8_t>(encoded));
  ASSERT_FALSE(corrupted.ok());
  EXPECT_NE(corrupted.status().message().find("proxy/1"), std::string::npos)
      << "decode error must name the corrupted section: "
      << corrupted.status().message();
}

TEST(DeploymentCheckpointTest, DiffNamesThePerturbedProxyCacheFirst) {
  Checkpoint ckpt;
  {
    Deployment deployment(CkptDeploymentConfig(1));
    deployment.Start();
    deployment.RunUntil(Minutes(30));
    ASSERT_TRUE(deployment.SaveCheckpoint(&ckpt).ok());
  }
  // Perturb one byte of proxy 2's serialized cache: the divergence report must
  // lead with exactly that subsystem section (save order), the bisect hint
  // presto_ckpt diff prints.
  Checkpoint perturbed = ckpt;
  const std::vector<uint8_t>* payload = perturbed.Find("proxy/2");
  ASSERT_NE(payload, nullptr);
  std::vector<uint8_t> bytes = *payload;
  bytes[bytes.size() / 2] ^= 0x01;
  perturbed.Add("proxy/2", std::move(bytes));

  const std::vector<std::string> divergent = ckpt.DivergentSections(perturbed);
  ASSERT_EQ(divergent.size(), 1u);
  EXPECT_EQ(divergent.front(), "proxy/2");
  EXPECT_NE(ckpt.Digest(), perturbed.Digest());
  EXPECT_TRUE(ckpt.DivergentSections(ckpt).empty());
}

// ---------- federation round trip ----------

FederationConfig CkptFederationConfig() {
  FederationConfig config;
  config.num_cells = 2;
  config.cell.num_proxies = 2;
  config.cell.sensors_per_proxy = 8;
  config.cell.enable_replication = true;
  config.cell.replication_factor = 2;
  config.cell.lane_engine = true;
  config.cell.sim_threads = 2;
  config.cell.sim_epoch = Millis(250);
  config.link.latency = Millis(250);
  config.epoch = Seconds(1);
  config.auto_epoch = true;
  config.seed = 911;
  return config;
}

std::vector<QueryDriver*> AttachFedDrivers(Federation& fed) {
  std::vector<QueryDriver*> drivers;
  for (int c = 0; c < fed.num_cells(); ++c) {
    QueryDriverParams params;
    params.mix.queries_per_hour = 1800.0;
    params.mix.num_sensors = 0;  // whole federation namespace
    params.mix.past_fraction = 0.2;
    params.mix.mean_past_age = Minutes(5);
    params.mix.max_past_age = Minutes(10);
    params.mix.min_tolerance = 1.5;
    params.mix.max_tolerance = 3.0;
    params.mix.seed = 913 + static_cast<uint64_t>(c);
    drivers.push_back(&fed.AttachQueryDriver(c, params));
  }
  return drivers;
}

TEST(FederationCheckpointTest, RoundTripCarriesInFlightCrossCellQueries) {
  const SimTime ckpt_at = Minutes(6);
  const SimTime end = Minutes(10);
  Checkpoint ckpt;
  uint64_t fp_cont = 0;
  uint64_t hist_cont = 0;
  uint64_t forwarded_cont = 0;
  {
    Federation fed(CkptFederationConfig());
    fed.Start();
    std::vector<QueryDriver*> drivers = AttachFedDrivers(fed);
    fed.RunUntil(Minutes(5));
    for (QueryDriver* driver : drivers) {
      driver->Start(0);
    }
    fed.RunUntil(ckpt_at);
    ASSERT_TRUE(fed.SaveCheckpoint(&ckpt).ok());
    fed.RunUntil(end);
    fp_cont = fed.fingerprint();
    LatencyHistogram merged;
    for (const QueryDriver* driver : drivers) {
      merged.Merge(driver->stats().latency);
    }
    hist_cont = merged.Hash();
    forwarded_cont = fed.stats().forwarded;
    EXPECT_GT(forwarded_cont, 0u) << "no cross-cell traffic: the test is vacuous";
  }
  {
    Federation fed(CkptFederationConfig());
    fed.Start();
    std::vector<QueryDriver*> drivers = AttachFedDrivers(fed);
    ASSERT_TRUE(fed.LoadCheckpoint(ckpt).ok());
    EXPECT_EQ(fed.Now(), ckpt_at);
    fed.RunUntil(end);
    EXPECT_EQ(fed.fingerprint(), fp_cont);
    LatencyHistogram merged;
    for (const QueryDriver* driver : drivers) {
      merged.Merge(driver->stats().latency);
    }
    EXPECT_EQ(merged.Hash(), hist_cont);
    EXPECT_EQ(fed.stats().forwarded, forwarded_cont);
  }
}

}  // namespace
}  // namespace presto
