// Behavioural tests for the PRESTO proxy: cache provenance, model lifecycle, the
// NOW/PAST query cascade, pulls, timeouts, time correction, and query-sensor matching.
// Uses real sensors on a two-node network (proxy id 1, sensor id 100).

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/network.h"
#include "src/proxy/proxy_node.h"
#include "src/proxy/summary_cache.h"
#include "src/sensor/sensor_node.h"
#include "src/sim/simulator.h"

namespace presto {
namespace {

double Diurnal(SimTime t) {
  return 20.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                               static_cast<double>(kDay));
}

struct Rig {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<ProxyNode> proxy;
  std::unique_ptr<SensorNode> sensor;

  explicit Rig(ProxyMode mode = ProxyMode::kPresto,
               PushPolicy policy = PushPolicy::kModelDriven,
               SensorNode::MeasureFn measure = Diurnal, double drift_ppm = 0.0) {
    net = std::make_unique<Network>(&sim, NetworkParams{}, 6);

    ProxyNodeConfig pc;
    pc.id = 1;
    pc.mode = mode;
    pc.default_tolerance = 0.5;
    pc.manage_models = mode == ProxyMode::kPresto;
    pc.enable_matcher = false;
    proxy = std::make_unique<ProxyNode>(&sim, net.get(), pc);

    SensorNodeConfig sc;
    sc.id = 100;
    sc.proxy_id = 1;
    sc.policy = policy;
    sc.model_tolerance = 0.5;
    sc.drift_ppm = drift_ppm;
    sc.clock_offset = drift_ppm != 0.0 ? Seconds(1) : 0;
    sc.clock_jitter = Millis(1);
    sensor = std::make_unique<SensorNode>(&sim, net.get(), sc, std::move(measure));

    proxy->RegisterSensor(100, sc.sensing_period);
    proxy->Start();
    sensor->Start();
  }

  QueryAnswer Now(double tolerance, Duration latency_bound = Minutes(5)) {
    QueryAnswer out;
    bool done = false;
    proxy->QueryNow(100, tolerance, latency_bound, [&](const QueryAnswer& a) {
      out = a;
      done = true;
    });
    while (!done && sim.Step()) {
    }
    return out;
  }

  QueryAnswer Past(TimeInterval range, double tolerance) {
    QueryAnswer out;
    bool done = false;
    proxy->QueryPast(100, range, tolerance, [&](const QueryAnswer& a) {
      out = a;
      done = true;
    });
    while (!done && sim.Step()) {
    }
    return out;
  }
};

// ---------- SummaryCache unit behaviour ----------

TEST(SummaryCacheTest, ProvenanceRefinement) {
  SummaryCache cache;
  cache.Insert(100, 1.0, CacheSource::kExtrapolated);
  cache.Insert(100, 2.0, CacheSource::kPushed);  // upgrade
  cache.Insert(100, 3.0, CacheSource::kExtrapolated);  // downgrade rejected
  auto latest = cache.Latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->second.value, 2.0);
  EXPECT_EQ(latest->second.source, CacheSource::kPushed);
  EXPECT_EQ(cache.stats().refinements, 1u);
  EXPECT_EQ(cache.stats().downgrades_rejected, 1u);
}

TEST(SummaryCacheTest, NearestAndCoverage) {
  SummaryCache cache;
  for (int i = 0; i < 10; ++i) {
    cache.Insert(i * Seconds(31), i, CacheSource::kPushed);
  }
  auto near = cache.Nearest(Seconds(100), Seconds(31));
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->second.value, 3.0);  // t=93 is closest
  EXPECT_FALSE(cache.Nearest(Hours(1), Seconds(31)).has_value());
  EXPECT_NEAR(cache.CoverageFraction(TimeInterval{0, 10 * Seconds(31)}, Seconds(31)),
              1.0, 0.01);
  EXPECT_LT(cache.CoverageFraction(TimeInterval{0, Hours(1)}, Seconds(31)), 0.1);
}

TEST(SummaryCacheTest, EvictionCapsMemory) {
  SummaryCache cache(/*max_entries=*/100);
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(i * kSecond, i, CacheSource::kPushed);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 900u);
  // Oldest went first.
  EXPECT_FALSE(cache.Nearest(0, Seconds(10)).has_value());
}

// ---------- proxy behaviour ----------

TEST(ProxyNodeTest, PushesPopulateCacheAndFitModel) {
  Rig rig;
  rig.sim.RunUntil(Days(2));
  const ProxyStats& stats = rig.proxy->stats();
  EXPECT_GT(stats.pushes_received, 20u);
  EXPECT_GE(stats.model_sends, 1u);
  ASSERT_NE(rig.sensor->model(), nullptr);
  EXPECT_EQ(rig.sensor->stats().model_updates, stats.model_sends);
  EXPECT_GT(rig.proxy->cache(100)->size(), 0u);
}

TEST(ProxyNodeTest, NowCascadeHitExtrapolatePull) {
  Rig rig;
  rig.sim.RunUntil(Days(2));  // model in place

  // Loose tolerance: extrapolation (pushes are rare with a good model, so the last
  // cached sample is typically stale).
  QueryAnswer loose = rig.Now(1.0);
  ASSERT_TRUE(loose.status.ok());
  EXPECT_TRUE(loose.source == AnswerSource::kExtrapolated ||
              loose.source == AnswerSource::kCacheHit);
  EXPECT_NEAR(loose.value, Diurnal(loose.completed_at), 1.0);

  // Tight tolerance: must pull from the sensor archive.
  QueryAnswer tight = rig.Now(0.05);
  ASSERT_TRUE(tight.status.ok());
  EXPECT_EQ(tight.source, AnswerSource::kSensorPull);
  EXPECT_NEAR(tight.value, Diurnal(tight.issued_at), 0.3);
  EXPECT_GT(tight.Latency(), Millis(100));  // paid the radio rendezvous

  // Immediately after the pull, the cache is fresh: a repeat query hits.
  QueryAnswer repeat = rig.Now(0.05);
  ASSERT_TRUE(repeat.status.ok());
  EXPECT_EQ(repeat.source, AnswerSource::kCacheHit);
  EXPECT_LT(repeat.Latency(), Millis(10));
}

TEST(ProxyNodeTest, PastCascadeAndRefinement) {
  Rig rig;
  rig.sim.RunUntil(Days(2));

  // Loose tolerance on a past range: the model extrapolates the suppressed gaps.
  const TimeInterval range{Days(1) + Hours(3), Days(1) + Hours(3) + Minutes(30)};
  QueryAnswer loose = rig.Past(range, 2.0);
  ASSERT_TRUE(loose.status.ok());
  EXPECT_NE(loose.source, AnswerSource::kFailed);
  ASSERT_FALSE(loose.samples.empty());

  // Tight tolerance: pulled from flash; afterwards the cache covers the range.
  QueryAnswer tight = rig.Past(range, 0.05);
  ASSERT_TRUE(tight.status.ok());
  EXPECT_EQ(tight.source, AnswerSource::kSensorPull);
  EXPECT_GT(rig.proxy->cache(100)->CoverageFraction(range, Seconds(31)), 0.9);
  for (const Sample& s : tight.samples) {
    EXPECT_NEAR(s.value, Diurnal(s.t), 0.3);
  }

  // And the same query again is now a cache hit (progressive refinement).
  QueryAnswer again = rig.Past(range, 0.05);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.source, AnswerSource::kCacheHit);
}

TEST(ProxyNodeTest, PullTimeoutWhenSensorDead) {
  Rig rig;
  rig.sim.RunUntil(Days(2));
  rig.net->SetNodeDown(100, true);
  QueryAnswer answer = rig.Now(0.05, /*latency_bound=*/Minutes(1));
  EXPECT_FALSE(answer.status.ok());
  EXPECT_EQ(answer.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rig.proxy->stats().pull_timeouts, 1u);
}

TEST(ProxyNodeTest, ExtrapolationStillWorksWhenSensorDead) {
  Rig rig;
  rig.sim.RunUntil(Days(2));
  rig.net->SetNodeDown(100, true);
  // Loose query: the model answers even though the sensor is gone — availability from
  // prediction, the paper's §3 extrapolation story.
  QueryAnswer answer = rig.Now(1.5);
  ASSERT_TRUE(answer.status.ok());
  EXPECT_EQ(answer.source, AnswerSource::kExtrapolated);
}

TEST(ProxyNodeTest, TimestampsCorrectedDespiteDrift) {
  // 80 ppm fast clock + 1 s initial offset; proxy sync should absorb both.
  Rig rig(ProxyMode::kPresto, PushPolicy::kModelDriven, Diurnal, /*drift_ppm=*/80.0);
  rig.sim.RunUntil(Days(1));
  auto rms = rig.proxy->SyncResidualRms(100);
  ASSERT_TRUE(rms.ok());
  EXPECT_LT(*rms, static_cast<double>(Seconds(1)));

  // Cached timestamps must be near true time despite the skewed stamps: the newest
  // entry cannot be far from a sensing tick ago.
  auto latest = rig.proxy->cache(100)->Latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_LT(rig.sim.Now() - latest->first, Hours(3));
  EXPECT_LE(latest->first, rig.sim.Now());
}

TEST(ProxyNodeTest, CacheOnlyModeNeverPulls) {
  Rig rig(ProxyMode::kCacheOnly, PushPolicy::kEverySample);
  rig.sim.RunUntil(Hours(2));
  QueryAnswer now = rig.Now(0.01);
  ASSERT_TRUE(now.status.ok());
  EXPECT_EQ(now.source, AnswerSource::kCacheHit);
  QueryAnswer past = rig.Past(TimeInterval{Hours(1), Hours(1) + Minutes(10)}, 0.01);
  ASSERT_TRUE(past.status.ok());
  EXPECT_EQ(past.source, AnswerSource::kCacheHit);
  EXPECT_EQ(rig.proxy->stats().pulls, 0u);
}

TEST(ProxyNodeTest, AlwaysPullModeAlwaysAsksSensor) {
  Rig rig(ProxyMode::kAlwaysPull, PushPolicy::kNone);
  rig.sim.RunUntil(Hours(2));
  QueryAnswer now = rig.Now(2.0);
  ASSERT_TRUE(now.status.ok());
  EXPECT_EQ(now.source, AnswerSource::kSensorPull);
  EXPECT_EQ(rig.proxy->stats().cache_hits, 0u);
  EXPECT_EQ(rig.proxy->stats().extrapolations, 0u);
}

TEST(ProxyNodeTest, UnknownSensorFailsCleanly) {
  Rig rig;
  bool done = false;
  rig.proxy->QueryNow(999, 1.0, Seconds(10), [&](const QueryAnswer& a) {
    EXPECT_FALSE(a.status.ok());
    EXPECT_EQ(a.status.code(), StatusCode::kNotFound);
    done = true;
  });
  EXPECT_TRUE(done);  // fails synchronously
}

TEST(ProxyNodeTest, MatcherRetunesDutyCycleFromLatencyNeeds) {
  Simulator sim;
  Network net(&sim, NetworkParams{}, 8);
  ProxyNodeConfig pc;
  pc.id = 1;
  pc.enable_matcher = true;
  pc.manage_models = false;
  ProxyNode proxy(&sim, &net, pc);

  SensorNodeConfig sc;
  sc.id = 100;
  sc.proxy_id = 1;
  sc.policy = PushPolicy::kNone;
  sc.radio.lpl_interval = Seconds(4);
  SensorNode sensor(&sim, &net, sc, Diurnal);
  proxy.RegisterSensor(100, sc.sensing_period);
  proxy.Start();
  sensor.Start();

  const Duration before = net.LplInterval(100);
  // A stream of latency-critical queries (1 s bound).
  for (int i = 0; i < 5; ++i) {
    proxy.QueryNow(100, 2.0, Seconds(1), [](const QueryAnswer&) {});
  }
  sim.RunUntil(Minutes(3));  // let maintenance run and the config propagate
  const Duration after = net.LplInterval(100);
  EXPECT_LT(after, before);
  EXPECT_LE(after, Millis(400));  // ~ bound/4, clamped
  EXPECT_GE(proxy.stats().config_sends, 1u);
}

}  // namespace
}  // namespace presto
