// Behavioural tests for the PRESTO sensor node: push policies, archival, control
// traffic (model installation, reconfiguration), and archive query service.

#include <gtest/gtest.h>

#include <cmath>

#include "src/models/ar.h"
#include "src/net/network.h"
#include "src/sensor/protocol.h"
#include "src/sensor/sensor_node.h"
#include "src/sim/simulator.h"
#include "src/wavelet/codec.h"

namespace presto {
namespace {

// Captures everything the sensor sends to its proxy.
class FakeProxy : public NetNode {
 public:
  void OnMessage(const Message& message) override {
    messages.push_back(message);
    if (message.type == static_cast<uint16_t>(MsgType::kDataPush)) {
      auto push = DataPushMsg::Decode(message.payload);
      ASSERT_TRUE(push.ok());
      pushes.push_back(*push);
    }
    if (message.type == static_cast<uint16_t>(MsgType::kArchiveReply)) {
      auto reply = ArchiveReplyMsg::Decode(message.payload);
      ASSERT_TRUE(reply.ok());
      replies.push_back(*reply);
    }
  }
  std::vector<Message> messages;
  std::vector<DataPushMsg> pushes;
  std::vector<ArchiveReplyMsg> replies;
};

struct Rig {
  Simulator sim;
  std::unique_ptr<Network> net;
  FakeProxy proxy;
  std::unique_ptr<SensorNode> sensor;

  explicit Rig(PushPolicy policy, SensorNode::MeasureFn measure = nullptr,
               Duration sensing = Seconds(31)) {
    net = std::make_unique<Network>(&sim, NetworkParams{}, 5);
    NodeRadioConfig powered;
    powered.powered = true;
    net->AttachNode(1, &proxy, powered, nullptr);

    SensorNodeConfig config;
    config.id = 100;
    config.proxy_id = 1;
    config.policy = policy;
    config.sensing_period = sensing;
    config.value_delta = 1.0;
    config.model_tolerance = 0.5;
    config.batch_interval = Minutes(16);
    config.drift_ppm = 0.0;  // keep local == reference in unit tests
    config.clock_jitter = 0;
    if (measure == nullptr) {
      measure = [](SimTime t) {
        return 20.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                                     static_cast<double>(kDay));
      };
    }
    sensor = std::make_unique<SensorNode>(&sim, net.get(), config, std::move(measure));
    sensor->Start();
  }
};

TEST(SensorNodeTest, EverySamplePolicyStreams) {
  Rig rig(PushPolicy::kEverySample);
  rig.sim.RunUntil(Minutes(10));
  // ~19 samples in 10 min at 31 s.
  EXPECT_NEAR(static_cast<double>(rig.proxy.pushes.size()), 19.0, 2.0);
  EXPECT_EQ(rig.proxy.pushes[0].reason, PushReason::kEverySample);
}

TEST(SensorNodeTest, NonePolicyStaysSilentButArchives) {
  Rig rig(PushPolicy::kNone);
  rig.sim.RunUntil(Hours(2));
  EXPECT_TRUE(rig.proxy.pushes.empty());
  EXPECT_GT(rig.sensor->archive().stats().records_appended, 200u);
}

TEST(SensorNodeTest, ValueDrivenPushesOnlyOnDelta) {
  // A staircase signal: +2 C every 30 minutes; otherwise flat.
  auto staircase = [](SimTime t) { return 2.0 * static_cast<double>(t / Minutes(30)); };
  Rig rig(PushPolicy::kValueDriven, staircase);
  rig.sim.RunUntil(Hours(5));
  // First sample plus one push per step (10 steps in 5 h).
  EXPECT_GE(rig.proxy.pushes.size(), 10u);
  EXPECT_LE(rig.proxy.pushes.size(), 12u);
  EXPECT_GT(rig.sensor->stats().suppressed, 500u);
}

TEST(SensorNodeTest, BatchedPolicyFlushesOnInterval) {
  Rig rig(PushPolicy::kBatched);
  rig.sim.RunUntil(Hours(2));
  // 2 h / 16 min = 7 full batches (the partial tail is still buffered).
  EXPECT_EQ(rig.proxy.pushes.size(), 7u);
  for (const auto& push : rig.proxy.pushes) {
    EXPECT_EQ(push.reason, PushReason::kBatch);
    auto batch = DecodeBatch(push.batch);
    ASSERT_TRUE(batch.ok());
    // ~31 samples per 16-minute batch at 31 s.
    EXPECT_NEAR(static_cast<double>(batch->samples.size()), 31.0, 2.0);
  }
}

TEST(SensorNodeTest, ModelDrivenSuppressesPredictableData) {
  Rig rig(PushPolicy::kModelDriven);
  // Train a model offline on the same diurnal signal the sensor measures.
  ModelConfig mc;
  mc.sample_period = Seconds(31);
  std::vector<Sample> history;
  for (SimTime t = 0; t < Days(2); t += Seconds(31)) {
    history.push_back(Sample{t, 20.0 + 5.0 * std::sin(2.0 * M_PI *
                                                      static_cast<double>(t % kDay) /
                                                      static_cast<double>(kDay))});
  }
  SeasonalArModel model(mc);
  ASSERT_TRUE(model.Fit(history).ok());

  // Let it bootstrap for an hour, then install the model.
  rig.sim.RunUntil(Days(2) + Hours(1));
  const uint64_t pushes_before = rig.sensor->stats().pushes;
  ModelUpdateMsg update;
  update.model_seq = 1;
  update.tolerance = 0.5;
  update.model_params = model.Serialize();
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kModelUpdate), update.Encode());
  rig.sim.RunUntil(Days(2) + Hours(6));

  EXPECT_EQ(rig.sensor->stats().model_updates, 1u);
  ASSERT_NE(rig.sensor->model(), nullptr);
  EXPECT_EQ(rig.sensor->model()->type(), ModelType::kSeasonalAr);
  // The signal is perfectly diurnal: with the model installed, pushes all but stop.
  const uint64_t pushes_after = rig.sensor->stats().pushes - pushes_before;
  EXPECT_LT(pushes_after, 6u);
  EXPECT_GT(rig.sensor->stats().model_checks, 500u);
}

TEST(SensorNodeTest, ModelDrivenReportsUnpredictableEvent) {
  // Diurnal signal with a sharp spike at day 2 + 3h (an "event").
  auto spiky = [](SimTime t) {
    double v = 20.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                                     static_cast<double>(kDay));
    if (t >= Days(2) + Hours(3) && t < Days(2) + Hours(3) + Minutes(10)) {
      v += 8.0;
    }
    return v;
  };
  Rig rig(PushPolicy::kModelDriven, spiky);
  ModelConfig mc;
  mc.sample_period = Seconds(31);
  std::vector<Sample> history;
  for (SimTime t = 0; t < Days(2); t += Seconds(31)) {
    history.push_back(Sample{t, spiky(t)});
  }
  SeasonalArModel model(mc);
  ASSERT_TRUE(model.Fit(history).ok());
  rig.sim.RunUntil(Days(2));
  ModelUpdateMsg update;
  update.model_params = model.Serialize();
  update.tolerance = 0.5;
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kModelUpdate), update.Encode());
  rig.sim.RunUntil(Days(2) + Hours(2));
  rig.proxy.pushes.clear();

  rig.sim.RunUntil(Days(2) + Hours(4));
  // The spike defeated the model -> deviation pushes, the first within ~a sample period.
  ASSERT_FALSE(rig.proxy.pushes.empty());
  EXPECT_EQ(rig.proxy.pushes[0].reason, PushReason::kModelDeviation);
  auto batch = DecodeBatch(rig.proxy.pushes[0].batch);
  ASSERT_TRUE(batch.ok());
  EXPECT_LE(batch->samples[0].t - (Days(2) + Hours(3)), Minutes(2));
}

TEST(SensorNodeTest, ArchiveQueryRoundTrip) {
  Rig rig(PushPolicy::kNone);
  rig.sim.RunUntil(Hours(3));
  rig.sensor->Stop();  // freeze sensing so RunAll() can drain the queue
  ArchiveQueryMsg query;
  query.query_id = 77;
  query.local_start = Hours(1);
  query.local_end = Hours(1) + Minutes(10);
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kArchiveQuery), query.Encode());
  rig.sim.RunAll();

  ASSERT_EQ(rig.proxy.replies.size(), 1u);
  const ArchiveReplyMsg& reply = rig.proxy.replies[0];
  EXPECT_EQ(reply.query_id, 77u);
  EXPECT_EQ(reply.status_code, static_cast<uint8_t>(StatusCode::kOk));
  auto batch = DecodeBatch(reply.batch);
  ASSERT_TRUE(batch.ok());
  // 10 minutes at 31 s ~ 19 samples.
  EXPECT_NEAR(static_cast<double>(batch->samples.size()), 19.0, 2.0);
  for (const Sample& s : batch->samples) {
    EXPECT_GE(s.t, Hours(1) - Seconds(1));
    EXPECT_LT(s.t, Hours(1) + Minutes(10));
  }
}

TEST(SensorNodeTest, ArchiveQueryOutsideDataIsNotFound) {
  Rig rig(PushPolicy::kNone);
  rig.sim.RunUntil(Hours(1));
  rig.sensor->Stop();
  ArchiveQueryMsg query;
  query.query_id = 5;
  query.local_start = Days(10);
  query.local_end = Days(10) + Minutes(1);
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kArchiveQuery), query.Encode());
  rig.sim.RunAll();
  ASSERT_EQ(rig.proxy.replies.size(), 1u);
  EXPECT_EQ(rig.proxy.replies[0].status_code,
            static_cast<uint8_t>(StatusCode::kNotFound));
}

TEST(SensorNodeTest, ConfigUpdateRetunesSensing) {
  Rig rig(PushPolicy::kEverySample);
  rig.sim.RunUntil(Minutes(10));
  const uint64_t before = rig.sensor->stats().samples;
  ConfigUpdateMsg update;
  update.fields = kCfgSensingPeriod;
  update.sensing_period = Minutes(5);
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kConfigUpdate), update.Encode());
  rig.sim.RunUntil(Minutes(60));
  // 50 more minutes at 5-minute sampling: ~10 samples, not ~97.
  const uint64_t after = rig.sensor->stats().samples - before;
  EXPECT_LE(after, 12u);
  EXPECT_GE(after, 8u);
  EXPECT_EQ(rig.sensor->stats().config_updates, 1u);
}

TEST(SensorNodeTest, ConfigUpdateSwitchesPolicy) {
  Rig rig(PushPolicy::kEverySample);
  rig.sim.RunUntil(Minutes(5));
  ConfigUpdateMsg update;
  update.fields = kCfgPolicy | kCfgBatchInterval;
  update.policy = PushPolicy::kBatched;
  update.batch_interval = Minutes(10);
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kConfigUpdate), update.Encode());
  rig.sim.RunUntil(Minutes(40));
  bool saw_batch = false;
  for (const auto& push : rig.proxy.pushes) {
    if (push.reason == PushReason::kBatch) {
      saw_batch = true;
    }
  }
  EXPECT_TRUE(saw_batch);
}

TEST(SensorNodeTest, CompressionShrinksBatchPayloads) {
  auto smooth = [](SimTime t) {
    return 20.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                                 static_cast<double>(kDay));
  };
  Rig raw_rig(PushPolicy::kBatched, smooth);
  Rig comp_rig(PushPolicy::kBatched, smooth);
  ConfigUpdateMsg update;
  update.fields = kCfgCompression | kCfgBatchInterval;
  update.compress = true;
  update.quant_step = 0.02;
  update.batch_interval = Hours(1);
  comp_rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kConfigUpdate),
                     update.Encode());
  ConfigUpdateMsg raw_update;
  raw_update.fields = kCfgBatchInterval;
  raw_update.batch_interval = Hours(1);
  raw_rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kConfigUpdate),
                    raw_update.Encode());

  raw_rig.sim.RunUntil(Hours(6));
  comp_rig.sim.RunUntil(Hours(6));
  ASSERT_FALSE(raw_rig.proxy.pushes.empty());
  ASSERT_FALSE(comp_rig.proxy.pushes.empty());
  EXPECT_LT(comp_rig.sensor->stats().compressed_bytes,
            raw_rig.sensor->stats().compressed_bytes / 2);
  // And the decoded values still match the signal within the quantization regime.
  auto batch = DecodeBatch(comp_rig.proxy.pushes.back().batch);
  ASSERT_TRUE(batch.ok());
  for (const Sample& s : batch->samples) {
    EXPECT_NEAR(s.value, smooth(s.t), 0.2);
  }
}

TEST(SensorNodeTest, AggregateArchiveQueryReturnsOneValue) {
  // Linear ramp so aggregates are exactly predictable.
  auto ramp = [](SimTime t) { return static_cast<double>(t / Seconds(31)); };
  Rig rig(PushPolicy::kNone, ramp);
  rig.sim.RunUntil(Hours(3));
  rig.sensor->Stop();  // freeze sensing so RunAll() can drain the queue

  auto ask = [&rig](AggregateOp op) {
    ArchiveQueryMsg query;
    query.query_id = static_cast<uint32_t>(op) + 100;
    query.local_start = Hours(1);
    query.local_end = Hours(2);
    query.aggregate = op;
    rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kArchiveQuery), query.Encode());
    rig.sim.RunAll();
    const ArchiveReplyMsg& reply = rig.proxy.replies.back();
    EXPECT_EQ(reply.status_code, static_cast<uint8_t>(StatusCode::kOk));
    auto batch = DecodeBatch(reply.batch);
    EXPECT_TRUE(batch.ok());
    EXPECT_EQ(batch->samples.size(), 1u);  // one value, not the whole range
    return batch->samples[0].value;
  };
  // Samples in [1h, 2h): indices 117..231 (31 s grid, first tick at t=31 s).
  const double min = ask(AggregateOp::kMin);
  const double max = ask(AggregateOp::kMax);
  const double mean = ask(AggregateOp::kMean);
  const double count = ask(AggregateOp::kCount);
  EXPECT_LT(min, max);
  EXPECT_GT(mean, min);
  EXPECT_LT(mean, max);
  EXPECT_NEAR(count, (max - min) + 1.0, 1.5);  // ramp: one sample per index
  // The aggregate reply is radically smaller than shipping the range.
  ArchiveQueryMsg full;
  full.query_id = 999;
  full.local_start = Hours(1);
  full.local_end = Hours(2);
  rig.net->Send(1, 100, static_cast<uint16_t>(MsgType::kArchiveQuery), full.Encode());
  rig.sim.RunAll();
  EXPECT_GT(rig.proxy.replies.back().batch.size(), 20u * 5u);
}

TEST(SensorNodeTest, EnergyBreakdownIsCharged) {
  Rig rig(PushPolicy::kEverySample);
  rig.sim.RunUntil(Hours(1));
  rig.net->SettleIdleEnergy();
  const EnergyMeter& meter = rig.sensor->meter();
  EXPECT_GT(meter.Component(EnergyComponent::kRadioTx), 0.0);
  EXPECT_GT(meter.Component(EnergyComponent::kSensing), 0.0);
  EXPECT_GT(meter.Component(EnergyComponent::kFlashWrite), 0.0);
  EXPECT_GT(meter.Total(), 0.0);
}

}  // namespace
}  // namespace presto
