// Full-system integration tests: deployments wired by the core builder, unified-store
// routing via the skip graph, failover to replicas, architecture harness sanity, and
// end-to-end failure injection.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/architectures.h"
#include "src/core/deployment.h"

namespace presto {
namespace {

TEST(DeploymentTest, ModelsGetFittedAndPushRateDrops) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 3;
  config.seed = 101;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  for (int p = 0; p < 2; ++p) {
    EXPECT_GE(deployment.proxy(p).stats().model_sends, 3u) << "proxy " << p;
    for (int s = 0; s < 3; ++s) {
      const SensorNode& sensor = deployment.sensor(p, s);
      EXPECT_NE(sensor.model(), nullptr);
      // Suppression: the vast majority of samples never hit the radio.
      EXPECT_GT(sensor.stats().suppressed, sensor.stats().pushes * 5);
    }
  }
}

TEST(DeploymentTest, UnifiedStoreRoutesToEverySensor) {
  DeploymentConfig config;
  config.num_proxies = 3;
  config.sensors_per_proxy = 2;
  config.seed = 102;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  EXPECT_EQ(deployment.store().IndexSize(), 6);
  for (int p = 0; p < 3; ++p) {
    for (int s = 0; s < 2; ++s) {
      QuerySpec spec;
      spec.type = QueryType::kNow;
      spec.sensor_id = Deployment::SensorId(p, s);
      spec.tolerance = 1.5;
      UnifiedQueryResult result = deployment.QueryAndWait(spec);
      ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
      EXPECT_EQ(result.served_by, Deployment::ProxyId(p));
      const double truth =
          deployment.field().TruthAt(deployment.GlobalSensorIndex(p, s),
                                     result.answer.completed_at);
      EXPECT_NEAR(result.answer.value, truth, 2.0);
    }
  }
  EXPECT_EQ(deployment.store().stats().unroutable, 0u);
}

TEST(DeploymentTest, UnknownSensorIsUnroutable) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 1;
  Deployment deployment(config);
  deployment.Start();
  QuerySpec spec;
  spec.sensor_id = 424242;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_FALSE(result.answer.status.ok());
  EXPECT_EQ(deployment.store().stats().unroutable, 1u);
}

TEST(DeploymentTest, FailoverToReplicaServesQueries) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.seed = 103;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  // Kill proxy 0; its sensors' data lives on at proxy 1 via replication.
  deployment.net().SetNodeDown(Deployment::ProxyId(0), true);
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = Deployment::SensorId(0, 1);
  spec.tolerance = 2.0;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
  EXPECT_TRUE(result.used_replica);
  EXPECT_EQ(result.served_by, Deployment::ProxyId(1));
  EXPECT_EQ(deployment.store().stats().failovers, 1u);

  // PAST ranges replicated earlier also survive.
  QuerySpec past;
  past.type = QueryType::kPast;
  past.sensor_id = Deployment::SensorId(0, 1);
  past.range = TimeInterval{Days(1), Days(1) + Hours(1)};
  past.tolerance = 2.5;
  UnifiedQueryResult past_result = deployment.QueryAndWait(past);
  EXPECT_TRUE(past_result.answer.status.ok()) << past_result.answer.status.ToString();
}

TEST(DeploymentTest, BothProxiesDownIsUnavailable) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 1;
  config.enable_replication = true;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(2));
  deployment.net().SetNodeDown(Deployment::ProxyId(0), true);
  deployment.net().SetNodeDown(Deployment::ProxyId(1), true);
  QuerySpec spec;
  spec.sensor_id = Deployment::SensorId(0, 0);
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_EQ(result.answer.status.code(), StatusCode::kUnavailable);
}

TEST(DeploymentTest, LossyLinksDegradeButDoNotBreak) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 2;
  config.net.default_frame_loss = 0.25;
  config.seed = 104;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));
  EXPECT_GT(deployment.net().stats().frame_retries, 0u);

  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = Deployment::SensorId(0, 0);
  spec.tolerance = 1.5;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
}

TEST(DeploymentTest, EventReachesProxyQuickly) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 1;
  config.field.events_per_day = 3.0;
  config.seed = 105;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(3));

  const auto events =
      deployment.field().EventsIn(0, TimeInterval{Days(2), Days(3) - Hours(1)});
  int checked = 0;
  int detected = 0;
  for (const TransientEvent& event : events) {
    if (std::abs(event.magnitude) < 2.0) {
      continue;
    }
    ++checked;
    const auto entries = deployment.proxy(0).cache(Deployment::SensorId(0, 0))
                             ->RangeEntries({event.start, event.start + Minutes(10)});
    for (const auto& entry : entries) {
      if (entry.source != CacheSource::kExtrapolated &&
          entry.inserted_at <= event.start + Minutes(10)) {
        ++detected;
        break;
      }
    }
  }
  if (checked > 0) {
    EXPECT_GE(detected, checked - 1);  // at most one borderline miss
  }
}

TEST(ArchitectureHarnessTest, RelativeOrderingsMatchTable1) {
  ArchitectureBenchConfig config;
  config.warmup = Hours(28);
  config.query_window = Hours(6);
  config.num_proxies = 2;
  config.sensors_per_proxy = 3;
  config.queries_per_hour = 12.0;
  config.events_per_day = 6.0;  // short window: make sure several events qualify
  config.seed = 106;

  const ArchitectureMetrics direct =
      RunArchitectureBench(ArchitectureKind::kDirectQuery, config);
  const ArchitectureMetrics streaming =
      RunArchitectureBench(ArchitectureKind::kStreaming, config);
  const ArchitectureMetrics presto =
      RunArchitectureBench(ArchitectureKind::kPresto, config);

  // Energy: streaming >> presto; direct lowest (only queries wake the radio).
  EXPECT_GT(streaming.energy_j_per_sensor_day, 2.0 * presto.energy_j_per_sensor_day);

  // Interactivity: direct querying pays the radio round trip on every NOW query
  // (second-scale); PRESTO's mean stays proxy-scale even with its pull tail.
  EXPECT_GT(direct.now_latency_ms_mean, 500.0);
  EXPECT_LT(presto.now_latency_ms_mean, 0.5 * direct.now_latency_ms_mean);

  // Prediction column: only PRESTO answers by extrapolation.
  EXPECT_GT(presto.extrapolated_share, 0.2);
  EXPECT_EQ(direct.extrapolated_share, 0.0);
  EXPECT_EQ(streaming.extrapolated_share, 0.0);

  // Everyone answers most queries; PRESTO must not sacrifice success rate.
  EXPECT_GT(presto.now_success, 0.95);
  EXPECT_GT(presto.past_success, 0.8);

  // Rare events: pushes catch them (streaming trivially, PRESTO by model deviation);
  // direct querying has no push path — any detection is coincidental pull traffic.
  EXPECT_GT(presto.event_detection_rate, 0.6);
  EXPECT_EQ(streaming.event_detection_rate, 1.0);
  EXPECT_LT(direct.event_detection_rate, presto.event_detection_rate);
}

}  // namespace
}  // namespace presto
