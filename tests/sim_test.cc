// Tests for the discrete-event simulator: ordering, cancellation, timers, and the
// parallel shard-lane engine (determinism across worker counts, mailbox barriers,
// generation-based cancellation, event-pool reuse).

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace presto {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleIn(Seconds(1), [&] { fired = true; });
  handle.Cancel();
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutOvershooting) {
  Simulator sim;
  bool late_fired = false;
  sim.ScheduleAt(Seconds(10), [&] { late_fired = true; });
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.RunUntil(Seconds(10));
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleIn(Seconds(1), recurse);
    }
  };
  sim.ScheduleIn(Seconds(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, NextEventTime) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), -1);
  sim.ScheduleAt(Seconds(4), [] {});
  EXPECT_EQ(sim.NextEventTime(), Seconds(4));
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  sim.RunUntil(Seconds(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(10), Seconds(20), Seconds(30)}));
}

TEST(PeriodicTimerTest, InitialDelayOverride) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10), Seconds(1));
  sim.RunUntil(Seconds(12));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(1), Seconds(11)}));
}

TEST(PeriodicTimerTest, SetPeriodTakesEffect) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  sim.RunUntil(Seconds(10));  // one fire at 10
  timer.SetPeriod(Seconds(2));
  sim.RunUntil(Seconds(15));
  // After the change at t=10, fires at 12 and 14.
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(10), Seconds(12), Seconds(14)}));
}

TEST(PeriodicTimerTest, StopIsIdempotentAndFinal) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(&sim, [&] { ++fires; });
  timer.Start(Seconds(1));
  sim.RunUntil(Seconds(2));
  timer.Stop();
  timer.Stop();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, RestartReschedules) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  timer.Start(Seconds(3));  // restart replaces the pending fire
  sim.RunUntil(Seconds(7));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(3), Seconds(6)}));
}

// ---------- shard-lane engine ----------

TEST(SimulatorTest, LegacyFingerprintIsScheduleSensitive) {
  auto run = [](bool swap) {
    Simulator sim;
    sim.ScheduleAt(Seconds(swap ? 2 : 1), [] {});
    sim.ScheduleAt(Seconds(swap ? 1 : 2), [] {});
    sim.RunAll();
    return sim.fingerprint();
  };
  EXPECT_EQ(run(false), run(false));  // identical replays agree
  EXPECT_NE(run(false), run(true));   // a different event order does not
}

// A synthetic multi-lane workload: every lane runs a self-rescheduling chain that
// periodically posts cross-lane work, exercising queues, mailboxes, and barriers.
// Padding keeps each lane's counter on its own cache line (the lanes genuinely run
// in parallel).
struct LaneCell {
  uint64_t count = 0;
  char pad[56];
};

uint64_t RunLaneWorkload(int threads, uint64_t* executed = nullptr) {
  constexpr int kLanes = 4;
  Simulator sim;
  sim.ConfigureLanes(kLanes, threads, Millis(100));
  auto cells = std::make_shared<std::array<LaneCell, kLanes>>();
  std::function<void(int)> tick = [&sim, cells, &tick](int lane) {
    LaneCell& cell = (*cells)[static_cast<size_t>(lane)];
    ++cell.count;
    if (cell.count % 3 == 0) {
      // Cross-lane post: lands via the mailbox, executes in the target's lane.
      const int target = (lane + 1) % kLanes;
      sim.ScheduleIn(Millis(7),
                     [cells, target] { ++(*cells)[static_cast<size_t>(target)].count; },
                     target);
    }
    if (sim.Now() < Seconds(30)) {
      sim.ScheduleIn(Millis(11 + lane), [&tick, lane] { tick(lane); });
    }
  };
  for (int lane = 0; lane < kLanes; ++lane) {
    sim.ScheduleAt(Millis(1 + lane), [&tick, lane] { tick(lane); }, lane);
  }
  sim.RunUntil(Seconds(31));
  if (executed != nullptr) {
    *executed = sim.events_executed();
  }
  return sim.fingerprint();
}

TEST(LaneEngineTest, FingerprintIdenticalAcrossWorkerCounts) {
  uint64_t executed1 = 0;
  uint64_t executed2 = 0;
  uint64_t executed8 = 0;
  const uint64_t fp1 = RunLaneWorkload(1, &executed1);
  const uint64_t fp2 = RunLaneWorkload(2, &executed2);
  const uint64_t fp8 = RunLaneWorkload(8, &executed8);
  EXPECT_GT(executed1, 1000u);
  EXPECT_EQ(executed1, executed2);
  EXPECT_EQ(executed1, executed8);
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1, fp8);
  // Repeat runs replay bit-identically too.
  EXPECT_EQ(fp2, RunLaneWorkload(2));
  EXPECT_EQ(fp8, RunLaneWorkload(8));
}

TEST(LaneEngineTest, CrossLaneCancellation) {
  Simulator sim;
  sim.ConfigureLanes(4, 2, Millis(100));
  bool fired = false;
  // Scheduled from control into lane 2, cancelled from control before it fires.
  EventHandle handle = sim.ScheduleAt(Seconds(1), [&] { fired = true; }, 2);
  ASSERT_TRUE(handle.valid());
  handle.Cancel();
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(LaneEngineTest, CancellationIsGenerationScoped) {
  Simulator sim;
  sim.ConfigureLanes(2, 1, Millis(100));
  bool a_fired = false;
  bool b_fired = false;
  EventHandle a = sim.ScheduleAt(Seconds(1), [&] { a_fired = true; }, 0);
  a.Cancel();  // releases the slot
  // B reuses A's slot under a fresh generation.
  EventHandle b = sim.ScheduleAt(Seconds(1), [&] { b_fired = true; }, 0);
  a.Cancel();  // stale generation: must NOT cancel B
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  b.Cancel();  // cancel-after-fire is a no-op
  bool c_fired = false;
  sim.ScheduleAt(Seconds(3), [&] { c_fired = true; }, 0);
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(c_fired);
}

TEST(LaneEngineTest, MailboxOrderingAtBarriers) {
  // Lane 2 posts first in real order, lane 0 second — the barrier drains mailboxes
  // in source-lane order, so lane 0's mail arrives first, all clamped to the barrier.
  Simulator sim;
  sim.ConfigureLanes(3, 3, Millis(100));
  auto log = std::make_shared<std::vector<std::pair<std::string, SimTime>>>();
  auto post = [&sim, log](const char* tag) {
    sim.ScheduleIn(Millis(1), [log, tag, &sim] { log->emplace_back(tag, sim.Now()); },
                   1);
  };
  sim.ScheduleAt(Millis(5), [&] {
    post("two-a");
    post("two-b");
  }, 2);
  sim.ScheduleAt(Millis(9), [&] { post("zero"); }, 0);
  sim.RunUntil(Seconds(1));
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].first, "zero");
  EXPECT_EQ((*log)[1].first, "two-a");
  EXPECT_EQ((*log)[2].first, "two-b");
  // All three were clamped to the next epoch barrier.
  EXPECT_EQ((*log)[0].second, Millis(100));
  EXPECT_EQ((*log)[1].second, Millis(100));
  EXPECT_EQ((*log)[2].second, Millis(100));
}

TEST(LaneEngineTest, EventPoolSlotsAreReused) {
  Simulator sim;  // legacy single lane: same pool machinery
  int remaining = 2000;
  std::function<void()> chain = [&] {
    if (--remaining > 0) {
      sim.ScheduleIn(Millis(1), chain);
    }
  };
  sim.ScheduleIn(Millis(1), chain);
  sim.RunAll();
  EXPECT_EQ(remaining, 0);
  // A chain keeps at most a couple of live events; the pool must not grow per event.
  EXPECT_LE(sim.PoolSlotsForTest(Simulator::kLaneControl), 4u);
}

TEST(LaneEngineTest, TimersFireInBoundLanes) {
  Simulator sim;
  sim.ConfigureLanes(2, 2, Millis(50));
  auto lanes_seen = std::make_shared<std::vector<int>>();
  PeriodicTimer timer(&sim, [&sim, lanes_seen] {
    lanes_seen->push_back(sim.CurrentLane());
  });
  timer.BindLane(1);
  timer.Start(Millis(30));
  sim.RunUntil(Millis(100));
  ASSERT_GE(lanes_seen->size(), 3u);
  for (int lane : *lanes_seen) {
    EXPECT_EQ(lane, 1);
  }
}

}  // namespace
}  // namespace presto
