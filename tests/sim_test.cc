// Tests for the discrete-event simulator: ordering, cancellation, timers, and the
// parallel shard-lane engine (determinism across worker counts, mailbox barriers,
// generation-based cancellation, event-pool reuse).

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace presto {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleIn(Seconds(1), [&] { fired = true; });
  handle.Cancel();
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutOvershooting) {
  Simulator sim;
  bool late_fired = false;
  sim.ScheduleAt(Seconds(10), [&] { late_fired = true; });
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.RunUntil(Seconds(10));
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleIn(Seconds(1), recurse);
    }
  };
  sim.ScheduleIn(Seconds(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, NextEventTime) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), -1);
  sim.ScheduleAt(Seconds(4), [] {});
  EXPECT_EQ(sim.NextEventTime(), Seconds(4));
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  sim.RunUntil(Seconds(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(10), Seconds(20), Seconds(30)}));
}

TEST(PeriodicTimerTest, InitialDelayOverride) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10), Seconds(1));
  sim.RunUntil(Seconds(12));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(1), Seconds(11)}));
}

TEST(PeriodicTimerTest, SetPeriodTakesEffect) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  sim.RunUntil(Seconds(10));  // one fire at 10
  timer.SetPeriod(Seconds(2));
  sim.RunUntil(Seconds(15));
  // After the change at t=10, fires at 12 and 14.
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(10), Seconds(12), Seconds(14)}));
}

TEST(PeriodicTimerTest, StopIsIdempotentAndFinal) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(&sim, [&] { ++fires; });
  timer.Start(Seconds(1));
  sim.RunUntil(Seconds(2));
  timer.Stop();
  timer.Stop();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, RestartReschedules) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  timer.Start(Seconds(3));  // restart replaces the pending fire
  sim.RunUntil(Seconds(7));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(3), Seconds(6)}));
}

// ---------- shard-lane engine ----------

TEST(SimulatorTest, LegacyFingerprintIsScheduleSensitive) {
  auto run = [](bool swap) {
    Simulator sim;
    sim.ScheduleAt(Seconds(swap ? 2 : 1), [] {});
    sim.ScheduleAt(Seconds(swap ? 1 : 2), [] {});
    sim.RunAll();
    return sim.fingerprint();
  };
  EXPECT_EQ(run(false), run(false));  // identical replays agree
  EXPECT_NE(run(false), run(true));   // a different event order does not
}

// A synthetic multi-lane workload: every lane runs a self-rescheduling chain that
// periodically posts cross-lane work, exercising queues, mailboxes, and barriers.
// Padding keeps each lane's counter on its own cache line (the lanes genuinely run
// in parallel).
struct LaneCell {
  uint64_t count = 0;
  char pad[56];
};

uint64_t RunLaneWorkload(int threads, uint64_t* executed = nullptr) {
  constexpr int kLanes = 4;
  Simulator sim;
  sim.ConfigureLanes(kLanes, threads, Millis(100));
  auto cells = std::make_shared<std::array<LaneCell, kLanes>>();
  std::function<void(int)> tick = [&sim, cells, &tick](int lane) {
    LaneCell& cell = (*cells)[static_cast<size_t>(lane)];
    ++cell.count;
    if (cell.count % 3 == 0) {
      // Cross-lane post: lands via the mailbox, executes in the target's lane.
      const int target = (lane + 1) % kLanes;
      sim.ScheduleIn(Millis(7),
                     [cells, target] { ++(*cells)[static_cast<size_t>(target)].count; },
                     target);
    }
    if (sim.Now() < Seconds(30)) {
      sim.ScheduleIn(Millis(11 + lane), [&tick, lane] { tick(lane); });
    }
  };
  for (int lane = 0; lane < kLanes; ++lane) {
    sim.ScheduleAt(Millis(1 + lane), [&tick, lane] { tick(lane); }, lane);
  }
  sim.RunUntil(Seconds(31));
  if (executed != nullptr) {
    *executed = sim.events_executed();
  }
  return sim.fingerprint();
}

TEST(LaneEngineTest, FingerprintIdenticalAcrossWorkerCounts) {
  uint64_t executed1 = 0;
  uint64_t executed2 = 0;
  uint64_t executed8 = 0;
  const uint64_t fp1 = RunLaneWorkload(1, &executed1);
  const uint64_t fp2 = RunLaneWorkload(2, &executed2);
  const uint64_t fp8 = RunLaneWorkload(8, &executed8);
  EXPECT_GT(executed1, 1000u);
  EXPECT_EQ(executed1, executed2);
  EXPECT_EQ(executed1, executed8);
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1, fp8);
  // Repeat runs replay bit-identically too.
  EXPECT_EQ(fp2, RunLaneWorkload(2));
  EXPECT_EQ(fp8, RunLaneWorkload(8));
}

TEST(LaneEngineTest, CrossLaneCancellation) {
  Simulator sim;
  sim.ConfigureLanes(4, 2, Millis(100));
  bool fired = false;
  // Scheduled from control into lane 2, cancelled from control before it fires.
  EventHandle handle = sim.ScheduleAt(Seconds(1), [&] { fired = true; }, 2);
  ASSERT_TRUE(handle.valid());
  handle.Cancel();
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(LaneEngineTest, CancellationIsGenerationScoped) {
  Simulator sim;
  sim.ConfigureLanes(2, 1, Millis(100));
  bool a_fired = false;
  bool b_fired = false;
  EventHandle a = sim.ScheduleAt(Seconds(1), [&] { a_fired = true; }, 0);
  a.Cancel();  // releases the slot
  // B reuses A's slot under a fresh generation.
  EventHandle b = sim.ScheduleAt(Seconds(1), [&] { b_fired = true; }, 0);
  a.Cancel();  // stale generation: must NOT cancel B
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  b.Cancel();  // cancel-after-fire is a no-op
  bool c_fired = false;
  sim.ScheduleAt(Seconds(3), [&] { c_fired = true; }, 0);
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(c_fired);
}

TEST(LaneEngineTest, MailboxOrderingAtBarriers) {
  // Lane 2 posts first in real order, lane 0 second — the barrier drains mailboxes
  // in source-lane order, so lane 0's mail arrives first, all clamped to the barrier.
  Simulator sim;
  sim.ConfigureLanes(3, 3, Millis(100));
  auto log = std::make_shared<std::vector<std::pair<std::string, SimTime>>>();
  auto post = [&sim, log](const char* tag) {
    sim.ScheduleIn(Millis(1), [log, tag, &sim] { log->emplace_back(tag, sim.Now()); },
                   1);
  };
  sim.ScheduleAt(Millis(5), [&] {
    post("two-a");
    post("two-b");
  }, 2);
  sim.ScheduleAt(Millis(9), [&] { post("zero"); }, 0);
  sim.RunUntil(Seconds(1));
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].first, "zero");
  EXPECT_EQ((*log)[1].first, "two-a");
  EXPECT_EQ((*log)[2].first, "two-b");
  // All three were clamped to the next epoch barrier.
  EXPECT_EQ((*log)[0].second, Millis(100));
  EXPECT_EQ((*log)[1].second, Millis(100));
  EXPECT_EQ((*log)[2].second, Millis(100));
}

TEST(LaneEngineTest, EventPoolSlotsAreReused) {
  Simulator sim;  // legacy single lane: same pool machinery
  int remaining = 2000;
  std::function<void()> chain = [&] {
    if (--remaining > 0) {
      sim.ScheduleIn(Millis(1), chain);
    }
  };
  sim.ScheduleIn(Millis(1), chain);
  sim.RunAll();
  EXPECT_EQ(remaining, 0);
  // A chain keeps at most a couple of live events; the pool must not grow per event.
  EXPECT_LE(sim.PoolSlotsForTest(Simulator::kLaneControl), 4u);
}

TEST(LaneEngineTest, LegacyModeReportsNoEpochGrid) {
  // Legacy single-queue engine: no barrier grid exists, and the accessors say so
  // explicitly with the sentinel rather than a fake zero-length epoch (stacked
  // layers treat kNoEpochGrid as "no constraint").
  Simulator sim;
  EXPECT_EQ(sim.epoch(), Simulator::kNoEpochGrid);
  EXPECT_EQ(sim.epoch_cap(), Simulator::kNoEpochGrid);
}

TEST(LaneEngineTest, LookaheadShrinksTheEffectiveEpoch) {
  Simulator sim;
  sim.ConfigureLanes(2, 2, Millis(100));
  EXPECT_EQ(sim.epoch(), Millis(100));
  EXPECT_EQ(sim.epoch_cap(), Millis(100));
  sim.SetLookahead(Millis(30));
  EXPECT_EQ(sim.epoch(), Millis(30));
  EXPECT_EQ(sim.epoch_cap(), Millis(100)) << "the configured cap never moves";
  // Cross-lane mail now clamps to the finer grid: posted at 6 ms, delivered at the
  // 30 ms barrier instead of 100 ms.
  auto log = std::make_shared<std::vector<SimTime>>();
  sim.ScheduleAt(Millis(5), [&sim, log] {
    sim.ScheduleIn(Millis(1), [log, &sim] { log->push_back(sim.Now()); }, 1);
  }, 0);
  sim.RunUntil(Millis(200));
  ASSERT_EQ(log->size(), 1u);
  EXPECT_EQ((*log)[0], Millis(30));
  // A lookahead above the cap clamps to it; clearing (0) restores the cap too.
  sim.SetLookahead(Seconds(5));
  EXPECT_EQ(sim.epoch(), Millis(100));
  sim.SetLookahead(0);
  EXPECT_EQ(sim.epoch(), Millis(100));
  EXPECT_EQ(sim.lookahead(), 0);
}

TEST(LaneEngineTest, TimersFireInBoundLanes) {
  Simulator sim;
  sim.ConfigureLanes(2, 2, Millis(50));
  auto lanes_seen = std::make_shared<std::vector<int>>();
  PeriodicTimer timer(&sim, [&sim, lanes_seen] {
    lanes_seen->push_back(sim.CurrentLane());
  });
  timer.BindLane(1);
  timer.Start(Millis(30));
  sim.RunUntil(Millis(100));
  ASSERT_GE(lanes_seen->size(), 3u);
  for (int lane : *lanes_seen) {
    EXPECT_EQ(lane, 1);
  }
}

// ---------- barrier-time lane re-binding ----------

bool MatchCallbacks(EventKind kind, const EventSink*, const EventPayload&) {
  return kind == EventKind::kCallback;
}

TEST(LaneRebindTest, PendingEventsHandOffPreservingDeliveryTimes) {
  Simulator sim;
  sim.ConfigureLanes(2, 2, Millis(100));
  auto fires = std::make_shared<std::vector<std::pair<int, SimTime>>>();
  for (int i = 1; i <= 3; ++i) {
    sim.ScheduleAt(Millis(250 * i), [&sim, fires] {
      fires->emplace_back(sim.CurrentLane(), sim.Now());
    }, 0);
  }
  sim.RunUntil(Millis(100));  // a barrier; nothing has fired yet
  EXPECT_EQ(sim.RebindMatchingEvents(0, 1, MatchCallbacks), 3u);
  sim.RunUntil(Seconds(1));
  ASSERT_EQ(fires->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*fires)[static_cast<size_t>(i)].first, 1)
        << "moved events execute in the new lane";
    EXPECT_EQ((*fires)[static_cast<size_t>(i)].second, Millis(250 * (i + 1)))
        << "delivery times survive the move";
  }
}

TEST(LaneRebindTest, UndrainedMailFollowsTheRebind) {
  Simulator sim;
  sim.ConfigureLanes(2, 2, Millis(100));
  auto lanes_seen = std::make_shared<std::vector<int>>();
  // A lane-1 event posts cross-lane work at lane 0 mid-epoch; that mail waits in
  // lane 0's inbox for the next opening barrier — exactly when a re-bind happens.
  sim.ScheduleAt(Millis(5), [&sim, lanes_seen] {
    sim.ScheduleIn(Millis(1),
                   [lanes_seen, &sim] { lanes_seen->push_back(sim.CurrentLane()); }, 0);
  }, 1);
  sim.RunUntil(Millis(100));
  EXPECT_EQ(sim.RebindMatchingEvents(0, 1, MatchCallbacks), 1u);
  sim.RunUntil(Millis(300));
  ASSERT_EQ(lanes_seen->size(), 1u);
  EXPECT_EQ((*lanes_seen)[0], 1) << "undrained mail must deliver into the new lane";
}

TEST(LaneRebindTest, StaleHandlesAfterRebindAreNoOps) {
  Simulator sim;
  sim.ConfigureLanes(2, 1, Millis(100));
  bool moved_fired = false;
  bool other_fired = false;
  EventHandle handle = sim.ScheduleAt(Seconds(1), [&] { moved_fired = true; }, 0);
  sim.RunUntil(Millis(100));
  EXPECT_EQ(sim.RebindMatchingEvents(0, 1, MatchCallbacks), 1u);
  // The move released the source slot under a fresh generation; a later event may
  // reuse it.
  sim.ScheduleAt(Seconds(2), [&] { other_fired = true; }, 0);
  // The pre-move handle is stale: cancelling through it must affect neither the
  // moved event nor the slot's new occupant (generation-scoped, same as after any
  // cancel/reuse cycle).
  handle.Cancel();
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(moved_fired) << "a stale handle must not cancel the moved event";
  EXPECT_TRUE(other_fired) << "a stale handle must not cancel the slot's new tenant";
}

TEST(LaneRebindTest, TimerRebindPreservesPhase) {
  Simulator sim;
  sim.ConfigureLanes(2, 2, Millis(50));
  auto fires = std::make_shared<std::vector<std::pair<int, SimTime>>>();
  PeriodicTimer timer(&sim, [&sim, fires] {
    fires->emplace_back(sim.CurrentLane(), sim.Now());
  });
  timer.BindLane(0);
  timer.Start(Millis(30));
  sim.RunUntil(Millis(100));  // fires at 30, 60, 90 in lane 0
  timer.Rebind(1);            // cooperative half: the timer owns its handle
  sim.RunUntil(Millis(200));  // fires at 120, 150, 180 in lane 1
  ASSERT_EQ(fires->size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*fires)[i].first, i < 3 ? 0 : 1);
    EXPECT_EQ((*fires)[i].second, Millis(30 * (static_cast<int>(i) + 1)))
        << "the duty-cycle phase must not shift across the re-bind";
  }
}

// The fingerprint workload with mid-run control-lane re-binds folded in: chain
// events migrate between lanes every 5 simulated seconds. Chains touch only their
// own padded cell and cross-lane posts touch nothing shared, so chains stay
// race-free even when re-binding doubles them up in one lane.
uint64_t RunRebindWorkload(int threads, uint64_t* executed = nullptr,
                           bool with_rebinds = true) {
  constexpr int kLanes = 4;
  Simulator sim;
  sim.ConfigureLanes(kLanes, threads, Millis(100));
  auto cells = std::make_shared<std::array<LaneCell, kLanes>>();
  std::function<void(int)> tick = [&sim, cells, &tick](int chain) {
    LaneCell& cell = (*cells)[static_cast<size_t>(chain)];
    ++cell.count;
    if (cell.count % 3 == 0) {
      sim.ScheduleIn(Millis(7), [] {}, (chain + 1) % kLanes);
    }
    if (sim.Now() < Seconds(30)) {
      // Current-lane reschedule: after a re-bind the chain keeps running wherever
      // it was moved to.
      sim.ScheduleIn(Millis(11 + chain), [&tick, chain] { tick(chain); });
    }
  };
  for (int chain = 0; chain < kLanes; ++chain) {
    sim.ScheduleAt(Millis(1 + chain), [&tick, chain] { tick(chain); }, chain);
  }
  for (int k = 0; with_rebinds && k < 5; ++k) {
    sim.ScheduleAt(Seconds(5 * (k + 1)), [&sim, k] {
      sim.RebindMatchingEvents(k % kLanes, (k + 1) % kLanes, MatchCallbacks);
    }, Simulator::kLaneControl);
  }
  sim.RunUntil(Seconds(31));
  if (executed != nullptr) {
    *executed = sim.events_executed();
  }
  return sim.fingerprint();
}

TEST(LaneRebindTest, FingerprintIdenticalAcrossWorkerCountsWithRebinds) {
  uint64_t executed1 = 0;
  uint64_t executed2 = 0;
  uint64_t executed8 = 0;
  const uint64_t fp1 = RunRebindWorkload(1, &executed1);
  const uint64_t fp2 = RunRebindWorkload(2, &executed2);
  const uint64_t fp8 = RunRebindWorkload(8, &executed8);
  EXPECT_GT(executed1, 1000u);
  EXPECT_EQ(executed1, executed2);
  EXPECT_EQ(executed1, executed8);
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1, fp8);
  EXPECT_EQ(fp2, RunRebindWorkload(2));
  EXPECT_EQ(fp8, RunRebindWorkload(8));
  // Re-binds are part of the replay contract: the same workload *without* them
  // must not collide with the re-bound fingerprint.
  EXPECT_NE(fp1, RunRebindWorkload(1, nullptr, /*with_rebinds=*/false));
}

}  // namespace
}  // namespace presto
