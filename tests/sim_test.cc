// Tests for the discrete-event simulator: ordering, cancellation, timers.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace presto {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleIn(Seconds(1), [&] { fired = true; });
  handle.Cancel();
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutOvershooting) {
  Simulator sim;
  bool late_fired = false;
  sim.ScheduleAt(Seconds(10), [&] { late_fired = true; });
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.RunUntil(Seconds(10));
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleIn(Seconds(1), recurse);
    }
  };
  sim.ScheduleIn(Seconds(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, NextEventTime) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), -1);
  sim.ScheduleAt(Seconds(4), [] {});
  EXPECT_EQ(sim.NextEventTime(), Seconds(4));
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  sim.RunUntil(Seconds(35));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(10), Seconds(20), Seconds(30)}));
}

TEST(PeriodicTimerTest, InitialDelayOverride) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10), Seconds(1));
  sim.RunUntil(Seconds(12));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(1), Seconds(11)}));
}

TEST(PeriodicTimerTest, SetPeriodTakesEffect) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  sim.RunUntil(Seconds(10));  // one fire at 10
  timer.SetPeriod(Seconds(2));
  sim.RunUntil(Seconds(15));
  // After the change at t=10, fires at 12 and 14.
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(10), Seconds(12), Seconds(14)}));
}

TEST(PeriodicTimerTest, StopIsIdempotentAndFinal) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(&sim, [&] { ++fires; });
  timer.Start(Seconds(1));
  sim.RunUntil(Seconds(2));
  timer.Stop();
  timer.Stop();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, RestartReschedules) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTimer timer(&sim, [&] { fires.push_back(sim.Now()); });
  timer.Start(Seconds(10));
  timer.Start(Seconds(3));  // restart replaces the pending fire
  sim.RunUntil(Seconds(7));
  EXPECT_EQ(fires, (std::vector<SimTime>{Seconds(3), Seconds(6)}));
}

}  // namespace
}  // namespace presto
