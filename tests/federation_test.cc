// Federation-layer tests: the cell directory's global namespace, cross-cell query
// routing over inter-cell trunks, the in-sim open-loop query driver, failover of a
// cross-cell target's proxy mid-stream, whole-cell kill/revive, and the federation
// determinism contract — same seed => identical federation fingerprint *and*
// identical latency histogram across sim_threads worker counts, cell_threads
// counts, and cell_processes counts (cells as forked worker processes), plus
// cross-mode checkpoint migration and worker-crash containment.

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <memory>
#include <vector>

#include "src/core/cell_worker.h"
#include "src/core/federation.h"
#include "src/util/ckpt.h"
#include "src/workload/query_driver.h"

namespace presto {
namespace {

// ---------- cell directory ----------

TEST(CellDirectoryTest, RoundTripsTheGlobalNamespace) {
  CellDirectory dir(3, 8);
  EXPECT_EQ(dir.total_sensors(), 24);
  for (int fed = 0; fed < dir.total_sensors(); ++fed) {
    const int cell = dir.CellOf(fed);
    const int local = dir.LocalOf(fed);
    EXPECT_GE(cell, 0);
    EXPECT_LT(cell, 3);
    EXPECT_GE(local, 0);
    EXPECT_LT(local, 8);
    EXPECT_EQ(dir.FedIndexOf(cell, local), fed);
  }
  EXPECT_EQ(dir.CellOf(0), 0);
  EXPECT_EQ(dir.CellOf(8), 1);
  EXPECT_EQ(dir.CellOf(23), 2);
}

// ---------- query driver (standalone, synthetic issue function) ----------

TEST(QueryDriverTest, FixedRateIssuesOpenLoop) {
  Simulator sim;
  QueryDriverParams params;
  params.arrivals = ArrivalProcess::kFixedRate;
  params.mix.queries_per_hour = 60.0;  // one a minute
  params.mix.num_sensors = 4;
  params.mix.past_fraction = 0.0;
  // Completions never arrive — an open-loop driver must keep issuing regardless.
  QueryDriver driver(&sim, params, [](const QueryRequest&, QueryDriver::CompletionFn) {});
  driver.Start(Hours(1));
  sim.RunUntil(Hours(2));
  EXPECT_EQ(driver.stats().issued, 59u);  // arrivals at 1..59 min; 60 min hits until_
  EXPECT_EQ(driver.stats().completed, 0u);
}

TEST(QueryDriverTest, RecordsOutcomesAndHistogramDeterministically) {
  auto run = [] {
    Simulator sim;
    QueryDriverParams params;
    params.mix.queries_per_hour = 360.0;
    params.mix.num_sensors = 16;
    params.mix.seed = 77;
    QueryDriver* raw = nullptr;
    // Synthetic sink: complete every query 250 ms after issue, failing every 3rd.
    int n = 0;
    QueryDriver driver(
        &sim, params,
        [&sim, &raw, &n](const QueryRequest& request, QueryDriver::CompletionFn done) {
          const SimTime issued = sim.Now();
          const bool ok = (++n % 3) != 0;
          sim.ScheduleIn(Millis(250), [issued, ok, done, &sim] {
            QueryOutcome outcome;
            outcome.issued_at = issued;
            outcome.completed_at = sim.Now();
            outcome.ok = ok;
            outcome.source = ok ? 0 : 3;
            done(outcome);
          });
          (void)request;
          (void)raw;
        });
    driver.Start(Hours(1));
    sim.RunAll();
    return std::make_pair(driver.stats().latency.Hash(), driver.stats().completed);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.second, 100u);
  EXPECT_EQ(a.first, b.first) << "same seed must reproduce the histogram";
}

TEST(LatencyHistogramTest, BucketsMergeAndCompare) {
  LatencyHistogram a;
  a.Record(Millis(1));   // [1024us, 2048us)
  a.Record(Millis(1.5));
  a.Record(Millis(100));
  LatencyHistogram b;
  b.Record(Millis(1));
  EXPECT_NE(a, b);
  b.Record(Millis(1.2));
  b.Record(Millis(100));
  EXPECT_EQ(a, b) << "same buckets must compare equal even for different values";
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.TotalCount(), 3u);
  LatencyHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.TotalCount(), 6u);
}

// ---------- federation scenarios ----------

FederationConfig SmallFederation(int num_cells, int proxies, int sensors_per_proxy) {
  FederationConfig config;
  config.num_cells = num_cells;
  config.cell.num_proxies = proxies;
  config.cell.sensors_per_proxy = sensors_per_proxy;
  config.cell.enable_replication = true;
  config.cell.replication_factor = 2;
  config.cell.promotion_delay = Seconds(10);
  config.epoch = Seconds(1);
  config.seed = 90125;
  return config;
}

TEST(FederationTest, AutoEpochDerivesFromTrunkLatencyAndCellCap) {
  // With lookahead derivation on, the federation steps at the fastest trunk's
  // latency (the conservative bound), floored at the cells' configured lane epoch:
  // barrier clamping then never distorts cross-cell delivery times.
  FederationConfig config = SmallFederation(2, 2, 2);
  config.auto_epoch = true;
  config.epoch = Seconds(1);
  config.link.latency = Millis(250);
  config.cell.lane_engine = true;
  config.cell.sim_epoch = Millis(250);
  {
    Federation fed(config);
    EXPECT_EQ(fed.config().epoch, Millis(250));
  }
  // The cell cap floors the derivation: a trunk faster than the cells can step
  // must not drive the federation below their grid.
  config.cell.sim_epoch = Millis(400);
  {
    Federation fed(config);
    EXPECT_EQ(fed.config().epoch, Millis(400));
  }
  // Legacy (single-queue) cells report kNoEpochGrid — explicitly "no constraint",
  // so the trunk latency alone decides.
  config.cell.lane_engine = false;
  {
    Federation fed(config);
    EXPECT_EQ(fed.cell(0).sim().epoch_cap(), Simulator::kNoEpochGrid);
    EXPECT_EQ(fed.config().epoch, Millis(250));
  }
}

TEST(FederationTest, LocalAndCrossCellQueriesRouteThroughTheDirectory) {
  Federation fed(SmallFederation(2, 2, 4));
  fed.Start();
  fed.RunUntil(Hours(2));

  // Local: a sensor in the origin cell never touches a trunk.
  FederationQuerySpec local;
  local.fed_sensor = 1;
  local.tolerance = 3.0;
  const FederationQueryResult local_result = fed.QueryAndWait(0, local);
  ASSERT_TRUE(local_result.cell.answer.status.ok());
  EXPECT_FALSE(local_result.cross_cell);
  EXPECT_EQ(local_result.target_cell, 0);
  EXPECT_EQ(fed.stats().forwarded, 0u);

  // Cross-cell: a sensor in cell 1 queried from cell 0 rides both trunks and pays
  // at least two propagation latencies (clamped up to federation barriers).
  FederationQuerySpec remote;
  remote.fed_sensor = fed.directory().FedIndexOf(1, 3);
  remote.tolerance = 3.0;
  const FederationQueryResult remote_result = fed.QueryAndWait(0, remote);
  ASSERT_TRUE(remote_result.cell.answer.status.ok());
  EXPECT_TRUE(remote_result.cross_cell);
  EXPECT_EQ(remote_result.target_cell, 1);
  EXPECT_GE(remote_result.Latency(), 2 * fed.config().link.latency);
  EXPECT_EQ(fed.stats().forwarded, 1u);
  EXPECT_GE(fed.link(0, 1).stats().messages, 1u);
  EXPECT_GE(fed.link(1, 0).stats().messages, 1u);
  EXPECT_EQ(fed.stats().failed, 0u);
}

TEST(FederationTest, CrossCellQueriesSurviveTargetProxyKillMidStream) {
  Federation fed(SmallFederation(2, 4, 4));
  fed.Start();
  fed.RunUntil(Hours(2));

  // Open-loop driver entering at cell 0, targeting the whole namespace (so a steady
  // share of its queries crosses into cell 1), running through the kill below.
  QueryDriverParams params;
  params.mix.queries_per_hour = 1800.0;  // one every 2 s
  params.mix.num_sensors = 0;            // whole federation namespace
  params.mix.past_fraction = 0.0;
  params.mix.min_tolerance = 2.0;
  params.mix.max_tolerance = 3.0;
  params.mix.seed = 4242;
  QueryDriver& driver = fed.AttachQueryDriver(0, params);
  driver.Start(Minutes(10));

  fed.RunUntil(fed.Now() + Minutes(2));
  // Kill one of cell 1's proxies mid-stream: its shard must keep answering through
  // the in-cell replica chain, then first-class again after promotion.
  fed.cell(1).KillProxy(0);
  fed.RunUntil(fed.Now() + Minutes(4));
  fed.cell(1).ReviveProxy(0);
  fed.RunUntil(fed.Now() + Minutes(6));

  EXPECT_GT(driver.stats().issued, 250u);
  EXPECT_EQ(driver.stats().completed, driver.stats().issued);
  EXPECT_GT(driver.stats().cross_cell, 50u);
  EXPECT_EQ(driver.stats().failed, 0u)
      << "in-cell failover must keep every cross-cell query answerable";
  EXPECT_GT(fed.cell(1).shard_stats().promotions, 0u);

  // And a direct probe into the killed proxy's shard while it is down again, from
  // the other cell, rides the replica chain.
  fed.cell(1).KillProxy(0);
  const int victim_sensor =
      fed.directory().FedIndexOf(1, fed.cell(1).shard().SensorsOf(0).front());
  FederationQuerySpec probe;
  probe.fed_sensor = victim_sensor;
  probe.tolerance = 3.0;
  const FederationQueryResult probed = fed.QueryAndWait(0, probe);
  ASSERT_TRUE(probed.cell.answer.status.ok());
  EXPECT_TRUE(probed.cross_cell);
  EXPECT_TRUE(probed.cell.used_replica);
}

TEST(FederationTest, KilledCellFailsFastAndRevives) {
  Federation fed(SmallFederation(2, 2, 2));
  fed.Start();
  fed.RunUntil(Hours(1));

  fed.KillCell(1);
  FederationQuerySpec spec;
  spec.fed_sensor = fed.directory().FedIndexOf(1, 0);
  spec.tolerance = 3.0;
  const FederationQueryResult dark = fed.QueryAndWait(0, spec);
  EXPECT_FALSE(dark.cell.answer.status.ok())
      << "a fully killed cell's namespace block must fail, not hang";
  EXPECT_EQ(fed.stats().failed, 1u);

  // The other cell is untouched.
  FederationQuerySpec alive;
  alive.fed_sensor = 0;
  alive.tolerance = 3.0;
  EXPECT_TRUE(fed.QueryAndWait(0, alive).cell.answer.status.ok());

  fed.ReviveCell(1);
  fed.RunUntil(fed.Now() + Minutes(10));
  const FederationQueryResult back = fed.QueryAndWait(0, spec);
  EXPECT_TRUE(back.cell.answer.status.ok()) << back.cell.answer.status.message();
}

// ---------- determinism across worker counts ----------

struct FedDigest {
  uint64_t fingerprint = 0;
  uint64_t histogram = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cross_cell = 0;
};

// A full scenario on lane-engine cells: two gateways driving, a mid-stream proxy
// kill + revive in each cell, and cross-cell traffic throughout. cell_threads = 1
// is sequential cell stepping; > 1 steps the cells concurrently on the federation
// pool inside each epoch.
FedDigest RunLaneFederation(int sim_threads, int cell_threads = 1) {
  FederationConfig config = SmallFederation(2, 8, 2);
  config.cell.lane_engine = true;
  config.cell.sim_threads = sim_threads;
  config.cell.sim_epoch = Millis(500);
  config.cell_threads = cell_threads;
  Federation fed(config);
  fed.Start();

  QueryDriverParams params;
  params.mix.queries_per_hour = 1200.0;
  params.mix.num_sensors = 0;  // whole federation namespace
  params.mix.past_fraction = 0.2;
  params.mix.mean_past_age = Minutes(20);
  params.mix.max_past_age = Minutes(40);
  params.mix.min_tolerance = 2.0;
  params.mix.max_tolerance = 3.0;
  std::vector<QueryDriver*> drivers;
  for (int c = 0; c < fed.num_cells(); ++c) {
    QueryDriverParams p = params;
    p.mix.seed = 5150 + static_cast<uint64_t>(c);
    drivers.push_back(&fed.AttachQueryDriver(c, p));
  }
  fed.RunUntil(Hours(1));
  for (QueryDriver* driver : drivers) {
    driver->Start(Minutes(12));
  }
  fed.RunUntil(fed.Now() + Minutes(3));
  fed.cell(0).KillProxy(2);
  fed.cell(1).KillProxy(5);
  fed.RunUntil(fed.Now() + Minutes(4));
  fed.cell(0).ReviveProxy(2);
  fed.cell(1).ReviveProxy(5);
  fed.RunUntil(fed.Now() + Minutes(8));

  FedDigest digest;
  digest.fingerprint = fed.fingerprint();
  LatencyHistogram merged;
  for (QueryDriver* driver : drivers) {
    merged.Merge(driver->stats().latency);
    digest.issued += driver->stats().issued;
    digest.completed += driver->stats().completed;
    digest.failed += driver->stats().failed;
    digest.cross_cell += driver->stats().cross_cell;
  }
  digest.histogram = merged.Hash();
  return digest;
}

TEST(FederationDeterminismTest, FingerprintAndHistogramIdenticalAcrossWorkerCounts) {
  const FedDigest one = RunLaneFederation(1);
  EXPECT_GT(one.issued, 200u);
  EXPECT_EQ(one.completed, one.issued);
  EXPECT_EQ(one.failed, 0u);
  EXPECT_GT(one.cross_cell, 50u);
  const FedDigest rerun = RunLaneFederation(1);
  EXPECT_EQ(one.fingerprint, rerun.fingerprint) << "same seed must replay";
  EXPECT_EQ(one.histogram, rerun.histogram);
  const FedDigest eight = RunLaneFederation(8);
  EXPECT_EQ(one.fingerprint, eight.fingerprint)
      << "federation fingerprint must not depend on the worker count";
  EXPECT_EQ(one.histogram, eight.histogram)
      << "latency histogram must not depend on the worker count";
  EXPECT_EQ(one.issued, eight.issued);
  EXPECT_EQ(one.completed, eight.completed);
  EXPECT_EQ(one.failed, eight.failed);
  EXPECT_EQ(one.cross_cell, eight.cross_cell);
}

TEST(FederationDeterminismTest, CellParallelSteppingMatchesSequential) {
  // The same driven kill/revive scenario, sequential vs cell-parallel stepping
  // across {1, 2, 8} host threads (2 cells clamp 8 down to 2 — the over-provisioned
  // pool must behave identically), with the lane engine threaded underneath too.
  const FedDigest sequential = RunLaneFederation(/*sim_threads=*/2,
                                                 /*cell_threads=*/1);
  EXPECT_GT(sequential.issued, 200u);
  EXPECT_EQ(sequential.completed, sequential.issued);
  for (int cell_threads : {2, 8}) {
    const FedDigest parallel = RunLaneFederation(/*sim_threads=*/2, cell_threads);
    EXPECT_EQ(sequential.fingerprint, parallel.fingerprint)
        << "fingerprint diverged at cell_threads=" << cell_threads;
    EXPECT_EQ(sequential.histogram, parallel.histogram)
        << "latency histogram diverged at cell_threads=" << cell_threads;
    EXPECT_EQ(sequential.issued, parallel.issued);
    EXPECT_EQ(sequential.completed, parallel.completed);
    EXPECT_EQ(sequential.failed, parallel.failed);
    EXPECT_EQ(sequential.cross_cell, parallel.cross_cell);
  }
}

// ---------- pending-query-table contention ----------

TEST(FederationTest, PendingTableSurvivesCrossCellContentionThroughOneGateway) {
  // One gateway floods the whole namespace of a 4-cell federation while the cells
  // step concurrently: issue/finalize run on cell 0's control lane while execute/
  // answer ops for earlier queries run on cells 1..3 — many in-flight qids hitting
  // the sharded pending table from four threads at once. Arrivals ride the control
  // step, so a single driver is clamped to the barrier cadence no matter its rate;
  // eight drivers on the same gateway flood several concurrent qids per epoch.
  // Each gateway owns its own single-writer pending table (indexed by target cell
  // for the kill sweep), so every query must complete exactly once (an entry lost
  // or double-finalized trips the driver accounting or a PRESTO_CHECK), and the
  // outcome must be bit-identical to sequential stepping.
  auto run = [](int cell_threads) {
    FederationConfig config = SmallFederation(4, 2, 4);
    config.cell.lane_engine = true;
    config.cell.sim_threads = 2;
    config.cell.sim_epoch = Millis(500);
    config.cell_threads = cell_threads;
    Federation fed(config);
    fed.Start();
    fed.RunUntil(Hours(1));

    QueryDriverParams params;
    params.mix.queries_per_hour = 72000.0;  // saturate every control step
    params.mix.num_sensors = 0;             // whole namespace: ~3/4 cross-cell
    params.mix.past_fraction = 0.1;
    params.mix.mean_past_age = Minutes(10);
    params.mix.max_past_age = Minutes(30);
    params.mix.min_tolerance = 2.0;
    params.mix.max_tolerance = 3.0;
    std::vector<QueryDriver*> drivers;
    for (int d = 0; d < 8; ++d) {
      QueryDriverParams p = params;
      p.mix.seed = 777 + static_cast<uint64_t>(d);
      drivers.push_back(&fed.AttachQueryDriver(0, p));
    }
    for (QueryDriver* driver : drivers) {
      driver->Start(Minutes(3));
    }
    fed.RunUntil(fed.Now() + Minutes(5));

    struct Out {
      uint64_t issued = 0, completed = 0, failed = 0, cross_cell = 0;
      uint64_t histogram = 0, fingerprint = 0;
      FederationStats stats;
    };
    Out out;
    LatencyHistogram merged;
    for (QueryDriver* driver : drivers) {
      out.issued += driver->stats().issued;
      out.completed += driver->stats().completed;
      out.failed += driver->stats().failed;
      out.cross_cell += driver->stats().cross_cell;
      merged.Merge(driver->stats().latency);
    }
    out.histogram = merged.Hash();
    out.fingerprint = fed.fingerprint();
    out.stats = fed.stats();
    return out;
  };
  const auto parallel = run(4);
  EXPECT_GT(parallel.issued, 3000u);
  EXPECT_EQ(parallel.completed, parallel.issued)
      << "every flooded query must finalize exactly once";
  EXPECT_EQ(parallel.failed, 0u);
  EXPECT_GT(parallel.cross_cell, parallel.issued / 2);
  EXPECT_EQ(parallel.stats.queries, parallel.issued);
  EXPECT_EQ(parallel.stats.forwarded, parallel.cross_cell);

  const auto sequential = run(1);
  EXPECT_EQ(sequential.fingerprint, parallel.fingerprint);
  EXPECT_EQ(sequential.histogram, parallel.histogram);
  EXPECT_EQ(sequential.issued, parallel.issued);
  EXPECT_EQ(sequential.failed, parallel.failed);
}

// ---------- cells as processes ----------

// Spawns n `presto_cell --listen 0` worker processes on localhost and fills a
// FederationConfig's endpoint map with them; SIGKILLs whatever is still running
// on destruction. The live TCP analogue of fork-mode cell_processes.
struct ScopedSocketWorkers {
  std::vector<SpawnedCellWorker> workers;

  explicit ScopedSocketWorkers(int n) {
    for (int i = 0; i < n; ++i) {
      auto spawned = SpawnCellWorkerListening();
      PRESTO_CHECK_MSG(spawned.ok(), "failed to spawn a --listen presto_cell");
      workers.push_back(*spawned);
    }
  }
  ~ScopedSocketWorkers() {
    for (SpawnedCellWorker& worker : workers) {
      StopCellWorker(worker);
    }
  }
  ScopedSocketWorkers(const ScopedSocketWorkers&) = delete;
  ScopedSocketWorkers& operator=(const ScopedSocketWorkers&) = delete;

  void Fill(FederationConfig* config) const {
    for (size_t i = 0; i < workers.size(); ++i) {
      config->cell_endpoints[i] = MakeFedEndpoint("127.0.0.1", workers[i].port);
    }
    config->num_endpoints = static_cast<int>(workers.size());
  }
};

// A driven kill/revive scenario built entirely on the mode-independent facade
// (AttachDriver / StartDriver / DriverStats / KillProxyInCell / KillCell /
// QueryAndWait), so the identical code runs whether the cells live in this
// process (sequential or cell-parallel) or in forked presto_cell workers.
FedDigest RunFacadeFederation(int cell_threads, int cell_processes,
                              int sockets = 0) {
  FederationConfig config = SmallFederation(4, 4, 2);
  config.cell.lane_engine = true;
  config.cell.sim_epoch = Millis(500);
  config.cell_threads = cell_threads;
  config.cell_processes = cell_processes;
  // Socket mode: the same scenario with the cells living in spawned --listen
  // workers reached over localhost TCP instead of forked socketpair children.
  std::unique_ptr<ScopedSocketWorkers> socket_workers;
  if (sockets > 0) {
    socket_workers = std::make_unique<ScopedSocketWorkers>(sockets);
    socket_workers->Fill(&config);
  }
  Federation fed(config);

  QueryDriverParams params;
  params.mix.queries_per_hour = 1200.0;
  params.mix.num_sensors = 0;  // whole federation namespace
  params.mix.past_fraction = 0.2;
  params.mix.mean_past_age = Minutes(20);
  params.mix.max_past_age = Minutes(40);
  params.mix.min_tolerance = 2.0;
  params.mix.max_tolerance = 3.0;
  std::vector<int> drivers;
  for (int c = 0; c < fed.num_cells(); c += 2) {  // gateways at cells 0 and 2
    QueryDriverParams p = params;
    p.mix.seed = 6060 + static_cast<uint64_t>(c);
    drivers.push_back(fed.AttachDriver(c, p));
  }
  fed.Start();
  fed.RunUntil(Hours(1));
  for (const int d : drivers) {
    fed.StartDriver(d, Minutes(12));
  }
  fed.RunUntil(fed.Now() + Minutes(2));
  fed.KillProxyInCell(1, 0);  // in-cell failover under cross-cell load
  fed.RunUntil(fed.Now() + Minutes(2));
  fed.KillCell(3);  // whole-cell outage: queries toward it fail fast
  fed.RunUntil(fed.Now() + Minutes(2));
  fed.ReviveProxyInCell(1, 0);
  fed.ReviveCell(3);
  fed.RunUntil(fed.Now() + Minutes(3));

  // A host probe rides whichever seam is active (closure in-process, kInject +
  // host_done fold across the process boundary) — and must not perturb replay.
  FederationQuerySpec probe;
  probe.fed_sensor = fed.directory().FedIndexOf(2, 1);
  probe.tolerance = 3.0;
  const FederationQueryResult probed = fed.QueryAndWait(0, probe);
  EXPECT_TRUE(probed.cell.answer.status.ok()) << probed.cell.answer.status.message();
  EXPECT_TRUE(probed.cross_cell);
  fed.RunUntil(fed.Now() + Minutes(3));

  FedDigest digest;
  digest.fingerprint = fed.fingerprint();
  LatencyHistogram merged;
  for (const int d : drivers) {
    const QueryDriverStats stats = fed.DriverStats(d);
    merged.Merge(stats.latency);
    digest.issued += stats.issued;
    digest.completed += stats.completed;
    digest.failed += stats.failed;
    digest.cross_cell += stats.cross_cell;
  }
  digest.histogram = merged.Hash();
  return digest;
}

TEST(FederationProcessModeTest, MultiProcessSteppingMatchesInProcess) {
  const FedDigest in_process = RunFacadeFederation(/*cell_threads=*/1,
                                                   /*cell_processes=*/1);
  EXPECT_GT(in_process.issued, 200u);
  EXPECT_EQ(in_process.completed, in_process.issued);
  EXPECT_GT(in_process.cross_cell, 50u);
  EXPECT_GT(in_process.failed, 0u) << "the cell-3 outage must fail some queries";

  // Threaded in-process stepping through the same facade, then worker processes
  // at even, uneven (4 cells over 3 workers), and one-cell-per-worker splits:
  // fingerprint and histogram must be bit-identical in every mode.
  const FedDigest threaded = RunFacadeFederation(/*cell_threads=*/8,
                                                 /*cell_processes=*/1);
  EXPECT_EQ(in_process.fingerprint, threaded.fingerprint);
  EXPECT_EQ(in_process.histogram, threaded.histogram);
  for (const int procs : {2, 3, 4}) {
    const FedDigest multi = RunFacadeFederation(/*cell_threads=*/1, procs);
    EXPECT_EQ(in_process.fingerprint, multi.fingerprint)
        << "fingerprint diverged at cell_processes=" << procs;
    EXPECT_EQ(in_process.histogram, multi.histogram)
        << "latency histogram diverged at cell_processes=" << procs;
    EXPECT_EQ(in_process.issued, multi.issued);
    EXPECT_EQ(in_process.completed, multi.completed);
    EXPECT_EQ(in_process.failed, multi.failed);
    EXPECT_EQ(in_process.cross_cell, multi.cross_cell);
  }
  // Socket transport (spawned --listen workers over localhost TCP), even and
  // uneven splits: the transport under the seam must not be observable either.
  for (const int sockets : {3, 4}) {
    const FedDigest socket =
        RunFacadeFederation(/*cell_threads=*/1, /*cell_processes=*/1, sockets);
    EXPECT_EQ(in_process.fingerprint, socket.fingerprint)
        << "fingerprint diverged at sockets=" << sockets;
    EXPECT_EQ(in_process.histogram, socket.histogram)
        << "latency histogram diverged at sockets=" << sockets;
    EXPECT_EQ(in_process.issued, socket.issued);
    EXPECT_EQ(in_process.completed, socket.completed);
    EXPECT_EQ(in_process.failed, socket.failed);
    EXPECT_EQ(in_process.cross_cell, socket.cross_cell);
  }
}

TEST(FederationProcessModeTest, WorkerCrashSurfacesAsCellFailure) {
  FederationConfig config = SmallFederation(4, 2, 2);
  config.cell_processes = 4;
  Federation fed(config);
  fed.Start();
  fed.RunUntil(Hours(1));
  ASSERT_EQ(fed.num_workers(), 4);
  ASSERT_TRUE(fed.worker_alive(1));

  // SIGKILL, not kShutdown: no goodbye frame, just a torn channel. The next
  // barrier must detect it and keep going — a crashed worker is a deployment-
  // visible cell failure, never a federation hang or a parent abort.
  ASSERT_EQ(::kill(fed.worker_pid(1), SIGKILL), 0);
  fed.RunUntil(fed.Now() + Minutes(5));
  EXPECT_FALSE(fed.worker_alive(1));
  EXPECT_TRUE(fed.worker_alive(0));

  // Queries toward the dead worker's cell fail fast at their origin gateway.
  FederationQuerySpec dark;
  dark.fed_sensor = fed.directory().FedIndexOf(1, 0);
  dark.tolerance = 3.0;
  const FederationQueryResult toward = fed.QueryAndWait(0, dark);
  EXPECT_FALSE(toward.cell.answer.status.ok())
      << "a crashed worker's namespace block must fail, not hang";

  // Probes *from* the dead cell fail cleanly too (no frame can reach it).
  const FederationQueryResult from = fed.QueryAndWait(1, dark);
  EXPECT_FALSE(from.cell.answer.status.ok());

  // The surviving cells keep serving local and cross-cell traffic.
  FederationQuerySpec alive;
  alive.fed_sensor = fed.directory().FedIndexOf(2, 1);
  alive.tolerance = 3.0;
  EXPECT_TRUE(fed.QueryAndWait(3, alive).cell.answer.status.ok());

  // Telemetry stays serveable and stable: the dead worker's cells freeze at
  // their last folded values instead of vanishing or wedging the fold.
  const uint64_t fp = fed.fingerprint();
  EXPECT_EQ(fp, fed.fingerprint());
  fed.RunUntil(fed.Now() + Minutes(2));
  EXPECT_GT(fed.EventsExecuted(), 0u);

  // A checkpoint of a degraded federation is refused (a crashed worker's cells
  // cannot be serialized), not silently partial.
  Checkpoint ckpt;
  EXPECT_FALSE(fed.SaveCheckpoint(&ckpt).ok());
}

TEST(FederationProcessModeTest, CrossModeCheckpointMigration) {
  // The checkpoint container is the live-migration format: bytes written by an
  // in-process federation restore into worker processes and vice versa, and both
  // modes serialize the same scenario to the same Digest().
  auto fresh = [](int cell_processes) {
    FederationConfig config = SmallFederation(2, 2, 4);
    config.cell_processes = cell_processes;
    auto fed = std::make_unique<Federation>(config);
    for (int c = 0; c < 2; ++c) {
      QueryDriverParams p;
      p.mix.queries_per_hour = 1200.0;
      p.mix.num_sensors = 0;
      p.mix.past_fraction = 0.1;
      p.mix.mean_past_age = Minutes(5);
      p.mix.max_past_age = Minutes(8);
      p.mix.min_tolerance = 2.0;
      p.mix.max_tolerance = 3.0;
      p.mix.seed = 31337 + static_cast<uint64_t>(c);
      fed->AttachDriver(c, p);
    }
    fed->Start();
    return fed;
  };
  auto prefix = [&](int cell_processes) {
    auto fed = fresh(cell_processes);
    fed->RunUntil(Minutes(10));
    fed->StartDriver(0, Minutes(10));
    fed->StartDriver(1, Minutes(10));
    fed->RunUntil(Minutes(13));
    fed->KillProxyInCell(1, 0);  // save mid-failover, queries in flight
    fed->RunUntil(Minutes(14));
    return fed;
  };
  auto finish = [](Federation& fed) {
    fed.ReviveProxyInCell(1, 0);
    fed.RunUntil(Minutes(25));
    FedDigest digest;
    digest.fingerprint = fed.fingerprint();
    LatencyHistogram merged;
    for (int d = 0; d < fed.num_drivers(); ++d) {
      const QueryDriverStats stats = fed.DriverStats(d);
      merged.Merge(stats.latency);
      digest.issued += stats.issued;
      digest.completed += stats.completed;
      digest.failed += stats.failed;
    }
    digest.histogram = merged.Hash();
    return digest;
  };

  // Same prefix in both modes => byte-identical checkpoint containers.
  auto in_proc = prefix(1);
  Checkpoint from_in_proc;
  ASSERT_TRUE(in_proc->SaveCheckpoint(&from_in_proc).ok());
  auto multi = prefix(2);
  Checkpoint from_multi;
  ASSERT_TRUE(multi->SaveCheckpoint(&from_multi).ok());
  EXPECT_EQ(from_in_proc.Digest(), from_multi.Digest())
      << "checkpoint bytes must not depend on the execution mode";

  // Uninterrupted reference: the in-process run just keeps going.
  const FedDigest reference = finish(*in_proc);
  EXPECT_GT(reference.issued, 100u);
  EXPECT_EQ(reference.completed, reference.issued);

  // Migrate each way: in-process bytes into workers, worker bytes in-process.
  auto migrated_out = fresh(2);
  ASSERT_TRUE(migrated_out->LoadCheckpoint(from_in_proc).ok());
  auto migrated_in = fresh(1);
  ASSERT_TRUE(migrated_in->LoadCheckpoint(from_multi).ok());

  // Restoring the same bytes into either mode must re-serialize identically:
  // load canonicalizes (event-pool layout is rebuilt, so the resave need not
  // equal the original container), but the canonical form cannot depend on
  // whether the cells live in-process or in workers.
  Checkpoint resaved_out;
  ASSERT_TRUE(migrated_out->SaveCheckpoint(&resaved_out).ok());
  Checkpoint resaved_in;
  {
    auto reload = fresh(1);
    ASSERT_TRUE(reload->LoadCheckpoint(from_in_proc).ok());
    ASSERT_TRUE(reload->SaveCheckpoint(&resaved_in).ok());
  }
  EXPECT_EQ(resaved_out.Digest(), resaved_in.Digest());

  const FedDigest out_digest = finish(*migrated_out);
  const FedDigest in_digest = finish(*migrated_in);
  EXPECT_EQ(reference.fingerprint, out_digest.fingerprint)
      << "in-process checkpoint must replay inside worker processes";
  EXPECT_EQ(reference.fingerprint, in_digest.fingerprint)
      << "worker checkpoint must replay in-process";
  EXPECT_EQ(reference.histogram, out_digest.histogram);
  EXPECT_EQ(reference.histogram, in_digest.histogram);
  EXPECT_EQ(reference.issued, out_digest.issued);
  EXPECT_EQ(reference.issued, in_digest.issued);
}

// ---------- socket transport ----------

TEST(FederationSocketModeTest, DeadTcpPeerSurfacesAsCellFailure) {
  // The TCP twin of WorkerCrashSurfacesAsCellFailure: SIGKILLing a --listen
  // worker tears the connection (RST/EOF, no goodbye frame), and the next
  // barrier must degrade it into a contained cell failure — fail-fast queries,
  // frozen telemetry, refused checkpoints — never a hang.
  ScopedSocketWorkers workers(4);
  FederationConfig config = SmallFederation(4, 2, 2);
  workers.Fill(&config);
  Federation fed(config);
  fed.Start();
  fed.RunUntil(Hours(1));
  ASSERT_EQ(fed.num_workers(), 4);
  ASSERT_TRUE(fed.worker_alive(1));

  const auto killed_at = std::chrono::steady_clock::now();
  StopCellWorker(workers.workers[1]);
  fed.RunUntil(fed.Now() + Minutes(5));
  const auto contained =
      std::chrono::steady_clock::now() - killed_at;
  EXPECT_FALSE(fed.worker_alive(1));
  EXPECT_TRUE(fed.worker_alive(0));
  // Abrupt peer death is an immediate RST/EOF, nowhere near the 30 s deadline.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(contained).count(), 20);

  FederationQuerySpec dark;
  dark.fed_sensor = fed.directory().FedIndexOf(1, 0);
  dark.tolerance = 3.0;
  EXPECT_FALSE(fed.QueryAndWait(0, dark).cell.answer.status.ok())
      << "a dead TCP worker's namespace block must fail, not hang";
  EXPECT_FALSE(fed.QueryAndWait(1, dark).cell.answer.status.ok());

  FederationQuerySpec alive;
  alive.fed_sensor = fed.directory().FedIndexOf(2, 1);
  alive.tolerance = 3.0;
  EXPECT_TRUE(fed.QueryAndWait(3, alive).cell.answer.status.ok());

  const uint64_t fp = fed.fingerprint();
  EXPECT_EQ(fp, fed.fingerprint());
  fed.RunUntil(fed.Now() + Minutes(2));
  EXPECT_GT(fed.EventsExecuted(), 0u);

  // Degraded-save refusal holds over TCP exactly as it does for fork workers.
  Checkpoint ckpt;
  EXPECT_FALSE(fed.SaveCheckpoint(&ckpt).ok());
}

TEST(FederationSocketModeTest, FrameDeadlineContainsAStalledPeer) {
  // A SIGSTOPped worker is the nasty case TCP cannot surface on its own: the
  // kernel keeps ACKing into the socket buffers, so without deadlines the
  // orchestrator would block in recv() forever. The per-frame deadline must
  // degrade it into the standard contained cell failure within bounded time.
  ScopedSocketWorkers workers(2);
  FederationConfig config = SmallFederation(2, 2, 2);
  workers.Fill(&config);
  config.frame_deadline = Millis(250);
  Federation fed(config);
  fed.Start();
  fed.RunUntil(Hours(1));
  ASSERT_TRUE(fed.worker_alive(1));

  ASSERT_EQ(::kill(static_cast<pid_t>(workers.workers[1].pid), SIGSTOP), 0);
  const auto stalled_at = std::chrono::steady_clock::now();
  fed.RunUntil(fed.Now() + Minutes(1));
  const auto contained = std::chrono::steady_clock::now() - stalled_at;
  EXPECT_FALSE(fed.worker_alive(1));
  EXPECT_TRUE(fed.worker_alive(0));
  // One deadline per frame, a handful of frames in flight at the detection
  // barrier: containment lands in ~one deadline, never minutes.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(contained).count(),
            10000);

  FederationQuerySpec dark;
  dark.fed_sensor = fed.directory().FedIndexOf(1, 0);
  dark.tolerance = 3.0;
  EXPECT_FALSE(fed.QueryAndWait(0, dark).cell.answer.status.ok());
  FederationQuerySpec alive;
  alive.fed_sensor = 0;
  alive.tolerance = 3.0;
  EXPECT_TRUE(fed.QueryAndWait(0, alive).cell.answer.status.ok());
}

// ---------- chaos: seeded kill schedules across the three execution modes ----

// Tiny deterministic RNG for kill schedules (no libc rand state shared with the
// code under test).
struct Pcg32 {
  uint64_t state;
  explicit Pcg32(uint64_t seed)
      : state(seed * 0x9e3779b97f4a7c15ull + 1442695040888963407ull) {}
  uint32_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint32_t xorshifted = static_cast<uint32_t>(((state >> 18u) ^ state) >> 27u);
    uint32_t rot = static_cast<uint32_t>(state >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }
  int Below(int bound) { return static_cast<int>(Next() % static_cast<uint32_t>(bound)); }
};

struct KillEvent {
  SimTime at = 0;  // on the epoch grid; the kill lands between RunUntil calls
  int cell = 0;    // == worker index (one cell per worker in the chaos runs)
};

// One seeded schedule: two distinct victim cells (never the gateway cells 0 and
// 2), each at a distinct epoch barrier inside the driven window.
std::vector<KillEvent> ChaosSchedule(uint64_t seed) {
  Pcg32 rng(seed);
  const int candidates[] = {1, 3, 4, 5};
  const int first = rng.Below(4);
  int second = rng.Below(3);
  if (second >= first) {
    ++second;
  }
  std::vector<KillEvent> kills;
  kills.push_back({Hours(1) + Minutes(3) + Seconds(rng.Below(60)), candidates[first]});
  kills.push_back({Hours(1) + Minutes(6) + Seconds(rng.Below(60)), candidates[second]});
  return kills;
}

struct ChaosDigest {
  std::vector<uint64_t> survivor_fp;  // CellFingerprint of every never-killed cell
  uint64_t issued = 0, completed = 0, failed = 0, cross_cell = 0;
  uint64_t histogram = 0;
};

enum class ChaosMode {
  kReferenceKillCell,  // in-process; kills injected via the KillCell facade
  kForkSigkill,        // forked workers; kills are SIGKILLs of the host process
  kSocketKill,         // --listen workers; kills tear the TCP connection
};

ChaosDigest RunChaosFederation(ChaosMode mode, uint64_t schedule_seed) {
  const int kCells = 6;
  FederationConfig config = SmallFederation(kCells, 2, 2);
  config.cell.lane_engine = true;
  config.cell.sim_epoch = Millis(500);
  std::unique_ptr<ScopedSocketWorkers> socket_workers;
  if (mode == ChaosMode::kForkSigkill) {
    config.cell_processes = kCells;  // one cell per worker: kill cell == kill worker
  } else if (mode == ChaosMode::kSocketKill) {
    socket_workers = std::make_unique<ScopedSocketWorkers>(kCells);
    socket_workers->Fill(&config);
  }
  Federation fed(config);
  std::vector<int> drivers;
  for (const int c : {0, 2}) {  // gateways never die; victims host no drivers
    QueryDriverParams p;
    p.mix.queries_per_hour = 1800.0;
    p.mix.num_sensors = 0;
    p.mix.past_fraction = 0.1;
    p.mix.mean_past_age = Minutes(10);
    p.mix.max_past_age = Minutes(20);
    p.mix.min_tolerance = 2.0;
    p.mix.max_tolerance = 3.0;
    p.mix.seed = 8686 + static_cast<uint64_t>(c);
    drivers.push_back(fed.AttachDriver(c, p));
  }
  fed.Start();
  fed.RunUntil(Hours(1));
  for (const int d : drivers) {
    fed.StartDriver(d, Minutes(10));
  }

  std::vector<KillEvent> kills = ChaosSchedule(schedule_seed);
  std::vector<uint8_t> down(kCells, 0);
  for (const KillEvent& kill : kills) {
    fed.RunUntil(kill.at);
    if (mode == ChaosMode::kReferenceKillCell) {
      // A killed worker is only *detected* at the next barrier, so the
      // equivalent facade kill lands one epoch after the host-side SIGKILL:
      // survivors treat the victim as alive through the same final epoch.
      fed.RunUntil(kill.at + fed.config().epoch);
      fed.KillCell(kill.cell);
    } else if (mode == ChaosMode::kForkSigkill) {
      PRESTO_CHECK(::kill(fed.worker_pid(kill.cell), SIGKILL) == 0);
    } else {
      StopCellWorker(socket_workers->workers[static_cast<size_t>(kill.cell)]);
    }
    down[static_cast<size_t>(kill.cell)] = 1;
  }
  fed.RunUntil(Hours(1) + Minutes(12));

  // A federation with dead workers refuses to checkpoint (their cells cannot
  // be serialized). In-process KillCell keeps the cells constructible, so the
  // reference mode still saves — the refusal is a worker-liveness property.
  if (mode != ChaosMode::kReferenceKillCell) {
    Checkpoint refused;
    EXPECT_FALSE(fed.SaveCheckpoint(&refused).ok());
  }

  ChaosDigest digest;
  for (int c = 0; c < kCells; ++c) {
    if (!down[static_cast<size_t>(c)]) {
      digest.survivor_fp.push_back(fed.CellFingerprint(c));
    }
  }
  LatencyHistogram merged;
  for (const int d : drivers) {
    const QueryDriverStats stats = fed.DriverStats(d);
    merged.Merge(stats.latency);
    digest.issued += stats.issued;
    digest.completed += stats.completed;
    digest.failed += stats.failed;
    digest.cross_cell += stats.cross_cell;
  }
  digest.histogram = merged.Hash();
  return digest;
}

TEST(FederationChaosTest, SeededWorkerKillsMatchTheKillCellReference) {
  // For each seeded schedule: SIGKILLed fork workers and torn TCP connections
  // must leave every survivor bit-identical to an in-process run where the same
  // cells died by KillCell — the "a dead worker IS a dead cell" contract, fuzzed
  // over kill times and victims instead of hand-picked.
  for (const uint64_t seed : {11ull, 29ull, 47ull}) {
    const ChaosDigest reference =
        RunChaosFederation(ChaosMode::kReferenceKillCell, seed);
    EXPECT_GT(reference.issued, 200u);
    EXPECT_EQ(reference.completed, reference.issued)
        << "every query must finalize (fail-fast counts) even through kills";
    EXPECT_GT(reference.failed, 0u) << "the outages must fail some queries";
    ASSERT_EQ(reference.survivor_fp.size(), 4u);

    for (const ChaosMode mode : {ChaosMode::kForkSigkill, ChaosMode::kSocketKill}) {
      const ChaosDigest chaos = RunChaosFederation(mode, seed);
      ASSERT_EQ(chaos.survivor_fp.size(), reference.survivor_fp.size());
      for (size_t i = 0; i < chaos.survivor_fp.size(); ++i) {
        EXPECT_EQ(chaos.survivor_fp[i], reference.survivor_fp[i])
            << "survivor " << i << " diverged, seed=" << seed
            << " mode=" << static_cast<int>(mode);
      }
      EXPECT_EQ(chaos.issued, reference.issued) << "seed=" << seed;
      EXPECT_EQ(chaos.completed, reference.completed) << "seed=" << seed;
      EXPECT_EQ(chaos.failed, reference.failed) << "seed=" << seed;
      EXPECT_EQ(chaos.cross_cell, reference.cross_cell) << "seed=" << seed;
      EXPECT_EQ(chaos.histogram, reference.histogram) << "seed=" << seed;
    }
  }
}

// ---------- checkpoint migration across the socket seam ----------

TEST(FederationSocketModeTest, CheckpointHopsAcrossAllThreeModes) {
  // in-process save -> socket-worker restore -> fork-worker restore, asserting
  // canonical resave identity at each hop and full replay equality at the end:
  // live migration really is "the same bytes over a different fd".
  auto fresh = [](int cell_processes, const ScopedSocketWorkers* sockets) {
    FederationConfig config = SmallFederation(2, 2, 4);
    config.cell_processes = cell_processes;
    if (sockets != nullptr) {
      sockets->Fill(&config);
    }
    auto fed = std::make_unique<Federation>(config);
    for (int c = 0; c < 2; ++c) {
      QueryDriverParams p;
      p.mix.queries_per_hour = 1200.0;
      p.mix.num_sensors = 0;
      p.mix.past_fraction = 0.1;
      p.mix.mean_past_age = Minutes(5);
      p.mix.max_past_age = Minutes(8);
      p.mix.min_tolerance = 2.0;
      p.mix.max_tolerance = 3.0;
      p.mix.seed = 24601 + static_cast<uint64_t>(c);
      fed->AttachDriver(c, p);
    }
    fed->Start();
    return fed;
  };
  auto finish = [](Federation& fed) {
    fed.RunUntil(Minutes(25));
    FedDigest digest;
    digest.fingerprint = fed.fingerprint();
    LatencyHistogram merged;
    for (int d = 0; d < fed.num_drivers(); ++d) {
      const QueryDriverStats stats = fed.DriverStats(d);
      merged.Merge(stats.latency);
      digest.issued += stats.issued;
      digest.completed += stats.completed;
      digest.failed += stats.failed;
    }
    digest.histogram = merged.Hash();
    return digest;
  };

  // Prefix in-process, mid-stream save.
  auto origin = fresh(1, nullptr);
  origin->RunUntil(Minutes(10));
  origin->StartDriver(0, Minutes(10));
  origin->StartDriver(1, Minutes(10));
  origin->RunUntil(Minutes(14));
  Checkpoint hop0;
  ASSERT_TRUE(origin->SaveCheckpoint(&hop0).ok());
  const FedDigest reference = finish(*origin);
  EXPECT_GT(reference.issued, 50u);
  EXPECT_EQ(reference.completed, reference.issued);

  // Hop 1: restore into --listen socket workers; resave must canonicalize to
  // the same bytes an in-process reload resaves.
  Checkpoint hop1;
  FedDigest socket_digest;
  {
    ScopedSocketWorkers workers(2);
    auto socket_fed = fresh(1, &workers);
    ASSERT_TRUE(socket_fed->LoadCheckpoint(hop0).ok());
    ASSERT_TRUE(socket_fed->SaveCheckpoint(&hop1).ok());
    socket_digest = finish(*socket_fed);
  }
  Checkpoint in_proc_resave;
  {
    auto reload = fresh(1, nullptr);
    ASSERT_TRUE(reload->LoadCheckpoint(hop0).ok());
    ASSERT_TRUE(reload->SaveCheckpoint(&in_proc_resave).ok());
  }
  EXPECT_EQ(hop1.Digest(), in_proc_resave.Digest())
      << "socket-worker restore must canonicalize identically to in-process";

  // Hop 2: the socket resave restores into fork workers; same canonical form.
  auto fork_fed = fresh(2, nullptr);
  ASSERT_TRUE(fork_fed->LoadCheckpoint(hop1).ok());
  Checkpoint hop2;
  ASSERT_TRUE(fork_fed->SaveCheckpoint(&hop2).ok());
  EXPECT_EQ(hop2.Digest(), hop1.Digest())
      << "a canonical container must be a resave fixed point across modes";
  const FedDigest fork_digest = finish(*fork_fed);

  EXPECT_EQ(reference.fingerprint, socket_digest.fingerprint)
      << "in-process bytes must replay inside socket workers";
  EXPECT_EQ(reference.fingerprint, fork_digest.fingerprint)
      << "socket-worker bytes must replay inside fork workers";
  EXPECT_EQ(reference.histogram, socket_digest.histogram);
  EXPECT_EQ(reference.histogram, fork_digest.histogram);
  EXPECT_EQ(reference.issued, socket_digest.issued);
  EXPECT_EQ(reference.issued, fork_digest.issued);
}

TEST(FederationSocketModeTest, LiveMigrationToAFreshEndpointReplays) {
  // Mid-run, move worker 1's cells to a brand-new --listen process: checkpoint,
  // shutdown the old endpoint, re-bootstrap + restore over the new fd. The
  // migrated run must stay bit-identical to an unmigrated socket run.
  auto run = [](bool migrate) {
    ScopedSocketWorkers workers(2);
    FederationConfig config = SmallFederation(2, 2, 4);
    workers.Fill(&config);
    Federation fed(config);
    std::vector<int> drivers;
    for (int c = 0; c < 2; ++c) {
      QueryDriverParams p;
      p.mix.queries_per_hour = 1200.0;
      p.mix.num_sensors = 0;
      p.mix.past_fraction = 0.1;
      p.mix.mean_past_age = Minutes(5);
      p.mix.max_past_age = Minutes(8);
      p.mix.min_tolerance = 2.0;
      p.mix.max_tolerance = 3.0;
      p.mix.seed = 1701 + static_cast<uint64_t>(c);
      drivers.push_back(fed.AttachDriver(c, p));
    }
    fed.Start();
    fed.RunUntil(Minutes(10));
    for (const int d : drivers) {
      fed.StartDriver(d, Minutes(10));
    }
    fed.RunUntil(Minutes(14));
    std::unique_ptr<ScopedSocketWorkers> replacement;
    if (migrate) {
      replacement = std::make_unique<ScopedSocketWorkers>(1);
      const Status moved = fed.MigrateWorkerEndpoint(
          1, MakeFedEndpoint("127.0.0.1", replacement->workers[0].port));
      EXPECT_TRUE(moved.ok()) << moved.message();
      EXPECT_TRUE(fed.worker_alive(1));
    }
    fed.RunUntil(Minutes(25));
    FedDigest digest;
    digest.fingerprint = fed.fingerprint();
    LatencyHistogram merged;
    for (const int d : drivers) {
      const QueryDriverStats stats = fed.DriverStats(d);
      merged.Merge(stats.latency);
      digest.issued += stats.issued;
      digest.completed += stats.completed;
      digest.failed += stats.failed;
    }
    digest.histogram = merged.Hash();
    return digest;
  };
  const FedDigest stayed = run(/*migrate=*/false);
  EXPECT_GT(stayed.issued, 50u);
  EXPECT_EQ(stayed.completed, stayed.issued);
  EXPECT_EQ(stayed.failed, 0u);
  const FedDigest moved = run(/*migrate=*/true);
  EXPECT_EQ(stayed.fingerprint, moved.fingerprint)
      << "live migration must be invisible to the simulation";
  EXPECT_EQ(stayed.histogram, moved.histogram);
  EXPECT_EQ(stayed.issued, moved.issued);
  EXPECT_EQ(stayed.completed, moved.completed);
  EXPECT_EQ(stayed.failed, moved.failed);
}

}  // namespace
}  // namespace presto
