// Tests for linear algebra, the predictive models (including the proxy/sensor
// consistency contract that model-driven push depends on), and spatial conditioning.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/models/ar.h"
#include "src/models/linalg.h"
#include "src/models/markov.h"
#include "src/models/registry.h"
#include "src/models/seasonal.h"
#include "src/models/spatial.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace presto {
namespace {

// ---------- linalg ----------

TEST(LinalgTest, CholeskySolvesSpdSystem) {
  Matrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  auto x = SolveSpd(a, {8, 7});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.25, 1e-9);
  EXPECT_NEAR((*x)[1], 1.5, 1e-9);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 5;
  a.At(1, 0) = 5;
  a.At(1, 1) = 1;  // eigenvalues 6, -4
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(LinalgTest, MatrixMultiply) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      a.At(r, c) = v++;
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      b.At(r, c) = v++;
    }
  }
  Matrix ab = a.Multiply(b);
  EXPECT_EQ(ab.At(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_EQ(ab.At(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(LinalgTest, LevinsonDurbinRecoversAr2) {
  // Simulate a long AR(2) series and check coefficient recovery.
  const double phi1 = 0.6;
  const double phi2 = -0.3;
  Pcg32 rng(3);
  std::vector<double> x(60000, 0.0);
  for (size_t i = 2; i < x.size(); ++i) {
    x[i] = phi1 * x[i - 1] + phi2 * x[i - 2] + rng.Gaussian();
  }
  auto fit = LevinsonDurbin(Autocovariance(x, 2));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->phi[0], phi1, 0.03);
  EXPECT_NEAR(fit->phi[1], phi2, 0.03);
  EXPECT_NEAR(fit->innovation_variance, 1.0, 0.05);
}

TEST(LinalgTest, FitLineExact) {
  auto line = FitLine({0, 1, 2, 3}, {5, 7, 9, 11});
  ASSERT_TRUE(line.ok());
  EXPECT_NEAR(line->first, 5.0, 1e-9);   // intercept
  EXPECT_NEAR(line->second, 2.0, 1e-9);  // slope
}

TEST(LinalgTest, AutocovarianceLagZeroIsVariance) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const auto ac = Autocovariance(x, 0);
  EXPECT_NEAR(ac[0], 2.0, 1e-12);
}

// ---------- shared fixtures ----------

constexpr Duration kPeriod = Seconds(31);

ModelConfig TestConfig() {
  ModelConfig c;
  c.sample_period = kPeriod;
  c.seasonal_period = Hours(24);
  c.seasonal_bins = 24;
  c.ar_order = 2;
  c.markov_states = 6;
  return c;
}

// Two days of diurnal signal + AR(1) noise on the sensing grid.
std::vector<Sample> DiurnalSeries(int days = 3, uint64_t seed = 5) {
  Pcg32 rng(seed);
  std::vector<Sample> out;
  double ar = 0.0;
  const int per_day = static_cast<int>(kDay / kPeriod);
  for (int i = 0; i < days * per_day; ++i) {
    const SimTime t = static_cast<SimTime>(i) * kPeriod;
    ar = 0.97 * ar + rng.Gaussian(0.0, 0.08);
    const double diurnal =
        20.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                              static_cast<double>(kDay));
    out.push_back(Sample{t, diurnal + ar});
  }
  return out;
}

// ---------- per-model property: proxy and sensor replicas stay in lockstep ----------

class ModelConsistencyTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(ModelConsistencyTest, SerializeDeserializePredictIdentically) {
  const ModelConfig config = TestConfig();
  auto proxy_model = CreateModel(GetParam(), config);
  const std::vector<Sample> history = DiurnalSeries();
  ASSERT_TRUE(proxy_model->Fit(history).ok());

  const std::vector<uint8_t> wire = proxy_model->Serialize();
  EXPECT_FALSE(wire.empty());
  auto sensor_model = DeserializeModel(wire, config);
  ASSERT_TRUE(sensor_model.ok());
  EXPECT_EQ((*sensor_model)->type(), GetParam());

  const SimTime t0 = history.back().t;
  // Predictions agree right after installation...
  for (int k = 1; k <= 64; k *= 2) {
    const SimTime t = t0 + k * kPeriod;
    const Prediction a = proxy_model->Predict(t);
    const Prediction b = (*sensor_model)->Predict(t);
    EXPECT_NEAR(a.value, b.value, 1e-3) << "k=" << k;
    EXPECT_NEAR(a.stddev, b.stddev, 1e-3) << "k=" << k;
  }
  // ...and remain in lockstep through a sequence of mirrored anchors.
  Pcg32 rng(11);
  SimTime t = t0;
  for (int i = 0; i < 50; ++i) {
    t += rng.UniformInt(1, 40) * kPeriod;
    const Sample anchor{t, 20.0 + rng.Gaussian(0, 3)};
    proxy_model->OnAnchor(anchor);
    (*sensor_model)->OnAnchor(anchor);
    const SimTime probe = t + rng.UniformInt(1, 20) * kPeriod;
    EXPECT_NEAR(proxy_model->Predict(probe).value, (*sensor_model)->Predict(probe).value,
                1e-3);
  }
}

TEST_P(ModelConsistencyTest, CloneIsIndependent) {
  const ModelConfig config = TestConfig();
  auto model = CreateModel(GetParam(), config);
  ASSERT_TRUE(model->Fit(DiurnalSeries()).ok());
  auto clone = model->Clone();
  const SimTime t = Days(3) + Hours(1);
  EXPECT_EQ(model->Predict(t).value, clone->Predict(t).value);
  clone->OnAnchor(Sample{Days(3) + Minutes(10), 35.0});
  // Anchoring the clone must not disturb the original (except stateless models, where
  // both simply ignore anchors).
  if (GetParam() != ModelType::kSeasonal) {
    EXPECT_NE(model->Predict(t).value, clone->Predict(t).value);
  }
}

TEST_P(ModelConsistencyTest, PredictionHasPositiveUncertainty) {
  auto model = CreateModel(GetParam(), TestConfig());
  ASSERT_TRUE(model->Fit(DiurnalSeries()).ok());
  for (SimTime t : {Hours(1), Days(3) + Hours(5), Days(10)}) {
    EXPECT_GT(model->Predict(t).stddev, 0.0);
  }
}

TEST_P(ModelConsistencyTest, FitFailsOnTinyHistory) {
  auto model = CreateModel(GetParam(), TestConfig());
  EXPECT_FALSE(model->Fit({Sample{0, 1.0}, Sample{kPeriod, 1.1}}).ok());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelConsistencyTest,
                         ::testing::Values(ModelType::kLastValue, ModelType::kSeasonal,
                                           ModelType::kAr, ModelType::kSeasonalAr,
                                           ModelType::kMarkov),
                         [](const auto& info) {
                           std::string name = ModelTypeName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------- model quality ----------

TEST(SeasonalModelTest, LearnsDiurnalShape) {
  auto model = CreateModel(ModelType::kSeasonal, TestConfig());
  ASSERT_TRUE(model->Fit(DiurnalSeries(4)).ok());
  // Peak near 6h (sin peak at quarter day), trough near 18h.
  const double peak = model->Predict(Days(5) + Hours(6)).value;
  const double trough = model->Predict(Days(5) + Hours(18)).value;
  EXPECT_GT(peak, 23.5);
  EXPECT_LT(trough, 16.5);
}

TEST(SeasonalArModelTest, BeatsPureSeasonalNearTerm) {
  const std::vector<Sample> history = DiurnalSeries(4, /*seed=*/21);
  // Hold out the last 2 hours.
  const size_t holdout = 2 * kHour / kPeriod;
  std::vector<Sample> train(history.begin(), history.end() - holdout);

  auto seasonal = CreateModel(ModelType::kSeasonal, TestConfig());
  auto seasonal_ar = CreateModel(ModelType::kSeasonalAr, TestConfig());
  ASSERT_TRUE(seasonal->Fit(train).ok());
  ASSERT_TRUE(seasonal_ar->Fit(train).ok());

  double se_seasonal = 0.0;
  double se_sar = 0.0;
  for (size_t i = history.size() - holdout; i < history.size(); ++i) {
    const double truth = history[i].value;
    const double e1 = seasonal->Predict(history[i].t).value - truth;
    const double e2 = seasonal_ar->Predict(history[i].t).value - truth;
    se_seasonal += e1 * e1;
    se_sar += e2 * e2;
  }
  // The AR residual carries the current weather offset forward; pure climatology
  // cannot.
  EXPECT_LT(se_sar, se_seasonal);
}

TEST(ArModelTest, ForecastRevertsToMean) {
  auto model = CreateModel(ModelType::kAr, TestConfig());
  const std::vector<Sample> history = DiurnalSeries();
  ASSERT_TRUE(model->Fit(history).ok());
  const Prediction far = model->Predict(history.back().t + Days(30));
  // Far beyond the forecast horizon: marginal distribution.
  const Prediction near = model->Predict(history.back().t + kPeriod);
  EXPECT_GT(far.stddev, near.stddev);
}

TEST(ArModelTest, UncertaintyGrowsWithHorizon) {
  auto model = CreateModel(ModelType::kAr, TestConfig());
  ASSERT_TRUE(model->Fit(DiurnalSeries()).ok());
  const SimTime t0 = Days(3);
  double prev = 0.0;
  for (int k = 1; k <= 256; k *= 4) {
    const double sd = model->Predict(t0 + k * kPeriod).stddev;
    EXPECT_GE(sd, prev);
    prev = sd;
  }
}

TEST(MarkovModelTest, TracksRegimeSwitching) {
  // Two-level square wave with sticky states.
  std::vector<Sample> history;
  Pcg32 rng(31);
  double level = 1.0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.01)) {
      level = level > 3.0 ? 1.0 : 5.0;
    }
    history.push_back(
        Sample{static_cast<SimTime>(i) * kPeriod, level + rng.Gaussian(0, 0.1)});
  }
  ModelConfig config = TestConfig();
  config.markov_states = 4;
  auto model = CreateModel(ModelType::kMarkov, config);
  ASSERT_TRUE(model->Fit(history).ok());
  // Anchored in the high regime, the near-term forecast stays high (sticky chain).
  model->OnAnchor(Sample{history.back().t + kPeriod, 5.0});
  const double soon = model->Predict(history.back().t + 3 * kPeriod).value;
  EXPECT_GT(soon, 3.5);
  // The long-run forecast approaches the overall mixture mean.
  const double far = model->Predict(history.back().t + Days(30)).value;
  EXPECT_GT(far, 1.0);
  EXPECT_LT(far, 5.0);
}

TEST(RegistryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DeserializeModel(std::vector<uint8_t>{}, TestConfig()).ok());
  EXPECT_FALSE(DeserializeModel(std::vector<uint8_t>{0xEE, 1, 2}, TestConfig()).ok());
}

TEST(RegistryTest, ModelParamsAreCompact) {
  // Wire size is sensor energy; keep the seasonal-AR params within a few frames.
  auto model = CreateModel(ModelType::kSeasonalAr, TestConfig());
  ASSERT_TRUE(model->Fit(DiurnalSeries()).ok());
  EXPECT_LT(model->Serialize().size(), 300u);
}

// ---------- spatial ----------

TEST(SpatialModelTest, ConditioningShrinksUncertainty) {
  // Three sensors: 0 and 1 strongly correlated, 2 independent.
  Pcg32 rng(41);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 4000; ++i) {
    const double shared = rng.Gaussian(20, 2);
    rows.push_back({shared + rng.Gaussian(0, 0.2), shared + rng.Gaussian(0, 0.2) + 1.0,
                    rng.Gaussian(10, 1)});
  }
  SpatialGaussianModel model;
  ASSERT_TRUE(model.Fit(rows).ok());
  EXPECT_GT(model.Correlation(0, 1), 0.97);
  EXPECT_LT(std::abs(model.Correlation(0, 2)), 0.1);

  auto marginal = model.Condition(0, {});
  auto conditioned = model.Condition(0, {{1, 24.0}});
  ASSERT_TRUE(marginal.ok());
  ASSERT_TRUE(conditioned.ok());
  EXPECT_LT(conditioned->stddev, 0.4 * marginal->stddev);
  // Sensor 1 at 24 -> shared ~ 23 -> sensor 0 ~ 23.
  EXPECT_NEAR(conditioned->value, 23.0, 0.5);
  // Conditioning on the independent sensor helps almost not at all.
  auto useless = model.Condition(0, {{2, 10.0}});
  ASSERT_TRUE(useless.ok());
  EXPECT_GT(useless->stddev, 0.9 * marginal->stddev);
}

TEST(SpatialModelTest, RejectsBadInput) {
  SpatialGaussianModel model;
  EXPECT_FALSE(model.Fit({}).ok());
  EXPECT_FALSE(model.Fit({{1.0}, {2.0}, {3.0}}).ok());  // single sensor
  EXPECT_FALSE(model.Condition(0, {}).ok());            // not fitted
}

}  // namespace
}  // namespace presto
