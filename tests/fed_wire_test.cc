// fed_wire tests: frame round-trips, the malformed-input suite (every corrupt
// header shape must come back as a clean Status — the parent orchestrator treats
// a PRESTO_CHECK in the decode path as a crashed worker, so decode must stay
// total on arbitrary bytes), the FedMail / cell-bitmap codecs, and the blocking
// FrameChannel over a real socketpair including both EOF flavors.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/fed_wire.h"
#include "src/util/ckpt.h"

namespace presto {
namespace {

std::vector<uint8_t> MustEncode(const FedFrame& frame) {
  auto encoded = EncodeFedFrame(frame);
  EXPECT_TRUE(encoded.ok()) << encoded.status().message();
  return *encoded;
}

// ---------- frame codec ----------

TEST(FedWireFrameTest, RoundTripsEveryFrameType) {
  for (uint8_t t = 0; t < kFedFrameTypeCount; ++t) {
    FedFrame frame;
    frame.type = static_cast<FedFrameType>(t);
    frame.payload = {t, 0xaa, 0x55};
    const std::vector<uint8_t> bytes = MustEncode(frame);
    auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->type, frame.type);
    EXPECT_EQ(decoded->payload, frame.payload);
  }
}

TEST(FedWireFrameTest, RoundTripsEmptyAndLargePayloads) {
  FedFrame empty;
  empty.type = FedFrameType::kStart;
  auto decoded = DecodeFedFrame(span<const uint8_t>(MustEncode(empty)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());

  FedFrame big;
  big.type = FedFrameType::kCkptSave;
  big.payload.resize(1 << 20);
  for (size_t i = 0; i < big.payload.size(); ++i) {
    big.payload[i] = static_cast<uint8_t>(i * 2654435761u);
  }
  auto round = DecodeFedFrame(span<const uint8_t>(MustEncode(big)));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->payload, big.payload);
}

TEST(FedWireMalformedTest, TruncatedHeader) {
  const std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  for (size_t cut = 0; cut < 10; ++cut) {
    auto decoded =
        DecodeFedFrame(span<const uint8_t>(bytes.data(), std::min(cut, bytes.size())));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(decoded.status().message(), "fed_wire: truncated frame header");
  }
}

TEST(FedWireMalformedTest, BadMagic) {
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[0] = 'X';
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(decoded.status().message(), "fed_wire: bad frame magic");
}

TEST(FedWireMalformedTest, UnsupportedVersion) {
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[4] = kFedWireVersion + 1;
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded.status().message(), "fed_wire: unsupported protocol version");
}

TEST(FedWireMalformedTest, UnknownFrameType) {
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[5] = kFedFrameTypeCount;
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "fed_wire: unknown frame type");
  bytes[5] = 0xff;
  EXPECT_FALSE(DecodeFedFrame(span<const uint8_t>(bytes)).ok());
}

TEST(FedWireMalformedTest, OversizedLengthPrefix) {
  // A corrupt length prefix far above the cap must be rejected *before* any
  // allocation sized from it.
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[6] = 0xff;
  bytes[7] = 0xff;
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(decoded.status().message(), "fed_wire: oversized frame length prefix");
}

TEST(FedWireMalformedTest, TruncatedAndTrailingPayload) {
  FedFrame frame;
  frame.type = FedFrameType::kStep;
  frame.payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> bytes = MustEncode(frame);
  auto truncated = DecodeFedFrame(span<const uint8_t>(bytes.data(), bytes.size() - 2));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().message(), "fed_wire: truncated frame payload");
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  auto extra = DecodeFedFrame(span<const uint8_t>(trailing));
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().message(), "fed_wire: trailing bytes after frame");
}

// ---------- FedMail + cell bitmap codecs ----------

TEST(FedWireCodecTest, FedMailRoundTrips) {
  FedMail mail;
  mail.source_cell = 3;
  mail.target_cell = 11;
  mail.time = Minutes(90) + Millis(250);
  mail.op = 2;
  mail.qid = (1ull << 40) + 17;
  mail.body = {0xde, 0xad, 0xbe, 0xef};
  ByteWriter w;
  CkptWrite(w, mail);
  ByteReader r{span<const uint8_t>(w.buffer())};
  FedMail back;
  ASSERT_TRUE(CkptRead(r, back).ok());
  EXPECT_EQ(back.source_cell, mail.source_cell);
  EXPECT_EQ(back.target_cell, mail.target_cell);
  EXPECT_EQ(back.time, mail.time);
  EXPECT_EQ(back.op, mail.op);
  EXPECT_EQ(back.qid, mail.qid);
  EXPECT_EQ(back.body, mail.body);
  EXPECT_EQ(r.remaining(), 0u);

  // Truncation anywhere inside the record is a clean error.
  for (size_t cut = 0; cut < w.buffer().size(); ++cut) {
    ByteReader short_reader{span<const uint8_t>(w.buffer().data(), cut)};
    FedMail scratch;
    EXPECT_FALSE(CkptRead(short_reader, scratch).ok()) << "cut=" << cut;
  }
}

TEST(FedWireCodecTest, CellBitmapRoundTripsAcrossWidths) {
  for (const size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{64},
                         size_t{65}}) {
    std::vector<uint8_t> flags(n, 0);
    for (size_t c = 0; c < n; c += 3) {
      flags[c] = 1;
    }
    ByteWriter w;
    WriteCellBitmap(w, flags);
    ByteReader r{span<const uint8_t>(w.buffer())};
    std::vector<uint8_t> back;
    ASSERT_TRUE(ReadCellBitmap(r, n, &back).ok()) << "n=" << n;
    EXPECT_EQ(back, flags) << "n=" << n;
  }
}

TEST(FedWireCodecTest, CellBitmapRejectsCountMismatch) {
  std::vector<uint8_t> flags(8, 1);
  ByteWriter w;
  WriteCellBitmap(w, flags);
  ByteReader r{span<const uint8_t>(w.buffer())};
  std::vector<uint8_t> back;
  const Status st = ReadCellBitmap(r, 9, &back);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "fed_wire: cell bitmap count mismatch");
}

// ---------- FrameChannel over a socketpair ----------

struct ChannelPair {
  ChannelPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = std::make_unique<FrameChannel>(fds[0]);
    b = std::make_unique<FrameChannel>(fds[1]);
  }
  std::unique_ptr<FrameChannel> a;
  std::unique_ptr<FrameChannel> b;
};

TEST(FrameChannelTest, SendRecvRoundTripsLargeFrames) {
  ChannelPair pair;
  FedFrame frame;
  frame.type = FedFrameType::kCkptLoad;
  frame.payload.resize(3 << 20);  // > socket buffer: exercises the write/read loops
  for (size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = static_cast<uint8_t>(i ^ (i >> 11));
  }
  // Sender on a second thread — a 3 MiB frame does not fit in the kernel buffer,
  // so a single-threaded send would deadlock against our own pending read.
  std::thread sender([&] {
    EXPECT_TRUE(pair.a->Send(frame).ok());
  });
  auto received = pair.b->Recv();
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().message();
  EXPECT_EQ(received->type, frame.type);
  EXPECT_EQ(received->payload, frame.payload);
}

TEST(FrameChannelTest, CallRoundTrips) {
  ChannelPair pair;
  std::thread echo([&] {
    auto request = pair.b->Recv();
    ASSERT_TRUE(request.ok());
    FedFrame reply;
    reply.type = FedFrameType::kAck;
    reply.payload = request->payload;
    EXPECT_TRUE(pair.b->Send(reply).ok());
  });
  FedFrame request;
  request.type = FedFrameType::kSnapshot;
  request.payload = {9, 8, 7};
  auto reply = pair.a->Call(request);
  echo.join();
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  EXPECT_EQ(reply->type, FedFrameType::kAck);
  EXPECT_EQ(reply->payload, request.payload);
}

TEST(FrameChannelTest, CleanEofBetweenFramesIsUnavailable) {
  // Peer exits between frames: the reader sees EOF before any header byte — the
  // "worker left cleanly" signal, distinct from a torn frame.
  ChannelPair pair;
  pair.a->Close();
  auto received = pair.b->Recv();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(received.status().message(), "fed_wire: peer closed the channel");
}

TEST(FrameChannelTest, MidFrameEofIsDataLoss) {
  // Peer dies mid-header: a torn frame must be reported as data loss, not as a
  // clean shutdown — the parent marks the worker crashed either way, but the
  // distinction matters for diagnostics.
  ChannelPair pair;
  const std::vector<uint8_t> whole = MustEncode(FedFrame{});
  ASSERT_EQ(::write(pair.a->fd(), whole.data(), 4), 4);
  pair.a->Close();
  auto received = pair.b->Recv();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(received.status().message(), "fed_wire: mid-frame EOF");
}

TEST(FrameChannelTest, CorruptHeaderOnTheWireIsRejected) {
  ChannelPair pair;
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[0] = '?';  // break the magic
  ASSERT_EQ(::write(pair.a->fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  auto received = pair.b->Recv();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().message(), "fed_wire: bad frame magic");
}

TEST(FrameChannelTest, ClosedChannelFailsBothDirections) {
  ChannelPair pair;
  pair.a->Close();
  EXPECT_EQ(pair.a->fd(), -1);
  EXPECT_FALSE(pair.a->Send(FedFrame{}).ok());
  EXPECT_FALSE(pair.a->Recv().ok());
}

}  // namespace
}  // namespace presto
