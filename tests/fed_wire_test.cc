// fed_wire tests: frame round-trips, the malformed-input suite (every corrupt
// header shape must come back as a clean Status — the parent orchestrator treats
// a PRESTO_CHECK in the decode path as a crashed worker, so decode must stay
// total on arbitrary bytes), the FedMail / cell-bitmap codecs, and the blocking
// FrameChannel over a real socketpair including both EOF flavors.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/fed_wire.h"
#include "src/util/ckpt.h"

namespace presto {
namespace {

std::vector<uint8_t> MustEncode(const FedFrame& frame) {
  auto encoded = EncodeFedFrame(frame);
  EXPECT_TRUE(encoded.ok()) << encoded.status().message();
  return *encoded;
}

// ---------- frame codec ----------

TEST(FedWireFrameTest, RoundTripsEveryFrameType) {
  for (uint8_t t = 0; t < kFedFrameTypeCount; ++t) {
    FedFrame frame;
    frame.type = static_cast<FedFrameType>(t);
    frame.payload = {t, 0xaa, 0x55};
    const std::vector<uint8_t> bytes = MustEncode(frame);
    auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->type, frame.type);
    EXPECT_EQ(decoded->payload, frame.payload);
  }
}

TEST(FedWireFrameTest, RoundTripsEmptyAndLargePayloads) {
  FedFrame empty;
  empty.type = FedFrameType::kStart;
  auto decoded = DecodeFedFrame(span<const uint8_t>(MustEncode(empty)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());

  FedFrame big;
  big.type = FedFrameType::kCkptSave;
  big.payload.resize(1 << 20);
  for (size_t i = 0; i < big.payload.size(); ++i) {
    big.payload[i] = static_cast<uint8_t>(i * 2654435761u);
  }
  auto round = DecodeFedFrame(span<const uint8_t>(MustEncode(big)));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->payload, big.payload);
}

TEST(FedWireMalformedTest, TruncatedHeader) {
  const std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  for (size_t cut = 0; cut < 10; ++cut) {
    auto decoded =
        DecodeFedFrame(span<const uint8_t>(bytes.data(), std::min(cut, bytes.size())));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(decoded.status().message(), "fed_wire: truncated frame header");
  }
}

TEST(FedWireMalformedTest, BadMagic) {
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[0] = 'X';
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(decoded.status().message(), "fed_wire: bad frame magic");
}

TEST(FedWireMalformedTest, UnsupportedVersion) {
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[4] = kFedWireVersion + 1;
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded.status().message(), "fed_wire: unsupported protocol version");
}

TEST(FedWireMalformedTest, UnknownFrameType) {
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[5] = kFedFrameTypeCount;
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "fed_wire: unknown frame type");
  bytes[5] = 0xff;
  EXPECT_FALSE(DecodeFedFrame(span<const uint8_t>(bytes)).ok());
}

TEST(FedWireMalformedTest, OversizedLengthPrefix) {
  // A corrupt length prefix far above the cap must be rejected *before* any
  // allocation sized from it.
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[6] = 0xff;
  bytes[7] = 0xff;
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  auto decoded = DecodeFedFrame(span<const uint8_t>(bytes));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(decoded.status().message(), "fed_wire: oversized frame length prefix");
}

TEST(FedWireMalformedTest, TruncatedAndTrailingPayload) {
  FedFrame frame;
  frame.type = FedFrameType::kStep;
  frame.payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> bytes = MustEncode(frame);
  auto truncated = DecodeFedFrame(span<const uint8_t>(bytes.data(), bytes.size() - 2));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().message(), "fed_wire: truncated frame payload");
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  auto extra = DecodeFedFrame(span<const uint8_t>(trailing));
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().message(), "fed_wire: trailing bytes after frame");
}

// ---------- FedMail + cell bitmap codecs ----------

TEST(FedWireCodecTest, FedMailRoundTrips) {
  FedMail mail;
  mail.source_cell = 3;
  mail.target_cell = 11;
  mail.time = Minutes(90) + Millis(250);
  mail.op = 2;
  mail.qid = (1ull << 40) + 17;
  mail.body = {0xde, 0xad, 0xbe, 0xef};
  ByteWriter w;
  CkptWrite(w, mail);
  ByteReader r{span<const uint8_t>(w.buffer())};
  FedMail back;
  ASSERT_TRUE(CkptRead(r, back).ok());
  EXPECT_EQ(back.source_cell, mail.source_cell);
  EXPECT_EQ(back.target_cell, mail.target_cell);
  EXPECT_EQ(back.time, mail.time);
  EXPECT_EQ(back.op, mail.op);
  EXPECT_EQ(back.qid, mail.qid);
  EXPECT_EQ(back.body, mail.body);
  EXPECT_EQ(r.remaining(), 0u);

  // Truncation anywhere inside the record is a clean error.
  for (size_t cut = 0; cut < w.buffer().size(); ++cut) {
    ByteReader short_reader{span<const uint8_t>(w.buffer().data(), cut)};
    FedMail scratch;
    EXPECT_FALSE(CkptRead(short_reader, scratch).ok()) << "cut=" << cut;
  }
}

TEST(FedWireCodecTest, CellBitmapRoundTripsAcrossWidths) {
  for (const size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{64},
                         size_t{65}}) {
    std::vector<uint8_t> flags(n, 0);
    for (size_t c = 0; c < n; c += 3) {
      flags[c] = 1;
    }
    ByteWriter w;
    WriteCellBitmap(w, flags);
    ByteReader r{span<const uint8_t>(w.buffer())};
    std::vector<uint8_t> back;
    ASSERT_TRUE(ReadCellBitmap(r, n, &back).ok()) << "n=" << n;
    EXPECT_EQ(back, flags) << "n=" << n;
  }
}

TEST(FedWireCodecTest, CellBitmapRejectsCountMismatch) {
  std::vector<uint8_t> flags(8, 1);
  ByteWriter w;
  WriteCellBitmap(w, flags);
  ByteReader r{span<const uint8_t>(w.buffer())};
  std::vector<uint8_t> back;
  const Status st = ReadCellBitmap(r, 9, &back);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "fed_wire: cell bitmap count mismatch");
}

// ---------- FrameChannel over a socketpair ----------

struct ChannelPair {
  ChannelPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = std::make_unique<FrameChannel>(fds[0]);
    b = std::make_unique<FrameChannel>(fds[1]);
  }
  std::unique_ptr<FrameChannel> a;
  std::unique_ptr<FrameChannel> b;
};

TEST(FrameChannelTest, SendRecvRoundTripsLargeFrames) {
  ChannelPair pair;
  FedFrame frame;
  frame.type = FedFrameType::kCkptLoad;
  frame.payload.resize(3 << 20);  // > socket buffer: exercises the write/read loops
  for (size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = static_cast<uint8_t>(i ^ (i >> 11));
  }
  // Sender on a second thread — a 3 MiB frame does not fit in the kernel buffer,
  // so a single-threaded send would deadlock against our own pending read.
  std::thread sender([&] {
    EXPECT_TRUE(pair.a->Send(frame).ok());
  });
  auto received = pair.b->Recv();
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().message();
  EXPECT_EQ(received->type, frame.type);
  EXPECT_EQ(received->payload, frame.payload);
}

TEST(FrameChannelTest, CallRoundTrips) {
  ChannelPair pair;
  std::thread echo([&] {
    auto request = pair.b->Recv();
    ASSERT_TRUE(request.ok());
    FedFrame reply;
    reply.type = FedFrameType::kAck;
    reply.payload = request->payload;
    EXPECT_TRUE(pair.b->Send(reply).ok());
  });
  FedFrame request;
  request.type = FedFrameType::kSnapshot;
  request.payload = {9, 8, 7};
  auto reply = pair.a->Call(request);
  echo.join();
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  EXPECT_EQ(reply->type, FedFrameType::kAck);
  EXPECT_EQ(reply->payload, request.payload);
}

TEST(FrameChannelTest, CleanEofBetweenFramesIsUnavailable) {
  // Peer exits between frames: the reader sees EOF before any header byte — the
  // "worker left cleanly" signal, distinct from a torn frame.
  ChannelPair pair;
  pair.a->Close();
  auto received = pair.b->Recv();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(received.status().message(), "fed_wire: peer closed the channel");
}

TEST(FrameChannelTest, MidFrameEofIsDataLoss) {
  // Peer dies mid-header: a torn frame must be reported as data loss, not as a
  // clean shutdown — the parent marks the worker crashed either way, but the
  // distinction matters for diagnostics.
  ChannelPair pair;
  const std::vector<uint8_t> whole = MustEncode(FedFrame{});
  ASSERT_EQ(::write(pair.a->fd(), whole.data(), 4), 4);
  pair.a->Close();
  auto received = pair.b->Recv();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(received.status().message(), "fed_wire: mid-frame EOF");
}

TEST(FrameChannelTest, CorruptHeaderOnTheWireIsRejected) {
  ChannelPair pair;
  std::vector<uint8_t> bytes = MustEncode(FedFrame{});
  bytes[0] = '?';  // break the magic
  ASSERT_EQ(::write(pair.a->fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  auto received = pair.b->Recv();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().message(), "fed_wire: bad frame magic");
}

TEST(FrameChannelTest, ClosedChannelFailsBothDirections) {
  ChannelPair pair;
  pair.a->Close();
  EXPECT_EQ(pair.a->fd(), -1);
  EXPECT_FALSE(pair.a->Send(FedFrame{}).ok());
  EXPECT_FALSE(pair.a->Recv().ok());
}

// ---------- hello handshake ----------

TEST(FedHelloTest, CodecRoundTripsAndValidates) {
  FedHello hello;
  hello.worker_index = 3;
  hello.num_workers = 7;
  const std::vector<uint8_t> bytes = EncodeFedHello(hello);
  FedHello back;
  ASSERT_TRUE(DecodeFedHello(span<const uint8_t>(bytes), &back).ok());
  EXPECT_EQ(back.version, kFedWireVersion);
  EXPECT_EQ(back.worker_index, 3);
  EXPECT_EQ(back.num_workers, 7);

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  FedHello scratch;
  Status st = DecodeFedHello(span<const uint8_t>(trailing), &scratch);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "fed_wire: trailing bytes after hello");

  FedHello bogus;
  bogus.worker_index = 4;
  bogus.num_workers = 4;  // index must be < count
  st = DecodeFedHello(span<const uint8_t>(EncodeFedHello(bogus)), &scratch);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "fed_wire: hello cell assignment out of range");

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DecodeFedHello(span<const uint8_t>(bytes.data(), cut), &scratch).ok())
        << "cut=" << cut;
  }
}

TEST(FedHelloTest, ClientAndServerAgree) {
  ChannelPair pair;
  std::thread server([&] {
    auto hello = FedHelloServer(*pair.b);
    ASSERT_TRUE(hello.ok()) << hello.status().message();
    EXPECT_EQ(hello->version, kFedWireVersion);
    EXPECT_EQ(hello->worker_index, 2);
    EXPECT_EQ(hello->num_workers, 5);
  });
  EXPECT_TRUE(FedHelloClient(*pair.a, 2, 5).ok());
  server.join();
}

TEST(FedHelloTest, FutureWorkerVersionIsATypedRefusal) {
  // A worker whose *frames* are current but whose hello advertises a future
  // protocol revision: the orchestrator must reject with kFailedPrecondition —
  // a typed skew refusal, not a parse error and not a hang.
  ChannelPair pair;
  std::thread fake_worker([&] {
    auto request = pair.b->Recv();
    ASSERT_TRUE(request.ok());
    FedHello reply;
    reply.version = kFedWireVersion + 1;
    reply.worker_index = 0;
    reply.num_workers = 1;
    FedFrame ack;
    ack.type = FedFrameType::kAck;
    ack.payload = EncodeFedHello(reply);
    EXPECT_TRUE(pair.b->Send(ack).ok());
  });
  const Status st = FedHelloClient(*pair.a, 0, 1);
  fake_worker.join();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.message(),
            "fed_wire: worker advertises an unsupported protocol version");
}

TEST(FedHelloTest, WrongAssignmentEchoIsATypedRefusal) {
  // A worker wired to the wrong endpoint in a placement map echoes somebody
  // else's assignment — that must fail at connect time, not at a barrier.
  ChannelPair pair;
  std::thread fake_worker([&] {
    auto request = pair.b->Recv();
    ASSERT_TRUE(request.ok());
    FedHello reply;
    reply.worker_index = 1;  // client asked for 0
    reply.num_workers = 2;
    FedFrame ack;
    ack.type = FedFrameType::kAck;
    ack.payload = EncodeFedHello(reply);
    EXPECT_TRUE(pair.b->Send(ack).ok());
  });
  const Status st = FedHelloClient(*pair.a, 0, 2);
  fake_worker.join();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.message(), "fed_wire: worker acknowledged a different cell assignment");
}

TEST(FedHelloTest, ServerRefusesANonHelloOpeningAndClientSeesWhy) {
  // A confused client that opens with a control frame gets a typed kError reply
  // carrying the server's refusal Status; both sides agree on the reason.
  ChannelPair pair;
  std::thread server([&] {
    auto hello = FedHelloServer(*pair.b);
    ASSERT_FALSE(hello.ok());
    EXPECT_EQ(hello.status().message(), "fed_wire: expected a hello handshake frame");
  });
  FedFrame wrong;
  wrong.type = FedFrameType::kStart;
  auto reply = pair.a->Call(wrong);
  server.join();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, FedFrameType::kError);
  ByteReader r{span<const uint8_t>(reply->payload)};
  Status refused = OkStatus();
  ASSERT_TRUE(CkptRead(r, refused).ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(refused.message(), "fed_wire: expected a hello handshake frame");
}

TEST(FedHelloTest, GarbageAckIsDataLoss) {
  ChannelPair pair;
  std::thread fake_worker([&] {
    auto request = pair.b->Recv();
    ASSERT_TRUE(request.ok());
    FedFrame ack;
    ack.type = FedFrameType::kAck;
    ack.payload = {0xff, 0xff, 0xff};  // not a hello
    EXPECT_TRUE(pair.b->Send(ack).ok());
  });
  const Status st = FedHelloClient(*pair.a, 0, 1);
  fake_worker.join();
  EXPECT_FALSE(st.ok());
}

// ---------- TCP transport ----------

Duration ElapsedSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TEST(FedWireTcpTest, ListenConnectAcceptRoundTripsFrames) {
  uint16_t port = 0;
  auto listen_fd = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().message();
  ASSERT_GT(port, 0);

  auto client_fd = TcpConnect("127.0.0.1", port, Seconds(5));
  ASSERT_TRUE(client_fd.ok()) << client_fd.status().message();
  auto server_fd = TcpAccept(*listen_fd, Seconds(5));
  ASSERT_TRUE(server_fd.ok()) << server_fd.status().message();

  FrameChannel client(*client_fd);
  FrameChannel server(*server_fd);
  FedFrame frame;
  frame.type = FedFrameType::kStep;
  frame.payload.resize(1 << 16);
  for (size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = static_cast<uint8_t>(i * 31u);
  }
  std::thread sender([&] { EXPECT_TRUE(client.Send(frame).ok()); });
  auto received = server.Recv();
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().message();
  EXPECT_EQ(received->payload, frame.payload);
  ::close(*listen_fd);
}

TEST(FedWireTcpTest, HostnameIsRejectedNotResolved) {
  auto fd = TcpConnect("localhost", 1, Millis(100));
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fd.status().message(), "fed_wire: endpoint host must be numeric IPv4");
}

TEST(FedWireTcpTest, DeadEndpointFailsFastAndNeverHangs) {
  // Grab an ephemeral port, then close the listener: connecting to it must fail
  // quickly (RST) — and in any case within the deadline, never hang.
  uint16_t port = 0;
  auto listen_fd = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok());
  ::close(*listen_fd);
  const auto start = std::chrono::steady_clock::now();
  auto fd = TcpConnect("127.0.0.1", port, Seconds(2));
  EXPECT_FALSE(fd.ok());
  EXPECT_LT(ElapsedSince(start), Seconds(10));
}

TEST(FedWireTcpTest, QuietListenerBoundsAccept) {
  uint16_t port = 0;
  auto listen_fd = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok());
  const auto start = std::chrono::steady_clock::now();
  auto fd = TcpAccept(*listen_fd, Millis(200));
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(fd.status().message(), "fed_wire: frame deadline expired");
  const Duration waited = ElapsedSince(start);
  EXPECT_GE(waited, Millis(150));
  EXPECT_LT(waited, Seconds(10));
  ::close(*listen_fd);
}

TEST(FedWireTcpTest, HalfOpenPeerIsBoundedByTheChannelDeadline) {
  // The peer completes the TCP handshake (kernel backlog) but never speaks: a
  // deadlined hello must give up with kDeadlineExceeded in bounded time instead
  // of wedging the orchestrator in recv().
  uint16_t port = 0;
  auto listen_fd = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok());
  auto client_fd = TcpConnect("127.0.0.1", port, Seconds(5));
  ASSERT_TRUE(client_fd.ok());
  FrameChannel channel(*client_fd);
  channel.SetDeadline(Millis(200));
  const auto start = std::chrono::steady_clock::now();
  const Status st = FedHelloClient(channel, 0, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(st.message(), "fed_wire: frame deadline expired");
  const Duration waited = ElapsedSince(start);
  EXPECT_GE(waited, Millis(150));
  EXPECT_LT(waited, Seconds(10));
  ::close(*listen_fd);
}

TEST(FedWireTcpTest, SlowLorisPartialHelloIsBoundedByTheDeadline) {
  // An attacker (or a wedged peer) trickles half a hello frame and stalls. The
  // worker-side handshake deadline must cut the connection loose in bounded
  // time — the accept loop depends on this to keep serving honest peers.
  uint16_t port = 0;
  auto listen_fd = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok());
  auto attacker_fd = TcpConnect("127.0.0.1", port, Seconds(5));
  ASSERT_TRUE(attacker_fd.ok());
  auto victim_fd = TcpAccept(*listen_fd, Seconds(5));
  ASSERT_TRUE(victim_fd.ok());

  FedFrame hello;
  hello.type = FedFrameType::kHello;
  hello.payload = EncodeFedHello(FedHello{});
  const std::vector<uint8_t> whole = MustEncode(hello);
  ASSERT_EQ(::write(*attacker_fd, whole.data(), 6), 6);  // header cut mid-way

  FrameChannel victim(*victim_fd);
  victim.SetDeadline(Millis(200));
  const auto start = std::chrono::steady_clock::now();
  auto result = FedHelloServer(victim);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.status().message(), "fed_wire: frame deadline expired");
  const Duration waited = ElapsedSince(start);
  EXPECT_GE(waited, Millis(150));
  EXPECT_LT(waited, Seconds(10));
  ::close(*attacker_fd);
  ::close(*listen_fd);
}

TEST(FedWireTcpTest, DeadlinedChannelStillRoundTripsLargeFrames) {
  // The deadline path flips the fd nonblocking and threads poll() through every
  // partial read/write — a frame larger than the socket buffers must still
  // round-trip intact when both sides keep up.
  uint16_t port = 0;
  auto listen_fd = TcpListen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok());
  auto client_fd = TcpConnect("127.0.0.1", port, Seconds(5));
  ASSERT_TRUE(client_fd.ok());
  auto server_fd = TcpAccept(*listen_fd, Seconds(5));
  ASSERT_TRUE(server_fd.ok());
  FrameChannel client(*client_fd);
  FrameChannel server(*server_fd);
  client.SetDeadline(Seconds(30));
  server.SetDeadline(Seconds(30));
  FedFrame frame;
  frame.type = FedFrameType::kCkptLoad;
  frame.payload.resize(3 << 20);
  for (size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = static_cast<uint8_t>(i ^ (i >> 9));
  }
  std::thread sender([&] { EXPECT_TRUE(client.Send(frame).ok()); });
  auto received = server.Recv();
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().message();
  EXPECT_EQ(received->payload, frame.payload);
  ::close(*listen_fd);
}

}  // namespace
}  // namespace presto
