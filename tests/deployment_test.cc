// Sharded multi-proxy deployment engine tests: shard-map assignment policies,
// failover re-routing to replicas (degraded service), batched message pipelines,
// pull coalescing, and deterministic replay of a multi-proxy run.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/shard_map.h"

namespace presto {
namespace {

// ---------- shard map ----------

TEST(ShardMapTest, GeographicPolicyAssignsContiguousBlocks) {
  ShardMap map(4, 32, ShardPolicy::kGeographic);
  for (int g = 0; g < 32; ++g) {
    EXPECT_EQ(map.OwnerOf(g), g / 8);
  }
  EXPECT_EQ(map.MinShardSize(), 8);
  EXPECT_EQ(map.MaxShardSize(), 8);
}

TEST(ShardMapTest, HashPolicyCoversEveryProxyAndStaysBalanced) {
  ShardMap map(8, 256, ShardPolicy::kHash);
  std::set<int> owners;
  int total = 0;
  for (int p = 0; p < 8; ++p) {
    total += static_cast<int>(map.SensorsOf(p).size());
    if (!map.SensorsOf(p).empty()) {
      owners.insert(p);
    }
  }
  EXPECT_EQ(total, 256);
  EXPECT_EQ(owners.size(), 8u) << "hash policy left a proxy empty";
  // A hashed spread of 256 over 8 shards should stay within a loose balance band.
  EXPECT_GE(map.MinShardSize(), 16);
  EXPECT_LE(map.MaxShardSize(), 64);
}

TEST(ShardMapTest, HashAssignmentIsStableAcrossInstances) {
  ShardMap a(4, 64, ShardPolicy::kHash);
  ShardMap b(4, 64, ShardPolicy::kHash);
  for (int g = 0; g < 64; ++g) {
    EXPECT_EQ(a.OwnerOf(g), b.OwnerOf(g));
  }
}

TEST(ShardMapTest, ReplicaRingWrapsAround) {
  ShardMap map(3, 9, ShardPolicy::kGeographic);
  EXPECT_EQ(map.ReplicaOf(0), 1);
  EXPECT_EQ(map.ReplicaOf(2), 0);
  ShardMap solo(1, 4, ShardPolicy::kGeographic);
  EXPECT_EQ(solo.ReplicaOf(0), 0);  // nowhere else to go
}

// ---------- sharded deployment ----------

TEST(ShardedDeploymentTest, ProxyOwnershipMatchesShardMap) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 8;
  config.shard_policy = ShardPolicy::kHash;
  config.seed = 301;
  Deployment deployment(config);

  for (int g = 0; g < deployment.total_sensors(); ++g) {
    const int owner = deployment.shard().OwnerOf(g);
    EXPECT_TRUE(deployment.proxy(owner).ManagesSensor(deployment.GlobalSensorId(g)));
  }
  int indexed = 0;
  for (int p = 0; p < 4; ++p) {
    indexed += static_cast<int>(deployment.proxy(p).sensors().size());
  }
  EXPECT_EQ(indexed, 32);
}

TEST(ShardedDeploymentTest, HashShardedQueriesRouteToOwner) {
  DeploymentConfig config;
  config.num_proxies = 3;
  config.sensors_per_proxy = 4;
  config.shard_policy = ShardPolicy::kHash;
  config.seed = 302;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  for (int g = 0; g < deployment.total_sensors(); ++g) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 2.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
    EXPECT_EQ(result.served_by, Deployment::ProxyId(deployment.shard().OwnerOf(g)));
  }
  EXPECT_EQ(deployment.store().stats().unroutable, 0u);
}

// ---------- failover re-routing ----------

TEST(ShardedDeploymentTest, KilledProxyFailsOverOnlyItsShard) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.seed = 303;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  deployment.KillProxy(0);
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    const int owner = deployment.shard().OwnerOf(g);
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 3.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    ASSERT_TRUE(result.answer.status.ok())
        << "sensor " << g << ": " << result.answer.status.ToString();
    if (owner == 0) {
      // Re-routed to the ring successor, served from replicated state.
      EXPECT_TRUE(result.used_replica);
      EXPECT_EQ(result.served_by, Deployment::ProxyId(deployment.shard().ReplicaOf(0)));
      EXPECT_NE(result.answer.source, AnswerSource::kSensorPull)
          << "replica must serve degraded (cache/extrapolation only)";
    } else {
      EXPECT_FALSE(result.used_replica) << "other shards must be unaffected";
      EXPECT_EQ(result.served_by, Deployment::ProxyId(owner));
    }
  }
  EXPECT_GT(deployment.proxy(deployment.shard().ReplicaOf(0)).stats().degraded_answers,
            0u);

  // Revival restores primary service.
  deployment.ReviveProxy(0);
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = deployment.GlobalSensorId(deployment.shard().SensorsOf(0).front());
  spec.tolerance = 3.0;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  ASSERT_TRUE(result.answer.status.ok());
  EXPECT_FALSE(result.used_replica);
  EXPECT_EQ(result.served_by, Deployment::ProxyId(0));
}

TEST(ShardedDeploymentTest, WithoutReplicationKilledShardIsUnavailable) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 2;
  config.enable_replication = false;
  config.seed = 304;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(6));

  deployment.KillProxy(0);
  QuerySpec spec;
  spec.sensor_id = Deployment::SensorId(0, 0);
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_EQ(result.answer.status.code(), StatusCode::kUnavailable);
}

// ---------- batched pipelines ----------

TEST(BatchingTest, SameDestinationMessagesCoalesceIntoOneTransaction) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.net.batch_epoch = Seconds(2);
  config.seed = 305;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  const NetStats& net = deployment.net().stats();
  EXPECT_GT(net.batch_flushes, 0u) << "no same-destination coalescing happened";
  EXPECT_GE(net.batched_messages, 2 * net.batch_flushes);

  // The batched fabric still answers queries correctly.
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = Deployment::SensorId(1, 2);
  spec.tolerance = 2.0;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
}

TEST(BatchingTest, ConcurrentQueriesShareOnePull) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 1;
  config.proxy_mode = ProxyMode::kAlwaysPull;  // every query needs the sensor
  config.seed = 306;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(3));

  const NodeId sensor = Deployment::SensorId(0, 0);
  int answered = 0;
  QueryAnswer first_answer;
  auto on_answer = [&](const QueryAnswer& answer) {
    ++answered;
    if (answered == 1) {
      first_answer = answer;
    } else {
      EXPECT_EQ(answer.value, first_answer.value) << "riders must see the pulled data";
    }
  };
  deployment.proxy(0).QueryNow(sensor, 1.0, Seconds(30), on_answer);
  deployment.proxy(0).QueryNow(sensor, 1.0, Seconds(30), on_answer);
  deployment.proxy(0).QueryNow(sensor, 1.0, Seconds(30), on_answer);
  deployment.RunUntil(deployment.sim().Now() + Minutes(15));

  EXPECT_EQ(answered, 3);
  ASSERT_TRUE(first_answer.status.ok()) << first_answer.status.ToString();
  EXPECT_EQ(deployment.proxy(0).stats().pulls, 1u) << "one radio transaction expected";
  EXPECT_EQ(deployment.proxy(0).stats().coalesced_pulls, 2u);
}

// ---------- deterministic replay ----------

// Runs a 4-proxy deployment through warmup, a query mix, and a failover, returning
// everything that should be bit-identical across replays of the same seed.
struct ReplayDigest {
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  double energy = 0.0;
  uint64_t messages_sent = 0;
  std::vector<double> answers;

  bool operator==(const ReplayDigest& other) const {
    return fingerprint == other.fingerprint && events == other.events &&
           energy == other.energy && messages_sent == other.messages_sent &&
           answers == other.answers;
  }
};

ReplayDigest RunReplay(uint64_t seed) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.shard_policy = ShardPolicy::kHash;
  config.enable_replication = true;
  config.net.batch_epoch = Seconds(1);
  config.seed = seed;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  ReplayDigest digest;
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 2.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    digest.answers.push_back(result.answer.status.ok() ? result.answer.value : -1e9);
  }
  deployment.KillProxy(2);
  for (int g : deployment.shard().SensorsOf(2)) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 3.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    digest.answers.push_back(result.answer.status.ok() ? result.answer.value : -1e9);
  }
  deployment.RunUntil(deployment.sim().Now() + Hours(1));

  digest.fingerprint = deployment.sim().fingerprint();
  digest.events = deployment.sim().events_executed();
  digest.energy = deployment.MeanSensorEnergy();
  digest.messages_sent = deployment.net().stats().messages_sent;
  return digest;
}

TEST(ReplayTest, FourProxyRunReplaysBitIdentically) {
  const ReplayDigest a = RunReplay(307);
  const ReplayDigest b = RunReplay(307);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(a == b) << "same seed must give bit-identical metrics";

  const ReplayDigest c = RunReplay(308);
  EXPECT_NE(a.fingerprint, c.fingerprint) << "different seed should diverge";
}

}  // namespace
}  // namespace presto
