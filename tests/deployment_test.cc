// Sharded multi-proxy deployment engine tests: shard-map assignment policies,
// K-way replica sets, failover re-routing with replica promotion, live sensor
// migration and load-aware rebalancing, batched message pipelines, pull coalescing,
// and deterministic replay of a multi-proxy run.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/shard_map.h"

namespace presto {
namespace {

// ---------- shard map ----------

TEST(ShardMapTest, GeographicPolicyAssignsContiguousBlocks) {
  ShardMap map(4, 32, ShardPolicy::kGeographic);
  for (int g = 0; g < 32; ++g) {
    EXPECT_EQ(map.OwnerOf(g), g / 8);
  }
  EXPECT_EQ(map.MinShardSize(), 8);
  EXPECT_EQ(map.MaxShardSize(), 8);
}

TEST(ShardMapTest, HashPolicyCoversEveryProxyAndStaysBalanced) {
  ShardMap map(8, 256, ShardPolicy::kHash);
  std::set<int> owners;
  int total = 0;
  for (int p = 0; p < 8; ++p) {
    total += static_cast<int>(map.SensorsOf(p).size());
    if (!map.SensorsOf(p).empty()) {
      owners.insert(p);
    }
  }
  EXPECT_EQ(total, 256);
  EXPECT_EQ(owners.size(), 8u) << "hash policy left a proxy empty";
  // A hashed spread of 256 over 8 shards should stay within a loose balance band.
  EXPECT_GE(map.MinShardSize(), 16);
  EXPECT_LE(map.MaxShardSize(), 64);
}

TEST(ShardMapTest, HashAssignmentIsStableAcrossInstances) {
  ShardMap a(4, 64, ShardPolicy::kHash);
  ShardMap b(4, 64, ShardPolicy::kHash);
  for (int g = 0; g < 64; ++g) {
    EXPECT_EQ(a.OwnerOf(g), b.OwnerOf(g));
  }
}

TEST(ShardMapTest, ReplicaRingWrapsAround) {
  ShardMap map(3, 9, ShardPolicy::kGeographic);
  EXPECT_EQ(map.ReplicaOf(0), 1);
  EXPECT_EQ(map.ReplicaOf(2), 0);
  ShardMap solo(1, 4, ShardPolicy::kGeographic);
  EXPECT_EQ(solo.ReplicaOf(0), 0);  // nowhere else to go
}

TEST(ShardMapTest, GeographicRemainderLeavesNoEmptyShards) {
  // Regression: the old ceil-block split (g / ceil(6/4) = g / 2) gave proxy 3
  // nothing at 6 sensors x 4 proxies. Balanced blocks differ by at most one.
  ShardMap map(4, 6, ShardPolicy::kGeographic);
  EXPECT_EQ(map.MinShardSize(), 1);
  EXPECT_EQ(map.MaxShardSize(), 2);
  EXPECT_EQ(map.OwnerOf(0), 0);
  EXPECT_EQ(map.OwnerOf(1), 0);
  EXPECT_EQ(map.OwnerOf(2), 1);
  EXPECT_EQ(map.OwnerOf(3), 1);
  EXPECT_EQ(map.OwnerOf(4), 2);
  EXPECT_EQ(map.OwnerOf(5), 3);

  ShardMap big(7, 30, ShardPolicy::kGeographic);  // 30 = 7*4 + 2
  EXPECT_EQ(big.MinShardSize(), 4);
  EXPECT_EQ(big.MaxShardSize(), 5);
  for (int g = 1; g < 30; ++g) {
    EXPECT_GE(big.OwnerOf(g), big.OwnerOf(g - 1)) << "blocks must stay contiguous";
  }
}

TEST(ShardMapTest, ReplicaSetsExcludeOwnerAndDedupe) {
  ShardMap map(4, 8, ShardPolicy::kGeographic, /*replication_factor=*/3);
  for (int p = 0; p < 4; ++p) {
    const std::vector<int>& set = map.ReplicaSetOf(p);
    ASSERT_EQ(set.size(), 2u);
    std::set<int> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size()) << "replica set has duplicates";
    EXPECT_EQ(unique.count(p), 0u) << "replica set contains its owner";
  }
  EXPECT_EQ(map.ReplicaOf(3), 0);  // head of the set still wraps the ring

  // Regression: a replication factor larger than the cluster clamps instead of
  // wrapping the ring back onto the owner (the PR-1 self-replica hazard).
  ShardMap clamped(2, 4, ShardPolicy::kGeographic, /*replication_factor=*/5);
  EXPECT_EQ(clamped.ReplicaSetOf(0), std::vector<int>({1}));
  EXPECT_EQ(clamped.ReplicaSetOf(1), std::vector<int>({0}));
  ShardMap solo(1, 4, ShardPolicy::kGeographic, /*replication_factor=*/3);
  EXPECT_TRUE(solo.ReplicaSetOf(0).empty());
}

TEST(ShardMapTest, ActingOwnerOverlayMaintainsServedByIndex) {
  ShardMap map(3, 9, ShardPolicy::kGeographic);  // contiguous shards of three
  EXPECT_EQ(map.ActingOwnerOf(0), 0);
  EXPECT_FALSE(map.InFailover(0));
  EXPECT_EQ(map.ServedBy(0), map.SensorsOf(0));

  const uint64_t before = map.version();
  EXPECT_TRUE(map.SetActingOwner(0, 1));
  EXPECT_EQ(map.ActingOwnerOf(0), 1);
  EXPECT_TRUE(map.InFailover(0));
  EXPECT_GT(map.version(), before);
  EXPECT_EQ(map.ServedBy(0), std::vector<int>({1, 2}));
  EXPECT_EQ(map.ServedBy(1), std::vector<int>({0, 3, 4, 5}))
      << "served-by index must stay sorted across overlay moves";
  EXPECT_EQ(map.OwnerOf(0), 0) << "home ownership is untouched by the overlay";
  EXPECT_EQ(map.SensorsOf(0).size(), 3u);
  EXPECT_FALSE(map.SetActingOwner(0, 1)) << "no-op overlay set must not bump version";

  // Passing the home owner clears the overlay (hand-back).
  EXPECT_TRUE(map.SetActingOwner(0, 0));
  EXPECT_FALSE(map.InFailover(0));
  EXPECT_EQ(map.ServedBy(0), map.SensorsOf(0));
  EXPECT_EQ(map.ServedBy(1), map.SensorsOf(1));
}

TEST(ShardMapTest, MigrateSensorMovesOwnershipAndBumpsVersion) {
  ShardMap map(2, 8, ShardPolicy::kGeographic);
  EXPECT_EQ(map.version(), 0u);
  EXPECT_TRUE(map.MigrateSensor(0, 1));
  EXPECT_EQ(map.OwnerOf(0), 1);
  EXPECT_EQ(map.version(), 1u);
  EXPECT_EQ(map.SensorsOf(0).size(), 3u);
  EXPECT_EQ(map.SensorsOf(1).size(), 5u);
  EXPECT_TRUE(std::is_sorted(map.SensorsOf(1).begin(), map.SensorsOf(1).end()));
  EXPECT_FALSE(map.MigrateSensor(0, 1)) << "no-op migration must not bump version";
  EXPECT_EQ(map.version(), 1u);
}

// ---------- sharded deployment ----------

TEST(ShardedDeploymentTest, ProxyOwnershipMatchesShardMap) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 8;
  config.shard_policy = ShardPolicy::kHash;
  config.seed = 301;
  Deployment deployment(config);

  for (int g = 0; g < deployment.total_sensors(); ++g) {
    const int owner = deployment.shard().OwnerOf(g);
    EXPECT_TRUE(deployment.proxy(owner).ManagesSensor(deployment.GlobalSensorId(g)));
  }
  int indexed = 0;
  for (int p = 0; p < 4; ++p) {
    indexed += static_cast<int>(deployment.proxy(p).sensors().size());
  }
  EXPECT_EQ(indexed, 32);
}

TEST(ShardedDeploymentTest, HashShardedQueriesRouteToOwner) {
  DeploymentConfig config;
  config.num_proxies = 3;
  config.sensors_per_proxy = 4;
  config.shard_policy = ShardPolicy::kHash;
  config.seed = 302;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  for (int g = 0; g < deployment.total_sensors(); ++g) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 2.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
    EXPECT_EQ(result.served_by, Deployment::ProxyId(deployment.shard().OwnerOf(g)));
  }
  EXPECT_EQ(deployment.store().stats().unroutable, 0u);
}

// ---------- failover re-routing ----------

TEST(ShardedDeploymentTest, KilledProxyFailsOverOnlyItsShard) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.seed = 303;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  deployment.KillProxy(0);
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    const int owner = deployment.shard().OwnerOf(g);
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 3.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    ASSERT_TRUE(result.answer.status.ok())
        << "sensor " << g << ": " << result.answer.status.ToString();
    if (owner == 0) {
      // Re-routed to the ring successor, served from replicated state.
      EXPECT_TRUE(result.used_replica);
      EXPECT_EQ(result.served_by, Deployment::ProxyId(deployment.shard().ReplicaOf(0)));
      EXPECT_NE(result.answer.source, AnswerSource::kSensorPull)
          << "replica must serve degraded (cache/extrapolation only)";
    } else {
      EXPECT_FALSE(result.used_replica) << "other shards must be unaffected";
      EXPECT_EQ(result.served_by, Deployment::ProxyId(owner));
    }
  }
  EXPECT_GT(deployment.proxy(deployment.shard().ReplicaOf(0)).stats().degraded_answers,
            0u);

  // Revival restores primary service.
  deployment.ReviveProxy(0);
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = deployment.GlobalSensorId(deployment.shard().SensorsOf(0).front());
  spec.tolerance = 3.0;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  ASSERT_TRUE(result.answer.status.ok());
  EXPECT_FALSE(result.used_replica);
  EXPECT_EQ(result.served_by, Deployment::ProxyId(0));
}

TEST(ShardedDeploymentTest, WithoutReplicationKilledShardIsUnavailable) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 2;
  config.enable_replication = false;
  config.seed = 304;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(6));

  deployment.KillProxy(0);
  QuerySpec spec;
  spec.sensor_id = Deployment::SensorId(0, 0);
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_EQ(result.answer.status.code(), StatusCode::kUnavailable);
}

// ---------- dynamic shard management ----------

QuerySpec NowSpec(NodeId sensor_id, double tolerance) {
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = sensor_id;
  spec.tolerance = tolerance;
  return spec;
}

TEST(DynamicShardTest, LiveMigrationReroutesQueriesAndTransfersState) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.seed = 310;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  const int g = 1;  // geographic: owned by proxy 0
  ASSERT_EQ(deployment.shard().OwnerOf(g), 0);
  const NodeId id = deployment.GlobalSensorId(g);

  deployment.MigrateSensor(g, 1);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));

  EXPECT_EQ(deployment.shard().OwnerOf(g), 1);
  EXPECT_EQ(deployment.shard().version(), 1u);
  EXPECT_EQ(deployment.shard_stats().migrations, 1u);
  EXPECT_TRUE(deployment.proxy(1).ManagesSensor(id));
  EXPECT_FALSE(deployment.proxy(1).IsReplicaFor(id)) << "new owner is not a standby";
  // With K=2 the old owner stays on as the new owner's ring replica.
  EXPECT_TRUE(deployment.proxy(0).IsReplicaFor(id));
  EXPECT_GE(deployment.proxy(0).stats().snapshots_sent, 1u) << "state must transfer";

  UnifiedQueryResult result = deployment.QueryAndWait(NowSpec(id, 2.0));
  ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
  EXPECT_EQ(result.served_by, Deployment::ProxyId(1));
  EXPECT_FALSE(result.used_replica);

  // Pushes re-target the new owner: its per-sensor load counter starts moving.
  const uint64_t before = deployment.proxy(1).SensorWindowLoad(id);
  deployment.RunUntil(deployment.sim().Now() + Hours(6));
  EXPECT_GT(deployment.proxy(1).SensorWindowLoad(id), before);
}

TEST(DynamicShardTest, DoubleProxyKillWithKTwoPromotesAndStaysAnswerable) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(5);
  config.seed = 311;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  // Kill two proxies whose shards fail over to disjoint replicas (0 -> 1, 2 -> 3).
  deployment.KillProxy(0);
  deployment.KillProxy(2);

  // Degraded window: the replica chain serves immediately, before promotion.
  {
    const int g = deployment.shard().SensorsOf(0).front();
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
    EXPECT_TRUE(result.used_replica);
    EXPECT_NE(result.answer.source, AnswerSource::kSensorPull);
  }

  // Past the promotion delay both orphaned shards have full owners again.
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  EXPECT_EQ(deployment.shard_stats().promotions, 4u);
  EXPECT_GE(deployment.proxy(1).stats().promotions, 2u);
  EXPECT_GE(deployment.proxy(3).stats().promotions, 2u);

  int failures = 0;
  for (int killed : {0, 2}) {
    for (int g : deployment.shard().SensorsOf(killed)) {
      EXPECT_EQ(deployment.ActingOwner(g), killed + 1);
      UnifiedQueryResult result =
          deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
      if (!result.answer.status.ok()) {
        ++failures;
        continue;
      }
      EXPECT_EQ(result.served_by, Deployment::ProxyId(killed + 1));
      EXPECT_FALSE(result.used_replica) << "promoted owner serves first-class";
    }
  }
  EXPECT_EQ(failures, 0) << "no failed queries on shards with a live replica";

  // Unaffected shards never noticed.
  for (int g : deployment.shard().SensorsOf(1)) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    ASSERT_TRUE(result.answer.status.ok());
    EXPECT_EQ(result.served_by, Deployment::ProxyId(1));
  }
}

TEST(DynamicShardTest, ReviveHandsOwnershipBackWithStateTransfer) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.promotion_delay = Seconds(5);
  config.seed = 312;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  deployment.KillProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  const int g = deployment.shard().SensorsOf(0).front();
  const NodeId id = deployment.GlobalSensorId(g);
  EXPECT_EQ(deployment.ActingOwner(g), 1);
  EXPECT_EQ(deployment.shard_stats().promotions, 2u);

  const uint64_t snapshots_before = deployment.proxy(1).stats().snapshots_sent;
  deployment.ReviveProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));

  EXPECT_EQ(deployment.ActingOwner(g), 0);
  EXPECT_EQ(deployment.shard_stats().handbacks, 2u);
  EXPECT_GE(deployment.proxy(1).stats().snapshots_sent, snapshots_before + 2)
      << "hand-back must ship cache/model state to the revived owner";
  EXPECT_GE(deployment.proxy(1).stats().demotions, 2u);
  EXPECT_TRUE(deployment.proxy(1).IsReplicaFor(id)) << "back to standby duty";

  UnifiedQueryResult result = deployment.QueryAndWait(NowSpec(id, 3.0));
  ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
  EXPECT_EQ(result.served_by, Deployment::ProxyId(0));
  EXPECT_FALSE(result.used_replica);
}

TEST(DynamicShardTest, ActingOwnerFailureAndRevivalsReconcileOwnership) {
  // Regression for two failover-sequence bugs: (a) an acting owner that is down when
  // the shard is handed back kept phantom full ownership forever (two proxies
  // managing the same sensor), and (b) a shard whose owner and replicas all died was
  // never re-promoted when a replica revived.
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.promotion_delay = Seconds(5);
  config.seed = 314;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  const int g0 = deployment.shard().SensorsOf(0).front();
  const int g1 = deployment.shard().SensorsOf(1).front();

  // Owner dies; the replica takes over shard 0.
  deployment.KillProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  ASSERT_EQ(deployment.ActingOwner(g0), 1);

  // The acting owner dies too: every copy of both shards is now dark.
  deployment.KillProxy(1);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));

  // Reviving proxy 0 takes shard 0 home AND rescues stranded shard 1 by promotion.
  deployment.ReviveProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  EXPECT_EQ(deployment.ActingOwner(g0), 0);
  EXPECT_EQ(deployment.ActingOwner(g1), 0)
      << "a revival must re-promote shards stranded with every replica down";
  UnifiedQueryResult rescued = deployment.QueryAndWait(
      NowSpec(deployment.GlobalSensorId(g1), 3.0));
  ASSERT_TRUE(rescued.answer.status.ok()) << rescued.answer.status.ToString();
  EXPECT_EQ(rescued.served_by, Deployment::ProxyId(0));

  // Reviving proxy 1 hands shard 1 back and demotes its stale shard-0 ownership.
  deployment.ReviveProxy(1);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  EXPECT_EQ(deployment.ActingOwner(g1), 1);
  EXPECT_TRUE(deployment.proxy(1).IsReplicaFor(deployment.GlobalSensorId(g0)))
      << "phantom full ownership from the old promotion must be demoted";
  UnifiedQueryResult home0 = deployment.QueryAndWait(
      NowSpec(deployment.GlobalSensorId(g0), 3.0));
  ASSERT_TRUE(home0.answer.status.ok());
  EXPECT_EQ(home0.served_by, Deployment::ProxyId(0));
  UnifiedQueryResult home1 = deployment.QueryAndWait(
      NowSpec(deployment.GlobalSensorId(g1), 3.0));
  ASSERT_TRUE(home1.answer.status.ok());
  EXPECT_EQ(home1.served_by, Deployment::ProxyId(1));
}

TEST(DynamicShardTest, RevivedStandbyIsReArmedAndCaughtUp) {
  // Regression: a replica that was down at promotion time was dropped from the
  // acting owner's replica targets and never re-added on revival, so a later
  // promotion would serve state frozen at its kill.
  DeploymentConfig config;
  config.num_proxies = 3;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.replication_factor = 3;  // shard 0 stands by on proxies 1 and 2
  config.promotion_delay = Seconds(5);
  config.seed = 315;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  const int g0 = deployment.shard().SensorsOf(0).front();
  deployment.KillProxy(0);
  deployment.KillProxy(2);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  ASSERT_EQ(deployment.ActingOwner(g0), 1) << "only live replica takes over";

  // Standby 2 revives: the acting owner must re-arm it as a target and ship a
  // catch-up snapshot for every sensor it stands by.
  const uint64_t snapshots_before = deployment.proxy(1).stats().snapshots_sent;
  deployment.ReviveProxy(2);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  EXPECT_GT(deployment.proxy(1).stats().snapshots_sent, snapshots_before)
      << "revived standby must receive a catch-up snapshot";

  // The refreshed standby can now carry the shard when the acting owner dies.
  deployment.KillProxy(1);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  EXPECT_EQ(deployment.ActingOwner(g0), 2);
  UnifiedQueryResult result = deployment.QueryAndWait(
      NowSpec(deployment.GlobalSensorId(g0), 3.0));
  ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
  EXPECT_EQ(result.served_by, Deployment::ProxyId(2));
}

TEST(DynamicShardTest, ReviveRescueDoesNotPreemptPromotionWindow) {
  // Regression: a revival elsewhere in the cluster used to rescue-promote every down
  // proxy's shards immediately, erasing the modeled failure-detection delay.
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.promotion_delay = Minutes(2);
  config.seed = 316;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  deployment.KillProxy(3);
  deployment.RunUntil(deployment.sim().Now() + Minutes(3));  // promoted to proxy 0
  const int g1 = deployment.shard().SensorsOf(1).front();
  deployment.KillProxy(1);  // detection window opens
  deployment.ReviveProxy(3);
  deployment.RunUntil(deployment.sim().Now() + Seconds(10));
  EXPECT_EQ(deployment.ActingOwner(g1), 1)
      << "rescue must not pre-empt an open promotion window";
  deployment.RunUntil(deployment.sim().Now() + Minutes(3));
  EXPECT_EQ(deployment.ActingOwner(g1), 2) << "scheduled promotion still fires";
}

TEST(DynamicShardTest, SecondFailureOfActingOwnerServesThroughPromotionWindow) {
  // Regression for the PR-2 known bug: failover chains were keyed by the *home*
  // proxy, so once a replica had been promoted to acting owner, killing *it* left
  // the adopted sensors unroutable until its own promotion event fired. Per-sensor
  // chains (plus promotion-time standby recruiting back up to K live copies) must
  // serve every query straight through that window.
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Minutes(2);
  config.seed = 317;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(2));

  deployment.KillProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(3));  // promotion fired
  const int g = deployment.shard().SensorsOf(0).front();
  const NodeId id = deployment.GlobalSensorId(g);
  ASSERT_EQ(deployment.ActingOwner(g), 1);
  // Promotion topped the chain back up to K=2 live copies: proxy 2 was recruited.
  EXPECT_TRUE(deployment.proxy(2).IsReplicaFor(id))
      << "promotion must recruit a fresh standby for the adopted shard";

  // Second failure: the acting owner dies. Inside ITS promotion window, queries on
  // the adopted shard must fall through the per-sensor chain to the recruit.
  deployment.KillProxy(1);
  for (int s : deployment.shard().SensorsOf(0)) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(s), 3.0));
    ASSERT_TRUE(result.answer.status.ok())
        << "promotion-window query failed: " << result.answer.status.ToString();
    EXPECT_TRUE(result.used_replica) << "window service is degraded, not dead";
    EXPECT_EQ(result.served_by, Deployment::ProxyId(2));
    EXPECT_NE(result.answer.source, AnswerSource::kSensorPull);
  }
  // The dead acting owner's own home shard rides its build-time standby meanwhile.
  for (int s : deployment.shard().SensorsOf(1)) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(s), 3.0));
    ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
    EXPECT_EQ(result.served_by, Deployment::ProxyId(2));
  }

  // Past the window, the recruit is promoted to first-class owner.
  deployment.RunUntil(deployment.sim().Now() + Minutes(3));
  EXPECT_EQ(deployment.ActingOwner(g), 2);
  UnifiedQueryResult result = deployment.QueryAndWait(NowSpec(id, 3.0));
  ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
  EXPECT_EQ(result.served_by, Deployment::ProxyId(2));
  EXPECT_FALSE(result.used_replica);
}

TEST(DynamicShardTest, ReviveRestoresHomeChainSoImmediateReKillFailsOver) {
  // Hand-back re-chaining: ReviveProxy must rebuild the per-sensor chains (home
  // first, home standbys behind it), not just the index entry, so a kill right
  // after the revive still fails over. Recruits outside the home replica topology
  // drop their stale state at hand-back.
  DeploymentConfig config;
  config.num_proxies = 3;
  config.sensors_per_proxy = 2;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(5);
  config.seed = 318;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  const int g = deployment.shard().SensorsOf(0).front();
  const NodeId id = deployment.GlobalSensorId(g);
  deployment.KillProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  ASSERT_EQ(deployment.ActingOwner(g), 1);
  EXPECT_TRUE(deployment.proxy(2).IsReplicaFor(id)) << "promotion recruited proxy 2";

  deployment.ReviveProxy(0);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  ASSERT_EQ(deployment.ActingOwner(g), 0);
  EXPECT_TRUE(deployment.proxy(1).IsReplicaFor(id)) << "home standby restored";
  EXPECT_FALSE(deployment.proxy(2).ManagesSensor(id))
      << "recruit outside the home replica set must drop its state at hand-back";

  // Immediate re-kill: inside the fresh promotion window the restored chain serves.
  deployment.KillProxy(0);
  for (int s : deployment.shard().SensorsOf(0)) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(s), 3.0));
    ASSERT_TRUE(result.answer.status.ok())
        << "kill-after-revive query failed: " << result.answer.status.ToString();
    EXPECT_TRUE(result.used_replica);
    EXPECT_EQ(result.served_by, Deployment::ProxyId(1));
  }
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));
  EXPECT_EQ(deployment.ActingOwner(g), 1) << "scheduled promotion still fires";
  UnifiedQueryResult result = deployment.QueryAndWait(NowSpec(id, 3.0));
  ASSERT_TRUE(result.answer.status.ok());
  EXPECT_EQ(result.served_by, Deployment::ProxyId(1));
  EXPECT_FALSE(result.used_replica);
}

TEST(DynamicShardTest, RebalancerDrainsOverloadedShard) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.enable_rebalancing = true;
  config.rebalance_period = Minutes(10);
  config.rebalance_max_moves = 2;
  config.seed = 313;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  // Skewed interactive load: hammer shard 0's sensors across several rebalance
  // windows; the sweep should migrate hot sensors off proxy 0.
  for (int round = 0; round < 6; ++round) {
    for (int rep = 0; rep < 8; ++rep) {
      for (int g = 0; g < 4; ++g) {  // geographic: initial shard 0
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
      }
    }
    deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(14), 3.0));
    deployment.RunUntil(deployment.sim().Now() + Minutes(11));
  }

  EXPECT_GT(deployment.shard_stats().rebalance_sweeps, 0u);
  EXPECT_GT(deployment.shard_stats().migrations, 0u);
  EXPECT_LT(deployment.shard().SensorsOf(0).size(), 4u)
      << "hot sensors should have moved off the overloaded proxy";
  EXPECT_GE(deployment.shard().MinShardSize(), 1);

  // Every sensor still answers, wherever it landed.
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    EXPECT_TRUE(result.answer.status.ok())
        << "sensor " << g << ": " << result.answer.status.ToString();
    EXPECT_EQ(result.served_by,
              Deployment::ProxyId(deployment.shard().OwnerOf(g)));
  }
  EXPECT_EQ(deployment.store().stats().unroutable, 0u);
}

TEST(DynamicShardTest, LptSweepConvergesMultiShardSkewInOneSweep) {
  // Three hot shards at once: the global LPT assignment must spread all of them
  // across every live proxy in a single sweep — the old busiest/calmest pairing
  // needed one sweep per pair.
  DeploymentConfig config;
  config.num_proxies = 6;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.enable_rebalancing = true;
  config.rebalance_period = Minutes(30);
  config.rebalance_max_moves = 24;  // let one sweep carry the whole plan
  config.seed = 319;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  // Run to just past a sweep boundary so each phase below sits in a fresh window.
  auto align = [&] {
    const SimTime next =
        (deployment.sim().Now() / config.rebalance_period + 1) *
        config.rebalance_period;
    deployment.RunUntil(next + Minutes(1));
  };
  // Hammer every sensor of (geographic) shards 0-2: g 0..11 are the hot set.
  auto hammer = [&] {
    for (int rep = 0; rep < 12; ++rep) {
      for (int g = 0; g < 12; ++g) {
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
      }
    }
  };

  align();
  const uint64_t migrations_before = deployment.shard_stats().migrations;
  hammer();
  const uint64_t sweeps_before = deployment.shard_stats().rebalance_sweeps;
  align();  // exactly the one sweep that saw the skewed window fires here
  EXPECT_EQ(deployment.shard_stats().rebalance_sweeps, sweeps_before + 1);
  EXPECT_GT(deployment.shard_stats().migrations, migrations_before)
      << "the sweep must act on a three-shard skew";

  // A fresh window under the same skew measures the re-packed layout.
  hammer();
  uint64_t max_load = 0;
  uint64_t min_load = ~0ull;
  for (int p = 0; p < config.num_proxies; ++p) {
    const uint64_t load = deployment.ProxyWindowLoad(p);
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  EXPECT_LE(static_cast<double>(max_load),
            2.0 * static_cast<double>(std::max<uint64_t>(min_load, 1)))
      << "one LPT sweep must spread three hot shards across all proxies";
  EXPECT_EQ(deployment.shard_stats().rebalance_sweeps, sweeps_before + 1)
      << "measurement window must not have been swept mid-flight";

  // Every sensor still answers, wherever the re-pack landed it.
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    EXPECT_TRUE(result.answer.status.ok())
        << "sensor " << g << ": " << result.answer.status.ToString();
  }
  EXPECT_EQ(deployment.store().stats().unroutable, 0u);
}

TEST(DynamicShardTest, RebalancerRespectsAntiThrashFloor) {
  // The LPT sweep still honours rebalance_min_load: below the floor, even a
  // grossly skewed window moves nothing.
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.enable_rebalancing = true;
  config.rebalance_period = Minutes(30);
  config.rebalance_min_load = 1u << 20;  // unreachable floor
  config.seed = 320;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  for (int rep = 0; rep < 8; ++rep) {
    for (int g = 0; g < 4; ++g) {  // geographic: shard 0 is the hot set
      deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    }
  }
  deployment.RunUntil(deployment.sim().Now() + Minutes(31));
  EXPECT_GT(deployment.shard_stats().rebalance_sweeps, 0u);
  EXPECT_EQ(deployment.shard_stats().migrations, 0u)
      << "below the anti-thrash floor the sweep must not migrate";
}

// ---------- batched pipelines ----------

TEST(BatchingTest, SameDestinationMessagesCoalesceIntoOneTransaction) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.net.batch_epoch = Seconds(2);
  config.seed = 305;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  const NetStats& net = deployment.net().stats();
  EXPECT_GT(net.batch_flushes, 0u) << "no same-destination coalescing happened";
  EXPECT_GE(net.batched_messages, 2 * net.batch_flushes);

  // The batched fabric still answers queries correctly.
  QuerySpec spec;
  spec.type = QueryType::kNow;
  spec.sensor_id = Deployment::SensorId(1, 2);
  spec.tolerance = 2.0;
  UnifiedQueryResult result = deployment.QueryAndWait(spec);
  EXPECT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
}

TEST(BatchingTest, ConcurrentQueriesShareOnePull) {
  DeploymentConfig config;
  config.num_proxies = 1;
  config.sensors_per_proxy = 1;
  config.proxy_mode = ProxyMode::kAlwaysPull;  // every query needs the sensor
  config.seed = 306;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(3));

  const NodeId sensor = Deployment::SensorId(0, 0);
  int answered = 0;
  QueryAnswer first_answer;
  auto on_answer = [&](const QueryAnswer& answer) {
    ++answered;
    if (answered == 1) {
      first_answer = answer;
    } else {
      EXPECT_EQ(answer.value, first_answer.value) << "riders must see the pulled data";
    }
  };
  deployment.proxy(0).QueryNow(sensor, 1.0, Seconds(30), on_answer);
  deployment.proxy(0).QueryNow(sensor, 1.0, Seconds(30), on_answer);
  deployment.proxy(0).QueryNow(sensor, 1.0, Seconds(30), on_answer);
  deployment.RunUntil(deployment.sim().Now() + Minutes(15));

  EXPECT_EQ(answered, 3);
  ASSERT_TRUE(first_answer.status.ok()) << first_answer.status.ToString();
  EXPECT_EQ(deployment.proxy(0).stats().pulls, 1u) << "one radio transaction expected";
  EXPECT_EQ(deployment.proxy(0).stats().coalesced_pulls, 2u);
}

// ---------- deterministic replay ----------

// Runs a 4-proxy deployment through warmup, a query mix, and a failover, returning
// everything that should be bit-identical across replays of the same seed.
struct ReplayDigest {
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  double energy = 0.0;
  uint64_t messages_sent = 0;
  std::vector<double> answers;

  bool operator==(const ReplayDigest& other) const {
    return fingerprint == other.fingerprint && events == other.events &&
           energy == other.energy && messages_sent == other.messages_sent &&
           answers == other.answers;
  }
};

ReplayDigest RunReplay(uint64_t seed) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.shard_policy = ShardPolicy::kHash;
  config.enable_replication = true;
  config.net.batch_epoch = Seconds(1);
  config.seed = seed;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  ReplayDigest digest;
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 2.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    digest.answers.push_back(result.answer.status.ok() ? result.answer.value : -1e9);
  }
  deployment.KillProxy(2);
  for (int g : deployment.shard().SensorsOf(2)) {
    QuerySpec spec;
    spec.type = QueryType::kNow;
    spec.sensor_id = deployment.GlobalSensorId(g);
    spec.tolerance = 3.0;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    digest.answers.push_back(result.answer.status.ok() ? result.answer.value : -1e9);
  }
  deployment.RunUntil(deployment.sim().Now() + Hours(1));

  digest.fingerprint = deployment.sim().fingerprint();
  digest.events = deployment.sim().events_executed();
  digest.energy = deployment.MeanSensorEnergy();
  digest.messages_sent = deployment.net().stats().messages_sent;
  return digest;
}

// Migration determinism: mid-run migrations, a kill/promotion cycle, a revive
// hand-back, and a rebalancer sweep must all execute as simulator events, so the
// same seed replays to the same fingerprint.
ReplayDigest RunMigrationReplay(uint64_t seed) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.shard_policy = ShardPolicy::kHash;
  config.enable_replication = true;
  config.replication_factor = 3;
  config.promotion_delay = Seconds(10);
  config.enable_rebalancing = true;
  config.rebalance_period = Hours(2);
  config.net.batch_epoch = Seconds(1);
  config.seed = seed;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  deployment.MigrateSensor(0, deployment.shard().OwnerOf(0) == 3 ? 1 : 3);
  deployment.MigrateSensor(5, deployment.shard().OwnerOf(5) == 2 ? 0 : 2);
  deployment.RunUntil(deployment.sim().Now() + Minutes(5));

  ReplayDigest digest;
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 2.0));
    digest.answers.push_back(result.answer.status.ok() ? result.answer.value : -1e9);
  }
  deployment.KillProxy(1);
  deployment.RunUntil(deployment.sim().Now() + Minutes(1));  // past promotion
  deployment.ReviveProxy(1);
  deployment.RunUntil(deployment.sim().Now() + Hours(3));    // hand-back + a sweep

  digest.fingerprint = deployment.sim().fingerprint();
  digest.events = deployment.sim().events_executed();
  digest.energy = deployment.MeanSensorEnergy();
  digest.messages_sent = deployment.net().stats().messages_sent;
  return digest;
}

TEST(ReplayTest, MidRunMigrationsReplayBitIdentically) {
  const ReplayDigest a = RunMigrationReplay(309);
  const ReplayDigest b = RunMigrationReplay(309);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(a == b) << "same seed + same migrations must be bit-identical";
}

TEST(ReplayTest, FourProxyRunReplaysBitIdentically) {
  const ReplayDigest a = RunReplay(307);
  const ReplayDigest b = RunReplay(307);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(a == b) << "same seed must give bit-identical metrics";

  const ReplayDigest c = RunReplay(308);
  EXPECT_NE(a.fingerprint, c.fingerprint) << "different seed should diverge";
}

// ---------- parallel shard-lane engine ----------

// A full deployment scenario on the lane engine: warmup, population-wide queries, a
// kill (degraded + promoted probes), a revive hand-back, and a live migration. The
// digest must be bit-identical for any worker count — that is the engine's contract.
ReplayDigest RunLaneEngineScenario(int threads) {
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 8;
  config.enable_replication = true;
  config.replication_factor = 2;
  config.promotion_delay = Seconds(10);
  config.lane_engine = true;
  config.sim_threads = threads;
  config.sim_epoch = Seconds(2);
  config.net.batch_epoch = Seconds(1);  // exercise per-lane coalescing windows
  config.seed = 331;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(8));

  ReplayDigest digest;
  auto probe = [&](int g) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    digest.answers.push_back(result.answer.status.ok() ? result.answer.value : -1e9);
  };
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    probe(g);
  }
  deployment.KillProxy(1);
  for (int g : deployment.shard().SensorsOf(1)) {
    probe(g);  // degraded window: served through the failover chain
  }
  deployment.RunUntil(deployment.sim().Now() + Seconds(30));  // past promotion
  for (int g : deployment.shard().SensorsOf(1)) {
    probe(g);
  }
  deployment.ReviveProxy(1);
  deployment.RunUntil(deployment.sim().Now() + Minutes(10));
  deployment.MigrateSensor(0, deployment.shard().OwnerOf(0) == 3 ? 2 : 3);
  deployment.RunUntil(deployment.sim().Now() + Minutes(5));
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    probe(g);
  }

  digest.fingerprint = deployment.sim().fingerprint();
  digest.events = deployment.sim().events_executed();
  digest.energy = deployment.MeanSensorEnergy();
  digest.messages_sent = deployment.net().stats().messages_sent;
  return digest;
}

TEST(LaneEngineDeploymentTest, DigestIdenticalAcrossWorkerCounts) {
  const ReplayDigest one = RunLaneEngineScenario(1);
  const ReplayDigest two = RunLaneEngineScenario(2);
  const ReplayDigest eight = RunLaneEngineScenario(8);
  EXPECT_EQ(one.fingerprint, two.fingerprint);
  EXPECT_EQ(one.fingerprint, eight.fingerprint);
  EXPECT_TRUE(one == two) << "worker count must not change any observable";
  EXPECT_TRUE(one == eight) << "worker count must not change any observable";
  // And the threaded run replays bit-identically against itself.
  const ReplayDigest again = RunLaneEngineScenario(8);
  EXPECT_EQ(eight.fingerprint, again.fingerprint);
  EXPECT_TRUE(eight == again);
}

// ---------- barrier-time lane re-binding on migration ----------

TEST(LaneEngineDeploymentTest, MigrationRebindsSensorLaneAndDropsCrossLaneSends) {
  auto run = [](bool rebind, int* lane_after, uint64_t* cross_after) {
    DeploymentConfig config;
    config.num_proxies = 2;
    config.sensors_per_proxy = 4;
    config.lane_engine = true;
    config.sim_threads = 2;
    config.sim_epoch = Seconds(2);
    config.lane_rebind = rebind;
    config.seed = 353;
    Deployment deployment(config);
    deployment.Start();
    deployment.RunUntil(Hours(2));

    const int g = 1;  // geographic: owned by proxy 0, so home lane 0
    const NodeId id = deployment.GlobalSensorId(g);
    EXPECT_EQ(deployment.net().NodeLane(id), 0);

    deployment.MigrateSensor(g, 1);
    // Lane membership changes at the migration barrier; give it one epoch to land.
    deployment.RunUntil(deployment.sim().Now() + config.sim_epoch);
    *lane_after = deployment.net().NodeLane(id);

    // From here on, count the migrated sensor's cross-lane radio sends. Re-bound,
    // its pushes execute in the acting owner's own lane (no LPL worst-case preamble
    // tax); pinned to the stale home lane, every push stays cross-lane forever.
    const uint64_t before = deployment.net().node_stats(id).cross_lane_sends;
    deployment.RunUntil(deployment.sim().Now() + Hours(4));
    *cross_after = deployment.net().node_stats(id).cross_lane_sends - before;
    const uint64_t pushes = deployment.sensor(0, g).stats().pushes;
    EXPECT_GT(pushes, 0u) << "scenario must actually exercise the push path";
  };

  int lane_rebound = -1;
  int lane_pinned = -1;
  uint64_t cross_rebound = 0;
  uint64_t cross_pinned = 0;
  run(/*rebind=*/true, &lane_rebound, &cross_rebound);
  run(/*rebind=*/false, &lane_pinned, &cross_pinned);
  EXPECT_EQ(lane_rebound, 1) << "migrated sensor must re-home to the new owner's lane";
  EXPECT_EQ(lane_pinned, 0) << "with re-binding off, the PR-4 pinning must persist";
  EXPECT_EQ(cross_rebound, 0u)
      << "after one epoch a re-bound sensor's sends must stay in-lane";
  EXPECT_GT(cross_pinned, 0u)
      << "the pinned baseline must show the cross-lane tax the re-bind removes";
}

// ---------- archive-backed backfill on promotion ----------

TEST(BackfillTest, PromotionBackfillsArchiveGapsIntoCache) {
  // Model-driven push keeps the replicated cache sparse (suppressed samples never
  // leave the sensor), so a freshly promoted standby holds holes across its serving
  // window. With backfill on, promotion repairs the window from the sensor's flash
  // archive in the background: a PAST query then answers from cache; without it, the
  // same query has to pull on demand.
  auto run = [](bool backfill, AnswerSource* source, uint64_t* backfill_pulls) {
    DeploymentConfig config;
    config.num_proxies = 2;
    config.sensors_per_proxy = 2;
    config.enable_replication = true;
    config.replication_factor = 2;
    config.promotion_delay = Seconds(10);
    config.model_tolerance = 2.0;  // sparse pushes → real cache holes
    config.promotion_backfill = backfill;
    config.seed = 337;
    Deployment deployment(config);
    deployment.Start();
    deployment.RunUntil(Hours(10));

    deployment.KillProxy(0);
    // Promotion fires at +10 s; give the background archive pull time to complete.
    deployment.RunUntil(deployment.sim().Now() + Minutes(3));
    EXPECT_EQ(deployment.ActingOwner(0), 1);
    *backfill_pulls = deployment.proxy(1).stats().backfill_pulls;

    // A range well inside the backfill horizon (handoff_history = 4 h). The tiny
    // tolerance defeats model extrapolation, so the answer provenance exposes
    // whether the cache was repaired.
    const SimTime now = deployment.sim().Now();
    QuerySpec spec;
    spec.type = QueryType::kPast;
    spec.sensor_id = deployment.GlobalSensorId(0);
    spec.range = TimeInterval{now - Hours(3), now - Hours(2)};
    spec.tolerance = 0.01;
    UnifiedQueryResult result = deployment.QueryAndWait(spec);
    ASSERT_TRUE(result.answer.status.ok()) << result.answer.status.ToString();
    EXPECT_FALSE(result.answer.samples.empty());
    *source = result.answer.source;
  };

  AnswerSource with_backfill = AnswerSource::kFailed;
  AnswerSource without_backfill = AnswerSource::kFailed;
  uint64_t pulls_on = 0;
  uint64_t pulls_off = 0;
  run(true, &with_backfill, &pulls_on);
  run(false, &without_backfill, &pulls_off);
  EXPECT_GE(pulls_on, 1u) << "promotion must issue a background archive pull";
  EXPECT_EQ(pulls_off, 0u);
  EXPECT_EQ(with_backfill, AnswerSource::kCacheHit)
      << "backfilled window must serve from cache";
  EXPECT_EQ(without_backfill, AnswerSource::kSensorPull)
      << "without backfill the promoted owner still degrades to per-query pulls";
}

// ---------- rebalancer knobs ----------

TEST(DynamicShardTest, RebalanceKnobsStillConverge) {
  // alpha = 1 (no smoothing) with the sticky rule off is the most trigger-happy
  // setting: a pure LPT re-pack against each raw window. It must still drain the hot
  // shard, never empty a shard, and keep every sensor answerable.
  DeploymentConfig config;
  config.num_proxies = 4;
  config.sensors_per_proxy = 4;
  config.enable_replication = true;
  config.enable_rebalancing = true;
  config.rebalance_period = Minutes(10);
  config.rebalance_max_moves = 2;
  config.rebalance_ema_alpha = 1.0;
  config.rebalance_sticky = false;
  config.seed = 341;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Days(1));

  for (int round = 0; round < 6; ++round) {
    for (int rep = 0; rep < 8; ++rep) {
      for (int g = 0; g < 4; ++g) {  // geographic: initial shard 0
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
      }
    }
    deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(14), 3.0));
    deployment.RunUntil(deployment.sim().Now() + Minutes(11));
  }

  EXPECT_GT(deployment.shard_stats().migrations, 0u);
  EXPECT_LT(deployment.shard().SensorsOf(0).size(), 4u);
  EXPECT_GE(deployment.shard().MinShardSize(), 1);
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    UnifiedQueryResult result =
        deployment.QueryAndWait(NowSpec(deployment.GlobalSensorId(g), 3.0));
    EXPECT_TRUE(result.answer.status.ok())
        << "sensor " << g << ": " << result.answer.status.ToString();
  }
  EXPECT_EQ(deployment.store().stats().unroutable, 0u);
}

// ---------- external query entry (QueryAsync + in-sim driver) ----------

TEST(ExternalQueryTest, QueryAsyncCompletesOnControlContextWithoutHostStepping) {
  DeploymentConfig config;
  config.num_proxies = 2;
  config.sensors_per_proxy = 4;
  config.seed = 351;
  Deployment deployment(config);
  deployment.Start();
  deployment.RunUntil(Hours(2));

  // A batch of async queries issued up front, then one plain RunUntil: no per-query
  // host loop. Every completion must arrive in control context.
  int completed = 0;
  int ok = 0;
  for (int g = 0; g < deployment.total_sensors(); ++g) {
    deployment.QueryAsync(
        NowSpec(deployment.GlobalSensorId(g), 3.0),
        [&deployment, &completed, &ok](const UnifiedQueryResult& result) {
          EXPECT_EQ(deployment.sim().CurrentLane(), Simulator::kLaneControl);
          ++completed;
          ok += result.answer.status.ok() ? 1 : 0;
          EXPECT_GE(result.completed_at, result.issued_at);
        });
  }
  deployment.RunUntil(deployment.sim().Now() + Minutes(5));
  EXPECT_EQ(completed, deployment.total_sensors());
  EXPECT_EQ(ok, deployment.total_sensors());
}

TEST(ExternalQueryTest, AttachedDriverCarriesAWorkloadInOneRunUntil) {
  auto run = [](int threads) {
    DeploymentConfig config;
    config.num_proxies = 4;
    config.sensors_per_proxy = 4;
    config.lane_engine = true;
    config.sim_threads = threads;
    config.sim_epoch = Millis(500);
    config.seed = 353;
    Deployment deployment(config);
    deployment.Start();
    deployment.RunUntil(Hours(1));

    QueryDriverParams params;
    params.mix.queries_per_hour = 720.0;  // one every 5 s
    params.mix.num_sensors = 0;           // whole population
    params.mix.past_fraction = 0.25;
    params.mix.mean_past_age = Minutes(15);
    params.mix.max_past_age = Minutes(30);
    params.mix.min_tolerance = 2.0;
    params.mix.max_tolerance = 3.0;
    params.mix.seed = 354;
    QueryDriver& driver = deployment.AttachQueryDriver(params);
    driver.Start(Minutes(20));
    deployment.RunUntil(deployment.sim().Now() + Minutes(30));
    return std::make_tuple(driver.stats().issued, driver.stats().failed,
                           driver.stats().latency.Hash(),
                           deployment.sim().fingerprint());
  };
  const auto one = run(1);
  EXPECT_GT(std::get<0>(one), 200u);
  EXPECT_EQ(std::get<1>(one), 0u) << "healthy deployment must answer every query";
  const auto four = run(4);
  EXPECT_EQ(std::get<2>(one), std::get<2>(four))
      << "driver histogram must not depend on the worker count";
  EXPECT_EQ(std::get<3>(one), std::get<3>(four))
      << "fingerprint must not depend on the worker count";
}

}  // namespace
}  // namespace presto
