// Tests for the distributed-index layer: skip graph (vs std::map ground truth),
// regression time sync, and order-preserving temporal merge.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/index/skip_graph.h"
#include "src/index/temporal_merge.h"
#include "src/index/time_sync.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace presto {
namespace {

// ---------- SkipGraph ----------

TEST(SkipGraphTest, BasicInsertSearch) {
  SkipGraph graph(1);
  graph.Insert(10, 100);
  graph.Insert(20, 200);
  graph.Insert(5, 50);
  EXPECT_EQ(graph.size(), 3u);
  EXPECT_TRUE(graph.CheckInvariants());

  auto hit = graph.Search(20);
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.value, 200u);
  auto miss = graph.Search(15);
  EXPECT_FALSE(miss.found);
  EXPECT_EQ(miss.key, 10u);  // floor
}

TEST(SkipGraphTest, FloorSemantics) {
  SkipGraph graph(2);
  graph.Insert(100, 1);
  graph.Insert(200, 2);
  EXPECT_FALSE(graph.SearchFloor(50).found);
  EXPECT_EQ(graph.SearchFloor(150).key, 100u);
  EXPECT_EQ(graph.SearchFloor(200).key, 200u);
  EXPECT_EQ(graph.SearchFloor(999).key, 200u);
}

TEST(SkipGraphTest, InsertOverwrites) {
  SkipGraph graph(3);
  graph.Insert(7, 1);
  graph.Insert(7, 2);
  EXPECT_EQ(graph.size(), 1u);
  EXPECT_EQ(graph.Search(7).value, 2u);
}

TEST(SkipGraphTest, EraseUnlinksAllLevels) {
  SkipGraph graph(4);
  for (uint64_t k = 0; k < 200; ++k) {
    graph.Insert(k * 3, k);
  }
  for (uint64_t k = 0; k < 200; k += 2) {
    EXPECT_TRUE(graph.Erase(k * 3));
  }
  EXPECT_FALSE(graph.Erase(999999));
  EXPECT_TRUE(graph.CheckInvariants());
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(graph.Search(k * 3).found, k % 2 == 1) << k;
  }
}

TEST(SkipGraphTest, RangeQueryInOrder) {
  SkipGraph graph(5);
  for (uint64_t k = 0; k < 100; ++k) {
    graph.Insert(k * 10, k);
  }
  int hops = 0;
  auto out = graph.RangeQuery(95, 255, &hops);
  ASSERT_EQ(out.size(), 16u);  // 100,110,...,250
  EXPECT_EQ(out.front().first, 100u);
  EXPECT_EQ(out.back().first, 250u);
  EXPECT_GT(hops, 0);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

class SkipGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkipGraphPropertyTest, MatchesMapUnderRandomOps) {
  Pcg32 rng(GetParam());
  SkipGraph graph(GetParam() ^ 0xABCD);
  std::map<uint64_t, uint64_t> reference;
  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.NextDouble();
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 500));
    if (roll < 0.5) {
      const uint64_t value = rng.NextU64();
      graph.Insert(key, value);
      reference[key] = value;
    } else if (roll < 0.7) {
      EXPECT_EQ(graph.Erase(key), reference.erase(key) > 0);
    } else if (roll < 0.9) {
      auto got = graph.Search(key);
      auto want = reference.find(key);
      EXPECT_EQ(got.found, want != reference.end());
      if (got.found && want != reference.end()) {
        EXPECT_EQ(got.value, want->second);
      }
    } else {
      auto got = graph.SearchFloor(key);
      auto want = reference.upper_bound(key);
      if (want == reference.begin()) {
        EXPECT_FALSE(got.found);
      } else {
        --want;
        ASSERT_TRUE(got.found);
        EXPECT_EQ(got.key, want->first);
        EXPECT_EQ(got.value, want->second);
      }
    }
  }
  EXPECT_EQ(graph.size(), reference.size());
  EXPECT_TRUE(graph.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipGraphPropertyTest, ::testing::Range<uint64_t>(1, 7));

TEST(SkipGraphTest, SearchHopsAreLogarithmic) {
  SkipGraph graph(77);
  Pcg32 rng(78);
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    graph.Insert(rng.NextU64() >> 16, static_cast<uint64_t>(i));
  }
  RunningStats hops;
  for (int i = 0; i < 500; ++i) {
    hops.Add(graph.SearchFloor(rng.NextU64() >> 16).hops);
  }
  // O(log n) expected: log2(4096) = 12; allow generous constants but reject O(n).
  EXPECT_LT(hops.mean(), 4.0 * 12.0);
  EXPECT_GT(graph.MaxLevel(), 6);
}

// ---------- time sync ----------

TEST(TimeSyncTest, DriftingClockModel) {
  DriftingClock clock(Seconds(5), /*drift_ppm=*/100.0, /*jitter_std=*/0, /*seed=*/1);
  EXPECT_EQ(clock.LocalTimeExact(0), Seconds(5));
  // 100 ppm over an hour = 360 ms fast.
  EXPECT_NEAR(static_cast<double>(clock.LocalTimeExact(Hours(1)) - Seconds(5) - Hours(1)),
              static_cast<double>(Millis(360)), static_cast<double>(Millis(1)));
}

TEST(TimeSyncTest, RegressionRecoversDriftAndOffset) {
  DriftingClock clock(Seconds(3), /*drift_ppm=*/60.0, /*jitter_std=*/Millis(3),
                      /*seed=*/2);
  RegressionTimeSync sync;
  EXPECT_FALSE(sync.Ready());
  EXPECT_FALSE(sync.Correct(0).ok());

  // Beacons every ~10 minutes over 3 hours.
  for (int i = 0; i <= 18; ++i) {
    const SimTime ref = i * Minutes(10);
    sync.AddBeacon(clock.LocalTime(ref), ref);
  }
  ASSERT_TRUE(sync.Ready());

  RunningStats error_ms;
  for (int i = 0; i < 50; ++i) {
    const SimTime truth = Hours(3) + i * Minutes(7);
    const SimTime local = clock.LocalTimeExact(truth);
    auto corrected = sync.Correct(local);
    ASSERT_TRUE(corrected.ok());
    error_ms.Add(std::abs(ToMillis(*corrected - truth)));
  }
  // Without correction the offset alone is 3000 ms; corrected error is ~jitter-scale.
  EXPECT_LT(error_ms.mean(), 20.0);
  auto rms = sync.ResidualRms();
  ASSERT_TRUE(rms.ok());
  EXPECT_LT(*rms, static_cast<double>(Millis(20)));
}

TEST(TimeSyncTest, ToLocalInvertsCorrect) {
  DriftingClock clock(Seconds(1), 40.0, 0, 3);
  RegressionTimeSync sync;
  for (int i = 0; i <= 10; ++i) {
    const SimTime ref = i * Minutes(5);
    sync.AddBeacon(clock.LocalTimeExact(ref), ref);
  }
  const SimTime ref = Hours(2);
  auto local = sync.ToLocal(ref);
  ASSERT_TRUE(local.ok());
  auto back = sync.Correct(*local);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(static_cast<double>(*back), static_cast<double>(ref),
              static_cast<double>(Millis(1)));
}

TEST(TimeSyncTest, RejectsNoiseDominatedFit) {
  // Two beacons landing close together (first contacts after a failover promotion)
  // give least squares a baseline shorter than the timestamp jitter: the fitted
  // slope is garbage (far from 1 ± drift ppm) and must not be trusted, or ToLocal
  // maps query windows off the sensor's timeline entirely.
  RegressionTimeSync sync;
  const SimTime base = Hours(21);
  sync.AddBeacon(base + Seconds(2), base);
  sync.AddBeacon(base + Seconds(4) + Millis(900), base + Seconds(1));
  EXPECT_FALSE(sync.Ready());
  EXPECT_FALSE(sync.ToLocal(base).ok());
  EXPECT_FALSE(sync.Correct(base).ok());

  // Once the baseline grows past the jitter, the fit becomes plausible again.
  for (int i = 1; i <= 6; ++i) {
    const SimTime ref = base + i * Minutes(10);
    sync.AddBeacon(ref + Seconds(2), ref);
  }
  ASSERT_TRUE(sync.Ready());
  // The noisy pair stays in the window and tilts the line a little; "sane" here
  // means sub-second error, not off-timeline by minutes.
  auto local = sync.ToLocal(base + Hours(1));
  ASSERT_TRUE(local.ok());
  EXPECT_NEAR(static_cast<double>(*local),
              static_cast<double>(base + Hours(1) + Seconds(2)),
              static_cast<double>(Millis(500)));
}

TEST(TimeSyncTest, WindowBoundsMemory) {
  RegressionTimeSync sync(/*window=*/4);
  for (int i = 0; i < 100; ++i) {
    sync.AddBeacon(i * kSecond, i * kSecond);
  }
  EXPECT_EQ(sync.beacon_count(), 4u);
}

// ---------- temporal merge ----------

TEST(TemporalMergeTest, MergesByTimestamp) {
  std::vector<std::vector<Detection>> streams(2);
  streams[0] = {{Seconds(1), 0, 1}, {Seconds(3), 0, 3}};
  streams[1] = {{Seconds(2), 1, 2}, {Seconds(4), 1, 4}};
  const auto merged = MergeByTime(streams);
  ASSERT_EQ(merged.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(merged[i].sequence, i + 1);
  }
  EXPECT_DOUBLE_EQ(AdjacentOrderAccuracy(merged), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(merged), 1.0);
}

TEST(TemporalMergeTest, ClockErrorDegradesOrderMetrics) {
  // Two streams of interleaved events; stream 1's clock is shifted by more than the
  // event spacing, so merged order flips for cross-stream neighbours.
  std::vector<std::vector<Detection>> streams(2);
  for (uint64_t i = 0; i < 50; ++i) {
    streams[0].push_back({static_cast<SimTime>(2 * i) * kSecond, 0, 2 * i});
    streams[1].push_back(
        {static_cast<SimTime>(2 * i + 1) * kSecond + Seconds(3), 1, 2 * i + 1});
  }
  const auto merged = MergeByTime(streams);
  EXPECT_LT(AdjacentOrderAccuracy(merged), 1.0);
  EXPECT_LT(KendallTau(merged), 1.0);
  EXPECT_GT(KendallTau(merged), 0.8);  // still mostly ordered
}

TEST(TemporalMergeTest, EmptyStreams) {
  EXPECT_TRUE(MergeByTime({}).empty());
  EXPECT_DOUBLE_EQ(AdjacentOrderAccuracy({}), 1.0);
}

}  // namespace
}  // namespace presto
