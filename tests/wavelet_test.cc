// Tests for the DWT, denoising, the batch codec (including compression-ratio-vs-batch
// behaviour that drives Figure 2), and multi-resolution aging.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/wavelet/aging.h"
#include "src/wavelet/codec.h"
#include "src/wavelet/denoise.h"
#include "src/wavelet/transform.h"

namespace presto {
namespace {

std::vector<double> RandomSignal(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<double> out(n);
  double walk = 0.0;
  for (size_t i = 0; i < n; ++i) {
    walk += rng.Gaussian(0, 0.5);
    out[i] = walk;
  }
  return out;
}

// ---------- transform ----------

class DwtReconstructionTest
    : public ::testing::TestWithParam<std::tuple<WaveletKind, size_t, uint64_t>> {};

TEST_P(DwtReconstructionTest, PerfectReconstruction) {
  const auto [kind, n, seed] = GetParam();
  const std::vector<double> signal = RandomSignal(n, seed);
  auto coeffs = ForwardDwt(signal, kind, /*levels=*/0);
  ASSERT_TRUE(coeffs.ok());
  const std::vector<double> back = InverseDwt(*coeffs);
  ASSERT_EQ(back.size(), signal.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], signal[i], 1e-9) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLengths, DwtReconstructionTest,
    ::testing::Combine(::testing::Values(WaveletKind::kHaar, WaveletKind::kDaubechies4),
                       ::testing::Values<size_t>(1, 2, 3, 7, 16, 33, 100, 256, 1000),
                       ::testing::Values<uint64_t>(1, 2)));

TEST(DwtTest, HaarOfConstantHasZeroDetails) {
  const std::vector<double> constant(64, 5.0);
  auto coeffs = ForwardDwt(constant, WaveletKind::kHaar, 0);
  ASSERT_TRUE(coeffs.ok());
  for (int level = 1; level <= coeffs->levels; ++level) {
    const auto [begin, end] = coeffs->DetailRange(level);
    for (size_t i = begin; i < end; ++i) {
      EXPECT_NEAR(coeffs->data[i], 0.0, 1e-12);
    }
  }
}

TEST(DwtTest, EnergyPreserved) {
  // Orthonormal transform: sum of squares is invariant (Parseval).
  const std::vector<double> signal = RandomSignal(128, 9);
  auto coeffs = ForwardDwt(signal, WaveletKind::kDaubechies4, 0);
  ASSERT_TRUE(coeffs.ok());
  double in_energy = 0.0;
  for (double v : signal) {
    in_energy += v * v;
  }
  // Padding replicates the last value, so compare on the padded signal.
  std::vector<double> padded = signal;
  padded.resize(coeffs->PaddedLength(), signal.back());
  in_energy = 0.0;
  for (double v : padded) {
    in_energy += v * v;
  }
  double out_energy = 0.0;
  for (double v : coeffs->data) {
    out_energy += v * v;
  }
  EXPECT_NEAR(out_energy, in_energy, in_energy * 1e-9);
}

TEST(DwtTest, EmptySignalRejected) {
  EXPECT_FALSE(ForwardDwt({}, WaveletKind::kHaar, 0).ok());
}

TEST(DwtTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

// ---------- denoise ----------

TEST(DenoiseTest, RemovesWhiteNoiseFromSmoothSignal) {
  Pcg32 rng(17);
  const size_t n = 512;
  std::vector<double> clean(n);
  std::vector<double> noisy(n);
  for (size_t i = 0; i < n; ++i) {
    clean[i] = 10.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 128.0);
    noisy[i] = clean[i] + rng.Gaussian(0, 0.8);
  }
  auto denoised = Denoise(noisy, WaveletKind::kDaubechies4, 0, ThresholdMode::kHard);
  ASSERT_TRUE(denoised.ok());
  EXPECT_LT(Rmse(*denoised, clean), 0.8 * Rmse(noisy, clean));
  // Soft thresholding trades bias for variance: it may not beat the noisy input in
  // RMSE on strong signals, but it must produce a *smoother* series (adjacent-sample
  // differences dominated by signal, not noise).
  auto soft = Denoise(noisy, WaveletKind::kDaubechies4, 0, ThresholdMode::kSoft);
  ASSERT_TRUE(soft.ok());
  auto roughness = [](const std::vector<double>& x) {
    double sum = 0.0;
    for (size_t i = 1; i < x.size(); ++i) {
      sum += (x[i] - x[i - 1]) * (x[i] - x[i - 1]);
    }
    return sum;
  };
  EXPECT_LT(roughness(*soft), 0.5 * roughness(noisy));
}

TEST(DenoiseTest, SigmaEstimateTracksTrueNoise) {
  Pcg32 rng(19);
  std::vector<double> noise(4096);
  for (double& v : noise) {
    v = rng.Gaussian(0, 1.5);
  }
  auto coeffs = ForwardDwt(noise, WaveletKind::kHaar, 0);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_NEAR(EstimateNoiseSigma(*coeffs), 1.5, 0.15);
}

TEST(DenoiseTest, ThresholdZeroKeepsSignal) {
  const std::vector<double> signal = RandomSignal(64, 23);
  auto coeffs = ForwardDwt(signal, WaveletKind::kHaar, 0);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_EQ(ThresholdDetails(&*coeffs, 0.0, ThresholdMode::kHard), 0u);
}

// ---------- codec ----------

TEST(CodecTest, RawRoundTripIsFloat32Exact) {
  const std::vector<double> values = RandomSignal(100, 29);
  const auto bytes = EncodeRawBatch(Hours(1), Seconds(31), values);
  auto decoded = DecodeBatch(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->format, BatchFormat::kRaw);
  ASSERT_EQ(decoded->samples.size(), values.size());
  EXPECT_EQ(decoded->samples[0].t, Hours(1));
  EXPECT_EQ(decoded->samples[1].t, Hours(1) + Seconds(31));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(decoded->samples[i].value, values[i], std::abs(values[i]) * 1e-6 + 1e-5);
  }
}

TEST(CodecTest, WaveletRoundTripBoundedByQuantStep) {
  const std::vector<double> values = RandomSignal(256, 31);
  CodecParams params;
  params.denoise = false;  // isolate quantization error
  params.quant_step = 0.01;
  auto bytes = EncodeWaveletBatch(0, Seconds(31), values, params);
  ASSERT_TRUE(bytes.ok());
  auto decoded = DecodeBatch(*bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->samples.size(), values.size());
  // Each of the ~n coefficients errs by <= step/2; the orthonormal inverse spreads the
  // error, keeping pointwise error within a few steps in practice.
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(decoded->samples[i].value, values[i], 0.15);
  }
}

TEST(CodecTest, CompressionBeatsRawOnSmoothData) {
  std::vector<double> smooth(512);
  for (size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = 20.0 + 3.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 256.0);
  }
  CodecParams params;
  params.quant_step = 0.02;
  auto compressed = EncodeWaveletBatch(0, Seconds(31), smooth, params);
  ASSERT_TRUE(compressed.ok());
  const auto raw = EncodeRawBatch(0, Seconds(31), smooth);
  EXPECT_LT(compressed->size(), raw.size() / 4);
}

TEST(CodecTest, CompressionRatioImprovesWithBatchSize) {
  // The Figure 2 mechanism: larger batches compress better per sample.
  Pcg32 rng(37);
  auto ratio_for = [&rng](size_t n) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = 20.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 2048.0) +
                  rng.Gaussian(0, 0.12);
    }
    CodecParams params;
    params.quant_step = 0.05;
    auto compressed = EncodeWaveletBatch(0, Seconds(31), values, params);
    EXPECT_TRUE(compressed.ok());
    return static_cast<double>(EncodeRawBatch(0, Seconds(31), values).size()) /
           static_cast<double>(compressed->size());
  };
  const double small = ratio_for(32);
  const double large = ratio_for(4096);
  EXPECT_GT(large, small);
}

TEST(CodecTest, DenoisingReducesPayload) {
  Pcg32 rng(41);
  std::vector<double> noisy(1024);
  for (size_t i = 0; i < noisy.size(); ++i) {
    noisy[i] = 20.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 512.0) +
               rng.Gaussian(0, 0.2);
  }
  CodecParams with;
  with.denoise = true;
  with.quant_step = 0.02;
  CodecParams without = with;
  without.denoise = false;
  auto a = EncodeWaveletBatch(0, Seconds(31), noisy, with);
  auto b = EncodeWaveletBatch(0, Seconds(31), noisy, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->size(), b->size());
}

TEST(CodecTest, IrregularRoundTripExactTimestamps) {
  Pcg32 rng(43);
  std::vector<Sample> samples;
  SimTime t = Hours(3);
  for (int i = 0; i < 200; ++i) {
    t += rng.UniformInt(1, 600) * kMillisecond * 100;
    samples.push_back(Sample{t, rng.Gaussian(20, 5)});
  }
  const auto bytes = EncodeIrregularBatch(samples);
  auto decoded = DecodeBatch(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->format, BatchFormat::kIrregular);
  ASSERT_EQ(decoded->samples.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(decoded->samples[i].t, samples[i].t);
    EXPECT_NEAR(decoded->samples[i].value, samples[i].value, 1e-3);
  }
}

TEST(CodecTest, GarbageRejected) {
  EXPECT_FALSE(DecodeBatch(std::vector<uint8_t>{}).ok());
  EXPECT_FALSE(DecodeBatch(std::vector<uint8_t>{99, 1, 2, 3}).ok());
}

// ---------- aging ----------

TEST(AgingTest, SummarizeProducesWindowMeans) {
  std::vector<Sample> samples;
  for (int i = 0; i < 64; ++i) {
    samples.push_back(Sample{i * Seconds(31), static_cast<double>(i)});
  }
  const auto coarse = WaveletAgingSummarize(samples, 4);
  ASSERT_EQ(coarse.size(), 16u);
  for (size_t i = 0; i < coarse.size(); ++i) {
    // Mean of {4i, 4i+1, 4i+2, 4i+3} = 4i + 1.5.
    EXPECT_NEAR(coarse[i].value, 4.0 * static_cast<double>(i) + 1.5, 1e-9);
    EXPECT_EQ(coarse[i].t, samples[i * 4].t);
  }
}

TEST(AgingTest, FactorOneIsIdentity) {
  const std::vector<Sample> samples = {{0, 1.0}, {10, 2.0}};
  EXPECT_EQ(WaveletAgingSummarize(samples, 1), samples);
}

TEST(AgingTest, UpsampleStepInterpolates) {
  const std::vector<Sample> coarse = {{0, 1.0}, {Seconds(100), 2.0}};
  const auto fine = UpsampleToGrid(coarse, Seconds(50), 0, 4);
  ASSERT_EQ(fine.size(), 4u);
  EXPECT_EQ(fine[0].value, 1.0);
  EXPECT_EQ(fine[1].value, 1.0);
  EXPECT_EQ(fine[2].value, 2.0);  // t=100 picks the second coarse sample
  EXPECT_EQ(fine[3].value, 2.0);
}

TEST(AgingTest, RepeatedAgingDegradesGracefully) {
  // Summarize twice (4x then 4x = 16x): RMSE vs window means stays bounded for a
  // smooth signal.
  std::vector<Sample> samples;
  for (int i = 0; i < 1024; ++i) {
    samples.push_back(Sample{i * Seconds(31),
                             20.0 + 5.0 * std::sin(2.0 * M_PI * i / 512.0)});
  }
  const auto once = WaveletAgingSummarize(samples, 4);
  const auto twice = WaveletAgingSummarize(once, 4);
  ASSERT_EQ(twice.size(), 64u);
  for (size_t i = 0; i < twice.size(); ++i) {
    const double truth = samples[i * 16 + 8].value;  // mid-window reference
    EXPECT_NEAR(twice[i].value, truth, 0.6);
  }
}

}  // namespace
}  // namespace presto
