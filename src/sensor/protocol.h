// PRESTO proxy<->sensor wire protocol.
//
// Every interaction the paper describes flows through these messages:
//   sensor -> proxy : DataPush      (model deviations, batches, value deltas, events)
//                     ArchiveReply  (answers to PAST-query pulls)
//   proxy  -> sensor: ModelUpdate   (model parameters, the "model-driven" in push)
//                     ConfigUpdate  (query-sensor matching: duty cycle, batching,
//                                    compression, sensing rate)
//                     ArchiveQuery  (cache-miss-triggered pull into the local archive)
//   proxy  -> proxy : ReplicaUpdate / ReplicaModel (cache+model replication, §5)
//
// Encodings are explicit byte layouts (ByteWriter/Reader) because payload size is a
// first-class cost in the energy model.

#ifndef SRC_SENSOR_PROTOCOL_H_
#define SRC_SENSOR_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/sim_time.h"
#include "src/util/span.h"

namespace presto {

// Network message `type` values.
enum class MsgType : uint16_t {
  kDataPush = 1,
  kModelUpdate = 2,
  kConfigUpdate = 3,
  kArchiveQuery = 4,
  kArchiveReply = 5,
  kReplicaUpdate = 6,
  kReplicaModel = 7,
  // Migration / hand-back / recruit state transfer: a checkpoint-codec blob carrying
  // cache samples plus the full-precision model (src/proxy/proxy_node.cc).
  kStateSnapshot = 8,
};

enum class PushReason : uint8_t {
  kBootstrap = 0,       // no model installed yet; unconditional reporting
  kModelDeviation = 1,  // |observed - predicted| exceeded tolerance
  kValueDelta = 2,      // value-driven policy threshold crossing
  kBatch = 3,           // periodic batch flush
  kEverySample = 4,     // streaming baseline
};

const char* PushReasonName(PushReason reason);

// Sensor push policies (which of the above a sensor emits).
enum class PushPolicy : uint8_t {
  kNone = 0,         // archive only, never push (pure direct-query architecture)
  kValueDriven = 1,  // push when |v - last pushed| > value_delta
  kModelDriven = 2,  // push when the installed model mispredicts by > tolerance
  kBatched = 3,      // push everything, batched every batch_interval
  kEverySample = 4,  // push every sample immediately (streaming architecture)
};

const char* PushPolicyName(PushPolicy policy);

struct DataPushMsg {
  PushReason reason = PushReason::kBootstrap;
  SimTime local_send_time = 0;  // sensor clock at send; doubles as a sync beacon
  // Wavelet/raw batch blob (timestamps in sensor-local time).
  std::vector<uint8_t> batch;

  std::vector<uint8_t> Encode() const;
  static Result<DataPushMsg> Decode(span<const uint8_t> bytes);
};

struct ModelUpdateMsg {
  uint32_t model_seq = 0;
  double tolerance = 0.5;            // push threshold the sensor applies
  std::vector<uint8_t> model_params; // PredictiveModel::Serialize output

  std::vector<uint8_t> Encode() const;
  static Result<ModelUpdateMsg> Decode(span<const uint8_t> bytes);
};

// Field mask bits for ConfigUpdateMsg.
inline constexpr uint16_t kCfgSensingPeriod = 1 << 0;
inline constexpr uint16_t kCfgBatchInterval = 1 << 1;
inline constexpr uint16_t kCfgPolicy = 1 << 2;
inline constexpr uint16_t kCfgValueDelta = 1 << 3;
inline constexpr uint16_t kCfgCompression = 1 << 4;
inline constexpr uint16_t kCfgLplInterval = 1 << 5;

struct ConfigUpdateMsg {
  uint16_t fields = 0;  // which members below are meaningful
  Duration sensing_period = 0;
  Duration batch_interval = 0;
  PushPolicy policy = PushPolicy::kModelDriven;
  double value_delta = 0.0;
  bool compress = false;
  double quant_step = 0.02;
  Duration lpl_interval = 0;

  std::vector<uint8_t> Encode() const;
  static Result<ConfigUpdateMsg> Decode(span<const uint8_t> bytes);
};

// Sensor-side aggregation (paper §3: "The operation can be transmitted as a parameter
// to the sensor node, which uses the specified mode function on its local data before
// transmitting the final result"). kNone returns the samples themselves.
enum class AggregateOp : uint8_t {
  kNone = 0,
  kMin = 1,
  kMax = 2,
  kMean = 3,
  kCount = 4,
};

const char* AggregateOpName(AggregateOp op);

struct ArchiveQueryMsg {
  uint32_t query_id = 0;
  SimTime local_start = 0;  // sensor-local timeline
  SimTime local_end = 0;
  bool compress = true;
  uint32_t max_samples = 4096;
  AggregateOp aggregate = AggregateOp::kNone;

  std::vector<uint8_t> Encode() const;
  static Result<ArchiveQueryMsg> Decode(span<const uint8_t> bytes);
};

struct ArchiveReplyMsg {
  uint32_t query_id = 0;
  uint8_t status_code = 0;     // StatusCode as uint8
  SimTime local_send_time = 0; // sync beacon, like pushes
  std::vector<uint8_t> batch;  // empty on error

  std::vector<uint8_t> Encode() const;
  static Result<ArchiveReplyMsg> Decode(span<const uint8_t> bytes);
};

struct ReplicaUpdateMsg {
  uint32_t sensor_id = 0;
  std::vector<uint8_t> batch;  // reference-timeline batch blob

  std::vector<uint8_t> Encode() const;
  static Result<ReplicaUpdateMsg> Decode(span<const uint8_t> bytes);
};

struct ReplicaModelMsg {
  uint32_t sensor_id = 0;
  double tolerance = 0.5;
  std::vector<uint8_t> model_params;

  std::vector<uint8_t> Encode() const;
  static Result<ReplicaModelMsg> Decode(span<const uint8_t> bytes);
};

}  // namespace presto

#endif  // SRC_SENSOR_PROTOCOL_H_
