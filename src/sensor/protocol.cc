#include "src/sensor/protocol.h"

namespace presto {

const char* PushReasonName(PushReason reason) {
  switch (reason) {
    case PushReason::kBootstrap:
      return "bootstrap";
    case PushReason::kModelDeviation:
      return "model-deviation";
    case PushReason::kValueDelta:
      return "value-delta";
    case PushReason::kBatch:
      return "batch";
    case PushReason::kEverySample:
      return "every-sample";
  }
  return "?";
}

const char* PushPolicyName(PushPolicy policy) {
  switch (policy) {
    case PushPolicy::kNone:
      return "none";
    case PushPolicy::kValueDriven:
      return "value-driven";
    case PushPolicy::kModelDriven:
      return "model-driven";
    case PushPolicy::kBatched:
      return "batched";
    case PushPolicy::kEverySample:
      return "every-sample";
  }
  return "?";
}

std::vector<uint8_t> DataPushMsg::Encode() const {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(reason));
  w.WriteI64(local_send_time);
  w.WriteBytes(batch);
  return w.TakeBuffer();
}

Result<DataPushMsg> DataPushMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto reason = r.ReadU8();
  auto ts = r.ReadI64();
  auto batch = r.ReadBytes();
  if (!reason.ok() || !ts.ok() || !batch.ok()) {
    return InvalidArgumentError("bad DataPush");
  }
  DataPushMsg m;
  m.reason = static_cast<PushReason>(*reason);
  m.local_send_time = *ts;
  m.batch = std::move(*batch);
  return m;
}

std::vector<uint8_t> ModelUpdateMsg::Encode() const {
  ByteWriter w;
  w.WriteU32(model_seq);
  w.WriteF32(static_cast<float>(tolerance));
  w.WriteBytes(model_params);
  return w.TakeBuffer();
}

Result<ModelUpdateMsg> ModelUpdateMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto seq = r.ReadU32();
  auto tol = r.ReadF32();
  auto params = r.ReadBytes();
  if (!seq.ok() || !tol.ok() || !params.ok()) {
    return InvalidArgumentError("bad ModelUpdate");
  }
  ModelUpdateMsg m;
  m.model_seq = *seq;
  m.tolerance = static_cast<double>(*tol);
  m.model_params = std::move(*params);
  return m;
}

std::vector<uint8_t> ConfigUpdateMsg::Encode() const {
  ByteWriter w;
  w.WriteU16(fields);
  if (fields & kCfgSensingPeriod) {
    w.WriteVarU64(static_cast<uint64_t>(sensing_period));
  }
  if (fields & kCfgBatchInterval) {
    w.WriteVarU64(static_cast<uint64_t>(batch_interval));
  }
  if (fields & kCfgPolicy) {
    w.WriteU8(static_cast<uint8_t>(policy));
  }
  if (fields & kCfgValueDelta) {
    w.WriteF32(static_cast<float>(value_delta));
  }
  if (fields & kCfgCompression) {
    w.WriteU8(compress ? 1 : 0);
    w.WriteF32(static_cast<float>(quant_step));
  }
  if (fields & kCfgLplInterval) {
    w.WriteVarU64(static_cast<uint64_t>(lpl_interval));
  }
  return w.TakeBuffer();
}

Result<ConfigUpdateMsg> ConfigUpdateMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto fields = r.ReadU16();
  if (!fields.ok()) {
    return InvalidArgumentError("bad ConfigUpdate");
  }
  ConfigUpdateMsg m;
  m.fields = *fields;
  if (m.fields & kCfgSensingPeriod) {
    auto v = r.ReadVarU64();
    if (!v.ok()) {
      return v.status();
    }
    m.sensing_period = static_cast<Duration>(*v);
  }
  if (m.fields & kCfgBatchInterval) {
    auto v = r.ReadVarU64();
    if (!v.ok()) {
      return v.status();
    }
    m.batch_interval = static_cast<Duration>(*v);
  }
  if (m.fields & kCfgPolicy) {
    auto v = r.ReadU8();
    if (!v.ok()) {
      return v.status();
    }
    m.policy = static_cast<PushPolicy>(*v);
  }
  if (m.fields & kCfgValueDelta) {
    auto v = r.ReadF32();
    if (!v.ok()) {
      return v.status();
    }
    m.value_delta = static_cast<double>(*v);
  }
  if (m.fields & kCfgCompression) {
    auto on = r.ReadU8();
    auto q = r.ReadF32();
    if (!on.ok() || !q.ok()) {
      return InvalidArgumentError("bad ConfigUpdate compression");
    }
    m.compress = *on != 0;
    m.quant_step = static_cast<double>(*q);
  }
  if (m.fields & kCfgLplInterval) {
    auto v = r.ReadVarU64();
    if (!v.ok()) {
      return v.status();
    }
    m.lpl_interval = static_cast<Duration>(*v);
  }
  return m;
}

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kNone:
      return "none";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
    case AggregateOp::kMean:
      return "mean";
    case AggregateOp::kCount:
      return "count";
  }
  return "?";
}

std::vector<uint8_t> ArchiveQueryMsg::Encode() const {
  ByteWriter w;
  w.WriteU32(query_id);
  w.WriteI64(local_start);
  w.WriteI64(local_end);
  w.WriteU8(compress ? 1 : 0);
  w.WriteU32(max_samples);
  w.WriteU8(static_cast<uint8_t>(aggregate));
  return w.TakeBuffer();
}

Result<ArchiveQueryMsg> ArchiveQueryMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto id = r.ReadU32();
  auto t1 = r.ReadI64();
  auto t2 = r.ReadI64();
  auto compress = r.ReadU8();
  auto max = r.ReadU32();
  if (!id.ok() || !t1.ok() || !t2.ok() || !compress.ok() || !max.ok()) {
    return InvalidArgumentError("bad ArchiveQuery");
  }
  auto agg = r.ReadU8();
  if (!agg.ok() || *agg > static_cast<uint8_t>(AggregateOp::kCount)) {
    return InvalidArgumentError("bad ArchiveQuery aggregate");
  }
  ArchiveQueryMsg m;
  m.query_id = *id;
  m.local_start = *t1;
  m.local_end = *t2;
  m.compress = *compress != 0;
  m.max_samples = *max;
  m.aggregate = static_cast<AggregateOp>(*agg);
  return m;
}

std::vector<uint8_t> ArchiveReplyMsg::Encode() const {
  ByteWriter w;
  w.WriteU32(query_id);
  w.WriteU8(status_code);
  w.WriteI64(local_send_time);
  w.WriteBytes(batch);
  return w.TakeBuffer();
}

Result<ArchiveReplyMsg> ArchiveReplyMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto id = r.ReadU32();
  auto code = r.ReadU8();
  auto ts = r.ReadI64();
  auto batch = r.ReadBytes();
  if (!id.ok() || !code.ok() || !ts.ok() || !batch.ok()) {
    return InvalidArgumentError("bad ArchiveReply");
  }
  ArchiveReplyMsg m;
  m.query_id = *id;
  m.status_code = *code;
  m.local_send_time = *ts;
  m.batch = std::move(*batch);
  return m;
}

std::vector<uint8_t> ReplicaUpdateMsg::Encode() const {
  ByteWriter w;
  w.WriteU32(sensor_id);
  w.WriteBytes(batch);
  return w.TakeBuffer();
}

Result<ReplicaUpdateMsg> ReplicaUpdateMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto id = r.ReadU32();
  auto batch = r.ReadBytes();
  if (!id.ok() || !batch.ok()) {
    return InvalidArgumentError("bad ReplicaUpdate");
  }
  ReplicaUpdateMsg m;
  m.sensor_id = *id;
  m.batch = std::move(*batch);
  return m;
}

std::vector<uint8_t> ReplicaModelMsg::Encode() const {
  ByteWriter w;
  w.WriteU32(sensor_id);
  w.WriteF32(static_cast<float>(tolerance));
  w.WriteBytes(model_params);
  return w.TakeBuffer();
}

Result<ReplicaModelMsg> ReplicaModelMsg::Decode(span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto id = r.ReadU32();
  auto tol = r.ReadF32();
  auto params = r.ReadBytes();
  if (!id.ok() || !tol.ok() || !params.ok()) {
    return InvalidArgumentError("bad ReplicaModel");
  }
  ReplicaModelMsg m;
  m.sensor_id = *id;
  m.tolerance = static_cast<double>(*tol);
  m.model_params = std::move(*params);
  return m;
}

}  // namespace presto
