// The PRESTO sensor (paper §4): "simple, yet highly tunable, and completely controlled
// by the proxy."
//
// Responsibilities:
//  - sense on a fixed period (proxy-tunable), stamping samples with a drifting local
//    clock;
//  - archive every sample in the local flash store (energy-efficient archival
//    file-system with a time index and wavelet multi-resolution aging);
//  - run the currently configured push policy:
//      * model-driven: check each sample against the proxy-installed model, push only
//        deviations beyond the tolerance (the paper's headline mechanism);
//      * value-driven / batched / every-sample: the Figure 2 and Table 1 baselines;
//  - answer archive pulls (cache-miss-triggered PAST queries) from flash;
//  - apply ModelUpdate/ConfigUpdate control traffic (adaptive runtime: duty cycle,
//    batching, compression, sensing rate — the query-sensor matching knobs).
//
// Everything the node does is charged to its EnergyMeter: radio via the network MAC,
// flash via the device model, CPU via per-operation costs of model checks and codecs.

#ifndef SRC_SENSOR_SENSOR_NODE_H_
#define SRC_SENSOR_SENSOR_NODE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/flash/archive_store.h"
#include "src/flash/flash_device.h"
#include "src/index/time_sync.h"
#include "src/models/model.h"
#include "src/net/network.h"
#include "src/sensor/protocol.h"
#include "src/sim/timer.h"
#include "src/wavelet/codec.h"

namespace presto {

struct SensorNodeConfig {
  NodeId id = 0;
  NodeId proxy_id = 0;
  Duration sensing_period = Seconds(31);

  PushPolicy policy = PushPolicy::kModelDriven;
  double value_delta = 1.0;      // value-driven threshold
  double model_tolerance = 0.5;  // model-driven threshold (until proxy overrides)
  Duration batch_interval = Minutes(16.5);
  bool compress = false;
  CodecParams codec;

  // Local clock imperfection (corrected proxy-side; see index/time_sync.h).
  Duration clock_offset = 0;
  double drift_ppm = 0.0;
  Duration clock_jitter = Millis(2);

  bool archive_enabled = true;
  FlashParams flash;
  ArchiveParams archive;
  ModelConfig model_config;

  NodeRadioConfig radio;  // powered=false for real sensors
  uint64_t seed = 1;
};

class SensorNode : public NetNode {
 public:
  // Reads the physical world at true simulation time (measurement noise included).
  using MeasureFn = std::function<double(SimTime)>;

  // Attaches itself to `net` as `config.id`. `sim` and `net` must outlive the node.
  SensorNode(Simulator* sim, Network* net, const SensorNodeConfig& config,
             MeasureFn measure);

  // Begins the sensing loop (first sample after one sensing period).
  void Start();
  void Stop();

  // Pins this sensor's self-scheduled events (sensing + batch timers) to a simulator
  // lane; the deployment binds lane = the home shard's lane. Call before Start().
  void BindLane(int lane) {
    sensing_timer_.BindLane(lane);
    batch_timer_.BindLane(lane);
  }

  // Moves a running sensor's timers to a new lane, preserving absolute fire times
  // (sensing phase does not shift). Control context only — the deployment calls
  // this at the barrier where a migrated sensor's lane membership changes.
  void RebindLane(int lane) {
    sensing_timer_.Rebind(lane);
    batch_timer_.Rebind(lane);
  }

  void OnMessage(const Message& message) override;

  // Re-points pushes/replies at a new proxy (ownership migration or failover
  // promotion: the acting owner takes over this sensor's reporting).
  void SetProxy(NodeId proxy_id) { config_.proxy_id = proxy_id; }

  struct Stats {
    uint64_t samples = 0;
    uint64_t pushes = 0;           // push messages sent
    uint64_t pushed_samples = 0;   // samples contained in those pushes
    uint64_t suppressed = 0;       // samples the model/value filter held back
    uint64_t model_checks = 0;
    uint64_t model_updates = 0;
    uint64_t config_updates = 0;
    uint64_t archive_queries = 0;
    uint64_t compressed_bytes = 0; // payload bytes after compression
    uint64_t uncompressed_bytes = 0;  // what those payloads would cost raw
  };

  // Checkpoint codec: proxy-tunable config fields, flash + archive + clock, timers,
  // the installed model (full precision), batch buffer, push state, meter and stats.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

  const Stats& stats() const { return stats_; }
  const EnergyMeter& meter() const { return meter_; }
  EnergyMeter* meter_mut() { return &meter_; }
  const SensorNodeConfig& config() const { return config_; }
  ArchiveStore& archive() { return archive_; }
  const PredictiveModel* model() const { return model_.get(); }
  DriftingClock& clock() { return clock_; }

 private:
  void OnSensingTick();
  void FlushBatch();
  void PushSamples(PushReason reason, const std::vector<Sample>& local_samples);
  void HandleModelUpdate(const Message& message);
  void HandleConfigUpdate(const Message& message);
  void HandleArchiveQuery(const Message& message);
  void ChargeCpu(int64_t ops);
  std::vector<uint8_t> EncodeBatchPayload(const std::vector<Sample>& local_samples,
                                          bool try_compress);

  Simulator* sim_;
  Network* net_;
  SensorNodeConfig config_;
  MeasureFn measure_;

  EnergyMeter meter_;
  FlashDevice flash_;
  ArchiveStore archive_;
  DriftingClock clock_;
  PeriodicTimer sensing_timer_;
  PeriodicTimer batch_timer_;

  std::unique_ptr<PredictiveModel> model_;  // null until the proxy installs one
  uint32_t model_seq_ = 0;
  bool has_pushed_value_ = false;
  double last_pushed_value_ = 0.0;
  std::vector<Sample> batch_buffer_;  // local-time samples awaiting a batch flush

  Stats stats_;
};

}  // namespace presto

#endif  // SRC_SENSOR_SENSOR_NODE_H_
