#include "src/sensor/sensor_node.h"

#include <algorithm>

#include "src/models/registry.h"
#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/logging.h"
#include "src/wavelet/aging.h"

namespace presto {

SensorNode::SensorNode(Simulator* sim, Network* net, const SensorNodeConfig& config,
                       MeasureFn measure)
    : sim_(sim),
      net_(net),
      config_(config),
      measure_(std::move(measure)),
      flash_(config.flash, &meter_),
      archive_(&flash_, config.archive),
      clock_(config.clock_offset, config.drift_ppm, config.clock_jitter, config.seed),
      sensing_timer_(sim, [this] { OnSensingTick(); }),
      batch_timer_(sim, [this] { FlushBatch(); }) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(net_ != nullptr);
  PRESTO_CHECK(measure_ != nullptr);
  archive_.SetSummarizer(WaveletAgingSummarize);
  net_->AttachNode(config_.id, this, config_.radio, &meter_);
}

void SensorNode::Start() {
  sensing_timer_.Start(config_.sensing_period);
  if (config_.policy == PushPolicy::kBatched) {
    batch_timer_.Start(config_.batch_interval);
  }
}

void SensorNode::Stop() {
  sensing_timer_.Stop();
  batch_timer_.Stop();
}

void SensorNode::ChargeCpu(int64_t ops) {
  meter_.Charge(EnergyComponent::kCpu, static_cast<double>(ops) * kCpuJoulesPerOp);
}

void SensorNode::OnSensingTick() {
  const SimTime now = sim_->Now();
  const double value = measure_(now);
  const SimTime local = clock_.LocalTime(now);
  ++stats_.samples;
  meter_.Charge(EnergyComponent::kSensing, kSensingJoulesPerSample);

  const Sample sample{local, value};
  if (config_.archive_enabled) {
    const Status st = archive_.Append(sample);
    if (!st.ok()) {
      PLOG_WARN("sensor %u: archive append failed: %s", config_.id,
                st.ToString().c_str());
    }
  }

  switch (config_.policy) {
    case PushPolicy::kNone:
      break;
    case PushPolicy::kEverySample:
      PushSamples(PushReason::kEverySample, {sample});
      break;
    case PushPolicy::kValueDriven: {
      ChargeCpu(4);
      if (!has_pushed_value_ ||
          std::abs(value - last_pushed_value_) > config_.value_delta) {
        last_pushed_value_ = value;
        has_pushed_value_ = true;
        PushSamples(PushReason::kValueDelta, {sample});
      } else {
        ++stats_.suppressed;
      }
      break;
    }
    case PushPolicy::kModelDriven: {
      if (model_ == nullptr) {
        // Bootstrap: no model yet; report value-driven at the model tolerance so the
        // proxy accumulates training data without streaming every sample.
        ChargeCpu(4);
        if (!has_pushed_value_ ||
            std::abs(value - last_pushed_value_) > config_.model_tolerance) {
          last_pushed_value_ = value;
          has_pushed_value_ = true;
          PushSamples(PushReason::kBootstrap, {sample});
        } else {
          ++stats_.suppressed;
        }
        break;
      }
      ++stats_.model_checks;
      ChargeCpu(model_->PredictCostOps());
      const Prediction predicted = model_->Predict(local);
      if (std::abs(value - predicted.value) > config_.model_tolerance) {
        model_->OnAnchor(sample);  // proxy mirrors this on receipt
        PushSamples(PushReason::kModelDeviation, {sample});
      } else {
        ++stats_.suppressed;
      }
      break;
    }
    case PushPolicy::kBatched:
      batch_buffer_.push_back(sample);
      break;
  }
}

void SensorNode::FlushBatch() {
  if (batch_buffer_.empty()) {
    return;
  }
  std::vector<Sample> batch;
  batch.swap(batch_buffer_);
  PushSamples(PushReason::kBatch, batch);
}

std::vector<uint8_t> SensorNode::EncodeBatchPayload(
    const std::vector<Sample>& local_samples, bool try_compress) {
  PRESTO_CHECK(!local_samples.empty());
  const SimTime start = local_samples.front().t;
  const std::vector<double> values = ValuesOf(local_samples);
  const std::vector<uint8_t> raw = EncodeRawBatch(start, config_.sensing_period, values);
  // Wavelet compression pays off only with enough samples to decompose.
  if (try_compress && local_samples.size() >= 16) {
    ChargeCpu(CompressCostOps(values.size(), config_.codec));
    auto compressed = EncodeWaveletBatch(start, config_.sensing_period, values,
                                         config_.codec);
    if (compressed.ok() && compressed->size() < raw.size()) {
      stats_.compressed_bytes += compressed->size();
      stats_.uncompressed_bytes += raw.size();
      return *compressed;
    }
  }
  stats_.compressed_bytes += raw.size();
  stats_.uncompressed_bytes += raw.size();
  return raw;
}

void SensorNode::PushSamples(PushReason reason,
                             const std::vector<Sample>& local_samples) {
  DataPushMsg msg;
  msg.reason = reason;
  msg.local_send_time = clock_.LocalTime(sim_->Now());
  msg.batch = EncodeBatchPayload(local_samples, config_.compress);
  ++stats_.pushes;
  stats_.pushed_samples += local_samples.size();
  net_->SendBatched(config_.id, config_.proxy_id,
                    static_cast<uint16_t>(MsgType::kDataPush), msg.Encode());
}

void SensorNode::OnMessage(const Message& message) {
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kModelUpdate:
      HandleModelUpdate(message);
      break;
    case MsgType::kConfigUpdate:
      HandleConfigUpdate(message);
      break;
    case MsgType::kArchiveQuery:
      HandleArchiveQuery(message);
      break;
    default:
      PLOG_WARN("sensor %u: unexpected message type %u", config_.id, message.type);
      break;
  }
}

void SensorNode::HandleModelUpdate(const Message& message) {
  auto msg = ModelUpdateMsg::Decode(message.payload);
  if (!msg.ok()) {
    PLOG_WARN("sensor %u: bad model update", config_.id);
    return;
  }
  auto model = DeserializeModel(msg->model_params, config_.model_config);
  if (!model.ok()) {
    PLOG_WARN("sensor %u: cannot deserialize model: %s", config_.id,
              model.status().ToString().c_str());
    return;
  }
  // Installing a model is cheap; fitting happened at the proxy. That asymmetry is a
  // design requirement in §3.
  ChargeCpu(static_cast<int64_t>(msg->model_params.size()));
  model_ = std::move(*model);
  model_seq_ = msg->model_seq;
  config_.model_tolerance = msg->tolerance;
  ++stats_.model_updates;
  PLOG_DEBUG("sensor %u: installed %s model seq=%u tol=%.3f", config_.id, model_->Name(),
             model_seq_, config_.model_tolerance);
}

void SensorNode::HandleConfigUpdate(const Message& message) {
  auto msg = ConfigUpdateMsg::Decode(message.payload);
  if (!msg.ok()) {
    PLOG_WARN("sensor %u: bad config update", config_.id);
    return;
  }
  ++stats_.config_updates;
  if (msg->fields & kCfgSensingPeriod) {
    config_.sensing_period = msg->sensing_period;
    if (sensing_timer_.running()) {
      sensing_timer_.SetPeriod(config_.sensing_period);
    }
  }
  if (msg->fields & kCfgBatchInterval) {
    config_.batch_interval = msg->batch_interval;
    if (batch_timer_.running()) {
      batch_timer_.SetPeriod(config_.batch_interval);
    }
  }
  if (msg->fields & kCfgPolicy) {
    const PushPolicy old = config_.policy;
    config_.policy = msg->policy;
    if (old != PushPolicy::kBatched && msg->policy == PushPolicy::kBatched) {
      batch_timer_.Start(config_.batch_interval);
    }
    if (old == PushPolicy::kBatched && msg->policy != PushPolicy::kBatched) {
      FlushBatch();
      batch_timer_.Stop();
    }
  }
  if (msg->fields & kCfgValueDelta) {
    config_.value_delta = msg->value_delta;
  }
  if (msg->fields & kCfgCompression) {
    config_.compress = msg->compress;
    config_.codec.quant_step = msg->quant_step;
  }
  if (msg->fields & kCfgLplInterval) {
    net_->SetLplInterval(config_.id, msg->lpl_interval);
  }
}

void SensorNode::HandleArchiveQuery(const Message& message) {
  auto msg = ArchiveQueryMsg::Decode(message.payload);
  if (!msg.ok()) {
    PLOG_WARN("sensor %u: bad archive query", config_.id);
    return;
  }
  ++stats_.archive_queries;
  // The RAM tail must reach flash before serving reads (see ArchiveStore::Query).
  (void)archive_.Flush();

  ArchiveReplyMsg reply;
  reply.query_id = msg->query_id;
  auto samples = archive_.Query(TimeInterval{msg->local_start, msg->local_end});
  if (!samples.ok()) {
    reply.status_code = static_cast<uint8_t>(samples.status().code());
  } else if (samples->empty()) {
    reply.status_code = static_cast<uint8_t>(StatusCode::kNotFound);
  } else if (msg->aggregate != AggregateOp::kNone) {
    // Query-type exploitation (§3): apply the requested mode function locally and
    // radio back one value instead of the range.
    double value = 0.0;
    switch (msg->aggregate) {
      case AggregateOp::kMin:
        value = samples->front().value;
        for (const Sample& s : *samples) {
          value = std::min(value, s.value);
        }
        break;
      case AggregateOp::kMax:
        value = samples->front().value;
        for (const Sample& s : *samples) {
          value = std::max(value, s.value);
        }
        break;
      case AggregateOp::kMean: {
        double sum = 0.0;
        for (const Sample& s : *samples) {
          sum += s.value;
        }
        value = sum / static_cast<double>(samples->size());
        break;
      }
      case AggregateOp::kCount:
        value = static_cast<double>(samples->size());
        break;
      case AggregateOp::kNone:
        break;
    }
    ChargeCpu(static_cast<int64_t>(samples->size()));
    reply.batch = EncodeIrregularBatch({Sample{samples->back().t, value}});
    reply.status_code = static_cast<uint8_t>(StatusCode::kOk);
  } else {
    std::vector<Sample> out = std::move(*samples);
    if (out.size() > msg->max_samples) {
      // Decimate evenly rather than truncating: the caller asked for the whole range.
      std::vector<Sample> decimated;
      decimated.reserve(msg->max_samples);
      const double stride =
          static_cast<double>(out.size()) / static_cast<double>(msg->max_samples);
      for (uint32_t i = 0; i < msg->max_samples; ++i) {
        decimated.push_back(out[static_cast<size_t>(static_cast<double>(i) * stride)]);
      }
      out.swap(decimated);
    }
    // Archive data may mix resolutions (aging), so use the irregular encoding; it is
    // also what lets the proxy trust each sample's own timestamp.
    ChargeCpu(static_cast<int64_t>(out.size()) * 2);
    reply.batch = EncodeIrregularBatch(out);
    reply.status_code = static_cast<uint8_t>(StatusCode::kOk);
  }
  reply.local_send_time = clock_.LocalTime(sim_->Now());
  // A blocked query is waiting on this reply: skip the link's coalescing window
  // (pushes and other bulk traffic still ride it).
  net_->Send(config_.id, config_.proxy_id,
             static_cast<uint16_t>(MsgType::kArchiveReply), reply.Encode());
}

}  // namespace presto

namespace presto {

void SensorNode::SaveState(ByteWriter& w) const {
  // Proxy-tunable config fields (everything ModelUpdate/ConfigUpdate/SetProxy touch).
  CkptWrite(w, config_.proxy_id);
  CkptWrite(w, config_.sensing_period);
  CkptWrite(w, config_.policy);
  CkptWrite(w, config_.value_delta);
  CkptWrite(w, config_.model_tolerance);
  CkptWrite(w, config_.batch_interval);
  CkptWrite(w, config_.compress);
  CkptWrite(w, config_.codec.kind);
  CkptWrite(w, config_.codec.levels);
  CkptWrite(w, config_.codec.quant_step);
  CkptWrite(w, config_.codec.denoise);
  CkptWrite(w, config_.codec.denoise_scale);

  CkptWrite(w, meter_);
  flash_.SaveState(w);
  archive_.SaveState(w);
  clock_.SaveState(w);
  sensing_timer_.SaveState(w);
  batch_timer_.SaveState(w);

  SaveModelState(w, model_.get());
  CkptWrite(w, model_seq_);
  CkptWrite(w, has_pushed_value_);
  CkptWrite(w, last_pushed_value_);
  CkptWrite(w, batch_buffer_);

  CkptWrite(w, stats_.samples);
  CkptWrite(w, stats_.pushes);
  CkptWrite(w, stats_.pushed_samples);
  CkptWrite(w, stats_.suppressed);
  CkptWrite(w, stats_.model_checks);
  CkptWrite(w, stats_.model_updates);
  CkptWrite(w, stats_.config_updates);
  CkptWrite(w, stats_.archive_queries);
  CkptWrite(w, stats_.compressed_bytes);
  CkptWrite(w, stats_.uncompressed_bytes);
}

Status SensorNode::LoadState(ByteReader& r) {
  CKPT_READ(r, config_.proxy_id);
  CKPT_READ(r, config_.sensing_period);
  CKPT_READ(r, config_.policy);
  CKPT_READ(r, config_.value_delta);
  CKPT_READ(r, config_.model_tolerance);
  CKPT_READ(r, config_.batch_interval);
  CKPT_READ(r, config_.compress);
  CKPT_READ(r, config_.codec.kind);
  CKPT_READ(r, config_.codec.levels);
  CKPT_READ(r, config_.codec.quant_step);
  CKPT_READ(r, config_.codec.denoise);
  CKPT_READ(r, config_.codec.denoise_scale);

  CKPT_READ(r, meter_);
  PRESTO_RETURN_IF_ERROR(flash_.LoadState(r));
  PRESTO_RETURN_IF_ERROR(archive_.LoadState(r));
  PRESTO_RETURN_IF_ERROR(clock_.LoadState(r));
  PRESTO_RETURN_IF_ERROR(sensing_timer_.LoadState(r));
  PRESTO_RETURN_IF_ERROR(batch_timer_.LoadState(r));

  auto model = LoadModelState(r, config_.model_config);
  if (!model.ok()) {
    return model.status();
  }
  model_ = std::move(*model);
  CKPT_READ(r, model_seq_);
  CKPT_READ(r, has_pushed_value_);
  CKPT_READ(r, last_pushed_value_);
  CKPT_READ(r, batch_buffer_);

  CKPT_READ(r, stats_.samples);
  CKPT_READ(r, stats_.pushes);
  CKPT_READ(r, stats_.pushed_samples);
  CKPT_READ(r, stats_.suppressed);
  CKPT_READ(r, stats_.model_checks);
  CKPT_READ(r, stats_.model_updates);
  CKPT_READ(r, stats_.config_updates);
  CKPT_READ(r, stats_.archive_queries);
  CKPT_READ(r, stats_.compressed_bytes);
  CKPT_READ(r, stats_.uncompressed_bytes);
  return OkStatus();
}

}  // namespace presto
