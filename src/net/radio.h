// Radio hardware parameters and timing/energy arithmetic.
//
// The MAC (net/network.cc) expresses everything as byte counts and durations; this file
// turns those into joules using per-state power draws taken from mote-class radio
// datasheets. Two presets are provided: a CC1000/Mica2-class radio (the platform of the
// paper's era, used for the Figure 2 reproduction) and a CC2420/Telos-class radio.

#ifndef SRC_NET_RADIO_H_
#define SRC_NET_RADIO_H_

#include <cstdint>

#include "src/util/sim_time.h"

namespace presto {

struct RadioParams {
  double bit_rate_bps;     // effective over-the-air data rate
  double tx_power_w;       // power while transmitting
  double listen_power_w;   // power while receiving or idle-listening
  double sleep_power_w;    // power while asleep
  Duration turnaround;     // radio state-switch / wakeup time per burst
  Duration lpl_sample;     // duration of one low-power-listening channel sample

  int frame_header_bytes;  // MAC header + addressing
  int frame_crc_bytes;     // frame check sequence
  int max_payload_bytes;   // payload capacity of a single frame
  int ack_bytes;           // length of an ACK frame
  int short_preamble_bytes;  // preamble when the receiver is already listening

  // Time to clock `bytes` through the radio at bit_rate_bps.
  Duration TimeOnAir(int bytes) const {
    return static_cast<Duration>(static_cast<double>(bytes) * 8.0 / bit_rate_bps *
                                 static_cast<double>(kSecond));
  }

  // Energy for `d` of transmission / listening.
  double TxEnergy(Duration d) const { return ToSeconds(d) * tx_power_w; }
  double ListenEnergy(Duration d) const { return ToSeconds(d) * listen_power_w; }
  double SleepEnergy(Duration d) const { return ToSeconds(d) * sleep_power_w; }

  // Frames needed for a payload of `payload_bytes` (at least one, even when empty).
  int FramesFor(int payload_bytes) const {
    if (payload_bytes <= 0) {
      return 1;
    }
    return (payload_bytes + max_payload_bytes - 1) / max_payload_bytes;
  }
};

// CC1000-class radio on a Mica2-era mote (19.2 kbps effective Manchester-coded rate).
RadioParams Cc1000Radio();

// CC2420-class radio on a Telos-era mote (250 kbps 802.15.4).
RadioParams Cc2420Radio();

}  // namespace presto

#endif  // SRC_NET_RADIO_H_
