// Inter-cell wired trunk: the long-haul link between two proxy cells of a
// federation (metro fiber / backhaul), as opposed to the intra-cell wired mesh the
// Network models between co-located proxies.
//
// Each directed cell pair owns one CellLink. The model is a FIFO serial trunk:
// a message of B bytes entering at time t departs behind any earlier traffic still
// on the wire (clear_at), occupies the trunk for B / bandwidth, and lands at the far
// end one propagation latency later. Determinism relies on a usage contract rather
// than locks: a directed link is only ever driven by its source cell's serial
// control lane (federation query routing runs at cell barriers), so send times are
// monotone non-decreasing and no two contexts race on clear_at.
//
// Delivery at the receiving cell is a typed simulator event scheduled by the
// federation; cross-cell delivery granularity is the federation epoch (see
// src/core/federation.h), so latencies below the epoch are only faithful modulo
// barrier clamping — the same caveat the intra-sim lane mailboxes carry.

#ifndef SRC_NET_CELL_LINK_H_
#define SRC_NET_CELL_LINK_H_

#include <cstddef>
#include <cstdint>

#include "src/util/result.h"
#include "src/util/sim_time.h"

namespace presto {

class ByteReader;
class ByteWriter;

struct CellLinkParams {
  Duration latency = Millis(5);    // one-way propagation delay
  double bandwidth_bps = 1e8;      // trunk serialization rate
};

struct CellLinkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t queued = 0;   // messages that had to wait behind earlier traffic
  Duration busy = 0;     // total serialization time spent on the wire
};

class CellLink {
 public:
  explicit CellLink(const CellLinkParams& params);

  // Serializes a `bytes`-sized message entering the trunk at `send_time` and returns
  // its delivery time at the far end. Send times must be monotone non-decreasing
  // (single serial sender — the source cell's control lane).
  SimTime Deliver(SimTime send_time, size_t bytes);

  // Serialization time for `bytes` at the configured bandwidth.
  Duration TransferTime(size_t bytes) const;

  const CellLinkStats& stats() const { return stats_; }
  const CellLinkParams& params() const { return params_; }

  // Checkpoint codec: the serialization clock and counters.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  CellLinkParams params_;
  SimTime clear_at_ = 0;  // when the trunk finishes serializing queued traffic
  CellLinkStats stats_;
};

}  // namespace presto

#endif  // SRC_NET_CELL_LINK_H_
