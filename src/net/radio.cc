#include "src/net/radio.h"

namespace presto {

RadioParams Cc1000Radio() {
  RadioParams p;
  p.bit_rate_bps = 19200.0;
  p.tx_power_w = 60e-3;      // ~20 mA @ 3 V at 5 dBm
  p.listen_power_w = 45e-3;  // ~15 mA @ 3 V receive/idle
  p.sleep_power_w = 6e-6;
  p.turnaround = Millis(2.5);
  p.lpl_sample = Millis(2.5);
  p.frame_header_bytes = 11;
  p.frame_crc_bytes = 2;
  p.max_payload_bytes = 64;
  p.ack_bytes = 11;
  p.short_preamble_bytes = 8;
  return p;
}

RadioParams Cc2420Radio() {
  RadioParams p;
  p.bit_rate_bps = 250000.0;
  p.tx_power_w = 52.2e-3;    // 17.4 mA @ 3 V at 0 dBm
  p.listen_power_w = 56.4e-3;  // 18.8 mA @ 3 V
  p.sleep_power_w = 3e-6;
  p.turnaround = Micros(192 * 2);
  p.lpl_sample = Millis(2.5);
  p.frame_header_bytes = 11;
  p.frame_crc_bytes = 2;
  p.max_payload_bytes = 102;
  p.ack_bytes = 11;
  p.short_preamble_bytes = 4;
  return p;
}

}  // namespace presto
