// Versioned wire protocol for the federation <-> cell process seam.
//
// When a federation runs its cells as separate processes (FederationConfig::
// cell_processes > 1), everything that used to be a function call across the
// federation/cell boundary becomes a length-prefixed frame on a socketpair:
// epoch-barrier stepping, trunk mail (query requests and responses), control
// messages (kill / revive / migrate / query-inject), and the fingerprint + stats
// fold. This header defines that boundary and nothing above it: frames carry
// opaque payload bytes encoded with the util/bytes codecs, so the net layer stays
// agnostic of core types — the orchestrator (src/core/federation.cc) and the
// worker (src/core/cell_worker.cc) agree on each frame type's payload layout.
//
// Frame layout (all little-endian):
//
//   magic   "PFW1"              4 bytes
//   version u8                  kFedWireVersion
//   type    u8                  FedFrameType
//   length  u32                 payload byte count (<= kMaxFedFramePayload)
//   payload length bytes
//
// Decoding is defensive end to end: a truncated header, bad magic, unsupported
// version, unknown type, oversized length prefix, or mid-stream EOF all return a
// clean Status — never a PRESTO_CHECK abort. The parent treats a failed channel as
// a crashed worker (a deployment-visible cell failure), so the decode path must
// stay total on arbitrary bytes.

#ifndef SRC_NET_FED_WIRE_H_
#define SRC_NET_FED_WIRE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/sim_time.h"
#include "src/util/span.h"

namespace presto {

// Version 2 added the kHello handshake frame (the TCP listen/connect bootstrap);
// peers on either side of a skew reject each other with a typed error.
inline constexpr uint8_t kFedWireVersion = 2;

// Hard cap on a single frame payload: far above any real checkpoint, far below
// anything a corrupt length prefix could use to drive an allocation attack.
inline constexpr uint32_t kMaxFedFramePayload = 1u << 30;

// One request or reply crossing the process seam. Requests flow parent -> worker;
// every request gets exactly one reply (kAck / kError / the op's typed reply) —
// the strict RPC discipline that makes the seam deadlock-free.
enum class FedFrameType : uint8_t {
  kError = 0,         // reply: Status (code + message)
  kAck = 1,           // reply: op-specific payload (possibly empty)
  kBootstrap = 2,     // config blob + worker index/count: construct hosted cells
  kStart = 3,         // Start() every hosted cell
  kAttachDriver = 4,  // origin cell + driver params: attach, reply with slot
  kStartDriver = 5,   // cell + slot + duration: begin the arrival process
  kStep = 6,          // barrier + end + mail deliveries: run one federation epoch
  kInject = 7,        // host query probe at an origin cell (QueryAndWait)
  kKillCell = 8,      // mark a cell down everywhere + kill its proxies if hosted
  kReviveCell = 9,    // inverse of kKillCell
  kKillProxy = 10,    // cell + proxy index
  kReviveProxy = 11,  // cell + proxy index
  kMigrateSensor = 12,  // cell + global sensor index + new owner proxy
  kSnapshot = 13,     // fold request: counters, fingerprints, trunks, drivers
  kCkptSave = 14,     // reply: encoded Checkpoint of the hosted cells
  kCkptLoad = 15,     // encoded Checkpoint + down flags: restore hosted cells
  kShutdown = 16,     // clean exit; worker replies kAck then leaves its loop
  kHello = 17,        // handshake: advertised version + cell assignment echo
};
inline constexpr uint8_t kFedFrameTypeCount = 18;

struct FedFrame {
  FedFrameType type = FedFrameType::kAck;
  std::vector<uint8_t> payload;
};

// Serializes header + payload. The only failure mode is an oversized payload.
Result<std::vector<uint8_t>> EncodeFedFrame(const FedFrame& frame);

// Parses one complete frame from `data` (which must contain exactly one frame —
// trailing bytes are an error). All malformed inputs return a Status.
Result<FedFrame> DecodeFedFrame(span<const uint8_t> data);

// An inter-cell trunk message awaiting a federation barrier, in seam form: the
// source cell, target cell, trunk delivery time, op (execute / complete), query
// id, and the byte-encoded body (a QuerySpec or UnifiedQueryResult — opaque
// here). The same struct rides in-process outboxes, kStep frames, and the
// federation checkpoint, so the three paths cannot drift.
struct FedMail {
  int source_cell = 0;
  int target_cell = 0;
  SimTime time = 0;  // trunk delivery time (clamped to the draining barrier)
  uint64_t op = 0;
  uint64_t qid = 0;
  std::vector<uint8_t> body;
};

void CkptWrite(ByteWriter& w, const FedMail& v);
Status CkptRead(ByteReader& r, FedMail& v);

// Cell-down flags as a bit-packed map (BitWriter, one bit per cell), length
// prefixed. Broadcast in kCkptLoad and folded into bootstrap-time restores.
void WriteCellBitmap(ByteWriter& w, const std::vector<uint8_t>& flags);
Status ReadCellBitmap(ByteReader& r, size_t num_cells, std::vector<uint8_t>* flags);

// --- TCP transport (multi-machine federation) ---------------------------------
//
// The socket bootstrap replaces fork: `presto_cell --listen <port>` workers sit
// on a TCP accept loop and the orchestrator connects. Hosts are numeric IPv4
// ("127.0.0.1", "10.0.0.7"); name resolution is the deployment's job, not the
// wire layer's. All three helpers return an fd the caller owns.

// Opens a listening socket bound to host:port. port 0 picks an ephemeral port;
// `*bound_port` (may be null) reports the kernel's choice either way.
Result<int> TcpListen(const char* host, uint16_t port, uint16_t* bound_port);

// Accepts one connection (TCP_NODELAY set). deadline <= 0 blocks forever;
// otherwise a quiet listen socket returns kDeadlineExceeded. `deadline` is wall
// time in the same microsecond unit as Duration.
Result<int> TcpAccept(int listen_fd, Duration deadline);

// Nonblocking connect with a wall-clock deadline (then back to blocking mode,
// TCP_NODELAY set). A dead endpoint fails fast; a black-holed one returns
// kDeadlineExceeded instead of hanging the orchestrator.
Result<int> TcpConnect(const char* host, uint16_t port, Duration deadline);

// Handshake payload: both sides advertise their protocol version redundantly
// with the frame header (so skew is rejected as a *typed* refusal, not a frame
// parse error), and the orchestrator names the worker's cell assignment, which
// the worker must echo back — a worker wired to the wrong endpoint in a
// placement map fails loudly at connect time, not at the first barrier.
struct FedHello {
  uint8_t version = kFedWireVersion;
  int worker_index = 0;
  int num_workers = 1;
};

std::vector<uint8_t> EncodeFedHello(const FedHello& hello);
Status DecodeFedHello(span<const uint8_t> payload, FedHello* hello);

class FrameChannel;

// Orchestrator side: sends kHello{assignment}, expects a kAck echoing the
// assignment with the worker's advertised version. Version skew and assignment
// mismatches are kFailedPrecondition; garbage is kDataLoss; a silent or
// half-open peer is bounded by the channel deadline.
Status FedHelloClient(FrameChannel& channel, int worker_index, int num_workers);

// Worker side: expects exactly one kHello within the channel deadline, replies
// kAck (echo) on success or kError + a typed Status on refusal.
Result<FedHello> FedHelloServer(FrameChannel& channel);

// Blocking frame transport over one end of a socketpair or a connected TCP fd.
// Send/Recv run full write/read loops (short transfers and EINTR handled); a
// peer that closed or crashed surfaces as a non-OK Status from either side,
// never a signal (MSG_NOSIGNAL) or an abort. Not thread-safe: each channel has
// one owner.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { Close(); }

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  Status Send(const FedFrame& frame);
  Result<FedFrame> Recv();

  // Convenience round trip: Send, then Recv exactly one reply.
  Result<FedFrame> Call(const FedFrame& frame);

  // Per-frame wall-clock deadline. 0 (the default) keeps the original fully
  // blocking behaviour — fork-mode socketpairs rely on it, since worker death
  // there always arrives as EOF. With a positive deadline the fd flips to
  // nonblocking and every Send/Recv must complete its *whole frame* within the
  // budget, else kDeadlineExceeded — how a SIGSTOPped or black-holed TCP peer
  // degrades into a contained cell failure instead of wedging the barrier loop.
  void SetDeadline(Duration deadline);
  Duration deadline() const { return deadline_; }

  int fd() const { return fd_; }
  void Close();

 private:
  Status WriteAll(const uint8_t* data, size_t size,
                  std::chrono::steady_clock::time_point deadline);
  // Reads exactly `size` bytes. `*eof_at_start` reports a clean EOF before any
  // byte arrived (peer exited between frames) vs. a mid-frame truncation.
  Status ReadAll(uint8_t* data, size_t size, bool* eof_at_start,
                 std::chrono::steady_clock::time_point deadline);
  // Absolute cutoff for the frame starting now (ignored when deadline_ == 0).
  std::chrono::steady_clock::time_point FrameCutoff() const;

  int fd_ = -1;
  Duration deadline_ = 0;
};

}  // namespace presto

#endif  // SRC_NET_FED_WIRE_H_
