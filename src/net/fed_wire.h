// Versioned wire protocol for the federation <-> cell process seam.
//
// When a federation runs its cells as separate processes (FederationConfig::
// cell_processes > 1), everything that used to be a function call across the
// federation/cell boundary becomes a length-prefixed frame on a socketpair:
// epoch-barrier stepping, trunk mail (query requests and responses), control
// messages (kill / revive / migrate / query-inject), and the fingerprint + stats
// fold. This header defines that boundary and nothing above it: frames carry
// opaque payload bytes encoded with the util/bytes codecs, so the net layer stays
// agnostic of core types — the orchestrator (src/core/federation.cc) and the
// worker (src/core/cell_worker.cc) agree on each frame type's payload layout.
//
// Frame layout (all little-endian):
//
//   magic   "PFW1"              4 bytes
//   version u8                  kFedWireVersion
//   type    u8                  FedFrameType
//   length  u32                 payload byte count (<= kMaxFedFramePayload)
//   payload length bytes
//
// Decoding is defensive end to end: a truncated header, bad magic, unsupported
// version, unknown type, oversized length prefix, or mid-stream EOF all return a
// clean Status — never a PRESTO_CHECK abort. The parent treats a failed channel as
// a crashed worker (a deployment-visible cell failure), so the decode path must
// stay total on arbitrary bytes.

#ifndef SRC_NET_FED_WIRE_H_
#define SRC_NET_FED_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/sim_time.h"
#include "src/util/span.h"

namespace presto {

inline constexpr uint8_t kFedWireVersion = 1;

// Hard cap on a single frame payload: far above any real checkpoint, far below
// anything a corrupt length prefix could use to drive an allocation attack.
inline constexpr uint32_t kMaxFedFramePayload = 1u << 30;

// One request or reply crossing the process seam. Requests flow parent -> worker;
// every request gets exactly one reply (kAck / kError / the op's typed reply) —
// the strict RPC discipline that makes the seam deadlock-free.
enum class FedFrameType : uint8_t {
  kError = 0,         // reply: Status (code + message)
  kAck = 1,           // reply: op-specific payload (possibly empty)
  kBootstrap = 2,     // config blob + worker index/count: construct hosted cells
  kStart = 3,         // Start() every hosted cell
  kAttachDriver = 4,  // origin cell + driver params: attach, reply with slot
  kStartDriver = 5,   // cell + slot + duration: begin the arrival process
  kStep = 6,          // barrier + end + mail deliveries: run one federation epoch
  kInject = 7,        // host query probe at an origin cell (QueryAndWait)
  kKillCell = 8,      // mark a cell down everywhere + kill its proxies if hosted
  kReviveCell = 9,    // inverse of kKillCell
  kKillProxy = 10,    // cell + proxy index
  kReviveProxy = 11,  // cell + proxy index
  kMigrateSensor = 12,  // cell + global sensor index + new owner proxy
  kSnapshot = 13,     // fold request: counters, fingerprints, trunks, drivers
  kCkptSave = 14,     // reply: encoded Checkpoint of the hosted cells
  kCkptLoad = 15,     // encoded Checkpoint + down flags: restore hosted cells
  kShutdown = 16,     // clean exit; worker replies kAck then leaves its loop
};
inline constexpr uint8_t kFedFrameTypeCount = 17;

struct FedFrame {
  FedFrameType type = FedFrameType::kAck;
  std::vector<uint8_t> payload;
};

// Serializes header + payload. The only failure mode is an oversized payload.
Result<std::vector<uint8_t>> EncodeFedFrame(const FedFrame& frame);

// Parses one complete frame from `data` (which must contain exactly one frame —
// trailing bytes are an error). All malformed inputs return a Status.
Result<FedFrame> DecodeFedFrame(span<const uint8_t> data);

// An inter-cell trunk message awaiting a federation barrier, in seam form: the
// source cell, target cell, trunk delivery time, op (execute / complete), query
// id, and the byte-encoded body (a QuerySpec or UnifiedQueryResult — opaque
// here). The same struct rides in-process outboxes, kStep frames, and the
// federation checkpoint, so the three paths cannot drift.
struct FedMail {
  int source_cell = 0;
  int target_cell = 0;
  SimTime time = 0;  // trunk delivery time (clamped to the draining barrier)
  uint64_t op = 0;
  uint64_t qid = 0;
  std::vector<uint8_t> body;
};

void CkptWrite(ByteWriter& w, const FedMail& v);
Status CkptRead(ByteReader& r, FedMail& v);

// Cell-down flags as a bit-packed map (BitWriter, one bit per cell), length
// prefixed. Broadcast in kCkptLoad and folded into bootstrap-time restores.
void WriteCellBitmap(ByteWriter& w, const std::vector<uint8_t>& flags);
Status ReadCellBitmap(ByteReader& r, size_t num_cells, std::vector<uint8_t>* flags);

// Blocking frame transport over one end of a socketpair. Send/Recv run full
// write/read loops (short transfers and EINTR handled); a peer that closed or
// crashed surfaces as a non-OK Status from either side, never a signal
// (MSG_NOSIGNAL) or an abort. Not thread-safe: each channel has one owner.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { Close(); }

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  Status Send(const FedFrame& frame);
  Result<FedFrame> Recv();

  // Convenience round trip: Send, then Recv exactly one reply.
  Result<FedFrame> Call(const FedFrame& frame);

  int fd() const { return fd_; }
  void Close();

 private:
  Status WriteAll(const uint8_t* data, size_t size);
  // Reads exactly `size` bytes. `*eof_at_start` reports a clean EOF before any
  // byte arrived (peer exited between frames) vs. a mid-frame truncation.
  Status ReadAll(uint8_t* data, size_t size, bool* eof_at_start);

  int fd_ = -1;
};

}  // namespace presto

#endif  // SRC_NET_FED_WIRE_H_
