// Per-node energy accounting.
//
// Every joule a simulated sensor spends flows through an EnergyMeter, broken down by
// component, so benches can report both totals (Figure 2's y-axis) and where the energy
// went (radio vs CPU vs flash — the technology-trend argument in the paper's §1).

#ifndef SRC_NET_ENERGY_H_
#define SRC_NET_ENERGY_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace presto {

enum class EnergyComponent : uint8_t {
  kRadioTx = 0,
  kRadioListen,  // active receive + idle listening + LPL channel sampling
  kRadioSleep,
  kCpu,
  kSensing,
  kFlashRead,
  kFlashWrite,
  kFlashErase,
};

inline constexpr int kNumEnergyComponents = 8;

const char* EnergyComponentName(EnergyComponent c);

// Accumulates joules per component. Plain value type; cheap to copy for snapshots.
class EnergyMeter {
 public:
  void Charge(EnergyComponent component, double joules);

  double Total() const;
  double Component(EnergyComponent c) const {
    return totals_[static_cast<size_t>(c)];
  }
  double RadioTotal() const {
    return Component(EnergyComponent::kRadioTx) +
           Component(EnergyComponent::kRadioListen) +
           Component(EnergyComponent::kRadioSleep);
  }

  // "total=12.3J radio_tx=10.1J ..." for logs and tables.
  std::string Breakdown() const;

  void Reset() { totals_.fill(0.0); }

 private:
  std::array<double, kNumEnergyComponents> totals_{};
};

// CPU energy model: motes spend roughly 4 orders of magnitude less energy per useful
// operation than per transmitted bit (Pottie & Kaiser, cited as [8] in the paper). We
// count abstract "ops" in compute-heavy paths (model checks, wavelet transforms) and
// charge this much per op. 1 nJ/op ~ an 8 MHz mote-class MCU at a few mA.
inline constexpr double kCpuJoulesPerOp = 1e-9;

// Energy to acquire one sample from a low-power transducer (temperature/light class).
inline constexpr double kSensingJoulesPerSample = 90e-6;

// Checkpoint codec (ADL overloads picked up by the generic CkptWrite/CkptRead
// container codecs). Exact f64 per-component totals.
inline void CkptWrite(ByteWriter& w, const EnergyMeter& m) {
  for (int c = 0; c < kNumEnergyComponents; ++c) {
    w.WriteF64(m.Component(static_cast<EnergyComponent>(c)));
  }
}
inline Status CkptRead(ByteReader& r, EnergyMeter& m) {
  m.Reset();
  for (int c = 0; c < kNumEnergyComponents; ++c) {
    auto v = r.ReadF64();
    if (!v.ok()) {
      return v.status();
    }
    m.Charge(static_cast<EnergyComponent>(c), *v);
  }
  return OkStatus();
}

}  // namespace presto

#endif  // SRC_NET_ENERGY_H_
