#include "src/net/network.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/assert.h"
#include "src/util/bytes.h"
#include "src/util/ckpt.h"
#include "src/util/logging.h"

namespace presto {
namespace {

std::pair<NodeId, NodeId> OrderedPair(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

uint64_t PackIds(NodeId src, NodeId dst) {
  return static_cast<uint64_t>(src) | (static_cast<uint64_t>(dst) << 32);
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// kFrame payload.b flag bits (above the 16-bit message type).
constexpr uint64_t kFrameDeliver = 1ull << 16;  // hand the message to the receiver
constexpr uint64_t kFrameCharge = 1ull << 17;   // apply deferred receiver radio costs

}  // namespace

Network::Network(Simulator* sim, NetworkParams params, uint64_t seed)
    : sim_(sim), params_(params) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(params_.max_retries >= 0);
  // ctx_[0] keeps the seed deployment's stream so legacy runs replay unchanged; each
  // worker lane draws from its own stream, fixed by lane index (not worker count).
  ctx_.emplace_back(Pcg32(seed, /*stream=*/0x4e4554));
  for (int lane = 0; lane < sim_->num_lanes(); ++lane) {
    ctx_.emplace_back(
        Pcg32(seed, /*stream=*/0x4e4554 + 0x100 + static_cast<uint64_t>(lane)));
  }
  sim_->RegisterSink(this);
}

Network::LaneCtx& Network::Ctx() {
  const int lane = sim_->CurrentLane();
  return ctx_[lane == Simulator::kLaneControl ? 0 : static_cast<size_t>(1 + lane)];
}

void Network::AttachNode(NodeId id, NetNode* node, const NodeRadioConfig& config,
                         EnergyMeter* meter) {
  PRESTO_CHECK(node != nullptr);
  PRESTO_CHECK_MSG(nodes_.find(id) == nodes_.end(), "duplicate node id");
  NodeState state;
  state.handler = node;
  state.config = config;
  state.meter = meter;
  state.idle_checkpoint = sim_->Now();
  state.listen_charged_until = sim_->Now();
  nodes_.emplace(id, std::move(state));
}

void Network::SetNodeLane(NodeId id, int lane) {
  PRESTO_CHECK(lane == Simulator::kLaneControl ||
               (lane >= 0 && lane < sim_->num_lanes()));
  GetNode(id).lane = lane;
  min_wired_dirty_ = true;
}

int Network::NodeLane(NodeId id) const { return GetNode(id).lane; }

void Network::RebindNodeLane(NodeId id, int new_lane) {
  PRESTO_CHECK_MSG(sim_->CurrentLane() == Simulator::kLaneControl,
                   "lane re-binding only from control context");
  PRESTO_CHECK(new_lane == Simulator::kLaneControl ||
               (new_lane >= 0 && new_lane < sim_->num_lanes()));
  NodeState& node = GetNode(id);
  const int old_lane = node.lane;
  if (old_lane == new_lane) {
    return;
  }
  node.lane = new_lane;
  min_wired_dirty_ = true;
  if (old_lane < 0 || new_lane < 0) {
    return;  // control-lane nodes have no per-lane pending state to hand over
  }
  // Pending deliveries for this node all live in its old lane (scheduled there or
  // waiting in its undrained mailboxes): move them, preserving delivery times.
  sim_->RebindMatchingEvents(
      old_lane, new_lane,
      [this, id](EventKind kind, const EventSink* sink, const EventPayload& payload) {
        return kind == EventKind::kFrame && sink == this &&
               static_cast<NodeId>(payload.a >> 32) == id;
      });
  // Coalescing batches the node opened from its old lane migrate contexts so their
  // flushes execute (and their queues live) where the sender now runs. The flush
  // event is re-scheduled at its original absolute time in the new lane.
  LaneCtx& old_ctx = ctx_[static_cast<size_t>(1 + old_lane)];
  LaneCtx& new_ctx = ctx_[static_cast<size_t>(1 + new_lane)];
  for (auto it = old_ctx.batches.begin(); it != old_ctx.batches.end();) {
    if (it->first.first != id) {
      ++it;
      continue;
    }
    PendingBatch batch = std::move(it->second);
    batch.flush.Cancel();
    batch.flush_at = std::max(batch.flush_at, sim_->Now());
    EventPayload flush;
    flush.a = PackIds(it->first.first, it->first.second);
    batch.flush = sim_->ScheduleEventAt(batch.flush_at, EventKind::kBatchFlush, this,
                                        std::move(flush), new_lane);
    const bool inserted =
        new_ctx.batches.emplace(it->first, std::move(batch)).second;
    PRESTO_CHECK_MSG(inserted, "batch already open in the re-bind target lane");
    it = old_ctx.batches.erase(it);
  }
}

void Network::ConnectWired(NodeId a, NodeId b, Duration latency) {
  wired_[OrderedPair(a, b)] = latency >= 0 ? latency : params_.wired_latency;
  min_wired_dirty_ = true;
}

Duration Network::MinCrossLaneWiredLatency() const {
  if (!min_wired_dirty_) {
    return min_cross_lane_wired_;
  }
  Duration best = -1;
  for (const auto& [pair, latency] : wired_) {
    const auto a = nodes_.find(pair.first);
    const auto b = nodes_.find(pair.second);
    if (a == nodes_.end() || b == nodes_.end()) {
      continue;  // link declared before both endpoints attached
    }
    if (a->second.down || b->second.down) {
      continue;
    }
    if (a->second.lane == b->second.lane) {
      continue;
    }
    if (best < 0 || latency < best) {
      best = latency;
    }
  }
  min_cross_lane_wired_ = best;
  min_wired_dirty_ = false;
  return best;
}

void Network::SetLinkLoss(NodeId a, NodeId b, double per_frame_loss) {
  PRESTO_CHECK(per_frame_loss >= 0.0 && per_frame_loss < 1.0);
  link_loss_[OrderedPair(a, b)] = per_frame_loss;
}

void Network::SetNodeDown(NodeId id, bool down) {
  NodeState& node = GetNode(id);
  if (!node.config.powered && !down && node.down) {
    // A rebooting node restarts idle accounting from now.
    node.idle_checkpoint = sim_->Now();
  }
  if (!node.config.powered && down) {
    ChargeIdle(node);
  }
  node.down = down;
  min_wired_dirty_ = true;
  if (down) {
    // Abandon coalescing batches this node is an endpoint of, in every lane context:
    // a dead node's queued epoch traffic must not fire its flush later (inflating
    // messages_dropped and the event fingerprint) — it never reached the radio in the
    // first place. Runs at barriers, so cancelling other lanes' flush events is safe.
    for (LaneCtx& ctx : ctx_) {
      for (auto it = ctx.batches.begin(); it != ctx.batches.end();) {
        if (it->first.first == id || it->first.second == id) {
          it->second.flush.Cancel();
          ++ctx.stats.batches_abandoned;
          it = ctx.batches.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

bool Network::IsNodeDown(NodeId id) const { return GetNode(id).down; }

void Network::SetLplInterval(NodeId id, Duration interval) {
  PRESTO_CHECK(interval > 0);
  NodeState& node = GetNode(id);
  ChargeIdle(node);  // settle at the old rate first
  node.config.lpl_interval = interval;
}

Duration Network::LplInterval(NodeId id) const { return GetNode(id).config.lpl_interval; }

Network::NodeState& Network::GetNode(NodeId id) {
  auto it = nodes_.find(id);
  PRESTO_CHECK_MSG(it != nodes_.end(), "unknown node id");
  return it->second;
}

const Network::NodeState& Network::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  PRESTO_CHECK_MSG(it != nodes_.end(), "unknown node id");
  return it->second;
}

double Network::LinkLoss(NodeId a, NodeId b) const {
  auto it = link_loss_.find(OrderedPair(a, b));
  return it != link_loss_.end() ? it->second : params_.default_frame_loss;
}

const NetStats& Network::stats() const {
  stats_agg_ = NetStats{};
  for (const LaneCtx& ctx : ctx_) {
    stats_agg_.messages_sent += ctx.stats.messages_sent;
    stats_agg_.messages_delivered += ctx.stats.messages_delivered;
    stats_agg_.messages_dropped += ctx.stats.messages_dropped;
    stats_agg_.frames_sent += ctx.stats.frames_sent;
    stats_agg_.frame_retries += ctx.stats.frame_retries;
    stats_agg_.wired_messages += ctx.stats.wired_messages;
    stats_agg_.batch_flushes += ctx.stats.batch_flushes;
    stats_agg_.batched_messages += ctx.stats.batched_messages;
    stats_agg_.batches_abandoned += ctx.stats.batches_abandoned;
    stats_agg_.cross_lane_sends += ctx.stats.cross_lane_sends;
  }
  return stats_agg_;
}

const NodeNetStats& Network::node_stats(NodeId id) const { return GetNode(id).stats; }

void Network::ChargeIdle(NodeState& node) {
  const SimTime now = sim_->Now();
  if (node.config.powered || node.meter == nullptr || node.down) {
    node.idle_checkpoint = now;
    return;
  }
  const Duration elapsed = now - node.idle_checkpoint;
  if (elapsed <= 0) {
    return;
  }
  // LPL channel sampling: one `lpl_sample` listen per `lpl_interval`.
  const double sample_fraction = static_cast<double>(params_.radio.lpl_sample) /
                                 static_cast<double>(node.config.lpl_interval);
  node.meter->Charge(EnergyComponent::kRadioListen,
                     ToSeconds(elapsed) * sample_fraction * params_.radio.listen_power_w);
  node.meter->Charge(EnergyComponent::kRadioSleep,
                     params_.radio.SleepEnergy(elapsed));
  node.idle_checkpoint = now;
}

void Network::ChargeListenWindow(NodeState& node, SimTime from, SimTime until) {
  if (node.config.powered || node.meter == nullptr) {
    return;
  }
  const SimTime start = std::max(from, node.listen_charged_until);
  if (until <= start) {
    return;
  }
  node.meter->Charge(EnergyComponent::kRadioListen,
                     params_.radio.ListenEnergy(until - start));
  node.listen_charged_until = until;
}

void Network::ScheduleFrame(NodeState& dst, Message message, SimTime at, bool deliver,
                            bool charge, double listen_s, double tx_s) {
  EventPayload payload;
  payload.a = PackIds(message.src, message.dst);
  payload.b = static_cast<uint64_t>(message.type) | (deliver ? kFrameDeliver : 0) |
              (charge ? kFrameCharge : 0);
  payload.c = static_cast<uint64_t>(message.sent_at);
  payload.d = static_cast<uint64_t>(message.delivered_at);
  payload.e = DoubleBits(listen_s);
  payload.f = DoubleBits(tx_s);
  payload.bytes = std::move(message.payload);
  sim_->ScheduleEventAt(at, EventKind::kFrame, this, std::move(payload), dst.lane);
}

void Network::OnSimEvent(EventKind kind, EventPayload& payload) {
  if (kind == EventKind::kBatchFlush) {
    FlushBatch(static_cast<NodeId>(payload.a & 0xffffffff),
               static_cast<NodeId>(payload.a >> 32));
    return;
  }
  PRESTO_CHECK(kind == EventKind::kFrame);
  NodeState& dst = GetNode(static_cast<NodeId>(payload.a >> 32));
  const SimTime burst_end = static_cast<SimTime>(payload.d);
  if ((payload.b & kFrameCharge) != 0 && dst.meter != nullptr &&
      !dst.config.powered && !dst.down) {
    // Receiver-side effects of a cross-lane burst, applied in the receiver's lane at
    // the burst's end: preamble/frame listen time, ACK transmissions, and the
    // post-burst stay-awake window.
    dst.meter->Charge(EnergyComponent::kRadioListen,
                      BitsDouble(payload.e) * params_.radio.listen_power_w);
    dst.meter->Charge(EnergyComponent::kRadioTx,
                      BitsDouble(payload.f) * params_.radio.tx_power_w);
    dst.listen_until =
        std::max(dst.listen_until, burst_end + dst.config.post_burst_listen);
    ChargeListenWindow(dst, burst_end, dst.listen_until);
  }
  if ((payload.b & kFrameDeliver) == 0) {
    return;
  }
  if (dst.down) {
    ++Ctx().stats.messages_dropped;
    return;
  }
  ++Ctx().stats.messages_delivered;
  ++dst.stats.messages_received;
  Message message;
  message.src = static_cast<NodeId>(payload.a & 0xffffffff);
  message.dst = static_cast<NodeId>(payload.a >> 32);
  message.type = static_cast<uint16_t>(payload.b & 0xffff);
  message.payload = std::move(payload.bytes);
  message.sent_at = static_cast<SimTime>(payload.c);
  message.delivered_at = burst_end;
  Deliver(dst, message);
}

void Network::SendWired(NodeState& src, NodeState& dst, Message message,
                        Duration latency) {
  const Duration serialization = static_cast<Duration>(
      static_cast<double>(message.payload.size()) * 8.0 / params_.wired_bit_rate_bps *
      static_cast<double>(kSecond));
  const SimTime deliver_at = sim_->Now() + latency + serialization;
  LaneCtx& ctx = Ctx();
  ++ctx.stats.wired_messages;
  ++ctx.stats.messages_sent;
  ++src.stats.messages_sent;
  message.delivered_at = deliver_at;
  ScheduleFrame(dst, std::move(message), deliver_at, /*deliver=*/true,
                /*charge=*/false, 0.0, 0.0);
}

void Network::Deliver(NodeState& dst, const Message& message) {
  if (message.type != kBatchFrameType) {
    dst.handler->OnMessage(message);
    return;
  }
  ByteReader reader(message.payload);
  auto count = reader.ReadVarU64();
  if (!count.ok()) {
    PLOG_WARN("net: undecodable batch frame from %u", message.src);
    return;
  }
  for (uint64_t i = 0; i < *count; ++i) {
    auto type = reader.ReadU16();
    auto queue_delay = reader.ReadVarU64();
    auto payload = reader.ReadBytes();
    if (!type.ok() || !queue_delay.ok() || !payload.ok()) {
      PLOG_WARN("net: truncated batch frame from %u", message.src);
      return;
    }
    Message sub;
    sub.src = message.src;
    sub.dst = message.dst;
    sub.type = *type;
    sub.payload = std::move(*payload);
    // The sender handed this message over before the flush; surface that original
    // instant so receivers (e.g. time-sync beacons) don't see queue delay as latency.
    sub.sent_at = message.sent_at - static_cast<Duration>(*queue_delay);
    sub.delivered_at = message.delivered_at;
    dst.handler->OnMessage(sub);
  }
}

void Network::SendBatched(NodeId src_id, NodeId dst_id, uint16_t type,
                          std::vector<uint8_t> payload) {
  if (params_.batch_epoch <= 0) {
    Send(src_id, dst_id, type, std::move(payload));
    return;
  }
  PendingBatch& batch = Ctx().batches[{src_id, dst_id}];
  batch.queued.push_back(QueuedMessage{type, std::move(payload), sim_->Now()});
  if (batch.queued.size() == 1) {
    // The epoch opens at the first enqueue; later arrivals ride the same flush. The
    // flush fires in the scheduling lane, where this context's batch map lives.
    EventPayload flush;
    flush.a = PackIds(src_id, dst_id);
    batch.flush_at = sim_->Now() + params_.batch_epoch;
    batch.flush = sim_->ScheduleEventAt(batch.flush_at, EventKind::kBatchFlush, this,
                                        std::move(flush));
  }
}

void Network::FlushBatch(NodeId src_id, NodeId dst_id) {
  LaneCtx& ctx = Ctx();
  auto it = ctx.batches.find({src_id, dst_id});
  if (it == ctx.batches.end() || it->second.queued.empty()) {
    return;
  }
  auto queued = std::move(it->second.queued);
  it->second.flush.Cancel();
  ctx.batches.erase(it);
  if (queued.size() == 1) {
    Send(src_id, dst_id, queued[0].type, std::move(queued[0].payload));
    return;
  }
  ByteWriter writer;
  writer.WriteVarU64(queued.size());
  for (QueuedMessage& sub : queued) {
    writer.WriteU16(sub.type);
    writer.WriteVarU64(static_cast<uint64_t>(sim_->Now() - sub.enqueued_at));
    writer.WriteBytes(sub.payload);
  }
  ++ctx.stats.batch_flushes;
  ctx.stats.batched_messages += queued.size();
  Send(src_id, dst_id, kBatchFrameType, writer.TakeBuffer());
}

void Network::Send(NodeId src_id, NodeId dst_id, uint16_t type,
                   std::vector<uint8_t> payload) {
  NodeState& src = GetNode(src_id);
  NodeState& dst = GetNode(dst_id);
  LaneCtx& ctx = Ctx();

  Message message;
  message.src = src_id;
  message.dst = dst_id;
  message.type = type;
  message.payload = std::move(payload);
  message.sent_at = sim_->Now();

  if (src.down) {
    // A dead node cannot transmit; silently drop (caller logic should not be reached).
    ++ctx.stats.messages_dropped;
    return;
  }

  const auto wired_it = wired_.find(OrderedPair(src_id, dst_id));
  if (wired_it != wired_.end()) {
    SendWired(src, dst, std::move(message), wired_it->second);
    return;
  }

  const RadioParams& radio = params_.radio;
  const double loss = LinkLoss(src_id, dst_id);
  // A send executing inside a worker lane may only touch the receiver's state if the
  // receiver lives in the same lane; otherwise receiver-side effects defer to the
  // kFrame event and the rendezvous is computed without reading the live receiver.
  const int current_lane = sim_->CurrentLane();
  const bool cross_lane =
      current_lane != Simulator::kLaneControl && dst.lane != current_lane;

  ++ctx.stats.messages_sent;
  ++src.stats.messages_sent;
  ++src.stats.bursts;
  if (cross_lane) {
    // The observable the re-binder drives to ~zero: a migrated sensor that has been
    // re-bound stops paying the conservative cross-lane rendezvous.
    ++ctx.stats.cross_lane_sends;
    ++src.stats.cross_lane_sends;
  }

  // Burst start: after any transmission already in progress from this sender.
  SimTime t = std::max(sim_->Now(), src.busy_until);

  // --- Rendezvous: how long a preamble must the first frame carry? ---
  // Cross-lane sends to an unpowered receiver conservatively assume it is asleep: its
  // live post-burst listen window belongs to another lane mid-epoch.
  bool receiver_awake =
      dst.config.powered || (!cross_lane && t < dst.listen_until);
  Duration preamble;
  Duration receiver_preamble_rx = 0;  // portion of the preamble the receiver listens to
  if (receiver_awake) {
    preamble = radio.TimeOnAir(radio.short_preamble_bytes);
    receiver_preamble_rx = preamble;
  } else {
    // B-MAC: preamble spans the receiver's LPL check interval; the receiver's periodic
    // channel sample catches it at a uniformly random point and stays on till the data.
    preamble = dst.config.lpl_interval;
    receiver_preamble_rx =
        static_cast<Duration>(ctx.rng.NextDouble() * static_cast<double>(preamble));
  }

  t += radio.turnaround;
  double src_tx_s = ToSeconds(preamble);
  double src_listen_s = 0.0;
  double dst_listen_s = ToSeconds(receiver_preamble_rx);
  double dst_tx_s = 0.0;
  t += preamble;

  // --- Frames ---
  const int total_bytes = static_cast<int>(message.payload.size());
  const int frames = radio.FramesFor(total_bytes);
  const Duration ack_time = radio.TimeOnAir(radio.ack_bytes);
  bool delivered = true;
  for (int f = 0; f < frames && delivered; ++f) {
    const int chunk = std::min(radio.max_payload_bytes,
                               total_bytes - f * radio.max_payload_bytes);
    const int frame_bytes = radio.frame_header_bytes + std::max(chunk, 0) +
                            radio.frame_crc_bytes +
                            (f > 0 ? radio.short_preamble_bytes : 0);
    const Duration frame_time = radio.TimeOnAir(frame_bytes);

    bool frame_acked = false;
    for (int attempt = 0; attempt <= params_.max_retries; ++attempt) {
      ++ctx.stats.frames_sent;
      ++src.stats.frames_sent;
      src.stats.bytes_sent += static_cast<uint64_t>(frame_bytes);
      if (attempt > 0) {
        ++ctx.stats.frame_retries;
        ++src.stats.frame_retries;
      }
      t += frame_time;
      src_tx_s += ToSeconds(frame_time);
      dst_listen_s += ToSeconds(frame_time);

      const bool frame_ok = !dst.down && !ctx.rng.Bernoulli(loss);
      // ACK exchange: receiver turns around and answers; ACKs are short, so give them a
      // quarter of the frame loss probability.
      t += radio.turnaround + ack_time;
      src_listen_s += ToSeconds(ack_time);
      dst_tx_s += ToSeconds(ack_time);
      const bool ack_ok = frame_ok && !ctx.rng.Bernoulli(loss / 4.0);
      if (ack_ok) {
        frame_acked = true;
        break;
      }
    }
    if (!frame_acked) {
      delivered = false;
    }
  }

  // --- Post-burst listen window (unpowered senders await proxy feedback) ---
  const SimTime burst_end = t;
  src.busy_until = burst_end;

  if (src.meter != nullptr && !src.config.powered) {
    src.meter->Charge(EnergyComponent::kRadioTx, src_tx_s * radio.tx_power_w);
    src.meter->Charge(EnergyComponent::kRadioListen, src_listen_s * radio.listen_power_w);
    src.listen_until = std::max(src.listen_until,
                                burst_end + src.config.post_burst_listen);
    ChargeListenWindow(src, burst_end, src.listen_until);
  }
  const bool dst_metered = dst.meter != nullptr && !dst.config.powered;
  if (!cross_lane && dst_metered && !dst.down) {
    dst.meter->Charge(EnergyComponent::kRadioListen, dst_listen_s * radio.listen_power_w);
    dst.meter->Charge(EnergyComponent::kRadioTx, dst_tx_s * radio.tx_power_w);
    // A receiver that was woken stays awake for its own feedback window, making an
    // immediate reply cheap (the "active interaction" in §2 of the paper).
    dst.listen_until = std::max(dst.listen_until,
                                burst_end + dst.config.post_burst_listen);
    ChargeListenWindow(dst, burst_end, dst.listen_until);
  }

  if (!delivered) {
    ++ctx.stats.messages_dropped;
    ++src.stats.messages_dropped;
    PLOG_DEBUG("net: message %u->%u type=%u dropped after retries", src_id, dst_id, type);
    if (cross_lane && dst_metered) {
      // The receiver still listened to the failed burst; charge it in its own lane.
      Message charge_only;
      charge_only.src = src_id;
      charge_only.dst = dst_id;
      charge_only.delivered_at = burst_end;
      ScheduleFrame(dst, std::move(charge_only), burst_end, /*deliver=*/false,
                    /*charge=*/true, dst_listen_s, dst_tx_s);
    }
    return;
  }

  message.delivered_at = burst_end;
  ScheduleFrame(dst, std::move(message), burst_end, /*deliver=*/true,
                /*charge=*/cross_lane && dst_metered, dst_listen_s, dst_tx_s);
}

namespace {

void WriteNodeNetStats(ByteWriter& w, const NodeNetStats& s) {
  CkptWrite(w, s.messages_sent);
  CkptWrite(w, s.messages_received);
  CkptWrite(w, s.messages_dropped);
  CkptWrite(w, s.bursts);
  CkptWrite(w, s.frames_sent);
  CkptWrite(w, s.frame_retries);
  CkptWrite(w, s.bytes_sent);
  CkptWrite(w, s.cross_lane_sends);
}

Status ReadNodeNetStats(ByteReader& r, NodeNetStats& s) {
  CKPT_READ(r, s.messages_sent);
  CKPT_READ(r, s.messages_received);
  CKPT_READ(r, s.messages_dropped);
  CKPT_READ(r, s.bursts);
  CKPT_READ(r, s.frames_sent);
  CKPT_READ(r, s.frame_retries);
  CKPT_READ(r, s.bytes_sent);
  CKPT_READ(r, s.cross_lane_sends);
  return OkStatus();
}

void WriteNetStats(ByteWriter& w, const NetStats& s) {
  CkptWrite(w, s.messages_sent);
  CkptWrite(w, s.messages_delivered);
  CkptWrite(w, s.messages_dropped);
  CkptWrite(w, s.frames_sent);
  CkptWrite(w, s.frame_retries);
  CkptWrite(w, s.wired_messages);
  CkptWrite(w, s.batch_flushes);
  CkptWrite(w, s.batched_messages);
  CkptWrite(w, s.batches_abandoned);
  CkptWrite(w, s.cross_lane_sends);
}

Status ReadNetStats(ByteReader& r, NetStats& s) {
  CKPT_READ(r, s.messages_sent);
  CKPT_READ(r, s.messages_delivered);
  CKPT_READ(r, s.messages_dropped);
  CKPT_READ(r, s.frames_sent);
  CKPT_READ(r, s.frame_retries);
  CKPT_READ(r, s.wired_messages);
  CKPT_READ(r, s.batch_flushes);
  CKPT_READ(r, s.batched_messages);
  CKPT_READ(r, s.batches_abandoned);
  CKPT_READ(r, s.cross_lane_sends);
  return OkStatus();
}

}  // namespace

Status Network::SaveState(ByteWriter& w) const {
  CkptWrite(w, static_cast<uint64_t>(nodes_.size()));
  for (const auto& [id, node] : nodes_) {
    CkptWrite(w, id);
    CkptWrite(w, node.config.powered);
    CkptWrite(w, node.config.lpl_interval);
    CkptWrite(w, node.config.post_burst_listen);
    CkptWrite(w, node.down);
    CkptWrite(w, node.lane);
    CkptWrite(w, node.busy_until);
    CkptWrite(w, node.listen_until);
    CkptWrite(w, node.listen_charged_until);
    CkptWrite(w, node.idle_checkpoint);
    WriteNodeNetStats(w, node.stats);
  }
  CkptWrite(w, link_loss_);
  CkptWrite(w, wired_);
  CkptWrite(w, static_cast<uint64_t>(ctx_.size()));
  for (const LaneCtx& ctx : ctx_) {
    CkptWrite(w, ctx.rng);
    WriteNetStats(w, ctx.stats);
    CkptWrite(w, static_cast<uint64_t>(ctx.batches.size()));
    for (const auto& [pair, batch] : ctx.batches) {
      CkptWrite(w, pair);
      CkptWrite(w, batch.flush_at);
      CkptWrite(w, static_cast<uint64_t>(batch.queued.size()));
      for (const QueuedMessage& queued : batch.queued) {
        CkptWrite(w, queued.type);
        CkptWrite(w, queued.payload);
        CkptWrite(w, queued.enqueued_at);
      }
    }
  }
  return OkStatus();
}

Status Network::LoadState(ByteReader& r) {
  uint64_t node_count = 0;
  CKPT_READ(r, node_count);
  if (node_count != nodes_.size()) {
    return FailedPreconditionError("net restore: node table mismatch");
  }
  for (auto& [id, node] : nodes_) {
    NodeId saved_id = 0;
    CKPT_READ(r, saved_id);
    if (saved_id != id) {
      return FailedPreconditionError("net restore: node id mismatch");
    }
    CKPT_READ(r, node.config.powered);
    CKPT_READ(r, node.config.lpl_interval);
    CKPT_READ(r, node.config.post_burst_listen);
    CKPT_READ(r, node.down);
    CKPT_READ(r, node.lane);
    CKPT_READ(r, node.busy_until);
    CKPT_READ(r, node.listen_until);
    CKPT_READ(r, node.listen_charged_until);
    CKPT_READ(r, node.idle_checkpoint);
    PRESTO_RETURN_IF_ERROR(ReadNodeNetStats(r, node.stats));
  }
  CKPT_READ(r, link_loss_);
  CKPT_READ(r, wired_);
  uint64_t ctx_count = 0;
  CKPT_READ(r, ctx_count);
  if (ctx_count != ctx_.size()) {
    return FailedPreconditionError("net restore: lane context count mismatch");
  }
  for (LaneCtx& ctx : ctx_) {
    CKPT_READ(r, ctx.rng);
    PRESTO_RETURN_IF_ERROR(ReadNetStats(r, ctx.stats));
    ctx.batches.clear();
    uint64_t batch_count = 0;
    CKPT_READ(r, batch_count);
    for (uint64_t i = 0; i < batch_count; ++i) {
      std::pair<NodeId, NodeId> pair;
      CKPT_READ(r, pair);
      PendingBatch batch;
      CKPT_READ(r, batch.flush_at);
      uint64_t queued_count = 0;
      CKPT_READ(r, queued_count);
      for (uint64_t q = 0; q < queued_count; ++q) {
        QueuedMessage queued;
        CKPT_READ(r, queued.type);
        CKPT_READ(r, queued.payload);
        CKPT_READ(r, queued.enqueued_at);
        batch.queued.push_back(std::move(queued));
      }
      // The flush handle is stale until the simulator restores the kBatchFlush
      // event and OnEventRestored re-captures it.
      batch.flush = EventHandle();
      ctx.batches.emplace(pair, std::move(batch));
    }
  }
  min_wired_dirty_ = true;
  return OkStatus();
}

void Network::OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                              const EventHandle& handle, int lane) {
  if (kind != EventKind::kBatchFlush) {
    return;  // kFrame deliveries carry no handle state
  }
  LaneCtx& ctx =
      ctx_[lane == Simulator::kLaneControl ? 0 : static_cast<size_t>(1 + lane)];
  const std::pair<NodeId, NodeId> pair{static_cast<NodeId>(payload.a & 0xffffffff),
                                       static_cast<NodeId>(payload.a >> 32)};
  auto it = ctx.batches.find(pair);
  if (it != ctx.batches.end()) {
    it->second.flush = handle;
    it->second.flush_at = t;
  }
}

void Network::SettleIdleEnergy() {
  for (auto& [id, node] : nodes_) {
    (void)id;
    ChargeIdle(node);
  }
}

double Network::EstimatePullEnergyJ(NodeId sensor_id, size_t request_bytes,
                                    size_t reply_bytes) const {
  const NodeState& sensor = GetNode(sensor_id);
  if (sensor.config.powered) {
    return 0.0;  // tethered endpoints are unmetered
  }
  const RadioParams& radio = params_.radio;
  // Airtime of a loss-free burst carrying `bytes` of payload: per-frame header/CRC
  // overhead plus the continuation preamble on follow-up frames, and one ACK each.
  const auto burst = [&radio](size_t bytes, Duration& frames_time, Duration& acks_time) {
    const int total = static_cast<int>(bytes);
    const int frames = radio.FramesFor(total);
    frames_time = 0;
    for (int f = 0; f < frames; ++f) {
      const int chunk =
          std::min(radio.max_payload_bytes, total - f * radio.max_payload_bytes);
      frames_time += radio.TimeOnAir(radio.frame_header_bytes + std::max(chunk, 0) +
                                     radio.frame_crc_bytes +
                                     (f > 0 ? radio.short_preamble_bytes : 0));
    }
    acks_time = static_cast<Duration>(frames) * radio.TimeOnAir(radio.ack_bytes);
  };
  Duration request_frames = 0;
  Duration request_acks = 0;
  burst(request_bytes, request_frames, request_acks);
  Duration reply_frames = 0;
  Duration reply_acks = 0;
  burst(reply_bytes, reply_frames, reply_acks);
  // Request leg (proxy -> sleeping sensor): the sensor's channel sample catches the
  // long preamble at a uniformly random point — expected listen is half the LPL
  // interval — then it receives the frames and transmits the ACKs.
  const double request_j =
      radio.ListenEnergy(sensor.config.lpl_interval / 2 + request_frames) +
      radio.TxEnergy(request_acks);
  // Reply leg (sensor -> powered proxy): short-preamble rendezvous, frame
  // transmissions, ACK listening, then the post-burst stay-awake window.
  const double reply_j =
      radio.TxEnergy(radio.TimeOnAir(radio.short_preamble_bytes) + reply_frames) +
      radio.ListenEnergy(reply_acks + sensor.config.post_burst_listen);
  return request_j + reply_j;
}

}  // namespace presto
