#include "src/net/energy.h"

#include <cstdio>

#include "src/util/assert.h"

namespace presto {

const char* EnergyComponentName(EnergyComponent c) {
  switch (c) {
    case EnergyComponent::kRadioTx:
      return "radio_tx";
    case EnergyComponent::kRadioListen:
      return "radio_listen";
    case EnergyComponent::kRadioSleep:
      return "radio_sleep";
    case EnergyComponent::kCpu:
      return "cpu";
    case EnergyComponent::kSensing:
      return "sensing";
    case EnergyComponent::kFlashRead:
      return "flash_read";
    case EnergyComponent::kFlashWrite:
      return "flash_write";
    case EnergyComponent::kFlashErase:
      return "flash_erase";
  }
  return "?";
}

void EnergyMeter::Charge(EnergyComponent component, double joules) {
  PRESTO_DCHECK(joules >= 0.0);
  totals_[static_cast<size_t>(component)] += joules;
}

double EnergyMeter::Total() const {
  double sum = 0.0;
  for (double t : totals_) {
    sum += t;
  }
  return sum;
}

std::string EnergyMeter::Breakdown() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "total=%.3fJ", Total());
  std::string out = buf;
  for (int i = 0; i < kNumEnergyComponents; ++i) {
    if (totals_[static_cast<size_t>(i)] > 0.0) {
      std::snprintf(buf, sizeof(buf), " %s=%.3fJ",
                    EnergyComponentName(static_cast<EnergyComponent>(i)),
                    totals_[static_cast<size_t>(i)]);
      out += buf;
    }
  }
  return out;
}

}  // namespace presto
