// Tiered sensor-network fabric: low-power wireless links between sensors and their
// proxy, wired links between proxies.
//
// Wireless transfers follow a B-MAC-style low-power-listening (LPL) MAC:
//  - Unpowered receivers sleep and sample the channel every `lpl_interval`; reaching one
//    costs the sender a preamble spanning that interval, and delivery waits for it.
//    This is the duty-cycling knob the PRESTO proxy tunes from query latency needs (§3).
//  - Powered receivers (tethered proxies) listen continuously; senders use a short
//    preamble.
//  - A message larger than one frame is sent as a burst; only the first frame pays the
//    rendezvous preamble, later frames ride the awake receiver. Fewer bursts and fewer
//    frames are exactly the per-packet overheads (preamble/header/ACK) that the paper's
//    Figure 2 attributes batching gains to.
//  - After a burst, an unpowered sender keeps its radio in receive mode for
//    `post_burst_listen`, giving the proxy a cheap rendezvous for feedback (model
//    parameters, reconfiguration, queries) — the paper's "active interaction" pattern.
//  - Frames are lost independently with a per-link probability; each frame is ACKed and
//    retried up to `max_retries`, after which the whole message is dropped.
//
// All sender/receiver energy is charged to the nodes' EnergyMeters; idle costs (sleep +
// LPL channel sampling) accrue per configured interval via SettleIdleEnergy().
//
// Shard-lane routing: when the simulator runs in lane mode, every node carries a lane
// (SetNodeLane; the deployment pins it to the node's home shard). Sends execute in the
// caller's lane and touch only sender-side state plus barrier-stable reads of the
// receiver (powered flag, LPL config, down flag); delivery executes as a typed kFrame
// event in the *receiver's* lane (via the simulator mailbox when lanes differ).
// Receiver-side radio effects of a cross-lane burst — listen/ACK energy and the
// post-burst listen window — ride the kFrame event instead of being applied at send
// time, and a cross-lane sender conservatively assumes an unpowered receiver is asleep
// (full-preamble rendezvous) rather than reading its live listen window. Loss draws,
// aggregate stats, and per-link coalescing state are all per-lane (independent seeded
// streams), so lane execution shares no mutable state and replays are bit-identical
// regardless of worker count.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/energy.h"
#include "src/net/radio.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace presto {

using NodeId = uint32_t;

struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  uint16_t type = 0;  // application-defined discriminator
  std::vector<uint8_t> payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

// Implemented by anything attached to the network (sensors, proxies).
class NetNode {
 public:
  virtual ~NetNode() = default;
  virtual void OnMessage(const Message& message) = 0;
};

struct NodeRadioConfig {
  // Tethered: always listening, energy unmetered.
  bool powered = false;
  Duration lpl_interval = Seconds(1);       // LPL check period when unpowered
  Duration post_burst_listen = Seconds(5);  // stay-awake window after sending a burst
};

struct NetworkParams {
  RadioParams radio = Cc1000Radio();
  int max_retries = 5;
  // Per-frame loss probability unless SetLinkLoss overrides.
  double default_frame_loss = 0.0;
  Duration wired_latency = Millis(2);
  double wired_bit_rate_bps = 1e6;
  // SendBatched coalescing window: same-destination messages enqueued within this
  // epoch ride one radio transaction (one rendezvous preamble, one burst). 0 disables
  // coalescing — SendBatched degenerates to Send.
  Duration batch_epoch = 0;
};

struct NodeNetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t messages_dropped = 0;  // sent by this node, never delivered
  uint64_t bursts = 0;
  uint64_t frames_sent = 0;  // includes retransmissions
  uint64_t frame_retries = 0;
  uint64_t bytes_sent = 0;         // payload + per-frame overhead actually radiated
  uint64_t cross_lane_sends = 0;   // radio sends that crossed a lane boundary
};

struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t frames_sent = 0;
  uint64_t frame_retries = 0;
  uint64_t wired_messages = 0;
  uint64_t batch_flushes = 0;      // coalesced transactions actually radiated
  uint64_t batched_messages = 0;   // application messages that rode a shared flush
  uint64_t batches_abandoned = 0;  // pending batches dropped because an endpoint died
  uint64_t cross_lane_sends = 0;   // radio sends whose receiver lived in another lane
};

class Network : public EventSink {
 public:
  // Lane contexts are sized off `sim`: configure lanes before constructing.
  Network(Simulator* sim, NetworkParams params, uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node. `meter` may be null (energy not tracked, e.g. powered proxies).
  // `node` must outlive the network or be detached before destruction.
  void AttachNode(NodeId id, NetNode* node, const NodeRadioConfig& config,
                  EnergyMeter* meter);

  // Pins the node's events (deliveries, receive-side radio effects) to a simulator
  // lane. The deployment assigns lane = home shard at build time; a long-lived
  // ownership change re-binds the lane at a barrier with RebindNodeLane (short-lived
  // failover traffic simply crosses lanes). Call from control context.
  void SetNodeLane(NodeId id, int lane);
  int NodeLane(NodeId id) const;

  // Barrier-time lane re-binding: re-pins the node to `new_lane` and hands pending
  // work over — queued/undrained kFrame deliveries for the node move lane
  // (preserving delivery times), and coalescing batches the node opened in its old
  // lane context migrate with their flush times intact. Control context only.
  void RebindNodeLane(NodeId id, int new_lane);

  // Declares a wired (tethered) pair; messages between them use the wired path with
  // `latency` propagation delay (< 0: the params_.wired_latency default).
  void ConnectWired(NodeId a, NodeId b, Duration latency = -1);

  // Minimum propagation latency over wired links whose live endpoints sit in
  // different lanes, or -1 when no such link exists (legacy mode, all-intra-lane
  // topologies). This is the conservative lookahead bound for the wired mesh: with
  // sim epoch <= this, a barrier always lands between a cross-lane wired send and
  // its delivery, so the mailbox clamp never defers it (sub-epoch latency stays
  // faithful). Recomputed lazily; mutations (kill/revive/lane re-bind/link change)
  // invalidate the cache. Control context only.
  Duration MinCrossLaneWiredLatency() const;

  // Sets the symmetric per-frame loss probability between two nodes.
  void SetLinkLoss(NodeId a, NodeId b, double per_frame_loss);

  // Failure injection: a down node neither receives nor sends (sends are dropped after
  // the sender pays for its futile retries). Marking a node down abandons any pending
  // coalescing batches it is an endpoint of — their flush timers are cancelled so a
  // dead proxy's queued epoch traffic neither fires nor skews drop/fingerprint counts;
  // the batches are tallied under stats().batches_abandoned instead. Control/barrier
  // context only (mutations execute with every lane idle).
  void SetNodeDown(NodeId id, bool down);
  bool IsNodeDown(NodeId id) const;

  // Duty-cycle adaptation: changes a node's LPL check interval (charging idle energy
  // accrued so far at the old rate).
  void SetLplInterval(NodeId id, Duration interval);
  Duration LplInterval(NodeId id) const;

  // Sends `payload` from src to dst. Cost, loss, latency are simulated; on success
  // dst->OnMessage fires at the computed delivery time, in dst's lane.
  void Send(NodeId src, NodeId dst, uint16_t type, std::vector<uint8_t> payload);

  // Like Send, but same-(src,dst) messages enqueued within `params.batch_epoch` of the
  // first one coalesce into a single radio transaction: one preamble rendezvous, one
  // burst, one wired frame — exactly the per-transaction overheads the paper's Figure 2
  // attributes batching gains to. Delivery still invokes dst->OnMessage once per
  // application message, in enqueue order. With batch_epoch == 0 this is Send.
  // Coalescing state is per-lane: a link whose sends come from both a lane and the
  // control context (barrier-time snapshots) keeps independent windows per context.
  void SendBatched(NodeId src, NodeId dst, uint16_t type, std::vector<uint8_t> payload);

  // Charges sleep + LPL sampling energy up to Now for all unpowered nodes. Call before
  // reading meters at the end of a run (idempotent; may be called mid-run). Control
  // context only.
  void SettleIdleEnergy();

  // Deterministic closed-form estimate of the *sensor-side* radio energy one archive
  // pull costs: the expected LPL rendezvous on the request (half a preamble of
  // listening plus frame reception and ACK transmissions) plus the reply burst
  // (short-preamble transmission to the powered proxy, ACK listening, and the
  // post-burst stay-awake window). Loss-free expected value — it attributes energy
  // per query without perturbing any rng stream, so per-query accounting stays
  // replay-identical. Used by the query driver's J/query attribution.
  double EstimatePullEnergyJ(NodeId sensor_id, size_t request_bytes,
                             size_t reply_bytes) const;

  // Aggregated over all lane contexts. Control context only.
  const NetStats& stats() const;
  const NodeNetStats& node_stats(NodeId id) const;
  const NetworkParams& params() const { return params_; }

  void OnSimEvent(EventKind kind, EventPayload& payload) override;
  void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                       const EventHandle& handle, int lane) override;

  // Checkpoint: per-node radio state (down/lane/busy/listen windows/energy
  // checkpoints/stats), link tables, and every lane context (rng stream, stats,
  // open coalescing batches with their queued messages and absolute flush times).
  // In-flight kFrame deliveries live in the simulator's queues, not here; batch
  // flush handles are re-captured via OnEventRestored. Control context only.
  Status SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  struct NodeState {
    NetNode* handler = nullptr;
    NodeRadioConfig config;
    EnergyMeter* meter = nullptr;  // null => unmetered
    bool down = false;
    int lane = Simulator::kLaneControl;
    SimTime busy_until = 0;           // sender-side serialization of bursts
    SimTime listen_until = 0;         // end of current post-burst listen window
    SimTime listen_charged_until = 0; // listen energy already charged up to here
    SimTime idle_checkpoint = 0;      // idle energy settled up to here
    NodeNetStats stats;
  };

  // A sub-message waiting in a per-link coalescing queue. `enqueued_at` rides the
  // batch frame so receivers see the original hand-over time as Message::sent_at —
  // time-sync beacons must not absorb coalescing queue delay as clock offset.
  struct QueuedMessage {
    uint16_t type = 0;
    std::vector<uint8_t> payload;
    SimTime enqueued_at = 0;
  };
  struct PendingBatch {
    std::vector<QueuedMessage> queued;
    EventHandle flush;
    SimTime flush_at = 0;  // absolute flush time (preserved across lane re-binds)
  };
  // Everything a concurrently executing lane mutates, sharded per lane so parallel
  // execution shares nothing: loss/rendezvous draws, aggregate counters, coalescing
  // windows. Index 0 is the control context (and the whole network in legacy mode).
  struct LaneCtx {
    Pcg32 rng;
    NetStats stats;
    std::map<std::pair<NodeId, NodeId>, PendingBatch> batches;
    explicit LaneCtx(Pcg32 r) : rng(r) {}
  };

  NodeState& GetNode(NodeId id);
  const NodeState& GetNode(NodeId id) const;
  LaneCtx& Ctx();
  double LinkLoss(NodeId a, NodeId b) const;
  void ChargeIdle(NodeState& node);
  void ChargeListenWindow(NodeState& node, SimTime from, SimTime until);
  void SendWired(NodeState& src, NodeState& dst, Message message, Duration latency);
  void FlushBatch(NodeId src, NodeId dst);
  // Schedules the typed kFrame event that delivers `message` (and/or applies deferred
  // receiver-side radio effects) in dst's lane at `at`.
  void ScheduleFrame(NodeState& dst, Message message, SimTime at, bool deliver,
                     bool charge, double listen_s, double tx_s);
  // Hands a delivered message to the node, unpacking coalesced batch frames into their
  // constituent application messages (delivered in enqueue order).
  void Deliver(NodeState& dst, const Message& message);

  Simulator* sim_;
  NetworkParams params_;
  std::vector<LaneCtx> ctx_;  // [0] control/legacy, [1 + lane] per worker lane
  std::map<NodeId, NodeState> nodes_;
  std::map<std::pair<NodeId, NodeId>, double> link_loss_;
  std::map<std::pair<NodeId, NodeId>, Duration> wired_;  // pair -> propagation latency
  mutable Duration min_cross_lane_wired_ = -1;
  mutable bool min_wired_dirty_ = true;
  mutable NetStats stats_agg_;  // materialized by stats()
};

// Reserved message type for coalesced batch frames (application types stay below it).
constexpr uint16_t kBatchFrameType = 0xFFFF;

}  // namespace presto

#endif  // SRC_NET_NETWORK_H_
