#include "src/net/cell_link.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

CellLink::CellLink(const CellLinkParams& params) : params_(params) {
  PRESTO_CHECK_MSG(params_.latency >= 0, "negative trunk latency");
  PRESTO_CHECK_MSG(params_.bandwidth_bps > 0.0, "trunk bandwidth must be positive");
}

Duration CellLink::TransferTime(size_t bytes) const {
  return static_cast<Duration>(static_cast<double>(bytes) * 8.0 /
                               params_.bandwidth_bps * static_cast<double>(kSecond));
}

SimTime CellLink::Deliver(SimTime send_time, size_t bytes) {
  const SimTime depart = std::max(send_time, clear_at_);
  if (depart > send_time) {
    ++stats_.queued;
  }
  const Duration transfer = TransferTime(bytes);
  clear_at_ = depart + transfer;
  ++stats_.messages;
  stats_.bytes += static_cast<uint64_t>(bytes);
  stats_.busy += transfer;
  return clear_at_ + params_.latency;
}

void CellLink::SaveState(ByteWriter& w) const {
  CkptWrite(w, clear_at_);
  CkptWrite(w, stats_.messages);
  CkptWrite(w, stats_.bytes);
  CkptWrite(w, stats_.queued);
  CkptWrite(w, stats_.busy);
}

Status CellLink::LoadState(ByteReader& r) {
  CKPT_READ(r, clear_at_);
  CKPT_READ(r, stats_.messages);
  CKPT_READ(r, stats_.bytes);
  CKPT_READ(r, stats_.queued);
  CKPT_READ(r, stats_.busy);
  return OkStatus();
}

}  // namespace presto
