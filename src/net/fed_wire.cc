#include "src/net/fed_wire.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "src/util/bitpack.h"
#include "src/util/ckpt.h"

namespace presto {
namespace {

constexpr uint8_t kMagic[4] = {'P', 'F', 'W', '1'};
constexpr size_t kHeaderBytes = 4 + 1 + 1 + 4;  // magic, version, type, length

void PutHeader(uint8_t* out, FedFrameType type, uint32_t length) {
  std::memcpy(out, kMagic, 4);
  out[4] = kFedWireVersion;
  out[5] = static_cast<uint8_t>(type);
  out[6] = static_cast<uint8_t>(length & 0xff);
  out[7] = static_cast<uint8_t>((length >> 8) & 0xff);
  out[8] = static_cast<uint8_t>((length >> 16) & 0xff);
  out[9] = static_cast<uint8_t>((length >> 24) & 0xff);
}

// Validates everything but the payload bytes; fills type + length on success.
Status ParseHeader(const uint8_t* header, FedFrameType* type, uint32_t* length) {
  if (std::memcmp(header, kMagic, 4) != 0) {
    return DataLossError("fed_wire: bad frame magic");
  }
  if (header[4] != kFedWireVersion) {
    return FailedPreconditionError("fed_wire: unsupported protocol version");
  }
  if (header[5] >= kFedFrameTypeCount) {
    return DataLossError("fed_wire: unknown frame type");
  }
  const uint32_t len = static_cast<uint32_t>(header[6]) |
                       (static_cast<uint32_t>(header[7]) << 8) |
                       (static_cast<uint32_t>(header[8]) << 16) |
                       (static_cast<uint32_t>(header[9]) << 24);
  if (len > kMaxFedFramePayload) {
    return DataLossError("fed_wire: oversized frame length prefix");
  }
  *type = static_cast<FedFrameType>(header[5]);
  *length = len;
  return OkStatus();
}

}  // namespace

Result<std::vector<uint8_t>> EncodeFedFrame(const FedFrame& frame) {
  if (frame.payload.size() > kMaxFedFramePayload) {
    return ResourceExhaustedError("fed_wire: frame payload exceeds the cap");
  }
  std::vector<uint8_t> out(kHeaderBytes + frame.payload.size());
  PutHeader(out.data(), frame.type, static_cast<uint32_t>(frame.payload.size()));
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

Result<FedFrame> DecodeFedFrame(span<const uint8_t> data) {
  if (data.size() < kHeaderBytes) {
    return DataLossError("fed_wire: truncated frame header");
  }
  FedFrameType type;
  uint32_t length = 0;
  PRESTO_RETURN_IF_ERROR(ParseHeader(data.data(), &type, &length));
  if (data.size() < kHeaderBytes + length) {
    return DataLossError("fed_wire: truncated frame payload");
  }
  if (data.size() > kHeaderBytes + length) {
    return DataLossError("fed_wire: trailing bytes after frame");
  }
  FedFrame frame;
  frame.type = type;
  frame.payload.assign(data.data() + kHeaderBytes, data.data() + data.size());
  return frame;
}

void CkptWrite(ByteWriter& w, const FedMail& v) {
  CkptWrite(w, v.source_cell);
  CkptWrite(w, v.target_cell);
  CkptWrite(w, v.time);
  CkptWrite(w, v.op);
  CkptWrite(w, v.qid);
  w.WriteBytes(span<const uint8_t>(v.body));
}

Status CkptRead(ByteReader& r, FedMail& v) {
  CKPT_READ(r, v.source_cell);
  CKPT_READ(r, v.target_cell);
  CKPT_READ(r, v.time);
  CKPT_READ(r, v.op);
  CKPT_READ(r, v.qid);
  auto body = r.ReadBytes();
  if (!body.ok()) {
    return body.status();
  }
  v.body = std::move(*body);
  return OkStatus();
}

void WriteCellBitmap(ByteWriter& w, const std::vector<uint8_t>& flags) {
  w.WriteVarU64(flags.size());
  BitWriter bits;
  for (const uint8_t flag : flags) {
    bits.WriteBits(flag != 0 ? 1 : 0, 1);
  }
  w.WriteBytes(span<const uint8_t>(bits.bytes()));
}

Status ReadCellBitmap(ByteReader& r, size_t num_cells, std::vector<uint8_t>* flags) {
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count != num_cells) {
    return DataLossError("fed_wire: cell bitmap count mismatch");
  }
  auto packed = r.ReadBytes();
  if (!packed.ok()) {
    return packed.status();
  }
  if (packed->size() != (num_cells + 7) / 8) {
    return DataLossError("fed_wire: cell bitmap byte count mismatch");
  }
  BitReader bits(*packed);
  flags->assign(num_cells, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    (*flags)[c] = static_cast<uint8_t>(bits.ReadBits(1));
  }
  return OkStatus();
}

Status FrameChannel::WriteAll(const uint8_t* data, size_t size) {
  if (fd_ < 0) {
    return UnavailableError("fed_wire: channel closed");
  }
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return UnavailableError("fed_wire: send failed (peer gone?)");
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FrameChannel::ReadAll(uint8_t* data, size_t size, bool* eof_at_start) {
  if (fd_ < 0) {
    return UnavailableError("fed_wire: channel closed");
  }
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return UnavailableError("fed_wire: recv failed");
    }
    if (n == 0) {
      if (eof_at_start != nullptr) {
        *eof_at_start = (done == 0);
      }
      return done == 0 ? UnavailableError("fed_wire: peer closed the channel")
                       : DataLossError("fed_wire: mid-frame EOF");
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FrameChannel::Send(const FedFrame& frame) {
  auto encoded = EncodeFedFrame(frame);
  if (!encoded.ok()) {
    return encoded.status();
  }
  return WriteAll(encoded->data(), encoded->size());
}

Result<FedFrame> FrameChannel::Recv() {
  uint8_t header[kHeaderBytes];
  bool eof_at_start = false;
  PRESTO_RETURN_IF_ERROR(ReadAll(header, sizeof(header), &eof_at_start));
  FedFrameType type;
  uint32_t length = 0;
  PRESTO_RETURN_IF_ERROR(ParseHeader(header, &type, &length));
  FedFrame frame;
  frame.type = type;
  frame.payload.resize(length);
  if (length > 0) {
    PRESTO_RETURN_IF_ERROR(ReadAll(frame.payload.data(), length, nullptr));
  }
  return frame;
}

Result<FedFrame> FrameChannel::Call(const FedFrame& frame) {
  PRESTO_RETURN_IF_ERROR(Send(frame));
  return Recv();
}

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace presto
