#include "src/net/fed_wire.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/bitpack.h"
#include "src/util/ckpt.h"

namespace presto {
namespace {

constexpr uint8_t kMagic[4] = {'P', 'F', 'W', '1'};
constexpr size_t kHeaderBytes = 4 + 1 + 1 + 4;  // magic, version, type, length

using WireClock = std::chrono::steady_clock;

// Waits until fd is ready for `events` (or has an error/hangup to report — the
// subsequent send/recv surfaces it). `has_deadline` false polls indefinitely.
Status WaitReady(int fd, short events, WireClock::time_point deadline,
                 bool has_deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (has_deadline) {
      const auto now = WireClock::now();
      if (now >= deadline) {
        return DeadlineExceededError("fed_wire: frame deadline expired");
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      timeout_ms = static_cast<int>(std::min<long long>(left + 1, 60000));
    }
    struct pollfd entry;
    entry.fd = fd;
    entry.events = events;
    entry.revents = 0;
    const int n = ::poll(&entry, 1, timeout_ms);
    if (n > 0) {
      return OkStatus();
    }
    if (n < 0 && errno != EINTR) {
      return UnavailableError("fed_wire: poll failed");
    }
    // Timed out or EINTR: loop re-checks the absolute deadline.
  }
}

Status SetNonBlocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return UnavailableError("fed_wire: fcntl(F_GETFL) failed");
  }
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return UnavailableError("fed_wire: fcntl(F_SETFL) failed");
  }
  return OkStatus();
}

Status ResolveIpv4(const char* host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr->sin_addr) != 1) {
    return InvalidArgumentError("fed_wire: endpoint host must be numeric IPv4");
  }
  return OkStatus();
}

void SetNoDelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void PutHeader(uint8_t* out, FedFrameType type, uint32_t length) {
  std::memcpy(out, kMagic, 4);
  out[4] = kFedWireVersion;
  out[5] = static_cast<uint8_t>(type);
  out[6] = static_cast<uint8_t>(length & 0xff);
  out[7] = static_cast<uint8_t>((length >> 8) & 0xff);
  out[8] = static_cast<uint8_t>((length >> 16) & 0xff);
  out[9] = static_cast<uint8_t>((length >> 24) & 0xff);
}

// Validates everything but the payload bytes; fills type + length on success.
Status ParseHeader(const uint8_t* header, FedFrameType* type, uint32_t* length) {
  if (std::memcmp(header, kMagic, 4) != 0) {
    return DataLossError("fed_wire: bad frame magic");
  }
  if (header[4] != kFedWireVersion) {
    return FailedPreconditionError("fed_wire: unsupported protocol version");
  }
  if (header[5] >= kFedFrameTypeCount) {
    return DataLossError("fed_wire: unknown frame type");
  }
  const uint32_t len = static_cast<uint32_t>(header[6]) |
                       (static_cast<uint32_t>(header[7]) << 8) |
                       (static_cast<uint32_t>(header[8]) << 16) |
                       (static_cast<uint32_t>(header[9]) << 24);
  if (len > kMaxFedFramePayload) {
    return DataLossError("fed_wire: oversized frame length prefix");
  }
  *type = static_cast<FedFrameType>(header[5]);
  *length = len;
  return OkStatus();
}

}  // namespace

Result<std::vector<uint8_t>> EncodeFedFrame(const FedFrame& frame) {
  if (frame.payload.size() > kMaxFedFramePayload) {
    return ResourceExhaustedError("fed_wire: frame payload exceeds the cap");
  }
  std::vector<uint8_t> out(kHeaderBytes + frame.payload.size());
  PutHeader(out.data(), frame.type, static_cast<uint32_t>(frame.payload.size()));
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

Result<FedFrame> DecodeFedFrame(span<const uint8_t> data) {
  if (data.size() < kHeaderBytes) {
    return DataLossError("fed_wire: truncated frame header");
  }
  FedFrameType type;
  uint32_t length = 0;
  PRESTO_RETURN_IF_ERROR(ParseHeader(data.data(), &type, &length));
  if (data.size() < kHeaderBytes + length) {
    return DataLossError("fed_wire: truncated frame payload");
  }
  if (data.size() > kHeaderBytes + length) {
    return DataLossError("fed_wire: trailing bytes after frame");
  }
  FedFrame frame;
  frame.type = type;
  frame.payload.assign(data.data() + kHeaderBytes, data.data() + data.size());
  return frame;
}

void CkptWrite(ByteWriter& w, const FedMail& v) {
  CkptWrite(w, v.source_cell);
  CkptWrite(w, v.target_cell);
  CkptWrite(w, v.time);
  CkptWrite(w, v.op);
  CkptWrite(w, v.qid);
  w.WriteBytes(span<const uint8_t>(v.body));
}

Status CkptRead(ByteReader& r, FedMail& v) {
  CKPT_READ(r, v.source_cell);
  CKPT_READ(r, v.target_cell);
  CKPT_READ(r, v.time);
  CKPT_READ(r, v.op);
  CKPT_READ(r, v.qid);
  auto body = r.ReadBytes();
  if (!body.ok()) {
    return body.status();
  }
  v.body = std::move(*body);
  return OkStatus();
}

void WriteCellBitmap(ByteWriter& w, const std::vector<uint8_t>& flags) {
  w.WriteVarU64(flags.size());
  BitWriter bits;
  for (const uint8_t flag : flags) {
    bits.WriteBits(flag != 0 ? 1 : 0, 1);
  }
  w.WriteBytes(span<const uint8_t>(bits.bytes()));
}

Status ReadCellBitmap(ByteReader& r, size_t num_cells, std::vector<uint8_t>* flags) {
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count != num_cells) {
    return DataLossError("fed_wire: cell bitmap count mismatch");
  }
  auto packed = r.ReadBytes();
  if (!packed.ok()) {
    return packed.status();
  }
  if (packed->size() != (num_cells + 7) / 8) {
    return DataLossError("fed_wire: cell bitmap byte count mismatch");
  }
  BitReader bits(*packed);
  flags->assign(num_cells, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    (*flags)[c] = static_cast<uint8_t>(bits.ReadBits(1));
  }
  return OkStatus();
}

Result<int> TcpListen(const char* host, uint16_t port, uint16_t* bound_port) {
  sockaddr_in addr;
  PRESTO_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return UnavailableError("fed_wire: socket() failed");
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return UnavailableError("fed_wire: bind failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return UnavailableError("fed_wire: listen failed");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    std::memset(&bound, 0, sizeof(bound));
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      return UnavailableError("fed_wire: getsockname failed");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<int> TcpAccept(int listen_fd, Duration deadline) {
  const auto cutoff = WireClock::now() + std::chrono::microseconds(deadline);
  for (;;) {
    PRESTO_RETURN_IF_ERROR(WaitReady(listen_fd, POLLIN, cutoff, deadline > 0));
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      SetNoDelay(fd);
      return fd;
    }
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      continue;  // the connection evaporated between poll and accept
    }
    return UnavailableError("fed_wire: accept failed");
  }
}

Result<int> TcpConnect(const char* host, uint16_t port, Duration deadline) {
  sockaddr_in addr;
  PRESTO_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return UnavailableError("fed_wire: socket() failed");
  }
  Status mode = SetNonBlocking(fd, true);
  if (!mode.ok()) {
    ::close(fd);
    return mode;
  }
  const auto cutoff = WireClock::now() + std::chrono::microseconds(deadline);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    ::close(fd);
    return UnavailableError("fed_wire: connect failed");
  }
  if (rc != 0) {
    const Status ready = WaitReady(fd, POLLOUT, cutoff, deadline > 0);
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return UnavailableError("fed_wire: connect failed");
    }
  }
  mode = SetNonBlocking(fd, false);
  if (!mode.ok()) {
    ::close(fd);
    return mode;
  }
  SetNoDelay(fd);
  return fd;
}

std::vector<uint8_t> EncodeFedHello(const FedHello& hello) {
  ByteWriter w;
  w.WriteU8(hello.version);
  CkptWrite(w, hello.worker_index);
  CkptWrite(w, hello.num_workers);
  return w.TakeBuffer();
}

Status DecodeFedHello(span<const uint8_t> payload, FedHello* hello) {
  ByteReader r(payload);
  auto version = r.ReadU8();
  if (!version.ok()) {
    return version.status();
  }
  hello->version = *version;
  CKPT_READ(r, hello->worker_index);
  CKPT_READ(r, hello->num_workers);
  if (!r.AtEnd()) {
    return DataLossError("fed_wire: trailing bytes after hello");
  }
  if (hello->num_workers < 1 || hello->worker_index < 0 ||
      hello->worker_index >= hello->num_workers) {
    return DataLossError("fed_wire: hello cell assignment out of range");
  }
  return OkStatus();
}

Status FedHelloClient(FrameChannel& channel, int worker_index, int num_workers) {
  FedHello hello;
  hello.version = kFedWireVersion;
  hello.worker_index = worker_index;
  hello.num_workers = num_workers;
  FedFrame frame;
  frame.type = FedFrameType::kHello;
  frame.payload = EncodeFedHello(hello);
  auto reply = channel.Call(frame);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply->type == FedFrameType::kError) {
    ByteReader r(span<const uint8_t>(reply->payload));
    Status refused = OkStatus();
    if (!CkptRead(r, refused).ok() || refused.ok()) {
      return DataLossError("fed_wire: malformed hello refusal");
    }
    return refused;
  }
  if (reply->type != FedFrameType::kAck) {
    return DataLossError("fed_wire: unexpected hello reply type");
  }
  FedHello theirs;
  PRESTO_RETURN_IF_ERROR(DecodeFedHello(span<const uint8_t>(reply->payload),
                                        &theirs));
  if (theirs.version != kFedWireVersion) {
    return FailedPreconditionError(
        "fed_wire: worker advertises an unsupported protocol version");
  }
  if (theirs.worker_index != worker_index || theirs.num_workers != num_workers) {
    return FailedPreconditionError(
        "fed_wire: worker acknowledged a different cell assignment");
  }
  return OkStatus();
}

Result<FedHello> FedHelloServer(FrameChannel& channel) {
  auto request = channel.Recv();
  if (!request.ok()) {
    return request.status();
  }
  const auto refuse = [&channel](Status why) -> Status {
    FedFrame reply;
    reply.type = FedFrameType::kError;
    ByteWriter w;
    CkptWrite(w, why);
    reply.payload = w.TakeBuffer();
    (void)channel.Send(reply);
    return why;
  };
  if (request->type != FedFrameType::kHello) {
    return refuse(
        FailedPreconditionError("fed_wire: expected a hello handshake frame"));
  }
  FedHello hello;
  const Status decoded =
      DecodeFedHello(span<const uint8_t>(request->payload), &hello);
  if (!decoded.ok()) {
    return refuse(decoded);
  }
  if (hello.version != kFedWireVersion) {
    return refuse(FailedPreconditionError(
        "fed_wire: unsupported protocol version"));
  }
  FedFrame ack;
  ack.type = FedFrameType::kAck;
  FedHello mine = hello;
  mine.version = kFedWireVersion;
  ack.payload = EncodeFedHello(mine);
  PRESTO_RETURN_IF_ERROR(channel.Send(ack));
  return hello;
}

void FrameChannel::SetDeadline(Duration deadline) {
  deadline_ = deadline > 0 ? deadline : 0;
  if (fd_ >= 0) {
    (void)SetNonBlocking(fd_, deadline_ > 0);
  }
}

std::chrono::steady_clock::time_point FrameChannel::FrameCutoff() const {
  return WireClock::now() + std::chrono::microseconds(deadline_);
}

Status FrameChannel::WriteAll(const uint8_t* data, size_t size,
                              std::chrono::steady_clock::time_point deadline) {
  if (fd_ < 0) {
    return UnavailableError("fed_wire: channel closed");
  }
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (deadline_ > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        PRESTO_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, deadline, true));
        continue;
      }
      return UnavailableError("fed_wire: send failed (peer gone?)");
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FrameChannel::ReadAll(uint8_t* data, size_t size, bool* eof_at_start,
                             std::chrono::steady_clock::time_point deadline) {
  if (fd_ < 0) {
    return UnavailableError("fed_wire: channel closed");
  }
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (deadline_ > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        PRESTO_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, deadline, true));
        continue;
      }
      return UnavailableError("fed_wire: recv failed");
    }
    if (n == 0) {
      if (eof_at_start != nullptr) {
        *eof_at_start = (done == 0);
      }
      return done == 0 ? UnavailableError("fed_wire: peer closed the channel")
                       : DataLossError("fed_wire: mid-frame EOF");
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FrameChannel::Send(const FedFrame& frame) {
  auto encoded = EncodeFedFrame(frame);
  if (!encoded.ok()) {
    return encoded.status();
  }
  return WriteAll(encoded->data(), encoded->size(), FrameCutoff());
}

Result<FedFrame> FrameChannel::Recv() {
  const auto cutoff = FrameCutoff();
  uint8_t header[kHeaderBytes];
  bool eof_at_start = false;
  PRESTO_RETURN_IF_ERROR(ReadAll(header, sizeof(header), &eof_at_start, cutoff));
  FedFrameType type;
  uint32_t length = 0;
  PRESTO_RETURN_IF_ERROR(ParseHeader(header, &type, &length));
  FedFrame frame;
  frame.type = type;
  frame.payload.resize(length);
  if (length > 0) {
    PRESTO_RETURN_IF_ERROR(ReadAll(frame.payload.data(), length, nullptr, cutoff));
  }
  return frame;
}

Result<FedFrame> FrameChannel::Call(const FedFrame& frame) {
  PRESTO_RETURN_IF_ERROR(Send(frame));
  return Recv();
}

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace presto
