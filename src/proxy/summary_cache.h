// The proxy's per-sensor summary cache (paper §3).
//
// Not a memory or web cache: entries carry *provenance*. A value may be a real pushed
// observation, a pulled archive record, or a model extrapolation; higher-authority
// entries refine lower ones ("the summary data cache ... can be progressively refined
// as more accurate data is obtained from the remote sensors"). Timestamps are on the
// proxy's reference timeline (drift-corrected before insertion).

#ifndef SRC_PROXY_SUMMARY_CACHE_H_
#define SRC_PROXY_SUMMARY_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/util/result.h"
#include "src/util/sample.h"

namespace presto {

class ByteReader;
class ByteWriter;

// Ascending authority: a kPulled record beats a kPushed one at the same instant, which
// beats an extrapolation.
enum class CacheSource : uint8_t {
  kExtrapolated = 0,
  kPushed = 1,
  kPulled = 2,
};

const char* CacheSourceName(CacheSource source);

struct CachedValue {
  double value = 0.0;
  CacheSource source = CacheSource::kPushed;
  SimTime inserted_at = 0;  // when the proxy learned this value (arrival, not data time)
};

// Checkpoint codec for cache entries (ADL overloads used by the container codecs).
void CkptWrite(ByteWriter& w, const CachedValue& v);
Status CkptRead(ByteReader& r, CachedValue& v);

struct CacheStats {
  uint64_t inserts = 0;
  uint64_t refinements = 0;      // an existing entry upgraded in authority/value
  uint64_t downgrades_rejected = 0;  // lower-authority duplicate ignored
  uint64_t evictions = 0;
};

class SummaryCache {
 public:
  explicit SummaryCache(size_t max_entries = 1 << 20);

  // `inserted_at` records when the proxy learned the value — event-detection and
  // staleness logic distinguish data time from arrival time.
  void Insert(SimTime t, double value, CacheSource source, SimTime inserted_at = 0);

  // Entry closest to `t` within `max_gap` (either side).
  std::optional<std::pair<SimTime, CachedValue>> Nearest(SimTime t,
                                                         Duration max_gap) const;

  // Most recent entry.
  std::optional<std::pair<SimTime, CachedValue>> Latest() const;

  // All entries with t in [range.start, range.end), in time order.
  std::vector<Sample> Range(TimeInterval range) const;

  // Range() with provenance, for consumers that must distinguish observed data from
  // extrapolations (e.g. event-detection scoring).
  struct Entry {
    SimTime t = 0;
    double value = 0.0;
    CacheSource source = CacheSource::kPushed;
    SimTime inserted_at = 0;
  };
  std::vector<Entry> RangeEntries(TimeInterval range) const;

  // Fraction of the expected sample slots in `range` that have a cached entry, given
  // the sensor's sampling period. >1 clamps to 1.
  double CoverageFraction(TimeInterval range, Duration expected_period) const;

  void EvictBefore(SimTime t);

  size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  // Checkpoint codec: entries with provenance, plus stats (max_entries_ is config).
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  size_t max_entries_;
  std::map<SimTime, CachedValue> entries_;
  CacheStats stats_;
};

}  // namespace presto

#endif  // SRC_PROXY_SUMMARY_CACHE_H_
