#include "src/proxy/prediction_engine.h"

#include <algorithm>

#include "src/models/registry.h"
#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/logging.h"

namespace presto {

PredictionEngine::PredictionEngine(const PredictionEngineParams& params)
    : params_(params) {
  PRESTO_CHECK(params_.min_training_samples >= 16);
  PRESTO_CHECK(params_.min_training_span > 0);
}

void PredictionEngine::ObserveTraining(const Sample& sample) {
  if (!history_.empty() && sample.t <= history_.back().t) {
    // Out-of-order (pulled past data): insert in place, dropping exact duplicates.
    auto it = std::lower_bound(
        history_.begin(), history_.end(), sample,
        [](const Sample& a, const Sample& b) { return a.t < b.t; });
    if (it != history_.end() && it->t == sample.t) {
      it->value = sample.value;
      return;
    }
    history_.insert(it, sample);
  } else {
    history_.push_back(sample);
  }
  if (history_.size() > params_.max_history) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<ptrdiff_t>(history_.size() -
                                                             params_.max_history));
  }
}

std::vector<Sample> PredictionEngine::ResampleHistory() const {
  PRESTO_CHECK(history_.size() >= 2);
  const Duration step = params_.model_config.sample_period;
  std::vector<Sample> out;
  const SimTime start = history_.front().t;
  const SimTime end = history_.back().t;
  out.reserve(static_cast<size_t>((end - start) / step) + 1);
  size_t j = 0;
  for (SimTime t = start; t <= end; t += step) {
    while (j + 1 < history_.size() && history_[j + 1].t <= t) {
      ++j;
    }
    double v;
    if (j + 1 < history_.size() && history_[j].t <= t) {
      const Sample& a = history_[j];
      const Sample& b = history_[j + 1];
      const double frac =
          b.t == a.t
              ? 0.0
              : static_cast<double>(t - a.t) / static_cast<double>(b.t - a.t);
      v = a.value * (1.0 - frac) + b.value * frac;
    } else {
      v = history_[j].value;
    }
    out.push_back(Sample{t, v});
  }
  return out;
}

Result<std::vector<uint8_t>> PredictionEngine::FitAndSerialize() {
  if (!ReadyToFit()) {
    return FailedPreconditionError("prediction engine: not enough training data");
  }
  auto model = CreateModel(params_.model_type, params_.model_config);
  const std::vector<Sample> grid = ResampleHistory();
  PRESTO_RETURN_IF_ERROR(model->Fit(grid));
  model_ = std::move(model);
  fit_count_ += 1;
  last_fit_time_ = history_.back().t;
  recent_pushes_.clear();
  return model_->Serialize();
}

Status PredictionEngine::InstallSerialized(const std::vector<uint8_t>& params) {
  auto model = DeserializeModel(params, params_.model_config);
  if (!model.ok()) {
    return model.status();
  }
  model_ = std::move(*model);
  return OkStatus();
}

void PredictionEngine::MirrorAnchor(const Sample& sample) {
  if (model_ != nullptr) {
    model_->OnAnchor(sample);
  }
}

Result<Prediction> PredictionEngine::Predict(SimTime t) const {
  if (model_ == nullptr) {
    return FailedPreconditionError("prediction engine: no model fitted");
  }
  return model_->Predict(t);
}

void PredictionEngine::NoteDeviationPush(SimTime now) {
  recent_pushes_.push_back(now);
  const SimTime cutoff = now - push_window_;
  auto it = std::lower_bound(recent_pushes_.begin(), recent_pushes_.end(), cutoff);
  recent_pushes_.erase(recent_pushes_.begin(), it);
}

bool PredictionEngine::ShouldRefit(SimTime now) const {
  if (model_ == nullptr) {
    return ReadyToFit();
  }
  if (now - last_fit_time_ > params_.refit_interval) {
    return true;
  }
  const double expected =
      static_cast<double>(push_window_) /
      static_cast<double>(params_.model_config.sample_period);
  return static_cast<double>(recent_pushes_.size()) > params_.refit_push_rate * expected;
}

}  // namespace presto

namespace presto {

void PredictionEngine::SaveState(ByteWriter& w) const {
  CkptWrite(w, history_);
  SaveModelState(w, model_.get());
  CkptWrite(w, last_fit_time_);
  CkptWrite(w, fit_count_);
  CkptWrite(w, recent_pushes_);
  CkptWrite(w, push_window_);
}

Status PredictionEngine::LoadState(ByteReader& r) {
  CKPT_READ(r, history_);
  auto model = LoadModelState(r, params_.model_config);
  if (!model.ok()) {
    return model.status();
  }
  model_ = std::move(*model);
  CKPT_READ(r, last_fit_time_);
  CKPT_READ(r, fit_count_);
  CKPT_READ(r, recent_pushes_);
  CKPT_READ(r, push_window_);
  return OkStatus();
}

}  // namespace presto
