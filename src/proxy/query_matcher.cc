#include "src/proxy/query_matcher.h"

#include <algorithm>
#include <cmath>

#include "src/util/ckpt.h"

namespace presto {

void QueryProfile::Note(Duration latency_bound, double tolerance) {
  ++queries;
  if (queries == 1) {
    min_latency_bound = latency_bound;
    min_tolerance = tolerance;
  } else {
    min_latency_bound = std::min(min_latency_bound, latency_bound);
    min_tolerance = std::min(min_tolerance, tolerance);
  }
}

void QueryProfile::Reset(SimTime now) {
  queries = 0;
  min_latency_bound = 0;
  min_tolerance = 0.0;
  window_start = now;
}

QuerySensorMatcher::QuerySensorMatcher(const MatcherParams& params) : params_(params) {}

void QuerySensorMatcher::NoteQuery(Duration latency_bound, double tolerance) {
  profile_.Note(latency_bound, tolerance);
}

std::optional<ConfigUpdateMsg> QuerySensorMatcher::Recommend(SimTime now) {
  if (profile_.queries == 0) {
    return std::nullopt;
  }
  const Duration lpl = std::clamp(
      static_cast<Duration>(static_cast<double>(profile_.min_latency_bound) *
                            params_.lpl_fraction_of_latency),
      params_.min_lpl, params_.max_lpl);
  const double quant =
      std::clamp(profile_.min_tolerance * params_.quant_fraction_of_tolerance,
                 params_.min_quant, params_.max_quant);

  auto moved = [&](double applied, double target) {
    if (applied <= 0.0) {
      return true;
    }
    return std::abs(target - applied) / applied > params_.hysteresis;
  };
  ConfigUpdateMsg msg;
  if (moved(static_cast<double>(applied_lpl_), static_cast<double>(lpl))) {
    msg.fields |= kCfgLplInterval;
    msg.lpl_interval = lpl;
    applied_lpl_ = lpl;
  }
  if (moved(applied_quant_, quant)) {
    msg.fields |= kCfgCompression;
    msg.compress = true;
    msg.quant_step = quant;
    applied_quant_ = quant;
  }
  profile_.Reset(now);
  if (msg.fields == 0) {
    return std::nullopt;
  }
  return msg;
}

}  // namespace presto

namespace presto {

void QuerySensorMatcher::SaveState(ByteWriter& w) const {
  CkptWrite(w, profile_.queries);
  CkptWrite(w, profile_.min_latency_bound);
  CkptWrite(w, profile_.min_tolerance);
  CkptWrite(w, profile_.window_start);
  CkptWrite(w, applied_lpl_);
  CkptWrite(w, applied_quant_);
}

Status QuerySensorMatcher::LoadState(ByteReader& r) {
  CKPT_READ(r, profile_.queries);
  CKPT_READ(r, profile_.min_latency_bound);
  CKPT_READ(r, profile_.min_tolerance);
  CKPT_READ(r, profile_.window_start);
  CKPT_READ(r, applied_lpl_);
  CKPT_READ(r, applied_quant_);
  return OkStatus();
}

}  // namespace presto
