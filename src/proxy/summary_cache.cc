#include "src/proxy/summary_cache.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/ckpt.h"

namespace presto {

const char* CacheSourceName(CacheSource source) {
  switch (source) {
    case CacheSource::kExtrapolated:
      return "extrapolated";
    case CacheSource::kPushed:
      return "pushed";
    case CacheSource::kPulled:
      return "pulled";
  }
  return "?";
}

SummaryCache::SummaryCache(size_t max_entries) : max_entries_(max_entries) {
  PRESTO_CHECK(max_entries_ > 0);
}

void SummaryCache::Insert(SimTime t, double value, CacheSource source,
                          SimTime inserted_at) {
  auto it = entries_.find(t);
  if (it != entries_.end()) {
    if (static_cast<uint8_t>(source) >= static_cast<uint8_t>(it->second.source)) {
      it->second = CachedValue{value, source, inserted_at};
      ++stats_.refinements;
    } else {
      ++stats_.downgrades_rejected;
    }
    return;
  }
  entries_.emplace(t, CachedValue{value, source, inserted_at});
  ++stats_.inserts;
  while (entries_.size() > max_entries_) {
    entries_.erase(entries_.begin());
    ++stats_.evictions;
  }
}

std::optional<std::pair<SimTime, CachedValue>> SummaryCache::Nearest(
    SimTime t, Duration max_gap) const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  auto after = entries_.lower_bound(t);
  std::optional<std::pair<SimTime, CachedValue>> best;
  Duration best_gap = max_gap;
  if (after != entries_.end() && after->first - t <= best_gap) {
    best_gap = after->first - t;
    best = *after;
  }
  if (after != entries_.begin()) {
    auto before = std::prev(after);
    if (t - before->first <= best_gap) {
      best = *before;
    }
  }
  return best;
}

std::optional<std::pair<SimTime, CachedValue>> SummaryCache::Latest() const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  return *entries_.rbegin();
}

std::vector<Sample> SummaryCache::Range(TimeInterval range) const {
  std::vector<Sample> out;
  for (auto it = entries_.lower_bound(range.start);
       it != entries_.end() && it->first < range.end; ++it) {
    out.push_back(Sample{it->first, it->second.value});
  }
  return out;
}

std::vector<SummaryCache::Entry> SummaryCache::RangeEntries(TimeInterval range) const {
  std::vector<Entry> out;
  for (auto it = entries_.lower_bound(range.start);
       it != entries_.end() && it->first < range.end; ++it) {
    out.push_back(
        Entry{it->first, it->second.value, it->second.source, it->second.inserted_at});
  }
  return out;
}

double SummaryCache::CoverageFraction(TimeInterval range,
                                      Duration expected_period) const {
  PRESTO_CHECK(expected_period > 0);
  const int64_t expected = std::max<int64_t>(1, range.Length() / expected_period);
  int64_t have = 0;
  for (auto it = entries_.lower_bound(range.start);
       it != entries_.end() && it->first < range.end; ++it) {
    ++have;
  }
  return std::min(1.0, static_cast<double>(have) / static_cast<double>(expected));
}

void SummaryCache::EvictBefore(SimTime t) {
  auto end = entries_.lower_bound(t);
  const size_t n = static_cast<size_t>(std::distance(entries_.begin(), end));
  entries_.erase(entries_.begin(), end);
  stats_.evictions += n;
}

}  // namespace presto

namespace presto {

void CkptWrite(ByteWriter& w, const CachedValue& v) {
  w.WriteF64(v.value);
  CkptWrite(w, v.source);
  CkptWrite(w, v.inserted_at);
}

Status CkptRead(ByteReader& r, CachedValue& v) {
  auto value = r.ReadF64();
  if (!value.ok()) {
    return value.status();
  }
  v.value = *value;
  CKPT_READ(r, v.source);
  CKPT_READ(r, v.inserted_at);
  return OkStatus();
}

void SummaryCache::SaveState(ByteWriter& w) const {
  CkptWrite(w, entries_);
  CkptWrite(w, stats_.inserts);
  CkptWrite(w, stats_.refinements);
  CkptWrite(w, stats_.downgrades_rejected);
  CkptWrite(w, stats_.evictions);
}

Status SummaryCache::LoadState(ByteReader& r) {
  CKPT_READ(r, entries_);
  CKPT_READ(r, stats_.inserts);
  CKPT_READ(r, stats_.refinements);
  CKPT_READ(r, stats_.downgrades_rejected);
  CKPT_READ(r, stats_.evictions);
  return OkStatus();
}

}  // namespace presto
