#include "src/proxy/proxy_node.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/logging.h"
#include "src/wavelet/codec.h"

namespace presto {

const char* AnswerSourceName(AnswerSource source) {
  switch (source) {
    case AnswerSource::kCacheHit:
      return "cache-hit";
    case AnswerSource::kExtrapolated:
      return "extrapolated";
    case AnswerSource::kSensorPull:
      return "sensor-pull";
    case AnswerSource::kFailed:
      return "failed";
  }
  return "?";
}

ProxyNode::ProxyNode(Simulator* sim, Network* net, const ProxyNodeConfig& config)
    : sim_(sim),
      net_(net),
      config_(config),
      maintenance_timer_(sim, [this] { RunMaintenance(); }) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(net_ != nullptr);
  sim_->RegisterSink(this);
  NodeRadioConfig radio;
  radio.powered = true;
  net_->AttachNode(config_.id, this, radio, /*meter=*/nullptr);
}

void ProxyNode::RegisterSensor(NodeId sensor_id, Duration sensing_period, bool replica) {
  PRESTO_CHECK_MSG(sensors_.find(sensor_id) == sensors_.end(),
                   "sensor already registered");
  auto state = std::make_unique<SensorState>(sensor_id, sensing_period, config_.engine,
                                             config_.matcher);
  state->is_replica = replica;
  sensors_.emplace(sensor_id, std::move(state));
}

void ProxyNode::UnregisterSensor(NodeId sensor_id) {
  auto it = sensors_.find(sensor_id);
  PRESTO_CHECK_MSG(it != sensors_.end(), "unregistering unknown sensor");
  AbortPullsFor(sensor_id, UnavailableError("sensor migrated away from this proxy"));
  sensors_.erase(it);
}

void ProxyNode::PromoteSensor(NodeId sensor_id) {
  SensorState& sensor = GetSensor(sensor_id);
  if (!sensor.is_replica) {
    return;
  }
  sensor.is_replica = false;
  // The new owner decides afresh when to (re)send a model to the sensor.
  sensor.model_sent = false;
  ++stats_.promotions;
}

void ProxyNode::DemoteSensor(NodeId sensor_id) {
  SensorState& sensor = GetSensor(sensor_id);
  if (sensor.is_replica) {
    return;
  }
  AbortPullsFor(sensor_id, UnavailableError("ownership handed back during the pull"));
  sensor.is_replica = true;
  sensor.replica_targets.clear();
  ++stats_.demotions;
}

void ProxyNode::SetReplicaTargets(NodeId sensor_id, std::vector<NodeId> targets) {
  GetSensor(sensor_id).replica_targets = std::move(targets);
}

void ProxyNode::SendStateSnapshot(NodeId sensor_id, NodeId to_proxy, Duration history) {
  SensorState& sensor = GetSensor(sensor_id);
  const SimTime now = sim_->Now();
  const std::vector<Sample> recent =
      sensor.cache.Range(TimeInterval{now - history, now + 1});
  // One serialization path with checkpointing: the snapshot payload is a
  // checkpoint-codec blob (exact f64 samples + the full-precision model), so the
  // transferred bytes the network stats charge are exactly the bytes this state costs
  // in a checkpoint section.
  ByteWriter w;
  CkptWrite(w, sensor_id);
  CkptWrite(w, recent);
  CkptWrite(w, config_.default_tolerance);
  SaveModelState(w, sensor.engine.model());
  net_->SendBatched(config_.id, to_proxy,
                    static_cast<uint16_t>(MsgType::kStateSnapshot), w.TakeBuffer());
  ++stats_.snapshots_sent;
}

void ProxyNode::BackfillFromArchive(NodeId sensor_id, Duration horizon) {
  SensorState& sensor = GetSensor(sensor_id);
  if (sensor.is_replica) {
    return;  // replicas cannot pull: the sensor reports to its owner
  }
  if (config_.backfill_spacing <= 0) {
    TryBackfillPull(sensor, horizon);
    return;
  }
  // A promotion calls this once per shard sensor at a single barrier; queue the
  // repairs and drain them one radio transaction per spacing so interactive pulls
  // slot in between rather than timing out behind a wall of LPL preambles.
  backfill_queue_.push_back(BackfillRequest{sensor_id, horizon});
  if (!backfill_drain_pending_) {
    ScheduleBackfillDrain();
  }
}

void ProxyNode::ScheduleBackfillDrain() {
  backfill_drain_pending_ = true;
  // A typed event (payload.b == 1 marks a drain tick, distinguishing it from pull
  // timeouts) rather than a closure, so a checkpoint taken while repairs are queued
  // restores the drain cadence.
  EventPayload tick;
  tick.b = 1;
  sim_->ScheduleEventAt(sim_->Now() + config_.backfill_spacing, EventKind::kQuery, this,
                        std::move(tick), lane_);
}

bool ProxyNode::TryBackfillPull(SensorState& sensor, Duration horizon) {
  const SimTime now = sim_->Now();
  const TimeInterval window{std::max<SimTime>(0, now - horizon), now};
  // A hole is a stretch the expected sampling grid left uncovered. Four sensing
  // periods of slack tolerate short model-driven suppression runs (answered by
  // extrapolation); what we repair is longer voids (snapshot depth limits, outage
  // windows, sustained suppression).
  const Duration min_hole = 4 * sensor.sensing_period;
  const std::vector<Sample> cached = sensor.cache.Range(window);
  SimTime hole_start = -1;
  SimTime hole_end = -1;
  SimTime cursor = window.start;
  auto note_gap = [&](SimTime from, SimTime to) {
    if (to - from < min_hole) {
      return;
    }
    if (hole_start < 0) {
      hole_start = from;
    }
    hole_end = to;
  };
  for (const Sample& s : cached) {
    note_gap(cursor, s.t);
    cursor = std::max(cursor, s.t);
  }
  note_gap(cursor, window.end);
  if (hole_start < 0) {
    return false;  // the replicated state already covers the promoted window
  }
  // One archive transaction spanning first to last hole: the reply's samples land in
  // the cache through the normal pull path, closing every gap in between too.
  ++stats_.backfill_pulls;
  IssuePull(sensor, TimeInterval{hole_start, hole_end}, /*tolerance=*/0.0,
            /*is_now=*/false, now, QueryOrigin());
  return true;
}

void ProxyNode::DrainBackfillQueue() {
  backfill_drain_pending_ = false;
  // A dead node must not reach the radio; hold the queue until revived. (A revive
  // hand-back demotes the sensors anyway, emptying the queue via the skip below.)
  if (net_->IsNodeDown(config_.id)) {
    if (!backfill_queue_.empty()) {
      ScheduleBackfillDrain();
    }
    return;
  }
  while (!backfill_queue_.empty()) {
    const BackfillRequest req = backfill_queue_.front();
    backfill_queue_.pop_front();
    auto it = sensors_.find(req.sensor_id);
    if (it == sensors_.end() || it->second->is_replica) {
      continue;  // handed back or migrated away while queued — nothing to repair
    }
    // Re-scan at drain time: live pushes or a snapshot may have closed the holes
    // while this entry waited, in which case no radio time is spent on it.
    if (!TryBackfillPull(*it->second, req.horizon)) {
      continue;
    }
    break;  // one radio transaction per spacing tick
  }
  if (!backfill_queue_.empty()) {
    ScheduleBackfillDrain();
  }
}

bool ProxyNode::IsReplicaFor(NodeId sensor_id) const {
  const SensorState* s = FindSensor(sensor_id);
  return s != nullptr && s->is_replica;
}

uint64_t ProxyNode::SensorWindowLoad(NodeId sensor_id) const {
  const SensorState* s = FindSensor(sensor_id);
  return s == nullptr ? 0 : s->window_queries + s->window_pushes;
}

void ProxyNode::ResetLoadWindow() {
  for (auto& [id, sensor] : sensors_) {
    (void)id;
    sensor->window_queries = 0;
    sensor->window_pushes = 0;
  }
}

void ProxyNode::AbortPullsFor(NodeId sensor_id, const Status& status) {
  for (auto it = pending_pulls_.begin(); it != pending_pulls_.end();) {
    if (it->second.sensor_id != sensor_id) {
      ++it;
      continue;
    }
    PendingPull aborted = std::move(it->second);
    it = pending_pulls_.erase(it);
    aborted.timeout.Cancel();
    FailPull(aborted, status);
  }
}

void ProxyNode::Start() { maintenance_timer_.Start(config_.maintenance_period); }

std::vector<NodeId> ProxyNode::sensors() const {
  std::vector<NodeId> out;
  out.reserve(sensors_.size());
  for (const auto& [id, state] : sensors_) {
    if (!state->is_replica) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<NodeId> ProxyNode::replica_sensors() const {
  std::vector<NodeId> out;
  for (const auto& [id, state] : sensors_) {
    if (state->is_replica) {
      out.push_back(id);
    }
  }
  return out;
}

ProxyNode::SensorState& ProxyNode::GetSensor(NodeId sensor_id) {
  auto it = sensors_.find(sensor_id);
  PRESTO_CHECK_MSG(it != sensors_.end(), "unknown sensor");
  return *it->second;
}

const ProxyNode::SensorState* ProxyNode::FindSensor(NodeId sensor_id) const {
  auto it = sensors_.find(sensor_id);
  return it == sensors_.end() ? nullptr : it->second.get();
}

const SummaryCache* ProxyNode::cache(NodeId sensor_id) const {
  const SensorState* s = FindSensor(sensor_id);
  return s == nullptr ? nullptr : &s->cache;
}

const PredictionEngine* ProxyNode::engine(NodeId sensor_id) const {
  const SensorState* s = FindSensor(sensor_id);
  return s == nullptr ? nullptr : &s->engine;
}

Result<double> ProxyNode::SyncResidualRms(NodeId sensor_id) const {
  const SensorState* s = FindSensor(sensor_id);
  if (s == nullptr) {
    return NotFoundError("unknown sensor");
  }
  return s->sync.ResidualRms();
}

std::vector<Sample> ProxyNode::CachedRange(NodeId sensor_id, TimeInterval range) const {
  const SensorState* s = FindSensor(sensor_id);
  if (s == nullptr) {
    return {};
  }
  return s->cache.Range(range);
}

std::vector<Sample> ProxyNode::CorrectTimestamps(SensorState& sensor,
                                                 const std::vector<Sample>& local) const {
  std::vector<Sample> out;
  out.reserve(local.size());
  const SimTime now = sim_->Now();
  for (const Sample& s : local) {
    auto corrected = sensor.sync.Correct(s.t);
    SimTime t = corrected.ok() ? *corrected : s.t;  // identity until sync warms up
    t = std::min(t, now);  // corrected stamps can never land in the observer's future
    out.push_back(Sample{t, s.value});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.t < b.t; });
  return out;
}

// ---------- inbound messages ----------

void ProxyNode::OnMessage(const Message& message) {
  switch (static_cast<MsgType>(message.type)) {
    case MsgType::kDataPush:
      HandleDataPush(message);
      break;
    case MsgType::kArchiveReply:
      HandleArchiveReply(message);
      break;
    case MsgType::kReplicaUpdate:
      HandleReplicaUpdate(message);
      break;
    case MsgType::kReplicaModel:
      HandleReplicaModel(message);
      break;
    case MsgType::kStateSnapshot:
      HandleStateSnapshot(message);
      break;
    default:
      PLOG_WARN("proxy %u: unexpected message type %u", config_.id, message.type);
      break;
  }
}

void ProxyNode::HandleDataPush(const Message& message) {
  auto msg = DataPushMsg::Decode(message.payload);
  if (!msg.ok()) {
    PLOG_WARN("proxy %u: bad push from %u", config_.id, message.src);
    return;
  }
  auto it = sensors_.find(message.src);
  if (it == sensors_.end()) {
    PLOG_WARN("proxy %u: push from unregistered sensor %u", config_.id, message.src);
    return;
  }
  SensorState& sensor = *it->second;

  // Every push doubles as a time-sync beacon: the sensor stamped its local clock when
  // it handed the message to the radio, and message.sent_at is that same instant on
  // the reference clock (batching queue delay excluded).
  sensor.sync.AddBeacon(msg->local_send_time, message.sent_at);

  auto batch = DecodeBatch(msg->batch);
  if (!batch.ok()) {
    PLOG_WARN("proxy %u: undecodable batch from %u", config_.id, message.src);
    return;
  }
  const std::vector<Sample> corrected = CorrectTimestamps(sensor, batch->samples);

  ++stats_.pushes_received;
  stats_.push_samples += corrected.size();
  ++sensor.window_pushes;
  sensor.last_push = sim_->Now();
  for (const Sample& s : corrected) {
    sensor.cache.Insert(s.t, s.value, CacheSource::kPushed, sim_->Now());
    sensor.engine.ObserveTraining(s);
  }
  if (msg->reason == PushReason::kModelDeviation && !corrected.empty()) {
    sensor.engine.MirrorAnchor(corrected.back());
    sensor.engine.NoteDeviationPush(sim_->Now());
  }
  Replicate(sensor, corrected);

  if (config_.manage_models && config_.mode == ProxyMode::kPresto) {
    // A sensor still in bootstrap after we sent a model means the update was lost.
    const bool resend = msg->reason == PushReason::kBootstrap && sensor.model_sent &&
                        sim_->Now() - sensor.last_model_send > Minutes(10);
    if (!sensor.model_sent || resend) {
      MaybeSendModel(sensor);
    }
  }
}

void ProxyNode::MaybeSendModel(SensorState& sensor) {
  if (!sensor.engine.ReadyToFit()) {
    return;
  }
  auto params = sensor.engine.FitAndSerialize();
  if (!params.ok()) {
    PLOG_WARN("proxy %u: model fit for sensor %u failed: %s", config_.id, sensor.id,
              params.status().ToString().c_str());
    return;
  }
  ModelUpdateMsg msg;
  msg.model_seq = static_cast<uint32_t>(sensor.engine.fit_count());
  msg.tolerance = config_.default_tolerance;
  msg.model_params = *params;
  net_->SendBatched(config_.id, sensor.id, static_cast<uint16_t>(MsgType::kModelUpdate),
                    msg.Encode());
  sensor.model_sent = true;
  sensor.last_model_send = sim_->Now();
  ++stats_.model_sends;

  if (config_.enable_replication && !sensor.replica_targets.empty()) {
    // One encode; every replica gets the identical payload.
    ReplicaModelMsg rep;
    rep.sensor_id = sensor.id;
    rep.tolerance = msg.tolerance;
    rep.model_params = msg.model_params;
    const std::vector<uint8_t> encoded = rep.Encode();
    for (NodeId target : sensor.replica_targets) {
      net_->SendBatched(config_.id, target,
                        static_cast<uint16_t>(MsgType::kReplicaModel), encoded);
    }
  }
  PLOG_DEBUG("proxy %u: sent %zu-byte model to sensor %u (fit #%llu)", config_.id,
             msg.model_params.size(), sensor.id,
             static_cast<unsigned long long>(sensor.engine.fit_count()));
}

void ProxyNode::RunMaintenance() {
  const SimTime now = sim_->Now();
  for (auto& [id, sensor] : sensors_) {
    (void)id;
    if (sensor->is_replica) {
      continue;  // the owner manages models and configuration for its sensors
    }
    if (config_.mode == ProxyMode::kPresto && config_.manage_models &&
        sensor->engine.ShouldRefit(now)) {
      MaybeSendModel(*sensor);
    }
    // Query-sensor matching applies to any architecture that can reconfigure sensors.
    if (config_.enable_matcher) {
      auto update = sensor->matcher.Recommend(now);
      if (update.has_value()) {
        net_->SendBatched(config_.id, sensor->id,
                          static_cast<uint16_t>(MsgType::kConfigUpdate),
                          update->Encode());
        ++stats_.config_sends;
      }
    }
  }
}

// ---------- queries ----------

void ProxyNode::Answer(const QueryAnswer& answer, const QueryOrigin& origin,
                       bool is_now) {
  if (answer.status.ok()) {
    switch (answer.source) {
      case AnswerSource::kCacheHit:
        ++stats_.cache_hits;
        break;
      case AnswerSource::kExtrapolated:
        ++stats_.extrapolations;
        break;
      case AnswerSource::kSensorPull:
        break;  // counted at issue time
      case AnswerSource::kFailed:
        break;
    }
  } else {
    ++stats_.failures;
  }
  SampleSet& lat = is_now ? stats_.now_latency_ms : stats_.past_latency_ms;
  lat.Add(ToMillis(answer.Latency()));
  switch (origin.kind) {
    case QueryOrigin::Kind::kNone:
      break;  // backfill repair: the pulled data landing in the cache is the answer
    case QueryOrigin::Kind::kClosure:
      origin.closure(answer);
      break;
    case QueryOrigin::Kind::kToken:
      PRESTO_CHECK_MSG(pull_client_ != nullptr, "token query without a pull client");
      pull_client_->OnPullDone(origin.token, answer);
      break;
  }
}

void ProxyNode::QueryNow(NodeId sensor_id, double tolerance, Duration latency_bound,
                         QueryCallback callback) {
  QueryNowInternal(sensor_id, tolerance, latency_bound,
                   QueryOrigin::Closure(std::move(callback)));
}

void ProxyNode::QueryNow(NodeId sensor_id, double tolerance, Duration latency_bound,
                         uint64_t token) {
  QueryNowInternal(sensor_id, tolerance, latency_bound, QueryOrigin::Token(token));
}

void ProxyNode::QueryPast(NodeId sensor_id, TimeInterval range, double tolerance,
                          QueryCallback callback) {
  QueryPastInternal(sensor_id, range, tolerance,
                    QueryOrigin::Closure(std::move(callback)));
}

void ProxyNode::QueryPast(NodeId sensor_id, TimeInterval range, double tolerance,
                          uint64_t token) {
  QueryPastInternal(sensor_id, range, tolerance, QueryOrigin::Token(token));
}

void ProxyNode::QueryNowInternal(NodeId sensor_id, double tolerance,
                                 Duration latency_bound, QueryOrigin origin) {
  ++stats_.queries;
  const SimTime now = sim_->Now();
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    QueryAnswer answer;
    answer.status = NotFoundError("proxy does not manage this sensor");
    answer.issued_at = now;
    answer.completed_at = now;
    Answer(answer, origin, /*is_now=*/true);
    return;
  }
  SensorState& sensor = *it->second;
  sensor.matcher.NoteQuery(latency_bound, tolerance);
  ++sensor.window_queries;
  if (sensor.is_replica) {
    ++stats_.degraded_answers;  // owner is down; we serve from replicated state
  }

  if (config_.mode != ProxyMode::kAlwaysPull) {
    // 1) Fresh cached observation.
    auto latest = sensor.cache.Latest();
    const Duration fresh = static_cast<Duration>(
        config_.freshness_periods * static_cast<double>(sensor.sensing_period));
    if (latest.has_value() && now - latest->first <= fresh) {
      QueryAnswer answer;
      answer.status = OkStatus();
      answer.source = AnswerSource::kCacheHit;
      answer.samples = {Sample{latest->first, latest->second.value}};
      answer.value = latest->second.value;
      answer.error_estimate = 0.0;
      answer.issued_at = now;
      answer.completed_at = now;
      Answer(answer, origin, /*is_now=*/true);
      return;
    }
    // 2) Model extrapolation. With model-driven push the sensor guarantees that any
    //    sample deviating more than the push tolerance would have been pushed, so the
    //    prediction error at sensing instants is bounded by that tolerance.
    if (config_.mode == ProxyMode::kPresto && sensor.engine.has_model()) {
      auto prediction = sensor.engine.Predict(now);
      if (prediction.ok()) {
        const double bound =
            std::max(config_.default_tolerance, prediction->stddev * 0.5);
        if (bound <= tolerance) {
          QueryAnswer answer;
          answer.status = OkStatus();
          answer.source = AnswerSource::kExtrapolated;
          answer.samples = {Sample{now, prediction->value}};
          answer.value = prediction->value;
          answer.error_estimate = bound;
          answer.issued_at = now;
          answer.completed_at = now;
          Answer(answer, origin, /*is_now=*/true);
          return;
        }
      }
    }
    if (config_.mode == ProxyMode::kCacheOnly) {
      // Stream-style proxies have nothing better than the cache.
      QueryAnswer answer;
      answer.issued_at = now;
      answer.completed_at = now;
      if (latest.has_value()) {
        answer.status = OkStatus();
        answer.source = AnswerSource::kCacheHit;
        answer.samples = {Sample{latest->first, latest->second.value}};
        answer.value = latest->second.value;
        answer.error_estimate =
            ToSeconds(now - latest->first) / ToSeconds(sensor.sensing_period);
      } else {
        answer.status = NotFoundError("nothing cached yet");
      }
      Answer(answer, origin, /*is_now=*/true);
      return;
    }
  }
  // A replica cannot pull: the sensor reports to its (down) owner. Serve degraded.
  if (sensor.is_replica) {
    AnswerDegradedNow(sensor, now, std::move(origin));
    return;
  }
  // 3) Cache-miss-triggered pull of the freshest archive data.
  const TimeInterval range{now - 2 * sensor.sensing_period, now + sensor.sensing_period};
  IssuePull(sensor, range, tolerance, /*is_now=*/true, now, std::move(origin));
}

void ProxyNode::AnswerDegradedNow(SensorState& sensor, SimTime now,
                                  QueryOrigin origin) {
  QueryAnswer answer;
  answer.issued_at = now;
  answer.completed_at = now;
  if (sensor.engine.has_model()) {
    auto prediction = sensor.engine.Predict(now);
    if (prediction.ok()) {
      answer.status = OkStatus();
      answer.source = AnswerSource::kExtrapolated;
      answer.samples = {Sample{now, prediction->value}};
      answer.value = prediction->value;
      answer.error_estimate = std::max(config_.default_tolerance, prediction->stddev);
      Answer(answer, origin, /*is_now=*/true);
      return;
    }
  }
  auto latest = sensor.cache.Latest();
  if (latest.has_value()) {
    answer.status = OkStatus();
    answer.source = AnswerSource::kCacheHit;
    answer.samples = {Sample{latest->first, latest->second.value}};
    answer.value = latest->second.value;
    answer.error_estimate =
        ToSeconds(now - latest->first) / ToSeconds(sensor.sensing_period);
    Answer(answer, origin, /*is_now=*/true);
    return;
  }
  answer.status = UnavailableError("replica holds no state for this sensor yet");
  Answer(answer, origin, /*is_now=*/true);
}

void ProxyNode::QueryPastInternal(NodeId sensor_id, TimeInterval range,
                                  double tolerance, QueryOrigin origin) {
  ++stats_.queries;
  const SimTime now = sim_->Now();
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    QueryAnswer answer;
    answer.status = NotFoundError("proxy does not manage this sensor");
    answer.issued_at = now;
    answer.completed_at = now;
    Answer(answer, origin, /*is_now=*/false);
    return;
  }
  SensorState& sensor = *it->second;
  sensor.matcher.NoteQuery(config_.pull_timeout, tolerance);
  ++sensor.window_queries;
  if (sensor.is_replica) {
    ++stats_.degraded_answers;
  }

  if (config_.mode != ProxyMode::kAlwaysPull) {
    const double coverage = sensor.cache.CoverageFraction(range, sensor.sensing_period);
    // 1) The cache alone covers the range densely enough.
    if (coverage >= config_.past_coverage_threshold) {
      QueryAnswer answer;
      answer.status = OkStatus();
      answer.source = AnswerSource::kCacheHit;
      answer.samples = sensor.cache.Range(range);
      if (!answer.samples.empty()) {
        answer.value = answer.samples.back().value;
      }
      answer.error_estimate = 0.0;
      answer.issued_at = now;
      answer.completed_at = now;
      Answer(answer, origin, /*is_now=*/false);
      return;
    }
    // 2) Fill the gaps by extrapolation if the model's uncertainty fits the tolerance.
    if (config_.mode == ProxyMode::kPresto && sensor.engine.has_model()) {
      std::vector<Sample> merged;
      double worst = 0.0;
      bool extrapolation_ok = true;
      for (SimTime t = range.start; t < range.end; t += sensor.sensing_period) {
        auto cached = sensor.cache.Nearest(t, sensor.sensing_period / 2);
        if (cached.has_value()) {
          merged.push_back(Sample{t, cached->second.value});
          continue;
        }
        auto prediction = sensor.engine.Predict(t);
        if (!prediction.ok() || prediction->stddev > tolerance) {
          extrapolation_ok = false;
          break;
        }
        worst = std::max(worst, prediction->stddev);
        merged.push_back(Sample{t, prediction->value});
      }
      if (extrapolation_ok) {
        QueryAnswer answer;
        answer.status = OkStatus();
        answer.source = AnswerSource::kExtrapolated;
        answer.samples = std::move(merged);
        if (!answer.samples.empty()) {
          answer.value = answer.samples.back().value;
        }
        answer.error_estimate = worst;
        answer.issued_at = now;
        answer.completed_at = now;
        Answer(answer, origin, /*is_now=*/false);
        return;
      }
    }
    if (config_.mode == ProxyMode::kCacheOnly) {
      QueryAnswer answer;
      answer.issued_at = now;
      answer.completed_at = now;
      answer.samples = sensor.cache.Range(range);
      if (answer.samples.empty()) {
        answer.status = NotFoundError("range not cached and this proxy cannot pull");
      } else {
        answer.status = OkStatus();
        answer.source = AnswerSource::kCacheHit;
        answer.value = answer.samples.back().value;
        answer.error_estimate = 1.0 - coverage;
      }
      Answer(answer, origin, /*is_now=*/false);
      return;
    }
  }
  if (sensor.is_replica) {
    AnswerDegradedPast(sensor, range, now, std::move(origin));
    return;
  }
  // 3) Pull the range from the sensor's archive.
  IssuePull(sensor, range, tolerance, /*is_now=*/false, now, std::move(origin));
}

void ProxyNode::AnswerDegradedPast(SensorState& sensor, TimeInterval range,
                                   SimTime now, QueryOrigin origin) {
  QueryAnswer answer;
  answer.issued_at = now;
  answer.completed_at = now;
  answer.samples = sensor.cache.Range(range);
  if (answer.samples.empty()) {
    answer.status = UnavailableError("replica has no replicated data in range");
  } else {
    answer.status = OkStatus();
    answer.source = AnswerSource::kCacheHit;
    answer.value = answer.samples.back().value;
    answer.error_estimate =
        1.0 - sensor.cache.CoverageFraction(range, sensor.sensing_period);
  }
  Answer(answer, origin, /*is_now=*/false);
}

void ProxyNode::IssuePull(SensorState& sensor, TimeInterval range, double tolerance,
                          bool is_now, SimTime issued_at, QueryOrigin origin) {
  // Batched query pipeline: if a pull to this sensor already covers the range, ride it
  // instead of paying for a second radio transaction.
  for (auto& [pull_id, pull] : pending_pulls_) {
    (void)pull_id;
    if (pull.sensor_id == sensor.id && pull.range.start <= range.start &&
        range.end <= pull.range.end) {
      ++stats_.coalesced_pulls;
      pull.riders.push_back(PullRider{is_now, range, issued_at, std::move(origin)});
      return;
    }
  }
  const uint32_t id = next_pull_id_++;
  ArchiveQueryMsg msg;
  msg.query_id = id;
  auto local_start = sensor.sync.ToLocal(range.start);
  auto local_end = sensor.sync.ToLocal(range.end);
  msg.local_start = local_start.ok() ? *local_start : range.start;
  msg.local_end = local_end.ok() ? *local_end : range.end;
  msg.compress = true;

  const std::vector<uint8_t> encoded = msg.Encode();

  PendingPull pull;
  pull.id = id;
  pull.sensor_id = sensor.id;
  pull.is_now = is_now;
  pull.range = range;
  pull.tolerance = tolerance;
  pull.issued_at = issued_at;
  pull.request_bytes = encoded.size();
  pull.origin = std::move(origin);
  EventPayload timeout;
  timeout.a = id;
  // Pinned to this proxy's own lane: a pull may be issued from the control lane
  // (promotion-time backfill runs at barriers), but the archive reply — and the
  // Cancel it triggers — arrives in this lane, and Cancel must never cross lanes.
  pull.timeout = sim_->ScheduleEventAt(sim_->Now() + config_.pull_timeout,
                                       EventKind::kQuery, this, std::move(timeout),
                                       lane_);
  pending_pulls_.emplace(id, std::move(pull));
  ++stats_.pulls;
  // Pulls are interactive (a query is blocked on the answer): they bypass the link's
  // coalescing window — the fig2 epoch sweep shows parking them there just adds two
  // epochs to every cache-miss query. Bulk traffic (pushes, replica updates, model
  // sends) keeps coalescing.
  net_->Send(config_.id, sensor.id, static_cast<uint16_t>(MsgType::kArchiveQuery),
             encoded);
}

void ProxyNode::OnSimEvent(EventKind kind, EventPayload& payload) {
  // Proxies schedule two typed events for themselves, both kQuery: pull timeouts
  // (payload.a = pull id) and backfill drain ticks (payload.b == 1).
  PRESTO_CHECK(kind == EventKind::kQuery);
  if (payload.b == 1) {
    DrainBackfillQueue();
    return;
  }
  auto it = pending_pulls_.find(static_cast<uint32_t>(payload.a));
  if (it == pending_pulls_.end()) {
    return;
  }
  PendingPull timed_out = std::move(it->second);
  pending_pulls_.erase(it);
  ++stats_.pull_timeouts;
  FailPull(timed_out, DeadlineExceededError("sensor did not answer the pull"));
}

void ProxyNode::FailPull(const PendingPull& pull, const Status& status) {
  QueryAnswer answer;
  answer.status = status;
  answer.issued_at = pull.issued_at;
  answer.completed_at = sim_->Now();
  Answer(answer, pull.origin, pull.is_now);
  for (const PullRider& rider : pull.riders) {
    QueryAnswer rider_answer = answer;
    rider_answer.issued_at = rider.issued_at;
    Answer(rider_answer, rider.origin, rider.is_now);
  }
}

void ProxyNode::CompletePullQuery(bool is_now, TimeInterval range, SimTime issued_at,
                                  const QueryOrigin& origin, SensorState& sensor,
                                  const std::vector<Sample>& pulled, double energy_j) {
  QueryAnswer answer;
  answer.issued_at = issued_at;
  answer.completed_at = sim_->Now();
  // Charged even when the pulled range came back empty: the radio transaction
  // happened, so the query that triggered it owns the cost.
  answer.energy_j = energy_j;
  if (is_now) {
    if (pulled.empty()) {
      answer.status = NotFoundError("sensor archive had no recent data");
    } else {
      answer.status = OkStatus();
      answer.source = AnswerSource::kSensorPull;
      answer.samples = {pulled.back()};
      answer.value = pulled.back().value;
      answer.error_estimate = 0.0;
    }
  } else {
    answer.samples = sensor.cache.Range(range);
    if (answer.samples.empty()) {
      answer.status = NotFoundError("no archived data in range (aged out?)");
    } else {
      answer.status = OkStatus();
      answer.source = AnswerSource::kSensorPull;
      answer.value = answer.samples.back().value;
      answer.error_estimate = 0.0;
    }
  }
  Answer(answer, origin, is_now);
}

void ProxyNode::HandleArchiveReply(const Message& message) {
  auto msg = ArchiveReplyMsg::Decode(message.payload);
  if (!msg.ok()) {
    PLOG_WARN("proxy %u: bad archive reply", config_.id);
    return;
  }
  auto pending = pending_pulls_.find(msg->query_id);
  if (pending == pending_pulls_.end()) {
    return;  // late reply after timeout; the data was still archived, nothing to do
  }
  PendingPull pull = std::move(pending->second);
  pending_pulls_.erase(pending);
  pull.timeout.Cancel();

  auto it = sensors_.find(pull.sensor_id);
  PRESTO_CHECK(it != sensors_.end());
  SensorState& sensor = *it->second;
  sensor.sync.AddBeacon(msg->local_send_time, message.sent_at);

  if (msg->status_code != static_cast<uint8_t>(StatusCode::kOk)) {
    FailPull(pull, Status(static_cast<StatusCode>(msg->status_code),
                          "archive pull failed"));
    return;
  }
  auto batch = DecodeBatch(msg->batch);
  if (!batch.ok()) {
    FailPull(pull, DataLossError("archive reply undecodable"));
    return;
  }
  const std::vector<Sample> corrected = CorrectTimestamps(sensor, batch->samples);
  for (const Sample& s : corrected) {
    // Progressive refinement: pulled archive data overrides anything weaker.
    sensor.cache.Insert(s.t, s.value, CacheSource::kPulled, sim_->Now());
    sensor.engine.ObserveTraining(s);
  }
  Replicate(sensor, corrected);

  // Per-query energy attribution: the transaction's deterministic closed-form
  // estimate, split evenly across the originator and every coalesced rider (the
  // batched pipeline's whole point is that they shared one radio transaction).
  const double share_j =
      net_->EstimatePullEnergyJ(pull.sensor_id, pull.request_bytes,
                                message.payload.size()) /
      static_cast<double>(1 + pull.riders.size());
  CompletePullQuery(pull.is_now, pull.range, pull.issued_at, pull.origin, sensor,
                    corrected, share_j);
  for (const PullRider& rider : pull.riders) {
    CompletePullQuery(rider.is_now, rider.range, rider.issued_at, rider.origin, sensor,
                      corrected, share_j);
  }
}

// ---------- replication ----------

void ProxyNode::Replicate(SensorState& sensor,
                          const std::vector<Sample>& reference_samples) {
  if (!config_.enable_replication || reference_samples.empty() ||
      sensor.replica_targets.empty()) {
    return;
  }
  // One encode; every target gets the identical payload.
  ReplicaUpdateMsg msg;
  msg.sensor_id = sensor.id;
  msg.batch = EncodeIrregularBatch(reference_samples);
  const std::vector<uint8_t> encoded = msg.Encode();
  for (NodeId target : sensor.replica_targets) {
    net_->SendBatched(config_.id, target,
                      static_cast<uint16_t>(MsgType::kReplicaUpdate), encoded);
  }
  ++stats_.replica_updates;
}

void ProxyNode::HandleReplicaUpdate(const Message& message) {
  auto msg = ReplicaUpdateMsg::Decode(message.payload);
  if (!msg.ok()) {
    return;
  }
  auto it = sensors_.find(msg->sensor_id);
  if (it == sensors_.end()) {
    return;  // builder registers replicated sensors on both proxies
  }
  auto batch = DecodeBatch(msg->batch);
  if (!batch.ok()) {
    return;
  }
  for (const Sample& s : batch->samples) {
    it->second->cache.Insert(s.t, s.value, CacheSource::kPushed, sim_->Now());
  }
}

void ProxyNode::HandleReplicaModel(const Message& message) {
  auto msg = ReplicaModelMsg::Decode(message.payload);
  if (!msg.ok()) {
    return;
  }
  auto it = sensors_.find(msg->sensor_id);
  if (it == sensors_.end()) {
    return;
  }
  const Status installed = it->second->engine.InstallSerialized(msg->model_params);
  if (!installed.ok()) {
    PLOG_WARN("proxy %u: replica model install failed: %s", config_.id,
              installed.ToString().c_str());
  }
}

}  // namespace presto

namespace presto {

void ProxyNode::HandleStateSnapshot(const Message& message) {
  ByteReader r{span<const uint8_t>(message.payload)};
  NodeId sensor_id = 0;
  std::vector<Sample> samples;
  double tolerance = 0.0;
  const Status parsed = [&]() -> Status {
    CKPT_READ(r, sensor_id);
    CKPT_READ(r, samples);
    CKPT_READ(r, tolerance);
    return OkStatus();
  }();
  (void)tolerance;  // informational; the receiver keeps its own default_tolerance
  if (!parsed.ok()) {
    PLOG_WARN("proxy %u: bad state snapshot: %s", config_.id,
              parsed.ToString().c_str());
    return;
  }
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return;  // shard moved on while the snapshot was in flight
  }
  SensorState& sensor = *it->second;
  for (const Sample& s : samples) {
    sensor.cache.Insert(s.t, s.value, CacheSource::kPushed, sim_->Now());
  }
  auto model = LoadModelState(r, config_.engine.model_config);
  if (!model.ok()) {
    PLOG_WARN("proxy %u: snapshot model restore failed: %s", config_.id,
              model.status().ToString().c_str());
    return;
  }
  if (*model != nullptr) {
    sensor.engine.InstallModel(std::move(*model));
  }
}

void ProxyNode::OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                                const EventHandle& handle, int lane) {
  (void)t;
  (void)lane;
  if (kind != EventKind::kQuery || payload.b == 1) {
    return;  // backfill drain ticks re-fire without a retained handle
  }
  auto it = pending_pulls_.find(static_cast<uint32_t>(payload.a));
  if (it != pending_pulls_.end()) {
    it->second.timeout = handle;
  }
}

Status ProxyNode::SaveState(ByteWriter& w) const {
  const auto save_origin = [&w](const QueryOrigin& o) -> Status {
    if (o.kind == QueryOrigin::Kind::kClosure) {
      return FailedPreconditionError(
          "proxy checkpoint: closure-form pull pending (use the token query API)");
    }
    CkptWrite(w, o.kind);
    CkptWrite(w, o.token);
    return OkStatus();
  };
  CkptWrite(w, lane_);
  maintenance_timer_.SaveState(w);
  w.WriteVarU64(sensors_.size());
  for (const auto& [id, sensor] : sensors_) {
    CkptWrite(w, id);
    CkptWrite(w, sensor->is_replica);
    CkptWrite(w, sensor->sensing_period);
    sensor->cache.SaveState(w);
    sensor->engine.SaveState(w);
    sensor->sync.SaveState(w);
    sensor->matcher.SaveState(w);
    CkptWrite(w, sensor->model_sent);
    CkptWrite(w, sensor->last_model_send);
    CkptWrite(w, sensor->last_push);
    CkptWrite(w, sensor->replica_targets);
    CkptWrite(w, sensor->window_queries);
    CkptWrite(w, sensor->window_pushes);
  }
  w.WriteVarU64(pending_pulls_.size());
  for (const auto& [id, pull] : pending_pulls_) {
    (void)id;
    CkptWrite(w, pull.id);
    CkptWrite(w, pull.sensor_id);
    CkptWrite(w, pull.is_now);
    CkptWrite(w, pull.range);
    CkptWrite(w, pull.tolerance);
    CkptWrite(w, pull.issued_at);
    CkptWrite(w, pull.request_bytes);
    PRESTO_RETURN_IF_ERROR(save_origin(pull.origin));
    w.WriteVarU64(pull.riders.size());
    for (const PullRider& rider : pull.riders) {
      CkptWrite(w, rider.is_now);
      CkptWrite(w, rider.range);
      CkptWrite(w, rider.issued_at);
      PRESTO_RETURN_IF_ERROR(save_origin(rider.origin));
    }
  }
  w.WriteVarU64(backfill_queue_.size());
  for (const BackfillRequest& req : backfill_queue_) {
    CkptWrite(w, req.sensor_id);
    CkptWrite(w, req.horizon);
  }
  CkptWrite(w, backfill_drain_pending_);
  CkptWrite(w, next_pull_id_);
  CkptWrite(w, stats_.pushes_received);
  CkptWrite(w, stats_.push_samples);
  CkptWrite(w, stats_.queries);
  CkptWrite(w, stats_.cache_hits);
  CkptWrite(w, stats_.extrapolations);
  CkptWrite(w, stats_.pulls);
  CkptWrite(w, stats_.coalesced_pulls);
  CkptWrite(w, stats_.pull_timeouts);
  CkptWrite(w, stats_.failures);
  CkptWrite(w, stats_.degraded_answers);
  CkptWrite(w, stats_.model_sends);
  CkptWrite(w, stats_.config_sends);
  CkptWrite(w, stats_.replica_updates);
  CkptWrite(w, stats_.promotions);
  CkptWrite(w, stats_.demotions);
  CkptWrite(w, stats_.snapshots_sent);
  CkptWrite(w, stats_.backfill_pulls);
  CkptWrite(w, stats_.now_latency_ms);
  CkptWrite(w, stats_.past_latency_ms);
  return OkStatus();
}

Status ProxyNode::LoadState(ByteReader& r) {
  const auto read_origin = [&r](QueryOrigin& o) -> Status {
    CKPT_READ(r, o.kind);
    CKPT_READ(r, o.token);
    if (o.kind == QueryOrigin::Kind::kClosure) {
      return DataLossError("proxy restore: closure origin in checkpoint");
    }
    return OkStatus();
  };
  CKPT_READ(r, lane_);
  PRESTO_RETURN_IF_ERROR(maintenance_timer_.LoadState(r));
  auto sensor_count = r.ReadVarU64();
  if (!sensor_count.ok()) {
    return sensor_count.status();
  }
  if (*sensor_count > r.remaining()) {
    return DataLossError("proxy restore: sensor count exceeds section bytes");
  }
  sensors_.clear();
  for (uint64_t i = 0; i < *sensor_count; ++i) {
    NodeId id = 0;
    CKPT_READ(r, id);
    auto sensor =
        std::make_unique<SensorState>(id, Seconds(31), config_.engine, config_.matcher);
    CKPT_READ(r, sensor->is_replica);
    CKPT_READ(r, sensor->sensing_period);
    PRESTO_RETURN_IF_ERROR(sensor->cache.LoadState(r));
    PRESTO_RETURN_IF_ERROR(sensor->engine.LoadState(r));
    PRESTO_RETURN_IF_ERROR(sensor->sync.LoadState(r));
    PRESTO_RETURN_IF_ERROR(sensor->matcher.LoadState(r));
    CKPT_READ(r, sensor->model_sent);
    CKPT_READ(r, sensor->last_model_send);
    CKPT_READ(r, sensor->last_push);
    CKPT_READ(r, sensor->replica_targets);
    CKPT_READ(r, sensor->window_queries);
    CKPT_READ(r, sensor->window_pushes);
    sensors_.emplace(id, std::move(sensor));
  }
  auto pull_count = r.ReadVarU64();
  if (!pull_count.ok()) {
    return pull_count.status();
  }
  if (*pull_count > r.remaining()) {
    return DataLossError("proxy restore: pull count exceeds section bytes");
  }
  pending_pulls_.clear();
  for (uint64_t i = 0; i < *pull_count; ++i) {
    PendingPull pull;
    CKPT_READ(r, pull.id);
    CKPT_READ(r, pull.sensor_id);
    CKPT_READ(r, pull.is_now);
    CKPT_READ(r, pull.range);
    CKPT_READ(r, pull.tolerance);
    CKPT_READ(r, pull.issued_at);
    CKPT_READ(r, pull.request_bytes);
    PRESTO_RETURN_IF_ERROR(read_origin(pull.origin));
    auto rider_count = r.ReadVarU64();
    if (!rider_count.ok()) {
      return rider_count.status();
    }
    if (*rider_count > r.remaining()) {
      return DataLossError("proxy restore: rider count exceeds section bytes");
    }
    for (uint64_t j = 0; j < *rider_count; ++j) {
      PullRider rider;
      CKPT_READ(r, rider.is_now);
      CKPT_READ(r, rider.range);
      CKPT_READ(r, rider.issued_at);
      PRESTO_RETURN_IF_ERROR(read_origin(rider.origin));
      pull.riders.push_back(std::move(rider));
    }
    pull.timeout = EventHandle();  // re-captured via OnEventRestored
    const uint32_t id = pull.id;
    pending_pulls_.emplace(id, std::move(pull));
  }
  auto backfill_count = r.ReadVarU64();
  if (!backfill_count.ok()) {
    return backfill_count.status();
  }
  if (*backfill_count > r.remaining()) {
    return DataLossError("proxy restore: backfill count exceeds section bytes");
  }
  backfill_queue_.clear();
  for (uint64_t i = 0; i < *backfill_count; ++i) {
    BackfillRequest req;
    CKPT_READ(r, req.sensor_id);
    CKPT_READ(r, req.horizon);
    backfill_queue_.push_back(req);
  }
  CKPT_READ(r, backfill_drain_pending_);
  CKPT_READ(r, next_pull_id_);
  CKPT_READ(r, stats_.pushes_received);
  CKPT_READ(r, stats_.push_samples);
  CKPT_READ(r, stats_.queries);
  CKPT_READ(r, stats_.cache_hits);
  CKPT_READ(r, stats_.extrapolations);
  CKPT_READ(r, stats_.pulls);
  CKPT_READ(r, stats_.coalesced_pulls);
  CKPT_READ(r, stats_.pull_timeouts);
  CKPT_READ(r, stats_.failures);
  CKPT_READ(r, stats_.degraded_answers);
  CKPT_READ(r, stats_.model_sends);
  CKPT_READ(r, stats_.config_sends);
  CKPT_READ(r, stats_.replica_updates);
  CKPT_READ(r, stats_.promotions);
  CKPT_READ(r, stats_.demotions);
  CKPT_READ(r, stats_.snapshots_sent);
  CKPT_READ(r, stats_.backfill_pulls);
  CKPT_READ(r, stats_.now_latency_ms);
  CKPT_READ(r, stats_.past_latency_ms);
  return OkStatus();
}

}  // namespace presto

namespace presto {

void CkptWrite(ByteWriter& w, const QueryAnswer& answer) {
  CkptWrite(w, answer.status);
  CkptWrite(w, answer.source);
  CkptWrite(w, answer.samples);
  CkptWrite(w, answer.value);
  CkptWrite(w, answer.error_estimate);
  CkptWrite(w, answer.energy_j);
  CkptWrite(w, answer.issued_at);
  CkptWrite(w, answer.completed_at);
}

Status CkptRead(ByteReader& r, QueryAnswer& answer) {
  CKPT_READ(r, answer.status);
  CKPT_READ(r, answer.source);
  if (static_cast<uint8_t>(answer.source) > static_cast<uint8_t>(AnswerSource::kFailed)) {
    return DataLossError("query answer restore: source out of range");
  }
  CKPT_READ(r, answer.samples);
  CKPT_READ(r, answer.value);
  CKPT_READ(r, answer.error_estimate);
  CKPT_READ(r, answer.energy_j);
  CKPT_READ(r, answer.issued_at);
  CKPT_READ(r, answer.completed_at);
  return OkStatus();
}

}  // namespace presto
