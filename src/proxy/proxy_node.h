// The PRESTO proxy (paper §3): the tethered middle tier that balances interactive
// querying against sensor energy.
//
// Per managed sensor it maintains: a summary cache with provenance, a prediction
// engine (model fitting + extrapolation + drift monitoring), a regression time sync
// (drift-corrected timestamps), and a query-sensor matcher. Query answering follows
// the paper's cascade:
//
//   cache hit  ->  model extrapolation within the query's error tolerance
//              ->  cache-miss-triggered pull from the sensor's flash archive.
//
// Proxies can replicate caches and models to a peer over the wired tier (§5), so
// queries survive a proxy failure with degraded (cache/extrapolation-only) service.
//
// ProxyMode selects the Table 1 baselines: kPresto (full cascade), kCacheOnly
// (stream-style: answer only from what was pushed), kAlwaysPull (direct-query style:
// every query goes to the sensor).

#ifndef SRC_PROXY_PROXY_NODE_H_
#define SRC_PROXY_PROXY_NODE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/index/time_sync.h"
#include "src/net/network.h"
#include "src/proxy/prediction_engine.h"
#include "src/proxy/query_matcher.h"
#include "src/proxy/summary_cache.h"
#include "src/sensor/protocol.h"
#include "src/sim/timer.h"
#include "src/util/stats.h"

namespace presto {

enum class ProxyMode : uint8_t {
  kPresto = 0,
  kCacheOnly = 1,   // streaming architectures: proxy answers only from pushed data
  kAlwaysPull = 2,  // direct-query architectures: no cache use, always ask the sensor
};

enum class AnswerSource : uint8_t {
  kCacheHit = 0,
  kExtrapolated = 1,
  kSensorPull = 2,
  kFailed = 3,
};

const char* AnswerSourceName(AnswerSource source);

struct QueryAnswer {
  Status status;
  AnswerSource source = AnswerSource::kFailed;
  std::vector<Sample> samples;   // PAST: the range; NOW: one sample
  double value = 0.0;            // NOW convenience (== samples.back().value)
  double error_estimate = 0.0;   // one-sigma-style bound the proxy asserts
  // Sensor-side radio energy this answer cost (joules). Zero for cache hits and
  // extrapolations — the whole point of the cascade; pulls carry their share of the
  // radio transaction's closed-form estimate (coalesced riders split it evenly).
  double energy_j = 0.0;
  SimTime issued_at = 0;
  SimTime completed_at = 0;

  Duration Latency() const { return completed_at - issued_at; }
};

// Checkpoint codec for answers parked in pending store/federation queries.
void CkptWrite(ByteWriter& w, const QueryAnswer& answer);
Status CkptRead(ByteReader& r, QueryAnswer& answer);

using QueryCallback = std::function<void(const QueryAnswer&)>;

// Serializable completion target for the token-based query API: the client gets the
// token it passed to QueryNow/QueryPast back with the answer. Implemented by the
// unified store; tokens (unlike closures) survive a checkpoint.
class PullClient {
 public:
  virtual ~PullClient() = default;
  virtual void OnPullDone(uint64_t token, const QueryAnswer& answer) = 0;
};

struct ProxyNodeConfig {
  NodeId id = 0;
  ProxyMode mode = ProxyMode::kPresto;
  PredictionEngineParams engine;
  MatcherParams matcher;
  double default_tolerance = 0.5;    // model-driven push threshold sent to sensors
  Duration pull_timeout = Minutes(10);
  // Minimum spacing between promotion-time backfill pulls. A promotion hands the
  // new owner its whole shard at one barrier; issuing every repair pull right there
  // serializes minutes of LPL preambles on this proxy's radio, starving interactive
  // pulls into timeout (and timing out most of the backfill itself). Queued repairs
  // drain one radio transaction per spacing instead. 0 = issue immediately.
  Duration backfill_spacing = Seconds(2);
  Duration maintenance_period = Minutes(1);
  // A NOW answer from cache counts as fresh within this many sensing periods.
  double freshness_periods = 3.0;
  // PAST coverage at/above which the cache alone answers.
  double past_coverage_threshold = 0.75;
  bool manage_models = true;    // fit & install models (off for baseline architectures)
  bool enable_matcher = true;   // query-sensor matching reconfiguration
  // Replicate owned-sensor state to the per-sensor replica targets (SetReplicaTargets).
  bool enable_replication = false;
  uint64_t seed = 1;
};

struct ProxyStats {
  uint64_t pushes_received = 0;
  uint64_t push_samples = 0;
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t extrapolations = 0;
  uint64_t pulls = 0;
  uint64_t coalesced_pulls = 0;  // queries that rode an already-in-flight pull
  uint64_t pull_timeouts = 0;
  uint64_t failures = 0;
  uint64_t degraded_answers = 0;  // queries served from replicated state (§5 degraded)
  uint64_t model_sends = 0;
  uint64_t config_sends = 0;
  uint64_t replica_updates = 0;
  uint64_t promotions = 0;      // replica slots elevated to full ownership
  uint64_t demotions = 0;       // ownerships handed back to replica duty
  uint64_t snapshots_sent = 0;  // cache+model state transfers (migration / hand-back)
  uint64_t backfill_pulls = 0;  // archive pulls issued to fill promotion-time gaps
  SampleSet now_latency_ms;
  SampleSet past_latency_ms;
};

class ProxyNode : public NetNode, public EventSink {
 public:
  // Attaches itself to `net` as `config.id` (powered, always-listening).
  ProxyNode(Simulator* sim, Network* net, const ProxyNodeConfig& config);

  // Pins this proxy's self-scheduled events (maintenance timer, pull timeouts) to a
  // simulator lane; the deployment binds lane = shard index. Call before Start().
  void BindLane(int lane) {
    lane_ = lane;
    maintenance_timer_.BindLane(lane);
  }

  // Declares a sensor this proxy manages. `sensing_period` is the sensor's sampling
  // grid (needed for freshness/coverage math). `replica = true` registers standby
  // state for a sensor owned by a peer proxy: it accepts replicated cache/model
  // updates and serves failover queries, but is not indexed as this proxy's own and
  // is excluded from model management / matcher control traffic.
  void RegisterSensor(NodeId sensor_id, Duration sensing_period, bool replica = false);

  // Drops a sensor's state entirely (its shard moved away and this proxy is no longer
  // owner or replica). In-flight pulls for the sensor fail with kUnavailable.
  void UnregisterSensor(NodeId sensor_id);

  // Replica -> full owner: the sensor's state is kept and this proxy takes over pulls,
  // model management, and matcher control (failover promotion / migration landing).
  void PromoteSensor(NodeId sensor_id);

  // Full owner -> replica: keeps state as standby, stops pulling and managing. Any
  // in-flight pulls for the sensor are failed (the new owner re-pulls on demand).
  void DemoteSensor(NodeId sensor_id);

  // Declares where this proxy replicates `sensor_id`'s pushed/pulled state and models
  // (K-way replica set of the sensor's shard; empty disables replication for it).
  void SetReplicaTargets(NodeId sensor_id, std::vector<NodeId> targets);

  // Ships a cache snapshot (last `history` of reference samples) plus the current
  // model to `to_proxy` over the wired mesh — the state-transfer half of a migration
  // or a revive hand-back.
  void SendStateSnapshot(NodeId sensor_id, NodeId to_proxy, Duration history);

  // Promotion-time gap repair: scans the cache over [now - horizon, now] for holes
  // (a recruit's snapshot reaches only `handoff_history` deep at its recruit time, and
  // a standby that was down missed its outage window entirely) and issues one
  // background archive pull spanning them, so the freshly promoted owner serves that
  // window from cache instead of degrading. No-op for replicas and hole-free caches.
  // With backfill_spacing > 0 the repair is queued and drained one pull per spacing
  // (holes re-scanned at drain time, so pulls made redundant by live pushes or a
  // hand-back are skipped); 0 pulls inline.
  void BackfillFromArchive(NodeId sensor_id, Duration horizon);

  // Starts maintenance (model management, matcher) — call once after wiring.
  void Start();

  // --- query API (invoked by the unified store / examples / benches) ---
  // Closure form: convenient for tests and benches, but a pull pending on a closure
  // cannot be checkpointed. The token form routes the answer to the registered
  // PullClient and is fully serializable.
  void QueryNow(NodeId sensor_id, double tolerance, Duration latency_bound,
                QueryCallback callback);
  void QueryPast(NodeId sensor_id, TimeInterval range, double tolerance,
                 QueryCallback callback);
  void QueryNow(NodeId sensor_id, double tolerance, Duration latency_bound,
                uint64_t token);
  void QueryPast(NodeId sensor_id, TimeInterval range, double tolerance,
                 uint64_t token);
  void SetPullClient(PullClient* client) { pull_client_ = client; }

  void OnMessage(const Message& message) override;
  // Pull timeouts (payload.b == 0, payload.a = pull id) and backfill drain ticks
  // (payload.b == 1), both EventKind::kQuery.
  void OnSimEvent(EventKind kind, EventPayload& payload) override;
  void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                       const EventHandle& handle, int lane) override;

  // Checkpoint codec: per-sensor state (cache, engine, sync, matcher), pending pulls
  // (token/no-op origins only — closure-form pulls fail the save), backfill queue,
  // timers and stats. LoadState expects a freshly constructed proxy with the same
  // config; pull-timeout handles are re-captured via OnEventRestored.
  Status SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

  // Introspection for benches and the unified store.
  const ProxyStats& stats() const { return stats_; }
  ProxyStats& stats_mut() { return stats_; }
  const ProxyNodeConfig& config() const { return config_; }
  // Sensors this proxy *owns* (excludes replica registrations).
  std::vector<NodeId> sensors() const;
  // Sensors this proxy holds only standby (replica) state for.
  std::vector<NodeId> replica_sensors() const;
  bool ManagesSensor(NodeId sensor_id) const { return sensors_.count(sensor_id) > 0; }
  // True when this proxy holds only standby (replica) state for the sensor.
  bool IsReplicaFor(NodeId sensor_id) const;
  // Queries + pushes seen for this sensor since the last ResetLoadWindow() — the
  // per-shard counters the deployment's rebalancer weighs migrations with.
  uint64_t SensorWindowLoad(NodeId sensor_id) const;
  void ResetLoadWindow();
  const SummaryCache* cache(NodeId sensor_id) const;
  const PredictionEngine* engine(NodeId sensor_id) const;
  Result<double> SyncResidualRms(NodeId sensor_id) const;

  // Reference-time samples cached for `sensor` in `range` (replica-side reads).
  std::vector<Sample> CachedRange(NodeId sensor_id, TimeInterval range) const;

 private:
  struct SensorState {
    NodeId id = 0;
    bool is_replica = false;
    Duration sensing_period = Seconds(31);
    SummaryCache cache;
    PredictionEngine engine;
    RegressionTimeSync sync;
    QuerySensorMatcher matcher;
    bool model_sent = false;
    SimTime last_model_send = 0;
    SimTime last_push = 0;
    std::vector<NodeId> replica_targets;  // where the owner mirrors state/models
    uint64_t window_queries = 0;          // load counters since last ResetLoadWindow
    uint64_t window_pushes = 0;

    SensorState(NodeId sensor_id, Duration period,
                const PredictionEngineParams& engine_params,
                const MatcherParams& matcher_params)
        : id(sensor_id), sensing_period(period), engine(engine_params),
          matcher(matcher_params) {}
  };

  // Where a query's answer goes. kNone (backfill pulls: answer discarded) and kToken
  // are serializable; kClosure is the legacy convenience form and blocks checkpointing
  // while pending.
  struct QueryOrigin {
    enum class Kind : uint8_t { kNone = 0, kClosure = 1, kToken = 2 };
    Kind kind = Kind::kNone;
    uint64_t token = 0;
    QueryCallback closure;

    static QueryOrigin Closure(QueryCallback cb) {
      QueryOrigin o;
      o.kind = Kind::kClosure;
      o.closure = std::move(cb);
      return o;
    }
    static QueryOrigin Token(uint64_t token) {
      QueryOrigin o;
      o.kind = Kind::kToken;
      o.token = token;
      return o;
    }
  };

  // A query that attached itself to an already-in-flight pull covering its range
  // (the batched query pipeline: one radio transaction answers them all).
  struct PullRider {
    bool is_now = false;
    TimeInterval range{};
    SimTime issued_at = 0;
    QueryOrigin origin;
  };

  struct PendingPull {
    uint32_t id = 0;
    NodeId sensor_id = 0;
    bool is_now = false;
    TimeInterval range{};  // reference timeline
    double tolerance = 0.0;
    SimTime issued_at = 0;
    size_t request_bytes = 0;  // encoded ArchiveQueryMsg size, for energy attribution
    QueryOrigin origin;
    EventHandle timeout;
    std::vector<PullRider> riders;
  };

  // A deferred promotion-time repair: the hole scan re-runs at drain time, so a
  // request that live pushes (or a hand-back) already repaired issues no pull.
  struct BackfillRequest {
    NodeId sensor_id = 0;
    Duration horizon = 0;
  };

  SensorState& GetSensor(NodeId sensor_id);
  const SensorState* FindSensor(NodeId sensor_id) const;

  // Scans `sensor`'s cache for holes and issues the spanning archive pull if any
  // remain; returns whether a pull (a radio transaction) was actually issued.
  bool TryBackfillPull(SensorState& sensor, Duration horizon);
  // Pops backfill_queue_ until one pull is issued (skipping entries whose sensor was
  // demoted/unregistered or whose holes have since been repaired), then reschedules
  // itself backfill_spacing later while the queue is non-empty.
  void DrainBackfillQueue();
  // Schedules the next drain tick (a typed kQuery event with payload.b == 1, so the
  // tick survives a checkpoint) and marks the drain pending.
  void ScheduleBackfillDrain();

  void HandleDataPush(const Message& message);
  void HandleArchiveReply(const Message& message);
  void HandleReplicaUpdate(const Message& message);
  void HandleReplicaModel(const Message& message);
  void HandleStateSnapshot(const Message& message);

  void QueryNowInternal(NodeId sensor_id, double tolerance, Duration latency_bound,
                        QueryOrigin origin);
  void QueryPastInternal(NodeId sensor_id, TimeInterval range, double tolerance,
                         QueryOrigin origin);

  void MaybeSendModel(SensorState& sensor);
  void RunMaintenance();
  // Best-effort answer when this proxy only holds replicated state for the sensor:
  // cache/extrapolation only, never a pull (the owner is down; paper §5's degraded
  // service). The error estimate is honest rather than tolerance-gated.
  void AnswerDegradedNow(SensorState& sensor, SimTime now, QueryOrigin origin);
  void AnswerDegradedPast(SensorState& sensor, TimeInterval range, SimTime now,
                          QueryOrigin origin);
  void IssuePull(SensorState& sensor, TimeInterval range, double tolerance, bool is_now,
                 SimTime issued_at, QueryOrigin origin);
  // Answers one query (the pull's originator or a rider) from freshly pulled data.
  // `energy_j` is this query's share of the radio transaction's energy estimate.
  void CompletePullQuery(bool is_now, TimeInterval range, SimTime issued_at,
                         const QueryOrigin& origin, SensorState& sensor,
                         const std::vector<Sample>& pulled, double energy_j);
  // Fails the pull's originator and every rider with `status`.
  void FailPull(const PendingPull& pull, const Status& status);
  void Answer(const QueryAnswer& answer, const QueryOrigin& origin, bool is_now);
  void Replicate(SensorState& sensor, const std::vector<Sample>& reference_samples);
  // Fails and removes every pending pull addressed to `sensor_id`.
  void AbortPullsFor(NodeId sensor_id, const Status& status);

  // Converts a local-time batch to reference time using the sensor's sync state.
  std::vector<Sample> CorrectTimestamps(SensorState& sensor,
                                        const std::vector<Sample>& local) const;

  Simulator* sim_;
  Network* net_;
  ProxyNodeConfig config_;
  PullClient* pull_client_ = nullptr;
  int lane_ = Simulator::kLaneCurrent;  // set by BindLane in lane mode
  PeriodicTimer maintenance_timer_;
  std::map<NodeId, std::unique_ptr<SensorState>> sensors_;
  std::map<uint32_t, PendingPull> pending_pulls_;
  std::deque<BackfillRequest> backfill_queue_;
  bool backfill_drain_pending_ = false;
  uint32_t next_pull_id_ = 1;
  ProxyStats stats_;
};

}  // namespace presto

#endif  // SRC_PROXY_PROXY_NODE_H_
