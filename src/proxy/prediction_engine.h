// The proxy-side prediction engine (paper §3): fits per-sensor models from accumulated
// data, serializes parameters for model-driven push, mirrors sensor anchors so both
// replicas forecast identically, extrapolates cache misses, and monitors push rates to
// decide when a model has drifted and must be refitted.

#ifndef SRC_PROXY_PREDICTION_ENGINE_H_
#define SRC_PROXY_PREDICTION_ENGINE_H_

#include <memory>
#include <vector>

#include "src/models/model.h"

namespace presto {

struct PredictionEngineParams {
  ModelType model_type = ModelType::kSeasonalAr;
  ModelConfig model_config;
  // Bootstrap pushes are sparse (the sensor suppresses anything within its tolerance),
  // so readiness is about *span*, not density: the seasonal component needs to have
  // seen every time-of-day bin, and the grid resampler fills the gaps. A bit over one
  // diurnal cycle, with a floor on real observations.
  Duration min_training_span = Hours(26);
  size_t min_training_samples = 48;
  size_t max_history = 200000;
  Duration refit_interval = Days(2);
  // Refit early when the sensor is pushing more than this fraction of its samples
  // (model failure monitor).
  double refit_push_rate = 0.30;
};

class PredictionEngine {
 public:
  explicit PredictionEngine(const PredictionEngineParams& params);

  // Feeds a reference-time sample (push or pull) into the training history.
  void ObserveTraining(const Sample& sample);

  bool ReadyToFit() const {
    return history_.size() >= params_.min_training_samples &&
           history_.back().t - history_.front().t >= params_.min_training_span;
  }
  bool has_model() const { return model_ != nullptr; }
  const PredictiveModel* model() const { return model_.get(); }

  // Fits a fresh model on the (grid-resampled) history and returns its wire params.
  Result<std::vector<uint8_t>> FitAndSerialize();

  // Installs a model from wire params (replica path — no local fit).
  Status InstallSerialized(const std::vector<uint8_t>& params);

  // Mirrors a sensor-side anchor (called when a model-deviation push arrives).
  void MirrorAnchor(const Sample& sample);

  // Extrapolates; fails if no model is installed yet.
  Result<Prediction> Predict(SimTime t) const;

  // --- drift monitoring ---
  // Record that the sensor pushed (deviation) / suppressed-equivalent periods pass.
  void NoteDeviationPush(SimTime now);
  // True when the model looks stale: age > refit_interval, or recent push rate above
  // refit_push_rate (expected samples derived from the model config's sample period).
  bool ShouldRefit(SimTime now) const;

  SimTime last_fit_time() const { return last_fit_time_; }
  uint64_t fit_count() const { return fit_count_; }

  // Installs an already-materialized model (snapshot transfer: full precision, unlike
  // InstallSerialized's wire params).
  void InstallModel(std::unique_ptr<PredictiveModel> model) { model_ = std::move(model); }

  // Checkpoint codec: training history, the fitted model (full precision), fit
  // bookkeeping and the push-rate window.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  // Resamples history onto the model's sampling grid (linear interpolation), because
  // bootstrap/value-driven training data is irregular.
  std::vector<Sample> ResampleHistory() const;

  PredictionEngineParams params_;
  std::vector<Sample> history_;  // time-ordered reference samples
  std::unique_ptr<PredictiveModel> model_;
  SimTime last_fit_time_ = 0;
  uint64_t fit_count_ = 0;

  // Sliding push-rate window.
  std::vector<SimTime> recent_pushes_;
  Duration push_window_ = Hours(2);
};

}  // namespace presto

#endif  // SRC_PROXY_PREDICTION_ENGINE_H_
