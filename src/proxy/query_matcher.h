// Query-sensor matching (paper §3): translate observed query characteristics — arrival
// rate, latency bounds, precision needs — into sensor operating parameters. "If the
// worst case notification latency for typical queries is 10 minutes, the proxy can
// instruct remote sensors to set its radio duty-cycling parameters accordingly"; "if
// queries only require 75% precision ... lossy compression can be used."

#ifndef SRC_PROXY_QUERY_MATCHER_H_
#define SRC_PROXY_QUERY_MATCHER_H_

#include <optional>

#include "src/sensor/protocol.h"
#include "src/util/result.h"
#include "src/util/sim_time.h"

namespace presto {

class ByteReader;
class ByteWriter;

struct QueryProfile {
  uint64_t queries = 0;
  Duration min_latency_bound = 0;  // tightest latency requirement seen
  double min_tolerance = 0.0;      // tightest precision requirement seen
  SimTime window_start = 0;

  void Note(Duration latency_bound, double tolerance);
  void Reset(SimTime now);
};

struct MatcherParams {
  // Duty cycle: the pull path costs roughly one LPL interval of rendezvous latency, so
  // keep the interval a quarter of the tightest latency bound, within sane limits.
  double lpl_fraction_of_latency = 0.25;
  Duration min_lpl = Millis(200);
  Duration max_lpl = Seconds(60);
  // Compression: quantization at a quarter of the tightest tolerance keeps codec error
  // well inside query precision.
  double quant_fraction_of_tolerance = 0.25;
  double min_quant = 0.005;
  double max_quant = 0.5;
  // Only push a reconfiguration when a parameter moves by more than this factor
  // (avoids chattering control traffic).
  double hysteresis = 0.25;
};

class QuerySensorMatcher {
 public:
  explicit QuerySensorMatcher(const MatcherParams& params);

  void NoteQuery(Duration latency_bound, double tolerance);

  // Configuration update to send, if the profile has drifted enough from what is
  // currently applied; updates the applied snapshot when it emits.
  std::optional<ConfigUpdateMsg> Recommend(SimTime now);

  const QueryProfile& profile() const { return profile_; }
  Duration applied_lpl() const { return applied_lpl_; }
  double applied_quant() const { return applied_quant_; }

  // Checkpoint codec: the query profile window and the applied-config snapshot.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  MatcherParams params_;
  QueryProfile profile_;
  Duration applied_lpl_ = 0;   // 0 = never applied
  double applied_quant_ = 0.0;
};

}  // namespace presto

#endif  // SRC_PROXY_QUERY_MATCHER_H_
