#include "src/core/architectures.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"
#include "src/util/stats.h"
#include "src/workload/queries.h"

namespace presto {
namespace {

// An event counts as "reported" if an observed (pushed/pulled, not extrapolated) cache
// entry lands at the proxy within this window of its onset.
constexpr Duration kDetectionWindow = Minutes(10);

DeploymentConfig MakeDeploymentConfig(ArchitectureKind kind,
                                      const ArchitectureBenchConfig& config) {
  DeploymentConfig d;
  d.num_proxies = config.num_proxies;
  d.sensors_per_proxy = config.sensors_per_proxy;
  d.seed = config.seed;
  d.field.events_per_day = config.events_per_day;
  d.field.seed = config.seed ^ 0xF1E1D;
  switch (kind) {
    case ArchitectureKind::kDirectQuery:
      d.policy = PushPolicy::kNone;
      d.proxy_mode = ProxyMode::kAlwaysPull;
      d.manage_models = false;
      break;
    case ArchitectureKind::kStreaming:
      d.policy = PushPolicy::kEverySample;
      d.proxy_mode = ProxyMode::kCacheOnly;
      d.manage_models = false;
      break;
    case ArchitectureKind::kPresto:
      d.policy = PushPolicy::kModelDriven;
      d.proxy_mode = ProxyMode::kPresto;
      d.manage_models = true;
      break;
  }
  return d;
}

}  // namespace

const char* ArchitectureName(ArchitectureKind kind) {
  switch (kind) {
    case ArchitectureKind::kDirectQuery:
      return "direct-query";
    case ArchitectureKind::kStreaming:
      return "streaming";
    case ArchitectureKind::kPresto:
      return "presto";
  }
  return "?";
}

ArchitectureMetrics RunArchitectureBench(ArchitectureKind kind,
                                         const ArchitectureBenchConfig& config) {
  Deployment deployment(MakeDeploymentConfig(kind, config));
  deployment.Start();
  deployment.RunUntil(config.warmup);

  // Identical query stream for every architecture (seeded independently of kind).
  QueryWorkloadParams qw;
  qw.queries_per_hour = config.queries_per_hour;
  qw.past_fraction = config.past_fraction;
  qw.num_sensors = deployment.total_sensors();
  qw.seed = config.seed ^ 0x5157;
  const SimTime query_end = config.warmup + config.query_window;
  const std::vector<QueryRequest> requests =
      GenerateQueries(qw, TimeInterval{config.warmup, query_end});

  struct Outcome {
    bool past = false;
    UnifiedQueryResult result;
    int global_sensor = 0;
  };
  std::vector<Outcome> outcomes(requests.size());
  size_t completed = 0;

  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    const int proxy_index = request.sensor / config.sensors_per_proxy;
    const int sensor_index = request.sensor % config.sensors_per_proxy;
    QuerySpec spec;
    spec.sensor_id = Deployment::SensorId(proxy_index, sensor_index);
    spec.tolerance = request.tolerance;
    spec.latency_bound = request.latency_bound;
    if (request.past) {
      spec.type = QueryType::kPast;
      spec.range = TimeInterval{request.issue_at - request.age,
                                request.issue_at - request.age + request.window};
    }
    outcomes[i].past = request.past;
    outcomes[i].global_sensor = request.sensor;
    // Query issue is pinned to the control lane: UnifiedStore routing walks
    // cross-shard state (index, chains, proxy registries), which only the
    // barrier-serial context may touch. Note this bench is still legacy-engine only
    // (a no-op placement today): the completion callbacks below share `completed`
    // and would themselves need control-lane routing before enabling lane_engine.
    deployment.sim().ScheduleAt(
        request.issue_at,
        [&deployment, &outcomes, &completed, i, spec] {
          deployment.store().Query(spec, [&outcomes, &completed,
                                          i](const UnifiedQueryResult& r) {
            outcomes[i].result = r;
            ++completed;
          });
        },
        Simulator::kLaneControl);
  }
  // Slack so trailing pulls can finish.
  deployment.RunUntil(query_end + Hours(1));

  ArchitectureMetrics m;
  m.name = ArchitectureName(kind);

  SampleSet now_latency;
  uint64_t now_total = 0;
  uint64_t now_ok = 0;
  uint64_t past_total = 0;
  uint64_t past_ok = 0;
  uint64_t hits = 0;
  uint64_t extrapolations = 0;
  uint64_t pulls = 0;
  uint64_t answered = 0;
  double past_sq_error = 0.0;
  int64_t past_points = 0;

  for (const Outcome& outcome : outcomes) {
    const QueryAnswer& answer = outcome.result.answer;
    const bool ok = answer.status.ok();
    if (outcome.past) {
      ++past_total;
      if (ok && !answer.samples.empty()) {
        ++past_ok;
        for (const Sample& s : answer.samples) {
          const double truth = deployment.field().TruthAt(outcome.global_sensor, s.t);
          past_sq_error += (s.value - truth) * (s.value - truth);
          ++past_points;
        }
      }
    } else {
      ++now_total;
      if (ok) {
        ++now_ok;
        now_latency.Add(ToMillis(outcome.result.Latency()));
      }
    }
    if (ok) {
      ++answered;
      switch (answer.source) {
        case AnswerSource::kCacheHit:
          ++hits;
          break;
        case AnswerSource::kExtrapolated:
          ++extrapolations;
          break;
        case AnswerSource::kSensorPull:
          ++pulls;
          break;
        case AnswerSource::kFailed:
          break;
      }
    }
  }

  m.now_latency_ms_mean = now_latency.mean();
  m.now_latency_ms_p95 = now_latency.Quantile(0.95);
  m.now_success = now_total > 0 ? static_cast<double>(now_ok) / now_total : 0.0;
  m.past_success = past_total > 0 ? static_cast<double>(past_ok) / past_total : 0.0;
  m.past_rmse = past_points > 0 ? std::sqrt(past_sq_error / past_points) : 0.0;
  if (answered > 0) {
    m.cache_hit_share = static_cast<double>(hits) / answered;
    m.extrapolated_share = static_cast<double>(extrapolations) / answered;
    m.pull_share = static_cast<double>(pulls) / answered;
  }

  // Energy and traffic per sensor-day.
  const double days = ToDays(deployment.sim().Now());
  m.energy_j_per_sensor_day = deployment.MeanSensorEnergy() / days;
  uint64_t messages = 0;
  for (int p = 0; p < config.num_proxies; ++p) {
    for (int s = 0; s < config.sensors_per_proxy; ++s) {
      messages += deployment.net().node_stats(Deployment::SensorId(p, s)).messages_sent;
    }
  }
  m.messages_per_sensor_day =
      static_cast<double>(messages) / deployment.total_sensors() / days;

  // Rare-event scoring: each injected transient must show up as *observed* data at the
  // owning proxy shortly after onset.
  uint64_t events = 0;
  uint64_t detected = 0;
  RunningStats detection_delay_s;
  for (int p = 0; p < config.num_proxies; ++p) {
    for (int s = 0; s < config.sensors_per_proxy; ++s) {
      const int global = p * config.sensors_per_proxy + s;
      const NodeId sensor_id = Deployment::SensorId(p, s);
      const auto node_events = deployment.field().EventsIn(
          global, TimeInterval{config.warmup, query_end});
      const SummaryCache* cache = deployment.proxy(p).cache(sensor_id);
      for (const TransientEvent& event : node_events) {
        if (std::abs(event.magnitude) < 2.0 ||
            event.start >= query_end - kDetectionWindow) {
          continue;
        }
        ++events;
        if (cache == nullptr) {
          continue;
        }
        const auto entries = cache->RangeEntries(
            TimeInterval{event.start, event.start + kDetectionWindow});
        for (const auto& entry : entries) {
          // Detection means the proxy *learned* an observed value inside the window —
          // arrival time, not data timestamp (late batches do not count).
          if (entry.source != CacheSource::kExtrapolated &&
              entry.inserted_at <= event.start + kDetectionWindow) {
            ++detected;
            detection_delay_s.Add(ToSeconds(entry.inserted_at - event.start));
            break;
          }
        }
      }
    }
  }
  m.event_detection_rate = events > 0 ? static_cast<double>(detected) / events : 0.0;
  m.event_latency_s = detection_delay_s.mean();
  return m;
}

}  // namespace presto
