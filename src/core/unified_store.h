// The unified logical store (paper §5): one query interface over many proxies and
// thousands of sensors. A skip graph keyed by sensor id maps each sensor to its owning
// proxy; queries route through the index (hop-accounted, with per-hop wired latency),
// fail over along the sensor's own ordered holder chain when the owner is down, and
// return provenance-annotated answers.
//
// Failover routing follows *sensors*, not proxies: each sensor carries an ordered
// chain of the proxies currently holding its state (acting owner first), re-derived by
// the deployment on every ownership mutation. A second failure of a promoted acting
// owner therefore falls through to the next live holder immediately — there is no
// window in which a shard is unroutable while waiting for the dead proxy's own
// promotion event.

#ifndef SRC_CORE_UNIFIED_STORE_H_
#define SRC_CORE_UNIFIED_STORE_H_

#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "src/core/types.h"
#include "src/index/skip_graph.h"
#include "src/net/network.h"
#include "src/proxy/proxy_node.h"
#include "src/sim/simulator.h"

namespace presto {

struct UnifiedStoreStats {
  uint64_t queries = 0;
  uint64_t routed = 0;
  uint64_t failovers = 0;
  uint64_t unroutable = 0;
  uint64_t total_index_hops = 0;
  uint64_t reassignments = 0;  // index re-points (promotion / migration / hand-back)
};

// Routing (index search, chain walk, stats) runs in the calling context — queries are
// issued from control context (between epochs / at barriers) in lane mode. Query
// *execution* is a pair of typed kQuery events pinned to the serving proxy's lane, so
// the cache/model/pull work runs with that shard's other events; the completion
// callback therefore also fires in the serving proxy's lane, synchronized with the
// control thread by the epoch barrier.
//
// Proxy-level execution uses the token query API (the store is each proxy's
// PullClient), and the store exposes the same shape upward: callers that need their
// in-flight queries to survive a checkpoint pass a token and implement
// UnifiedStore::Client; the closure overload remains for call sites that never
// checkpoint mid-query (tests, ad-hoc drivers).
class UnifiedStore : public EventSink, public PullClient {
 public:
  // Serializable completion target for token-form store queries (the checkpointable
  // counterpart of the callback overload). Implemented by Deployment.
  class Client {
   public:
    virtual ~Client() = default;
    virtual void OnStoreQueryDone(uint64_t token, const UnifiedQueryResult& result) = 0;
  };

  // Per-hop latency models proxy-to-proxy forwarding on the wired tier while resolving
  // the distributed index.
  UnifiedStore(Simulator* sim, Network* net, uint64_t seed,
               Duration per_hop_latency = Millis(2));

  // Indexes every sensor the proxy manages (and installs this store as the proxy's
  // pull client). Call after RegisterSensor on the proxy.
  void AddProxy(ProxyNode* proxy);

  // Declares the ordered holder chain for one sensor (acting owner first, standbys in
  // failover priority order): when the index-resolved proxy is down, queries fall
  // through to the first live chain member that holds the sensor.
  void SetSensorChain(NodeId sensor_id, std::vector<NodeId> chain);

  // Re-points the distributed index entry for one sensor at `new_proxy` — the
  // index-registration half of a replica promotion, live migration, or hand-back.
  void ReassignSensor(NodeId sensor_id, NodeId new_proxy);

  // Routes and executes a query; the callback fires when the answer is complete.
  // Closure-form queries in flight block SaveState.
  void Query(const QuerySpec& spec,
             std::function<void(const UnifiedQueryResult&)> callback);

  // Token form: completion is delivered as client->OnStoreQueryDone(token, result).
  void Query(const QuerySpec& spec, uint64_t token);
  void SetClient(Client* client) { client_ = client; }

  const UnifiedStoreStats& stats() const { return stats_; }
  int IndexSize() const { return static_cast<int>(index_.size()); }

  void OnSimEvent(EventKind kind, EventPayload& payload) override;

  // PullClient: proxy-level answers come back keyed by store query id.
  void OnPullDone(uint64_t token, const QueryAnswer& answer) override;

  // Checkpoint codec: the distributed index (exact, including its RNG), holder
  // chains, stats, and token-form pending queries. Restore assumes an identically
  // constructed store (same proxies added in the same order).
  Status SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  // One routed query in flight: spec + provenance-annotated result under
  // construction, plus the completion target. Stage 0 (kQuery, b=0) executes the
  // query on the serving proxy; stage 1 (b=1) models the return hop and completes.
  // Entries for different proxies complete concurrently, so the map itself is
  // mutex-guarded; each entry is only ever touched by its own lane.
  struct PendingQuery {
    QuerySpec spec;
    UnifiedQueryResult result;
    bool has_token = false;  // token form (serializable) vs closure form
    uint64_t token = 0;
    std::function<void(const UnifiedQueryResult&)> callback;
    Duration route_delay = 0;
  };

  void QueryInternal(const QuerySpec& spec, PendingQuery pending);
  ProxyNode* FindProxy(NodeId proxy_id) const;
  PendingQuery* FindPending(uint64_t id);

  Simulator* sim_;
  Network* net_;
  Duration per_hop_latency_;
  SkipGraph index_;  // sensor id -> owning proxy id
  std::map<NodeId, ProxyNode*> proxies_;
  std::map<NodeId, std::vector<NodeId>> chain_of_;  // sensor -> ordered holder chain
  Client* client_ = nullptr;
  UnifiedStoreStats stats_;
  std::mutex pending_m_;
  std::map<uint64_t, PendingQuery> pending_;
  uint64_t next_query_id_ = 1;
};

}  // namespace presto

#endif  // SRC_CORE_UNIFIED_STORE_H_
