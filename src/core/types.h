// User-facing query types for the unified logical store (paper §5).

#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include "src/net/network.h"
#include "src/proxy/proxy_node.h"
#include "src/util/ckpt.h"
#include "src/util/sample.h"
#include "src/workload/query_driver.h"

namespace presto {

enum class QueryType : uint8_t {
  kNow = 0,   // current value of a sensor
  kPast = 1,  // archival range query
};

struct QuerySpec {
  QueryType type = QueryType::kNow;
  NodeId sensor_id = 0;
  TimeInterval range{};              // kPast only
  double tolerance = 0.5;            // acceptable absolute error (value units)
  Duration latency_bound = Seconds(30);
};

// What the unified store hands back: the owning proxy's answer plus routing metadata.
struct UnifiedQueryResult {
  QueryAnswer answer;
  NodeId served_by = 0;   // proxy that produced the answer
  int index_hops = 0;     // skip-graph hops spent locating the owner
  bool used_replica = false;
  SimTime issued_at = 0;
  SimTime completed_at = 0;

  Duration Latency() const { return completed_at - issued_at; }
};

// Checkpoint codecs: specs and results ride inside pending-query sections.
inline void CkptWrite(ByteWriter& w, const QuerySpec& spec) {
  CkptWrite(w, spec.type);
  CkptWrite(w, spec.sensor_id);
  CkptWrite(w, spec.range);
  CkptWrite(w, spec.tolerance);
  CkptWrite(w, spec.latency_bound);
}
inline Status CkptRead(ByteReader& r, QuerySpec& spec) {
  CKPT_READ(r, spec.type);
  if (static_cast<uint8_t>(spec.type) > static_cast<uint8_t>(QueryType::kPast)) {
    return DataLossError("query spec restore: type out of range");
  }
  CKPT_READ(r, spec.sensor_id);
  CKPT_READ(r, spec.range);
  CKPT_READ(r, spec.tolerance);
  CKPT_READ(r, spec.latency_bound);
  return OkStatus();
}

inline void CkptWrite(ByteWriter& w, const UnifiedQueryResult& result) {
  CkptWrite(w, result.answer);
  CkptWrite(w, result.served_by);
  CkptWrite(w, result.index_hops);
  CkptWrite(w, result.used_replica);
  CkptWrite(w, result.issued_at);
  CkptWrite(w, result.completed_at);
}
inline Status CkptRead(ByteReader& r, UnifiedQueryResult& result) {
  CKPT_READ(r, result.answer);
  CKPT_READ(r, result.served_by);
  CKPT_READ(r, result.index_hops);
  CKPT_READ(r, result.used_replica);
  CKPT_READ(r, result.issued_at);
  CKPT_READ(r, result.completed_at);
  return OkStatus();
}

// QueryOutcome view of a store result — the driver-glue half both Deployment and
// Federation report through (the federation additionally stamps `cross_cell`).
inline QueryOutcome OutcomeFromResult(const UnifiedQueryResult& result) {
  QueryOutcome outcome;
  outcome.issued_at = result.issued_at;
  outcome.completed_at = result.completed_at;
  outcome.ok = result.answer.status.ok();
  outcome.source = static_cast<uint8_t>(result.answer.source);
  outcome.energy_j = result.answer.energy_j;
  return outcome;
}

}  // namespace presto

#endif  // SRC_CORE_TYPES_H_
