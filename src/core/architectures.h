// Quantitative analogue of the paper's Table 1: run the *same* world and query stream
// over three architectures and report what each column of the table claims.
//
//   kDirectQuery  — Diffusion/Cougar row: queries travel to the sensors, no proxy
//                   cache, no prediction, sensor-side archival only.
//   kStreaming    — TinyDB-BBQ/Aurora row: sensors push every sample to the proxy tier,
//                   which answers everything from its stream store.
//   kPresto       — proxy querying + sensor querying on miss, caching + archival,
//                   prediction, hierarchical and energy-aware.
//
// Metrics map to Table 1 columns: NOW latency (interactive use), PAST support
// (answerability + fidelity), prediction (extrapolated share), energy awareness
// (J/sensor/day), and rare-event behaviour (the push-based advantage §2 argues for).

#ifndef SRC_CORE_ARCHITECTURES_H_
#define SRC_CORE_ARCHITECTURES_H_

#include <string>

#include "src/core/deployment.h"

namespace presto {

enum class ArchitectureKind : uint8_t {
  kDirectQuery = 0,
  kStreaming = 1,
  kPresto = 2,
};

const char* ArchitectureName(ArchitectureKind kind);

struct ArchitectureBenchConfig {
  Duration warmup = Days(2);    // training period before queries start
  Duration query_window = Days(2);
  int num_proxies = 2;
  int sensors_per_proxy = 8;
  double queries_per_hour = 24.0;
  double past_fraction = 0.3;
  double events_per_day = 1.0;  // injected rare events per sensor
  uint64_t seed = 42;
};

struct ArchitectureMetrics {
  std::string name;
  // NOW queries.
  double now_latency_ms_mean = 0.0;
  double now_latency_ms_p95 = 0.0;
  double now_success = 0.0;
  // PAST queries.
  double past_success = 0.0;
  double past_rmse = 0.0;  // vs ground truth, successful queries only
  // Answer provenance (prediction column).
  double cache_hit_share = 0.0;
  double extrapolated_share = 0.0;
  double pull_share = 0.0;
  // Energy awareness.
  double energy_j_per_sensor_day = 0.0;
  double messages_per_sensor_day = 0.0;
  // Rare events.
  double event_detection_rate = 0.0;  // events reported to the proxy within 10 min
  double event_latency_s = 0.0;       // mean report delay for detected events
};

// Runs one architecture over the configured world. Deterministic given the config.
ArchitectureMetrics RunArchitectureBench(ArchitectureKind kind,
                                         const ArchitectureBenchConfig& config);

}  // namespace presto

#endif  // SRC_CORE_ARCHITECTURES_H_
