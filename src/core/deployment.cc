#include "src/core/deployment.h"

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace presto {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  Build([this](int global_index) {
    return [this, global_index](SimTime t) { return field_->MeasureAt(global_index, t); };
  });
}

Deployment::Deployment(const DeploymentConfig& config, MeasureFactory measure_factory)
    : config_(config) {
  Build(std::move(measure_factory));
}

void Deployment::Build(MeasureFactory measure_factory) {
  PRESTO_CHECK(config_.num_proxies >= 1);
  PRESTO_CHECK(config_.sensors_per_proxy >= 1);
  PRESTO_CHECK(measure_factory != nullptr);

  shard_map_ = std::make_unique<ShardMap>(config_.num_proxies, total_sensors(),
                                          config_.shard_policy);
  net_ = std::make_unique<Network>(&sim_, config_.net, config_.seed ^ 0x6e6574);
  TemperatureParams field_params = config_.field;
  field_params.seed = config_.seed ^ 0x6669656c64;
  field_ = std::make_unique<TemperatureField>(total_sensors(), field_params,
                                              config_.spatial_correlation);
  store_ = std::make_unique<UnifiedStore>(&sim_, net_.get(), config_.seed ^ 0x696478);

  Pcg32 rng(config_.seed, /*stream=*/0x4450);

  // Proxies first (sensors send to them from their very first sample).
  for (int p = 0; p < config_.num_proxies; ++p) {
    ProxyNodeConfig pc;
    pc.id = ProxyId(p);
    pc.mode = config_.proxy_mode;
    pc.engine = config_.engine;
    pc.engine.model_config = config_.model_config;
    pc.matcher = config_.matcher;
    pc.default_tolerance = config_.model_tolerance;
    pc.pull_timeout = config_.pull_timeout;
    pc.manage_models = config_.manage_models;
    pc.enable_matcher = config_.enable_matcher;
    pc.enable_replication = config_.enable_replication && config_.num_proxies > 1;
    pc.replica_id = ProxyId(shard_map_->ReplicaOf(p));
    pc.seed = config_.seed ^ (0x5050 + static_cast<uint64_t>(p));
    proxies_.push_back(std::make_unique<ProxyNode>(&sim_, net_.get(), pc));
  }
  // Wired mesh between proxies (replication + query forwarding).
  for (int a = 0; a < config_.num_proxies; ++a) {
    for (int b = a + 1; b < config_.num_proxies; ++b) {
      net_->ConnectWired(ProxyId(a), ProxyId(b));
    }
  }

  // Sensors are created in naming-grid (global index) order so seeded draws replay
  // identically regardless of shard policy; ownership comes from the shard map.
  for (int g = 0; g < total_sensors(); ++g) {
    const int owner = shard_map_->OwnerOf(g);
    SensorNodeConfig sc;
    sc.id = GlobalSensorId(g);
    sc.proxy_id = ProxyId(owner);
    sc.sensing_period = config_.sensing_period;
    sc.policy = config_.policy;
    sc.model_tolerance = config_.model_tolerance;
    sc.value_delta = config_.value_delta;
    sc.batch_interval = config_.batch_interval;
    sc.compress = config_.compress;
    sc.codec = config_.codec;
    sc.flash = config_.flash;
    sc.archive = config_.archive;
    sc.archive.nominal_sample_period = config_.sensing_period;
    sc.model_config = config_.model_config;
    sc.model_config.sample_period = config_.sensing_period;
    sc.radio = config_.sensor_radio;
    sc.drift_ppm = rng.Uniform(-config_.max_drift_ppm, config_.max_drift_ppm);
    sc.clock_offset = static_cast<Duration>(
        rng.Uniform(0.0, static_cast<double>(config_.max_clock_offset)));
    sc.seed = config_.seed ^ (0x5353 + static_cast<uint64_t>(g));

    sensors_.push_back(
        std::make_unique<SensorNode>(&sim_, net_.get(), sc, measure_factory(g)));
    proxies_[static_cast<size_t>(owner)]->RegisterSensor(sc.id, config_.sensing_period);
    // The replica must know the sensor to accept replicated state and serve failover.
    if (config_.enable_replication && config_.num_proxies > 1) {
      proxies_[static_cast<size_t>(shard_map_->ReplicaOf(owner))]->RegisterSensor(
          sc.id, config_.sensing_period, /*replica=*/true);
    }
  }

  for (int p = 0; p < config_.num_proxies; ++p) {
    store_->AddProxy(proxies_[static_cast<size_t>(p)].get());
    if (config_.enable_replication && config_.num_proxies > 1) {
      store_->SetReplicaOf(ProxyId(p), ProxyId(shard_map_->ReplicaOf(p)));
    }
  }
}

SensorNode& Deployment::sensor(int proxy_index, int sensor_index) {
  const int global = GlobalSensorIndex(proxy_index, sensor_index);
  PRESTO_CHECK(global >= 0 && global < total_sensors());
  return *sensors_[static_cast<size_t>(global)];
}

void Deployment::Start() {
  for (auto& proxy : proxies_) {
    proxy->Start();
  }
  for (auto& sensor : sensors_) {
    sensor->Start();
  }
}

double Deployment::MeanSensorEnergy() {
  net_->SettleIdleEnergy();
  double total = 0.0;
  for (auto& sensor : sensors_) {
    total += sensor->meter().Total();
  }
  return total / static_cast<double>(sensors_.size());
}

UnifiedQueryResult Deployment::QueryAndWait(const QuerySpec& spec, Duration max_wait) {
  bool done = false;
  UnifiedQueryResult result;
  store_->Query(spec, [&done, &result](const UnifiedQueryResult& r) {
    result = r;
    done = true;
  });
  const SimTime deadline = sim_.Now() + max_wait;
  while (!done && sim_.NextEventTime() >= 0 && sim_.NextEventTime() <= deadline) {
    sim_.Step();
  }
  if (!done) {
    result.answer.status = DeadlineExceededError("query did not complete in max_wait");
    result.issued_at = sim_.Now();
    result.completed_at = sim_.Now();
  }
  return result;
}

}  // namespace presto
