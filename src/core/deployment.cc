#include "src/core/deployment.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace presto {
namespace {

// kMutation payload.a op codes (payload.b carries the packed arguments).
constexpr uint64_t kOpPromote = 1;   // b = proxy index
constexpr uint64_t kOpHandBack = 2;  // b = proxy index
constexpr uint64_t kOpMigrate = 3;   // b = global index | (new owner << 32)

}  // namespace

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  Build([this](int global_index) {
    return [this, global_index](SimTime t) { return field_->MeasureAt(global_index, t); };
  });
}

Deployment::Deployment(const DeploymentConfig& config, MeasureFactory measure_factory)
    : config_(config) {
  Build(std::move(measure_factory));
}

void Deployment::Build(MeasureFactory measure_factory) {
  PRESTO_CHECK(config_.num_proxies >= 1);
  PRESTO_CHECK(config_.sensors_per_proxy >= 1);
  // The (proxy, sensor) naming grid packs ids as 1000*(proxy+1)+sensor, and the
  // failover paths decode them through GlobalIndexOfId — a shard of 1000+ would
  // silently alias into the next proxy's id range. Scale by adding proxies.
  PRESTO_CHECK_MSG(config_.sensors_per_proxy < 1000,
                   "naming grid caps sensors_per_proxy at 999");
  PRESTO_CHECK(config_.replication_factor >= 1);
  PRESTO_CHECK(measure_factory != nullptr);

  // Lane engine: one lane per proxy shard, configured before anything schedules.
  // Sensors start on their home shard's lane so radio neighbourhoods execute
  // together; with lane_rebind a long-lived ownership change moves them at a
  // barrier, otherwise failover and migration traffic simply crosses lanes.
  if (config_.lane_engine) {
    sim_.ConfigureLanes(config_.num_proxies, config_.sim_threads, config_.sim_epoch);
  }
  PRESTO_CHECK_MSG(!config_.auto_epoch || sim_.num_lanes() > 0,
                   "auto_epoch requires the lane engine");

  shard_map_ = std::make_unique<ShardMap>(config_.num_proxies, total_sensors(),
                                          config_.shard_policy,
                                          config_.replication_factor);
  proxy_down_.assign(static_cast<size_t>(config_.num_proxies), 0);
  pending_promotions_.resize(static_cast<size_t>(config_.num_proxies));
  promotion_pending_.assign(static_cast<size_t>(config_.num_proxies), 0);
  rebalance_timer_ =
      std::make_unique<PeriodicTimer>(&sim_, [this] { RebalanceSweep(); });
  net_ = std::make_unique<Network>(&sim_, config_.net, config_.seed ^ 0x6e6574);
  TemperatureParams field_params = config_.field;
  field_params.seed = config_.seed ^ 0x6669656c64;
  field_ = std::make_unique<TemperatureField>(total_sensors(), field_params,
                                              config_.spatial_correlation);
  if (sim_.num_lanes() > 0) {
    // The shared component of the temperature field is built lazily on read; extend
    // it at each barrier so concurrent lane measurements are pure reads.
    sim_.SetBarrierHook([this](SimTime epoch_end) { field_->PrepareThrough(epoch_end); });
  }
  store_ = std::make_unique<UnifiedStore>(&sim_, net_.get(), config_.seed ^ 0x696478);
  store_->SetClient(this);
  sim_.RegisterSink(this);

  Pcg32 rng(config_.seed, /*stream=*/0x4450);

  // Proxies first (sensors send to them from their very first sample).
  for (int p = 0; p < config_.num_proxies; ++p) {
    ProxyNodeConfig pc;
    pc.id = ProxyId(p);
    pc.mode = config_.proxy_mode;
    pc.engine = config_.engine;
    pc.engine.model_config = config_.model_config;
    pc.matcher = config_.matcher;
    pc.default_tolerance = config_.model_tolerance;
    pc.pull_timeout = config_.pull_timeout;
    pc.manage_models = config_.manage_models;
    pc.enable_matcher = config_.enable_matcher;
    pc.enable_replication = ReplicationEnabled();
    pc.seed = config_.seed ^ (0x5050 + static_cast<uint64_t>(p));
    proxies_.push_back(std::make_unique<ProxyNode>(&sim_, net_.get(), pc));
    if (sim_.num_lanes() > 0) {
      net_->SetNodeLane(pc.id, p);
      proxies_.back()->BindLane(p);
    }
  }
  // Wired mesh between proxies (replication + query forwarding).
  for (int a = 0; a < config_.num_proxies; ++a) {
    for (int b = a + 1; b < config_.num_proxies; ++b) {
      net_->ConnectWired(ProxyId(a), ProxyId(b));
    }
  }

  // Sensors are created in naming-grid (global index) order so seeded draws replay
  // identically regardless of shard policy; ownership comes from the shard map.
  for (int g = 0; g < total_sensors(); ++g) {
    const int owner = shard_map_->OwnerOf(g);
    SensorNodeConfig sc;
    sc.id = GlobalSensorId(g);
    sc.proxy_id = ProxyId(owner);
    sc.sensing_period = config_.sensing_period;
    sc.policy = config_.policy;
    sc.model_tolerance = config_.model_tolerance;
    sc.value_delta = config_.value_delta;
    sc.batch_interval = config_.batch_interval;
    sc.compress = config_.compress;
    sc.codec = config_.codec;
    sc.flash = config_.flash;
    sc.archive = config_.archive;
    sc.archive.nominal_sample_period = config_.sensing_period;
    sc.model_config = config_.model_config;
    sc.model_config.sample_period = config_.sensing_period;
    sc.radio = config_.sensor_radio;
    sc.drift_ppm = rng.Uniform(-config_.max_drift_ppm, config_.max_drift_ppm);
    sc.clock_offset = static_cast<Duration>(
        rng.Uniform(0.0, static_cast<double>(config_.max_clock_offset)));
    sc.seed = config_.seed ^ (0x5353 + static_cast<uint64_t>(g));

    sensors_.push_back(
        std::make_unique<SensorNode>(&sim_, net_.get(), sc, measure_factory(g)));
    if (sim_.num_lanes() > 0) {
      net_->SetNodeLane(sc.id, owner);
      sensors_.back()->BindLane(owner);
    }
    proxies_[static_cast<size_t>(owner)]->RegisterSensor(sc.id, config_.sensing_period);
    // Every member of the owner's K-way replica set must know the sensor to accept
    // replicated state and serve failover; the owner mirrors its state to all of them.
    if (ReplicationEnabled()) {
      std::vector<NodeId> targets;
      for (int r : shard_map_->ReplicaSetOf(owner)) {
        proxies_[static_cast<size_t>(r)]->RegisterSensor(sc.id, config_.sensing_period,
                                                         /*replica=*/true);
        targets.push_back(ProxyId(r));
      }
      proxies_[static_cast<size_t>(owner)]->SetReplicaTargets(sc.id, std::move(targets));
    }
  }

  for (int p = 0; p < config_.num_proxies; ++p) {
    store_->AddProxy(proxies_[static_cast<size_t>(p)].get());
  }
  // Seed every sensor's holder chain: home owner first, then its K-way standbys in
  // failover priority order. Each subsequent ownership mutation re-derives the chain.
  sensor_chain_.assign(static_cast<size_t>(total_sensors()), {});
  sensor_load_ema_.assign(static_cast<size_t>(total_sensors()), 0.0);
  for (int g = 0; g < total_sensors(); ++g) {
    std::vector<int>& chain = sensor_chain_[static_cast<size_t>(g)];
    chain.push_back(shard_map_->OwnerOf(g));
    if (ReplicationEnabled()) {
      for (int r : shard_map_->ReplicaSetOf(chain.front())) {
        chain.push_back(r);
      }
    }
    std::vector<NodeId> ids;
    for (int c : chain) {
      ids.push_back(ProxyId(c));
    }
    store_->SetSensorChain(GlobalSensorId(g), std::move(ids));
  }

  // Conservative lookahead: derive the epoch from the topology the wiring above just
  // declared (min cross-lane wired latency), instead of trusting sim_epoch to be
  // below it. Mutations re-derive as the live link set changes.
  RetuneEpoch();
}

SensorNode& Deployment::sensor(int proxy_index, int sensor_index) {
  const int global = GlobalSensorIndex(proxy_index, sensor_index);
  PRESTO_CHECK(global >= 0 && global < total_sensors());
  return *sensors_[static_cast<size_t>(global)];
}

void Deployment::Start() {
  for (auto& proxy : proxies_) {
    proxy->Start();
  }
  for (auto& sensor : sensors_) {
    sensor->Start();
  }
  if (config_.enable_rebalancing && config_.num_proxies > 1) {
    rebalance_timer_->Start(config_.rebalance_period);
  }
}

// ---------- dynamic shard management ----------

bool Deployment::IsProxyDown(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < config_.num_proxies);
  return proxy_down_[static_cast<size_t>(proxy_index)] != 0;
}

int Deployment::ActingOwner(int global_index) const {
  return shard_map_->ActingOwnerOf(global_index);
}

uint64_t Deployment::ProxyWindowLoad(int proxy_index) const {
  // Acting-owner view, not home-shard view: a promoted proxy carries (and must be
  // credited for) the load of the shards it took over, or the rebalancer would pile
  // more sensors onto an already-overloaded acting owner it believes is idle. The
  // shard map's served-by index makes this O(shard), not O(total).
  const ProxyNode& proxy = *proxies_[static_cast<size_t>(proxy_index)];
  uint64_t load = 0;
  for (int g : shard_map_->ServedBy(proxy_index)) {
    load += proxy.SensorWindowLoad(GlobalSensorId(g));
  }
  return load;
}

int Deployment::LiveProxyCount() const {
  int live = 0;
  for (char down : proxy_down_) {
    live += down ? 0 : 1;
  }
  return live;
}

std::vector<int> Deployment::DeriveChain(int global_index, int acting) {
  const NodeId id = GlobalSensorId(global_index);
  const int home = shard_map_->OwnerOf(global_index);
  std::vector<int> chain{acting};
  auto holds = [&](int p) {
    return proxies_[static_cast<size_t>(p)]->ManagesSensor(id);
  };
  auto in_chain = [&](int p) {
    return std::find(chain.begin(), chain.end(), p) != chain.end();
  };
  auto add_holder = [&](int p) {
    if (!in_chain(p) && holds(p)) {
      chain.push_back(p);
    }
  };
  // Existing holders in failover priority order: home (its registration survives a
  // kill, and keeping it chained preserves revive-time rescue), then the home replica
  // set, then recruits surviving from the previous chain.
  add_holder(home);
  for (int r : shard_map_->ReplicaSetOf(home)) {
    add_holder(r);
  }
  for (int c : sensor_chain_[static_cast<size_t>(global_index)]) {
    add_holder(c);
  }
  if (!ReplicationEnabled()) {
    return chain;
  }
  // Top the chain back up to K *live* copies: walk the ring from the acting owner and
  // recruit standbys (register + state snapshot) until the replication factor holds
  // again. This is what keeps a shard routable through cascaded owner failures.
  int live = 0;
  for (int c : chain) {
    live += proxy_down_[static_cast<size_t>(c)] ? 0 : 1;
  }
  const int want = std::min(config_.replication_factor, LiveProxyCount());
  for (int k = 1; k < config_.num_proxies && live < want; ++k) {
    const int r = (acting + k) % config_.num_proxies;
    if (proxy_down_[static_cast<size_t>(r)] || in_chain(r)) {
      continue;
    }
    if (!holds(r)) {
      proxies_[static_cast<size_t>(r)]->RegisterSensor(id, config_.sensing_period,
                                                       /*replica=*/true);
      proxies_[static_cast<size_t>(acting)]->SendStateSnapshot(id, ProxyId(r),
                                                              config_.handoff_history);
    }
    chain.push_back(r);
    ++live;
  }
  return chain;
}

void Deployment::ApplyChain(int global_index, std::vector<int> chain) {
  PRESTO_CHECK(!chain.empty());
  const NodeId id = GlobalSensorId(global_index);
  const int acting = chain.front();
  if (ReplicationEnabled()) {
    std::vector<NodeId> targets;
    for (size_t i = 1; i < chain.size(); ++i) {
      if (!proxy_down_[static_cast<size_t>(chain[i])]) {
        targets.push_back(ProxyId(chain[i]));
      }
    }
    proxies_[static_cast<size_t>(acting)]->SetReplicaTargets(id, std::move(targets));
  }
  std::vector<NodeId> ids;
  for (int c : chain) {
    ids.push_back(ProxyId(c));
  }
  store_->SetSensorChain(id, std::move(ids));
  store_->ReassignSensor(id, ProxyId(acting));
  sensors_[static_cast<size_t>(global_index)]->SetProxy(ProxyId(acting));
  shard_map_->SetActingOwner(global_index, acting);
  sensor_chain_[static_cast<size_t>(global_index)] = std::move(chain);
  // Every acting-ownership change funnels through here, always in control context —
  // the single choke point where lane membership may change (at a barrier).
  RebindSensorLane(global_index, acting);
}

void Deployment::RebindSensorLane(int global_index, int acting) {
  if (!config_.lane_rebind || sim_.num_lanes() == 0) {
    return;
  }
  const NodeId id = GlobalSensorId(global_index);
  if (net_->NodeLane(id) == acting) {
    return;
  }
  // Hand over pending deliveries + coalescing batches, then the sensor's own timers
  // (it holds their handles, so the generic move must not touch kTimer events).
  net_->RebindNodeLane(id, acting);
  sensors_[static_cast<size_t>(global_index)]->RebindLane(acting);
  // The cross-lane link set changed shape; a derived epoch may be able to relax.
  RetuneEpoch();
}

void Deployment::RetuneEpoch() {
  if (!config_.auto_epoch || sim_.num_lanes() == 0) {
    return;
  }
  const Duration min_wired = net_->MinCrossLaneWiredLatency();
  // No cross-lane wired link (single live proxy): no bound, the cap rules.
  sim_.SetLookahead(min_wired >= 0 ? min_wired : 0);
}

void Deployment::KillProxy(int proxy_index) {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < config_.num_proxies);
  if (proxy_down_[static_cast<size_t>(proxy_index)]) {
    return;
  }
  net_->SetNodeDown(ProxyId(proxy_index), true);
  proxy_down_[static_cast<size_t>(proxy_index)] = 1;
  RetuneEpoch();  // the dead proxy's wired links leave the cross-lane set
  if (ReplicationEnabled()) {
    // Failure detection + takeover lag: the replica set serves degraded through the
    // unified store's failover chain until this event promotes a full owner. The
    // promotion is a typed barrier event: it rewrites chains across every shard.
    promotion_pending_[static_cast<size_t>(proxy_index)] = 1;
    EventPayload promote;
    promote.a = kOpPromote;
    promote.b = static_cast<uint64_t>(proxy_index);
    pending_promotions_[static_cast<size_t>(proxy_index)] = sim_.ScheduleEventAt(
        sim_.Now() + config_.promotion_delay, EventKind::kMutation, this,
        std::move(promote), Simulator::kLaneControl);
  }
}

void Deployment::ReviveProxy(int proxy_index) {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < config_.num_proxies);
  if (!proxy_down_[static_cast<size_t>(proxy_index)]) {
    return;
  }
  net_->SetNodeDown(ProxyId(proxy_index), false);
  proxy_down_[static_cast<size_t>(proxy_index)] = 0;
  RetuneEpoch();  // revived wired links re-enter the cross-lane set
  // A revival before the promotion fired simply cancels the takeover.
  pending_promotions_[static_cast<size_t>(proxy_index)].Cancel();
  promotion_pending_[static_cast<size_t>(proxy_index)] = 0;
  if (ReplicationEnabled()) {
    EventPayload handback;
    handback.a = kOpHandBack;
    handback.b = static_cast<uint64_t>(proxy_index);
    sim_.ScheduleEventAt(sim_.Now(), EventKind::kMutation, this, std::move(handback),
                         Simulator::kLaneControl);
  }
}

void Deployment::OnSimEvent(EventKind kind, EventPayload& payload) {
  if (kind == EventKind::kQuery) {
    // A QueryAsync completion marshalled onto the control lane: pop the entry and
    // complete it in control context, dispatched on the entry's origin tag.
    ExternalQuery done;
    {
      std::lock_guard<std::mutex> lock(external_m_);
      auto it = external_.find(payload.a);
      PRESTO_CHECK(it != external_.end());
      done = std::move(it->second);
      external_.erase(it);
    }
    switch (done.origin) {
      case ExternalQuery::Origin::kClosure:
        done.on_done(done.result);
        break;
      case ExternalQuery::Origin::kDriver: {
        PRESTO_CHECK(done.tag < drivers_.size());
        QueryOutcome outcome = OutcomeFromResult(done.result);
        outcome.past = done.past;
        drivers_[static_cast<size_t>(done.tag)]->RecordOutcome(outcome);
        break;
      }
      case ExternalQuery::Origin::kFederation:
        PRESTO_CHECK_MSG(federation_client_ != nullptr,
                         "federation-tagged completion without a client");
        federation_client_->OnDeploymentQueryDone(done.tag, done.result);
        break;
    }
    return;
  }
  PRESTO_CHECK(kind == EventKind::kMutation);
  switch (payload.a) {
    case kOpPromote:
      PromoteShardsOf(static_cast<int>(payload.b));
      break;
    case kOpHandBack:
      HandBackShardsOf(static_cast<int>(payload.b));
      break;
    case kOpMigrate:
      ExecuteMigration(static_cast<int>(payload.b & 0xffffffff),
                       static_cast<int>(payload.b >> 32));
      break;
    default:
      PRESTO_CHECK_MSG(false, "unknown mutation op");
  }
}

void Deployment::PromoteShardsOf(int proxy_index) {
  // Whether fired on schedule or invoked by a revive-time rescue, the
  // failure-detection window for this proxy is now over.
  promotion_pending_[static_cast<size_t>(proxy_index)] = 0;
  if (!proxy_down_[static_cast<size_t>(proxy_index)] || !ReplicationEnabled()) {
    return;
  }
  // Only the sensors this proxy was actually serving — O(shard) via the served-by
  // index, never a full-population rescan. Copy: promotions mutate the index.
  const std::vector<int> served = shard_map_->ServedBy(proxy_index);
  for (int g : served) {
    const NodeId id = GlobalSensorId(g);
    // First live holder on the sensor's own chain (survives cascaded promotions:
    // recruits count, not just the home replica set).
    int target = -1;
    for (int c : sensor_chain_[static_cast<size_t>(g)]) {
      if (!proxy_down_[static_cast<size_t>(c)] &&
          proxies_[static_cast<size_t>(c)]->ManagesSensor(id)) {
        target = c;
        break;
      }
    }
    if (target < 0) {
      continue;  // every holder is down too; the shard stays dark until a revive
    }
    proxies_[static_cast<size_t>(target)]->PromoteSensor(id);
    ApplyChain(g, DeriveChain(g, target));
    if (config_.promotion_backfill) {
      // The promoted owner's replicated state may be shallow (recruit snapshots ship
      // handoff_history at recruit time) or holed (its own outage window): repair the
      // promoted serving window from the sensor's flash archive in the background.
      proxies_[static_cast<size_t>(target)]->BackfillFromArchive(
          id, config_.handoff_history);
    }
    ++shard_stats_.promotions;
    shard_stats_.last_promotion_at = sim_.Now();
  }
}

void Deployment::HandBackShardsOf(int proxy_index) {
  if (proxy_down_[static_cast<size_t>(proxy_index)]) {
    return;
  }
  // Take home every sensor of this proxy's shard currently in failover — O(shard)
  // over the home shard, never a full-population rescan.
  const std::vector<int> shard = shard_map_->SensorsOf(proxy_index);
  for (int g : shard) {
    if (!shard_map_->InFailover(g)) {
      continue;
    }
    const int acting = shard_map_->ActingOwnerOf(g);
    const NodeId id = GlobalSensorId(g);
    if (!proxy_down_[static_cast<size_t>(acting)]) {
      // The acting owner ships what the revived proxy missed, then steps back down.
      ProxyNode& from = *proxies_[static_cast<size_t>(acting)];
      from.SendStateSnapshot(id, ProxyId(proxy_index), config_.handoff_history);
      from.DemoteSensor(id);
    }
    // Restore the home chain (the home proxy kept its owner registration while
    // down; revived standbys catch up from live traffic). Recruits picked up during
    // failover that survive into the re-derived chain stay on; the rest drop their
    // now-redundant state.
    const std::vector<int> old_chain =
        std::move(sensor_chain_[static_cast<size_t>(g)]);
    sensor_chain_[static_cast<size_t>(g)].clear();
    std::vector<int> chain = DeriveChain(g, proxy_index);
    for (int c : old_chain) {
      if (std::find(chain.begin(), chain.end(), c) == chain.end() &&
          proxies_[static_cast<size_t>(c)]->ManagesSensor(id)) {
        proxies_[static_cast<size_t>(c)]->UnregisterSensor(id);
      }
    }
    ApplyChain(g, std::move(chain));
    ++shard_stats_.handbacks;
  }

  // Reconcile stale ownership: this proxy may still believe it fully owns sensors it
  // only ever stood in for — it was down when that shard was handed back (or
  // re-promoted), so the demotion could not reach it. Left alone, two proxies would
  // manage models and send control traffic to the same sensor forever. The proxy's
  // own registration table bounds the scan.
  ProxyNode& revived = *proxies_[static_cast<size_t>(proxy_index)];
  for (NodeId id : revived.sensors()) {
    if (shard_map_->ActingOwnerOf(GlobalIndexOfId(id)) != proxy_index) {
      revived.DemoteSensor(id);
    }
  }

  // Rescue stranded shards: a promotion skipped because every holder was down can
  // succeed now that this proxy is back. Without this, a shard whose owner and
  // replicas all died would stay degraded (and its sensors would push to a dead
  // proxy) even after replicas revive. Proxies still inside their failure-detection
  // window are left to their scheduled promotion event — rescuing them early would
  // erase the modeled promotion_delay.
  for (int p = 0; p < config_.num_proxies; ++p) {
    if (proxy_down_[static_cast<size_t>(p)] &&
        !promotion_pending_[static_cast<size_t>(p)]) {
      PromoteShardsOf(p);
    }
  }

  // Standby refresh: for every sensor this proxy stands by, the (live) acting owner
  // re-derives the chain — the revived standby rejoins the replica targets it was
  // dropped from at promotion time — and ships a catch-up snapshot, otherwise a later
  // promotion would serve state frozen at this proxy's kill. The proxy's replica
  // registrations bound the scan.
  if (ReplicationEnabled()) {
    for (NodeId id : revived.replica_sensors()) {
      const int g = GlobalIndexOfId(id);
      const int acting = shard_map_->ActingOwnerOf(g);
      if (proxy_down_[static_cast<size_t>(acting)]) {
        continue;
      }
      ProxyNode& owner = *proxies_[static_cast<size_t>(acting)];
      if (!owner.ManagesSensor(id) || owner.IsReplicaFor(id)) {
        continue;
      }
      ApplyChain(g, DeriveChain(g, acting));
      owner.SendStateSnapshot(id, ProxyId(proxy_index), config_.handoff_history);
    }
  }
}

void Deployment::MigrateSensor(int global_index, int new_owner) {
  PRESTO_CHECK(global_index >= 0 && global_index < total_sensors());
  PRESTO_CHECK(new_owner >= 0 && new_owner < config_.num_proxies);
  EventPayload migrate;
  migrate.a = kOpMigrate;
  migrate.b = static_cast<uint64_t>(static_cast<uint32_t>(global_index)) |
              (static_cast<uint64_t>(static_cast<uint32_t>(new_owner)) << 32);
  sim_.ScheduleEventAt(sim_.Now(), EventKind::kMutation, this, std::move(migrate),
                       Simulator::kLaneControl);
}

void Deployment::ExecuteMigration(int global_index, int new_owner) {
  const int home = shard_map_->OwnerOf(global_index);
  if (home == new_owner || shard_map_->InFailover(global_index) ||
      proxy_down_[static_cast<size_t>(home)] ||
      proxy_down_[static_cast<size_t>(new_owner)]) {
    return;  // shards in failover (or dead endpoints) don't migrate
  }
  const NodeId id = GlobalSensorId(global_index);
  ProxyNode& src = *proxies_[static_cast<size_t>(home)];
  ProxyNode& dst = *proxies_[static_cast<size_t>(new_owner)];

  // State transfer over the wired mesh; ownership flips now, the snapshot fills the
  // new owner's cache a few (simulated) milliseconds later. The new owner can pull
  // meanwhile — it is a full owner, not a degraded replica.
  src.SendStateSnapshot(id, ProxyId(new_owner), config_.handoff_history);
  if (dst.ManagesSensor(id)) {
    dst.PromoteSensor(id);
  } else {
    dst.RegisterSensor(id, config_.sensing_period, /*replica=*/false);
  }

  const std::vector<int>& old_set = shard_map_->ReplicaSetOf(home);
  shard_map_->MigrateSensor(global_index, new_owner);
  const std::vector<int>& new_set = shard_map_->ReplicaSetOf(new_owner);

  if (ReplicationEnabled()) {
    for (int r : new_set) {
      ProxyNode& replica = *proxies_[static_cast<size_t>(r)];
      if (!replica.ManagesSensor(id)) {
        replica.RegisterSensor(id, config_.sensing_period, /*replica=*/true);
        if (!proxy_down_[static_cast<size_t>(r)]) {
          // Seed the fresh standby so failover isn't cold.
          src.SendStateSnapshot(id, ProxyId(r), config_.handoff_history);
        }
      }
    }

    // The old owner stays on as a standby only if the new replica set includes it.
    const bool home_is_replica =
        std::find(new_set.begin(), new_set.end(), home) != new_set.end();
    if (home_is_replica) {
      src.DemoteSensor(id);
    } else {
      src.UnregisterSensor(id);
    }
    // Stale standbys outside the new topology drop their state.
    for (int r : old_set) {
      if (r == new_owner || r == home) {
        continue;
      }
      const bool still_replica =
          std::find(new_set.begin(), new_set.end(), r) != new_set.end();
      ProxyNode& replica = *proxies_[static_cast<size_t>(r)];
      if (!still_replica && replica.ManagesSensor(id)) {
        replica.UnregisterSensor(id);
      }
    }
  } else {
    src.UnregisterSensor(id);
  }

  // Re-derive the holder chain around the new home (also re-arms the new owner's
  // replica targets, re-points the index, and re-targets the sensor's pushes).
  sensor_chain_[static_cast<size_t>(global_index)].clear();
  ApplyChain(global_index, DeriveChain(global_index, new_owner));
  ++shard_stats_.migrations;
}

void Deployment::RebalanceSweep() {
  ++shard_stats_.rebalance_sweeps;
  // Every sweep closes its observation window, acted upon or not.
  struct WindowReset {
    Deployment* self;
    ~WindowReset() {
      for (auto& proxy : self->proxies_) {
        proxy->ResetLoadWindow();
      }
    }
  } reset{this};

  // Smooth each sensor's load across sweep windows (EMA, deterministic double math):
  // a single window of the query mix is a noisy sample, and re-packing against it
  // churns a converged layout sweep after sweep. The smoothed signal tracks the
  // workload, not one window's random draw. Sensors in failover are pinned to their
  // acting owner — ExecuteMigration refuses them — so their load counts as immovable
  // base load in that proxy's bin.
  const double ema_alpha = config_.rebalance_ema_alpha;
  struct Item {
    double load;
    int global_index;
    int home;
  };
  std::vector<Item> items;
  std::vector<int> bins;  // live proxies, ascending
  std::vector<double> bin_load(static_cast<size_t>(config_.num_proxies), 0.0);
  double busiest_load = 0.0;
  double calmest_load = 0.0;
  for (int p = 0; p < config_.num_proxies; ++p) {
    if (proxy_down_[static_cast<size_t>(p)]) {
      continue;
    }
    bins.push_back(p);
    const ProxyNode& proxy = *proxies_[static_cast<size_t>(p)];
    double total = 0.0;
    for (int g : shard_map_->ServedBy(p)) {
      double& ema = sensor_load_ema_[static_cast<size_t>(g)];
      const double sample =
          static_cast<double>(proxy.SensorWindowLoad(GlobalSensorId(g)));
      ema += ema_alpha * (sample - ema);
      total += ema;
      if (shard_map_->InFailover(g)) {
        bin_load[static_cast<size_t>(p)] += ema;  // pinned
      } else if (ema > 0.0) {
        items.push_back({ema, g, p});  // movable; idle sensors stay put
      }
    }
    busiest_load = std::max(busiest_load, total);
    calmest_load = bins.size() == 1 ? total : std::min(calmest_load, total);
  }
  if (bins.size() < 2 || busiest_load < static_cast<double>(config_.rebalance_min_load)) {
    return;  // idle or near-idle window: background noise is not worth migrating
  }
  const auto balanced = [&](double max_load, double min_load) {
    return max_load <= config_.rebalance_max_ratio * std::max(min_load, 1.0);
  };
  if (balanced(busiest_load, calmest_load)) {
    return;  // balanced enough: re-packing would be pure churn
  }

  // Sticky global LPT (longest-processing-time) assignment: place every loaded
  // sensor, in descending load order, onto the currently lightest bin — but keep a
  // sensor home unless its home bin is already heavier than the lightest bin would
  // be *with* the sensor. A balanced layout re-derives itself move-free (no churn,
  // and partial progress from a capped sweep is preserved by the next one), while a
  // hot shard's surplus spreads across every underloaded bin in one sweep — skew on
  // three shards converges in a single pass where the old busiest/calmest pairing
  // needed a sweep per pair.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.load != b.load ? a.load > b.load : a.global_index < b.global_index;
  });
  struct Move {
    double load;
    int global_index;
    int to;
  };
  std::vector<Move> moves;
  auto load_of = [&](int p) { return bin_load[static_cast<size_t>(p)]; };
  for (const Item& item : items) {
    int best = -1;
    for (int p : bins) {
      if (best < 0 || load_of(p) < load_of(best)) {
        best = p;
      }
    }
    if (config_.rebalance_sticky && load_of(item.home) < load_of(best) + item.load) {
      best = item.home;  // sticky: moving would not leave home lighter than the move
    }
    bin_load[static_cast<size_t>(best)] += item.load;
    if (best != item.home) {
      moves.push_back({item.load, item.global_index, best});
    }
  }

  // Execute the plan hottest-relocation-first, capped per sweep. Once a sweep
  // commits to acting it drives all the way to LPT's packed optimum — stopping at
  // the ratio bound would park the layout right on the edge, where window noise
  // re-trips the gate forever. The smoothed entry gate above is what prevents churn
  // on an already-converged layout. A shard is never drained to zero sensors.
  int executed = 0;
  for (const Move& move : moves) {
    if (executed >= config_.rebalance_max_moves) {
      break;
    }
    if (shard_map_->SensorsOf(shard_map_->OwnerOf(move.global_index)).size() <= 1) {
      continue;
    }
    ExecuteMigration(move.global_index, move.to);
    ++executed;
  }
}

double Deployment::MeanSensorEnergy() {
  net_->SettleIdleEnergy();
  double total = 0.0;
  for (auto& sensor : sensors_) {
    total += sensor->meter().Total();
  }
  return total / static_cast<double>(sensors_.size());
}

Deployment::ExternalQuery* Deployment::FindExternal(uint64_t id) {
  std::lock_guard<std::mutex> lock(external_m_);
  auto it = external_.find(id);
  return it == external_.end() ? nullptr : &it->second;
}

void Deployment::QueryAsync(const QuerySpec& spec,
                            std::function<void(const UnifiedQueryResult&)> on_done) {
  PRESTO_CHECK(on_done != nullptr);
  ExternalQuery entry;
  entry.origin = ExternalQuery::Origin::kClosure;
  entry.on_done = std::move(on_done);
  QueryAsyncInternal(spec, std::move(entry));
}

void Deployment::QueryAsyncFederated(const QuerySpec& spec, uint64_t fed_qid) {
  PRESTO_CHECK_MSG(federation_client_ != nullptr,
                   "federation-tagged query without a client");
  ExternalQuery entry;
  entry.origin = ExternalQuery::Origin::kFederation;
  entry.tag = fed_qid;
  QueryAsyncInternal(spec, std::move(entry));
}

void Deployment::QueryAsyncInternal(const QuerySpec& spec, ExternalQuery entry) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(external_m_);
    id = next_external_id_++;
    external_.emplace(id, std::move(entry));
  }
  // The store completes through OnStoreQueryDone (token = the entry id), from the
  // serving proxy's lane or inline on routing errors.
  store_->Query(spec, id);
}

void Deployment::OnStoreQueryDone(uint64_t token, const UnifiedQueryResult& result) {
  // Park the result in the entry and bounce a typed event to the control lane,
  // where OnSimEvent completes it.
  ExternalQuery* pending = FindExternal(token);
  PRESTO_CHECK(pending != nullptr);
  pending->result = result;
  EventPayload done;
  done.a = token;
  sim_.ScheduleEventAt(sim_.Now(), EventKind::kQuery, this, std::move(done),
                       Simulator::kLaneControl);
}

QueryDriver& Deployment::AttachQueryDriver(const QueryDriverParams& params) {
  QueryDriverParams p = params;
  if (p.mix.num_sensors <= 0) {
    p.mix.num_sensors = total_sensors();
  }
  PRESTO_CHECK_MSG(p.mix.num_sensors <= total_sensors(),
                   "driver namespace exceeds the sensor population");
  // Completion routes by driver index, not the CompletionFn closure, so queries in
  // flight serialize into a checkpoint and complete after restore.
  const uint64_t driver_index = drivers_.size();
  auto issue = [this, driver_index](const QueryRequest& request,
                                    QueryDriver::CompletionFn done) {
    (void)done;  // recorded via RecordOutcome when the tagged completion lands
    QuerySpec spec;
    spec.sensor_id = GlobalSensorId(request.sensor);
    spec.tolerance = request.tolerance;
    spec.latency_bound = request.latency_bound;
    if (request.past) {
      spec.type = QueryType::kPast;
      spec.range = PastRangeOf(request, sim_.Now());
    }
    ExternalQuery entry;
    entry.origin = ExternalQuery::Origin::kDriver;
    entry.tag = driver_index;
    entry.past = request.past;
    QueryAsyncInternal(spec, std::move(entry));
  };
  drivers_.push_back(std::make_unique<QueryDriver>(&sim_, p, std::move(issue)));
  return *drivers_.back();
}

UnifiedQueryResult Deployment::QueryAndWait(const QuerySpec& spec, Duration max_wait) {
  // Shared (not stack-referencing) wait state: on a timeout the store still holds
  // the completion callback, and a late completion (e.g. a pull outliving
  // max_wait) must write into state that is still alive, not a popped stack.
  struct WaitState {
    bool done = false;
    UnifiedQueryResult result;
  };
  auto state = std::make_shared<WaitState>();
  store_->Query(spec, [state](const UnifiedQueryResult& r) {
    state->result = r;
    state->done = true;
  });
  const SimTime deadline = sim_.Now() + max_wait;
  while (!state->done && sim_.NextEventTime() >= 0 &&
         sim_.NextEventTime() <= deadline) {
    sim_.Step();
  }
  if (!state->done) {
    UnifiedQueryResult result;
    result.answer.status = DeadlineExceededError("query did not complete in max_wait");
    result.issued_at = sim_.Now();
    result.completed_at = sim_.Now();
    return result;
  }
  return state->result;
}

}  // namespace presto

namespace presto {

void Deployment::OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                                 const EventHandle& handle, int lane) {
  (void)t;
  (void)lane;
  // Promotion timers are the only deployment events whose handles matter (a revive
  // cancels them); completion bounces (kQuery) fire uncancelled.
  if (kind == EventKind::kMutation && payload.a == kOpPromote) {
    pending_promotions_[static_cast<size_t>(payload.b)] = handle;
  }
}

Status Deployment::SaveCheckpoint(Checkpoint* out, const std::string& prefix) const {
  PRESTO_CHECK(out != nullptr);
  Checkpoint staged;
  const auto add = [&](const std::string& name,
                       const std::function<Status(ByteWriter&)>& fill) -> Status {
    ByteWriter w;
    PRESTO_RETURN_IF_ERROR(fill(w));
    staged.Add(prefix + name, w.TakeBuffer());
    return OkStatus();
  };
  PRESTO_RETURN_IF_ERROR(add("net", [&](ByteWriter& w) { return net_->SaveState(w); }));
  PRESTO_RETURN_IF_ERROR(
      add("store", [&](ByteWriter& w) { return store_->SaveState(w); }));
  PRESTO_RETURN_IF_ERROR(add("shard_map", [&](ByteWriter& w) {
    shard_map_->SaveState(w);
    return OkStatus();
  }));
  PRESTO_RETURN_IF_ERROR(add("deploy", [&](ByteWriter& w) -> Status {
    CkptWrite(w, proxy_down_);
    CkptWrite(w, promotion_pending_);
    CkptWrite(w, sensor_chain_);
    CkptWrite(w, sensor_load_ema_);
    CkptWrite(w, shard_stats_.promotions);
    CkptWrite(w, shard_stats_.handbacks);
    CkptWrite(w, shard_stats_.migrations);
    CkptWrite(w, shard_stats_.rebalance_sweeps);
    CkptWrite(w, shard_stats_.last_promotion_at);
    rebalance_timer_->SaveState(w);
    CkptWrite(w, next_external_id_);
    w.WriteVarU64(external_.size());
    for (const auto& [id, entry] : external_) {
      if (entry.origin == ExternalQuery::Origin::kClosure) {
        return FailedPreconditionError(
            "deployment checkpoint: closure-form external query in flight");
      }
      CkptWrite(w, id);
      CkptWrite(w, entry.origin);
      CkptWrite(w, entry.tag);
      CkptWrite(w, entry.past);
      CkptWrite(w, entry.result);
    }
    return OkStatus();
  }));
  for (int p = 0; p < config_.num_proxies; ++p) {
    PRESTO_RETURN_IF_ERROR(add("proxy/" + std::to_string(p), [&](ByteWriter& w) {
      return proxies_[static_cast<size_t>(p)]->SaveState(w);
    }));
  }
  PRESTO_RETURN_IF_ERROR(add("sensors", [&](ByteWriter& w) {
    for (const auto& sensor : sensors_) {
      sensor->SaveState(w);
    }
    return OkStatus();
  }));
  PRESTO_RETURN_IF_ERROR(add("drivers", [&](ByteWriter& w) -> Status {
    w.WriteVarU64(drivers_.size());
    for (const auto& driver : drivers_) {
      PRESTO_RETURN_IF_ERROR(driver->SaveState(w));
    }
    return OkStatus();
  }));
  // The simulator section is written (and restored) last: its queue references
  // every sink above.
  PRESTO_RETURN_IF_ERROR(add("sim", [&](ByteWriter& w) { return sim_.SaveState(w); }));
  // Nothing partial on failure: sections land in the output only once every
  // subsystem serialized cleanly.
  for (const Checkpoint::Section& section : staged.sections()) {
    out->Add(section.name, section.payload);
  }
  return OkStatus();
}

Status Deployment::LoadCheckpoint(const Checkpoint& ckpt, const std::string& prefix) {
  const auto load = [&](const std::string& name,
                        const std::function<Status(ByteReader&)>& fill) -> Status {
    const std::vector<uint8_t>* payload = ckpt.Find(prefix + name);
    if (payload == nullptr) {
      return NotFoundError("checkpoint missing section " + prefix + name);
    }
    ByteReader r{span<const uint8_t>(*payload)};
    PRESTO_RETURN_IF_ERROR(fill(r));
    if (r.remaining() != 0) {
      return DataLossError("checkpoint section " + prefix + name +
                           " has trailing bytes");
    }
    return OkStatus();
  };
  PRESTO_RETURN_IF_ERROR(load("net", [&](ByteReader& r) { return net_->LoadState(r); }));
  PRESTO_RETURN_IF_ERROR(
      load("store", [&](ByteReader& r) { return store_->LoadState(r); }));
  PRESTO_RETURN_IF_ERROR(
      load("shard_map", [&](ByteReader& r) { return shard_map_->LoadState(r); }));
  PRESTO_RETURN_IF_ERROR(load("deploy", [&](ByteReader& r) -> Status {
    CKPT_READ(r, proxy_down_);
    CKPT_READ(r, promotion_pending_);
    CKPT_READ(r, sensor_chain_);
    CKPT_READ(r, sensor_load_ema_);
    if (proxy_down_.size() != static_cast<size_t>(config_.num_proxies) ||
        promotion_pending_.size() != proxy_down_.size() ||
        sensor_chain_.size() != static_cast<size_t>(total_sensors()) ||
        sensor_load_ema_.size() != sensor_chain_.size()) {
      return DataLossError("deploy restore: table size mismatch");
    }
    CKPT_READ(r, shard_stats_.promotions);
    CKPT_READ(r, shard_stats_.handbacks);
    CKPT_READ(r, shard_stats_.migrations);
    CKPT_READ(r, shard_stats_.rebalance_sweeps);
    CKPT_READ(r, shard_stats_.last_promotion_at);
    PRESTO_RETURN_IF_ERROR(rebalance_timer_->LoadState(r));
    CKPT_READ(r, next_external_id_);
    auto count = r.ReadVarU64();
    if (!count.ok()) {
      return count.status();
    }
    if (*count > r.remaining()) {
      return DataLossError("deploy restore: external count exceeds section bytes");
    }
    external_.clear();
    for (uint64_t i = 0; i < *count; ++i) {
      uint64_t id = 0;
      CKPT_READ(r, id);
      ExternalQuery entry;
      CKPT_READ(r, entry.origin);
      if (entry.origin == ExternalQuery::Origin::kClosure ||
          static_cast<uint8_t>(entry.origin) >
              static_cast<uint8_t>(ExternalQuery::Origin::kFederation)) {
        return DataLossError("deploy restore: bad external query origin");
      }
      CKPT_READ(r, entry.tag);
      CKPT_READ(r, entry.past);
      CKPT_READ(r, entry.result);
      external_.emplace(id, std::move(entry));
    }
    // Stale pre-restore promotion handles: drop (never cancel) — the simulator
    // section re-announces the live ones below.
    for (EventHandle& handle : pending_promotions_) {
      handle = EventHandle();
    }
    return OkStatus();
  }));
  for (int p = 0; p < config_.num_proxies; ++p) {
    PRESTO_RETURN_IF_ERROR(load("proxy/" + std::to_string(p), [&](ByteReader& r) {
      return proxies_[static_cast<size_t>(p)]->LoadState(r);
    }));
  }
  PRESTO_RETURN_IF_ERROR(load("sensors", [&](ByteReader& r) -> Status {
    for (const auto& sensor : sensors_) {
      PRESTO_RETURN_IF_ERROR(sensor->LoadState(r));
    }
    return OkStatus();
  }));
  PRESTO_RETURN_IF_ERROR(load("drivers", [&](ByteReader& r) -> Status {
    auto count = r.ReadVarU64();
    if (!count.ok()) {
      return count.status();
    }
    if (*count != drivers_.size()) {
      return FailedPreconditionError(
          "driver restore: attach the same drivers before restoring");
    }
    for (const auto& driver : drivers_) {
      PRESTO_RETURN_IF_ERROR(driver->LoadState(r));
    }
    return OkStatus();
  }));
  // The simulator loads last: restored queue events announce through
  // OnEventRestored into the fully restored subsystems above.
  PRESTO_RETURN_IF_ERROR(load("sim", [&](ByteReader& r) { return sim_.LoadState(r); }));
  // Re-derive the conservative lookahead from the restored topology (down proxies,
  // re-bound lanes) — the same hook every mutation barrier runs.
  RetuneEpoch();
  return OkStatus();
}

}  // namespace presto
