#include "src/core/deployment.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace presto {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  Build([this](int global_index) {
    return [this, global_index](SimTime t) { return field_->MeasureAt(global_index, t); };
  });
}

Deployment::Deployment(const DeploymentConfig& config, MeasureFactory measure_factory)
    : config_(config) {
  Build(std::move(measure_factory));
}

void Deployment::Build(MeasureFactory measure_factory) {
  PRESTO_CHECK(config_.num_proxies >= 1);
  PRESTO_CHECK(config_.sensors_per_proxy >= 1);
  PRESTO_CHECK(config_.replication_factor >= 1);
  PRESTO_CHECK(measure_factory != nullptr);

  shard_map_ = std::make_unique<ShardMap>(config_.num_proxies, total_sensors(),
                                          config_.shard_policy,
                                          config_.replication_factor);
  proxy_down_.assign(static_cast<size_t>(config_.num_proxies), 0);
  pending_promotions_.resize(static_cast<size_t>(config_.num_proxies));
  promotion_pending_.assign(static_cast<size_t>(config_.num_proxies), 0);
  rebalance_timer_ =
      std::make_unique<PeriodicTimer>(&sim_, [this] { RebalanceSweep(); });
  net_ = std::make_unique<Network>(&sim_, config_.net, config_.seed ^ 0x6e6574);
  TemperatureParams field_params = config_.field;
  field_params.seed = config_.seed ^ 0x6669656c64;
  field_ = std::make_unique<TemperatureField>(total_sensors(), field_params,
                                              config_.spatial_correlation);
  store_ = std::make_unique<UnifiedStore>(&sim_, net_.get(), config_.seed ^ 0x696478);

  Pcg32 rng(config_.seed, /*stream=*/0x4450);

  // Proxies first (sensors send to them from their very first sample).
  for (int p = 0; p < config_.num_proxies; ++p) {
    ProxyNodeConfig pc;
    pc.id = ProxyId(p);
    pc.mode = config_.proxy_mode;
    pc.engine = config_.engine;
    pc.engine.model_config = config_.model_config;
    pc.matcher = config_.matcher;
    pc.default_tolerance = config_.model_tolerance;
    pc.pull_timeout = config_.pull_timeout;
    pc.manage_models = config_.manage_models;
    pc.enable_matcher = config_.enable_matcher;
    pc.enable_replication = ReplicationEnabled();
    pc.seed = config_.seed ^ (0x5050 + static_cast<uint64_t>(p));
    proxies_.push_back(std::make_unique<ProxyNode>(&sim_, net_.get(), pc));
  }
  // Wired mesh between proxies (replication + query forwarding).
  for (int a = 0; a < config_.num_proxies; ++a) {
    for (int b = a + 1; b < config_.num_proxies; ++b) {
      net_->ConnectWired(ProxyId(a), ProxyId(b));
    }
  }

  // Sensors are created in naming-grid (global index) order so seeded draws replay
  // identically regardless of shard policy; ownership comes from the shard map.
  for (int g = 0; g < total_sensors(); ++g) {
    const int owner = shard_map_->OwnerOf(g);
    SensorNodeConfig sc;
    sc.id = GlobalSensorId(g);
    sc.proxy_id = ProxyId(owner);
    sc.sensing_period = config_.sensing_period;
    sc.policy = config_.policy;
    sc.model_tolerance = config_.model_tolerance;
    sc.value_delta = config_.value_delta;
    sc.batch_interval = config_.batch_interval;
    sc.compress = config_.compress;
    sc.codec = config_.codec;
    sc.flash = config_.flash;
    sc.archive = config_.archive;
    sc.archive.nominal_sample_period = config_.sensing_period;
    sc.model_config = config_.model_config;
    sc.model_config.sample_period = config_.sensing_period;
    sc.radio = config_.sensor_radio;
    sc.drift_ppm = rng.Uniform(-config_.max_drift_ppm, config_.max_drift_ppm);
    sc.clock_offset = static_cast<Duration>(
        rng.Uniform(0.0, static_cast<double>(config_.max_clock_offset)));
    sc.seed = config_.seed ^ (0x5353 + static_cast<uint64_t>(g));

    sensors_.push_back(
        std::make_unique<SensorNode>(&sim_, net_.get(), sc, measure_factory(g)));
    proxies_[static_cast<size_t>(owner)]->RegisterSensor(sc.id, config_.sensing_period);
    // Every member of the owner's K-way replica set must know the sensor to accept
    // replicated state and serve failover; the owner mirrors its state to all of them.
    if (ReplicationEnabled()) {
      std::vector<NodeId> targets;
      for (int r : shard_map_->ReplicaSetOf(owner)) {
        proxies_[static_cast<size_t>(r)]->RegisterSensor(sc.id, config_.sensing_period,
                                                         /*replica=*/true);
        targets.push_back(ProxyId(r));
      }
      proxies_[static_cast<size_t>(owner)]->SetReplicaTargets(sc.id, std::move(targets));
    }
  }

  for (int p = 0; p < config_.num_proxies; ++p) {
    store_->AddProxy(proxies_[static_cast<size_t>(p)].get());
  }
  if (ReplicationEnabled()) {
    for (int p = 0; p < config_.num_proxies; ++p) {
      std::vector<NodeId> chain;
      for (int r : shard_map_->ReplicaSetOf(p)) {
        chain.push_back(ProxyId(r));
      }
      store_->SetReplicaChain(ProxyId(p), std::move(chain));
    }
  }
}

SensorNode& Deployment::sensor(int proxy_index, int sensor_index) {
  const int global = GlobalSensorIndex(proxy_index, sensor_index);
  PRESTO_CHECK(global >= 0 && global < total_sensors());
  return *sensors_[static_cast<size_t>(global)];
}

void Deployment::Start() {
  for (auto& proxy : proxies_) {
    proxy->Start();
  }
  for (auto& sensor : sensors_) {
    sensor->Start();
  }
  if (config_.enable_rebalancing && config_.num_proxies > 1) {
    rebalance_timer_->Start(config_.rebalance_period);
  }
}

// ---------- dynamic shard management ----------

bool Deployment::IsProxyDown(int proxy_index) const {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < config_.num_proxies);
  return proxy_down_[static_cast<size_t>(proxy_index)] != 0;
}

int Deployment::ActingOwner(int global_index) const {
  auto it = acting_owner_.find(global_index);
  return it != acting_owner_.end() ? it->second : shard_map_->OwnerOf(global_index);
}

uint64_t Deployment::ProxyWindowLoad(int proxy_index) const {
  // Acting-owner view, not shard-map view: a promoted proxy carries (and must be
  // credited for) the load of the shards it took over, or the rebalancer would pile
  // more sensors onto an already-overloaded acting owner it believes is idle.
  const ProxyNode& proxy = *proxies_[static_cast<size_t>(proxy_index)];
  uint64_t load = 0;
  for (int g = 0; g < total_sensors(); ++g) {
    if (ActingOwner(g) == proxy_index) {
      load += proxy.SensorWindowLoad(GlobalSensorId(g));
    }
  }
  return load;
}

std::vector<NodeId> Deployment::LiveReplicaTargets(int owner, int exclude) const {
  std::vector<NodeId> targets;
  for (int r : shard_map_->ReplicaSetOf(owner)) {
    if (r != exclude && !proxy_down_[static_cast<size_t>(r)]) {
      targets.push_back(ProxyId(r));
    }
  }
  return targets;
}

void Deployment::KillProxy(int proxy_index) {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < config_.num_proxies);
  if (proxy_down_[static_cast<size_t>(proxy_index)]) {
    return;
  }
  net_->SetNodeDown(ProxyId(proxy_index), true);
  proxy_down_[static_cast<size_t>(proxy_index)] = 1;
  if (ReplicationEnabled()) {
    // Failure detection + takeover lag: the replica set serves degraded through the
    // unified store's failover chain until this event promotes a full owner.
    promotion_pending_[static_cast<size_t>(proxy_index)] = 1;
    pending_promotions_[static_cast<size_t>(proxy_index)] = sim_.ScheduleIn(
        config_.promotion_delay, [this, proxy_index] { PromoteShardsOf(proxy_index); });
  }
}

void Deployment::ReviveProxy(int proxy_index) {
  PRESTO_CHECK(proxy_index >= 0 && proxy_index < config_.num_proxies);
  if (!proxy_down_[static_cast<size_t>(proxy_index)]) {
    return;
  }
  net_->SetNodeDown(ProxyId(proxy_index), false);
  proxy_down_[static_cast<size_t>(proxy_index)] = 0;
  // A revival before the promotion fired simply cancels the takeover.
  pending_promotions_[static_cast<size_t>(proxy_index)].Cancel();
  promotion_pending_[static_cast<size_t>(proxy_index)] = 0;
  if (ReplicationEnabled()) {
    sim_.ScheduleIn(0, [this, proxy_index] { HandBackShardsOf(proxy_index); });
  }
}

void Deployment::PromoteShardsOf(int proxy_index) {
  // Whether fired on schedule or invoked by a revive-time rescue, the
  // failure-detection window for this proxy is now over.
  promotion_pending_[static_cast<size_t>(proxy_index)] = 0;
  if (!proxy_down_[static_cast<size_t>(proxy_index)] || !ReplicationEnabled()) {
    return;
  }
  for (int g = 0; g < total_sensors(); ++g) {
    if (ActingOwner(g) != proxy_index) {
      continue;
    }
    const NodeId id = GlobalSensorId(g);
    const int home = shard_map_->OwnerOf(g);
    // First live member of the home replica set already holding standby state.
    int target = -1;
    for (int r : shard_map_->ReplicaSetOf(home)) {
      if (!proxy_down_[static_cast<size_t>(r)] &&
          proxies_[static_cast<size_t>(r)]->ManagesSensor(id)) {
        target = r;
        break;
      }
    }
    if (target < 0) {
      continue;  // every replica is down too; the shard stays dark until a revive
    }
    ProxyNode& promoted = *proxies_[static_cast<size_t>(target)];
    promoted.PromoteSensor(id);
    promoted.SetReplicaTargets(id, LiveReplicaTargets(home, /*exclude=*/target));
    store_->ReassignSensor(id, ProxyId(target));
    sensors_[static_cast<size_t>(g)]->SetProxy(ProxyId(target));
    // Replica sets never contain the owner, so the target is always a foreign proxy.
    acting_owner_[g] = target;
    ++shard_stats_.promotions;
    shard_stats_.last_promotion_at = sim_.Now();
  }
}

void Deployment::HandBackShardsOf(int proxy_index) {
  if (proxy_down_[static_cast<size_t>(proxy_index)]) {
    return;
  }
  for (auto it = acting_owner_.begin(); it != acting_owner_.end();) {
    const int g = it->first;
    const int acting = it->second;
    if (shard_map_->OwnerOf(g) != proxy_index) {
      ++it;
      continue;
    }
    const NodeId id = GlobalSensorId(g);
    ProxyNode& home = *proxies_[static_cast<size_t>(proxy_index)];
    if (!proxy_down_[static_cast<size_t>(acting)]) {
      // The acting owner ships what the revived proxy missed, then steps back down.
      ProxyNode& from = *proxies_[static_cast<size_t>(acting)];
      from.SendStateSnapshot(id, ProxyId(proxy_index), config_.handoff_history);
      from.DemoteSensor(id);
    }
    // The home proxy kept its owner registration while down; re-arm replication to
    // the full set (revived members catch up from live traffic).
    std::vector<NodeId> targets;
    for (int r : shard_map_->ReplicaSetOf(proxy_index)) {
      targets.push_back(ProxyId(r));
    }
    home.SetReplicaTargets(id, std::move(targets));
    store_->ReassignSensor(id, ProxyId(proxy_index));
    sensors_[static_cast<size_t>(g)]->SetProxy(ProxyId(proxy_index));
    ++shard_stats_.handbacks;
    it = acting_owner_.erase(it);
  }

  // Reconcile stale ownership: this proxy may still believe it fully owns sensors it
  // only ever stood in for — it was down when that shard was handed back (or
  // re-promoted), so the demotion could not reach it. Left alone, two proxies would
  // manage models and send control traffic to the same sensor forever.
  ProxyNode& revived = *proxies_[static_cast<size_t>(proxy_index)];
  for (int g = 0; g < total_sensors(); ++g) {
    const NodeId id = GlobalSensorId(g);
    if (ActingOwner(g) != proxy_index && revived.ManagesSensor(id) &&
        !revived.IsReplicaFor(id)) {
      revived.DemoteSensor(id);
    }
  }

  // Rescue stranded shards: a promotion skipped because every replica was down can
  // succeed now that this proxy is back. Without this, a shard whose owner and
  // replicas all died would stay degraded (and its sensors would push to a dead
  // proxy) even after replicas revive. Proxies still inside their failure-detection
  // window are left to their scheduled promotion event — rescuing them early would
  // erase the modeled promotion_delay.
  for (int p = 0; p < config_.num_proxies; ++p) {
    if (proxy_down_[static_cast<size_t>(p)] &&
        !promotion_pending_[static_cast<size_t>(p)]) {
      PromoteShardsOf(p);
    }
  }

  // Standby refresh: acting owners re-arm their replica targets against the live set
  // (a target dropped while this proxy was down comes back here) and ship this proxy
  // a catch-up snapshot for every sensor it stands by — otherwise a revived standby
  // would silently serve state frozen at its kill if promoted later.
  if (ReplicationEnabled()) {
    for (int g = 0; g < total_sensors(); ++g) {
      const int acting = ActingOwner(g);
      if (proxy_down_[static_cast<size_t>(acting)]) {
        continue;
      }
      const int home = shard_map_->OwnerOf(g);
      const NodeId id = GlobalSensorId(g);
      ProxyNode& owner = *proxies_[static_cast<size_t>(acting)];
      if (!owner.ManagesSensor(id) || owner.IsReplicaFor(id)) {
        continue;
      }
      if (acting == home) {
        std::vector<NodeId> targets;
        for (int r : shard_map_->ReplicaSetOf(home)) {
          targets.push_back(ProxyId(r));
        }
        owner.SetReplicaTargets(id, std::move(targets));
      } else {
        owner.SetReplicaTargets(id, LiveReplicaTargets(home, /*exclude=*/acting));
      }
      if (acting != proxy_index &&
          proxies_[static_cast<size_t>(proxy_index)]->ManagesSensor(id) &&
          proxies_[static_cast<size_t>(proxy_index)]->IsReplicaFor(id)) {
        owner.SendStateSnapshot(id, ProxyId(proxy_index), config_.handoff_history);
      }
    }
  }
}

void Deployment::MigrateSensor(int global_index, int new_owner) {
  PRESTO_CHECK(global_index >= 0 && global_index < total_sensors());
  PRESTO_CHECK(new_owner >= 0 && new_owner < config_.num_proxies);
  sim_.ScheduleIn(0, [this, global_index, new_owner] {
    ExecuteMigration(global_index, new_owner);
  });
}

void Deployment::ExecuteMigration(int global_index, int new_owner) {
  const int home = shard_map_->OwnerOf(global_index);
  if (home == new_owner || acting_owner_.count(global_index) > 0 ||
      proxy_down_[static_cast<size_t>(home)] ||
      proxy_down_[static_cast<size_t>(new_owner)]) {
    return;  // shards in failover (or dead endpoints) don't migrate
  }
  const NodeId id = GlobalSensorId(global_index);
  ProxyNode& src = *proxies_[static_cast<size_t>(home)];
  ProxyNode& dst = *proxies_[static_cast<size_t>(new_owner)];

  // State transfer over the wired mesh; ownership flips now, the snapshot fills the
  // new owner's cache a few (simulated) milliseconds later. The new owner can pull
  // meanwhile — it is a full owner, not a degraded replica.
  src.SendStateSnapshot(id, ProxyId(new_owner), config_.handoff_history);
  if (dst.ManagesSensor(id)) {
    dst.PromoteSensor(id);
  } else {
    dst.RegisterSensor(id, config_.sensing_period, /*replica=*/false);
  }

  const std::vector<int>& old_set = shard_map_->ReplicaSetOf(home);
  shard_map_->MigrateSensor(global_index, new_owner);
  const std::vector<int>& new_set = shard_map_->ReplicaSetOf(new_owner);

  if (ReplicationEnabled()) {
    std::vector<NodeId> targets;
    for (int r : new_set) {
      ProxyNode& replica = *proxies_[static_cast<size_t>(r)];
      const bool had_state = replica.ManagesSensor(id);
      if (!had_state) {
        replica.RegisterSensor(id, config_.sensing_period, /*replica=*/true);
        if (!proxy_down_[static_cast<size_t>(r)]) {
          // Seed the fresh standby so failover isn't cold.
          src.SendStateSnapshot(id, ProxyId(r), config_.handoff_history);
        }
      }
      targets.push_back(ProxyId(r));
    }
    dst.SetReplicaTargets(id, std::move(targets));

    // The old owner stays on as a standby only if the new replica set includes it.
    const bool home_is_replica =
        std::find(new_set.begin(), new_set.end(), home) != new_set.end();
    if (home_is_replica) {
      src.DemoteSensor(id);
    } else {
      src.UnregisterSensor(id);
    }
    // Stale standbys outside the new topology drop their state.
    for (int r : old_set) {
      if (r == new_owner || r == home) {
        continue;
      }
      const bool still_replica =
          std::find(new_set.begin(), new_set.end(), r) != new_set.end();
      ProxyNode& replica = *proxies_[static_cast<size_t>(r)];
      if (!still_replica && replica.ManagesSensor(id)) {
        replica.UnregisterSensor(id);
      }
    }
  } else {
    src.UnregisterSensor(id);
  }

  store_->ReassignSensor(id, ProxyId(new_owner));
  sensors_[static_cast<size_t>(global_index)]->SetProxy(ProxyId(new_owner));
  ++shard_stats_.migrations;
}

void Deployment::RebalanceSweep() {
  ++shard_stats_.rebalance_sweeps;
  // Window loads per live proxy (ordered scan: deterministic tie-breaks).
  int busiest = -1;
  int calmest = -1;
  uint64_t busiest_load = 0;
  uint64_t calmest_load = 0;
  for (int p = 0; p < config_.num_proxies; ++p) {
    if (proxy_down_[static_cast<size_t>(p)]) {
      continue;
    }
    const uint64_t load = ProxyWindowLoad(p);
    if (busiest < 0 || load > busiest_load) {
      busiest = p;
      busiest_load = load;
    }
    if (calmest < 0 || load < calmest_load) {
      calmest = p;
      calmest_load = load;
    }
  }
  // Every sweep closes its observation window, acted upon or not.
  struct WindowReset {
    Deployment* self;
    ~WindowReset() {
      for (auto& proxy : self->proxies_) {
        proxy->ResetLoadWindow();
      }
    }
  } reset{this};
  if (busiest < 0 || calmest < 0 || busiest == calmest ||
      busiest_load < config_.rebalance_min_load) {
    return;  // idle or near-idle window: nothing worth migrating
  }
  // Hottest sensors first; only move a sensor when it actually narrows the gap.
  std::vector<std::pair<uint64_t, int>> candidates;
  const ProxyNode& hot_proxy = *proxies_[static_cast<size_t>(busiest)];
  for (int g : shard_map_->SensorsOf(busiest)) {
    if (acting_owner_.count(g) > 0) {
      continue;
    }
    candidates.emplace_back(hot_proxy.SensorWindowLoad(GlobalSensorId(g)), g);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const std::pair<uint64_t, int>& a, const std::pair<uint64_t, int>& b) {
              return a.first != b.first ? a.first > b.first : a.second < b.second;
            });
  int moves = 0;
  for (const auto& [load, g] : candidates) {
    if (moves >= config_.rebalance_max_moves ||
        static_cast<int>(shard_map_->SensorsOf(busiest).size()) <= 1) {
      break;
    }
    if (busiest_load <=
        static_cast<uint64_t>(config_.rebalance_max_ratio *
                              static_cast<double>(std::max<uint64_t>(calmest_load, 1)))) {
      break;  // balanced enough
    }
    const uint64_t gap_before = busiest_load - calmest_load;
    const uint64_t new_busiest = busiest_load - load;
    const uint64_t new_calmest = calmest_load + load;
    const uint64_t gap_after =
        new_busiest > new_calmest ? new_busiest - new_calmest : new_calmest - new_busiest;
    if (gap_after >= gap_before) {
      continue;  // this sensor alone carries the hotspot; moving it just relocates it
    }
    ExecuteMigration(g, calmest);
    busiest_load = new_busiest;
    calmest_load = new_calmest;
    ++moves;
  }
}

double Deployment::MeanSensorEnergy() {
  net_->SettleIdleEnergy();
  double total = 0.0;
  for (auto& sensor : sensors_) {
    total += sensor->meter().Total();
  }
  return total / static_cast<double>(sensors_.size());
}

UnifiedQueryResult Deployment::QueryAndWait(const QuerySpec& spec, Duration max_wait) {
  bool done = false;
  UnifiedQueryResult result;
  store_->Query(spec, [&done, &result](const UnifiedQueryResult& r) {
    result = r;
    done = true;
  });
  const SimTime deadline = sim_.Now() + max_wait;
  while (!done && sim_.NextEventTime() >= 0 && sim_.NextEventTime() <= deadline) {
    sim_.Step();
  }
  if (!done) {
    result.answer.status = DeadlineExceededError("query did not complete in max_wait");
    result.issued_at = sim_.Now();
    result.completed_at = sim_.Now();
  }
  return result;
}

}  // namespace presto
