// Multi-cell federation: the first layer *above* Deployment.
//
// A Federation owns N proxy cells (each a complete Deployment: simulator, tiered
// network, proxies, sensors, unified store) under one global sensor namespace, and
// routes queries between them:
//
//  - CellDirectory maps the federation-wide sensor index onto (cell, local index):
//    contiguous per-cell blocks, so a gateway resolves any sensor to its home cell
//    in O(1). Queries may enter at any cell; a query whose target lives elsewhere is
//    forwarded over an inter-cell trunk (CellLink: FIFO serialization at the
//    configured bandwidth plus propagation latency) and its answer rides the reverse
//    trunk home — both hops typed simulator events, never a host round-trip.
//
//  - All cells advance under one shared epoch-barrier schedule (FederationConfig::
//    epoch): Federation::RunUntil steps every cell through the same absolute grid,
//    in cell-index order. Inter-cell traffic generated inside an epoch lands in
//    per-source-cell FIFO outboxes and is drained at the next federation barrier —
//    delivery times clamp to the barrier, exactly the rule the intra-cell lane
//    mailboxes follow, so inter-cell delivery granularity is the federation epoch.
//
//  - Determinism: federation-level state (directory, pending queries, outboxes,
//    trunks, stats) is only ever touched from cell control lanes and the federation
//    barrier loop — cells execute their epochs one at a time (each internally
//    parallel across its shard lanes), so this layer is single-threaded by
//    construction and needs no locks. fingerprint() folds each cell's
//    worker-count-independent fingerprint (bound to its cell index) with a barrier-
//    sequence hash over drained mail, making the federation fingerprint bit-
//    identical across `sim_threads` worker counts and reruns.
//
// Query lifecycle (cross-cell): driver/host issues at origin O -> directory lookup
// at O's gateway -> request serialized onto the O->T trunk -> drained at a
// federation barrier -> executes in T via Deployment::QueryAsync (typed kQuery
// stages in the serving proxy's lane, completion on T's control lane) -> response
// serialized onto the T->O trunk -> drained at a federation barrier -> finalized on
// O's control lane (latency measured on O's clock end to end).

#ifndef SRC_CORE_FEDERATION_H_
#define SRC_CORE_FEDERATION_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/types.h"
#include "src/net/cell_link.h"
#include "src/sim/simulator.h"
#include "src/workload/query_driver.h"

namespace presto {

// Global sensor namespace: federation index = cell * sensors_per_cell + local
// (contiguous per-cell blocks — the geographic analogue one layer up).
class CellDirectory {
 public:
  CellDirectory(int num_cells, int sensors_per_cell);

  int num_cells() const { return num_cells_; }
  int sensors_per_cell() const { return sensors_per_cell_; }
  int total_sensors() const { return num_cells_ * sensors_per_cell_; }

  int CellOf(int fed_index) const;
  int LocalOf(int fed_index) const;
  int FedIndexOf(int cell, int local) const;

 private:
  int num_cells_;
  int sensors_per_cell_;
};

struct FederationConfig {
  int num_cells = 2;
  // Per-cell template (proxies, sensors, replication, lane engine, ...). Each cell
  // gets a distinct seed derived from `seed`, so cells are statistically independent
  // but the whole federation replays from one number.
  DeploymentConfig cell;
  // Federation barrier grid: inter-cell delivery granularity. Must cover the cells'
  // lane epoch (checked) — a trunk cannot deliver *finer* than its endpoints step.
  Duration epoch = Seconds(1);
  // Inter-cell trunk model (one directed CellLink per cell pair).
  CellLinkParams link;
  // Message sizes on the trunk: a query request, a response envelope, and each
  // returned sample (PAST answers pay for their payload).
  uint32_t query_bytes = 64;
  uint32_t response_base_bytes = 64;
  uint32_t response_sample_bytes = 16;
  uint64_t seed = 42;
};

// A query against the federation's global namespace, entering at some origin cell.
struct FederationQuerySpec {
  QueryType type = QueryType::kNow;
  int fed_sensor = 0;  // federation-wide sensor index (CellDirectory namespace)
  TimeInterval range{};
  double tolerance = 0.5;
  Duration latency_bound = Seconds(30);
};

struct FederationQueryResult {
  UnifiedQueryResult cell;  // the serving cell's provenance-annotated answer
  int origin_cell = 0;
  int target_cell = 0;
  bool cross_cell = false;
  SimTime issued_at = 0;     // at the origin gateway
  SimTime completed_at = 0;  // response landed back at the origin

  Duration Latency() const { return completed_at - issued_at; }
};

struct FederationStats {
  uint64_t queries = 0;
  uint64_t local = 0;      // target cell == origin cell (no trunk hop)
  uint64_t forwarded = 0;  // routed over an inter-cell trunk
  uint64_t failed = 0;
  uint64_t barriers = 0;
  uint64_t mail_drained = 0;  // inter-cell messages delivered at barriers
};

class Federation : public EventSink {
 public:
  explicit Federation(const FederationConfig& config);

  // Starts every cell. Call once, then RunUntil.
  void Start();

  // Advances every cell through the shared barrier grid to `t`.
  void RunUntil(SimTime t);

  SimTime Now() const { return now_; }
  int num_cells() const { return config_.num_cells; }
  Deployment& cell(int index) { return *cells_[static_cast<size_t>(index)]; }
  const CellDirectory& directory() const { return directory_; }
  const FederationConfig& config() const { return config_; }

  // Issues a query into the global namespace from `origin_cell`'s gateway. Callable
  // from host control context (between RunUntil calls) or from the origin cell's
  // control lane (the query driver's arrival events). `callback` fires on the
  // origin cell's control lane when the answer lands back at the gateway.
  void IssueFromCell(int origin_cell, const FederationQuerySpec& spec,
                     std::function<void(const FederationQueryResult&)> callback);

  // Issues and runs the federation until the answer arrives (or `max_wait` passes).
  FederationQueryResult QueryAndWait(int origin_cell, const FederationQuerySpec& spec,
                                     Duration max_wait = Minutes(30));

  // Attaches an open-loop in-sim query driver whose queries enter at `origin_cell`
  // and target the whole federation namespace (mix.num_sensors <= 0 defaults to
  // directory().total_sensors()). Caller starts it. One driver per gateway cell is
  // the usual shape; give each a distinct mix.seed.
  QueryDriver& AttachQueryDriver(int origin_cell, const QueryDriverParams& params);

  // Failure injection at cell granularity: kills (revives) every proxy in the cell.
  // With in-cell replication a single KillProxy inside a cell fails over as usual;
  // killing the *whole* cell makes its block of the namespace unavailable until
  // revival — queries to it fail fast at the serving store, not by timeout.
  void KillCell(int cell_index);
  void ReviveCell(int cell_index);

  // The directed inter-cell trunk src -> dst (src != dst).
  const CellLink& link(int src, int dst) const;

  const FederationStats& stats() const { return stats_; }

  // Order-independent fold of the per-cell fingerprints (each bound to its cell
  // index) plus the federation barrier-sequence hash. Equal across reruns and
  // worker counts — the federation-level replay contract.
  uint64_t fingerprint() const;

  // Inter-cell deliveries (kFedOpExecute at the target, kFedOpComplete back at the
  // origin) arrive as typed kQuery events on cell control lanes.
  void OnSimEvent(EventKind kind, EventPayload& payload) override;

 private:
  struct PendingFedQuery {
    QuerySpec spec;  // target-cell-local spec
    FederationQueryResult result;
    std::function<void(const FederationQueryResult&)> callback;
  };
  // An inter-cell message awaiting the next federation barrier. Lives in the
  // *source* cell's FIFO, written only from that cell's serial control lane.
  struct Mail {
    int target_cell;
    SimTime time;  // trunk delivery time (clamped to the draining barrier)
    uint64_t op;
    uint64_t qid;
  };

  CellLink& LinkBetween(int src, int dst);
  void DrainMail();
  void ExecuteAtTarget(uint64_t qid);
  void OnCellAnswered(uint64_t qid, const UnifiedQueryResult& r);
  void Finalize(uint64_t qid);

  FederationConfig config_;
  CellDirectory directory_;
  std::vector<std::unique_ptr<Deployment>> cells_;
  std::vector<std::unique_ptr<CellLink>> links_;  // [src * num_cells + dst]
  std::vector<std::vector<Mail>> outbox_;         // [source cell] FIFO
  std::map<uint64_t, PendingFedQuery> pending_;
  uint64_t next_query_id_ = 1;
  SimTime now_ = 0;
  uint64_t barrier_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  FederationStats stats_;
  // Declared after cells_ so drivers (holding pending arrival events) die first.
  std::vector<std::unique_ptr<QueryDriver>> drivers_;
};

}  // namespace presto

#endif  // SRC_CORE_FEDERATION_H_
