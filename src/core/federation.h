// Multi-cell federation: the first layer *above* Deployment.
//
// A Federation owns N proxy cells (each a complete Deployment: simulator, tiered
// network, proxies, sensors, unified store) under one global sensor namespace, and
// routes queries between them:
//
//  - CellDirectory maps the federation-wide sensor index onto (cell, local index):
//    contiguous per-cell blocks, so a gateway resolves any sensor to its home cell
//    in O(1). Queries may enter at any cell; a query whose target lives elsewhere is
//    forwarded over an inter-cell trunk (CellLink: FIFO serialization at the
//    configured bandwidth plus propagation latency) and its answer rides the reverse
//    trunk home — both hops typed simulator events, never a host round-trip.
//
//  - All cells advance under one shared epoch-barrier schedule (FederationConfig::
//    epoch): Federation::RunUntil steps every cell through the same absolute grid.
//    Inter-cell traffic generated inside an epoch lands in per-source-cell FIFO
//    outboxes and is drained at the next federation barrier — delivery times clamp
//    to the barrier, exactly the rule the intra-cell lane mailboxes follow, so
//    inter-cell delivery granularity is the federation epoch.
//
//  - Cell-parallel stepping (FederationConfig::cell_threads > 1): within each
//    federation epoch the cells themselves run concurrently, claimed off a shared
//    counter by a persistent pool of host threads (each cell still internally
//    parallel across its shard lanes). What makes this safe without changing any
//    observable: every per-source-cell outbox and every directed trunk is written
//    only by its source cell's serial control lane; query ids are allocated from
//    per-origin-cell counters (qid ≡ origin mod num_cells), so allocation needs no
//    cross-cell coordination; per-query state lives in a sharded, mutex-protected
//    pending table whose entries are only ever touched by one cell at a time
//    (issue/finalize on the origin's control lane, execute/answer on the target's,
//    strictly separated by federation barriers); and cross-cell counters are
//    per-origin-cell, folded on demand. Mail drain, driver starts, and
//    topology mutations (KillCell / KillProxy / ...) stay on the serial control
//    step between epochs — the barrier loop never overlaps cell execution.
//
//  - Determinism: cells only interact through outboxes drained serially at
//    barriers, so per-cell event streams are independent of which host thread (or
//    how many) steps them. fingerprint() folds each cell's worker-count-independent
//    fingerprint (bound to its cell index) with a barrier-sequence hash over
//    drained mail, making the federation fingerprint bit-identical across
//    `sim_threads` worker counts, `cell_threads` counts (including sequential
//    stepping), and reruns — the bench and federation_test self-check all three.
//
// Query lifecycle (cross-cell): driver/host issues at origin O -> directory lookup
// at O's gateway -> request serialized onto the O->T trunk -> drained at a
// federation barrier -> executes in T via Deployment::QueryAsync (typed kQuery
// stages in the serving proxy's lane, completion on T's control lane) -> response
// serialized onto the T->O trunk -> drained at a federation barrier -> finalized on
// O's control lane (latency measured on O's clock end to end).

#ifndef SRC_CORE_FEDERATION_H_
#define SRC_CORE_FEDERATION_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/types.h"
#include "src/net/cell_link.h"
#include "src/sim/simulator.h"
#include "src/util/ckpt.h"
#include "src/workload/query_driver.h"

namespace presto {

// Global sensor namespace: federation index = cell * sensors_per_cell + local
// (contiguous per-cell blocks — the geographic analogue one layer up).
class CellDirectory {
 public:
  CellDirectory(int num_cells, int sensors_per_cell);

  int num_cells() const { return num_cells_; }
  int sensors_per_cell() const { return sensors_per_cell_; }
  int total_sensors() const { return num_cells_ * sensors_per_cell_; }

  int CellOf(int fed_index) const;
  int LocalOf(int fed_index) const;
  int FedIndexOf(int cell, int local) const;

 private:
  int num_cells_;
  int sensors_per_cell_;
};

struct FederationConfig {
  int num_cells = 2;
  // Per-cell template (proxies, sensors, replication, lane engine, ...). Each cell
  // gets a distinct seed derived from `seed`, so cells are statistically independent
  // but the whole federation replays from one number.
  DeploymentConfig cell;
  // Federation barrier grid: inter-cell delivery granularity. Must cover the cells'
  // configured lane epoch cap (checked) — a trunk cannot deliver *finer* than its
  // endpoints step. Cells without a lane grid (legacy single-queue engine) report
  // Simulator::kNoEpochGrid and impose no constraint.
  Duration epoch = Seconds(1);
  // Derive the federation epoch from the topology instead of trusting `epoch`
  // verbatim: epoch = clamp(min trunk latency, [max cell epoch cap, epoch]).
  // Stepping no coarser than the fastest trunk keeps DrainMail's barrier clamp from
  // ever binding, so cross-cell completion times are faithful to trunk latency
  // rather than quantized to federation barrier multiples. `epoch` stays the
  // ceiling; the cells' configured lane grid stays the floor.
  bool auto_epoch = false;
  // Host threads stepping cells concurrently within each federation epoch, clamped
  // to [1, num_cells]. 1 (the default) keeps sequential cell-index-order stepping.
  // Fingerprints and driver latency histograms are identical at every value — the
  // cell-parallel half of the federation determinism contract (see file header).
  int cell_threads = 1;
  // Inter-cell trunk model (one directed CellLink per cell pair).
  CellLinkParams link;
  // Message sizes on the trunk: a query request, a response envelope, and each
  // returned sample (PAST answers pay for their payload).
  uint32_t query_bytes = 64;
  uint32_t response_base_bytes = 64;
  uint32_t response_sample_bytes = 16;
  uint64_t seed = 42;
};

// A query against the federation's global namespace, entering at some origin cell.
struct FederationQuerySpec {
  QueryType type = QueryType::kNow;
  int fed_sensor = 0;  // federation-wide sensor index (CellDirectory namespace)
  TimeInterval range{};
  double tolerance = 0.5;
  Duration latency_bound = Seconds(30);
};

struct FederationQueryResult {
  UnifiedQueryResult cell;  // the serving cell's provenance-annotated answer
  int origin_cell = 0;
  int target_cell = 0;
  bool cross_cell = false;
  SimTime issued_at = 0;     // at the origin gateway
  SimTime completed_at = 0;  // response landed back at the origin

  Duration Latency() const { return completed_at - issued_at; }
};

// Checkpoint codec for in-flight cross-cell results.
void CkptWrite(ByteWriter& w, const FederationQueryResult& v);
Status CkptRead(ByteReader& r, FederationQueryResult& v);

struct FederationStats {
  uint64_t queries = 0;
  uint64_t local = 0;      // target cell == origin cell (no trunk hop)
  uint64_t forwarded = 0;  // routed over an inter-cell trunk
  uint64_t failed = 0;
  uint64_t barriers = 0;
  uint64_t mail_drained = 0;  // inter-cell messages delivered at barriers
};

class Federation : public EventSink, public FederationQueryClient {
 public:
  explicit Federation(const FederationConfig& config);
  ~Federation() override;

  // Starts every cell. Call once, then RunUntil.
  void Start();

  // Advances every cell through the shared barrier grid to `t`. With
  // `cell_threads > 1` the cells of each epoch run concurrently; mail drain and
  // everything else at the barrier stays serial.
  void RunUntil(SimTime t);

  // Effective cell-stepping parallelism (config clamped to the cell count).
  int cell_threads() const { return cell_threads_; }

  SimTime Now() const { return now_; }
  int num_cells() const { return config_.num_cells; }
  Deployment& cell(int index) { return *cells_[static_cast<size_t>(index)]; }
  const CellDirectory& directory() const { return directory_; }
  const FederationConfig& config() const { return config_; }

  // Issues a query into the global namespace from `origin_cell`'s gateway. Callable
  // from host control context (between RunUntil calls) or from the origin cell's
  // control lane (the query driver's arrival events). `callback` fires on the
  // origin cell's control lane when the answer lands back at the gateway.
  void IssueFromCell(int origin_cell, const FederationQuerySpec& spec,
                     std::function<void(const FederationQueryResult&)> callback);

  // Issues and runs the federation until the answer arrives (or `max_wait` passes).
  FederationQueryResult QueryAndWait(int origin_cell, const FederationQuerySpec& spec,
                                     Duration max_wait = Minutes(30));

  // Attaches an open-loop in-sim query driver whose queries enter at `origin_cell`
  // and target the whole federation namespace (mix.num_sensors <= 0 defaults to
  // directory().total_sensors()). Caller starts it. One driver per gateway cell is
  // the usual shape; give each a distinct mix.seed.
  QueryDriver& AttachQueryDriver(int origin_cell, const QueryDriverParams& params);

  // Failure injection at cell granularity: kills (revives) every proxy in the cell.
  // With in-cell replication a single KillProxy inside a cell fails over as usual;
  // killing the *whole* cell makes its block of the namespace unavailable until
  // revival — queries to it fail fast at the serving store, not by timeout.
  void KillCell(int cell_index);
  void ReviveCell(int cell_index);

  // The directed inter-cell trunk src -> dst (src != dst).
  const CellLink& link(int src, int dst) const;

  // Aggregated over the per-origin-cell counter blocks plus the serial barrier
  // counters; call from host control context (between RunUntil calls).
  FederationStats stats() const;

  // Order-independent fold of the per-cell fingerprints (each bound to its cell
  // index) plus the federation barrier-sequence hash. Equal across reruns and
  // worker counts — the federation-level replay contract.
  uint64_t fingerprint() const;

  // Inter-cell deliveries (kFedOpExecute at the target, kFedOpComplete back at the
  // origin) arrive as typed kQuery events on cell control lanes.
  void OnSimEvent(EventKind kind, EventPayload& payload) override;

  // FederationQueryClient: a tagged deployment query completed at its target cell
  // (runs on that cell's control lane).
  void OnDeploymentQueryDone(uint64_t qid, const UnifiedQueryResult& result) override;

  // Composes every cell's checkpoint (sections prefixed "cell<i>/") plus one "fed"
  // section: federation clock, barrier hash, per-origin counters, trunk
  // serialization clocks, undrained outboxes, in-flight cross-cell queries, and
  // attached driver state. Call only at a federation barrier (between RunUntil
  // calls); fails if a closure-form query (QueryAndWait probe) is in flight.
  Status SaveCheckpoint(Checkpoint* out) const;

  // Inverse of SaveCheckpoint, into a freshly constructed federation with the same
  // FederationConfig and the same AttachQueryDriver calls, after Start(). The "fed"
  // section restores first (driver/tables), then each cell — cell simulators load
  // last and re-announce queued events so handle-holders re-capture.
  Status LoadCheckpoint(const Checkpoint& ckpt);

 private:
  struct PendingFedQuery {
    // Completion target: a serializable driver tag (token form) or a host-side
    // closure (QueryAndWait probes — never checkpointable in flight).
    enum class Origin : uint8_t { kClosure = 0, kDriver = 1 };
    QuerySpec spec;  // target-cell-local spec
    FederationQueryResult result;
    Origin origin = Origin::kClosure;
    uint64_t driver_index = 0;  // kDriver: index into drivers_
    bool past = false;          // kDriver: query class for the recorded outcome
    std::function<void(const FederationQueryResult&)> callback;
  };
  // One shard of the pending cross-cell query table. The mutex guards only the map
  // *structure* (concurrent inserts/finds/erases of different qids from different
  // cell control lanes); entries themselves are single-owner at any instant —
  // issue/finalize touch a qid on the origin's control lane, execute/answer on the
  // target's, and the two sides are separated by federation barriers, never
  // concurrent. unordered_map keeps references stable across rehash, so an entry
  // pointer taken under the lock stays valid outside it.
  struct PendingShard {
    mutable std::mutex m;  // mutable: SaveCheckpoint (const, barrier context) walks
    std::unordered_map<uint64_t, PendingFedQuery> map;
  };
  static constexpr int kPendingShards = 16;
  // Per-origin-cell bookkeeping, written only from that cell's serial control lane
  // (or host control context). Padded so neighbouring cells' control lanes do not
  // share a cache line under cell-parallel stepping.
  struct alignas(64) CellCounters {
    uint64_t next_qid = 0;
    uint64_t queries = 0;
    uint64_t local = 0;
    uint64_t forwarded = 0;
    uint64_t failed = 0;
  };
  // An inter-cell message awaiting the next federation barrier. Lives in the
  // *source* cell's FIFO, written only from that cell's serial control lane.
  struct Mail {
    int target_cell;
    SimTime time;  // trunk delivery time (clamped to the draining barrier)
    uint64_t op;
    uint64_t qid;
  };

  CellLink& LinkBetween(int src, int dst);
  Duration DeriveEpoch() const;
  void IssueInternal(int origin_cell, const FederationQuerySpec& spec,
                     PendingFedQuery q);
  PendingShard& PendingShardOf(uint64_t qid) {
    // splitmix-style spread: per-origin qids are arithmetic sequences (stride
    // num_cells), which a bare modulus would pile onto few shards.
    return pending_[(qid * 0x9e3779b97f4a7c15ull) >> 60];
  }
  void DrainMail();
  void StepCells(SimTime end);
  void CellWorkerLoop();
  void ClaimCells(SimTime end);
  void ExecuteAtTarget(uint64_t qid);
  void OnCellAnswered(uint64_t qid, const UnifiedQueryResult& r);
  void Finalize(uint64_t qid);

  FederationConfig config_;
  CellDirectory directory_;
  std::vector<std::unique_ptr<Deployment>> cells_;
  std::vector<std::unique_ptr<CellLink>> links_;  // [src * num_cells + dst]
  std::vector<std::vector<Mail>> outbox_;         // [source cell] FIFO
  std::array<PendingShard, kPendingShards> pending_;
  std::vector<CellCounters> counters_;  // [origin cell]
  SimTime now_ = 0;
  uint64_t barrier_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  FederationStats serial_stats_;                   // barriers / mail_drained only

  // Cell-stepping pool (cell_threads_ > 1): the simulator's lane pool one level
  // up. Workers claim cells off next_cell_ and run each through [now_, pool_end_].
  int cell_threads_ = 1;
  std::vector<std::thread> cell_workers_;
  std::mutex pool_m_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  uint64_t pool_gen_ = 0;
  SimTime pool_end_ = 0;
  bool pool_quit_ = false;
  int pool_done_ = 0;
  std::atomic<int> next_cell_{0};

  // Declared after cells_ so drivers (holding pending arrival events) die first.
  std::vector<std::unique_ptr<QueryDriver>> drivers_;
};

}  // namespace presto

#endif  // SRC_CORE_FEDERATION_H_
