// Multi-cell federation: the first layer *above* Deployment.
//
// A Federation owns N proxy cells (each a complete Deployment: simulator, tiered
// network, proxies, sensors, unified store) under one global sensor namespace, and
// routes queries between them:
//
//  - CellDirectory maps the federation-wide sensor index onto (cell, local index):
//    contiguous per-cell blocks, so a gateway resolves any sensor to its home cell
//    in O(1). Queries may enter at any cell; a query whose target lives elsewhere is
//    forwarded over an inter-cell trunk (CellLink: FIFO serialization at the
//    configured bandwidth plus propagation latency) and its answer rides the reverse
//    trunk home — both hops typed simulator events, never a host round-trip.
//
//  - FedCell is the per-cell half of that router: it owns the cell's outgoing trunk
//    row, its pending cross-cell query table (indexed by target cell, so whole-cell
//    kill/revive fails pending queries in O(pending-for-that-cell)), its attached
//    query drivers, and a FIFO outbox of FedMail — byte-serialized trunk messages
//    (the query spec rides the request, the full result rides the response). A
//    FedCell therefore needs *nothing* from any other cell at runtime: every
//    cross-cell interaction is a FedMail, which is what lets a cell live in another
//    process (below) without changing a single observable.
//
//  - All cells advance under one shared epoch-barrier schedule (FederationConfig::
//    epoch): Federation::RunUntil steps every cell through the same absolute grid.
//    Inter-cell traffic generated inside an epoch lands in per-source-cell FIFO
//    outboxes and is drained at the next federation barrier — delivery times clamp
//    to the barrier, exactly the rule the intra-cell lane mailboxes follow, so
//    inter-cell delivery granularity is the federation epoch.
//
//  - Cell-parallel stepping (FederationConfig::cell_threads > 1): within each
//    federation epoch the cells themselves run concurrently, claimed off a shared
//    counter by a persistent pool of host threads. Safe without locks because every
//    mutable structure (outbox, trunk row, pending table, counters) belongs to
//    exactly one cell and is only touched from that cell's serial control lane;
//    barrier-time work (mail drain, kills, driver starts) stays on the serial
//    control step between epochs.
//
//  - Cells as processes (FederationConfig::cell_processes > 1): the same seam,
//    moved across a process boundary. The parent becomes a pure orchestrator — it
//    owns no Deployments — and forks one worker (tools/presto_cell) per process
//    slot; cell c lives in worker c % cell_processes. Every boundary crossing is a
//    versioned wire frame (src/net/fed_wire.h) on a socketpair: bootstrap, barrier
//    stepping (kStep carries the epoch window plus that barrier's FedMail
//    deliveries; the reply returns the mail the epoch generated), control messages
//    (kill / revive / migrate / query-inject), and the fingerprint + stats fold
//    (kSnapshot). Workers step their cells concurrently between barriers — process
//    parallelism with the same observables. A worker that dies mid-run is a
//    deployment-visible failure, not a hang: its cells are marked down everywhere
//    (fail-fast, like KillCell), its last folded stats freeze, and the run
//    continues on the survivors.
//
//  - Determinism: cells only interact through FedMail drained serially at barriers,
//    so per-cell event streams are independent of which host thread, how many, or
//    which *process* steps them. fingerprint() folds each cell's worker-count-
//    independent fingerprint (bound to its cell index) with a barrier-sequence hash
//    over drained mail, making the federation fingerprint bit-identical across
//    `sim_threads` worker counts, `cell_threads` counts, `cell_processes` counts,
//    and reruns — bench and federation_test self-check all of them.
//
// Query lifecycle (cross-cell): driver/host issues at origin O -> directory lookup
// at O's gateway -> spec serialized into a FedMail on the O->T trunk -> drained at
// a federation barrier -> executes in T via Deployment::QueryAsync (typed kQuery
// stages in the serving proxy's lane, completion on T's control lane) -> result
// serialized into a FedMail on the T->O trunk -> drained at a federation barrier ->
// finalized on O's control lane (latency measured on O's clock end to end).

#ifndef SRC_CORE_FEDERATION_H_
#define SRC_CORE_FEDERATION_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/types.h"
#include "src/net/cell_link.h"
#include "src/net/fed_wire.h"
#include "src/sim/simulator.h"
#include "src/util/ckpt.h"
#include "src/workload/query_driver.h"

namespace presto {

// Federation kQuery payload.a op codes (payload.b carries the query id, and
// payload.bytes the serialized QuerySpec / UnifiedQueryResult). Shared by the
// in-process outboxes, the wire frames, and the checkpoint — one mail format.
inline constexpr uint64_t kFedOpExecute = 1;   // request landed at the target cell
inline constexpr uint64_t kFedOpComplete = 2;  // response landed back at the origin

// Per-cell deployment seed derived from the federation seed: cells are
// statistically independent but the whole federation replays from one number.
// Shared by the in-process constructor and presto_cell workers — the two paths
// must agree or fingerprints diverge across modes.
inline uint64_t FederationCellSeed(uint64_t fed_seed, int cell) {
  return fed_seed ^ (0xfedc0de + 0x9e3779b9ull * static_cast<uint64_t>(cell));
}

// Global sensor namespace: federation index = cell * sensors_per_cell + local
// (contiguous per-cell blocks — the geographic analogue one layer up).
class CellDirectory {
 public:
  CellDirectory(int num_cells, int sensors_per_cell);

  int num_cells() const { return num_cells_; }
  int sensors_per_cell() const { return sensors_per_cell_; }
  int total_sensors() const { return num_cells_ * sensors_per_cell_; }

  int CellOf(int fed_index) const;
  int LocalOf(int fed_index) const;
  int FedIndexOf(int cell, int local) const;

 private:
  int num_cells_;
  int sensors_per_cell_;
};

// One socket-transport worker endpoint (numeric IPv4 + port). Plain char array
// so FederationConfig stays trivially copyable — the kBootstrap frame memcpys it.
inline constexpr int kMaxFedEndpoints = 64;
struct FedEndpoint {
  char host[46] = {};
  uint16_t port = 0;
};
FedEndpoint MakeFedEndpoint(const char* host, uint16_t port);

struct FederationConfig {
  int num_cells = 2;
  // Per-cell template (proxies, sensors, replication, lane engine, ...). Each cell
  // gets a distinct seed derived from `seed`, so cells are statistically independent
  // but the whole federation replays from one number.
  DeploymentConfig cell;
  // Federation barrier grid: inter-cell delivery granularity. Must cover the cells'
  // configured lane epoch cap (checked) — a trunk cannot deliver *finer* than its
  // endpoints step. Cells without a lane grid (legacy single-queue engine) report
  // Simulator::kNoEpochGrid and impose no constraint.
  Duration epoch = Seconds(1);
  // Derive the federation epoch from the topology instead of trusting `epoch`
  // verbatim: epoch = clamp(trunk latency, [cell epoch cap, epoch]). Stepping no
  // coarser than the trunk keeps the barrier clamp from ever binding, so
  // cross-cell completion times are faithful to trunk latency rather than
  // quantized to federation barrier multiples. `epoch` stays the ceiling; the
  // cells' configured lane grid stays the floor.
  bool auto_epoch = false;
  // Host threads stepping cells concurrently within each federation epoch, clamped
  // to [1, num_cells]. 1 (the default) keeps sequential cell-index-order stepping.
  // Fingerprints and driver latency histograms are identical at every value — the
  // cell-parallel half of the federation determinism contract (see file header).
  int cell_threads = 1;
  // Worker *processes* hosting the cells, clamped to [1, num_cells]. 1 (the
  // default) keeps every cell in this process. > 1 forks that many presto_cell
  // workers and distributes cell c to worker c % cell_processes; all
  // federation<->cell traffic then rides the fed_wire frame protocol and the
  // parent holds no Deployments (cell()/link()/AttachQueryDriver are in-process
  // only — use the mode-independent facade: AttachDriver / DriverStats /
  // KillProxyInCell / EventsExecuted / TrunkTotals). Mutually exclusive with
  // cell_threads > 1: processes already step cells concurrently. Observables
  // (fingerprint, histograms, stats) are bit-identical to in-process runs.
  int cell_processes = 1;
  // TCP socket transport (num_endpoints > 0): instead of forking, the federation
  // connects to `num_endpoints` already-listening `presto_cell --listen` workers
  // (cell_endpoints[0..num_endpoints)), places cell c on endpoint
  // c % num_endpoints — the same placement rule fork mode uses — and speaks the
  // same fed_wire frames over TCP after a versioned hello handshake. Mutually
  // exclusive with cell_threads / cell_processes > 1. Observables (fingerprint,
  // histograms, stats, checkpoint bytes) stay bit-identical to every other mode;
  // a dead TCP peer surfaces as the same contained cell failure as a SIGKILLed
  // fork worker.
  FedEndpoint cell_endpoints[kMaxFedEndpoints] = {};
  int num_endpoints = 0;
  // Per-frame wall-clock deadline on socket channels (connect, handshake, and
  // every frame read/write). A worker that stops responding — SIGSTOP, network
  // black hole — degrades into a contained cell failure within this bound
  // instead of wedging the barrier loop. Fork-mode socketpairs stay fully
  // blocking (death there always arrives as EOF).
  Duration frame_deadline = Seconds(30);
  // Inter-cell trunk model (one directed CellLink per cell pair).
  CellLinkParams link;
  // Message sizes on the trunk: a query request, a response envelope, and each
  // returned sample (PAST answers pay for their payload).
  uint32_t query_bytes = 64;
  uint32_t response_base_bytes = 64;
  uint32_t response_sample_bytes = 16;
  uint64_t seed = 42;
};

// A query against the federation's global namespace, entering at some origin cell.
struct FederationQuerySpec {
  QueryType type = QueryType::kNow;
  int fed_sensor = 0;  // federation-wide sensor index (CellDirectory namespace)
  TimeInterval range{};
  double tolerance = 0.5;
  Duration latency_bound = Seconds(30);
};

struct FederationQueryResult {
  UnifiedQueryResult cell;  // the serving cell's provenance-annotated answer
  int origin_cell = 0;
  int target_cell = 0;
  bool cross_cell = false;
  SimTime issued_at = 0;     // at the origin gateway
  SimTime completed_at = 0;  // response landed back at the origin

  Duration Latency() const { return completed_at - issued_at; }
};

// Wire/checkpoint codecs: specs ride kInject frames, results ride host_done folds
// and in-flight pending entries.
void CkptWrite(ByteWriter& w, const FederationQuerySpec& v);
Status CkptRead(ByteReader& r, FederationQuerySpec& v);
void CkptWrite(ByteWriter& w, const FederationQueryResult& v);
Status CkptRead(ByteReader& r, FederationQueryResult& v);

struct FederationStats {
  uint64_t queries = 0;
  uint64_t local = 0;      // target cell == origin cell (no trunk hop)
  uint64_t forwarded = 0;  // routed over an inter-cell trunk
  uint64_t failed = 0;
  uint64_t barriers = 0;
  uint64_t mail_drained = 0;  // inter-cell messages delivered at barriers
  // Trunk messages dropped because their endpoint state died out from under them:
  // an execute arriving at a killed cell, a response for a query already failed
  // fast at its origin, or mail addressed to a crashed worker's cells. Never a
  // hang, never an abort — just counted.
  uint64_t orphans = 0;
};

// Inter-cell trunk totals, summed over every directed link (mode-independent).
struct FederationTrunkTotals {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

void CkptWrite(ByteWriter& w, const FederationTrunkTotals& v);
Status CkptRead(ByteReader& r, FederationTrunkTotals& v);

// The per-cell half of the federation router (see file header). One FedCell per
// cell, living wherever its Deployment lives — the Federation in-process, a
// presto_cell worker in process mode. All methods run on the cell's serial control
// lane or in host/worker control context between steps; nothing here locks.
class FedCell : public EventSink, public FederationQueryClient {
 public:
  // Completion target of a pending query: a serializable driver tag, a host-side
  // closure (in-process QueryAndWait — never checkpointable in flight), or a
  // host-probe token (process-mode QueryAndWait — the result rides back to the
  // parent in the next reply's host_done list).
  enum class Origin : uint8_t { kClosure = 0, kDriver = 1, kHost = 2 };

  struct Pending {
    QuerySpec spec;  // target-cell-local spec
    FederationQueryResult result;
    Origin origin = Origin::kClosure;
    uint64_t driver_slot = 0;  // kDriver: index into this cell's drivers
    bool past = false;         // kDriver: query class for the recorded outcome
    uint64_t host_token = 0;   // kHost: parent-side correlation token
    std::function<void(const FederationQueryResult&)> callback;  // kClosure
  };

  struct HostDone {
    uint64_t token = 0;
    FederationQueryResult result;
  };

  // Per-origin-cell bookkeeping, written only from this cell's serial control lane
  // (or host control context between steps).
  struct Counters {
    uint64_t next_qid = 0;
    uint64_t queries = 0;
    uint64_t local = 0;
    uint64_t forwarded = 0;
    uint64_t failed = 0;
    uint64_t orphans = 0;
  };

  // Registers as a sink on (and federation client of) `cell`'s simulator — call
  // in cell-index order so sink ids match across modes. `config` and `cell` must
  // outlive the FedCell.
  FedCell(int index, const FederationConfig* config, Deployment* cell);

  FedCell(const FedCell&) = delete;
  FedCell& operator=(const FedCell&) = delete;

  int index() const { return index_; }
  Deployment& cell() { return *cell_; }

  // Issues a query entering at this cell. A query whose target cell is marked down
  // fails fast at this gateway (zero added latency, no trunk hop); otherwise it
  // executes locally or rides the trunk as FedMail.
  void Issue(const FederationQuerySpec& spec, Pending q);

  // Attaches an open-loop in-sim driver issuing at this gateway; returns its slot.
  int AttachDriver(const QueryDriverParams& params);
  void StartDriver(int slot, Duration duration);
  QueryDriver& driver(int slot) { return *drivers_[static_cast<size_t>(slot)]; }
  int num_drivers() const { return static_cast<int>(drivers_.size()); }

  // Down-cell bookkeeping. SetCellDown flips the routing flag only; the caller
  // pairs it with FailPendingToward (kill) so every pending query toward the dead
  // cell finalizes immediately (ascending qid order — deterministic), instead of
  // waiting for a response that will never come.
  void SetCellDown(int cell_index, bool down);
  void FailPendingToward(int cell_index);
  // Checkpoint restore: flags only, no pending sweep.
  void RestoreCellDown(const std::vector<uint8_t>& flags);

  // Barrier-time mail delivery: schedules the typed kQuery event on this cell's
  // control lane at max(mail.time, barrier) — the barrier clamp.
  void DeliverMail(FedMail mail, SimTime barrier);
  std::vector<FedMail> TakeOutbox();
  std::vector<HostDone> TakeHostDone();
  const std::vector<FedMail>& outbox() const { return outbox_; }
  // Checkpoint restore: re-queues undrained mail this cell had generated.
  void RestoreMail(FedMail mail) { outbox_.push_back(std::move(mail)); }

  CellLink& link_out(int dst) { return *links_out_[static_cast<size_t>(dst)]; }
  const CellLink& link_out(int dst) const {
    return *links_out_[static_cast<size_t>(dst)];
  }
  const Counters& counters() const { return counters_; }
  FederationTrunkTotals TrunkTotals() const;

  void OnSimEvent(EventKind kind, EventPayload& payload) override;
  void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                       const EventHandle& handle, int lane) override {
    // Mail events carry everything in their payload; nothing to re-capture.
    (void)t, (void)kind, (void)payload, (void)handle, (void)lane;
  }

  // FederationQueryClient: a tagged deployment query completed at this cell (runs
  // on this cell's control lane). Local queries finalize here; cross-cell answers
  // ride the trunk home as FedMail.
  void OnDeploymentQueryDone(uint64_t qid, const UnifiedQueryResult& result) override;

  // Checkpoint codec for the "cell<i>/fed" section: counters, outgoing trunk row,
  // pending table (ascending qid; driver-form only — closure and host-probe
  // entries cannot cross a checkpoint), and attached driver state. The outbox is
  // *not* here: undrained mail belongs to the orchestrator's "fed" section, which
  // is what makes in-process and multi-process checkpoints byte-identical.
  Status SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  int OriginOf(uint64_t qid) const {
    return static_cast<int>(qid % static_cast<uint64_t>(config_->num_cells));
  }
  void ExecuteLocal(uint64_t qid);
  void FinalizeEntry(uint64_t qid, const UnifiedQueryResult& result);
  // Stamps completed_at, counts a failure, and dispatches to the completion
  // target. `q` is already detached from the pending table (or never entered it —
  // the fail-fast path).
  void Complete(Pending q);

  int index_;
  const FederationConfig* config_;
  CellDirectory directory_;  // derived from *config_: pure routing math
  Deployment* cell_;
  Counters counters_;
  // Pending cross-cell queries issued *at this cell* (single-writer: this cell's
  // control lane). by_target_ indexes pending qids by target cell so KillCell
  // fails exactly the affected queries — ordered sets, so the sweep is
  // deterministic ascending-qid.
  std::unordered_map<uint64_t, Pending> pending_;
  std::vector<std::set<uint64_t>> by_target_;
  std::vector<std::unique_ptr<CellLink>> links_out_;  // [dst], nullptr diagonal
  std::vector<FedMail> outbox_;                       // FIFO, drained at barriers
  std::vector<uint8_t> cell_down_;                    // routing view, all cells
  std::vector<HostDone> host_done_;                   // kHost completions
  // Declared after cell_ wiring so drivers (holding pending arrival events) are
  // destroyed before their simulator.
  std::vector<std::unique_ptr<QueryDriver>> drivers_;
};

void CkptWrite(ByteWriter& w, const FedCell::Counters& v);
Status CkptRead(ByteReader& r, FedCell::Counters& v);

// One cell's folded telemetry, marshalled over kSnapshot frames: everything the
// orchestrator's read-side facade (stats / fingerprint / EventsExecuted /
// TrunkTotals / DriverStats) needs without touching the cell.
struct FedCellSnapshot {
  uint64_t sim_fingerprint = 0;
  uint64_t events = 0;
  FedCell::Counters counters;
  FederationTrunkTotals trunks;
  std::vector<QueryDriverStats> drivers;
};

void CkptWrite(ByteWriter& w, const FedCellSnapshot& v);
Status CkptRead(ByteReader& r, FedCellSnapshot& v);

// Control-reply payload: the FedMail the op (or epoch) generated plus any
// host-probe completions. Every control frame (kStart through kMigrateSensor,
// including kStep and kInject) replies with one, so the parent's mail routing
// never waits an extra barrier.
std::vector<uint8_t> EncodeFedControlReply(
    const std::vector<FedMail>& mail, const std::vector<FedCell::HostDone>& host_done);
Status DecodeFedControlReply(span<const uint8_t> payload, std::vector<FedMail>* mail,
                             std::vector<FedCell::HostDone>* host_done);

// Saves/loads one cell — the deployment's own sections plus the "cell<i>/fed"
// router section, all under the "cell<i>/" prefix. Shared by the in-process
// federation and presto_cell workers, which is what makes checkpoint bytes
// mode-independent (the live-migration contract). Load restores the router first
// so the simulator (loaded last) re-announces into rebuilt tables.
Status SaveCellCheckpoint(const Deployment& cell, const FedCell& core, Checkpoint* out);
Status LoadCellCheckpoint(Deployment& cell, FedCell& core, const Checkpoint& ckpt);

class Federation {
 public:
  explicit Federation(const FederationConfig& config);
  ~Federation();

  // Starts every cell. Call once, then RunUntil.
  void Start();

  // Advances every cell through the shared barrier grid to `t`. With
  // `cell_threads > 1` the cells of each epoch run concurrently on the host pool;
  // with `cell_processes > 1` each worker process steps its cells between
  // barriers. Mail drain and everything else at the barrier stays serial.
  void RunUntil(SimTime t);

  // Effective parallelism (config clamped to the cell count).
  int cell_threads() const { return cell_threads_; }
  int cell_processes() const { return cell_processes_; }
  bool socket_mode() const { return socket_mode_; }
  bool process_mode() const { return cell_processes_ > 1 || socket_mode_; }

  SimTime Now() const { return now_; }
  int num_cells() const { return config_.num_cells; }
  const CellDirectory& directory() const { return directory_; }
  const FederationConfig& config() const { return config_; }

  // --- in-process-only accessors (PRESTO_CHECK in process mode) ---
  Deployment& cell(int index);
  const CellLink& link(int src, int dst) const;
  // Attaches a driver and returns it by reference. Prefer the mode-independent
  // AttachDriver/DriverStats pair in code that must also run multi-process.
  QueryDriver& AttachQueryDriver(int origin_cell, const QueryDriverParams& params);
  // Issues with a host-side completion closure (in-process QueryAndWait form).
  void IssueFromCell(int origin_cell, const FederationQuerySpec& spec,
                     std::function<void(const FederationQueryResult&)> callback);

  // --- mode-independent facade ---
  // Attaches an open-loop in-sim query driver whose queries enter at `origin_cell`
  // and target the whole federation namespace (mix.num_sensors <= 0 defaults to
  // directory().total_sensors()); returns a federation-wide driver index. Call
  // before Start()/RunUntil in the same order on save and restore sides.
  int AttachDriver(int origin_cell, const QueryDriverParams& params);
  void StartDriver(int driver_index, Duration duration);
  // Stats snapshot by value (process mode folds them over the wire; a crashed
  // worker's drivers freeze at their last folded values).
  QueryDriverStats DriverStats(int driver_index) const;
  int num_drivers() const { return static_cast<int>(driver_map_.size()); }

  // Issues and runs the federation until the answer arrives (or `max_wait`
  // passes). In process mode the probe rides a kInject frame to the origin worker
  // and the result returns in a reply's host_done fold.
  FederationQueryResult QueryAndWait(int origin_cell, const FederationQuerySpec& spec,
                                     Duration max_wait = Minutes(30));

  // Failure injection at cell granularity: marks the cell down at every gateway
  // (new queries toward it fail fast at their origin; pending ones finalize as
  // failures immediately) and kills (revives) every proxy in the cell.
  void KillCell(int cell_index);
  void ReviveCell(int cell_index);

  // Per-proxy topology mutations addressed by cell — the mode-independent form of
  // cell(i).KillProxy(p) and friends.
  void KillProxyInCell(int cell_index, int proxy_index);
  void ReviveProxyInCell(int cell_index, int proxy_index);
  void MigrateSensorInCell(int cell_index, int global_index, int new_owner);

  // Total simulator events executed across cells (bench throughput metric).
  uint64_t EventsExecuted() const;
  FederationTrunkTotals TrunkTotals() const;

  // Aggregated over the per-cell counter blocks plus the serial barrier counters;
  // call from host control context (between RunUntil calls).
  FederationStats stats() const;

  // Order-independent fold of the per-cell fingerprints (each bound to its cell
  // index) plus the federation barrier-sequence hash. Equal across reruns, worker
  // counts, and process counts — the federation-level replay contract. A crashed
  // worker contributes its cells' last folded fingerprints plus a death marker in
  // the barrier hash.
  uint64_t fingerprint() const;

  // One cell's simulator fingerprint (mode-independent; chaos tests compare
  // *survivor* cells between a worker-kill run and a KillCell reference run,
  // where the global fingerprint legitimately differs by death markers).
  uint64_t CellFingerprint(int cell_index) const;

  // Live migration (socket mode): checkpoints the whole federation, shuts the
  // worker's old channel down, connects/handshakes/bootstraps `endpoint`, and
  // restores worker w from the very bytes fork-mode workers bootstrap from —
  // the same bytes over a different fd. Requires every worker alive and no
  // probe in flight (SaveCheckpoint's contract). On a dead endpoint the worker
  // is marked dead (contained cell failure) and the error returned.
  Status MigrateWorkerEndpoint(int w, const FedEndpoint& endpoint);

  // --- process-mode test/telemetry hooks ---
  int num_workers() const { return static_cast<int>(workers_.size()); }
  bool worker_alive(int w) const { return workers_[static_cast<size_t>(w)].alive; }
  int worker_pid(int w) const {
    return static_cast<int>(workers_[static_cast<size_t>(w)].pid);
  }

  // Composes every cell's checkpoint (sections prefixed "cell<i>/", including the
  // per-cell federation router state "cell<i>/fed") plus one "fed" section holding
  // only orchestrator state: federation clock, barrier hash, cell-down flags, and
  // the undrained FedMail. The container is byte-identical whether the cells run
  // in-process or in workers — a checkpoint taken from either mode restores into
  // either mode (the live-migration primitive; process-mode workers bootstrap from
  // exactly this format). Call only between RunUntil calls; fails if a probe query
  // (QueryAndWait) is in flight or a worker has crashed.
  Status SaveCheckpoint(Checkpoint* out) const;

  // Inverse of SaveCheckpoint, into a freshly constructed federation with the same
  // FederationConfig (cell_threads / cell_processes may differ) and the same
  // AttachDriver calls, after Start(). Router state restores before each cell's
  // simulator, so restored events re-announce into fully rebuilt tables.
  Status LoadCheckpoint(const Checkpoint& ckpt);

 private:
  struct WorkerProc {
    long pid = -1;
    std::unique_ptr<FrameChannel> channel;
    std::vector<int> cells;  // global cell indices, ascending
    bool alive = false;
  };

  Duration CellEpochCap() const;
  Duration DeriveEpoch() const;
  void DrainMail();
  void StepCells(SimTime end);
  void CellWorkerLoop();
  void ClaimCells(SimTime end);

  int WorkerOf(int cell_index) const { return cell_index % cell_processes_; }
  void AssignWorkerCells();
  void SpawnWorkers();
  void ConnectWorkers();
  // Connect + hello handshake for one socket worker (channel setup only).
  Status ConnectWorkerChannel(int w, const FedEndpoint& endpoint);
  Status BootstrapWorker(int w);
  // Re-sends kAttachDriver for every driver whose origin cell worker w hosts
  // (migration replay; slots must match the original attachment order).
  Status ReplayDriverAttachments(int w);
  // Sends one worker the full checkpoint container + down flags (kCkptLoad).
  Status LoadWorkerCheckpoint(int w, const std::vector<uint8_t>& encoded);
  // One strict RPC round trip. A transport failure marks the worker dead (never
  // aborts the parent) and returns the transport status; the reply frame — kAck
  // or kError — is the caller's to interpret.
  Status CallWorker(int w, FedFrameType type, std::vector<uint8_t> payload,
                    FedFrame* reply);
  // CallWorker for control ops: requires kAck, absorbs the control reply into
  // route_ / host_results_, and marks the worker dead on any deviation.
  bool ControlCall(int w, FedFrameType type, std::vector<uint8_t> payload);
  // Parses a control reply {mail, host_done} into route_ / host_results_.
  Status AbsorbControlReply(const std::vector<uint8_t>& payload);
  void BroadcastControl(FedFrameType type, const std::vector<uint8_t>& payload);
  void StepWorkers(SimTime end, bool on_grid);
  // Local bookkeeping only (kill + reap + mark cells down + drop routed mail):
  // never sends frames, so it is safe while sibling kStep replies are still
  // outstanding. The survivor-facing kKillCell broadcast is deferred into
  // dead_cells_pending_kill_ and flushed once no reply is pending.
  void MarkWorkerDead(int w);
  void FlushDeadCellKills();
  void ShutdownWorkers();
  void RefreshSnapshots() const;

  FederationConfig config_;
  CellDirectory directory_;
  int cell_threads_ = 1;
  int cell_processes_ = 1;
  bool socket_mode_ = false;

  // In-process mode: the cells and their routers, paired in cell-index order.
  std::vector<std::unique_ptr<Deployment>> cells_;
  std::vector<std::unique_ptr<FedCell>> cores_;

  // Process mode: worker table, parent-side mail routing (per source-cell FIFO,
  // the orchestrator's copy of the outboxes), and host-probe correlation.
  std::vector<WorkerProc> workers_;
  std::vector<std::vector<FedMail>> route_;  // [source cell] FIFO
  uint64_t next_host_token_ = 0;
  std::unordered_map<uint64_t, FederationQueryResult> host_results_;
  uint64_t parent_orphans_ = 0;  // mail dropped toward crashed workers' cells
  std::vector<int> dead_cells_pending_kill_;
  mutable std::vector<FedCellSnapshot> snaps_;
  mutable bool snaps_fresh_ = false;

  std::vector<uint8_t> cell_down_;  // orchestrator view (both modes)
  // Global driver index -> (origin cell, per-cell slot).
  std::vector<std::pair<int, int>> driver_map_;
  // The raw params of each AttachDriver call, in driver-index order — replayed
  // verbatim when a migrated worker re-bootstraps (slots must come out equal).
  std::vector<QueryDriverParams> driver_params_;

  SimTime now_ = 0;
  uint64_t barrier_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  FederationStats serial_stats_;                   // barriers / mail_drained only

  // Cell-stepping pool (cell_threads_ > 1): the simulator's lane pool one level
  // up. Workers claim cells off next_cell_ and run each through [now_, pool_end_].
  std::vector<std::thread> cell_workers_;
  std::mutex pool_m_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  uint64_t pool_gen_ = 0;
  SimTime pool_end_ = 0;
  bool pool_quit_ = false;
  int pool_done_ = 0;
  std::atomic<int> next_cell_{0};
};

}  // namespace presto

#endif  // SRC_CORE_FEDERATION_H_
