// The presto_cell worker: one process hosting a slice of a federation's cells.
//
// A Federation in process mode (FederationConfig::cell_processes > 1) forks one
// of these per process slot; cell c lives in worker c % cell_processes. The
// worker owns full Deployment + FedCell pairs for its hosted cells and speaks
// the fed_wire frame protocol over a single inherited socketpair fd: kBootstrap
// constructs the cells (same seeds, same sink-registration order as the
// in-process constructor — the cross-mode fingerprint contract), kStep runs one
// federation epoch and returns the mail it generated, control frames mutate
// topology, kSnapshot folds telemetry, and kCkptSave/kCkptLoad reuse the exact
// per-cell checkpoint sections the in-process federation writes (live
// migration: a worker can bootstrap from either mode's checkpoint).
//
// Error discipline mirrors fed_wire's: malformed payloads return kError frames
// (Status code + message), never a PRESTO_CHECK abort — the parent treats an
// aborted worker as a crashed cell, so clean errors must stay clean.

#ifndef SRC_CORE_CELL_WORKER_H_
#define SRC_CORE_CELL_WORKER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/federation.h"
#include "src/net/fed_wire.h"

namespace presto {

class CellWorker {
 public:
  // `channel` must outlive the worker (it is the process's one link to the
  // parent orchestrator).
  explicit CellWorker(FrameChannel* channel) : channel_(channel) {}

  CellWorker(const CellWorker&) = delete;
  CellWorker& operator=(const CellWorker&) = delete;

  // Serves frames until kShutdown or the parent closes the channel; either is a
  // clean exit (returns the process exit code). Every request gets exactly one
  // reply: kAck with the op's payload, or kError carrying a Status.
  int Serve();

  // Whether Serve ended because the parent sent kShutdown (vs. channel EOF).
  // The --listen accept loop re-accepts after an EOF — a reconnecting
  // orchestrator re-bootstraps the worker — but exits on a real shutdown.
  bool shutdown_requested() const { return shutdown_requested_; }

 private:
  // Routes one request; a non-OK return becomes the kError reply.
  Status Dispatch(const FedFrame& request, FedFrame* reply);

  Status HandleBootstrap(span<const uint8_t> payload);
  Status HandleStart();
  Status HandleAttachDriver(span<const uint8_t> payload, FedFrame* reply);
  Status HandleStartDriver(span<const uint8_t> payload);
  Status HandleStep(span<const uint8_t> payload);
  Status HandleInject(span<const uint8_t> payload);
  Status HandleKillCell(span<const uint8_t> payload);
  Status HandleReviveCell(span<const uint8_t> payload);
  Status HandleProxyOp(span<const uint8_t> payload, bool kill);
  Status HandleMigrateSensor(span<const uint8_t> payload);
  Status HandleSnapshot(FedFrame* reply);
  Status HandleCkptSave(FedFrame* reply);
  Status HandleCkptLoad(span<const uint8_t> payload);

  // Hosted slot of a global cell index, or an error if it lives elsewhere.
  Result<int> SlotOf(int cell_index) const;
  // Drains every hosted cell's outbox + host-probe completions into one encoded
  // control reply (hosted-cell ascending order — the parent re-sorts by source).
  std::vector<uint8_t> ControlReply();

  FrameChannel* channel_;
  bool bootstrapped_ = false;
  bool shutdown_requested_ = false;
  FederationConfig config_{};  // outlives the FedCells, which hold a pointer
  int worker_index_ = 0;
  int num_workers_ = 1;
  std::vector<int> hosted_;  // global cell indices, ascending
  std::vector<std::unique_ptr<Deployment>> cells_;  // paired with cores_
  std::vector<std::unique_ptr<FedCell>> cores_;
};

// Path to the presto_cell binary: $PRESTO_CELL_BIN wins, else the file next to
// this executable, else whatever PATH resolves. Shared by the fork bootstrap
// (federation.cc) and the test/bench helpers that spawn listening workers.
std::string ResolveCellWorkerBinary();

// The `presto_cell --listen <port>` accept loop: binds 0.0.0.0:<port> (0 picks
// an ephemeral port), prints `PRESTO_CELL_LISTENING <bound_port>` on stdout,
// then serves orchestrator connections one at a time. Each connection gets a
// handshake-deadlined FedHelloServer, then an undeadlined CellWorker::Serve()
// (a dead orchestrator arrives as EOF/RST, so the worker re-accepts — that is
// exactly how a resumed/migrated orchestrator re-adopts the worker). Returns
// the process exit code; exits the loop on kShutdown or, with `once`, after
// the first connection ends either way.
int RunCellWorkerListenLoop(uint16_t port, Duration handshake_deadline, bool once);

// Fork-exec helper for tests and benches: spawns `presto_cell --listen 0` and
// parses the announcement line for the kernel-chosen port.
struct SpawnedCellWorker {
  long pid = -1;
  uint16_t port = 0;
};
Result<SpawnedCellWorker> SpawnCellWorkerListening();
// SIGKILL + reap; safe to call twice (pid resets to -1).
void StopCellWorker(SpawnedCellWorker& worker);

}  // namespace presto

#endif  // SRC_CORE_CELL_WORKER_H_
