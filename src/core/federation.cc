#include "src/core/federation.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/assert.h"
#include "src/util/hash.h"

namespace presto {
namespace {

// Federation kQuery payload.a op codes (payload.b carries the query id).
constexpr uint64_t kFedOpExecute = 1;   // request landed at the target cell
constexpr uint64_t kFedOpComplete = 2;  // response landed back at the origin

}  // namespace

CellDirectory::CellDirectory(int num_cells, int sensors_per_cell)
    : num_cells_(num_cells), sensors_per_cell_(sensors_per_cell) {
  PRESTO_CHECK(num_cells_ >= 1);
  PRESTO_CHECK(sensors_per_cell_ >= 1);
}

int CellDirectory::CellOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index / sensors_per_cell_;
}

int CellDirectory::LocalOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index % sensors_per_cell_;
}

int CellDirectory::FedIndexOf(int cell, int local) const {
  PRESTO_CHECK(cell >= 0 && cell < num_cells_);
  PRESTO_CHECK(local >= 0 && local < sensors_per_cell_);
  return cell * sensors_per_cell_ + local;
}

Federation::Federation(const FederationConfig& config)
    : config_(config),
      directory_(config.num_cells,
                 config.cell.num_proxies * config.cell.sensors_per_proxy) {
  PRESTO_CHECK(config_.num_cells >= 1);
  PRESTO_CHECK_MSG(config_.epoch > 0, "federation epoch must be positive");
  for (int c = 0; c < config_.num_cells; ++c) {
    DeploymentConfig cell_config = config_.cell;
    // Distinct per-cell seeds off one federation seed: cells are statistically
    // independent but the whole federation replays from `seed`.
    cell_config.seed =
        config_.seed ^ (0xfedc0de + 0x9e3779b9ull * static_cast<uint64_t>(c));
    cells_.push_back(std::make_unique<Deployment>(cell_config));
  }
  for (auto& cell : cells_) {
    // Tagged cross-cell queries complete through OnDeploymentQueryDone, and the
    // federation is a sink on every cell simulator (mail-delivery events), so both
    // survive checkpoints. Registration order is ctor order — the sink-id contract
    // a restored checkpoint relies on.
    cell->SetFederationClient(this);
    cell->sim().RegisterSink(this);
  }
  links_.reserve(static_cast<size_t>(config_.num_cells) *
                 static_cast<size_t>(config_.num_cells));
  for (int s = 0; s < config_.num_cells; ++s) {
    for (int d = 0; d < config_.num_cells; ++d) {
      links_.push_back(s == d ? nullptr : std::make_unique<CellLink>(config_.link));
    }
  }
  if (config_.auto_epoch) {
    config_.epoch = DeriveEpoch();
  }
  for (const auto& cell : cells_) {
    const Duration cap = cell->sim().epoch_cap();
    if (cap == Simulator::kNoEpochGrid) {
      // Legacy single-queue cells have no barrier grid, hence no constraint: their
      // events execute at exact times regardless of when mail is injected. The
      // sentinel is deliberate — epoch_cap() == 0 means "no grid", never "a grid of
      // length zero" (ConfigureLanes rejects non-positive epochs).
      continue;
    }
    // A trunk cannot deliver finer than its endpoints step: clamping inter-cell
    // mail to federation barriers below the cells' own barrier grid would schedule
    // into epochs the cells never open. Validated against the configured cap, not
    // the current effective epoch — lookahead may shrink the latter mid-run, but
    // it can also grow back to the cap.
    PRESTO_CHECK_MSG(config_.epoch >= cap,
                     "federation epoch must cover the cell lane epoch cap");
  }
  outbox_.resize(static_cast<size_t>(config_.num_cells));
  counters_.resize(static_cast<size_t>(config_.num_cells));
  cell_threads_ = std::max(1, std::min(config_.cell_threads, config_.num_cells));
  for (int w = 1; w < cell_threads_; ++w) {
    cell_workers_.emplace_back([this] { CellWorkerLoop(); });
  }
}

Federation::~Federation() {
  if (!cell_workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      pool_quit_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& worker : cell_workers_) {
      worker.join();
    }
  }
}

void Federation::Start() {
  for (auto& cell : cells_) {
    cell->Start();
  }
}

Duration Federation::DeriveEpoch() const {
  // Topology-derived conservative bound: the fastest directed trunk is the soonest
  // any cell can affect another, so stepping no coarser than it keeps barrier
  // clamping from distorting cross-cell delivery times. All trunks currently share
  // config_.link, but deriving from the instantiated links keeps this correct if
  // per-pair trunks ever diverge.
  Duration min_trunk = -1;
  for (const auto& link : links_) {
    if (link == nullptr) {
      continue;
    }
    const Duration latency = link->params().latency;
    if (min_trunk < 0 || latency < min_trunk) {
      min_trunk = latency;
    }
  }
  Duration floor = 0;
  for (const auto& cell : cells_) {
    floor = std::max(floor, cell->sim().epoch_cap());  // kNoEpochGrid = 0: no floor
  }
  Duration derived = config_.epoch;
  if (min_trunk >= 0) {
    derived = std::min(derived, min_trunk);
  }
  derived = std::max(derived, floor);
  PRESTO_CHECK_MSG(derived > 0, "derived federation epoch must be positive");
  return derived;
}

CellLink& Federation::LinkBetween(int src, int dst) {
  PRESTO_CHECK(src != dst);
  return *links_[static_cast<size_t>(src) * static_cast<size_t>(config_.num_cells) +
                 static_cast<size_t>(dst)];
}

const CellLink& Federation::link(int src, int dst) const {
  PRESTO_CHECK(src >= 0 && src < config_.num_cells);
  PRESTO_CHECK(dst >= 0 && dst < config_.num_cells && src != dst);
  return *links_[static_cast<size_t>(src) * static_cast<size_t>(config_.num_cells) +
                 static_cast<size_t>(dst)];
}

void Federation::RunUntil(SimTime t) {
  PRESTO_CHECK_MSG(t >= now_, "cannot run the federation backwards");
  while (now_ < t) {
    const SimTime end = std::min((now_ / config_.epoch + 1) * config_.epoch, t);
    // Mail drains only on the absolute epoch grid. A RunUntil that stopped
    // off-grid resumes with a partial iteration whose start is *not* a barrier —
    // draining there would make delivery times (and the barrier hash) depend on
    // how the host happened to slice its RunUntil calls.
    if (now_ % config_.epoch == 0) {
      DrainMail();
    }
    // Cells step through the epoch — concurrently when cell_threads_ > 1. Cells
    // only interact through outboxes drained at the (serial) barrier above, so
    // which host thread steps a cell is unobservable: fingerprints and driver
    // histograms are identical for sequential and parallel stepping.
    if (cell_threads_ <= 1) {
      for (auto& cell : cells_) {
        cell->RunUntil(end);
      }
    } else {
      StepCells(end);
    }
    now_ = end;
  }
}

void Federation::StepCells(SimTime end) {
  {
    std::lock_guard<std::mutex> lock(pool_m_);
    pool_end_ = end;
    pool_done_ = 0;
    next_cell_.store(0, std::memory_order_relaxed);
    ++pool_gen_;
  }
  pool_cv_.notify_all();
  ClaimCells(end);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(pool_m_);
  done_cv_.wait(lock,
                [&] { return pool_done_ == static_cast<int>(cell_workers_.size()); });
}

void Federation::CellWorkerLoop() {
  uint64_t seen_gen = 0;
  while (true) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(pool_m_);
      pool_cv_.wait(lock, [&] { return pool_quit_ || pool_gen_ != seen_gen; });
      if (pool_quit_) {
        return;
      }
      seen_gen = pool_gen_;
      end = pool_end_;
    }
    ClaimCells(end);
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      ++pool_done_;
    }
    done_cv_.notify_one();
  }
}

void Federation::ClaimCells(SimTime end) {
  const int total = config_.num_cells;
  int cell;
  while ((cell = next_cell_.fetch_add(1, std::memory_order_relaxed)) < total) {
    cells_[static_cast<size_t>(cell)]->RunUntil(end);
  }
}

void Federation::DrainMail() {
  uint64_t drained = 0;
  for (auto& box : outbox_) {
    for (Mail& mail : box) {
      EventPayload payload;
      payload.a = mail.op;
      payload.b = mail.qid;
      // Delivery clamps to this barrier: inter-cell granularity is the federation
      // epoch (trunk latency below it is only faithful modulo the clamp).
      cells_[static_cast<size_t>(mail.target_cell)]->sim().ScheduleEventAt(
          std::max(mail.time, now_), EventKind::kQuery, this, std::move(payload),
          Simulator::kLaneControl);
      ++drained;
    }
    box.clear();
  }
  ++serial_stats_.barriers;
  if (drained > 0) {
    serial_stats_.mail_drained += drained;
    // Which barrier took delivery of how much inter-cell traffic is part of the
    // federation replay contract (mirrors the simulator's barrier-sequence hash).
    FnvMix(barrier_hash_, static_cast<uint64_t>(now_));
    FnvMix(barrier_hash_, drained);
  }
}

void Federation::IssueFromCell(
    int origin_cell, const FederationQuerySpec& spec,
    std::function<void(const FederationQueryResult&)> callback) {
  PendingFedQuery q;
  q.origin = PendingFedQuery::Origin::kClosure;
  q.callback = std::move(callback);
  IssueInternal(origin_cell, spec, std::move(q));
}

void Federation::IssueInternal(int origin_cell, const FederationQuerySpec& spec,
                               PendingFedQuery q) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  const int target = directory_.CellOf(spec.fed_sensor);
  const int local = directory_.LocalOf(spec.fed_sensor);
  // Runs on the origin cell's control lane (driver arrivals) or host control
  // context: the origin's counter block is single-writer either way, so qid
  // allocation (qid ≡ origin_cell mod num_cells) needs no cross-cell coordination
  // — and is deterministic, unlike a shared atomic counter under cell-parallel
  // stepping.
  CellCounters& ctr = counters_[static_cast<size_t>(origin_cell)];
  ++ctr.queries;
  const uint64_t qid = ++ctr.next_qid * static_cast<uint64_t>(config_.num_cells) +
                       static_cast<uint64_t>(origin_cell);
  q.spec.type = spec.type;
  q.spec.sensor_id = cells_[static_cast<size_t>(target)]->GlobalSensorId(local);
  q.spec.range = spec.range;
  q.spec.tolerance = spec.tolerance;
  q.spec.latency_bound = spec.latency_bound;
  q.result.origin_cell = origin_cell;
  q.result.target_cell = target;
  q.result.cross_cell = target != origin_cell;
  q.result.issued_at = cells_[static_cast<size_t>(origin_cell)]->sim().Now();
  const SimTime issued_at = q.result.issued_at;
  PendingShard& shard = PendingShardOf(qid);
  {
    std::lock_guard<std::mutex> lock(shard.m);
    shard.map.emplace(qid, std::move(q));
  }

  if (target == origin_cell) {
    ++ctr.local;
    ExecuteAtTarget(qid);  // no trunk hop: straight into the local store
    return;
  }
  ++ctr.forwarded;
  // The origin→target trunk is driven only by this (origin) control lane, so its
  // serialization clock stays single-writer and monotone under parallel stepping.
  const SimTime at =
      LinkBetween(origin_cell, target).Deliver(issued_at, config_.query_bytes);
  outbox_[static_cast<size_t>(origin_cell)].push_back(
      Mail{target, at, kFedOpExecute, qid});
}

void Federation::ExecuteAtTarget(uint64_t qid) {
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery* q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(qid);
    PRESTO_CHECK(it != shard.map.end());
    q = &it->second;
  }
  // Tagged (not closure) form: the deployment carries the fed qid through its own
  // checkpointable pending table and calls OnDeploymentQueryDone when the store
  // answers — the whole cross-cell pipeline serializes at barriers.
  cells_[static_cast<size_t>(q->result.target_cell)]->QueryAsyncFederated(q->spec,
                                                                          qid);
}

void Federation::OnDeploymentQueryDone(uint64_t qid, const UnifiedQueryResult& result) {
  OnCellAnswered(qid, result);
}

void Federation::OnCellAnswered(uint64_t qid, const UnifiedQueryResult& r) {
  // Runs on the target cell's control lane (QueryAsync marshals completions there).
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery* q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(qid);
    PRESTO_CHECK(it != shard.map.end());
    q = &it->second;
  }
  q->result.cell = r;
  if (!q->result.cross_cell) {
    Finalize(qid);
    return;
  }
  const int target = q->result.target_cell;
  const int origin = q->result.origin_cell;
  const size_t bytes =
      config_.response_base_bytes +
      r.answer.samples.size() * static_cast<size_t>(config_.response_sample_bytes);
  // The target→origin trunk is driven only by this (target) control lane.
  const SimTime at =
      LinkBetween(target, origin)
          .Deliver(cells_[static_cast<size_t>(target)]->sim().Now(), bytes);
  outbox_[static_cast<size_t>(target)].push_back(
      Mail{origin, at, kFedOpComplete, qid});
}

void Federation::Finalize(uint64_t qid) {
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(qid);
    PRESTO_CHECK(it != shard.map.end());
    q = std::move(it->second);
    shard.map.erase(it);
  }
  q.result.completed_at =
      cells_[static_cast<size_t>(q.result.origin_cell)]->sim().Now();
  if (!q.result.cell.answer.status.ok()) {
    // Failures are charged to the origin's counter block: Finalize always runs on
    // the origin cell's control lane (or host context for probe queries).
    ++counters_[static_cast<size_t>(q.result.origin_cell)].failed;
  }
  // Completion dispatch runs outside the shard lock: recording may issue follow-up
  // queries that take the same lock.
  if (q.origin == PendingFedQuery::Origin::kDriver) {
    // The gateway's clock, not the serving cell's: federation latency spans both
    // trunk hops. source_cell is the cell whose sensors paid any pull energy.
    QueryOutcome outcome = OutcomeFromResult(q.result.cell);
    outcome.issued_at = q.result.issued_at;
    outcome.completed_at = q.result.completed_at;
    outcome.cross_cell = q.result.cross_cell;
    outcome.past = q.past;
    outcome.source_cell = q.result.target_cell;
    PRESTO_CHECK(q.driver_index < drivers_.size());
    drivers_[q.driver_index]->RecordOutcome(outcome);
  } else if (q.callback) {
    q.callback(q.result);
  }
}

void Federation::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  switch (payload.a) {
    case kFedOpExecute:
      ExecuteAtTarget(payload.b);
      break;
    case kFedOpComplete:
      Finalize(payload.b);
      break;
    default:
      PRESTO_CHECK_MSG(false, "unknown federation op");
  }
}

FederationQueryResult Federation::QueryAndWait(int origin_cell,
                                               const FederationQuerySpec& spec,
                                               Duration max_wait) {
  // Shared (not stack-referencing) wait state: on a timeout the pending entry —
  // and its callback — outlive this frame, and a late completion must write into
  // state that is still alive, not a popped stack.
  struct WaitState {
    bool done = false;
    FederationQueryResult out;
  };
  auto state = std::make_shared<WaitState>();
  IssueFromCell(origin_cell, spec, [state](const FederationQueryResult& r) {
    state->out = r;
    state->done = true;
  });
  const SimTime deadline = now_ + max_wait;
  while (!state->done && now_ < deadline) {
    RunUntil(std::min(now_ + config_.epoch, deadline));
  }
  if (!state->done) {
    FederationQueryResult out;
    out.cell.answer.status =
        DeadlineExceededError("federated query did not complete in max_wait");
    out.origin_cell = origin_cell;
    out.issued_at = now_;
    out.completed_at = now_;
    return out;
  }
  return state->out;
}

QueryDriver& Federation::AttachQueryDriver(int origin_cell,
                                           const QueryDriverParams& params) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  QueryDriverParams p = params;
  if (p.mix.num_sensors <= 0) {
    p.mix.num_sensors = directory_.total_sensors();
  }
  PRESTO_CHECK_MSG(p.mix.num_sensors <= directory_.total_sensors(),
                   "driver namespace exceeds the federation population");
  Deployment& origin = *cells_[static_cast<size_t>(origin_cell)];
  // Tagged (token) issue path: the pending entry carries this driver's index
  // instead of capturing the completion closure, so in-flight driver queries
  // survive a checkpoint. Finalize records the outcome directly.
  const uint64_t driver_index = drivers_.size();
  auto issue = [this, origin_cell, driver_index](const QueryRequest& request,
                                                 QueryDriver::CompletionFn done) {
    (void)done;  // completion flows through the driver-index tag, not the closure
    FederationQuerySpec fspec;
    fspec.fed_sensor = request.sensor;
    fspec.tolerance = request.tolerance;
    fspec.latency_bound = request.latency_bound;
    if (request.past) {
      fspec.type = QueryType::kPast;
      fspec.range = PastRangeOf(
          request, cells_[static_cast<size_t>(origin_cell)]->sim().Now());
    }
    PendingFedQuery q;
    q.origin = PendingFedQuery::Origin::kDriver;
    q.driver_index = driver_index;
    q.past = request.past;
    IssueInternal(origin_cell, fspec, std::move(q));
  };
  drivers_.push_back(
      std::make_unique<QueryDriver>(&origin.sim(), p, std::move(issue)));
  return *drivers_.back();
}

void Federation::KillCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.KillProxy(p);
  }
}

void Federation::ReviveCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.ReviveProxy(p);
  }
}

FederationStats Federation::stats() const {
  FederationStats total = serial_stats_;
  for (const CellCounters& ctr : counters_) {
    total.queries += ctr.queries;
    total.local += ctr.local;
    total.forwarded += ctr.forwarded;
    total.failed += ctr.failed;
  }
  return total;
}

uint64_t Federation::fingerprint() const {
  uint64_t total = barrier_hash_;
  uint64_t index = 0;
  for (const auto& cell : cells_) {
    // Bind each stream to its cell identity before the commutative sum, so swapping
    // two cells' entire histories (a directory misrouting bug) still changes the
    // fold — the same shape as the simulator's per-lane fingerprint.
    uint64_t term = cell->sim().fingerprint();
    FnvMix(term, index++);
    total += term * 0x9e3779b97f4a7c15ull;
  }
  return total;
}

}  // namespace presto

namespace presto {

void CkptWrite(ByteWriter& w, const FederationQueryResult& v) {
  CkptWrite(w, v.cell);
  CkptWrite(w, v.origin_cell);
  CkptWrite(w, v.target_cell);
  CkptWrite(w, v.cross_cell);
  CkptWrite(w, v.issued_at);
  CkptWrite(w, v.completed_at);
}

Status CkptRead(ByteReader& r, FederationQueryResult& v) {
  CKPT_READ(r, v.cell);
  CKPT_READ(r, v.origin_cell);
  CKPT_READ(r, v.target_cell);
  CKPT_READ(r, v.cross_cell);
  CKPT_READ(r, v.issued_at);
  CKPT_READ(r, v.completed_at);
  return OkStatus();
}

Status Federation::SaveCheckpoint(Checkpoint* out) const {
  PRESTO_CHECK(out != nullptr);
  Checkpoint staged;
  for (int c = 0; c < config_.num_cells; ++c) {
    PRESTO_RETURN_IF_ERROR(cells_[static_cast<size_t>(c)]->SaveCheckpoint(
        &staged, "cell" + std::to_string(c) + "/"));
  }
  ByteWriter w;
  CkptWrite(w, now_);
  CkptWrite(w, barrier_hash_);
  CkptWrite(w, serial_stats_.barriers);
  CkptWrite(w, serial_stats_.mail_drained);
  for (const CellCounters& ctr : counters_) {
    CkptWrite(w, ctr.next_qid);
    CkptWrite(w, ctr.queries);
    CkptWrite(w, ctr.local);
    CkptWrite(w, ctr.forwarded);
    CkptWrite(w, ctr.failed);
  }
  for (const auto& box : outbox_) {
    w.WriteVarU64(box.size());
    for (const Mail& mail : box) {
      CkptWrite(w, mail.target_cell);
      CkptWrite(w, mail.time);
      CkptWrite(w, mail.op);
      CkptWrite(w, mail.qid);
    }
  }
  for (const auto& link : links_) {
    if (link != nullptr) {
      link->SaveState(w);
    }
  }
  // qid-sorted walk of the sharded pending table: the serialized bytes must not
  // depend on hash layout.
  std::vector<std::pair<uint64_t, const PendingFedQuery*>> pending;
  for (const PendingShard& shard : pending_) {
    std::lock_guard<std::mutex> lock(shard.m);
    for (const auto& [qid, q] : shard.map) {
      pending.emplace_back(qid, &q);
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteVarU64(pending.size());
  for (const auto& [qid, q] : pending) {
    if (q->origin == PendingFedQuery::Origin::kClosure) {
      return FailedPreconditionError(
          "federation checkpoint: closure-form query in flight (QueryAndWait probe)");
    }
    CkptWrite(w, qid);
    CkptWrite(w, q->spec);
    CkptWrite(w, q->result);
    CkptWrite(w, q->origin);
    CkptWrite(w, q->driver_index);
    CkptWrite(w, q->past);
  }
  w.WriteVarU64(drivers_.size());
  for (const auto& driver : drivers_) {
    PRESTO_RETURN_IF_ERROR(driver->SaveState(w));
  }
  staged.Add("fed", w.TakeBuffer());
  // Nothing partial on failure: sections land in the output only once every cell
  // and the federation itself serialized cleanly.
  for (const Checkpoint::Section& section : staged.sections()) {
    out->Add(section.name, section.payload);
  }
  return OkStatus();
}

Status Federation::LoadCheckpoint(const Checkpoint& ckpt) {
  const std::vector<uint8_t>* payload = ckpt.Find("fed");
  if (payload == nullptr) {
    return NotFoundError("checkpoint missing section fed");
  }
  ByteReader r{span<const uint8_t>(*payload)};
  CKPT_READ(r, now_);
  CKPT_READ(r, barrier_hash_);
  CKPT_READ(r, serial_stats_.barriers);
  CKPT_READ(r, serial_stats_.mail_drained);
  for (CellCounters& ctr : counters_) {
    CKPT_READ(r, ctr.next_qid);
    CKPT_READ(r, ctr.queries);
    CKPT_READ(r, ctr.local);
    CKPT_READ(r, ctr.forwarded);
    CKPT_READ(r, ctr.failed);
  }
  for (auto& box : outbox_) {
    auto count = r.ReadVarU64();
    if (!count.ok()) {
      return count.status();
    }
    if (*count > r.remaining()) {
      return DataLossError("federation restore: outbox count exceeds section bytes");
    }
    box.clear();
    for (uint64_t i = 0; i < *count; ++i) {
      Mail mail{};
      CKPT_READ(r, mail.target_cell);
      CKPT_READ(r, mail.time);
      CKPT_READ(r, mail.op);
      CKPT_READ(r, mail.qid);
      if (mail.target_cell < 0 || mail.target_cell >= config_.num_cells ||
          (mail.op != kFedOpExecute && mail.op != kFedOpComplete)) {
        return DataLossError("federation restore: bad mail entry");
      }
      box.push_back(mail);
    }
  }
  for (auto& link : links_) {
    if (link != nullptr) {
      PRESTO_RETURN_IF_ERROR(link->LoadState(r));
    }
  }
  for (PendingShard& shard : pending_) {
    std::lock_guard<std::mutex> lock(shard.m);
    shard.map.clear();
  }
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("federation restore: pending count exceeds section bytes");
  }
  for (uint64_t i = 0; i < *count; ++i) {
    uint64_t qid = 0;
    CKPT_READ(r, qid);
    PendingFedQuery q;
    CKPT_READ(r, q.spec);
    CKPT_READ(r, q.result);
    CKPT_READ(r, q.origin);
    CKPT_READ(r, q.driver_index);
    CKPT_READ(r, q.past);
    if (q.origin != PendingFedQuery::Origin::kDriver) {
      return DataLossError("federation restore: bad pending query origin");
    }
    if (q.result.origin_cell < 0 || q.result.origin_cell >= config_.num_cells ||
        q.result.target_cell < 0 || q.result.target_cell >= config_.num_cells) {
      return DataLossError("federation restore: pending query cell out of range");
    }
    if (q.driver_index >= drivers_.size()) {
      return FailedPreconditionError(
          "federation restore: attach the same drivers before restoring");
    }
    PendingShard& shard = PendingShardOf(qid);
    std::lock_guard<std::mutex> lock(shard.m);
    shard.map.emplace(qid, std::move(q));
  }
  auto driver_count = r.ReadVarU64();
  if (!driver_count.ok()) {
    return driver_count.status();
  }
  if (*driver_count != drivers_.size()) {
    return FailedPreconditionError(
        "federation restore: attach the same drivers before restoring");
  }
  for (const auto& driver : drivers_) {
    PRESTO_RETURN_IF_ERROR(driver->LoadState(r));
  }
  if (r.remaining() != 0) {
    return DataLossError("checkpoint section fed has trailing bytes");
  }
  // Cells load after "fed" so each cell simulator (loaded last within its own
  // cell) re-announces queued events into fully restored drivers and tables.
  for (int c = 0; c < config_.num_cells; ++c) {
    PRESTO_RETURN_IF_ERROR(cells_[static_cast<size_t>(c)]->LoadCheckpoint(
        ckpt, "cell" + std::to_string(c) + "/"));
  }
  return OkStatus();
}

}  // namespace presto
