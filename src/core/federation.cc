#include "src/core/federation.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/assert.h"
#include "src/util/hash.h"

namespace presto {
namespace {

// Federation kQuery payload.a op codes (payload.b carries the query id).
constexpr uint64_t kFedOpExecute = 1;   // request landed at the target cell
constexpr uint64_t kFedOpComplete = 2;  // response landed back at the origin

}  // namespace

CellDirectory::CellDirectory(int num_cells, int sensors_per_cell)
    : num_cells_(num_cells), sensors_per_cell_(sensors_per_cell) {
  PRESTO_CHECK(num_cells_ >= 1);
  PRESTO_CHECK(sensors_per_cell_ >= 1);
}

int CellDirectory::CellOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index / sensors_per_cell_;
}

int CellDirectory::LocalOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index % sensors_per_cell_;
}

int CellDirectory::FedIndexOf(int cell, int local) const {
  PRESTO_CHECK(cell >= 0 && cell < num_cells_);
  PRESTO_CHECK(local >= 0 && local < sensors_per_cell_);
  return cell * sensors_per_cell_ + local;
}

Federation::Federation(const FederationConfig& config)
    : config_(config),
      directory_(config.num_cells,
                 config.cell.num_proxies * config.cell.sensors_per_proxy) {
  PRESTO_CHECK(config_.num_cells >= 1);
  PRESTO_CHECK_MSG(config_.epoch > 0, "federation epoch must be positive");
  for (int c = 0; c < config_.num_cells; ++c) {
    DeploymentConfig cell_config = config_.cell;
    // Distinct per-cell seeds off one federation seed: cells are statistically
    // independent but the whole federation replays from `seed`.
    cell_config.seed =
        config_.seed ^ (0xfedc0de + 0x9e3779b9ull * static_cast<uint64_t>(c));
    cells_.push_back(std::make_unique<Deployment>(cell_config));
    // A trunk cannot deliver finer than its endpoints step: clamping inter-cell
    // mail to federation barriers below the cells' own barrier grid would schedule
    // into epochs the cells never open.
    PRESTO_CHECK_MSG(config_.epoch >= cells_.back()->sim().epoch(),
                     "federation epoch must cover the cell lane epoch");
  }
  links_.reserve(static_cast<size_t>(config_.num_cells) *
                 static_cast<size_t>(config_.num_cells));
  for (int s = 0; s < config_.num_cells; ++s) {
    for (int d = 0; d < config_.num_cells; ++d) {
      links_.push_back(s == d ? nullptr : std::make_unique<CellLink>(config_.link));
    }
  }
  outbox_.resize(static_cast<size_t>(config_.num_cells));
}

void Federation::Start() {
  for (auto& cell : cells_) {
    cell->Start();
  }
}

CellLink& Federation::LinkBetween(int src, int dst) {
  PRESTO_CHECK(src != dst);
  return *links_[static_cast<size_t>(src) * static_cast<size_t>(config_.num_cells) +
                 static_cast<size_t>(dst)];
}

const CellLink& Federation::link(int src, int dst) const {
  PRESTO_CHECK(src >= 0 && src < config_.num_cells);
  PRESTO_CHECK(dst >= 0 && dst < config_.num_cells && src != dst);
  return *links_[static_cast<size_t>(src) * static_cast<size_t>(config_.num_cells) +
                 static_cast<size_t>(dst)];
}

void Federation::RunUntil(SimTime t) {
  PRESTO_CHECK_MSG(t >= now_, "cannot run the federation backwards");
  while (now_ < t) {
    const SimTime end = std::min((now_ / config_.epoch + 1) * config_.epoch, t);
    // Mail drains only on the absolute epoch grid. A RunUntil that stopped
    // off-grid resumes with a partial iteration whose start is *not* a barrier —
    // draining there would make delivery times (and the barrier hash) depend on
    // how the host happened to slice its RunUntil calls.
    if (now_ % config_.epoch == 0) {
      DrainMail();
    }
    // Cells step one at a time (each internally parallel across its shard lanes):
    // federation state is only touched from cell control lanes, so this order makes
    // the whole layer single-threaded — and the fixed order makes it deterministic.
    for (auto& cell : cells_) {
      cell->RunUntil(end);
    }
    now_ = end;
  }
}

void Federation::DrainMail() {
  uint64_t drained = 0;
  for (auto& box : outbox_) {
    for (Mail& mail : box) {
      EventPayload payload;
      payload.a = mail.op;
      payload.b = mail.qid;
      // Delivery clamps to this barrier: inter-cell granularity is the federation
      // epoch (trunk latency below it is only faithful modulo the clamp).
      cells_[static_cast<size_t>(mail.target_cell)]->sim().ScheduleEventAt(
          std::max(mail.time, now_), EventKind::kQuery, this, std::move(payload),
          Simulator::kLaneControl);
      ++drained;
    }
    box.clear();
  }
  ++stats_.barriers;
  if (drained > 0) {
    stats_.mail_drained += drained;
    // Which barrier took delivery of how much inter-cell traffic is part of the
    // federation replay contract (mirrors the simulator's barrier-sequence hash).
    FnvMix(barrier_hash_, static_cast<uint64_t>(now_));
    FnvMix(barrier_hash_, drained);
  }
}

void Federation::IssueFromCell(
    int origin_cell, const FederationQuerySpec& spec,
    std::function<void(const FederationQueryResult&)> callback) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  const int target = directory_.CellOf(spec.fed_sensor);
  const int local = directory_.LocalOf(spec.fed_sensor);
  ++stats_.queries;

  const uint64_t qid = next_query_id_++;
  PendingFedQuery& q = pending_[qid];
  q.spec.type = spec.type;
  q.spec.sensor_id = cells_[static_cast<size_t>(target)]->GlobalSensorId(local);
  q.spec.range = spec.range;
  q.spec.tolerance = spec.tolerance;
  q.spec.latency_bound = spec.latency_bound;
  q.result.origin_cell = origin_cell;
  q.result.target_cell = target;
  q.result.cross_cell = target != origin_cell;
  q.result.issued_at = cells_[static_cast<size_t>(origin_cell)]->sim().Now();
  q.callback = std::move(callback);

  if (target == origin_cell) {
    ++stats_.local;
    ExecuteAtTarget(qid);  // no trunk hop: straight into the local store
    return;
  }
  ++stats_.forwarded;
  const SimTime at = LinkBetween(origin_cell, target)
                         .Deliver(q.result.issued_at, config_.query_bytes);
  outbox_[static_cast<size_t>(origin_cell)].push_back(
      Mail{target, at, kFedOpExecute, qid});
}

void Federation::ExecuteAtTarget(uint64_t qid) {
  auto it = pending_.find(qid);
  PRESTO_CHECK(it != pending_.end());
  PendingFedQuery& q = it->second;  // map nodes are stable across inserts
  cells_[static_cast<size_t>(q.result.target_cell)]->QueryAsync(
      q.spec,
      [this, qid](const UnifiedQueryResult& r) { OnCellAnswered(qid, r); });
}

void Federation::OnCellAnswered(uint64_t qid, const UnifiedQueryResult& r) {
  // Runs on the target cell's control lane (QueryAsync marshals completions there).
  auto it = pending_.find(qid);
  PRESTO_CHECK(it != pending_.end());
  PendingFedQuery& q = it->second;
  q.result.cell = r;
  if (!q.result.cross_cell) {
    Finalize(qid);
    return;
  }
  const int target = q.result.target_cell;
  const int origin = q.result.origin_cell;
  const size_t bytes =
      config_.response_base_bytes +
      r.answer.samples.size() * static_cast<size_t>(config_.response_sample_bytes);
  const SimTime at =
      LinkBetween(target, origin)
          .Deliver(cells_[static_cast<size_t>(target)]->sim().Now(), bytes);
  outbox_[static_cast<size_t>(target)].push_back(
      Mail{origin, at, kFedOpComplete, qid});
}

void Federation::Finalize(uint64_t qid) {
  auto it = pending_.find(qid);
  PRESTO_CHECK(it != pending_.end());
  PendingFedQuery q = std::move(it->second);
  pending_.erase(it);
  q.result.completed_at =
      cells_[static_cast<size_t>(q.result.origin_cell)]->sim().Now();
  if (!q.result.cell.answer.status.ok()) {
    ++stats_.failed;
  }
  if (q.callback) {
    q.callback(q.result);
  }
}

void Federation::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  switch (payload.a) {
    case kFedOpExecute:
      ExecuteAtTarget(payload.b);
      break;
    case kFedOpComplete:
      Finalize(payload.b);
      break;
    default:
      PRESTO_CHECK_MSG(false, "unknown federation op");
  }
}

FederationQueryResult Federation::QueryAndWait(int origin_cell,
                                               const FederationQuerySpec& spec,
                                               Duration max_wait) {
  // Shared (not stack-referencing) wait state: on a timeout the pending entry —
  // and its callback — outlive this frame, and a late completion must write into
  // state that is still alive, not a popped stack.
  struct WaitState {
    bool done = false;
    FederationQueryResult out;
  };
  auto state = std::make_shared<WaitState>();
  IssueFromCell(origin_cell, spec, [state](const FederationQueryResult& r) {
    state->out = r;
    state->done = true;
  });
  const SimTime deadline = now_ + max_wait;
  while (!state->done && now_ < deadline) {
    RunUntil(std::min(now_ + config_.epoch, deadline));
  }
  if (!state->done) {
    FederationQueryResult out;
    out.cell.answer.status =
        DeadlineExceededError("federated query did not complete in max_wait");
    out.origin_cell = origin_cell;
    out.issued_at = now_;
    out.completed_at = now_;
    return out;
  }
  return state->out;
}

QueryDriver& Federation::AttachQueryDriver(int origin_cell,
                                           const QueryDriverParams& params) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  QueryDriverParams p = params;
  if (p.mix.num_sensors <= 0) {
    p.mix.num_sensors = directory_.total_sensors();
  }
  PRESTO_CHECK_MSG(p.mix.num_sensors <= directory_.total_sensors(),
                   "driver namespace exceeds the federation population");
  Deployment& origin = *cells_[static_cast<size_t>(origin_cell)];
  auto issue = [this, origin_cell](const QueryRequest& request,
                                   QueryDriver::CompletionFn done) {
    FederationQuerySpec fspec;
    fspec.fed_sensor = request.sensor;
    fspec.tolerance = request.tolerance;
    fspec.latency_bound = request.latency_bound;
    if (request.past) {
      fspec.type = QueryType::kPast;
      fspec.range = PastRangeOf(
          request, cells_[static_cast<size_t>(origin_cell)]->sim().Now());
    }
    IssueFromCell(origin_cell, fspec,
                  [done = std::move(done)](const FederationQueryResult& r) {
                    // The gateway's clock, not the serving cell's: federation
                    // latency spans both trunk hops.
                    QueryOutcome outcome = OutcomeFromResult(r.cell);
                    outcome.issued_at = r.issued_at;
                    outcome.completed_at = r.completed_at;
                    outcome.cross_cell = r.cross_cell;
                    done(outcome);
                  });
  };
  drivers_.push_back(
      std::make_unique<QueryDriver>(&origin.sim(), p, std::move(issue)));
  return *drivers_.back();
}

void Federation::KillCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.KillProxy(p);
  }
}

void Federation::ReviveCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.ReviveProxy(p);
  }
}

uint64_t Federation::fingerprint() const {
  uint64_t total = barrier_hash_;
  uint64_t index = 0;
  for (const auto& cell : cells_) {
    // Bind each stream to its cell identity before the commutative sum, so swapping
    // two cells' entire histories (a directory misrouting bug) still changes the
    // fold — the same shape as the simulator's per-lane fingerprint.
    uint64_t term = cell->sim().fingerprint();
    FnvMix(term, index++);
    total += term * 0x9e3779b97f4a7c15ull;
  }
  return total;
}

}  // namespace presto
