#include "src/core/federation.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/cell_worker.h"
#include "src/util/assert.h"
#include "src/util/hash.h"

namespace presto {
namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;

// Folded into the barrier hash (with the cell index) when a worker dies: a crash
// is part of the run's observable history, exactly like a drained barrier.
constexpr uint64_t kWorkerDeathMark = 0xdeadc377ull;

}  // namespace

FedEndpoint MakeFedEndpoint(const char* host, uint16_t port) {
  FedEndpoint out;
  PRESTO_CHECK_MSG(std::strlen(host) < sizeof(out.host),
                   "endpoint host string too long");
  std::strncpy(out.host, host, sizeof(out.host) - 1);
  out.port = port;
  return out;
}

CellDirectory::CellDirectory(int num_cells, int sensors_per_cell)
    : num_cells_(num_cells), sensors_per_cell_(sensors_per_cell) {
  PRESTO_CHECK(num_cells_ >= 1);
  PRESTO_CHECK(sensors_per_cell_ >= 1);
}

int CellDirectory::CellOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index / sensors_per_cell_;
}

int CellDirectory::LocalOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index % sensors_per_cell_;
}

int CellDirectory::FedIndexOf(int cell, int local) const {
  PRESTO_CHECK(cell >= 0 && cell < num_cells_);
  PRESTO_CHECK(local >= 0 && local < sensors_per_cell_);
  return cell * sensors_per_cell_ + local;
}

// ---------------------------------------------------------------------------
// Seam codecs.
// ---------------------------------------------------------------------------

void CkptWrite(ByteWriter& w, const FederationQuerySpec& v) {
  CkptWrite(w, v.type);
  CkptWrite(w, v.fed_sensor);
  CkptWrite(w, v.range);
  CkptWrite(w, v.tolerance);
  CkptWrite(w, v.latency_bound);
}

Status CkptRead(ByteReader& r, FederationQuerySpec& v) {
  CKPT_READ(r, v.type);
  if (static_cast<uint8_t>(v.type) > static_cast<uint8_t>(QueryType::kPast)) {
    return DataLossError("federation query spec: type out of range");
  }
  CKPT_READ(r, v.fed_sensor);
  CKPT_READ(r, v.range);
  CKPT_READ(r, v.tolerance);
  CKPT_READ(r, v.latency_bound);
  return OkStatus();
}

void CkptWrite(ByteWriter& w, const FederationQueryResult& v) {
  CkptWrite(w, v.cell);
  CkptWrite(w, v.origin_cell);
  CkptWrite(w, v.target_cell);
  CkptWrite(w, v.cross_cell);
  CkptWrite(w, v.issued_at);
  CkptWrite(w, v.completed_at);
}

Status CkptRead(ByteReader& r, FederationQueryResult& v) {
  CKPT_READ(r, v.cell);
  CKPT_READ(r, v.origin_cell);
  CKPT_READ(r, v.target_cell);
  CKPT_READ(r, v.cross_cell);
  CKPT_READ(r, v.issued_at);
  CKPT_READ(r, v.completed_at);
  return OkStatus();
}

void CkptWrite(ByteWriter& w, const FederationTrunkTotals& v) {
  CkptWrite(w, v.messages);
  CkptWrite(w, v.bytes);
}

Status CkptRead(ByteReader& r, FederationTrunkTotals& v) {
  CKPT_READ(r, v.messages);
  CKPT_READ(r, v.bytes);
  return OkStatus();
}

void CkptWrite(ByteWriter& w, const FedCell::Counters& v) {
  CkptWrite(w, v.next_qid);
  CkptWrite(w, v.queries);
  CkptWrite(w, v.local);
  CkptWrite(w, v.forwarded);
  CkptWrite(w, v.failed);
  CkptWrite(w, v.orphans);
}

Status CkptRead(ByteReader& r, FedCell::Counters& v) {
  CKPT_READ(r, v.next_qid);
  CKPT_READ(r, v.queries);
  CKPT_READ(r, v.local);
  CKPT_READ(r, v.forwarded);
  CKPT_READ(r, v.failed);
  CKPT_READ(r, v.orphans);
  return OkStatus();
}

void CkptWrite(ByteWriter& w, const FedCellSnapshot& v) {
  CkptWrite(w, v.sim_fingerprint);
  CkptWrite(w, v.events);
  CkptWrite(w, v.counters);
  CkptWrite(w, v.trunks);
  CkptWrite(w, v.drivers);
}

Status CkptRead(ByteReader& r, FedCellSnapshot& v) {
  CKPT_READ(r, v.sim_fingerprint);
  CKPT_READ(r, v.events);
  CKPT_READ(r, v.counters);
  CKPT_READ(r, v.trunks);
  CKPT_READ(r, v.drivers);
  return OkStatus();
}

std::vector<uint8_t> EncodeFedControlReply(
    const std::vector<FedMail>& mail,
    const std::vector<FedCell::HostDone>& host_done) {
  ByteWriter w;
  CkptWrite(w, mail);
  w.WriteVarU64(host_done.size());
  for (const FedCell::HostDone& d : host_done) {
    CkptWrite(w, d.token);
    CkptWrite(w, d.result);
  }
  return w.TakeBuffer();
}

Status DecodeFedControlReply(span<const uint8_t> payload, std::vector<FedMail>* mail,
                             std::vector<FedCell::HostDone>* host_done) {
  ByteReader r{payload};
  CKPT_READ(r, *mail);
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("fed control reply: count exceeds payload bytes");
  }
  host_done->clear();
  for (uint64_t i = 0; i < *count; ++i) {
    FedCell::HostDone d;
    CKPT_READ(r, d.token);
    CKPT_READ(r, d.result);
    host_done->push_back(std::move(d));
  }
  if (r.remaining() != 0) {
    return DataLossError("fed control reply: trailing bytes");
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// FedCell: the per-cell half of the router.
// ---------------------------------------------------------------------------

FedCell::FedCell(int index, const FederationConfig* config, Deployment* cell)
    : index_(index),
      config_(config),
      directory_(config->num_cells,
                 config->cell.num_proxies * config->cell.sensors_per_proxy),
      cell_(cell) {
  PRESTO_CHECK(cell_ != nullptr);
  PRESTO_CHECK(index_ >= 0 && index_ < config_->num_cells);
  by_target_.resize(static_cast<size_t>(config_->num_cells));
  cell_down_.assign(static_cast<size_t>(config_->num_cells), 0);
  links_out_.reserve(static_cast<size_t>(config_->num_cells));
  for (int d = 0; d < config_->num_cells; ++d) {
    links_out_.push_back(d == index_ ? nullptr
                                     : std::make_unique<CellLink>(config_->link));
  }
  // Tagged cross-cell queries complete through OnDeploymentQueryDone, and the
  // router is a sink on the cell simulator (mail-delivery events), so both
  // survive checkpoints. The caller constructs FedCells in cell-index order, so
  // sink ids match across modes.
  cell_->SetFederationClient(this);
  cell_->sim().RegisterSink(this);
}

void FedCell::Issue(const FederationQuerySpec& spec, Pending q) {
  // Runs on this cell's control lane (driver arrivals, mail) or host control
  // context between steps: the counter block is single-writer either way, so qid
  // allocation (qid ≡ index_ mod num_cells) needs no cross-cell coordination —
  // and is deterministic, unlike a shared counter under cell-parallel stepping.
  const int target = directory_.CellOf(spec.fed_sensor);
  const int local = directory_.LocalOf(spec.fed_sensor);
  ++counters_.queries;
  const uint64_t qid =
      ++counters_.next_qid * static_cast<uint64_t>(config_->num_cells) +
      static_cast<uint64_t>(index_);
  const int spp = config_->cell.sensors_per_proxy;
  q.spec.type = spec.type;
  q.spec.sensor_id = Deployment::SensorId(local / spp, local % spp);
  q.spec.range = spec.range;
  q.spec.tolerance = spec.tolerance;
  q.spec.latency_bound = spec.latency_bound;
  q.result.origin_cell = index_;
  q.result.target_cell = target;
  q.result.cross_cell = target != index_;
  q.result.issued_at = cell_->sim().Now();
  if (cell_down_[static_cast<size_t>(target)]) {
    // Fail fast at this gateway: zero added latency, no trunk hop, no pending
    // entry — the directory knows the cell is down, so the query never leaves.
    q.result.cell = UnifiedQueryResult{};
    q.result.cell.answer.status =
        UnavailableError("federation: target cell is down");
    Complete(std::move(q));
    return;
  }
  by_target_[static_cast<size_t>(target)].insert(qid);
  if (target == index_) {
    ++counters_.local;
    pending_.emplace(qid, std::move(q));
    ExecuteLocal(qid);  // no trunk hop: straight into the local store
    return;
  }
  ++counters_.forwarded;
  // This origin->target trunk is driven only by this cell's control lane, so its
  // serialization clock stays single-writer and monotone under parallel stepping.
  const SimTime at = links_out_[static_cast<size_t>(target)]->Deliver(
      q.result.issued_at, config_->query_bytes);
  ByteWriter body;
  CkptWrite(body, q.spec);
  pending_.emplace(qid, std::move(q));
  outbox_.push_back(
      FedMail{index_, target, at, kFedOpExecute, qid, body.TakeBuffer()});
}

void FedCell::ExecuteLocal(uint64_t qid) {
  auto it = pending_.find(qid);
  PRESTO_CHECK(it != pending_.end());
  // Copy: QueryAsyncFederated may complete synchronously and erase the entry.
  const QuerySpec spec = it->second.spec;
  cell_->QueryAsyncFederated(spec, qid);
}

void FedCell::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  switch (payload.a) {
    case kFedOpExecute: {
      if (cell_down_[static_cast<size_t>(index_)]) {
        // Mail raced a kill: the origin already failed (or will fail) this query
        // in its own kill sweep. Dropping here keeps a dead cell silent.
        ++counters_.orphans;
        return;
      }
      QuerySpec spec;
      ByteReader r{span<const uint8_t>(payload.bytes)};
      const Status s = CkptRead(r, spec);
      PRESTO_CHECK_MSG(s.ok() && r.remaining() == 0,
                       "federation: bad execute mail body");
      // Tagged (not closure) form: the deployment carries the fed qid through its
      // own checkpointable pending table and calls OnDeploymentQueryDone when the
      // store answers.
      cell_->QueryAsyncFederated(spec, payload.b);
      return;
    }
    case kFedOpComplete: {
      if (pending_.find(payload.b) == pending_.end()) {
        // A response for a query this origin already failed fast at kill time.
        ++counters_.orphans;
        return;
      }
      UnifiedQueryResult result;
      ByteReader r{span<const uint8_t>(payload.bytes)};
      const Status s = CkptRead(r, result);
      PRESTO_CHECK_MSG(s.ok() && r.remaining() == 0,
                       "federation: bad complete mail body");
      FinalizeEntry(payload.b, result);
      return;
    }
    default:
      PRESTO_CHECK_MSG(false, "unknown federation op");
  }
}

void FedCell::OnDeploymentQueryDone(uint64_t qid, const UnifiedQueryResult& result) {
  // Runs on this cell's control lane (QueryAsync marshals completions there).
  const int origin = OriginOf(qid);
  if (origin == index_) {
    if (pending_.find(qid) == pending_.end()) {
      ++counters_.orphans;  // completed after a kill sweep already failed it
      return;
    }
    FinalizeEntry(qid, result);
    return;
  }
  // Cross-cell: the answer rides the target->origin trunk home as FedMail (PAST
  // answers pay for their sample payload).
  const size_t bytes = config_->response_base_bytes +
                       result.answer.samples.size() *
                           static_cast<size_t>(config_->response_sample_bytes);
  const SimTime at =
      links_out_[static_cast<size_t>(origin)]->Deliver(cell_->sim().Now(), bytes);
  ByteWriter body;
  CkptWrite(body, result);
  outbox_.push_back(
      FedMail{index_, origin, at, kFedOpComplete, qid, body.TakeBuffer()});
}

void FedCell::FinalizeEntry(uint64_t qid, const UnifiedQueryResult& result) {
  auto it = pending_.find(qid);
  PRESTO_CHECK(it != pending_.end());
  Pending q = std::move(it->second);
  by_target_[static_cast<size_t>(q.result.target_cell)].erase(qid);
  pending_.erase(it);
  q.result.cell = result;
  Complete(std::move(q));
}

void FedCell::Complete(Pending q) {
  q.result.completed_at = cell_->sim().Now();
  if (!q.result.cell.answer.status.ok()) {
    ++counters_.failed;
  }
  switch (q.origin) {
    case Origin::kDriver: {
      // The gateway's clock, not the serving cell's: federation latency spans
      // both trunk hops. source_cell is the cell whose sensors paid any energy.
      QueryOutcome outcome = OutcomeFromResult(q.result.cell);
      outcome.issued_at = q.result.issued_at;
      outcome.completed_at = q.result.completed_at;
      outcome.cross_cell = q.result.cross_cell;
      outcome.past = q.past;
      outcome.source_cell = q.result.target_cell;
      PRESTO_CHECK(q.driver_slot < drivers_.size());
      drivers_[static_cast<size_t>(q.driver_slot)]->RecordOutcome(outcome);
      return;
    }
    case Origin::kHost:
      host_done_.push_back(HostDone{q.host_token, std::move(q.result)});
      return;
    case Origin::kClosure:
      if (q.callback) {
        q.callback(q.result);
      }
      return;
  }
}

int FedCell::AttachDriver(const QueryDriverParams& params) {
  QueryDriverParams p = params;
  if (p.mix.num_sensors <= 0) {
    p.mix.num_sensors = directory_.total_sensors();
  }
  PRESTO_CHECK_MSG(p.mix.num_sensors <= directory_.total_sensors(),
                   "driver namespace exceeds the federation population");
  // Tagged (slot) issue path: the pending entry carries this driver's slot
  // instead of capturing the completion closure, so in-flight driver queries
  // survive a checkpoint. Complete records the outcome directly.
  const uint64_t slot = drivers_.size();
  auto issue = [this, slot](const QueryRequest& request,
                            QueryDriver::CompletionFn done) {
    (void)done;  // completion flows through the driver-slot tag, not the closure
    FederationQuerySpec fspec;
    fspec.fed_sensor = request.sensor;
    fspec.tolerance = request.tolerance;
    fspec.latency_bound = request.latency_bound;
    if (request.past) {
      fspec.type = QueryType::kPast;
      fspec.range = PastRangeOf(request, cell_->sim().Now());
    }
    Pending q;
    q.origin = Origin::kDriver;
    q.driver_slot = slot;
    q.past = request.past;
    Issue(fspec, std::move(q));
  };
  drivers_.push_back(
      std::make_unique<QueryDriver>(&cell_->sim(), p, std::move(issue)));
  return static_cast<int>(slot);
}

void FedCell::StartDriver(int slot, Duration duration) {
  PRESTO_CHECK(slot >= 0 && slot < num_drivers());
  drivers_[static_cast<size_t>(slot)]->Start(duration);
}

void FedCell::SetCellDown(int cell_index, bool down) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_->num_cells);
  cell_down_[static_cast<size_t>(cell_index)] = down ? 1 : 0;
}

void FedCell::FailPendingToward(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_->num_cells);
  std::set<uint64_t> victims;
  victims.swap(by_target_[static_cast<size_t>(cell_index)]);
  for (const uint64_t qid : victims) {  // ascending qid: deterministic order
    auto it = pending_.find(qid);
    PRESTO_CHECK(it != pending_.end());
    Pending q = std::move(it->second);
    pending_.erase(it);
    q.result.cell = UnifiedQueryResult{};
    q.result.cell.answer.status =
        UnavailableError("federation: target cell was killed");
    Complete(std::move(q));
  }
}

void FedCell::RestoreCellDown(const std::vector<uint8_t>& flags) {
  PRESTO_CHECK(flags.size() == cell_down_.size());
  cell_down_ = flags;
}

void FedCell::DeliverMail(FedMail mail, SimTime barrier) {
  PRESTO_CHECK(mail.target_cell == index_);
  EventPayload payload;
  payload.a = mail.op;
  payload.b = mail.qid;
  payload.bytes = std::move(mail.body);
  // Delivery clamps to this barrier: inter-cell granularity is the federation
  // epoch (trunk latency below it is only faithful modulo the clamp).
  cell_->sim().ScheduleEventAt(std::max(mail.time, barrier), EventKind::kQuery,
                               this, std::move(payload), Simulator::kLaneControl);
}

std::vector<FedMail> FedCell::TakeOutbox() {
  return std::exchange(outbox_, {});
}

std::vector<FedCell::HostDone> FedCell::TakeHostDone() {
  return std::exchange(host_done_, {});
}

FederationTrunkTotals FedCell::TrunkTotals() const {
  FederationTrunkTotals total;
  for (const auto& link : links_out_) {
    if (link == nullptr) {
      continue;
    }
    total.messages += link->stats().messages;
    total.bytes += link->stats().bytes;
  }
  return total;
}

Status FedCell::SaveState(ByteWriter& w) const {
  CkptWrite(w, counters_);
  for (const auto& link : links_out_) {
    if (link != nullptr) {
      link->SaveState(w);
    }
  }
  // qid-sorted walk: the serialized bytes must not depend on hash layout.
  std::vector<uint64_t> qids;
  qids.reserve(pending_.size());
  for (const auto& [qid, q] : pending_) {
    qids.push_back(qid);
  }
  std::sort(qids.begin(), qids.end());
  w.WriteVarU64(qids.size());
  for (const uint64_t qid : qids) {
    const Pending& q = pending_.at(qid);
    if (q.origin != Origin::kDriver) {
      return FailedPreconditionError(
          "federation checkpoint: closure-form query in flight (QueryAndWait probe)");
    }
    CkptWrite(w, qid);
    CkptWrite(w, q.spec);
    CkptWrite(w, q.result);
    CkptWrite(w, q.driver_slot);
    CkptWrite(w, q.past);
  }
  w.WriteVarU64(drivers_.size());
  for (const auto& driver : drivers_) {
    PRESTO_RETURN_IF_ERROR(driver->SaveState(w));
  }
  return OkStatus();
}

Status FedCell::LoadState(ByteReader& r) {
  CKPT_READ(r, counters_);
  for (auto& link : links_out_) {
    if (link != nullptr) {
      PRESTO_RETURN_IF_ERROR(link->LoadState(r));
    }
  }
  pending_.clear();
  for (auto& targets : by_target_) {
    targets.clear();
  }
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("federation restore: pending count exceeds section bytes");
  }
  for (uint64_t i = 0; i < *count; ++i) {
    uint64_t qid = 0;
    CKPT_READ(r, qid);
    Pending q;
    q.origin = Origin::kDriver;  // the only origin that can cross a checkpoint
    CKPT_READ(r, q.spec);
    CKPT_READ(r, q.result);
    CKPT_READ(r, q.driver_slot);
    CKPT_READ(r, q.past);
    if (OriginOf(qid) != index_ || q.result.origin_cell != index_) {
      return DataLossError("federation restore: pending query origin mismatch");
    }
    if (q.result.target_cell < 0 || q.result.target_cell >= config_->num_cells) {
      return DataLossError("federation restore: pending query cell out of range");
    }
    if (q.driver_slot >= drivers_.size()) {
      return FailedPreconditionError(
          "federation restore: attach the same drivers before restoring");
    }
    by_target_[static_cast<size_t>(q.result.target_cell)].insert(qid);
    pending_.emplace(qid, std::move(q));
  }
  auto driver_count = r.ReadVarU64();
  if (!driver_count.ok()) {
    return driver_count.status();
  }
  if (*driver_count != drivers_.size()) {
    return FailedPreconditionError(
        "federation restore: attach the same drivers before restoring");
  }
  for (const auto& driver : drivers_) {
    PRESTO_RETURN_IF_ERROR(driver->LoadState(r));
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Shared per-cell checkpoint composition (in-process federation + workers).
// ---------------------------------------------------------------------------

Status SaveCellCheckpoint(const Deployment& cell, const FedCell& core,
                          Checkpoint* out) {
  const std::string prefix = "cell" + std::to_string(core.index()) + "/";
  PRESTO_RETURN_IF_ERROR(cell.SaveCheckpoint(out, prefix));
  ByteWriter w;
  PRESTO_RETURN_IF_ERROR(core.SaveState(w));
  out->Add(prefix + "fed", w.TakeBuffer());
  return OkStatus();
}

Status LoadCellCheckpoint(Deployment& cell, FedCell& core, const Checkpoint& ckpt) {
  const std::string prefix = "cell" + std::to_string(core.index()) + "/";
  const std::vector<uint8_t>* payload = ckpt.Find(prefix + "fed");
  if (payload == nullptr) {
    return NotFoundError("checkpoint missing section " + prefix + "fed");
  }
  ByteReader r{span<const uint8_t>(*payload)};
  // Router first: the cell's simulator (loaded last inside LoadCheckpoint)
  // re-announces restored events into fully rebuilt tables.
  PRESTO_RETURN_IF_ERROR(core.LoadState(r));
  if (r.remaining() != 0) {
    return DataLossError("checkpoint section " + prefix + "fed has trailing bytes");
  }
  return cell.LoadCheckpoint(ckpt, prefix);
}

// ---------------------------------------------------------------------------
// Federation: construction and the shared barrier schedule.
// ---------------------------------------------------------------------------

Federation::Federation(const FederationConfig& config)
    : config_(config),
      directory_(config.num_cells,
                 config.cell.num_proxies * config.cell.sensors_per_proxy) {
  PRESTO_CHECK(config_.num_cells >= 1);
  PRESTO_CHECK_MSG(config_.epoch > 0, "federation epoch must be positive");
  cell_threads_ = std::max(1, std::min(config_.cell_threads, config_.num_cells));
  cell_processes_ =
      std::max(1, std::min(config_.cell_processes, config_.num_cells));
  PRESTO_CHECK_MSG(cell_threads_ == 1 || cell_processes_ == 1,
                   "cell_processes and cell_threads are mutually exclusive");
  socket_mode_ = config_.num_endpoints > 0;
  if (socket_mode_) {
    PRESTO_CHECK_MSG(config_.num_endpoints <= kMaxFedEndpoints,
                     "num_endpoints exceeds kMaxFedEndpoints");
    PRESTO_CHECK_MSG(config_.cell_threads == 1 && config_.cell_processes == 1,
                     "cell_endpoints is mutually exclusive with cell_threads / "
                     "cell_processes");
    PRESTO_CHECK_MSG(config_.frame_deadline > 0,
                     "frame_deadline must be positive in socket mode");
    // Endpoints play the worker-process role: cell c -> endpoint c % N, the
    // exact placement rule fork mode uses, so observables cannot drift.
    cell_processes_ = std::min(config_.num_endpoints, config_.num_cells);
  }
  if (config_.auto_epoch) {
    config_.epoch = DeriveEpoch();
    config_.auto_epoch = false;  // resolved: workers must not re-derive
  }
  const Duration cap = CellEpochCap();
  if (cap != Simulator::kNoEpochGrid) {
    // A trunk cannot deliver finer than its endpoints step: clamping inter-cell
    // mail to federation barriers below the cells' own barrier grid would
    // schedule into epochs the cells never open. Validated against the
    // configured cap, not the current effective epoch — lookahead may shrink
    // the latter mid-run, but it can also grow back to the cap.
    PRESTO_CHECK_MSG(config_.epoch >= cap,
                     "federation epoch must cover the cell lane epoch cap");
  }
  cell_down_.assign(static_cast<size_t>(config_.num_cells), 0);
  if (process_mode()) {
    route_.resize(static_cast<size_t>(config_.num_cells));
    if (socket_mode_) {
      ConnectWorkers();
    } else {
      SpawnWorkers();
    }
    return;
  }
  for (int c = 0; c < config_.num_cells; ++c) {
    DeploymentConfig cell_config = config_.cell;
    cell_config.seed = FederationCellSeed(config_.seed, c);
    cells_.push_back(std::make_unique<Deployment>(cell_config));
  }
  for (int c = 0; c < config_.num_cells; ++c) {
    // Cell-index order: the FedCell registers sinks on its cell's simulator, and
    // sink ids are part of the checkpoint contract across modes.
    cores_.push_back(
        std::make_unique<FedCell>(c, &config_, cells_[static_cast<size_t>(c)].get()));
    if (cap != Simulator::kNoEpochGrid) {
      PRESTO_CHECK(cells_[static_cast<size_t>(c)]->sim().epoch_cap() == cap);
    }
  }
  for (int w = 1; w < cell_threads_; ++w) {
    cell_workers_.emplace_back([this] { CellWorkerLoop(); });
  }
}

Federation::~Federation() {
  if (!cell_workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      pool_quit_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& worker : cell_workers_) {
      worker.join();
    }
  }
  ShutdownWorkers();
}

Duration Federation::CellEpochCap() const {
  // Config-only math (no instantiated simulator needed — workers aren't local):
  // lane-engine cells step on their configured sim_epoch grid; legacy
  // single-queue cells have no grid and impose no constraint.
  return config_.cell.lane_engine ? config_.cell.sim_epoch : Simulator::kNoEpochGrid;
}

Duration Federation::DeriveEpoch() const {
  // Topology-derived conservative bound: the fastest trunk is the soonest any
  // cell can affect another, so stepping no coarser than it keeps barrier
  // clamping from distorting cross-cell delivery times. All trunks share
  // config_.link, so the minimum is the configured latency.
  Duration derived = std::min(config_.epoch, config_.link.latency);
  derived = std::max(derived, CellEpochCap());  // kNoEpochGrid = 0: no floor
  PRESTO_CHECK_MSG(derived > 0, "derived federation epoch must be positive");
  return derived;
}

void Federation::Start() {
  if (process_mode()) {
    BroadcastControl(FedFrameType::kStart, {});
    return;
  }
  for (auto& cell : cells_) {
    cell->Start();
  }
}

void Federation::RunUntil(SimTime t) {
  PRESTO_CHECK_MSG(t >= now_, "cannot run the federation backwards");
  while (now_ < t) {
    const SimTime end = std::min((now_ / config_.epoch + 1) * config_.epoch, t);
    // Mail drains only on the absolute epoch grid. A RunUntil that stopped
    // off-grid resumes with a partial iteration whose start is *not* a barrier —
    // draining there would make delivery times (and the barrier hash) depend on
    // how the host happened to slice its RunUntil calls.
    const bool on_grid = now_ % config_.epoch == 0;
    if (process_mode()) {
      StepWorkers(end, on_grid);
    } else {
      if (on_grid) {
        DrainMail();
      }
      // Cells step through the epoch — concurrently when cell_threads_ > 1.
      // Cells only interact through outboxes drained at the (serial) barrier
      // above, so which host thread steps a cell is unobservable: fingerprints
      // and driver histograms are identical for sequential and parallel runs.
      if (cell_threads_ <= 1) {
        for (auto& cell : cells_) {
          cell->RunUntil(end);
        }
      } else {
        StepCells(end);
      }
    }
    now_ = end;
  }
}

void Federation::DrainMail() {
  uint64_t drained = 0;
  for (int c = 0; c < config_.num_cells; ++c) {
    // Source-ascending, FIFO within a source: the per-target arrival order every
    // mode reproduces (the process-mode parent routes in exactly this order).
    for (FedMail& mail : cores_[static_cast<size_t>(c)]->TakeOutbox()) {
      ++drained;
      if (cell_down_[static_cast<size_t>(mail.source_cell)] != 0) {
        // A killed cell keeps stepping, but its trunks are down: late mail from
        // it is dropped at the barrier, never delivered. This is what makes a
        // KillCell run fingerprint-identical on the survivors to a run whose
        // worker was SIGKILLed (where that mail never exists at all).
        ++serial_stats_.orphans;
        continue;
      }
      const int target = mail.target_cell;
      cores_[static_cast<size_t>(target)]->DeliverMail(std::move(mail), now_);
    }
  }
  ++serial_stats_.barriers;
  if (drained > 0) {
    serial_stats_.mail_drained += drained;
    // Which barrier took delivery of how much inter-cell traffic is part of the
    // federation replay contract (mirrors the simulator's barrier-sequence hash).
    FnvMix(barrier_hash_, static_cast<uint64_t>(now_));
    FnvMix(barrier_hash_, drained);
  }
}

void Federation::StepCells(SimTime end) {
  {
    std::lock_guard<std::mutex> lock(pool_m_);
    pool_end_ = end;
    pool_done_ = 0;
    next_cell_.store(0, std::memory_order_relaxed);
    ++pool_gen_;
  }
  pool_cv_.notify_all();
  ClaimCells(end);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(pool_m_);
  done_cv_.wait(lock,
                [&] { return pool_done_ == static_cast<int>(cell_workers_.size()); });
}

void Federation::CellWorkerLoop() {
  uint64_t seen_gen = 0;
  while (true) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(pool_m_);
      pool_cv_.wait(lock, [&] { return pool_quit_ || pool_gen_ != seen_gen; });
      if (pool_quit_) {
        return;
      }
      seen_gen = pool_gen_;
      end = pool_end_;
    }
    ClaimCells(end);
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      ++pool_done_;
    }
    done_cv_.notify_one();
  }
}

void Federation::ClaimCells(SimTime end) {
  const int total = config_.num_cells;
  int cell;
  while ((cell = next_cell_.fetch_add(1, std::memory_order_relaxed)) < total) {
    cells_[static_cast<size_t>(cell)]->RunUntil(end);
  }
}

// ---------------------------------------------------------------------------
// In-process-only accessors.
// ---------------------------------------------------------------------------

Deployment& Federation::cell(int index) {
  PRESTO_CHECK_MSG(!process_mode(), "Federation::cell is in-process only");
  PRESTO_CHECK(index >= 0 && index < config_.num_cells);
  return *cells_[static_cast<size_t>(index)];
}

const CellLink& Federation::link(int src, int dst) const {
  PRESTO_CHECK_MSG(!process_mode(), "Federation::link is in-process only");
  PRESTO_CHECK(src >= 0 && src < config_.num_cells);
  PRESTO_CHECK(dst >= 0 && dst < config_.num_cells && src != dst);
  return cores_[static_cast<size_t>(src)]->link_out(dst);
}

QueryDriver& Federation::AttachQueryDriver(int origin_cell,
                                           const QueryDriverParams& params) {
  PRESTO_CHECK_MSG(!process_mode(),
                   "Federation::AttachQueryDriver is in-process only");
  const int index = AttachDriver(origin_cell, params);
  const auto [cell_index, slot] = driver_map_[static_cast<size_t>(index)];
  return cores_[static_cast<size_t>(cell_index)]->driver(slot);
}

void Federation::IssueFromCell(
    int origin_cell, const FederationQuerySpec& spec,
    std::function<void(const FederationQueryResult&)> callback) {
  PRESTO_CHECK_MSG(!process_mode(), "Federation::IssueFromCell is in-process only");
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  FedCell::Pending q;
  q.origin = FedCell::Origin::kClosure;
  q.callback = std::move(callback);
  cores_[static_cast<size_t>(origin_cell)]->Issue(spec, std::move(q));
}

// ---------------------------------------------------------------------------
// Mode-independent facade.
// ---------------------------------------------------------------------------

int Federation::AttachDriver(int origin_cell, const QueryDriverParams& params) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  int slot;
  if (process_mode()) {
    static_assert(std::is_trivially_copyable<QueryDriverParams>::value,
                  "QueryDriverParams rides the wire as raw bytes");
    ByteWriter w;
    CkptWrite(w, origin_cell);
    const auto* raw = reinterpret_cast<const uint8_t*>(&params);
    w.WriteBytes(span<const uint8_t>(raw, sizeof(params)));
    const int target = WorkerOf(origin_cell);
    FedFrame reply;
    const Status s =
        CallWorker(target, FedFrameType::kAttachDriver, w.TakeBuffer(), &reply);
    PRESTO_CHECK_MSG(s.ok() && reply.type == FedFrameType::kAck,
                     "failed to attach a driver on a presto_cell worker");
    ByteReader r{span<const uint8_t>(reply.payload)};
    auto wire_slot = r.ReadVarU64();
    PRESTO_CHECK(wire_slot.ok() && r.remaining() == 0);
    slot = static_cast<int>(*wire_slot);
  } else {
    slot = cores_[static_cast<size_t>(origin_cell)]->AttachDriver(params);
  }
  driver_map_.emplace_back(origin_cell, slot);
  driver_params_.push_back(params);
  snaps_fresh_ = false;
  return static_cast<int>(driver_map_.size()) - 1;
}

void Federation::StartDriver(int driver_index, Duration duration) {
  PRESTO_CHECK(driver_index >= 0 && driver_index < num_drivers());
  const auto [cell_index, slot] = driver_map_[static_cast<size_t>(driver_index)];
  if (process_mode()) {
    const int w = WorkerOf(cell_index);
    if (!workers_[static_cast<size_t>(w)].alive) {
      return;  // the dead worker's cells are already down: nothing to start
    }
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    CkptWrite(payload, slot);
    CkptWrite(payload, duration);
    ControlCall(w, FedFrameType::kStartDriver, payload.TakeBuffer());
    FlushDeadCellKills();
    return;
  }
  cores_[static_cast<size_t>(cell_index)]->StartDriver(slot, duration);
}

QueryDriverStats Federation::DriverStats(int driver_index) const {
  PRESTO_CHECK(driver_index >= 0 && driver_index < num_drivers());
  const auto [cell_index, slot] = driver_map_[static_cast<size_t>(driver_index)];
  if (process_mode()) {
    RefreshSnapshots();
    const FedCellSnapshot& snap = snaps_[static_cast<size_t>(cell_index)];
    if (static_cast<size_t>(slot) >= snap.drivers.size()) {
      return QueryDriverStats{};  // worker died before its first snapshot fold
    }
    return snap.drivers[static_cast<size_t>(slot)];
  }
  return cores_[static_cast<size_t>(cell_index)]->driver(slot).stats();
}

FederationQueryResult Federation::QueryAndWait(int origin_cell,
                                               const FederationQuerySpec& spec,
                                               Duration max_wait) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  const SimTime deadline = now_ + max_wait;
  if (process_mode()) {
    const int w = WorkerOf(origin_cell);
    auto synthesize = [&](Status status) {
      FederationQueryResult out;
      out.cell.answer.status = std::move(status);
      out.origin_cell = origin_cell;
      out.target_cell = directory_.CellOf(spec.fed_sensor);
      out.issued_at = now_;
      out.completed_at = now_;
      return out;
    };
    if (!workers_[static_cast<size_t>(w)].alive) {
      return synthesize(UnavailableError("federation: origin cell's worker is gone"));
    }
    const uint64_t token = ++next_host_token_;
    ByteWriter payload;
    CkptWrite(payload, origin_cell);
    CkptWrite(payload, token);
    CkptWrite(payload, spec);
    ControlCall(w, FedFrameType::kInject, payload.TakeBuffer());
    FlushDeadCellKills();
    // Fail-fast and same-epoch completions ride back in the inject reply itself;
    // anything slower surfaces through a later kStep reply's host_done fold.
    auto it = host_results_.find(token);
    while (it == host_results_.end() && now_ < deadline &&
           workers_[static_cast<size_t>(w)].alive) {
      RunUntil(std::min(now_ + config_.epoch, deadline));
      it = host_results_.find(token);  // re-find: absorbs may rehash the map
    }
    if (it == host_results_.end()) {
      if (!workers_[static_cast<size_t>(w)].alive) {
        return synthesize(
            UnavailableError("federation: origin cell's worker died mid-query"));
      }
      return synthesize(
          DeadlineExceededError("federated query did not complete in max_wait"));
    }
    FederationQueryResult out = std::move(it->second);
    host_results_.erase(it);
    return out;
  }
  // Shared (not stack-referencing) wait state: on a timeout the pending entry —
  // and its callback — outlive this frame, and a late completion must write into
  // state that is still alive, not a popped stack.
  struct WaitState {
    bool done = false;
    FederationQueryResult out;
  };
  auto state = std::make_shared<WaitState>();
  IssueFromCell(origin_cell, spec, [state](const FederationQueryResult& r) {
    state->out = r;
    state->done = true;
  });
  while (!state->done && now_ < deadline) {
    RunUntil(std::min(now_ + config_.epoch, deadline));
  }
  if (!state->done) {
    FederationQueryResult out;
    out.cell.answer.status =
        DeadlineExceededError("federated query did not complete in max_wait");
    out.origin_cell = origin_cell;
    out.issued_at = now_;
    out.completed_at = now_;
    return out;
  }
  return state->out;
}

void Federation::KillCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  cell_down_[static_cast<size_t>(cell_index)] = 1;
  if (process_mode()) {
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    BroadcastControl(FedFrameType::kKillCell, payload.TakeBuffer());
    snaps_fresh_ = false;
    return;
  }
  // Every gateway marks the cell down and fails its pending queries toward it
  // (cell-index order, ascending qid within a cell: deterministic), then the
  // cell's own proxies die.
  for (auto& core : cores_) {
    core->SetCellDown(cell_index, true);
    core->FailPendingToward(cell_index);
  }
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.KillProxy(p);
  }
}

void Federation::ReviveCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  if (process_mode()) {
    PRESTO_CHECK_MSG(workers_[static_cast<size_t>(WorkerOf(cell_index))].alive,
                     "cannot revive a cell whose worker died");
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    BroadcastControl(FedFrameType::kReviveCell, payload.TakeBuffer());
    cell_down_[static_cast<size_t>(cell_index)] = 0;
    snaps_fresh_ = false;
    return;
  }
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.ReviveProxy(p);
  }
  for (auto& core : cores_) {
    core->SetCellDown(cell_index, false);
  }
  cell_down_[static_cast<size_t>(cell_index)] = 0;
}

void Federation::KillProxyInCell(int cell_index, int proxy_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  if (process_mode()) {
    const int w = WorkerOf(cell_index);
    PRESTO_CHECK_MSG(workers_[static_cast<size_t>(w)].alive,
                     "cannot mutate a cell whose worker died");
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    CkptWrite(payload, proxy_index);
    ControlCall(w, FedFrameType::kKillProxy, payload.TakeBuffer());
    FlushDeadCellKills();
    snaps_fresh_ = false;
    return;
  }
  cells_[static_cast<size_t>(cell_index)]->KillProxy(proxy_index);
}

void Federation::ReviveProxyInCell(int cell_index, int proxy_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  if (process_mode()) {
    const int w = WorkerOf(cell_index);
    PRESTO_CHECK_MSG(workers_[static_cast<size_t>(w)].alive,
                     "cannot mutate a cell whose worker died");
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    CkptWrite(payload, proxy_index);
    ControlCall(w, FedFrameType::kReviveProxy, payload.TakeBuffer());
    FlushDeadCellKills();
    snaps_fresh_ = false;
    return;
  }
  cells_[static_cast<size_t>(cell_index)]->ReviveProxy(proxy_index);
}

void Federation::MigrateSensorInCell(int cell_index, int global_index,
                                     int new_owner) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  if (process_mode()) {
    const int w = WorkerOf(cell_index);
    PRESTO_CHECK_MSG(workers_[static_cast<size_t>(w)].alive,
                     "cannot mutate a cell whose worker died");
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    CkptWrite(payload, global_index);
    CkptWrite(payload, new_owner);
    ControlCall(w, FedFrameType::kMigrateSensor, payload.TakeBuffer());
    FlushDeadCellKills();
    snaps_fresh_ = false;
    return;
  }
  cells_[static_cast<size_t>(cell_index)]->MigrateSensor(global_index, new_owner);
}

uint64_t Federation::EventsExecuted() const {
  if (process_mode()) {
    RefreshSnapshots();
    uint64_t total = 0;
    for (const FedCellSnapshot& snap : snaps_) {
      total += snap.events;
    }
    return total;
  }
  uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->sim().events_executed();
  }
  return total;
}

FederationTrunkTotals Federation::TrunkTotals() const {
  FederationTrunkTotals total;
  if (process_mode()) {
    RefreshSnapshots();
    for (const FedCellSnapshot& snap : snaps_) {
      total.messages += snap.trunks.messages;
      total.bytes += snap.trunks.bytes;
    }
    return total;
  }
  for (const auto& core : cores_) {
    const FederationTrunkTotals t = core->TrunkTotals();
    total.messages += t.messages;
    total.bytes += t.bytes;
  }
  return total;
}

FederationStats Federation::stats() const {
  FederationStats total = serial_stats_;
  auto fold = [&total](const FedCell::Counters& ctr) {
    total.queries += ctr.queries;
    total.local += ctr.local;
    total.forwarded += ctr.forwarded;
    total.failed += ctr.failed;
    total.orphans += ctr.orphans;
  };
  if (process_mode()) {
    RefreshSnapshots();
    for (const FedCellSnapshot& snap : snaps_) {
      fold(snap.counters);
    }
    total.orphans += parent_orphans_;
    return total;
  }
  for (const auto& core : cores_) {
    fold(core->counters());
  }
  return total;
}

uint64_t Federation::fingerprint() const {
  uint64_t total = barrier_hash_;
  uint64_t index = 0;
  auto fold = [&](uint64_t sim_fp) {
    // Bind each stream to its cell identity before the commutative sum, so
    // swapping two cells' entire histories (a directory misrouting bug) still
    // changes the fold — the same shape as the simulator's per-lane fingerprint.
    uint64_t term = sim_fp;
    FnvMix(term, index++);
    total += term * kGolden;
  };
  if (process_mode()) {
    RefreshSnapshots();
    for (const FedCellSnapshot& snap : snaps_) {
      fold(snap.sim_fingerprint);
    }
    return total;
  }
  for (const auto& cell : cells_) {
    fold(cell->sim().fingerprint());
  }
  return total;
}

uint64_t Federation::CellFingerprint(int cell_index) const {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  if (process_mode()) {
    RefreshSnapshots();
    return snaps_[static_cast<size_t>(cell_index)].sim_fingerprint;
  }
  return cells_[static_cast<size_t>(cell_index)]->sim().fingerprint();
}

// ---------------------------------------------------------------------------
// Process mode: worker lifecycle and the frame RPC discipline.
// ---------------------------------------------------------------------------

void Federation::AssignWorkerCells() {
  workers_.resize(static_cast<size_t>(cell_processes_));
  for (int c = 0; c < config_.num_cells; ++c) {
    workers_[static_cast<size_t>(WorkerOf(c))].cells.push_back(c);
  }
}

void Federation::SpawnWorkers() {
  const std::string bin = ResolveCellWorkerBinary();
  AssignWorkerCells();
  for (int w = 0; w < cell_processes_; ++w) {
    int fds[2];
    PRESTO_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
    // The parent-side fd must not leak into *any* worker (each fork inherits
    // every fd open at that moment): close-on-exec before the first fork.
    PRESTO_CHECK(::fcntl(fds[0], F_SETFD, FD_CLOEXEC) == 0);
    const pid_t pid = ::fork();
    PRESTO_CHECK(pid >= 0);
    if (pid == 0) {
      char fd_arg[16];
      std::snprintf(fd_arg, sizeof(fd_arg), "%d", fds[1]);
      ::execl(bin.c_str(), "presto_cell", fd_arg, static_cast<char*>(nullptr));
      _exit(127);  // exec failed; bootstrap below reports the actionable error
    }
    ::close(fds[1]);
    WorkerProc& worker = workers_[static_cast<size_t>(w)];
    worker.pid = pid;
    worker.channel = std::make_unique<FrameChannel>(fds[0]);
    worker.alive = true;
  }
  for (int w = 0; w < cell_processes_; ++w) {
    const Status s = BootstrapWorker(w);
    PRESTO_CHECK_MSG(
        s.ok(),
        "failed to bootstrap a presto_cell worker (is the presto_cell binary "
        "next to this executable? set PRESTO_CELL_BIN otherwise)");
  }
  snaps_.assign(static_cast<size_t>(config_.num_cells), FedCellSnapshot{});
}

void Federation::ConnectWorkers() {
  AssignWorkerCells();
  for (int w = 0; w < cell_processes_; ++w) {
    const Status s = ConnectWorkerChannel(w, config_.cell_endpoints[w]);
    PRESTO_CHECK_MSG(s.ok(),
                     "failed to connect a presto_cell --listen worker (is it "
                     "running at cell_endpoints[w]?)");
  }
  for (int w = 0; w < cell_processes_; ++w) {
    const Status s = BootstrapWorker(w);
    PRESTO_CHECK_MSG(s.ok(),
                     "failed to bootstrap a presto_cell worker over its socket");
  }
  snaps_.assign(static_cast<size_t>(config_.num_cells), FedCellSnapshot{});
}

Status Federation::ConnectWorkerChannel(int w, const FedEndpoint& endpoint) {
  if (endpoint.host[0] == '\0' || endpoint.port == 0) {
    return InvalidArgumentError("federation: empty cell endpoint");
  }
  auto fd = TcpConnect(endpoint.host, endpoint.port, config_.frame_deadline);
  if (!fd.ok()) {
    return fd.status();
  }
  WorkerProc& worker = workers_[static_cast<size_t>(w)];
  worker.pid = -1;  // not our child: death surfaces as a channel failure
  worker.channel = std::make_unique<FrameChannel>(*fd);
  worker.channel->SetDeadline(config_.frame_deadline);
  worker.alive = true;
  const Status hello = FedHelloClient(*worker.channel, w, cell_processes_);
  if (!hello.ok()) {
    worker.channel->Close();
    worker.alive = false;
    return hello;
  }
  return OkStatus();
}

Status Federation::BootstrapWorker(int w) {
  static_assert(std::is_trivially_copyable<FederationConfig>::value,
                "FederationConfig rides the wire as raw bytes");
  // The worker constructs its hosted cells from the *resolved* config: epoch
  // already derived, parallelism fields neutralized (the worker is the
  // parallelism), num_cells kept — every worker owns a full routing view. The
  // endpoint map is neutralized too: the transport that delivered this config
  // is not part of the simulated world, so socket- and fork-mode workers build
  // from identical bytes.
  FederationConfig wire = config_;
  wire.auto_epoch = false;
  wire.cell_threads = 1;
  wire.cell_processes = 1;
  wire.num_endpoints = 0;
  // memset (not per-element assignment) so padding bytes zero too: the struct
  // ships as raw bytes below and every worker must receive identical payloads.
  std::memset(static_cast<void*>(wire.cell_endpoints), 0,
              sizeof(wire.cell_endpoints));
  ByteWriter payload;
  const auto* raw = reinterpret_cast<const uint8_t*>(&wire);
  payload.WriteBytes(span<const uint8_t>(raw, sizeof(wire)));
  CkptWrite(payload, w);
  CkptWrite(payload, cell_processes_);
  FedFrame reply;
  PRESTO_RETURN_IF_ERROR(
      CallWorker(w, FedFrameType::kBootstrap, payload.TakeBuffer(), &reply));
  if (reply.type != FedFrameType::kAck) {
    return FailedPreconditionError("federation: worker refused the bootstrap");
  }
  return OkStatus();
}

Status Federation::CallWorker(int w, FedFrameType type, std::vector<uint8_t> payload,
                              FedFrame* reply) {
  WorkerProc& worker = workers_[static_cast<size_t>(w)];
  PRESTO_CHECK(worker.alive);
  FedFrame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  const Status sent = worker.channel->Send(frame);
  if (!sent.ok()) {
    MarkWorkerDead(w);
    return sent;
  }
  auto received = worker.channel->Recv();
  if (!received.ok()) {
    MarkWorkerDead(w);
    return received.status();
  }
  *reply = std::move(*received);
  return OkStatus();
}

bool Federation::ControlCall(int w, FedFrameType type, std::vector<uint8_t> payload) {
  FedFrame reply;
  if (!CallWorker(w, type, std::move(payload), &reply).ok()) {
    return false;  // CallWorker already marked the worker dead
  }
  if (reply.type != FedFrameType::kAck) {
    MarkWorkerDead(w);
    return false;
  }
  if (!AbsorbControlReply(reply.payload).ok()) {
    MarkWorkerDead(w);
    return false;
  }
  return true;
}

Status Federation::AbsorbControlReply(const std::vector<uint8_t>& payload) {
  std::vector<FedMail> mail;
  std::vector<FedCell::HostDone> host_done;
  PRESTO_RETURN_IF_ERROR(
      DecodeFedControlReply(span<const uint8_t>(payload), &mail, &host_done));
  for (FedMail& m : mail) {
    if (m.source_cell < 0 || m.source_cell >= config_.num_cells ||
        m.target_cell < 0 || m.target_cell >= config_.num_cells ||
        (m.op != kFedOpExecute && m.op != kFedOpComplete)) {
      return DataLossError("federation: bad mail in control reply");
    }
    route_[static_cast<size_t>(m.source_cell)].push_back(std::move(m));
  }
  for (FedCell::HostDone& d : host_done) {
    host_results_[d.token] = std::move(d.result);
  }
  return OkStatus();
}

void Federation::BroadcastControl(FedFrameType type,
                                  const std::vector<uint8_t>& payload) {
  for (int w = 0; w < cell_processes_; ++w) {
    if (!workers_[static_cast<size_t>(w)].alive) {
      continue;
    }
    ControlCall(w, type, payload);  // copy: each worker consumes its own
  }
  FlushDeadCellKills();
}

void Federation::StepWorkers(SimTime end, bool on_grid) {
  std::vector<std::vector<FedMail>> deliver(workers_.size());
  if (on_grid) {
    // The parent-side barrier drain: route_ holds per-source FIFOs, walked
    // source-ascending — the exact per-target arrival order DrainMail produces
    // in-process, so delivery schedules (and fingerprints) match across modes.
    uint64_t drained = 0;
    for (int c = 0; c < config_.num_cells; ++c) {
      auto& box = route_[static_cast<size_t>(c)];
      for (FedMail& mail : box) {
        const int w = WorkerOf(mail.target_cell);
        ++drained;  // delivery happened at this barrier either way
        if (cell_down_[static_cast<size_t>(mail.source_cell)] != 0) {
          // Down-source drop, mirroring DrainMail: late mail from a killed cell
          // is never delivered, so KillCell survivors match worker-kill
          // survivors bit for bit.
          ++parent_orphans_;
          continue;
        }
        if (!workers_[static_cast<size_t>(w)].alive) {
          ++parent_orphans_;  // the dead cell drops it, counted like any orphan
          continue;
        }
        deliver[static_cast<size_t>(w)].push_back(std::move(mail));
      }
      box.clear();
    }
    ++serial_stats_.barriers;
    if (drained > 0) {
      serial_stats_.mail_drained += drained;
      FnvMix(barrier_hash_, static_cast<uint64_t>(now_));
      FnvMix(barrier_hash_, drained);
    }
  }
  // Strict one-reply-per-request RPC, batched: send every worker its step, then
  // collect every reply — workers step their cells concurrently in between.
  std::vector<uint8_t> sent(workers_.size(), 0);
  for (int w = 0; w < cell_processes_; ++w) {
    WorkerProc& worker = workers_[static_cast<size_t>(w)];
    if (!worker.alive) {
      continue;
    }
    ByteWriter payload;
    CkptWrite(payload, now_);
    CkptWrite(payload, end);
    CkptWrite(payload, deliver[static_cast<size_t>(w)]);
    FedFrame frame;
    frame.type = FedFrameType::kStep;
    frame.payload = payload.TakeBuffer();
    if (!worker.channel->Send(frame).ok()) {
      parent_orphans_ += deliver[static_cast<size_t>(w)].size();
      MarkWorkerDead(w);
      continue;
    }
    sent[static_cast<size_t>(w)] = 1;
  }
  for (int w = 0; w < cell_processes_; ++w) {
    WorkerProc& worker = workers_[static_cast<size_t>(w)];
    if (!sent[static_cast<size_t>(w)] || !worker.alive) {
      continue;
    }
    auto reply = worker.channel->Recv();
    if (!reply.ok() || reply->type != FedFrameType::kAck ||
        !AbsorbControlReply(reply->payload).ok()) {
      MarkWorkerDead(w);
    }
  }
  // Only now — with no reply outstanding — may the survivors hear about deaths.
  FlushDeadCellKills();
  snaps_fresh_ = false;
}

void Federation::MarkWorkerDead(int w) {
  WorkerProc& worker = workers_[static_cast<size_t>(w)];
  if (!worker.alive) {
    return;
  }
  // Local bookkeeping only — never sends frames (a sibling kStep reply may still
  // be outstanding; see the header). Survivors learn via FlushDeadCellKills.
  worker.alive = false;
  if (worker.channel != nullptr) {
    worker.channel->Close();
  }
  if (worker.pid > 0) {
    ::kill(static_cast<pid_t>(worker.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(worker.pid), &status, 0);
    worker.pid = -1;
  }
  for (const int c : worker.cells) {
    // A crash is observable history: fold a death marker per cell into the
    // barrier hash (always — even if the cell was already marked down).
    FnvMix(barrier_hash_, kWorkerDeathMark);
    FnvMix(barrier_hash_, static_cast<uint64_t>(c));
    if (!cell_down_[static_cast<size_t>(c)]) {
      cell_down_[static_cast<size_t>(c)] = 1;
      dead_cells_pending_kill_.push_back(c);
    }
  }
  // Undelivered mail toward the dead cells can never land: drop and count.
  for (auto& box : route_) {
    size_t kept = 0;
    for (FedMail& mail : box) {
      if (!workers_[static_cast<size_t>(WorkerOf(mail.target_cell))].alive) {
        ++parent_orphans_;
        continue;
      }
      // Guard the no-drops-yet case: a vector self-move empties the mail body.
      if (&box[kept] != &mail) {
        box[kept] = std::move(mail);
      }
      ++kept;
    }
    box.resize(kept);
  }
  snaps_fresh_ = false;
}

void Federation::FlushDeadCellKills() {
  // Loop: broadcasting a kill can itself discover another dead worker, which
  // queues more kills.
  while (!dead_cells_pending_kill_.empty()) {
    std::vector<int> batch = std::exchange(dead_cells_pending_kill_, {});
    for (const int c : batch) {
      ByteWriter payload;
      CkptWrite(payload, c);
      const std::vector<uint8_t> bytes = payload.TakeBuffer();
      for (int w = 0; w < cell_processes_; ++w) {
        if (!workers_[static_cast<size_t>(w)].alive) {
          continue;
        }
        ControlCall(w, FedFrameType::kKillCell, bytes);
      }
    }
  }
}

void Federation::ShutdownWorkers() {
  for (WorkerProc& worker : workers_) {
    bool clean = false;
    if (worker.alive && worker.channel != nullptr) {
      FedFrame frame;
      frame.type = FedFrameType::kShutdown;
      auto reply = worker.channel->Call(frame);
      clean = reply.ok() && reply->type == FedFrameType::kAck;
    }
    if (worker.channel != nullptr) {
      worker.channel->Close();
    }
    worker.alive = false;
    if (worker.pid > 0) {
      if (!clean) {
        ::kill(static_cast<pid_t>(worker.pid), SIGKILL);
      }
      int status = 0;
      ::waitpid(static_cast<pid_t>(worker.pid), &status, 0);
      worker.pid = -1;
    }
  }
  workers_.clear();
}

void Federation::RefreshSnapshots() const {
  if (!process_mode() || snaps_fresh_) {
    return;
  }
  // Logically const: folds worker-side telemetry into the mutable snapshot
  // cache. CallWorker/MarkWorkerDead mutate worker state on failure, which is
  // exactly the "crashed worker freezes at its last fold" contract.
  auto* self = const_cast<Federation*>(this);
  for (int w = 0; w < cell_processes_; ++w) {
    const WorkerProc& worker = workers_[static_cast<size_t>(w)];
    if (!worker.alive) {
      continue;  // its cells freeze at their last folded snapshot
    }
    FedFrame reply;
    if (!self->CallWorker(w, FedFrameType::kSnapshot, {}, &reply).ok()) {
      continue;  // already marked dead
    }
    if (reply.type != FedFrameType::kAck) {
      self->MarkWorkerDead(w);
      continue;
    }
    ByteReader r{span<const uint8_t>(reply.payload)};
    auto count = r.ReadVarU64();
    bool ok = count.ok() && *count == worker.cells.size();
    if (ok) {
      for (const int c : worker.cells) {
        FedCellSnapshot snap;
        if (!CkptRead(r, snap).ok()) {
          ok = false;
          break;
        }
        snaps_[static_cast<size_t>(c)] = std::move(snap);
      }
      ok = ok && r.remaining() == 0;
    }
    if (!ok) {
      self->MarkWorkerDead(w);
    }
  }
  self->FlushDeadCellKills();
  snaps_fresh_ = true;
}

// ---------------------------------------------------------------------------
// Checkpoints: per-cell sections + one orchestrator "fed" section, byte-
// identical whichever mode produced them (the live-migration contract).
// ---------------------------------------------------------------------------

Status Federation::SaveCheckpoint(Checkpoint* out) const {
  PRESTO_CHECK(out != nullptr);
  Checkpoint staged;
  if (process_mode()) {
    auto* self = const_cast<Federation*>(this);
    std::vector<Checkpoint> subs;
    subs.reserve(workers_.size());
    for (int w = 0; w < cell_processes_; ++w) {
      if (!workers_[static_cast<size_t>(w)].alive) {
        return FailedPreconditionError("federation checkpoint: a cell worker died");
      }
      FedFrame reply;
      PRESTO_RETURN_IF_ERROR(
          self->CallWorker(w, FedFrameType::kCkptSave, {}, &reply));
      if (reply.type == FedFrameType::kError) {
        ByteReader r{span<const uint8_t>(reply.payload)};
        Status failure = OkStatus();
        PRESTO_RETURN_IF_ERROR(CkptRead(r, failure));
        return failure;  // e.g. a probe query in flight on the worker
      }
      if (reply.type != FedFrameType::kAck) {
        return DataLossError("federation checkpoint: unexpected worker reply");
      }
      auto sub = Checkpoint::Decode(span<const uint8_t>(reply.payload));
      if (!sub.ok()) {
        return sub.status();
      }
      subs.push_back(std::move(*sub));
    }
    // Deterministic cell-index section order regardless of worker layout: walk
    // cells 0..N-1 and copy each cell's sections from its worker's checkpoint.
    // The trailing '/' in the prefix keeps "cell1/" from matching "cell10/...".
    for (int c = 0; c < config_.num_cells; ++c) {
      const std::string prefix = "cell" + std::to_string(c) + "/";
      const Checkpoint& sub = subs[static_cast<size_t>(WorkerOf(c))];
      for (const Checkpoint::Section& section : sub.sections()) {
        if (section.name.compare(0, prefix.size(), prefix) == 0) {
          staged.Add(section.name, section.payload);
        }
      }
    }
  } else {
    for (int c = 0; c < config_.num_cells; ++c) {
      PRESTO_RETURN_IF_ERROR(SaveCellCheckpoint(*cells_[static_cast<size_t>(c)],
                                                *cores_[static_cast<size_t>(c)],
                                                &staged));
    }
  }
  // Orchestrator-only state: the federation clock, barrier-sequence hash,
  // barrier counters, cell-down flags, and the undrained FedMail (per-source
  // FIFO, flattened source-ascending — both modes produce identical bytes).
  ByteWriter w;
  CkptWrite(w, now_);
  CkptWrite(w, barrier_hash_);
  CkptWrite(w, serial_stats_.barriers);
  CkptWrite(w, serial_stats_.mail_drained);
  CkptWrite(w, parent_orphans_);
  WriteCellBitmap(w, cell_down_);
  std::vector<FedMail> mail;
  if (process_mode()) {
    for (const auto& box : route_) {
      mail.insert(mail.end(), box.begin(), box.end());
    }
  } else {
    for (const auto& core : cores_) {
      const std::vector<FedMail>& box = core->outbox();
      mail.insert(mail.end(), box.begin(), box.end());
    }
  }
  CkptWrite(w, mail);
  staged.Add("fed", w.TakeBuffer());
  // Nothing partial on failure: sections land in the output only once every
  // cell and the federation itself serialized cleanly.
  for (const Checkpoint::Section& section : staged.sections()) {
    out->Add(section.name, section.payload);
  }
  return OkStatus();
}

Status Federation::LoadCheckpoint(const Checkpoint& ckpt) {
  const std::vector<uint8_t>* payload = ckpt.Find("fed");
  if (payload == nullptr) {
    return NotFoundError("checkpoint missing section fed");
  }
  ByteReader r{span<const uint8_t>(*payload)};
  CKPT_READ(r, now_);
  CKPT_READ(r, barrier_hash_);
  CKPT_READ(r, serial_stats_.barriers);
  CKPT_READ(r, serial_stats_.mail_drained);
  CKPT_READ(r, parent_orphans_);
  PRESTO_RETURN_IF_ERROR(
      ReadCellBitmap(r, static_cast<size_t>(config_.num_cells), &cell_down_));
  std::vector<FedMail> mail;
  CKPT_READ(r, mail);
  for (const FedMail& m : mail) {
    if (m.source_cell < 0 || m.source_cell >= config_.num_cells ||
        m.target_cell < 0 || m.target_cell >= config_.num_cells ||
        (m.op != kFedOpExecute && m.op != kFedOpComplete)) {
      return DataLossError("federation restore: bad mail entry");
    }
  }
  if (r.remaining() != 0) {
    return DataLossError("checkpoint section fed has trailing bytes");
  }
  if (process_mode()) {
    // Each worker restores its hosted cells from the same container the
    // in-process path reads — live migration is just "bootstrap, then load".
    const std::vector<uint8_t> encoded = ckpt.Encode();
    for (int w = 0; w < cell_processes_; ++w) {
      if (!workers_[static_cast<size_t>(w)].alive) {
        return FailedPreconditionError("federation restore: a cell worker died");
      }
      PRESTO_RETURN_IF_ERROR(LoadWorkerCheckpoint(w, encoded));
    }
    for (auto& box : route_) {
      box.clear();
    }
    for (FedMail& m : mail) {
      route_[static_cast<size_t>(m.source_cell)].push_back(std::move(m));
    }
    host_results_.clear();
    snaps_fresh_ = false;
    return OkStatus();
  }
  for (auto& core : cores_) {
    core->RestoreCellDown(cell_down_);
    core->TakeOutbox();  // drop stale undrained mail before re-queuing saved mail
  }
  for (FedMail& m : mail) {
    cores_[static_cast<size_t>(m.source_cell)]->RestoreMail(std::move(m));
  }
  // Cells load after "fed" so each cell simulator (loaded last within its own
  // cell) re-announces queued events into fully restored drivers and tables.
  for (int c = 0; c < config_.num_cells; ++c) {
    PRESTO_RETURN_IF_ERROR(LoadCellCheckpoint(
        *cells_[static_cast<size_t>(c)], *cores_[static_cast<size_t>(c)], ckpt));
  }
  return OkStatus();
}

Status Federation::LoadWorkerCheckpoint(int w, const std::vector<uint8_t>& encoded) {
  ByteWriter req;
  req.WriteBytes(span<const uint8_t>(encoded));
  WriteCellBitmap(req, cell_down_);
  FedFrame reply;
  PRESTO_RETURN_IF_ERROR(
      CallWorker(w, FedFrameType::kCkptLoad, req.TakeBuffer(), &reply));
  if (reply.type == FedFrameType::kError) {
    ByteReader er{span<const uint8_t>(reply.payload)};
    Status failure = OkStatus();
    PRESTO_RETURN_IF_ERROR(CkptRead(er, failure));
    return failure;
  }
  if (reply.type != FedFrameType::kAck) {
    return DataLossError("federation restore: unexpected worker reply");
  }
  return OkStatus();
}

Status Federation::ReplayDriverAttachments(int w) {
  for (size_t i = 0; i < driver_map_.size(); ++i) {
    const auto [cell_index, slot] = driver_map_[i];
    if (WorkerOf(cell_index) != w) {
      continue;
    }
    ByteWriter payload;
    CkptWrite(payload, cell_index);
    const auto* raw = reinterpret_cast<const uint8_t*>(&driver_params_[i]);
    payload.WriteBytes(span<const uint8_t>(raw, sizeof(QueryDriverParams)));
    FedFrame reply;
    PRESTO_RETURN_IF_ERROR(
        CallWorker(w, FedFrameType::kAttachDriver, payload.TakeBuffer(), &reply));
    if (reply.type != FedFrameType::kAck) {
      return FailedPreconditionError(
          "federation migrate: driver re-attach refused");
    }
    ByteReader r{span<const uint8_t>(reply.payload)};
    auto wire_slot = r.ReadVarU64();
    if (!wire_slot.ok() || r.remaining() != 0 ||
        static_cast<int>(*wire_slot) != slot) {
      return DataLossError("federation migrate: driver slot mismatch on re-attach");
    }
  }
  return OkStatus();
}

Status Federation::MigrateWorkerEndpoint(int w, const FedEndpoint& endpoint) {
  PRESTO_CHECK_MSG(socket_mode_, "MigrateWorkerEndpoint requires socket transport");
  PRESTO_CHECK(w >= 0 && w < cell_processes_);
  WorkerProc& worker = workers_[static_cast<size_t>(w)];
  if (!worker.alive) {
    return FailedPreconditionError("federation migrate: worker is already dead");
  }
  // The migration payload is the full federation checkpoint — the same bytes a
  // fork-mode restore reads. SaveCheckpoint enforces its own preconditions
  // (every worker alive, no host probe in flight).
  Checkpoint ckpt;
  PRESTO_RETURN_IF_ERROR(SaveCheckpoint(&ckpt));
  // Decommission the old endpoint (best effort: the peer may already be gone),
  // then stand the worker up again over the new fd.
  FedFrame bye;
  bye.type = FedFrameType::kShutdown;
  (void)worker.channel->Call(bye);
  worker.channel->Close();
  worker.alive = false;
  Status s = ConnectWorkerChannel(w, endpoint);
  if (!s.ok()) {
    // Same containment path as any worker death: mark cells down, tell
    // survivors. ConnectWorkerChannel left alive=false; arm it so
    // MarkWorkerDead runs its full bookkeeping exactly once.
    worker.alive = true;
    MarkWorkerDead(w);
    FlushDeadCellKills();
    return s;
  }
  // From here every hop is a CallWorker: transport failures mark the worker
  // dead themselves, so only protocol-level refusals still need the hammer.
  s = BootstrapWorker(w);
  if (s.ok()) {
    s = ReplayDriverAttachments(w);
  }
  if (s.ok() && !ControlCall(w, FedFrameType::kStart, {})) {
    s = UnavailableError("federation migrate: start failed on the new worker");
  }
  if (s.ok()) {
    s = LoadWorkerCheckpoint(w, ckpt.Encode());
  }
  if (!s.ok()) {
    if (worker.alive) {
      MarkWorkerDead(w);
    }
    FlushDeadCellKills();
    return s;
  }
  snaps_fresh_ = false;
  return OkStatus();
}

}  // namespace presto
