#include "src/core/federation.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/assert.h"
#include "src/util/hash.h"

namespace presto {
namespace {

// Federation kQuery payload.a op codes (payload.b carries the query id).
constexpr uint64_t kFedOpExecute = 1;   // request landed at the target cell
constexpr uint64_t kFedOpComplete = 2;  // response landed back at the origin

}  // namespace

CellDirectory::CellDirectory(int num_cells, int sensors_per_cell)
    : num_cells_(num_cells), sensors_per_cell_(sensors_per_cell) {
  PRESTO_CHECK(num_cells_ >= 1);
  PRESTO_CHECK(sensors_per_cell_ >= 1);
}

int CellDirectory::CellOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index / sensors_per_cell_;
}

int CellDirectory::LocalOf(int fed_index) const {
  PRESTO_CHECK(fed_index >= 0 && fed_index < total_sensors());
  return fed_index % sensors_per_cell_;
}

int CellDirectory::FedIndexOf(int cell, int local) const {
  PRESTO_CHECK(cell >= 0 && cell < num_cells_);
  PRESTO_CHECK(local >= 0 && local < sensors_per_cell_);
  return cell * sensors_per_cell_ + local;
}

Federation::Federation(const FederationConfig& config)
    : config_(config),
      directory_(config.num_cells,
                 config.cell.num_proxies * config.cell.sensors_per_proxy) {
  PRESTO_CHECK(config_.num_cells >= 1);
  PRESTO_CHECK_MSG(config_.epoch > 0, "federation epoch must be positive");
  for (int c = 0; c < config_.num_cells; ++c) {
    DeploymentConfig cell_config = config_.cell;
    // Distinct per-cell seeds off one federation seed: cells are statistically
    // independent but the whole federation replays from `seed`.
    cell_config.seed =
        config_.seed ^ (0xfedc0de + 0x9e3779b9ull * static_cast<uint64_t>(c));
    cells_.push_back(std::make_unique<Deployment>(cell_config));
  }
  links_.reserve(static_cast<size_t>(config_.num_cells) *
                 static_cast<size_t>(config_.num_cells));
  for (int s = 0; s < config_.num_cells; ++s) {
    for (int d = 0; d < config_.num_cells; ++d) {
      links_.push_back(s == d ? nullptr : std::make_unique<CellLink>(config_.link));
    }
  }
  if (config_.auto_epoch) {
    config_.epoch = DeriveEpoch();
  }
  for (const auto& cell : cells_) {
    const Duration cap = cell->sim().epoch_cap();
    if (cap == Simulator::kNoEpochGrid) {
      // Legacy single-queue cells have no barrier grid, hence no constraint: their
      // events execute at exact times regardless of when mail is injected. The
      // sentinel is deliberate — epoch_cap() == 0 means "no grid", never "a grid of
      // length zero" (ConfigureLanes rejects non-positive epochs).
      continue;
    }
    // A trunk cannot deliver finer than its endpoints step: clamping inter-cell
    // mail to federation barriers below the cells' own barrier grid would schedule
    // into epochs the cells never open. Validated against the configured cap, not
    // the current effective epoch — lookahead may shrink the latter mid-run, but
    // it can also grow back to the cap.
    PRESTO_CHECK_MSG(config_.epoch >= cap,
                     "federation epoch must cover the cell lane epoch cap");
  }
  outbox_.resize(static_cast<size_t>(config_.num_cells));
  counters_.resize(static_cast<size_t>(config_.num_cells));
  cell_threads_ = std::max(1, std::min(config_.cell_threads, config_.num_cells));
  for (int w = 1; w < cell_threads_; ++w) {
    cell_workers_.emplace_back([this] { CellWorkerLoop(); });
  }
}

Federation::~Federation() {
  if (!cell_workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      pool_quit_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& worker : cell_workers_) {
      worker.join();
    }
  }
}

void Federation::Start() {
  for (auto& cell : cells_) {
    cell->Start();
  }
}

Duration Federation::DeriveEpoch() const {
  // Topology-derived conservative bound: the fastest directed trunk is the soonest
  // any cell can affect another, so stepping no coarser than it keeps barrier
  // clamping from distorting cross-cell delivery times. All trunks currently share
  // config_.link, but deriving from the instantiated links keeps this correct if
  // per-pair trunks ever diverge.
  Duration min_trunk = -1;
  for (const auto& link : links_) {
    if (link == nullptr) {
      continue;
    }
    const Duration latency = link->params().latency;
    if (min_trunk < 0 || latency < min_trunk) {
      min_trunk = latency;
    }
  }
  Duration floor = 0;
  for (const auto& cell : cells_) {
    floor = std::max(floor, cell->sim().epoch_cap());  // kNoEpochGrid = 0: no floor
  }
  Duration derived = config_.epoch;
  if (min_trunk >= 0) {
    derived = std::min(derived, min_trunk);
  }
  derived = std::max(derived, floor);
  PRESTO_CHECK_MSG(derived > 0, "derived federation epoch must be positive");
  return derived;
}

CellLink& Federation::LinkBetween(int src, int dst) {
  PRESTO_CHECK(src != dst);
  return *links_[static_cast<size_t>(src) * static_cast<size_t>(config_.num_cells) +
                 static_cast<size_t>(dst)];
}

const CellLink& Federation::link(int src, int dst) const {
  PRESTO_CHECK(src >= 0 && src < config_.num_cells);
  PRESTO_CHECK(dst >= 0 && dst < config_.num_cells && src != dst);
  return *links_[static_cast<size_t>(src) * static_cast<size_t>(config_.num_cells) +
                 static_cast<size_t>(dst)];
}

void Federation::RunUntil(SimTime t) {
  PRESTO_CHECK_MSG(t >= now_, "cannot run the federation backwards");
  while (now_ < t) {
    const SimTime end = std::min((now_ / config_.epoch + 1) * config_.epoch, t);
    // Mail drains only on the absolute epoch grid. A RunUntil that stopped
    // off-grid resumes with a partial iteration whose start is *not* a barrier —
    // draining there would make delivery times (and the barrier hash) depend on
    // how the host happened to slice its RunUntil calls.
    if (now_ % config_.epoch == 0) {
      DrainMail();
    }
    // Cells step through the epoch — concurrently when cell_threads_ > 1. Cells
    // only interact through outboxes drained at the (serial) barrier above, so
    // which host thread steps a cell is unobservable: fingerprints and driver
    // histograms are identical for sequential and parallel stepping.
    if (cell_threads_ <= 1) {
      for (auto& cell : cells_) {
        cell->RunUntil(end);
      }
    } else {
      StepCells(end);
    }
    now_ = end;
  }
}

void Federation::StepCells(SimTime end) {
  {
    std::lock_guard<std::mutex> lock(pool_m_);
    pool_end_ = end;
    pool_done_ = 0;
    next_cell_.store(0, std::memory_order_relaxed);
    ++pool_gen_;
  }
  pool_cv_.notify_all();
  ClaimCells(end);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(pool_m_);
  done_cv_.wait(lock,
                [&] { return pool_done_ == static_cast<int>(cell_workers_.size()); });
}

void Federation::CellWorkerLoop() {
  uint64_t seen_gen = 0;
  while (true) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(pool_m_);
      pool_cv_.wait(lock, [&] { return pool_quit_ || pool_gen_ != seen_gen; });
      if (pool_quit_) {
        return;
      }
      seen_gen = pool_gen_;
      end = pool_end_;
    }
    ClaimCells(end);
    {
      std::lock_guard<std::mutex> lock(pool_m_);
      ++pool_done_;
    }
    done_cv_.notify_one();
  }
}

void Federation::ClaimCells(SimTime end) {
  const int total = config_.num_cells;
  int cell;
  while ((cell = next_cell_.fetch_add(1, std::memory_order_relaxed)) < total) {
    cells_[static_cast<size_t>(cell)]->RunUntil(end);
  }
}

void Federation::DrainMail() {
  uint64_t drained = 0;
  for (auto& box : outbox_) {
    for (Mail& mail : box) {
      EventPayload payload;
      payload.a = mail.op;
      payload.b = mail.qid;
      // Delivery clamps to this barrier: inter-cell granularity is the federation
      // epoch (trunk latency below it is only faithful modulo the clamp).
      cells_[static_cast<size_t>(mail.target_cell)]->sim().ScheduleEventAt(
          std::max(mail.time, now_), EventKind::kQuery, this, std::move(payload),
          Simulator::kLaneControl);
      ++drained;
    }
    box.clear();
  }
  ++serial_stats_.barriers;
  if (drained > 0) {
    serial_stats_.mail_drained += drained;
    // Which barrier took delivery of how much inter-cell traffic is part of the
    // federation replay contract (mirrors the simulator's barrier-sequence hash).
    FnvMix(barrier_hash_, static_cast<uint64_t>(now_));
    FnvMix(barrier_hash_, drained);
  }
}

void Federation::IssueFromCell(
    int origin_cell, const FederationQuerySpec& spec,
    std::function<void(const FederationQueryResult&)> callback) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  const int target = directory_.CellOf(spec.fed_sensor);
  const int local = directory_.LocalOf(spec.fed_sensor);
  // Runs on the origin cell's control lane (driver arrivals) or host control
  // context: the origin's counter block is single-writer either way, so qid
  // allocation (qid ≡ origin_cell mod num_cells) needs no cross-cell coordination
  // — and is deterministic, unlike a shared atomic counter under cell-parallel
  // stepping.
  CellCounters& ctr = counters_[static_cast<size_t>(origin_cell)];
  ++ctr.queries;
  const uint64_t qid = ++ctr.next_qid * static_cast<uint64_t>(config_.num_cells) +
                       static_cast<uint64_t>(origin_cell);
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery* q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    q = &shard.map[qid];  // references survive rehash; only this qid's owner fills
  }
  q->spec.type = spec.type;
  q->spec.sensor_id = cells_[static_cast<size_t>(target)]->GlobalSensorId(local);
  q->spec.range = spec.range;
  q->spec.tolerance = spec.tolerance;
  q->spec.latency_bound = spec.latency_bound;
  q->result.origin_cell = origin_cell;
  q->result.target_cell = target;
  q->result.cross_cell = target != origin_cell;
  q->result.issued_at = cells_[static_cast<size_t>(origin_cell)]->sim().Now();
  q->callback = std::move(callback);

  if (target == origin_cell) {
    ++ctr.local;
    ExecuteAtTarget(qid);  // no trunk hop: straight into the local store
    return;
  }
  ++ctr.forwarded;
  // The origin→target trunk is driven only by this (origin) control lane, so its
  // serialization clock stays single-writer and monotone under parallel stepping.
  const SimTime at = LinkBetween(origin_cell, target)
                         .Deliver(q->result.issued_at, config_.query_bytes);
  outbox_[static_cast<size_t>(origin_cell)].push_back(
      Mail{target, at, kFedOpExecute, qid});
}

void Federation::ExecuteAtTarget(uint64_t qid) {
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery* q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(qid);
    PRESTO_CHECK(it != shard.map.end());
    q = &it->second;
  }
  cells_[static_cast<size_t>(q->result.target_cell)]->QueryAsync(
      q->spec,
      [this, qid](const UnifiedQueryResult& r) { OnCellAnswered(qid, r); });
}

void Federation::OnCellAnswered(uint64_t qid, const UnifiedQueryResult& r) {
  // Runs on the target cell's control lane (QueryAsync marshals completions there).
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery* q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(qid);
    PRESTO_CHECK(it != shard.map.end());
    q = &it->second;
  }
  q->result.cell = r;
  if (!q->result.cross_cell) {
    Finalize(qid);
    return;
  }
  const int target = q->result.target_cell;
  const int origin = q->result.origin_cell;
  const size_t bytes =
      config_.response_base_bytes +
      r.answer.samples.size() * static_cast<size_t>(config_.response_sample_bytes);
  // The target→origin trunk is driven only by this (target) control lane.
  const SimTime at =
      LinkBetween(target, origin)
          .Deliver(cells_[static_cast<size_t>(target)]->sim().Now(), bytes);
  outbox_[static_cast<size_t>(target)].push_back(
      Mail{origin, at, kFedOpComplete, qid});
}

void Federation::Finalize(uint64_t qid) {
  PendingShard& shard = PendingShardOf(qid);
  PendingFedQuery q;
  {
    std::lock_guard<std::mutex> lock(shard.m);
    auto it = shard.map.find(qid);
    PRESTO_CHECK(it != shard.map.end());
    q = std::move(it->second);
    shard.map.erase(it);
  }
  q.result.completed_at =
      cells_[static_cast<size_t>(q.result.origin_cell)]->sim().Now();
  if (!q.result.cell.answer.status.ok()) {
    // Failures are charged to the origin's counter block: Finalize always runs on
    // the origin cell's control lane (or host context for probe queries).
    ++counters_[static_cast<size_t>(q.result.origin_cell)].failed;
  }
  // The callback (driver Record, QueryAndWait latch) runs outside the shard lock:
  // it may issue follow-up queries that take the same lock.
  if (q.callback) {
    q.callback(q.result);
  }
}

void Federation::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  switch (payload.a) {
    case kFedOpExecute:
      ExecuteAtTarget(payload.b);
      break;
    case kFedOpComplete:
      Finalize(payload.b);
      break;
    default:
      PRESTO_CHECK_MSG(false, "unknown federation op");
  }
}

FederationQueryResult Federation::QueryAndWait(int origin_cell,
                                               const FederationQuerySpec& spec,
                                               Duration max_wait) {
  // Shared (not stack-referencing) wait state: on a timeout the pending entry —
  // and its callback — outlive this frame, and a late completion must write into
  // state that is still alive, not a popped stack.
  struct WaitState {
    bool done = false;
    FederationQueryResult out;
  };
  auto state = std::make_shared<WaitState>();
  IssueFromCell(origin_cell, spec, [state](const FederationQueryResult& r) {
    state->out = r;
    state->done = true;
  });
  const SimTime deadline = now_ + max_wait;
  while (!state->done && now_ < deadline) {
    RunUntil(std::min(now_ + config_.epoch, deadline));
  }
  if (!state->done) {
    FederationQueryResult out;
    out.cell.answer.status =
        DeadlineExceededError("federated query did not complete in max_wait");
    out.origin_cell = origin_cell;
    out.issued_at = now_;
    out.completed_at = now_;
    return out;
  }
  return state->out;
}

QueryDriver& Federation::AttachQueryDriver(int origin_cell,
                                           const QueryDriverParams& params) {
  PRESTO_CHECK(origin_cell >= 0 && origin_cell < config_.num_cells);
  QueryDriverParams p = params;
  if (p.mix.num_sensors <= 0) {
    p.mix.num_sensors = directory_.total_sensors();
  }
  PRESTO_CHECK_MSG(p.mix.num_sensors <= directory_.total_sensors(),
                   "driver namespace exceeds the federation population");
  Deployment& origin = *cells_[static_cast<size_t>(origin_cell)];
  auto issue = [this, origin_cell](const QueryRequest& request,
                                   QueryDriver::CompletionFn done) {
    FederationQuerySpec fspec;
    fspec.fed_sensor = request.sensor;
    fspec.tolerance = request.tolerance;
    fspec.latency_bound = request.latency_bound;
    if (request.past) {
      fspec.type = QueryType::kPast;
      fspec.range = PastRangeOf(
          request, cells_[static_cast<size_t>(origin_cell)]->sim().Now());
    }
    IssueFromCell(origin_cell, fspec,
                  [done = std::move(done),
                   past = request.past](const FederationQueryResult& r) {
                    // The gateway's clock, not the serving cell's: federation
                    // latency spans both trunk hops.
                    QueryOutcome outcome = OutcomeFromResult(r.cell);
                    outcome.issued_at = r.issued_at;
                    outcome.completed_at = r.completed_at;
                    outcome.cross_cell = r.cross_cell;
                    outcome.past = past;
                    // The cell whose sensors paid the pull energy, for J/query
                    // attribution by source cell.
                    outcome.source_cell = r.target_cell;
                    done(outcome);
                  });
  };
  drivers_.push_back(
      std::make_unique<QueryDriver>(&origin.sim(), p, std::move(issue)));
  return *drivers_.back();
}

void Federation::KillCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.KillProxy(p);
  }
}

void Federation::ReviveCell(int cell_index) {
  PRESTO_CHECK(cell_index >= 0 && cell_index < config_.num_cells);
  Deployment& cell = *cells_[static_cast<size_t>(cell_index)];
  for (int p = 0; p < cell.config().num_proxies; ++p) {
    cell.ReviveProxy(p);
  }
}

FederationStats Federation::stats() const {
  FederationStats total = serial_stats_;
  for (const CellCounters& ctr : counters_) {
    total.queries += ctr.queries;
    total.local += ctr.local;
    total.forwarded += ctr.forwarded;
    total.failed += ctr.failed;
  }
  return total;
}

uint64_t Federation::fingerprint() const {
  uint64_t total = barrier_hash_;
  uint64_t index = 0;
  for (const auto& cell : cells_) {
    // Bind each stream to its cell identity before the commutative sum, so swapping
    // two cells' entire histories (a directory misrouting bug) still changes the
    // fold — the same shape as the simulator's per-lane fingerprint.
    uint64_t term = cell->sim().fingerprint();
    FnvMix(term, index++);
    total += term * 0x9e3779b97f4a7c15ull;
  }
  return total;
}

}  // namespace presto
