// Deployment builder: wires a complete PRESTO system — simulator, tiered network,
// proxies (with caches/engines/matchers), sensors (with flash archives and push
// policies), spatially correlated workload, skip-graph-routed unified store, optional
// proxy replication — from one config struct. This is the entry point examples,
// benches, and integration tests share.

#ifndef SRC_CORE_DEPLOYMENT_H_
#define SRC_CORE_DEPLOYMENT_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/shard_map.h"
#include "src/core/types.h"
#include "src/core/unified_store.h"
#include "src/net/network.h"
#include "src/proxy/proxy_node.h"
#include "src/sensor/sensor_node.h"
#include "src/sim/simulator.h"
#include "src/workload/temperature.h"

namespace presto {

struct DeploymentConfig {
  int num_proxies = 2;
  int sensors_per_proxy = 8;
  // How the global sensor population is sharded across proxies. kGeographic keeps the
  // (proxy, sensor) naming grid and ownership aligned (the seed behaviour); kHash
  // spreads sensors across proxies by index hash for load balance.
  ShardPolicy shard_policy = ShardPolicy::kGeographic;

  // Sensor behaviour.
  Duration sensing_period = Seconds(31);
  PushPolicy policy = PushPolicy::kModelDriven;
  double model_tolerance = 0.5;
  double value_delta = 1.0;
  Duration batch_interval = Minutes(16.5);
  bool compress = false;
  CodecParams codec;
  FlashParams flash;
  ArchiveParams archive;
  ModelConfig model_config;
  NodeRadioConfig sensor_radio;        // powered=false; lpl/post-burst knobs
  double max_drift_ppm = 40.0;         // per-sensor drift drawn uniformly in +/- this
  Duration max_clock_offset = Seconds(2);

  // Proxy behaviour.
  ProxyMode proxy_mode = ProxyMode::kPresto;
  PredictionEngineParams engine;
  MatcherParams matcher;
  bool manage_models = true;
  bool enable_matcher = false;  // opt-in: benches sweep this explicitly
  bool enable_replication = false;
  Duration pull_timeout = Minutes(10);

  // World.
  TemperatureParams field;
  double spatial_correlation = 0.85;

  NetworkParams net;
  uint64_t seed = 42;
};

class Deployment {
 public:
  // Reads the world for one sensor; the default reads the temperature field.
  using MeasureFactory = std::function<SensorNode::MeasureFn(int global_sensor_index)>;

  explicit Deployment(const DeploymentConfig& config);
  Deployment(const DeploymentConfig& config, MeasureFactory measure_factory);

  // Starts sensing loops and proxy maintenance. Call once, then run the simulator.
  void Start();

  // --- topology accessors ---
  // (proxy_index, sensor_index) is the deployment's *naming grid*: it fixes sensor ids
  // and global indices independent of sharding. Under kGeographic the named proxy also
  // owns the sensor; under kHash ownership comes from the shard map.
  static NodeId ProxyId(int proxy_index) { return static_cast<NodeId>(1 + proxy_index); }
  static NodeId SensorId(int proxy_index, int sensor_index) {
    return static_cast<NodeId>(1000 * (proxy_index + 1) + sensor_index);
  }
  int GlobalSensorIndex(int proxy_index, int sensor_index) const {
    return proxy_index * config_.sensors_per_proxy + sensor_index;
  }
  NodeId GlobalSensorId(int global_index) const {
    return SensorId(global_index / config_.sensors_per_proxy,
                    global_index % config_.sensors_per_proxy);
  }
  int total_sensors() const { return config_.num_proxies * config_.sensors_per_proxy; }

  const ShardMap& shard() const { return *shard_map_; }
  // The proxy that owns (serves queries for) the (p, s)-named sensor.
  int OwnerProxyIndex(int proxy_index, int sensor_index) const {
    return shard_map_->OwnerOf(GlobalSensorIndex(proxy_index, sensor_index));
  }

  // Failure injection at deployment granularity: a killed proxy neither receives
  // pushes nor answers queries; with replication enabled its shard stays answerable
  // (degraded) at the ring-successor replica.
  void KillProxy(int proxy_index) { net_->SetNodeDown(ProxyId(proxy_index), true); }
  void ReviveProxy(int proxy_index) { net_->SetNodeDown(ProxyId(proxy_index), false); }

  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  UnifiedStore& store() { return *store_; }
  TemperatureField& field() { return *field_; }
  ProxyNode& proxy(int proxy_index) { return *proxies_[static_cast<size_t>(proxy_index)]; }
  SensorNode& sensor(int proxy_index, int sensor_index);
  const DeploymentConfig& config() const { return config_; }

  // Mean sensor energy in joules (settles idle energy first).
  double MeanSensorEnergy();

  // Issues a query and runs the simulator until it completes (or `max_wait` passes).
  UnifiedQueryResult QueryAndWait(const QuerySpec& spec, Duration max_wait = Minutes(30));

  // Runs the simulator forward to `t` (no-op if already past).
  void RunUntil(SimTime t) { sim_.RunUntil(t); }

 private:
  void Build(MeasureFactory measure_factory);

  DeploymentConfig config_;
  Simulator sim_;
  std::unique_ptr<ShardMap> shard_map_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<TemperatureField> field_;
  std::unique_ptr<UnifiedStore> store_;
  std::vector<std::unique_ptr<ProxyNode>> proxies_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;  // proxy-major order
};

}  // namespace presto

#endif  // SRC_CORE_DEPLOYMENT_H_
