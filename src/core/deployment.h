// Deployment builder and dynamic shard manager: wires a complete PRESTO system —
// simulator, tiered network, proxies (with caches/engines/matchers), sensors (with
// flash archives and push policies), spatially correlated workload, skip-graph-routed
// unified store, K-way proxy replication — from one config struct, then keeps the
// shard layout *live*:
//
//  - Routing follows *sensors*, not proxies: every sensor carries an ordered chain of
//    the proxies holding its state (acting owner first), re-derived on each mutation
//    and mirrored into the unified store. Queries fall through to the first live
//    holder, so even a second failure of a promoted acting owner never strands a
//    shard. Promotion tops the chain back up to `replication_factor` live copies by
//    recruiting ring successors of the new owner (registration + state snapshot).
//  - KillProxy schedules replica promotion after `promotion_delay`: the first live
//    holder on each stranded sensor's chain becomes the full owner (takes over pulls,
//    model management, and the unified-store index entry) instead of serving
//    cache/extrapolation-only forever. Promotion and hand-back walk the shard map's
//    incremental served-by index — O(shard), never a full-population rescan.
//  - ReviveProxy hands ownership back, with a cache+model state transfer from the
//    acting owner over the wired mesh, and restores the home holder chain.
//  - MigrateSensor moves one sensor between live proxies (rebalancing primitive).
//  - An optional load-aware rebalancer sweeps per-shard query+push counters every
//    `rebalance_period` and re-packs hot sensors across all live proxies with a
//    global LPT (longest-processing-time) assignment — multi-shard skew converges in
//    one sweep instead of one busiest/calmest pair at a time.
//
// Every mutation executes as a deterministic simulator event, so same-seed replays
// (Simulator::fingerprint()) stay bit-identical.
//
// This is the entry point examples, benches, and integration tests share.

#ifndef SRC_CORE_DEPLOYMENT_H_
#define SRC_CORE_DEPLOYMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/shard_map.h"
#include "src/core/types.h"
#include "src/core/unified_store.h"
#include "src/net/network.h"
#include "src/proxy/proxy_node.h"
#include "src/sensor/sensor_node.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"
#include "src/util/ckpt.h"
#include "src/workload/query_driver.h"
#include "src/workload/temperature.h"

namespace presto {

// Serializable completion target for federation-tagged deployment queries: the
// federation gets back the qid it tagged the query with. The deployment-level
// analogue of PullClient / UnifiedStore::Client, one layer up.
class FederationQueryClient {
 public:
  virtual ~FederationQueryClient() = default;
  virtual void OnDeploymentQueryDone(uint64_t qid, const UnifiedQueryResult& result) = 0;
};

// Deployment-level network defaults. The link-coalescing epoch ships non-zero here
// (unlike the raw NetworkParams default of 0): bench/fig2_batching's sweep shows
// interactive latency stays at the epoch-0 level for any epoch — pulls and archive
// replies bypass the window — while replica fan-in onto the wired tier coalesces
// from 0.25 s up. 1 s sits comfortably inside the flat region (operating point
// recorded in README).
inline NetworkParams DefaultDeploymentNet() {
  NetworkParams net;
  net.batch_epoch = Seconds(1);
  return net;
}

struct DeploymentConfig {
  int num_proxies = 2;
  int sensors_per_proxy = 8;
  // How the global sensor population is sharded across proxies. kGeographic keeps the
  // (proxy, sensor) naming grid and ownership aligned (the seed behaviour); kHash
  // spreads sensors across proxies by index hash for load balance.
  ShardPolicy shard_policy = ShardPolicy::kGeographic;

  // Sensor behaviour.
  Duration sensing_period = Seconds(31);
  PushPolicy policy = PushPolicy::kModelDriven;
  double model_tolerance = 0.5;
  double value_delta = 1.0;
  Duration batch_interval = Minutes(16.5);
  bool compress = false;
  CodecParams codec;
  FlashParams flash;
  ArchiveParams archive;
  ModelConfig model_config;
  NodeRadioConfig sensor_radio;        // powered=false; lpl/post-burst knobs
  double max_drift_ppm = 40.0;         // per-sensor drift drawn uniformly in +/- this
  Duration max_clock_offset = Seconds(2);

  // Proxy behaviour.
  ProxyMode proxy_mode = ProxyMode::kPresto;
  PredictionEngineParams engine;
  MatcherParams matcher;
  bool manage_models = true;
  bool enable_matcher = false;  // opt-in: benches sweep this explicitly
  bool enable_replication = false;
  // Total copies per shard including the owner (K-way). 2 = the PR-1 single-standby
  // behaviour; clamped to the proxy count. Only meaningful with enable_replication.
  int replication_factor = 2;
  // KillProxy -> replica promotion lag (failure detection + takeover). Queries in the
  // window are served degraded through the unified store's failover chain.
  Duration promotion_delay = Seconds(30);
  // Cache depth shipped when state is handed over (migration / revive hand-back).
  Duration handoff_history = Hours(4);
  // Archive-backed backfill at failover promotion: the promoted proxy scans its cache
  // over the last handoff_history for holes (shallow recruit snapshots, standby
  // outage windows) and repairs them with one background pull from the sensor's flash
  // archive, so the promoted window serves from cache instead of degrading.
  bool promotion_backfill = true;
  Duration pull_timeout = Minutes(10);

  // --- parallel shard-lane engine (opt-in) ---
  // lane_engine splits the simulator into one lane per proxy shard (sensors ride
  // their home shard's lane) executed under an epoch-barrier schedule; mutations
  // (kill / revive / promote / migrate / rebalance) run at barriers. sim_threads
  // workers execute the lanes — fingerprints are identical for 1 and N workers.
  // False keeps the seed's legacy single-queue engine (and its fingerprint path).
  bool lane_engine = false;
  int sim_threads = 1;
  Duration sim_epoch = Millis(500);  // epoch cap / cross-lane delivery granularity
  // Conservative-lookahead epochs (opt-in; lane_engine only): derive the epoch from
  // the topology instead of hard-coding it. The engine runs at
  // epoch = min(sim_epoch, minimum cross-lane wired latency), so a cross-lane wired
  // send always has a barrier between send and delivery and its sub-epoch latency is
  // delivered faithfully (the mailbox clamp never binds). Re-derived at mutation
  // barriers — kills, revives, and lane re-binds change the cross-lane link set.
  bool auto_epoch = false;
  // Barrier-time lane re-binding (lane_engine only): when a mutation gives a sensor
  // a new acting owner (migration, promotion, hand-back), move the sensor's lane to
  // the owner's at that barrier — timers re-bind cooperatively, pending deliveries
  // and coalescing batches hand over with times preserved — so a long-lived
  // ownership change stops paying the conservative cross-lane radio tax after one
  // epoch. Off: the PR-4 behaviour (lane fixed at build, migrations cross lanes
  // forever).
  bool lane_rebind = true;

  // Load-aware rebalancing (opt-in): every rebalance_period, per-sensor query+push
  // window counters feed an EMA (one window is a noisy sample of the workload); if
  // the smoothed per-proxy load ratio exceeds rebalance_max_ratio, the sweep
  // re-packs loaded sensors across all live proxies with a sticky global LPT
  // assignment and executes the migrations it implies (hottest differences first,
  // at most rebalance_max_moves a sweep). A sweep that acts drives to the packed
  // optimum — comfortably inside the bound, not parked on its edge — so the next
  // windows' noise does not re-trip the gate; an already-balanced layout re-derives
  // itself move-free.
  bool enable_rebalancing = false;
  Duration rebalance_period = Minutes(30);
  double rebalance_max_ratio = 1.5;
  int rebalance_max_moves = 4;
  // EMA smoothing constant for the per-sensor window loads the sweep packs against:
  // higher tracks a shifting workload faster, lower rides out bursty windows.
  double rebalance_ema_alpha = 0.5;
  // Keep a sensor on its home proxy unless moving it leaves home lighter than the
  // destination becomes — a converged layout then re-derives itself move-free. Off:
  // pure LPT packing (tightest balance, but re-packs freely).
  bool rebalance_sticky = true;
  // A sweep only acts when the busiest proxy saw at least this many window events:
  // background push noise is not a signal worth migrating (anti-thrash floor).
  uint64_t rebalance_min_load = 16;

  // World.
  TemperatureParams field;
  double spatial_correlation = 0.85;

  NetworkParams net = DefaultDeploymentNet();
  uint64_t seed = 42;
};

class Deployment : public EventSink, public UnifiedStore::Client {
 public:
  // Reads the world for one sensor; the default reads the temperature field.
  using MeasureFactory = std::function<SensorNode::MeasureFn(int global_sensor_index)>;

  explicit Deployment(const DeploymentConfig& config);
  Deployment(const DeploymentConfig& config, MeasureFactory measure_factory);

  // Starts sensing loops and proxy maintenance. Call once, then run the simulator.
  void Start();

  // --- topology accessors ---
  // (proxy_index, sensor_index) is the deployment's *naming grid*: it fixes sensor ids
  // and global indices independent of sharding. Under kGeographic the named proxy also
  // owns the sensor; under kHash ownership comes from the shard map.
  static NodeId ProxyId(int proxy_index) { return static_cast<NodeId>(1 + proxy_index); }
  static NodeId SensorId(int proxy_index, int sensor_index) {
    return static_cast<NodeId>(1000 * (proxy_index + 1) + sensor_index);
  }
  int GlobalSensorIndex(int proxy_index, int sensor_index) const {
    return proxy_index * config_.sensors_per_proxy + sensor_index;
  }
  NodeId GlobalSensorId(int global_index) const {
    return SensorId(global_index / config_.sensors_per_proxy,
                    global_index % config_.sensors_per_proxy);
  }
  int total_sensors() const { return config_.num_proxies * config_.sensors_per_proxy; }

  const ShardMap& shard() const { return *shard_map_; }
  // The proxy that owns (serves queries for) the (p, s)-named sensor.
  int OwnerProxyIndex(int proxy_index, int sensor_index) const {
    return shard_map_->OwnerOf(GlobalSensorIndex(proxy_index, sensor_index));
  }

  // Failure injection at deployment granularity: a killed proxy neither receives
  // pushes nor answers queries. With replication its shard is served degraded from the
  // replica set immediately, and after `promotion_delay` the first live replica is
  // promoted to full owner (pulls, models, index entry — full service).
  void KillProxy(int proxy_index);
  // Brings the proxy back and hands its shard back from the acting owners, with a
  // cache/model state transfer over the wired mesh.
  void ReviveProxy(int proxy_index);
  bool IsProxyDown(int proxy_index) const;

  // Schedules a live migration of one sensor to `new_owner` as a simulator event:
  // state snapshot over the wired mesh, ownership + replica-set re-registration,
  // index re-point, and push re-targeting. No-op if either side is down or the
  // sensor's shard is currently in failover.
  void MigrateSensor(int global_index, int new_owner);

  // The proxy currently serving the sensor (the shard-map owner, or the promoted
  // replica while the owner is down).
  int ActingOwner(int global_index) const;

  // Sum of the current-window load counters over the sensors `proxy_index` serves.
  uint64_t ProxyWindowLoad(int proxy_index) const;

  struct ShardMgmtStats {
    uint64_t promotions = 0;       // sensors taken over by a replica
    uint64_t handbacks = 0;        // sensors returned to a revived owner
    uint64_t migrations = 0;       // live migrations executed (manual + rebalancer)
    uint64_t rebalance_sweeps = 0;
    SimTime last_promotion_at = -1;  // recovery-time reporting
  };
  const ShardMgmtStats& shard_stats() const { return shard_stats_; }

  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  UnifiedStore& store() { return *store_; }
  TemperatureField& field() { return *field_; }
  ProxyNode& proxy(int proxy_index) {
    return *proxies_[static_cast<size_t>(proxy_index)];
  }
  SensorNode& sensor(int proxy_index, int sensor_index);
  const DeploymentConfig& config() const { return config_; }

  // Mean sensor energy in joules (settles idle energy first).
  double MeanSensorEnergy();

  // Issues a query and runs the simulator until it completes (or `max_wait` passes).
  UnifiedQueryResult QueryAndWait(const QuerySpec& spec, Duration max_wait = Minutes(30));

  // External query entry without a host-loop round-trip: routing runs now (control
  // context only), execution rides the store's typed kQuery events in the serving
  // proxy's lane, and `on_done` fires as a typed event on the *control lane* — so
  // callers (federation routing, in-sim query drivers) never observe worker-lane
  // context. The deployment must outlive the completion (it owns the simulator).
  // Closure-form entries in flight block SaveCheckpoint.
  void QueryAsync(const QuerySpec& spec,
                  std::function<void(const UnifiedQueryResult&)> on_done);

  // Federation-tagged entry: completion is delivered as
  // federation_client->OnDeploymentQueryDone(fed_qid, result) — serializable, so
  // cross-cell queries in flight survive a checkpoint.
  void QueryAsyncFederated(const QuerySpec& spec, uint64_t fed_qid);
  void SetFederationClient(FederationQueryClient* client) {
    federation_client_ = client;
  }

  // UnifiedStore::Client: store completions come back keyed by external-query id.
  void OnStoreQueryDone(uint64_t token, const UnifiedQueryResult& result) override;

  // Attaches an open-loop in-sim query driver targeting this deployment's sensors
  // (QueryRequest.sensor = global index; mix.num_sensors <= 0 defaults to the whole
  // population). The driver issues through QueryAsync, so a single RunUntil carries
  // the entire workload. Caller starts it: AttachQueryDriver(p).Start(duration).
  QueryDriver& AttachQueryDriver(const QueryDriverParams& params);

  // Runs the simulator forward to `t` (no-op if already past).
  void RunUntil(SimTime t) { sim_.RunUntil(t); }

  // Topology mutations (promotion, hand-back, migration) arrive as typed kMutation
  // events on the control lane: they touch every layer, so they only ever execute at
  // epoch barriers (or inline in legacy mode). kQuery events are QueryAsync
  // completions marshalled from the serving proxy's lane back to control context.
  void OnSimEvent(EventKind kind, EventPayload& payload) override;
  void OnEventRestored(SimTime t, EventKind kind, const EventPayload& payload,
                       const EventHandle& handle, int lane) override;

  // --- checkpoint / restore ---
  // Snapshots every stateful subsystem into per-section payloads (each section
  // carries its own checksum inside the container): "net", "store", "shard_map",
  // "deploy", one "proxy/<p>" per proxy, "sensors", "drivers", and "sim" — composed
  // here so section boundaries match subsystem boundaries and a diff names the first
  // divergent layer. Call at a barrier / between RunUntil calls only; fails (writing
  // nothing partial) while a closure-form query is in flight. `prefix` namespaces
  // the section names ("cell3/sim") for multi-deployment containers.
  Status SaveCheckpoint(Checkpoint* out, const std::string& prefix = "") const;

  // Restores into a *freshly constructed, identically configured* deployment (same
  // config, same AttachQueryDriver calls, Start() already run). Subsystem sections
  // load first; "sim" loads last so restored queue events re-announce into
  // already-restored subsystems. Restore at barrier B is observationally identical
  // to never stopping: fingerprints and histograms match an uninterrupted run.
  Status LoadCheckpoint(const Checkpoint& ckpt, const std::string& prefix = "");

 private:
  void Build(MeasureFactory measure_factory);

  bool ReplicationEnabled() const {
    return config_.enable_replication && config_.num_proxies > 1;
  }
  int LiveProxyCount() const;
  // Inverse of the naming grid: the global index of a SensorId().
  int GlobalIndexOfId(NodeId sensor_id) const {
    const int named_proxy = static_cast<int>(sensor_id) / 1000 - 1;
    const int sensor = static_cast<int>(sensor_id) % 1000;
    return named_proxy * config_.sensors_per_proxy + sensor;
  }
  // Re-derives sensor `g`'s ordered holder chain with `acting` at the head: current
  // state holders first (home, then the home replica set, then surviving recruits),
  // then — with replication — newly recruited live ring successors of `acting`
  // (registered and snapshot-seeded here) until the chain holds `replication_factor`
  // live copies.
  std::vector<int> DeriveChain(int global_index, int acting);
  // Installs a derived chain: re-arms the acting owner's replica targets (live
  // standbys), mirrors the chain + index entry into the unified store, re-targets the
  // sensor's pushes, and updates the shard map's acting-owner index.
  void ApplyChain(int global_index, std::vector<int> chain);
  // Promotes every sensor currently served by the (down) proxy to the first live
  // holder on its chain. Fired `promotion_delay` after KillProxy.
  void PromoteShardsOf(int proxy_index);
  // Returns ownership of `proxy_index`'s home shard from the acting owners.
  void HandBackShardsOf(int proxy_index);
  // Executes one migration immediately (callers run inside simulator events).
  void ExecuteMigration(int global_index, int new_owner);
  void RebalanceSweep();
  // Moves sensor `g`'s lane to its acting owner's at the current barrier (control
  // context): timers re-bind cooperatively, pending network events hand over.
  void RebindSensorLane(int global_index, int acting);
  // Re-derives the lookahead bound from the live topology (auto_epoch only).
  void RetuneEpoch();

  DeploymentConfig config_;
  Simulator sim_;
  std::unique_ptr<ShardMap> shard_map_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<TemperatureField> field_;
  std::unique_ptr<UnifiedStore> store_;
  std::vector<std::unique_ptr<ProxyNode>> proxies_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;  // proxy-major order

  // --- dynamic shard management state ---
  std::vector<char> proxy_down_;
  std::vector<EventHandle> pending_promotions_;  // per proxy, armed by KillProxy
  // True between KillProxy and its promotion event firing (or being cancelled): the
  // failure-detection window during which a revive-time rescue must NOT pre-empt the
  // scheduled promotion.
  std::vector<char> promotion_pending_;
  // Per-sensor ordered holder chains (acting owner first), mirrored into the unified
  // store on every mutation. The acting-owner indirection itself lives in the shard
  // map's incremental served-by index.
  std::vector<std::vector<int>> sensor_chain_;
  // Smoothed per-sensor window loads (global index; follows the sensor across
  // migrations) — the rebalancer's signal.
  std::vector<double> sensor_load_ema_;
  std::unique_ptr<PeriodicTimer> rebalance_timer_;
  ShardMgmtStats shard_stats_;

  // --- external query entry ---
  // In-flight QueryAsync queries. The map is mutex-guarded because store
  // completions run in serving-proxy lanes (concurrently for different proxies);
  // each entry is only ever touched by its own query's events — the UnifiedStore
  // pattern. Every entry carries a serializable origin tag except kClosure (ad-hoc
  // callers), which blocks SaveCheckpoint while in flight.
  struct ExternalQuery {
    enum class Origin : uint8_t {
      kClosure = 0,     // on_done closure (probes, tests) — not checkpointable
      kDriver = 1,      // attached QueryDriver: tag = driver index, past = class
      kFederation = 2,  // federation glue: tag = federation qid
    };
    Origin origin = Origin::kClosure;
    uint64_t tag = 0;
    bool past = false;  // kDriver: the request's PAST/NOW class
    UnifiedQueryResult result;
    std::function<void(const UnifiedQueryResult&)> on_done;
  };
  void QueryAsyncInternal(const QuerySpec& spec, ExternalQuery entry);
  ExternalQuery* FindExternal(uint64_t id);
  std::mutex external_m_;
  std::map<uint64_t, ExternalQuery> external_;
  uint64_t next_external_id_ = 1;
  FederationQueryClient* federation_client_ = nullptr;
  // Declared after sim_ so drivers (which hold pending arrival events) die first.
  std::vector<std::unique_ptr<QueryDriver>> drivers_;
};

}  // namespace presto

#endif  // SRC_CORE_DEPLOYMENT_H_
