#include "src/core/unified_store.h"

#include "src/core/types.h"
#include "src/util/assert.h"
#include "src/util/ckpt.h"
#include "src/util/logging.h"

namespace presto {

UnifiedStore::UnifiedStore(Simulator* sim, Network* net, uint64_t seed,
                           Duration per_hop_latency)
    : sim_(sim), net_(net), per_hop_latency_(per_hop_latency), index_(seed) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(net_ != nullptr);
  sim_->RegisterSink(this);
}

void UnifiedStore::AddProxy(ProxyNode* proxy) {
  PRESTO_CHECK(proxy != nullptr);
  proxies_[proxy->config().id] = proxy;
  proxy->SetPullClient(this);
  for (NodeId sensor : proxy->sensors()) {
    index_.Insert(sensor, proxy->config().id);
  }
}

void UnifiedStore::SetSensorChain(NodeId sensor_id, std::vector<NodeId> chain) {
  chain_of_[sensor_id] = std::move(chain);
}

void UnifiedStore::ReassignSensor(NodeId sensor_id, NodeId new_proxy) {
  PRESTO_CHECK_MSG(FindProxy(new_proxy) != nullptr, "reassigning to an unknown proxy");
  index_.Insert(sensor_id, new_proxy);  // overwrites the previous registration
  ++stats_.reassignments;
}

ProxyNode* UnifiedStore::FindProxy(NodeId proxy_id) const {
  auto it = proxies_.find(proxy_id);
  return it == proxies_.end() ? nullptr : it->second;
}

void UnifiedStore::Query(const QuerySpec& spec,
                         std::function<void(const UnifiedQueryResult&)> callback) {
  PendingQuery pending;
  pending.spec = spec;
  pending.callback = std::move(callback);
  QueryInternal(spec, std::move(pending));
}

void UnifiedStore::Query(const QuerySpec& spec, uint64_t token) {
  PRESTO_CHECK_MSG(client_ != nullptr, "token-form store query without a client");
  PendingQuery pending;
  pending.spec = spec;
  pending.has_token = true;
  pending.token = token;
  QueryInternal(spec, std::move(pending));
}

void UnifiedStore::QueryInternal(const QuerySpec& spec, PendingQuery pending) {
  ++stats_.queries;
  const SimTime issued_at = sim_->Now();

  const auto complete_now = [this](PendingQuery& p) {
    p.result.completed_at = sim_->Now();
    if (p.has_token) {
      client_->OnStoreQueryDone(p.token, p.result);
    } else {
      p.callback(p.result);
    }
  };

  // Resolve the owner through the order-preserving index.
  SkipGraph::SearchStats search = index_.Search(spec.sensor_id);
  stats_.total_index_hops += search.hops;

  pending.result.issued_at = issued_at;
  pending.result.index_hops = search.hops;

  if (!search.found) {
    ++stats_.unroutable;
    pending.result.answer.status = NotFoundError("sensor not in the distributed index");
    complete_now(pending);
    return;
  }

  NodeId proxy_id = static_cast<NodeId>(search.value);
  bool used_replica = false;
  if (net_->IsNodeDown(proxy_id)) {
    // Walk the sensor's own holder chain to the first live proxy with its state. The
    // chain is per-sensor (not per-primary), so it stays correct across cascaded
    // promotions: killing an acting owner falls through to the next holder even
    // before that proxy's own promotion event fires.
    NodeId fallback = 0;
    auto chain = chain_of_.find(spec.sensor_id);
    if (chain != chain_of_.end()) {
      for (NodeId candidate : chain->second) {
        if (candidate == proxy_id || net_->IsNodeDown(candidate)) {
          continue;
        }
        ProxyNode* proxy = FindProxy(candidate);
        if (proxy != nullptr && proxy->ManagesSensor(spec.sensor_id)) {
          fallback = candidate;
          break;
        }
      }
    }
    if (fallback != 0) {
      proxy_id = fallback;
      used_replica = true;
      ++stats_.failovers;
    } else {
      pending.result.answer.status =
          UnavailableError("owning proxy (and all replicas) down");
      complete_now(pending);
      return;
    }
  }
  ProxyNode* proxy = FindProxy(proxy_id);
  if (proxy == nullptr || !proxy->ManagesSensor(spec.sensor_id)) {
    ++stats_.unroutable;
    pending.result.answer.status =
        NotFoundError("index points at a proxy without this sensor");
    complete_now(pending);
    return;
  }
  ++stats_.routed;
  pending.result.served_by = proxy_id;
  pending.result.used_replica = used_replica;

  // Forwarding the query across `hops` proxies costs wired latency each way. The
  // execute + complete stages run as typed events in the serving proxy's lane.
  pending.route_delay = per_hop_latency_ * (search.hops + 1);
  const Duration route_delay = pending.route_delay;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    id = next_query_id_++;
    pending_.emplace(id, std::move(pending));
  }
  EventPayload payload;
  payload.a = id;
  payload.b = 0;  // stage: execute on the proxy
  sim_->ScheduleEventAt(sim_->Now() + route_delay, EventKind::kQuery, this,
                        std::move(payload), net_->NodeLane(proxy_id));
}

UnifiedStore::PendingQuery* UnifiedStore::FindPending(uint64_t id) {
  std::lock_guard<std::mutex> lock(pending_m_);
  auto it = pending_.find(id);
  return it == pending_.end() ? nullptr : &it->second;
}

void UnifiedStore::OnPullDone(uint64_t token, const QueryAnswer& answer) {
  // Proxy-level completion, running in the serving proxy's lane; the token is the
  // store query id. Record the answer and schedule the return hop.
  PendingQuery* done = FindPending(token);
  PRESTO_CHECK(done != nullptr);
  done->result.answer = answer;
  EventPayload complete;
  complete.a = token;
  complete.b = 1;  // stage: return hop + completion
  sim_->ScheduleEventAt(sim_->Now() + done->route_delay, EventKind::kQuery, this,
                        std::move(complete));
}

void UnifiedStore::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  const uint64_t id = payload.a;
  if (payload.b == 0) {
    // Execute stage, running in the serving proxy's lane. The entry outlives the
    // lock: map nodes are stable and only this query's events touch it. The proxy
    // answers through OnPullDone (possibly synchronously, on a cache hit).
    PendingQuery* pending = FindPending(id);
    PRESTO_CHECK(pending != nullptr);
    ProxyNode* proxy = FindProxy(pending->result.served_by);
    PRESTO_CHECK(proxy != nullptr);
    const QuerySpec& spec = pending->spec;
    if (spec.type == QueryType::kNow) {
      proxy->QueryNow(spec.sensor_id, spec.tolerance, spec.latency_bound, id);
    } else {
      proxy->QueryPast(spec.sensor_id, spec.range, spec.tolerance, id);
    }
    return;
  }
  PendingQuery done;
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    auto it = pending_.find(id);
    PRESTO_CHECK(it != pending_.end());
    done = std::move(it->second);
    pending_.erase(it);
  }
  done.result.completed_at = sim_->Now();
  if (done.has_token) {
    PRESTO_CHECK_MSG(client_ != nullptr, "token-form store query without a client");
    client_->OnStoreQueryDone(done.token, done.result);
  } else {
    done.callback(done.result);
  }
}

Status UnifiedStore::SaveState(ByteWriter& w) const {
  // Runs from control context at a barrier: no lane is executing, so the pending map
  // is stable without the mutex.
  index_.SaveState(w);
  CkptWrite(w, chain_of_);
  CkptWrite(w, stats_.queries);
  CkptWrite(w, stats_.routed);
  CkptWrite(w, stats_.failovers);
  CkptWrite(w, stats_.unroutable);
  CkptWrite(w, stats_.total_index_hops);
  CkptWrite(w, stats_.reassignments);
  CkptWrite(w, next_query_id_);
  w.WriteVarU64(pending_.size());
  for (const auto& [id, pending] : pending_) {
    if (!pending.has_token) {
      return FailedPreconditionError(
          "store checkpoint: closure-form query pending (use the token query API)");
    }
    CkptWrite(w, id);
    CkptWrite(w, pending.spec);
    CkptWrite(w, pending.result);
    CkptWrite(w, pending.token);
    CkptWrite(w, pending.route_delay);
  }
  return OkStatus();
}

Status UnifiedStore::LoadState(ByteReader& r) {
  PRESTO_RETURN_IF_ERROR(index_.LoadState(r));
  CKPT_READ(r, chain_of_);
  CKPT_READ(r, stats_.queries);
  CKPT_READ(r, stats_.routed);
  CKPT_READ(r, stats_.failovers);
  CKPT_READ(r, stats_.unroutable);
  CKPT_READ(r, stats_.total_index_hops);
  CKPT_READ(r, stats_.reassignments);
  CKPT_READ(r, next_query_id_);
  auto count = r.ReadVarU64();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > r.remaining()) {
    return DataLossError("store restore: pending count exceeds section bytes");
  }
  pending_.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    uint64_t id = 0;
    CKPT_READ(r, id);
    PendingQuery pending;
    pending.has_token = true;
    CKPT_READ(r, pending.spec);
    CKPT_READ(r, pending.result);
    CKPT_READ(r, pending.token);
    CKPT_READ(r, pending.route_delay);
    pending_.emplace(id, std::move(pending));
  }
  return OkStatus();
}

}  // namespace presto
