#include "src/core/unified_store.h"

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace presto {

UnifiedStore::UnifiedStore(Simulator* sim, Network* net, uint64_t seed,
                           Duration per_hop_latency)
    : sim_(sim), net_(net), per_hop_latency_(per_hop_latency), index_(seed) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(net_ != nullptr);
}

void UnifiedStore::AddProxy(ProxyNode* proxy) {
  PRESTO_CHECK(proxy != nullptr);
  proxies_[proxy->config().id] = proxy;
  for (NodeId sensor : proxy->sensors()) {
    index_.Insert(sensor, proxy->config().id);
  }
}

void UnifiedStore::SetSensorChain(NodeId sensor_id, std::vector<NodeId> chain) {
  chain_of_[sensor_id] = std::move(chain);
}

void UnifiedStore::ReassignSensor(NodeId sensor_id, NodeId new_proxy) {
  PRESTO_CHECK_MSG(FindProxy(new_proxy) != nullptr, "reassigning to an unknown proxy");
  index_.Insert(sensor_id, new_proxy);  // overwrites the previous registration
  ++stats_.reassignments;
}

ProxyNode* UnifiedStore::FindProxy(NodeId proxy_id) const {
  auto it = proxies_.find(proxy_id);
  return it == proxies_.end() ? nullptr : it->second;
}

void UnifiedStore::Query(const QuerySpec& spec,
                         std::function<void(const UnifiedQueryResult&)> callback) {
  ++stats_.queries;
  const SimTime issued_at = sim_->Now();

  // Resolve the owner through the order-preserving index.
  SkipGraph::SearchStats search = index_.Search(spec.sensor_id);
  stats_.total_index_hops += search.hops;

  UnifiedQueryResult result;
  result.issued_at = issued_at;
  result.index_hops = search.hops;

  if (!search.found) {
    ++stats_.unroutable;
    result.answer.status = NotFoundError("sensor not in the distributed index");
    result.completed_at = sim_->Now();
    callback(result);
    return;
  }

  NodeId proxy_id = static_cast<NodeId>(search.value);
  bool used_replica = false;
  if (net_->IsNodeDown(proxy_id)) {
    // Walk the sensor's own holder chain to the first live proxy with its state. The
    // chain is per-sensor (not per-primary), so it stays correct across cascaded
    // promotions: killing an acting owner falls through to the next holder even
    // before that proxy's own promotion event fires.
    NodeId fallback = 0;
    auto chain = chain_of_.find(spec.sensor_id);
    if (chain != chain_of_.end()) {
      for (NodeId candidate : chain->second) {
        if (candidate == proxy_id || net_->IsNodeDown(candidate)) {
          continue;
        }
        ProxyNode* proxy = FindProxy(candidate);
        if (proxy != nullptr && proxy->ManagesSensor(spec.sensor_id)) {
          fallback = candidate;
          break;
        }
      }
    }
    if (fallback != 0) {
      proxy_id = fallback;
      used_replica = true;
      ++stats_.failovers;
    } else {
      result.answer.status = UnavailableError("owning proxy (and all replicas) down");
      result.completed_at = sim_->Now();
      callback(result);
      return;
    }
  }
  ProxyNode* proxy = FindProxy(proxy_id);
  if (proxy == nullptr || !proxy->ManagesSensor(spec.sensor_id)) {
    ++stats_.unroutable;
    result.answer.status = NotFoundError("index points at a proxy without this sensor");
    result.completed_at = sim_->Now();
    callback(result);
    return;
  }
  ++stats_.routed;
  result.served_by = proxy_id;
  result.used_replica = used_replica;

  // Forwarding the query across `hops` proxies costs wired latency each way. The
  // execute + complete stages run as typed events in the serving proxy's lane.
  const Duration route_delay = per_hop_latency_ * (search.hops + 1);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    id = next_query_id_++;
    PendingQuery& pending = pending_[id];
    pending.spec = spec;
    pending.result = result;
    pending.callback = std::move(callback);
    pending.route_delay = route_delay;
  }
  EventPayload payload;
  payload.a = id;
  payload.b = 0;  // stage: execute on the proxy
  sim_->ScheduleEventAt(sim_->Now() + route_delay, EventKind::kQuery, this,
                        std::move(payload), net_->NodeLane(proxy_id));
}

UnifiedStore::PendingQuery* UnifiedStore::FindPending(uint64_t id) {
  std::lock_guard<std::mutex> lock(pending_m_);
  auto it = pending_.find(id);
  return it == pending_.end() ? nullptr : &it->second;
}

void UnifiedStore::OnSimEvent(EventKind kind, EventPayload& payload) {
  PRESTO_CHECK(kind == EventKind::kQuery);
  const uint64_t id = payload.a;
  if (payload.b == 0) {
    // Execute stage, running in the serving proxy's lane. The entry outlives the
    // lock: map nodes are stable and only this query's events touch it.
    PendingQuery* pending = FindPending(id);
    PRESTO_CHECK(pending != nullptr);
    ProxyNode* proxy = FindProxy(pending->result.served_by);
    PRESTO_CHECK(proxy != nullptr);
    auto on_answer = [this, id](const QueryAnswer& answer) {
      PendingQuery* done = FindPending(id);
      PRESTO_CHECK(done != nullptr);
      done->result.answer = answer;
      EventPayload complete;
      complete.a = id;
      complete.b = 1;  // stage: return hop + callback
      sim_->ScheduleEventAt(sim_->Now() + done->route_delay, EventKind::kQuery, this,
                            std::move(complete));
    };
    const QuerySpec& spec = pending->spec;
    if (spec.type == QueryType::kNow) {
      proxy->QueryNow(spec.sensor_id, spec.tolerance, spec.latency_bound,
                      std::move(on_answer));
    } else {
      proxy->QueryPast(spec.sensor_id, spec.range, spec.tolerance,
                       std::move(on_answer));
    }
    return;
  }
  PendingQuery done;
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    auto it = pending_.find(id);
    PRESTO_CHECK(it != pending_.end());
    done = std::move(it->second);
    pending_.erase(it);
  }
  done.result.completed_at = sim_->Now();
  done.callback(done.result);
}

}  // namespace presto
