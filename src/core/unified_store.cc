#include "src/core/unified_store.h"

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace presto {

UnifiedStore::UnifiedStore(Simulator* sim, Network* net, uint64_t seed,
                           Duration per_hop_latency)
    : sim_(sim), net_(net), per_hop_latency_(per_hop_latency), index_(seed) {
  PRESTO_CHECK(sim_ != nullptr);
  PRESTO_CHECK(net_ != nullptr);
}

void UnifiedStore::AddProxy(ProxyNode* proxy) {
  PRESTO_CHECK(proxy != nullptr);
  proxies_[proxy->config().id] = proxy;
  for (NodeId sensor : proxy->sensors()) {
    index_.Insert(sensor, proxy->config().id);
  }
}

void UnifiedStore::SetSensorChain(NodeId sensor_id, std::vector<NodeId> chain) {
  chain_of_[sensor_id] = std::move(chain);
}

void UnifiedStore::ReassignSensor(NodeId sensor_id, NodeId new_proxy) {
  PRESTO_CHECK_MSG(FindProxy(new_proxy) != nullptr, "reassigning to an unknown proxy");
  index_.Insert(sensor_id, new_proxy);  // overwrites the previous registration
  ++stats_.reassignments;
}

ProxyNode* UnifiedStore::FindProxy(NodeId proxy_id) const {
  auto it = proxies_.find(proxy_id);
  return it == proxies_.end() ? nullptr : it->second;
}

void UnifiedStore::Query(const QuerySpec& spec,
                         std::function<void(const UnifiedQueryResult&)> callback) {
  ++stats_.queries;
  const SimTime issued_at = sim_->Now();

  // Resolve the owner through the order-preserving index.
  SkipGraph::SearchStats search = index_.Search(spec.sensor_id);
  stats_.total_index_hops += search.hops;

  UnifiedQueryResult result;
  result.issued_at = issued_at;
  result.index_hops = search.hops;

  if (!search.found) {
    ++stats_.unroutable;
    result.answer.status = NotFoundError("sensor not in the distributed index");
    result.completed_at = sim_->Now();
    callback(result);
    return;
  }

  NodeId proxy_id = static_cast<NodeId>(search.value);
  bool used_replica = false;
  if (net_->IsNodeDown(proxy_id)) {
    // Walk the sensor's own holder chain to the first live proxy with its state. The
    // chain is per-sensor (not per-primary), so it stays correct across cascaded
    // promotions: killing an acting owner falls through to the next holder even
    // before that proxy's own promotion event fires.
    NodeId fallback = 0;
    auto chain = chain_of_.find(spec.sensor_id);
    if (chain != chain_of_.end()) {
      for (NodeId candidate : chain->second) {
        if (candidate == proxy_id || net_->IsNodeDown(candidate)) {
          continue;
        }
        ProxyNode* proxy = FindProxy(candidate);
        if (proxy != nullptr && proxy->ManagesSensor(spec.sensor_id)) {
          fallback = candidate;
          break;
        }
      }
    }
    if (fallback != 0) {
      proxy_id = fallback;
      used_replica = true;
      ++stats_.failovers;
    } else {
      result.answer.status = UnavailableError("owning proxy (and all replicas) down");
      result.completed_at = sim_->Now();
      callback(result);
      return;
    }
  }
  ProxyNode* proxy = FindProxy(proxy_id);
  if (proxy == nullptr || !proxy->ManagesSensor(spec.sensor_id)) {
    ++stats_.unroutable;
    result.answer.status = NotFoundError("index points at a proxy without this sensor");
    result.completed_at = sim_->Now();
    callback(result);
    return;
  }
  ++stats_.routed;
  result.served_by = proxy_id;
  result.used_replica = used_replica;

  // Forwarding the query across `hops` proxies costs wired latency each way.
  const Duration route_delay = per_hop_latency_ * (search.hops + 1);
  auto on_answer = [this, result, callback = std::move(callback),
                    route_delay](const QueryAnswer& answer) mutable {
    result.answer = answer;
    sim_->ScheduleIn(route_delay, [this, result,
                                   callback = std::move(callback)]() mutable {
      result.completed_at = sim_->Now();
      callback(result);
    });
  };

  sim_->ScheduleIn(route_delay, [proxy, spec,
                                 on_answer = std::move(on_answer)]() mutable {
    if (spec.type == QueryType::kNow) {
      proxy->QueryNow(spec.sensor_id, spec.tolerance, spec.latency_bound,
                      std::move(on_answer));
    } else {
      proxy->QueryPast(spec.sensor_id, spec.range, spec.tolerance, std::move(on_answer));
    }
  });
}

}  // namespace presto
