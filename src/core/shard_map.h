// Sensor→proxy shard map (paper §5): the mutable, versioned ownership table that turns
// one logical deployment into N proxy shards.
//
// Two placement policies seed the initial assignment:
//  - kGeographic: contiguous blocks of the global sensor index. Sensor indices are the
//    spatial layout (the workload correlates nearby indices), so a block shard keeps a
//    proxy's sensors spatially close — one radio neighbourhood per proxy, and spatial
//    model sharing stays intra-proxy. Non-divisible populations spread the remainder so
//    shard sizes differ by at most one (no proxy is ever left with an empty shard).
//  - kHash: stateless integer hash of the global index. Spreads hot spatial regions
//    across proxies so query load balances even when user interest is localised.
//
// After construction the table is *live*: MigrateSensor reassigns one sensor to a new
// owner (the deployment's rebalancer and failover paths drive this), and every mutation
// bumps version() so downstream caches can detect staleness.
//
// On top of home ownership the map tracks a per-sensor *acting owner* overlay: while a
// home proxy is down its sensors are served by a promoted replica, and SetActingOwner
// records that indirection. ServedBy(p) is the incrementally maintained inverse index
// (proxy -> sensors it currently serves), which is what keeps the deployment's
// promotion, hand-back, and load-accounting paths O(shard) instead of O(total).
//
// Replication is K-way: each proxy's shard is replicated to the next
// `replication_factor - 1` distinct ring successors (ReplicaSetOf). Replica sets never
// contain the owner and never contain duplicates — with a single proxy the set is
// empty. ReplicaOf keeps the PR-1 single-successor view (the head of the set).

#ifndef SRC_CORE_SHARD_MAP_H_
#define SRC_CORE_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace presto {

class ByteReader;
class ByteWriter;

enum class ShardPolicy : uint8_t {
  kGeographic = 0,  // contiguous index blocks (spatially local shards)
  kHash = 1,        // hashed spread (load-balanced shards)
};

const char* ShardPolicyName(ShardPolicy policy);

class ShardMap {
 public:
  // `replication_factor` is the total copy count including the owner (K-way); the
  // effective standby count is min(replication_factor - 1, num_proxies - 1).
  ShardMap(int num_proxies, int total_sensors, ShardPolicy policy,
           int replication_factor = 2);

  int OwnerOf(int global_sensor_index) const;

  // Ordered standby successors holding replicas of `proxy_index`'s shard: the next
  // replication_factor - 1 distinct proxies on the ring. Excludes the owner, deduped;
  // empty when there is nowhere to replicate (single proxy).
  const std::vector<int>& ReplicaSetOf(int proxy_index) const;

  // First standby replica (PR-1 compatibility view of the set). With a single proxy
  // there is nowhere to replicate; returns `proxy_index` itself.
  int ReplicaOf(int proxy_index) const;

  // Global sensor indices owned by `proxy_index`, ascending.
  const std::vector<int>& SensorsOf(int proxy_index) const;

  // Reassigns one sensor to `new_owner` and bumps version(). Returns false (no
  // version bump) when `new_owner` already owns the sensor. Sensors currently in
  // failover (acting owner != home) must be handed back before migrating.
  bool MigrateSensor(int global_sensor_index, int new_owner);

  // --- acting-owner overlay (failover indirection) ---
  // The proxy currently serving the sensor: the home owner, or the promoted replica
  // recorded by SetActingOwner while the home proxy is down.
  int ActingOwnerOf(int global_sensor_index) const;
  // True while a promoted replica (not the home owner) serves the sensor.
  bool InFailover(int global_sensor_index) const;
  // Records `proxy_index` as the sensor's acting owner; passing the home owner clears
  // the overlay (hand-back). Updates ServedBy incrementally and bumps version() on
  // change. Returns false when `proxy_index` already serves the sensor.
  bool SetActingOwner(int global_sensor_index, int proxy_index);
  // Global sensor indices currently *served* by `proxy_index` (acting-owner view:
  // home sensors not promoted away, plus foreign sensors it was promoted for),
  // ascending.
  const std::vector<int>& ServedBy(int proxy_index) const;

  // Monotone mutation counter: 0 at construction, +1 per successful MigrateSensor or
  // acting-owner change.
  uint64_t version() const { return version_; }

  int num_proxies() const { return num_proxies_; }
  int total_sensors() const { return total_sensors_; }
  ShardPolicy policy() const { return policy_; }
  int replication_factor() const { return replication_factor_; }

  // Shard balance introspection (benches report the spread).
  int MinShardSize() const;
  int MaxShardSize() const;

  // Checkpoint codec: version counter plus the owner and acting-owner tables; the
  // by-proxy and served-by inverse indices are rebuilt (ascending, exactly as the
  // incremental maintenance leaves them). The replica ring is construction-static.
  void SaveState(ByteWriter& w) const;
  Status LoadState(ByteReader& r);

 private:
  int num_proxies_;
  int total_sensors_;
  ShardPolicy policy_;
  int replication_factor_;
  uint64_t version_ = 0;
  std::vector<int> owner_;                     // global index -> home proxy index
  std::vector<int> acting_;                    // global index -> acting proxy (-1 = home)
  std::vector<std::vector<int>> by_proxy_;     // proxy index -> owned global indices
  std::vector<std::vector<int>> served_by_;    // proxy index -> served global indices
  std::vector<std::vector<int>> replica_set_;  // proxy index -> standby successors
};

}  // namespace presto

#endif  // SRC_CORE_SHARD_MAP_H_
