// Sensor→proxy shard map (paper §5): the assignment policy that turns one logical
// deployment into N proxy shards.
//
// Two policies:
//  - kGeographic: contiguous blocks of the global sensor index. Sensor indices are the
//    spatial layout (the workload correlates nearby indices), so a block shard keeps a
//    proxy's sensors spatially close — one radio neighbourhood per proxy, and spatial
//    model sharing stays intra-proxy.
//  - kHash: stateless integer hash of the global index. Spreads hot spatial regions
//    across proxies so query load balances even when user interest is localised.
//
// Replica placement is a ring: proxy p replicates its sensors' caches and models to
// proxy (p+1) % N over the wired tier, so any single proxy failure leaves every shard
// answerable (degraded, cache/extrapolation-only) at its ring successor.

#ifndef SRC_CORE_SHARD_MAP_H_
#define SRC_CORE_SHARD_MAP_H_

#include <cstdint>
#include <vector>

namespace presto {

enum class ShardPolicy : uint8_t {
  kGeographic = 0,  // contiguous index blocks (spatially local shards)
  kHash = 1,        // hashed spread (load-balanced shards)
};

const char* ShardPolicyName(ShardPolicy policy);

class ShardMap {
 public:
  ShardMap(int num_proxies, int total_sensors, ShardPolicy policy);

  int OwnerOf(int global_sensor_index) const;
  // Ring successor that holds the standby replica of `proxy_index`'s shard. With a
  // single proxy there is nowhere to replicate; returns `proxy_index` itself.
  int ReplicaOf(int proxy_index) const;
  // Global sensor indices owned by `proxy_index`, ascending.
  const std::vector<int>& SensorsOf(int proxy_index) const;

  int num_proxies() const { return num_proxies_; }
  int total_sensors() const { return total_sensors_; }
  ShardPolicy policy() const { return policy_; }

  // Shard balance introspection (benches report the spread).
  int MinShardSize() const;
  int MaxShardSize() const;

 private:
  int num_proxies_;
  int total_sensors_;
  ShardPolicy policy_;
  std::vector<int> owner_;                    // global index -> proxy index
  std::vector<std::vector<int>> by_proxy_;    // proxy index -> owned global indices
};

}  // namespace presto

#endif  // SRC_CORE_SHARD_MAP_H_
